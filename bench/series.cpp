// SnapshotSeries: the temporal snapshot engine (see harness.h).
//
// The incremental path and the cold-rebuild oracle both flow through
// compute_day_outputs(), so any divergence between them is a real
// divergence of the *inputs* (registries, propagation results) -- exactly
// what the byte-identity digests are meant to catch.

#include <algorithm>
#include <bit>
#include <unordered_set>
#include <utility>

#include "harness.h"
#include "irr/validation.h"
#include "simulator/collector.h"
#include "util/det_hash.h"
#include "util/parallel.h"

namespace manrs::benchx {

namespace {

constexpr double kHegemonyTrim = 0.1;  // IhrSnapshotBuilder's default

uint64_t group_key(net::Asn origin, const sim::AnnouncementClass& cls) {
  return (static_cast<uint64_t>(origin.value()) << 16) |
         (static_cast<uint64_t>(cls.variant) << 2) |
         (static_cast<uint64_t>(cls.rpki_invalid) << 1) |
         static_cast<uint64_t>(cls.irr_invalid);
}

uint64_t fold_prefix(uint64_t h, const net::Prefix& prefix) {
  h = util::fnv1a_u64(h, prefix.address().hi());
  h = util::fnv1a_u64(h, prefix.address().lo());
  h = util::fnv1a_byte(h, static_cast<uint8_t>(prefix.length()));
  h = util::fnv1a_byte(h, prefix.is_v4() ? 4 : 6);
  return h;
}

uint64_t fold_record(uint64_t h, const ihr::PrefixOriginRecord& r) {
  h = fold_prefix(h, r.prefix);
  h = util::fnv1a_u64(h, r.origin.value());
  h = util::fnv1a_byte(h, static_cast<uint8_t>(r.rpki));
  h = util::fnv1a_byte(h, static_cast<uint8_t>(r.irr));
  h = util::fnv1a_u64(h, r.visibility);
  return h;
}

uint64_t fold_record(uint64_t h, const ihr::TransitRecord& r) {
  h = fold_prefix(h, r.prefix);
  h = util::fnv1a_u64(h, r.origin.value());
  h = util::fnv1a_u64(h, r.transit.value());
  h = util::fnv1a_u64(h, std::bit_cast<uint64_t>(r.hegemony));
  h = util::fnv1a_byte(h, r.via_customer ? 1 : 0);
  h = util::fnv1a_byte(h, static_cast<uint8_t>(r.rpki));
  h = util::fnv1a_byte(h, static_cast<uint8_t>(r.irr));
  return h;
}

}  // namespace

/// The shared emit path: classify, group, propagate (cached), derive
/// per-group hegemony views (through `memo` when provided), emit both IHR
/// datasets, and reduce them to the day's series point. `classifications`
/// short-circuits the validators for the incremental path; when null every
/// announcement is classified fresh (the oracle path).
DayOutputs compute_day_outputs(
    int day, const std::vector<bgp::PrefixOrigin>& announcements,
    const sim::PropagationSim& sim,
    const std::vector<net::Asn>& vantage_points, const rpki::VrpStore& vrps,
    const irr::IrrRegistry& irr, const core::ManrsRegistry& registry,
    const std::unordered_map<bgp::PrefixOrigin,
                             SnapshotSeries::Classification>* classifications,
    std::unordered_map<uint64_t, SnapshotSeries::GroupMemo>* memo,
    DayEngineStats* stats) {
  DayOutputs out;
  out.day = day;
  out.announcements = announcements.size();

  // ---- classification ---------------------------------------------------
  struct Row {
    bgp::PrefixOrigin po;
    rpki::RpkiStatus rpki;
    irr::IrrStatus irr;
  };
  std::vector<Row> rows;
  rows.reserve(announcements.size());
  std::vector<sim::Announcement> sim_announcements;
  sim_announcements.reserve(announcements.size());
  for (const bgp::PrefixOrigin& po : announcements) {
    Row row;
    row.po = po;
    bool classified = false;
    if (classifications) {
      const auto it = classifications->find(po);
      if (it != classifications->end()) {
        row.rpki = it->second.rpki;
        row.irr = it->second.irr;
        classified = true;
      }
    }
    if (!classified) {
      row.rpki = vrps.validate(po.prefix, po.origin);
      row.irr = irr::validate_route(irr, po.prefix, po.origin);
    }
    rows.push_back(row);
    sim::AnnouncementClass cls;
    cls.rpki_invalid = rpki::is_invalid(row.rpki);
    cls.irr_invalid = row.irr == irr::IrrStatus::kInvalidAsn;
    cls.variant = (cls.rpki_invalid || cls.irr_invalid)
                      ? sim::filter_variant(po.prefix)
                      : 0;
    sim_announcements.push_back(sim::Announcement{po.prefix, po.origin, cls});
  }

  // ---- per-group propagation (cached) -----------------------------------
  std::vector<size_t> group_of;
  const auto groups = sim::group_announcements(sim_announcements, &group_of);
  std::vector<sim::PropagationRequest> requests;
  requests.reserve(groups.size());
  for (const auto& group : groups) {
    requests.push_back(sim::PropagationRequest{group.origin, group.cls});
  }
  const std::vector<sim::PropagationResultPtr> results =
      sim.propagate_cached(requests);

  // ---- hegemony views, memoized on result identity ----------------------
  // A group's view depends only on (result, vantage set): while the
  // propagation cache keeps returning the same result object, yesterday's
  // extraction is today's extraction.
  std::vector<SnapshotSeries::GroupMemo> views(groups.size());
  std::vector<char> reused(groups.size(), 0);
  if (memo) {
    for (size_t g = 0; g < groups.size(); ++g) {
      const auto it = memo->find(group_key(groups[g].origin, groups[g].cls));
      if (it != memo->end() && it->second.result.get() == results[g].get()) {
        views[g] = it->second;
        reused[g] = 1;
      }
    }
  }
  util::parallel_for(groups.size(), [&](size_t g) {
    if (reused[g]) return;
    thread_local sim::PathArena arena;
    const sim::PropagationResult& result = *results[g];
    const std::vector<sim::PathView> all_views =
        sim.extract_paths(result, vantage_points, arena);
    std::vector<sim::PathView> paths;
    paths.reserve(all_views.size());
    for (const sim::PathView& path : all_views) {
      if (!path.empty()) paths.push_back(path);
    }
    SnapshotSeries::GroupMemo view;
    view.result = results[g];
    view.visibility = static_cast<uint32_t>(paths.size());
    view.hegemony = ihr::compute_hegemony(paths, kHegemonyTrim);
    view.via_customer.reserve(view.hegemony.size());
    for (const auto& score : view.hegemony) {
      const int32_t id = sim.indexer().id_of(score.asn);
      view.via_customer.push_back(
          id >= 0 && result.source[static_cast<size_t>(id)] ==
                         sim::RouteSource::kCustomer);
    }
    views[g] = std::move(view);
  });
  if (memo) {
    std::unordered_map<uint64_t, SnapshotSeries::GroupMemo> next;
    next.reserve(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      next.emplace(group_key(groups[g].origin, groups[g].cls), views[g]);
    }
    *memo = std::move(next);
  }
  if (stats) {
    stats->groups = groups.size();
    stats->groups_reused = 0;
    for (const char r : reused) stats->groups_reused += r ? 1u : 0u;
  }

  // ---- emit + reduce ----------------------------------------------------
  std::vector<ihr::TransitRecord> transits;
  uint64_t po_digest = util::kFnv1aOffset;
  uint64_t transit_digest = util::kFnv1aOffset;
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const SnapshotSeries::GroupMemo& view = views[group_of[i]];
    ihr::PrefixOriginRecord record;
    record.prefix = row.po.prefix;
    record.origin = row.po.origin;
    record.rpki = row.rpki;
    record.irr = row.irr;
    record.visibility = view.visibility;
    po_digest = fold_record(po_digest, record);
    switch (core::classify_conformance(row.rpki, row.irr)) {
      case core::ConformanceClass::kConformant:
        ++out.conformant;
        break;
      case core::ConformanceClass::kUnconformant:
        ++out.unconformant;
        break;
      case core::ConformanceClass::kUnregistered:
        break;
    }
    for (size_t t = 0; t < view.hegemony.size(); ++t) {
      if (view.hegemony[t].asn == row.po.origin) continue;  // trivial transit
      ihr::TransitRecord transit;
      transit.prefix = row.po.prefix;
      transit.origin = row.po.origin;
      transit.transit = view.hegemony[t].asn;
      transit.hegemony = view.hegemony[t].score;
      transit.via_customer = view.via_customer[t];
      transit.rpki = row.rpki;
      transit.irr = row.irr;
      transit_digest = fold_record(transit_digest, transit);
      transits.push_back(std::move(transit));
    }
  }
  out.transit_records = transits.size();
  out.prefix_origin_digest = po_digest;
  out.transit_digest = transit_digest;

  // ---- series points ----------------------------------------------------
  out.participants = registry.participant_count();
  out.member_ases = registry.member_ases().size();

  const core::SaturationResult saturation =
      core::compute_rpki_saturation(announcements, vrps, registry);
  out.rsat_manrs = saturation.rsat_manrs();
  out.rsat_non_manrs = saturation.rsat_non_manrs();

  const std::vector<core::PreferenceScore> preferences =
      core::compute_preference_scores(transits, registry);
  uint64_t pref_digest = util::kFnv1aOffset;
  double valid_sum = 0.0;
  double other_sum = 0.0;
  size_t valid_n = 0;
  size_t other_n = 0;
  for (const core::PreferenceScore& p : preferences) {
    pref_digest = fold_prefix(pref_digest, p.prefix_origin.prefix);
    pref_digest = util::fnv1a_u64(pref_digest, p.prefix_origin.origin.value());
    pref_digest = util::fnv1a_byte(pref_digest, static_cast<uint8_t>(p.rpki));
    pref_digest =
        util::fnv1a_u64(pref_digest, std::bit_cast<uint64_t>(p.score));
    if (p.rpki == rpki::RpkiStatus::kValid) {
      valid_sum += p.score;
      ++valid_n;
    } else {
      other_sum += p.score;
      ++other_n;
    }
  }
  out.preference_digest = pref_digest;
  out.preference_valid_mean =
      valid_n ? valid_sum / static_cast<double>(valid_n) : 0.0;
  out.preference_other_mean =
      other_n ? other_sum / static_cast<double>(other_n) : 0.0;
  return out;
}

SnapshotSeries::SnapshotSeries(const topogen::Scenario& base,
                               topogen::EvolutionConfig config)
    : base_(&base),
      evolution_(base, config),
      vrps_(evolution_.vrps_at(0)),
      irr_(evolution_.irr_at(0)),
      registry_(evolution_.registry_at(0)),
      sim_(base.graph) {
  for (const topogen::AsProfile& profile : base.profiles) {
    sim_.set_policy(profile.asn, profile.policy);
  }
  for (const bgp::PrefixOrigin& po : evolution_.announcements_at(0)) {
    rib_.insert(po.prefix, peer_of(po.origin),
                bgp::AsPath(std::vector<net::Asn>{po.origin}));
  }
  rib_.finalize();
  for (const bgp::PrefixOrigin& po : rib_.prefix_origins()) {
    classifications_.emplace(po, classify(po));
    announcement_index_.insert(po.prefix, po);
  }
}

uint32_t SnapshotSeries::peer_of(net::Asn origin) {
  const auto it = origin_peer_.find(origin.value());
  if (it != origin_peer_.end()) return it->second;
  const uint32_t index = rib_.add_peer(origin);
  origin_peer_.emplace(origin.value(), index);
  return index;
}

SnapshotSeries::Classification SnapshotSeries::classify(
    const bgp::PrefixOrigin& po) const {
  Classification cls;
  cls.rpki = vrps_.validate(po.prefix, po.origin);
  cls.irr = irr::validate_route(irr_, po.prefix, po.origin);
  return cls;
}

topogen::EcosystemDelta SnapshotSeries::begin_day() {
  return evolution_.delta_for_day(day_ + 1);
}

void SnapshotSeries::apply(const topogen::EcosystemDelta& delta) {
  stats_ = DayEngineStats{};
  stats_.day = delta.day;
  stats_.delta_ops = delta.op_count();
  {
    const sim::PropagationCacheStats cache = sim_.cache_stats();
    baseline_hits_ = cache.hits;
    baseline_misses_ = cache.misses;
  }

  // Registries first: the (re)classifications below must see day state.
  for (const rpki::Vrp& vrp : delta.roa_remove) vrps_.stage_remove(vrp);
  for (const rpki::Vrp& vrp : delta.roa_add) vrps_.stage_add(vrp);
  vrps_.finalize_delta();

  std::unordered_set<irr::IrrDatabase*> touched;
  for (const topogen::IrrEdit& edit : delta.irr_remove) {
    if (irr::IrrDatabase* db = irr_.find_database_mut(edit.db)) {
      db->stage_remove_route(edit.route.prefix, edit.route.origin);
      touched.insert(db);
    }
  }
  for (const topogen::IrrEdit& edit : delta.irr_add) {
    if (irr::IrrDatabase* db = irr_.find_database_mut(edit.db)) {
      db->stage_add_route(edit.route);
      touched.insert(db);
    }
  }
  for (irr::IrrDatabase* db : touched) db->finalize_delta();

  // Announcement churn folds through the Rib's staged delta path.
  rib_.begin_delta();
  for (const bgp::PrefixOrigin& po : delta.withdraw) {
    rib_.erase(po.prefix, peer_of(po.origin));
  }
  for (const bgp::PrefixOrigin& po : delta.announce) {
    rib_.insert(po.prefix, peer_of(po.origin),
                bgp::AsPath(std::vector<net::Asn>{po.origin}));
  }
  rib_.finalize();

  // Classification upkeep: drop withdrawn pairs, classify new ones, and
  // re-run the validators only where a covering ROA or route object
  // changed (subtree walk of the announcement index).
  for (const bgp::PrefixOrigin& po : delta.withdraw) {
    if (classifications_.erase(po) > 0) {
      announcement_index_.erase_at(
          po.prefix, [&](const bgp::PrefixOrigin& v) { return v == po; });
    }
  }
  std::unordered_set<bgp::PrefixOrigin> dirty;
  auto mark_under = [&](const net::Prefix& changed) {
    announcement_index_.for_each_covered(
        changed, [&](const bgp::PrefixOrigin& po) { dirty.insert(po); });
  };
  for (const rpki::Vrp& vrp : delta.roa_add) mark_under(vrp.prefix);
  for (const rpki::Vrp& vrp : delta.roa_remove) mark_under(vrp.prefix);
  for (const topogen::IrrEdit& edit : delta.irr_add) {
    mark_under(edit.route.prefix);
  }
  for (const topogen::IrrEdit& edit : delta.irr_remove) {
    mark_under(edit.route.prefix);
  }
  for (const bgp::PrefixOrigin& po : dirty) {
    const auto it = classifications_.find(po);
    if (it == classifications_.end()) continue;
    it->second = classify(po);
    ++stats_.reclassified;
  }
  for (const bgp::PrefixOrigin& po : delta.announce) {
    auto [it, inserted] = classifications_.try_emplace(po);
    if (inserted) {
      it->second = classify(po);
      announcement_index_.insert(po.prefix, po);
      ++stats_.reclassified;
    }
  }

  // Membership, policies, and topology growth.
  registry_ = evolution_.registry_at(delta.day);
  sim::SimDelta sim_delta;
  sim_delta.policies.reserve(delta.members.size());
  for (const topogen::MembershipChange& change : delta.members) {
    sim_delta.policies.push_back(
        sim::SimDelta::PolicyChange{change.asn, change.policy});
  }
  sim_delta.edges = delta.edges;
  const sim::SimDeltaStats sim_stats = sim_.apply_delta(sim_delta);
  stats_.cache_invalidated = sim_stats.entries_invalidated;

  day_ = delta.day;
}

const DayOutputs& SnapshotSeries::recompute() {
  outputs_ = compute_day_outputs(day_, rib_.prefix_origins(), sim_,
                                 base_->vantage_points, vrps_, irr_, registry_,
                                 &classifications_, &group_memo_, &stats_);
  const sim::PropagationCacheStats cache = sim_.cache_stats();
  stats_.cache_hits = cache.hits - baseline_hits_;
  stats_.cache_misses = cache.misses - baseline_misses_;
  return outputs_;
}

const DayOutputs& SnapshotSeries::advance() {
  const topogen::EcosystemDelta delta = begin_day();
  apply(delta);
  return recompute();
}

DayOutputs SnapshotSeries::cold_rebuild(int k) const {
  bgp::Rib rib;
  std::unordered_map<uint32_t, uint32_t> peers;
  for (const bgp::PrefixOrigin& po : evolution_.announcements_at(k)) {
    auto [it, inserted] = peers.emplace(po.origin.value(), 0u);
    if (inserted) it->second = rib.add_peer(po.origin);
    rib.insert(po.prefix, it->second,
               bgp::AsPath(std::vector<net::Asn>{po.origin}));
  }
  rib.finalize();

  const rpki::VrpStore vrps = evolution_.vrps_at(k);
  const irr::IrrRegistry irr = evolution_.irr_at(k);
  const core::ManrsRegistry registry = evolution_.registry_at(k);
  const astopo::AsGraph graph = evolution_.graph_at(k);
  sim::PropagationSim cold(graph);
  for (const topogen::AsProfile& profile : base_->profiles) {
    cold.set_policy(profile.asn, profile.policy);
  }
  for (const sim::SimDelta::PolicyChange& change :
       evolution_.policy_changes_through(k)) {
    cold.set_policy(change.asn, change.policy);
  }
  return compute_day_outputs(k, rib.prefix_origins(), cold,
                             base_->vantage_points, vrps, irr, registry,
                             /*classifications=*/nullptr, /*memo=*/nullptr,
                             /*stats=*/nullptr);
}

}  // namespace manrs::benchx
