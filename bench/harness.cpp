#include "harness.h"

#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "irr/validation.h"
#include "rpki/validation.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace manrs::benchx {

topogen::ScenarioConfig config_from_env() {
  const char* scale = std::getenv("MANRS_SCALE");
  if (scale != nullptr) {
    if (std::strcmp(scale, "tiny") == 0) {
      return topogen::ScenarioConfig::tiny();
    }
    if (std::strcmp(scale, "large") == 0) {
      return topogen::ScenarioConfig::large_scale();
    }
    if (std::strcmp(scale, "full") == 0) {
      return topogen::ScenarioConfig::full_scale();
    }
  }
  return topogen::ScenarioConfig::paper_default();
}

std::vector<ihr::PrefixOriginRecord> classify_only(
    const topogen::Scenario& scenario,
    const std::vector<bgp::PrefixOrigin>& announcements) {
  std::vector<ihr::PrefixOriginRecord> records;
  records.reserve(announcements.size());
  for (const auto& po : announcements) {
    ihr::PrefixOriginRecord r;
    r.prefix = po.prefix;
    r.origin = po.origin;
    r.rpki = scenario.vrps.validate(po.prefix, po.origin);
    r.irr = irr::validate_route(scenario.irr, po.prefix, po.origin);
    records.push_back(r);
  }
  return records;
}

Pipeline Pipeline::build() { return build(config_from_env()); }

Pipeline Pipeline::build(const topogen::ScenarioConfig& config,
                         bool with_transits) {
  // One-line stage timing on stderr (util::logging) so bench-runtime
  // regressions show up in any bench run, not only in perf_pipeline.
  using Clock = std::chrono::steady_clock;
  auto elapsed_ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration_cast<std::chrono::milliseconds>(b - a)
        .count();
  };
  Clock::time_point t0 = Clock::now();
  topogen::Scenario scenario = topogen::build_scenario(config);
  Clock::time_point t1 = Clock::now();
  sim::PropagationSim simulator = scenario.make_sim();
  Clock::time_point t2 = Clock::now();
  ihr::IhrSnapshot snapshot;
  if (with_transits) {
    ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
    snapshot =
        builder.build(scenario.announcements(), scenario.vrps, scenario.irr);
  } else {
    snapshot.prefix_origins =
        classify_only(scenario, scenario.announcements());
  }
  Clock::time_point t3 = Clock::now();
  util::log_info() << "Pipeline::build: scenario " << elapsed_ms(t0, t1)
                   << " ms, propagation-sim " << elapsed_ms(t1, t2)
                   << " ms, snapshot " << elapsed_ms(t2, t3) << " ms ("
                   << scenario.config.total_as_count() << " ASes, "
                   << util::thread_count() << " threads)";
  Pipeline pipeline{std::move(scenario), std::move(simulator),
                    std::move(snapshot), {}, {}};
  pipeline.origination =
      core::compute_origination_stats(pipeline.snapshot.prefix_origins);
  pipeline.propagation =
      core::compute_propagation_stats(pipeline.snapshot.transits);
  return pipeline;
}

std::string group_label(const GroupKey& key, size_t n) {
  std::string label(astopo::to_string(key.size));
  label += key.manrs ? " MANRS" : " non-MANRS";
  label += " (" + std::to_string(n) + ")";
  return label;
}

void print_title(const std::string& bench, const std::string& artifact) {
  std::printf("================================================================\n");
  std::printf("%s -- reproduces %s\n", bench.c_str(), artifact.c_str());
  std::printf("================================================================\n");
}

void print_section(const std::string& name) {
  std::printf("\n--- %s ---\n", name.c_str());
}

void print_cdf(const std::string& label,
               const util::EmpiricalDistribution& dist, double lo, double hi,
               size_t points) {
  if (dist.empty()) {
    std::printf("%s: (no samples)\n", label.c_str());
    return;
  }
  std::printf("%s\n", label.c_str());
  std::printf("  x:   ");
  for (const auto& [x, _] : dist.cdf_series(lo, hi, points)) {
    std::printf("%8.2f", x);
  }
  std::printf("\n  CDF: ");
  for (const auto& [_, f] : dist.cdf_series(lo, hi, points)) {
    std::printf("%8.3f", f);
  }
  std::printf("\n  median %.2f  p90 %.2f  max %.2f  mass@%g %.1f%%\n",
              dist.median(), dist.quantile(0.9), dist.max(), hi,
              100.0 * dist.mass_at(hi));
}

void print_vs_paper(const std::string& what, const std::string& measured,
                    const std::string& paper) {
  std::printf("%-58s measured %-14s paper %s\n", what.c_str(),
              measured.c_str(), paper.c_str());
}

void export_cdf(const std::string& bench, const std::string& series,
                const util::EmpiricalDistribution& dist) {
  const char* dir = std::getenv("MANRS_PLOT_DIR");
  if (dir == nullptr || dist.empty()) return;
  // Sanitize the series name into a filename fragment.
  std::string name;
  for (char c : series) {
    name += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  std::string path = std::string(dir) + "/" + bench + "." + name + ".dat";
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "export_cdf: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "# %s -- %s (empirical CDF, %zu samples)\n",
               bench.c_str(), series.c_str(), dist.size());
  const auto& samples = dist.sorted_samples();
  for (size_t i = 0; i < samples.size(); ++i) {
    // Step function: one point per sample at F = (i+1)/n; skip duplicate
    // x values except the last occurrence to keep files small.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    std::fprintf(file, "%.6f %.6f\n", samples[i],
                 static_cast<double>(i + 1) /
                     static_cast<double>(samples.size()));
  }
  std::fclose(file);
}

}  // namespace manrs::benchx
