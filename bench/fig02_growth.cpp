// Reproduces Fig 2: growth of MANRS participants (organizations and ASes)
// over 2015-2022.
#include <cstdio>

#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("fig02_growth", "Fig 2 (MANRS growth over time)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());

  benchx::print_section("cumulative participants by year");
  std::printf("%-6s %-14s %-14s\n", "year", "organizations", "ASes");
  size_t final_orgs = 0, final_ases = 0;
  for (int year = scenario.config.first_year;
       year <= scenario.config.last_year; ++year) {
    util::Date cutoff(year, 12, 31);
    size_t orgs = 0;
    for (const auto& p : scenario.manrs.participants()) {
      if (p.joined <= cutoff) ++orgs;
    }
    size_t ases = scenario.manrs.member_ases_at(cutoff).size();
    std::printf("%-6d %-14zu %-14zu\n", year, orgs, ases);
    final_orgs = orgs;
    final_ases = ases;
  }

  benchx::print_section("shape checks vs paper");
  benchx::print_vs_paper("growth is monotone with a steep 2019-2022 ramp",
                         "see series above", "Fig 2 shows the same ramp");
  benchx::print_vs_paper("organizations by 2022",
                         std::to_string(final_orgs), "~770 (ISP+CDN)");
  benchx::print_vs_paper("ASes by 2022", std::to_string(final_ases),
                         "~850-870 (ISP 849 + CDN 21)");
  return 0;
}
