// Reproduces Fig 5a (CDF of % RPKI-Valid originated prefixes) and Fig 5b
// (CDF of % IRR-Valid originated prefixes) for the six populations, plus
// the §8.1/§8.2 narrative statistics (bimodality, invalid originators,
// IRR-only registration).
#include <cstdio>
#include <map>

#include "astopo/asrank.h"
#include "harness.h"

using namespace manrs;

namespace {

struct GroupStats {
  util::EmpiricalDistribution rpki_valid_pct;
  util::EmpiricalDistribution irr_valid_pct;
  size_t n = 0;
  size_t all_rpki_valid = 0;
  size_t zero_rpki_valid = 0;
  size_t invalid_originators = 0;  // originate >= 1 RPKI Invalid prefix
  size_t invalid_prefixes = 0;
  size_t all_irr_valid = 0;
  size_t irr_only = 0;  // zero RPKI presence, some IRR validity
};

}  // namespace

int main() {
  benchx::print_title("fig05_origination",
                      "Fig 5a/5b + Findings 8.1/8.2 (prefix origination)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  auto records = benchx::classify_only(scenario, scenario.announcements());
  auto origination = core::compute_origination_stats(records);

  std::map<std::pair<int, bool>, GroupStats> groups;
  for (const auto& [asn_value, stats] : origination) {
    net::Asn asn(asn_value);
    auto size = astopo::classify_size(scenario.graph, asn);
    bool member = scenario.manrs.is_member(asn);
    GroupStats& g = groups[{static_cast<int>(size), member}];
    ++g.n;
    g.rpki_valid_pct.add(stats.og_rpki_valid());
    g.irr_valid_pct.add(stats.og_irr_valid());
    if (stats.rpki_valid == stats.total) ++g.all_rpki_valid;
    if (stats.rpki_valid == 0) ++g.zero_rpki_valid;
    if (stats.rpki_invalid > 0) {
      ++g.invalid_originators;
      g.invalid_prefixes += stats.rpki_invalid;
    }
    if (stats.irr_valid == stats.total) ++g.all_irr_valid;
    if (stats.rpki_valid == 0 && stats.rpki_invalid == 0 &&
        stats.irr_valid > 0) {
      ++g.irr_only;
    }
  }

  auto label = [&](int size, bool member, size_t n) {
    return benchx::group_label(
        {static_cast<astopo::SizeClass>(size), member}, n);
  };

  benchx::print_section("Fig 5a: CDF of % originated RPKI Valid prefixes");
  for (const auto& [key, g] : groups) {
    benchx::print_cdf(label(key.first, key.second, g.n), g.rpki_valid_pct,
                      0, 100);
    benchx::export_cdf("fig05a", label(key.first, key.second, g.n),
                       g.rpki_valid_pct);
  }

  benchx::print_section("Fig 5b: CDF of % originated IRR Valid prefixes");
  for (const auto& [key, g] : groups) {
    benchx::print_cdf(label(key.first, key.second, g.n), g.irr_valid_pct, 0,
                      100);
    benchx::export_cdf("fig05b", label(key.first, key.second, g.n),
                       g.irr_valid_pct);
  }

  benchx::print_section("Finding 8.1 narrative (RPKI validity)");
  struct PaperRow {
    const char* group;
    const char* all_valid;
    const char* zero_valid;
    const char* invalid_orig;
  };
  static const std::map<std::pair<int, bool>, PaperRow> kPaper{
      {{0, true}, {"small MANRS", "60.1%", "23.6%", "0"}},
      {{0, false}, {"small non-MANRS", "24.7%", "68.1%", "0.7%"}},
      {{1, true}, {"medium MANRS", "41.5%", "14.8%", "2.8%"}},
      {{1, false}, {"medium non-MANRS", "23.8%", "41.4%", "4.5%"}},
      {{2, true}, {"large MANRS", "12.5%", "0%", "20.8%"}},
      {{2, false}, {"large non-MANRS", "5.9%", "11.8%+", "32.9%"}},
  };
  for (const auto& [key, g] : groups) {
    auto it = kPaper.find(key);
    if (it == kPaper.end() || g.n == 0) continue;
    char measured[128];
    std::snprintf(measured, sizeof(measured), "%.1f%% / %.1f%% / %.1f%%",
                  100.0 * g.all_rpki_valid / g.n,
                  100.0 * g.zero_rpki_valid / g.n,
                  100.0 * g.invalid_originators / g.n);
    char paper[128];
    std::snprintf(paper, sizeof(paper), "%s / %s / %s (all/zero/invalid)",
                  it->second.all_valid, it->second.zero_valid,
                  it->second.invalid_orig);
    benchx::print_vs_paper(it->second.group, measured, paper);
  }

  benchx::print_section("Finding 8.2 narrative (IRR validity, IRR-only)");
  static const std::map<std::pair<int, bool>, std::pair<const char*, const char*>>
      kPaperIrr{
          {{0, true}, {"72.3%", "23.6%"}},
          {{0, false}, {"70.0%", "65.4%"}},
          {{1, true}, {"52.1%", "14.8%"}},
          {{1, false}, {"48.0%", "41.0%"}},
          {{2, true}, {"(median 63.5%)", "0%"}},
          {{2, false}, {"(median 84.0%)", "11.8%"}},
      };
  for (const auto& [key, g] : groups) {
    auto it = kPaperIrr.find(key);
    if (it == kPaperIrr.end() || g.n == 0) continue;
    char measured[160];
    std::snprintf(measured, sizeof(measured),
                  "all-IRR %.1f%% (med %.1f%%), IRR-only %.1f%%",
                  100.0 * g.all_irr_valid / g.n, g.irr_valid_pct.median(),
                  100.0 * g.irr_only / g.n);
    char paper[128];
    std::snprintf(paper, sizeof(paper), "all-IRR %s, IRR-only %s",
                  it->second.first, it->second.second);
    benchx::print_vs_paper(label(key.first, key.second, g.n), measured,
                           paper);
  }

  benchx::print_section("Finding 8.2 headline");
  double manrs_large_median =
      groups.count({2, true}) ? groups[{2, true}].irr_valid_pct.median() : 0;
  double other_large_median =
      groups.count({2, false}) ? groups[{2, false}].irr_valid_pct.median()
                               : 0;
  benchx::print_vs_paper(
      "large MANRS median IRR validity below large non-MANRS",
      manrs_large_median < other_large_median ? "yes" : "NO",
      "yes (63.5% vs 84.0%)");
  return 0;
}
