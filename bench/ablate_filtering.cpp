// Ablation: routing policy (ROV + Action-1 filters) on vs off.
//
// DESIGN.md calls out that the propagation substrate's filtering model is
// load-bearing for every §9 result: with all filter policies removed,
// RPKI-Invalid announcements propagate exactly like valid ones and the
// MANRS-vs-non-MANRS differences of Figs 7-9 must disappear. This bench
// demonstrates that.
#include <cstdio>

#include "harness.h"
#include "ihr/dataset.h"

using namespace manrs;

namespace {

struct Summary {
  double large_manrs_zero_invalid = 0;   // % propagating zero RPKI-Invalid
  double large_other_zero_invalid = 0;
  double invalid_pref_positive = 0;      // Fig 9: % Invalid scores > 0
  double valid_pref_positive = 0;
};

Summary summarize(const topogen::Scenario& scenario,
                  const sim::PropagationSim& simulator) {
  ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
  auto snapshot =
      builder.build(scenario.announcements(), scenario.vrps, scenario.irr);
  auto propagation = core::compute_propagation_stats(snapshot.transits);

  size_t manrs_zero = 0, manrs_n = 0, other_zero = 0, other_n = 0;
  // lint-ok: commutative counter fold, order-independent
  for (const auto& [asn_value, stats] : propagation) {
    net::Asn asn(asn_value);
    if (astopo::classify_size(scenario.graph, asn) !=
        astopo::SizeClass::kLarge) {
      continue;
    }
    if (scenario.manrs.is_member(asn)) {
      ++manrs_n;
      manrs_zero += stats.rpki_invalid == 0;
    } else {
      ++other_n;
      other_zero += stats.rpki_invalid == 0;
    }
  }
  auto scores =
      core::compute_preference_scores(snapshot.transits, scenario.manrs);
  util::EmpiricalDistribution valid, invalid;
  for (const auto& s : scores) {
    if (s.rpki == rpki::RpkiStatus::kValid) valid.add(s.score);
    if (rpki::is_invalid(s.rpki)) invalid.add(s.score);
  }
  Summary out;
  out.large_manrs_zero_invalid =
      manrs_n ? 100.0 * manrs_zero / manrs_n : 0.0;
  out.large_other_zero_invalid =
      other_n ? 100.0 * other_zero / other_n : 0.0;
  out.valid_pref_positive =
      valid.empty() ? 0 : 100.0 * (1.0 - valid.cdf(0.0));
  out.invalid_pref_positive =
      invalid.empty() ? 0 : 100.0 * (1.0 - invalid.cdf(0.0));
  return out;
}

}  // namespace

int main() {
  benchx::print_title("ablate_filtering",
                      "ablation: ROV / Action-1 filtering on vs off");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());

  sim::PropagationSim with_policies = scenario.make_sim();
  sim::PropagationSim no_policies(scenario.graph);  // default: no filters

  Summary on = summarize(scenario, with_policies);
  Summary off = summarize(scenario, no_policies);

  benchx::print_section("large ASes propagating zero RPKI-Invalid");
  std::printf("%-26s %14s %14s\n", "", "filtering on", "filtering off");
  std::printf("%-26s %13.1f%% %13.1f%%\n", "large MANRS",
              on.large_manrs_zero_invalid, off.large_manrs_zero_invalid);
  std::printf("%-26s %13.1f%% %13.1f%%\n", "large non-MANRS",
              on.large_other_zero_invalid, off.large_other_zero_invalid);

  benchx::print_section("Fig 9 separation (share of scores > 0)");
  std::printf("%-26s %14s %14s\n", "", "filtering on", "filtering off");
  std::printf("%-26s %13.1f%% %13.1f%%\n", "RPKI Valid",
              on.valid_pref_positive, off.valid_pref_positive);
  std::printf("%-26s %13.1f%% %13.1f%%\n", "RPKI Invalid",
              on.invalid_pref_positive, off.invalid_pref_positive);
  std::printf("%-26s %13.1f %13.1f\n", "separation (pp)",
              on.valid_pref_positive - on.invalid_pref_positive,
              off.valid_pref_positive - off.invalid_pref_positive);
  std::printf(
      "\nInterpretation: without per-AS filtering, invalid announcements\n"
      "traverse MANRS and non-MANRS transits alike -- the separation in\n"
      "Fig 9 collapses, confirming filtering behaviour (not topology)\n"
      "drives the paper's §9 results.\n");
  return 0;
}
