// Reproduces Fig 6: RPKI saturation (percentage of routed IPv4 address
// space covered by validated ROAs) for MANRS vs non-MANRS networks,
// 2015-2022, plus the §8.6 narrative statistics.
#include <cstdio>

#include "astopo/prefix2as.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("fig06_saturation",
                      "Fig 6 + Finding 8.8 / §8.6 (RPKI saturation)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());

  benchx::print_section("Fig 6 series: RPKI-covered % of routed v4 space");
  std::printf("%-6s %12s %14s\n", "year", "MANRS", "non-MANRS");
  double final_manrs = 0, final_other = 0;
  for (int year = scenario.config.first_year;
       year <= scenario.config.last_year; ++year) {
    astopo::Prefix2As routed;
    for (const auto& po : scenario.announcements_in_year(year)) {
      routed.push_back(po);
    }
    rpki::VrpStore vrps = scenario.vrps_in_year(year);
    // Membership as of that year: build a per-year view by filtering the
    // registry with the cutoff date inside compute (the registry's
    // is_member(asn) is date-less, so emulate by re-checking join dates).
    core::ManrsRegistry as_of;
    util::Date cutoff(year, 12, 31);
    for (const auto& p : scenario.manrs.participants()) {
      if (p.joined <= cutoff) as_of.add_participant(p);
    }
    auto result = core::compute_rpki_saturation(routed, vrps, as_of);
    std::printf("%-6d %11.1f%% %13.1f%%\n", year, result.rsat_manrs(),
                result.rsat_non_manrs());
    final_manrs = result.rsat_manrs();
    final_other = result.rsat_non_manrs();
  }

  benchx::print_section("Finding 8.8 checks (2022)");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", final_manrs);
  benchx::print_vs_paper("MANRS RPKI saturation", buf, "58.2%");
  std::snprintf(buf, sizeof(buf), "%.1f%%", final_other);
  benchx::print_vs_paper("non-MANRS RPKI saturation", buf, "30.2%");

  benchx::print_section("§8.6 narrative (May 2022 snapshot)");
  astopo::Prefix2As routed;
  for (const auto& po : scenario.announcements()) routed.push_back(po);
  auto rpki_sat =
      core::compute_rpki_saturation(routed, scenario.vrps, scenario.manrs);
  auto irr_sat =
      core::compute_irr_saturation(routed, scenario.irr, scenario.manrs);
  double total_space =
      rpki_sat.manrs_routed_space + rpki_sat.non_manrs_routed_space;
  double vrp_uncovered =
      100.0 - 100.0 * (rpki_sat.manrs_covered_space +
                       rpki_sat.non_manrs_covered_space) /
                  total_space;
  double irr_uncovered =
      100.0 - 100.0 * (irr_sat.manrs_covered_space +
                       irr_sat.non_manrs_covered_space) /
                  total_space;
  std::snprintf(buf, sizeof(buf), "%.1f%%", vrp_uncovered);
  benchx::print_vs_paper("routed v4 space with no covering VRP", buf,
                         "64.8%");
  std::snprintf(buf, sizeof(buf), "%.1f%%", irr_uncovered);
  benchx::print_vs_paper("routed v4 space with no IRR route object", buf,
                         "5.3%");
  std::snprintf(buf, sizeof(buf), "%.1f%%", irr_sat.rsat_manrs());
  benchx::print_vs_paper("MANRS space covered by IRR", buf, "95.0%");
  std::snprintf(buf, sizeof(buf), "%.1f%%", irr_sat.rsat_non_manrs());
  benchx::print_vs_paper("non-MANRS space covered by IRR", buf, "84.6%");
  return 0;
}
