// Engineering microbenchmarks (google-benchmark) for the hot paths of the
// pipeline: trie lookups, RFC 6811 validation, IRR validation, RPSL and
// MRT codecs, hegemony computation, and route propagation. These are not
// paper artifacts; they validate that the substrate scales to the
// paper-sized workloads the fig benches run.
#include <benchmark/benchmark.h>

#include <sstream>

#include "astopo/graph.h"
#include "ihr/hegemony.h"
#include "irr/database.h"
#include "irr/rpsl.h"
#include "irr/validation.h"
#include "mrt/table_dump.h"
#include "netbase/prefix_trie.h"
#include "rpki/validation.h"
#include "simulator/propagation.h"
#include "topogen/scenario.h"
#include "util/csv.h"
#include "util/rng.h"

using namespace manrs;

namespace {

net::Prefix random_v4(util::Rng& rng, unsigned min_len = 8,
                      unsigned max_len = 24) {
  unsigned len =
      min_len + static_cast<unsigned>(rng.uniform(max_len - min_len + 1));
  return net::Prefix(
      net::IpAddress::v4(static_cast<uint32_t>(rng.next())), len);
}

rpki::VrpStore make_vrp_store(size_t n) {
  util::Rng rng(n);
  rpki::VrpStore store;
  for (size_t i = 0; i < n; ++i) {
    net::Prefix p = random_v4(rng);
    store.add(rpki::Vrp{p, p.length() + 2 > 32 ? 32 : p.length() + 2,
                        net::Asn(static_cast<uint32_t>(rng.uniform(70000)))});
  }
  return store;
}

void BM_PrefixParse(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Prefix::parse("203.0.113.128/25"));
    benchmark::DoNotOptimize(net::Prefix::parse("2001:db8:abcd::/48"));
  }
}
BENCHMARK(BM_PrefixParse);

void BM_TrieInsert(benchmark::State& state) {
  util::Rng rng(1);
  std::vector<net::Prefix> prefixes;
  for (int i = 0; i < 10000; ++i) prefixes.push_back(random_v4(rng));
  for (auto _ : state) {
    net::PrefixTrie<int> trie;
    for (size_t i = 0; i < prefixes.size(); ++i) {
      trie.insert(prefixes[i], static_cast<int>(i));
    }
    benchmark::DoNotOptimize(trie.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TrieInsert);

void BM_TrieCoveringLookup(benchmark::State& state) {
  util::Rng rng(2);
  net::PrefixTrie<int> trie;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    trie.insert(random_v4(rng), i);
  }
  std::vector<net::Prefix> queries;
  for (int i = 0; i < 1024; ++i) queries.push_back(random_v4(rng, 16, 32));
  size_t qi = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trie.any_covering(queries[qi++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieCoveringLookup)->Arg(1000)->Arg(100000);

void BM_RovValidate(benchmark::State& state) {
  rpki::VrpStore store = make_vrp_store(static_cast<size_t>(state.range(0)));
  util::Rng rng(3);
  std::vector<bgp::PrefixOrigin> routes;
  for (int i = 0; i < 1024; ++i) {
    routes.push_back({random_v4(rng, 12, 24),
                      net::Asn(static_cast<uint32_t>(rng.uniform(70000)))});
  }
  size_t qi = 0;
  for (auto _ : state) {
    const auto& r = routes[qi++ & 1023];
    benchmark::DoNotOptimize(store.validate(r.prefix, r.origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RovValidate)->Arg(10000)->Arg(300000);

void BM_IrrValidate(benchmark::State& state) {
  util::Rng rng(4);
  irr::IrrRegistry registry;
  auto& db = registry.add_database("RADB", false);
  for (int i = 0; i < 100000; ++i) {
    irr::RouteObject route;
    route.prefix = random_v4(rng);
    route.origin = net::Asn(static_cast<uint32_t>(rng.uniform(70000)));
    db.add_route(std::move(route));
  }
  std::vector<bgp::PrefixOrigin> routes;
  for (int i = 0; i < 1024; ++i) {
    routes.push_back({random_v4(rng, 12, 24),
                      net::Asn(static_cast<uint32_t>(rng.uniform(70000)))});
  }
  size_t qi = 0;
  for (auto _ : state) {
    const auto& r = routes[qi++ & 1023];
    benchmark::DoNotOptimize(
        irr::validate_route(registry, r.prefix, r.origin));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IrrValidate);

void BM_RpslParse(benchmark::State& state) {
  std::string doc;
  for (int i = 0; i < 1000; ++i) {
    doc += "route:      10." + std::to_string(i % 250) + "." +
           std::to_string(i / 250) + ".0/24\n";
    doc += "origin:     AS" + std::to_string(64000 + i) + "\n";
    doc += "mnt-by:     MAINT-EXAMPLE\nsource:     RADB\n\n";
  }
  for (auto _ : state) {
    auto objects = irr::parse_rpsl(doc);
    benchmark::DoNotOptimize(objects.size());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_RpslParse);

void BM_MrtEncodeDecode(benchmark::State& state) {
  util::Rng rng(5);
  bgp::Rib rib;
  uint32_t peer = rib.add_peer(net::Asn(65000));
  for (int i = 0; i < 1000; ++i) {
    std::vector<net::Asn> hops;
    for (int h = 0; h < 4; ++h) {
      hops.emplace_back(static_cast<uint32_t>(1 + rng.uniform(70000)));
    }
    rib.insert(random_v4(rng), peer, bgp::AsPath(std::move(hops)));
  }
  rib.finalize();
  for (auto _ : state) {
    std::ostringstream out;
    mrt::TableDumpWriter writer(out, 0);
    writer.write_rib(rib, "bench");
    std::istringstream in(out.str());
    bgp::Rib parsed = mrt::TableDumpReader::read_rib(in);
    benchmark::DoNotOptimize(parsed.entry_count());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_MrtEncodeDecode);

// The temporal snapshot engine finalizes a staged Rib batch every day;
// on quiet days most ops are effective no-ops (withdraw-of-absent,
// re-announce-identical). Arg(0) = a pure no-op batch, which must take
// the staged_is_noop() fast path (no re-sort, no row churn); Arg(1) =
// the same batch plus one real insert, paying the full merge.
void BM_RibNoOpFinalize(benchmark::State& state) {
  util::Rng rng(7);
  bgp::Rib rib;
  uint32_t peer = rib.add_peer(net::Asn(65000));
  std::vector<net::Prefix> prefixes;
  std::vector<bgp::AsPath> paths;
  for (int i = 0; i < 1000; ++i) {
    prefixes.push_back(random_v4(rng));
    std::vector<net::Asn> hops;
    for (int h = 0; h < 4; ++h) {
      hops.emplace_back(static_cast<uint32_t>(1 + rng.uniform(70000)));
    }
    paths.emplace_back(std::move(hops));
    rib.insert(prefixes.back(), peer, paths.back());
  }
  rib.finalize();
  const bool real_op = state.range(0) != 0;
  uint32_t churn = 0;
  for (auto _ : state) {
    rib.begin_delta();
    for (size_t i = 0; i < prefixes.size(); i += 16) {
      rib.insert(prefixes[i], peer, paths[i]);          // identical path
      rib.erase(prefixes[i], peer + 1 + (churn & 1));   // absent peer
    }
    if (real_op) {
      // A genuinely different path for one prefix forces the full merge
      // (table size stays stable across iterations).
      rib.insert(prefixes[churn % prefixes.size()], peer,
                 paths[(churn + 1) % paths.size()]);
    }
    rib.finalize();
    benchmark::DoNotOptimize(rib.entry_count());
    ++churn;
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(prefixes.size() / 16 * 2));
}
BENCHMARK(BM_RibNoOpFinalize)->Arg(0)->Arg(1);

void BM_CsvParse(benchmark::State& state) {
  std::string doc = "URI,ASN,IP Prefix,Max Length\n";
  for (int i = 0; i < 1000; ++i) {
    doc += "rsync://x/roa-" + std::to_string(i) + ".roa,AS" +
           std::to_string(i) + ",10.0." + std::to_string(i % 256) +
           ".0/24,24\n";
  }
  for (auto _ : state) {
    auto rows = util::parse_csv(doc);
    benchmark::DoNotOptimize(rows.size());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_CsvParse);

void BM_Hegemony(benchmark::State& state) {
  util::Rng rng(6);
  std::vector<bgp::AsPath> paths;
  for (int v = 0; v < 50; ++v) {
    std::vector<net::Asn> hops{net::Asn(static_cast<uint32_t>(10000 + v))};
    for (int h = 0; h < 4; ++h) {
      hops.emplace_back(static_cast<uint32_t>(1 + rng.uniform(200)));
    }
    paths.push_back(bgp::AsPath(std::move(hops)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ihr::compute_hegemony(paths, 0.1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Hegemony);

void BM_Propagation(benchmark::State& state) {
  static const topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  static const sim::PropagationSim simulator = scenario.make_sim();
  std::vector<net::Asn> origins;
  for (const auto& p : scenario.profiles) {
    origins.push_back(p.asn);
    if (origins.size() >= 64) break;
  }
  size_t oi = 0;
  for (auto _ : state) {
    auto result = simulator.propagate(origins[oi++ & 63],
                                      sim::AnnouncementClass{});
    benchmark::DoNotOptimize(result.next_hop.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Propagation);

void BM_CustomerCone(benchmark::State& state) {
  static const topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  auto asns = scenario.graph.all_asns();
  size_t ai = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scenario.graph.customer_cone_size(asns[ai++ % asns.size()]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CustomerCone);

}  // namespace

BENCHMARK_MAIN();
