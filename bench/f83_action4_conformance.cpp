// Reproduces Findings 8.3/8.4: AS-level conformance to MANRS Action 4
// (route registration), per program, with the paper's trivially-conformant
// handling for ASes that originate nothing.
#include <cstdio>
#include <map>

#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("f83_action4_conformance",
                      "Findings 8.3/8.4 (Action 4 conformance)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  auto records = benchx::classify_only(scenario, scenario.announcements());
  auto origination = core::compute_origination_stats(records);

  struct ProgramStats {
    size_t total = 0;
    size_t conformant = 0;
    size_t trivially = 0;
    std::map<std::string, size_t> unconformant_orgs;  // org -> AS count
  };
  std::map<core::Program, ProgramStats> programs;

  for (const auto& participant : scenario.manrs.participants()) {
    for (net::Asn asn : participant.registered_ases) {
      auto it = origination.find(asn.value());
      const core::OriginationStats* stats =
          it == origination.end() ? nullptr : &it->second;
      auto verdict = core::check_action4(stats, participant.program);
      ProgramStats& p = programs[participant.program];
      ++p.total;
      if (verdict.conformant) {
        ++p.conformant;
        if (verdict.trivially) ++p.trivially;
      } else {
        ++p.unconformant_orgs[participant.org_id];
      }
    }
  }

  benchx::print_section("per-program conformance");
  for (const auto& [program, stats] : programs) {
    char measured[128];
    std::snprintf(measured, sizeof(measured), "%zu/%zu (%.0f%%)",
                  stats.conformant, stats.total,
                  stats.total ? 100.0 * stats.conformant / stats.total : 0.0);
    const char* paper = program == core::Program::kCdn
                            ? "18/21 (86%), 1 trivially"
                            : "810/849 (95%), 95 trivially";
    benchx::print_vs_paper(
        std::string("Action 4, ") + std::string(core::to_string(program)) +
            " program",
        measured, paper);
    std::printf("  trivially conformant (no originated prefixes): %zu\n",
                stats.trivially);
  }

  benchx::print_section("unconformant organization structure (ISP)");
  const auto& isp = programs[core::Program::kIsp];
  std::printf("unconformant ISP ASes belong to %zu organizations\n",
              isp.unconformant_orgs.size());
  // Histogram of ASes per unconformant org (the paper: one org with 24
  // ASes, one with 2, thirteen with 1).
  std::map<size_t, size_t> histogram;
  size_t max_org = 0;
  for (const auto& [org, count] : isp.unconformant_orgs) {
    ++histogram[count];
    max_org = std::max(max_org, count);
  }
  for (const auto& [ases, orgs] : histogram) {
    std::printf("  %zu org(s) with %zu unconformant AS(es)\n", orgs, ases);
  }
  benchx::print_vs_paper("largest unconformant org (ISP1)",
                         std::to_string(max_org) + " ASes", "24 ASes");
  benchx::print_vs_paper("unconformant ISP orgs total",
                         std::to_string(isp.unconformant_orgs.size()),
                         "15 organizations");
  return 0;
}
