// Reproduces Finding 8.7: conformance stability across 12 weekly
// snapshots (Feb-May 2022), including the CDN1 prefix churn narrative of
// §8.5.
#include <cstdio>
#include <map>
#include <vector>

#include "core/monitoring.h"
#include "harness.h"
#include "topogen/history.h"

using namespace manrs;

int main() {
  benchx::print_title("f87_stability",
                      "Finding 8.7 / §8.5 (conformance stability)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  topogen::WeeklySeries series = topogen::build_weekly_series(scenario, 12);

  // Per week, per MANRS AS: Action 4 verdict.
  std::map<uint32_t, std::vector<bool>> verdicts;
  for (size_t w = 0; w < series.announcements.size(); ++w) {
    auto records =
        benchx::classify_only(scenario, series.announcements[w]);
    auto origination = core::compute_origination_stats(records);
    for (const auto& participant : scenario.manrs.participants()) {
      for (net::Asn asn : participant.registered_ases) {
        auto it = origination.find(asn.value());
        auto verdict = core::check_action4(
            it == origination.end() ? nullptr : &it->second,
            participant.program);
        verdicts[asn.value()].push_back(verdict.conformant);
      }
    }
  }

  size_t always_conformant = 0, always_unconformant = 0, fluctuating = 0;
  size_t flip_floppers = 0;  // more than one unconformant episode
  std::map<std::string, size_t> fluctuating_orgs;
  for (const auto& [asn_value, history] : verdicts) {
    size_t bad_weeks = 0, episodes = 0;
    bool prev_bad = false;
    for (bool ok : history) {
      bool bad = !ok;
      bad_weeks += bad;
      if (bad && !prev_bad) ++episodes;
      prev_bad = bad;
    }
    if (bad_weeks == 0) {
      ++always_conformant;
    } else if (bad_weeks == history.size()) {
      ++always_unconformant;
    } else {
      ++fluctuating;
      if (episodes > 1) ++flip_floppers;
      if (const core::Participant* p =
              scenario.manrs.participant_of(net::Asn(asn_value))) {
        ++fluctuating_orgs[p->org_id];
      }
    }
  }

  benchx::print_section("weekly Action-4 stability over 12 snapshots");
  benchx::print_vs_paper("consistently conformant MANRS ASes",
                         std::to_string(always_conformant),
                         "803/849 ISPs + 18/21 CDNs (combined view)");
  benchx::print_vs_paper("consistently unconformant",
                         std::to_string(always_unconformant),
                         "35 ISP ASes + 3 CDNs");
  benchx::print_vs_paper("unconformant in only some weeks",
                         std::to_string(fluctuating),
                         "11 ASes (10 organizations)");
  benchx::print_vs_paper("ASes with >1 unconformance episode",
                         std::to_string(flip_floppers), "1 (flip-flopper)");
  benchx::print_vs_paper("organizations among the fluctuating ASes",
                         std::to_string(fluctuating_orgs.size()), "10");

  benchx::print_section("CDN1 prefix churn (§8.5)");
  benchx::print_vs_paper("CDN1 prefixes stopped during the window",
                         std::to_string(series.cdn1_stopped), "80");
  benchx::print_vs_paper("CDN1 new prefixes during the window",
                         std::to_string(series.cdn1_new), "141");

  // The actionable delta view (§10: operators asked the reports for more
  // actionable information): first week vs last week.
  benchx::print_section("window delta (first week -> last week)");
  auto first = benchx::classify_only(scenario, series.announcements.front());
  auto last = benchx::classify_only(scenario, series.announcements.back());
  core::ConformanceDelta delta = core::diff_conformance(first, last);
  size_t became = 0, resolved = 0, appeared = 0, withdrawn = 0;
  for (const auto& change : delta.prefix_changes) {
    switch (change.transition) {
      case core::PrefixTransition::kBecameUnconformant:
        ++became;
        break;
      case core::PrefixTransition::kResolved:
        ++resolved;
        break;
      case core::PrefixTransition::kNewUnconformant:
        ++appeared;
        break;
      case core::PrefixTransition::kWithdrawnUnconformant:
        ++withdrawn;
        break;
    }
  }
  std::printf("prefix-origins: %zu became unconformant, %zu resolved, %zu "
              "appeared unconformant, %zu withdrawn while unconformant\n",
              became, resolved, appeared, withdrawn);
  std::printf("AS verdict flips: %zu (stable: %zu conformant, %zu "
              "unconformant)\n",
              delta.as_transitions.size(), delta.stable_conformant_ases,
              delta.stable_unconformant_ases);
  return 0;
}
