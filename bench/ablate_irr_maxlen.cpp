// Ablation: the paper's invalid-length-as-conformant rule (§3/§6.4).
//
// The paper counts IRR "invalid prefix length" as MANRS-conformant because
// de-aggregation for traffic engineering is routine. This bench re-runs
// the Action 4 conformance analysis with a strict rule (only RPKI Valid or
// IRR Valid counts) to show how sensitive the headline numbers are to
// that choice.
#include <cstdio>
#include <map>

#include "harness.h"

using namespace manrs;

namespace {

struct Counts {
  size_t conformant = 0;
  size_t total = 0;
};

std::map<core::Program, Counts> run(
    const topogen::Scenario& scenario,
    const std::vector<ihr::PrefixOriginRecord>& records, bool strict) {
  // Per-AS conformant-prefix counts under the chosen rule.
  std::unordered_map<uint32_t, std::pair<size_t, size_t>> per_as;
  for (const auto& r : records) {
    auto& [ok, total] = per_as[r.origin.value()];
    ++total;
    bool conformant;
    if (strict) {
      conformant = r.rpki == rpki::RpkiStatus::kValid ||
                   r.irr == irr::IrrStatus::kValid;
    } else {
      conformant = core::classify_conformance(r.rpki, r.irr) ==
                   core::ConformanceClass::kConformant;
    }
    if (conformant) ++ok;
  }

  std::map<core::Program, Counts> out;
  for (const auto& participant : scenario.manrs.participants()) {
    for (net::Asn asn : participant.registered_ases) {
      Counts& c = out[participant.program];
      ++c.total;
      auto it = per_as.find(asn.value());
      if (it == per_as.end() || it->second.second == 0) {
        ++c.conformant;  // trivially conformant
        continue;
      }
      double pct = 100.0 * static_cast<double>(it->second.first) /
                   static_cast<double>(it->second.second);
      double threshold = core::action4_threshold(participant.program);
      bool ok = threshold >= 100.0 ? it->second.first == it->second.second
                                   : pct >= threshold;
      if (ok) ++c.conformant;
    }
  }
  return out;
}

}  // namespace

int main() {
  benchx::print_title("ablate_irr_maxlen",
                      "ablation: IRR invalid-length conformance rule");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  auto records = benchx::classify_only(scenario, scenario.announcements());

  auto paper_rule = run(scenario, records, /*strict=*/false);
  auto strict_rule = run(scenario, records, /*strict=*/true);

  benchx::print_section("Action 4 conformance under both rules");
  std::printf("%-10s %28s %28s\n", "program", "paper rule (invlen ok)",
              "strict rule (invlen bad)");
  for (auto program : {core::Program::kIsp, core::Program::kCdn}) {
    const Counts& a = paper_rule[program];
    const Counts& b = strict_rule[program];
    std::printf("%-10s %17zu/%zu (%4.1f%%) %17zu/%zu (%4.1f%%)\n",
                std::string(core::to_string(program)).c_str(), a.conformant,
                a.total, a.total ? 100.0 * a.conformant / a.total : 0.0,
                b.conformant, b.total,
                b.total ? 100.0 * b.conformant / b.total : 0.0);
  }
  std::printf(
      "\nInterpretation: the strict rule reclassifies de-aggregating\n"
      "operators (aggregate-only IRR registrations) as unconformant,\n"
      "which is why the paper adopts the lenient rule (§3).\n");
  return 0;
}
