// Ablation: the Action 4 conformance threshold.
//
// The ISP program requires >= 90% IRR/RPKI-valid originations and the CDN
// program 100%. This bench sweeps the threshold from 50% to 100% and
// reports the fraction of MANRS ASes that would be conformant at each
// level -- showing where the paper's 90/100 choices sit on the curve.
#include <cstdio>

#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("ablate_thresholds",
                      "ablation: Action 4 threshold sweep");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  auto records = benchx::classify_only(scenario, scenario.announcements());
  auto origination = core::compute_origination_stats(records);

  benchx::print_section("conformant fraction vs threshold");
  std::printf("%-11s %12s %12s\n", "threshold", "ISP ASes", "CDN ASes");
  for (int threshold = 50; threshold <= 100; threshold += 5) {
    size_t isp_ok = 0, isp_total = 0, cdn_ok = 0, cdn_total = 0;
    for (const auto& participant : scenario.manrs.participants()) {
      for (net::Asn asn : participant.registered_ases) {
        auto it = origination.find(asn.value());
        bool ok;
        if (it == origination.end() || it->second.total == 0) {
          ok = true;  // trivially conformant
        } else if (threshold >= 100) {
          ok = it->second.conformant == it->second.total;
        } else {
          ok = it->second.og_conformant() >= threshold;
        }
        if (participant.program == core::Program::kCdn) {
          ++cdn_total;
          cdn_ok += ok;
        } else {
          ++isp_total;
          isp_ok += ok;
        }
      }
    }
    std::printf("%9d%% %11.1f%% %11.1f%%%s\n", threshold,
                isp_total ? 100.0 * isp_ok / isp_total : 0.0,
                cdn_total ? 100.0 * cdn_ok / cdn_total : 0.0,
                threshold == 90 ? "   <- ISP requirement"
                                : (threshold == 100 ? "   <- CDN requirement"
                                                    : ""));
  }
  std::printf(
      "\nInterpretation: conformance is threshold-insensitive below ~90%%\n"
      "because per-AS validity is strongly bimodal (Fig 5a); the CDN\n"
      "100%% bar is the only cliff.\n");
  return 0;
}
