// Reproduces Fig 7a (CDF of % propagated RPKI-Invalid prefixes) and Fig 7b
// (CDF of % propagated IRR-Invalid prefixes) for the six populations, plus
// the §9.1/§9.2 narrative statistics.
#include <cstdio>
#include <map>

#include "astopo/asrank.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("fig07_filtering",
                      "Fig 7a/7b + Findings 9.1/9.2 (route filtering)");
  benchx::Pipeline pipeline = benchx::Pipeline::build();

  struct GroupStats {
    util::EmpiricalDistribution rpki_invalid_pct;
    util::EmpiricalDistribution irr_invalid_pct;
    size_t n = 0;
    size_t zero_rpki_invalid = 0;
  };
  std::map<std::pair<int, bool>, GroupStats> groups;
  for (const auto& [asn_value, stats] : pipeline.propagation) {
    net::Asn asn(asn_value);
    auto size = astopo::classify_size(pipeline.scenario.graph, asn);
    bool member = pipeline.scenario.manrs.is_member(asn);
    GroupStats& g = groups[{static_cast<int>(size), member}];
    ++g.n;
    g.rpki_invalid_pct.add(stats.pg_rpki_invalid());
    g.irr_invalid_pct.add(stats.pg_irr_invalid());
    if (stats.rpki_invalid == 0) ++g.zero_rpki_invalid;
  }

  auto label = [&](int size, bool member, size_t n) {
    return benchx::group_label(
        {static_cast<astopo::SizeClass>(size), member}, n);
  };

  benchx::print_section("Fig 7a: CDF of % propagated RPKI Invalid prefixes");
  for (const auto& [key, g] : groups) {
    benchx::print_cdf(label(key.first, key.second, g.n), g.rpki_invalid_pct,
                      0, 2.0);
    benchx::export_cdf("fig07a", label(key.first, key.second, g.n),
                       g.rpki_invalid_pct);
  }

  benchx::print_section("Fig 7b: CDF of % propagated IRR Invalid prefixes");
  for (const auto& [key, g] : groups) {
    benchx::print_cdf(label(key.first, key.second, g.n), g.irr_invalid_pct,
                      0, 40.0);
    benchx::export_cdf("fig07b", label(key.first, key.second, g.n),
                       g.irr_invalid_pct);
  }

  benchx::print_section("Finding 9.1 narrative");
  auto zero_share = [&](int size, bool member) {
    auto it = groups.find({size, member});
    if (it == groups.end() || it->second.n == 0) return 0.0;
    return 100.0 * static_cast<double>(it->second.zero_rpki_invalid) /
           static_cast<double>(it->second.n);
  };
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.1f%% vs %.1f%%", zero_share(2, true),
                zero_share(2, false));
  benchx::print_vs_paper(
      "large ASes propagating zero RPKI-Invalid (MANRS vs non)", buf,
      "45.9% vs 36.0%");
  auto max_of = [&](int size, bool member,
                    bool irr) -> double {
    auto it = groups.find({size, member});
    if (it == groups.end() || it->second.n == 0) return 0.0;
    return irr ? it->second.irr_invalid_pct.max()
               : it->second.rpki_invalid_pct.max();
  };
  std::snprintf(buf, sizeof(buf), "%.1f%% vs %.1f%%",
                max_of(2, true, false), max_of(2, false, false));
  benchx::print_vs_paper(
      "max % RPKI-Invalid propagated by large ASes (MANRS vs non)", buf,
      "1.1% vs 6.4%");
  std::snprintf(buf, sizeof(buf), "%.1f%% vs %.1f%%", zero_share(0, true),
                zero_share(0, false));
  benchx::print_vs_paper(
      "small ASes propagating zero RPKI-Invalid (MANRS vs non)", buf,
      "99.2% vs 99.1%");

  benchx::print_section("Finding 9.2 narrative");
  std::snprintf(buf, sizeof(buf), "%.1f%% vs %.1f%%", max_of(2, true, true),
                max_of(2, false, true));
  benchx::print_vs_paper(
      "max % IRR-Invalid propagated by large ASes (MANRS vs non)", buf,
      "25.5% vs 74.5%");
  auto variance_of = [&](bool member) {
    auto it = groups.find({2, member});
    if (it == groups.end()) return 0.0;
    return it->second.irr_invalid_pct.variance();
  };
  std::snprintf(buf, sizeof(buf), "%.0f vs %.0f", variance_of(true),
                variance_of(false));
  benchx::print_vs_paper(
      "variance of large IRR-Invalid propagation % (MANRS vs non)", buf,
      "39 vs 134");
  return 0;
}
