// Extension bench: the MANRS Observatory view (the paper's reference [1])
// computed from our measured data -- per-participant readiness by action,
// bucket distribution, and per-RIR aggregates.
#include <array>
#include <cstdio>

#include "core/observatory.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("ext_observatory",
                      "MANRS Observatory readiness (paper ref [1])");
  benchx::Pipeline pipeline = benchx::Pipeline::build();
  const topogen::Scenario& scenario = pipeline.scenario;

  core::ObservatoryInputs inputs{
      scenario.manrs,       scenario.irr,
      scenario.peeringdb,   pipeline.snapshot.prefix_origins,
      pipeline.snapshot.transits, scenario.snapshot_date};
  auto readiness = core::score_participants(inputs);
  auto summary = core::summarize(readiness);

  benchx::print_section("ecosystem readiness");
  std::printf("participants: %zu  ready %zu  aspiring %zu  lagging %zu\n",
              readiness.size(), summary.ready, summary.aspiring,
              summary.lagging);
  std::printf("mean readiness: Action1 %.1f%%  Action3 %.1f%%  Action4 "
              "%.1f%%  overall %.1f%%\n",
              summary.mean_action1, summary.mean_action3,
              summary.mean_action4, summary.mean_overall);

  benchx::print_section("per-program readiness");
  for (auto program : {core::Program::kIsp, core::Program::kCdn}) {
    std::vector<core::ParticipantReadiness> subset;
    for (const auto& r : readiness) {
      if (r.program == program) subset.push_back(r);
    }
    auto s = core::summarize(subset);
    std::printf("%-4s n=%-4zu A1 %.1f%% A3 %.1f%% A4 %.1f%% overall "
                "%.1f%% (ready %zu / aspiring %zu / lagging %zu)\n",
                std::string(core::to_string(program)).c_str(), subset.size(),
                s.mean_action1, s.mean_action3, s.mean_action4,
                s.mean_overall, s.ready, s.aspiring, s.lagging);
  }

  benchx::print_section("per-RIR readiness");
  std::array<std::vector<core::ParticipantReadiness>, 5> by_rir;
  for (const auto& r : readiness) {
    const astopo::Organization* org =
        scenario.as2org.find_organization(r.org_id);
    if (org) by_rir[static_cast<size_t>(org->rir)].push_back(r);
  }
  for (net::Rir rir : net::kAllRirs) {
    const auto& subset = by_rir[static_cast<size_t>(rir)];
    if (subset.empty()) continue;
    auto s = core::summarize(subset);
    std::printf("%-8s n=%-4zu overall %.1f%% (ready %zu / aspiring %zu / "
                "lagging %zu)\n",
                std::string(net::rir_name(rir)).c_str(), subset.size(),
                s.mean_overall, s.ready, s.aspiring, s.lagging);
  }

  benchx::print_section("worst laggards (what the private reports flag)");
  std::vector<const core::ParticipantReadiness*> sorted;
  for (const auto& r : readiness) sorted.push_back(&r);
  std::sort(sorted.begin(), sorted.end(), [](auto* a, auto* b) {
    return a->overall < b->overall;
  });
  for (size_t i = 0; i < sorted.size() && i < 8; ++i) {
    std::printf("  %-12s %-4s A1 %5.1f%% A3 %5.1f%% A4 %5.1f%% -> %s\n",
                sorted[i]->org_id.c_str(),
                std::string(core::to_string(sorted[i]->program)).c_str(),
                sorted[i]->action1, sorted[i]->action3, sorted[i]->action4,
                std::string(core::to_string(sorted[i]->bucket)).c_str());
  }
  return 0;
}
