// Reproduces Fig 8: CDF of the percentage of MANRS-unconformant prefixes
// propagated from *direct customers*, by population (Formula 6).
#include <cstdio>
#include <map>

#include "astopo/asrank.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("fig08_unconformant",
                      "Fig 8 (propagated unconformant customer prefixes)");
  benchx::Pipeline pipeline = benchx::Pipeline::build();

  struct GroupStats {
    util::EmpiricalDistribution unconformant_pct;
    size_t n = 0;
  };
  std::map<std::pair<int, bool>, GroupStats> groups;
  for (const auto& [asn_value, stats] : pipeline.propagation) {
    if (stats.customer_total == 0) continue;  // Formula 6 denominator
    net::Asn asn(asn_value);
    auto size = astopo::classify_size(pipeline.scenario.graph, asn);
    bool member = pipeline.scenario.manrs.is_member(asn);
    GroupStats& g = groups[{static_cast<int>(size), member}];
    ++g.n;
    g.unconformant_pct.add(stats.pg_unconformant());
  }

  benchx::print_section(
      "Fig 8: CDF of % propagated MANRS-unconformant customer prefixes");
  for (const auto& [key, g] : groups) {
    std::string group = benchx::group_label(
        {static_cast<astopo::SizeClass>(key.first), key.second}, g.n);
    benchx::print_cdf(group, g.unconformant_pct, 0, 25.0);
    benchx::export_cdf("fig08", group, g.unconformant_pct);
  }

  benchx::print_section("shape checks vs paper");
  auto median_of = [&](int size, bool member) {
    auto it = groups.find({size, member});
    if (it == groups.end() || it->second.n == 0) return -1.0;
    return it->second.unconformant_pct.median();
  };
  auto max_of = [&](int size, bool member) {
    auto it = groups.find({size, member});
    if (it == groups.end() || it->second.n == 0) return -1.0;
    return it->second.unconformant_pct.max();
  };
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", median_of(2, true));
  benchx::print_vs_paper("median large MANRS unconformant propagation", buf,
                         "2.5%");
  std::snprintf(buf, sizeof(buf), "%.1f%%", max_of(2, true));
  benchx::print_vs_paper("max large MANRS unconformant propagation", buf,
                         "<15%");
  std::snprintf(buf, sizeof(buf), "%.1f%%", max_of(2, false));
  benchx::print_vs_paper("max large non-MANRS unconformant propagation",
                         buf, "41.4%");
  bool manrs_better =
      median_of(1, true) >= 0 && median_of(1, false) >= 0 &&
      median_of(1, true) <= median_of(1, false);
  benchx::print_vs_paper(
      "MANRS ASes more likely Action-1 conformant than non-MANRS",
      manrs_better ? "yes (medium medians)" : "mixed",
      "yes, in every class");
  return 0;
}
