// Reproduces Table 1: the six case-study organizations' non-conformant
// prefix-origins, broken down by the relationship between the BGP origin
// and the registered origin (Sibling/C-P vs Unrelated).
#include <cstdio>

#include "core/report.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("table1_casestudies",
                      "Table 1 (case-study non-conformant prefix origins)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  auto records = benchx::classify_only(scenario, scenario.announcements());

  benchx::print_section("Table 1 (measured)");
  std::printf("%-6s %12s %12s %10s %14s %12s %10s %8s\n", "org",
              "RPKI-Invalid", "Sibling/C-P", "Unrelated", "IRR-Inv(RPKI-NF)",
              "Sibling/C-P", "Unrelated", "NF-both");
  for (const auto& [label, org_id] : scenario.case_study_orgs) {
    const core::Participant* participant = scenario.manrs.find_org(org_id);
    if (!participant) continue;
    core::CaseStudyRow row = core::analyze_unconformant_org(
        *participant, label, scenario.as2org, scenario.graph, records,
        scenario.vrps, scenario.irr);
    std::printf("%-6s %12zu %12zu %10zu %14zu %12zu %10zu %8zu\n",
                row.label.c_str(), row.rpki_invalid, row.rpki_sibling_cp,
                row.rpki_unrelated, row.irr_invalid, row.irr_sibling_cp,
                row.irr_unrelated, row.unregistered);
  }

  benchx::print_section("Table 1 (paper)");
  std::printf(
      "CDN1:  3 RPKI-Invalid (3 sibling)          48 IRR-Invalid (38 s/cp, 10 unrel)\n"
      "CDN2:  (1 RPKI-NotFound only)               0 IRR-Invalid\n"
      "CDN3:  0                                    5 IRR-Invalid (5 s/cp)\n"
      "ISP1:  1 RPKI-Invalid (1 unrelated)       302 IRR-Invalid (154 s/cp, 148 unrel)\n"
      "ISP2:  8 RPKI-Invalid (6 s/cp, 2 unrel)   272 IRR-Invalid (152 s/cp, 120 unrel)\n"
      "ISP3:  1 RPKI-Invalid (1 s/cp)            486 IRR-Invalid (359 s/cp, 127 unrel)\n");

  benchx::print_section("Finding 8.5 check");
  benchx::print_vs_paper(
      "majority of mismatching origins are Sibling/C-P",
      "see table", ">50% Sibling/C-P in 5 of 6 orgs");
  return 0;
}
