// Extension bench (the paper's §12 future work): routing-incident rates
// for MANRS vs non-MANRS origins over the Feb-May 2022 window.
//
// The weekly announcement tables are diffed into BGP4MP update streams
// (the real RouteViews product the analysis would consume), written to and
// re-read from the wire format, replayed into snapshots, and fed to the
// incident detector -- exercising the full event-analysis pipeline.
#include <cstdio>
#include <sstream>
#include <unordered_set>

#include "core/incidents.h"
#include "harness.h"
#include "mrt/bgp4mp.h"
#include "topogen/history.h"

using namespace manrs;

int main() {
  benchx::print_title("ext_incidents",
                      "§12 future work (routing incidents, MANRS vs rest)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  topogen::WeeklySeries series = topogen::build_weekly_series(scenario, 12);

  // Weekly tables -> BGP4MP update stream -> wire -> replayed snapshots.
  benchx::print_section("update-stream statistics");
  std::ostringstream wire;
  mrt::Bgp4mpWriter writer(wire);
  net::Asn collector_peer = scenario.vantage_points.front();
  size_t total_announced = 0, total_withdrawn = 0;
  for (size_t w = 1; w < series.announcements.size(); ++w) {
    auto updates = mrt::diff_tables(series.announcements[w - 1],
                                    series.announcements[w], collector_peer);
    for (auto& update : updates) {
      total_announced += update.announced.size();
      total_withdrawn += update.withdrawn.size();
      mrt::Bgp4mpRecord record;
      record.timestamp = static_cast<uint32_t>(
          series.dates[w].to_days() * 86400);
      record.peer_asn = collector_peer;
      record.local_asn = net::Asn(65535);
      record.peer_ip = net::IpAddress::v4(0x0A000001);
      record.local_ip = net::IpAddress::v4(0x0A000002);
      record.update = std::move(update);
      writer.write(record);
    }
  }
  std::printf("weeks: %zu, BGP4MP records: %zu (%zu announced, %zu "
              "withdrawn prefixes, %zu bytes on the wire)\n",
              series.announcements.size(), writer.records_written(),
              total_announced, total_withdrawn, wire.str().size());

  // Replay the wire stream over the first table to rebuild the snapshots.
  std::istringstream wire_in(wire.str());
  mrt::Bgp4mpReader reader(wire_in);
  std::unordered_set<std::string> current;
  for (const auto& po : series.announcements[0]) {
    current.insert(po.to_string());
  }
  size_t replayed_adds = 0, replayed_removes = 0;
  mrt::Bgp4mpRecord record;
  while (reader.next(record)) {
    for (const auto& prefix : record.update.announced) {
      bgp::PrefixOrigin po{prefix, *record.update.path.origin()};
      if (current.insert(po.to_string()).second) ++replayed_adds;
    }
    for (const auto& prefix : record.update.withdrawn) {
      // Withdrawals carry no origin; remove every matching prefix entry.
      for (auto it = current.begin(); it != current.end();) {
        if (it->rfind(prefix.to_string() + " ", 0) == 0) {
          it = current.erase(it);
          ++replayed_removes;
        } else {
          ++it;
        }
      }
    }
  }
  std::printf("replayed %zu adds / %zu removes; final table %zu vs "
              "expected %zu (bad records: %zu)\n",
              replayed_adds, replayed_removes, current.size(),
              series.announcements.back().size(), reader.bad_records());

  // Incident detection over the weekly snapshots.
  benchx::print_section("incidents over the 12-week window");
  core::IncidentDetector detector(scenario.vrps);
  for (const auto& table : series.announcements) detector.observe(table);
  auto incidents = detector.incidents();

  std::unordered_set<uint32_t> member_origins, other_origins;
  for (const auto& po : scenario.announcements()) {
    if (scenario.manrs.is_member(po.origin)) {
      member_origins.insert(po.origin.value());
    } else {
      other_origins.insert(po.origin.value());
    }
  }
  auto summary =
      core::summarize_incidents(incidents, scenario.manrs,
                                member_origins.size(), other_origins.size());
  std::printf("incidents: %zu total (%zu MOAS conflicts, %zu RPKI-invalid "
              "originations), mean duration %.1f weeks\n",
              summary.total, summary.moas, summary.rpki_invalid,
              summary.mean_duration);
  std::printf("offenders: %zu MANRS members, %zu others\n",
              summary.by_manrs_members, summary.by_others);
  std::printf("incident rate per originating AS: MANRS %.4f vs others "
              "%.4f\n",
              summary.member_rate_per_origin, summary.other_rate_per_origin);
  benchx::print_vs_paper(
      "MANRS members cause fewer incidents per origin",
      summary.member_rate_per_origin < summary.other_rate_per_origin
          ? "yes"
          : "no (scripted leaks target members)",
      "open question (§12 future work)");
  std::printf(
      "\nNote: the scripted §8.5 fluctuations are member route leaks, so\n"
      "the member rate here includes them by construction; the bench\n"
      "demonstrates the measurement, not a finding of the paper.\n");
  return 0;
}
