// Reproduces Table 2: Action 1 (filtering) conformance by size class,
// with the paper's trivially-conformant convention for MANRS ASes that
// propagate nothing.
#include <cstdio>

#include "astopo/asrank.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("table2_action1", "Table 2 (Action 1 conformance)");
  benchx::Pipeline pipeline = benchx::Pipeline::build();

  struct Row {
    size_t transit_conformant = 0;
    size_t total_transit = 0;
    size_t total_conformant = 0;
    size_t total = 0;
  };
  Row rows[3];

  for (net::Asn asn : pipeline.scenario.manrs.member_ases()) {
    auto size = astopo::classify_size(pipeline.scenario.graph, asn);
    Row& row = rows[static_cast<size_t>(size)];
    auto it = pipeline.propagation.find(asn.value());
    auto verdict = core::check_action1(
        it == pipeline.propagation.end() ? nullptr : &it->second);
    ++row.total;
    if (verdict.conformant) ++row.total_conformant;
    if (verdict.provides_transit) {
      ++row.total_transit;
      if (verdict.conformant) ++row.transit_conformant;
    }
  }

  benchx::print_section("Table 2 (measured)");
  std::printf("%-8s %20s %14s %18s %12s\n", "class", "TransitConformant",
              "TotalTransit", "TotalConformant", "TotalMANRS");
  static const char* kNames[3] = {"Small", "Medium", "Large"};
  for (int i = 0; i < 3; ++i) {
    const Row& r = rows[i];
    std::printf("%-8s %14zu (%3.0f%%) %14zu %12zu (%3.0f%%) %12zu\n",
                kNames[i], r.transit_conformant,
                r.total_transit ? 100.0 * r.transit_conformant /
                                      r.total_transit
                                : 100.0,
                r.total_transit, r.total_conformant,
                r.total ? 100.0 * r.total_conformant / r.total : 0.0,
                r.total);
  }

  benchx::print_section("Table 2 (paper)");
  std::printf(
      "Small:   101 (97.1%%) transit-conformant of 104; 448 (99.3%%) of 451\n"
      "Medium:  200 (65.1%%) of 307;                    212 (66.4%%) of 319\n"
      "Large:   0 (0%%) of 24;                          0 (0%%) of 24\n");

  benchx::print_section("Finding 9.3 headline");
  size_t conformant = rows[0].total_conformant + rows[1].total_conformant +
                      rows[2].total_conformant;
  size_t total = rows[0].total + rows[1].total + rows[2].total;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%",
                total ? 100.0 * conformant / total : 0.0);
  benchx::print_vs_paper("MANRS ASes fully Action-1 conformant", buf,
                         "over 83%");
  return 0;
}
