// Reproduces Finding 7.0: MANRS registration completeness -- how much of
// each member organization's AS footprint is registered, and whether its
// address space is announced through registered ASes.
#include <cstdio>

#include "core/report.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("f70_completeness",
                      "Finding 7.0 (registration completeness)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  auto records =
      benchx::classify_only(scenario, scenario.announcements());

  core::CompletenessStats stats = core::compute_registration_completeness(
      scenario.manrs, scenario.as2org, records);

  benchx::print_section("organization-level completeness");
  benchx::print_vs_paper(
      "orgs with all their ASes registered",
      std::to_string(stats.orgs_all_ases_registered) + " (" +
          util::percent(stats.pct_all_ases()) + ")",
      "463 (70%)");
  benchx::print_vs_paper(
      "orgs announcing all space via registered ASes",
      std::to_string(stats.orgs_all_space_via_registered) + " (" +
          util::percent(stats.pct_all_space()) + ")",
      "543 (82%)");
  benchx::print_vs_paper(
      "orgs announcing some space from non-MANRS ASes",
      std::to_string(stats.orgs_some_space_unregistered), "117");
  benchx::print_vs_paper(
      "... of which only announce from non-MANRS ASes",
      std::to_string(stats.orgs_only_unregistered_space), "8");
  benchx::print_vs_paper(
      "partial orgs whose unregistered ASes are quiescent",
      std::to_string(stats.orgs_quiescent_unregistered), "80");
  std::printf("\ntotal MANRS organizations: %zu\n", stats.total_orgs);
  return 0;
}
