// Ablation: the AS-hegemony trim fraction.
//
// IHR trims the top/bottom 10% of viewpoint indicators before averaging
// to suppress vantage-point bias. This bench rebuilds the transit dataset
// at trim 0, 0.1 and 0.25 and reports how the Fig 9 separation between
// RPKI-Invalid and Valid prefix-origins responds.
#include <cstdio>

#include "harness.h"
#include "ihr/dataset.h"

using namespace manrs;

int main() {
  benchx::print_title("ablate_hegemony_trim",
                      "ablation: hegemony trim fraction");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  sim::PropagationSim simulator = scenario.make_sim();

  std::printf("%-8s %16s %18s %18s %18s\n", "trim", "transit records",
              "valid pref>0", "invalid pref>0", "separation");
  for (double trim : {0.0, 0.1, 0.25}) {
    ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points,
                                    trim);
    auto snapshot = builder.build(scenario.announcements(), scenario.vrps,
                                  scenario.irr);
    auto scores =
        core::compute_preference_scores(snapshot.transits, scenario.manrs);
    util::EmpiricalDistribution valid, invalid;
    for (const auto& s : scores) {
      if (s.rpki == rpki::RpkiStatus::kValid) valid.add(s.score);
      if (rpki::is_invalid(s.rpki)) invalid.add(s.score);
    }
    double valid_pos = valid.empty() ? 0 : 100.0 * (1.0 - valid.cdf(0.0));
    double invalid_pos =
        invalid.empty() ? 0 : 100.0 * (1.0 - invalid.cdf(0.0));
    std::printf("%-8.2f %16zu %17.1f%% %17.1f%% %17.1f\n", trim,
                snapshot.transits.size(), valid_pos, invalid_pos,
                valid_pos - invalid_pos);
  }
  std::printf(
      "\nInterpretation: trimming shrinks the transit dataset (rarely-seen\n"
      "transits drop out) but the Invalid-vs-Valid separation -- the\n"
      "paper's Finding 9.4 -- survives every trim level.\n");
  return 0;
}
