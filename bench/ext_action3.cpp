// Extension bench (§12 future work: "extend this study to actions that
// are not related to routing"): MANRS Action 3 -- maintain up-to-date
// contact information in the IRR or PeeringDB -- measured the same way the
// paper measures Actions 1/4.
#include <cstdio>

#include "core/peeringdb.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("ext_action3",
                      "§12 future work (Action 3: contact information)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());

  struct Row {
    size_t total = 0;
    size_t conformant = 0;
    size_t via_irr = 0;
    size_t via_pdb = 0;
    size_t stale_pdb = 0;
  };
  Row members, others;
  for (const auto& profile : scenario.profiles) {
    auto verdict = core::check_action3(scenario.irr, scenario.peeringdb,
                                       profile.asn, scenario.snapshot_date);
    Row& row = profile.manrs ? members : others;
    ++row.total;
    if (verdict.conformant) ++row.conformant;
    if (verdict.via_irr) ++row.via_irr;
    if (verdict.via_peeringdb) ++row.via_pdb;
    if (verdict.stale_peeringdb) ++row.stale_pdb;
  }

  benchx::print_section("Action 3 conformance (contact registered)");
  std::printf("%-12s %10s %12s %10s %12s %12s\n", "group", "ASes",
              "conformant", "via IRR", "via PDB", "stale PDB");
  auto print_row = [](const char* name, const Row& row) {
    std::printf("%-12s %10zu %11.1f%% %9.1f%% %11.1f%% %11.1f%%\n", name,
                row.total,
                row.total ? 100.0 * row.conformant / row.total : 0.0,
                row.total ? 100.0 * row.via_irr / row.total : 0.0,
                row.total ? 100.0 * row.via_pdb / row.total : 0.0,
                row.total ? 100.0 * row.stale_pdb / row.total : 0.0);
  };
  print_row("MANRS", members);
  print_row("non-MANRS", others);

  benchx::print_vs_paper(
      "\nMANRS members more likely to maintain contacts",
      members.total && others.total &&
              (100.0 * members.conformant / members.total >
               100.0 * others.conformant / others.total)
          ? "yes"
          : "no",
      "expected (Action 3 is mandatory for members)");
  std::printf(
      "\nNote: the paper measures Actions 1/4 only; this bench applies the\n"
      "same methodology to Action 3 per the paper's §12 future work.\n");
  return 0;
}
