// perf_pipeline -- wall-clock benchmark of the parallelized pipeline
// stages, with a machine-readable JSON trail for the perf trajectory
// across PRs.
//
// Times each stage once with the exact serial fallback (1 thread) and
// once with the parallel pool, at the scenario scale selected by
// MANRS_SCALE (tiny / default / large / full):
//
//   scenario_gen topogen::build_scenario -- synthetic-Internet generation
//                (per-AS plans fan out; allocation + emission serial)
//   propagation_single
//                PropagationSim::propagate -- ONE engine call (largest
//                group, no fan-out, serial only): the raw per-call cost
//                of the CSR/bitmask/workspace engine, after a warmup
//                call that builds the lazy drop masks
//   propagation_batched
//                PropagationSim::propagate_cached(requests) -- the
//                batched lane-engine resolve of every announcement
//                group (cache cleared first), without path extraction
//                or the RIB merge: the raw many-origin sweep cost at
//                the current MANRS_BATCH_WIDTH
//   propagation  RouteCollector::collect -- per-(origin, validity-class)
//                BGP propagation fan-out into the collector RIB (the
//                propagation cache is cleared before each timed run, so
//                this measures computation, not cache hits)
//   rib_merge    sim::merge_group_entries -- sharded sort-then-build of
//                the flat RIB rows from precomputed group entries
//   hegemony     IhrSnapshotBuilder::build -- per-group propagation plus
//                AS-hegemony over every (vantage, origin) path set; runs
//                against the cache warmed by the propagation stage, so
//                it measures the cross-stage reuse the shared
//                propagation cache provides (hit counts are printed and
//                recorded in the run JSON as "prop_cache")
//   mrt_decode   TableDumpReader::read_rib -- TABLE_DUMP_V2 zero-copy
//                decode of the serialized collector RIB (frame-index
//                scan + in-place span parse, the read_rib_file path)
//   bgp4mp_fold  UpdateStreamReader::fold_into -- BGP4MP update-stream
//                fold of the full table (one announce per entry) into a
//                live RIB; serial only, the fold is stream-ordered
//   snapshot_series
//                benchx::SnapshotSeries -- MANRS_SERIES_DAYS (default 64)
//                days of daily-delta ecosystem evolution recomputed
//                incrementally (delta-aware cache invalidation, memoized
//                hegemony views), against the same days rebuilt from
//                scratch; both serial, every day byte-checked against the
//                cold-rebuild oracle; the row's "speedup" is cold/incr
//                and per-day {hits, misses, invalidated} land in the run
//                JSON under "snapshot_series"
//
// Output: a human-readable table on stdout and BENCH_pipeline.json
// (override the path with MANRS_BENCH_JSON). The JSON accumulates one
// run object per invocation ({"bench": ..., "runs": [...]}) so the perf
// trajectory across PRs is never overwritten; rows are {stage, scale,
// threads, wall_ms, speedup}, with "oversubscribed": true on rows whose
// thread count exceeds hardware_concurrency -- on such hosts the
// parallel rows measure pool overhead, not parallel speedup, and a
// sub-1.0 "speedup" is expected rather than a regression. Each run also
// stamps "batch_width" (the lane width every batched stage ran at) and
// "path_arena" (cumulative extract_paths counters; shared_hops is the
// portion of all emitted hops served from the arena's suffix memo).
// Parallel thread count: MANRS_THREADS when set, otherwise
// max(hardware_concurrency, 4) so the pool machinery is exercised even
// on small hosts.
//
// Every stage's parallel result is checked against the serial result
// (entry counts) before timings are reported; the golden byte-equality
// tests live in tests/test_parallel_golden.cpp.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "irr/validation.h"
#include "mrt/bgp4mp.h"
#include "mrt/table_dump.h"
#include "rpki/validation.h"
#include "simulator/collector.h"
#include "topogen/scenario.h"
#include "util/bytes.h"
#include "util/parallel.h"
#include "util/strings.h"

namespace {

using Clock = std::chrono::steady_clock;
using manrs::net::Asn;

double time_ms(const std::function<void()>& fn) {
  Clock::time_point t0 = Clock::now();
  fn();
  Clock::time_point t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct StageRow {
  std::string stage;
  size_t threads = 1;
  double wall_ms = 0.0;
  double speedup = 1.0;
  bool oversubscribed = false;
};

std::string scale_name() {
  const char* scale = std::getenv("MANRS_SCALE");
  if (scale == nullptr) return "default";
  return scale;
}

std::string env_or_default(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return "default";
  return value;
}

/// Short git revision of the tree the binary runs in, "unknown" when
/// git is unavailable (tarball builds, stripped CI checkouts).
std::string git_revision() {
  std::string rev;
  std::FILE* pipe = popen("git rev-parse --short HEAD 2>/dev/null", "r");
  if (pipe != nullptr) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, pipe) != nullptr) rev = buf;
    pclose(pipe);
  }
  while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r')) {
    rev.pop_back();
  }
  if (rev.empty()) rev = "unknown";
  return rev;
}

/// Classify announcements the way the IHR builder does, so propagation
/// groups match the real pipeline's.
std::vector<manrs::sim::Announcement> classify(
    const manrs::topogen::Scenario& scenario) {
  std::vector<manrs::sim::Announcement> out;
  for (const auto& po : scenario.announcements()) {
    manrs::sim::AnnouncementClass cls;
    cls.rpki_invalid =
        manrs::rpki::is_invalid(scenario.vrps.validate(po.prefix, po.origin));
    cls.irr_invalid =
        manrs::irr::validate_route(scenario.irr, po.prefix, po.origin) ==
        manrs::irr::IrrStatus::kInvalidAsn;
    cls.variant = (cls.rpki_invalid || cls.irr_invalid)
                      ? manrs::sim::filter_variant(po.prefix)
                      : 0;
    out.push_back(manrs::sim::Announcement{po.prefix, po.origin, cls});
  }
  return out;
}

/// Serialize one run (this invocation) as a JSON object. `series_json` is
/// the pre-rendered "snapshot_series" object (empty when the stage was
/// skipped).
std::string run_json(const std::string& scale, size_t threads_parallel,
                     const manrs::sim::PropagationCacheStats& cache,
                     uint64_t hegemony_hits,
                     const manrs::sim::PathArenaStats& arena,
                     const std::string& series_json,
                     const std::vector<StageRow>& rows) {
  std::ostringstream out;
  char buf[256];
  out << "{\n";
  out << "      \"scale\": \"" << scale << "\",\n";
  // Stamp the knobs that shape the numbers, so accumulated runs stay
  // comparable: the parallel grain, the propagation cache budget, and
  // the revision the binary was built from.
  out << "      \"grain\": \"" << env_or_default("MANRS_GRAIN") << "\",\n";
  out << "      \"prop_cache_mb\": \""
      << env_or_default("MANRS_PROP_CACHE_MB") << "\",\n";
  out << "      \"git_rev\": \"" << git_revision() << "\",\n";
  std::snprintf(buf, sizeof(buf), "      \"hardware_concurrency\": %u,\n",
                std::thread::hardware_concurrency());
  out << buf;
  std::snprintf(buf, sizeof(buf), "      \"threads_parallel\": %zu,\n",
                threads_parallel);
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "      \"prop_cache\": {\"hits\": %llu, \"misses\": %llu, "
                "\"entries\": %zu, \"hegemony_hits\": %llu},\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses), cache.entries,
                static_cast<unsigned long long>(hegemony_hits));
  out << buf;
  std::snprintf(buf, sizeof(buf), "      \"batch_width\": %zu,\n",
                manrs::sim::batch_width());
  out << buf;
  std::snprintf(buf, sizeof(buf),
                "      \"path_arena\": {\"paths\": %llu, \"hops\": %llu, "
                "\"shared_hops\": %llu},\n",
                static_cast<unsigned long long>(arena.paths),
                static_cast<unsigned long long>(arena.hops),
                static_cast<unsigned long long>(arena.shared_hops));
  out << buf;
  if (!series_json.empty()) {
    out << "      \"snapshot_series\": " << series_json << ",\n";
  }
  out << "      \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const StageRow& r = rows[i];
    std::snprintf(buf, sizeof(buf),
                  "        {\"stage\": \"%s\", \"scale\": \"%s\", "
                  "\"threads\": %zu, \"wall_ms\": %.3f, \"speedup\": %.3f",
                  r.stage.c_str(), scale.c_str(), r.threads, r.wall_ms,
                  r.speedup);
    out << buf;
    if (r.oversubscribed) out << ", \"oversubscribed\": true";
    out << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "      ]\n";
  out << "    }";
  return out.str();
}

/// Pull the serialized run objects out of an existing BENCH_pipeline.json
/// ({"bench": ..., "runs": [...]}) so a new run can be appended without
/// rewriting history. Unknown / legacy content yields no runs.
std::vector<std::string> extract_runs(const std::string& text) {
  std::vector<std::string> runs;
  size_t pos = text.find("\"runs\"");
  if (pos == std::string::npos) return runs;
  pos = text.find('[', pos);
  if (pos == std::string::npos) return runs;
  int bracket = 0;
  int brace = 0;
  size_t start = std::string::npos;
  for (size_t i = pos; i < text.size(); ++i) {
    char c = text[i];
    if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      if (--bracket == 0 && brace == 0) break;
    } else if (c == '{') {
      if (brace++ == 0) start = i;
    } else if (c == '}') {
      if (--brace == 0 && start != std::string::npos) {
        runs.push_back(text.substr(start, i - start + 1));
        start = std::string::npos;
      }
    }
  }
  return runs;
}

void write_json(const std::string& path, const std::string& new_run) {
  std::vector<std::string> runs;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      runs = extract_runs(text.str());
    }
  }
  runs.push_back(new_run);

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "perf_pipeline: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(file, "{\n");
  std::fprintf(file, "  \"bench\": \"perf_pipeline\",\n");
  std::fprintf(file, "  \"runs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(file, "    %s%s\n", runs[i].c_str(),
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main() {
  using namespace manrs;

  const std::string scale = scale_name();
  size_t threads = util::default_thread_count();
  if (std::getenv("MANRS_THREADS") == nullptr && threads < 4) threads = 4;
  const bool oversubscribed = threads > std::thread::hardware_concurrency();
  const char* json_env = std::getenv("MANRS_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_pipeline.json";

  benchx::print_title("perf_pipeline",
                      "pipeline stage wall-clock (serial vs parallel)");
  std::printf("scale %s, parallel pool %zu threads, hardware %u%s\n",
              scale.c_str(), threads, std::thread::hardware_concurrency(),
              oversubscribed ? " (oversubscribed)" : "");

  std::vector<StageRow> rows;
  auto record_stage = [&](const std::string& stage, double serial_ms,
                          double parallel_ms) {
    rows.push_back(StageRow{stage, 1, serial_ms, 1.0, false});
    rows.push_back(StageRow{stage, threads, parallel_ms,
                            parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
                            oversubscribed});
    std::printf("%-12s serial %9.1f ms   parallel(%zu) %9.1f ms   "
                "speedup %.2fx%s\n",
                stage.c_str(), serial_ms, threads, parallel_ms,
                parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
                oversubscribed ? " (oversubscribed)" : "");
  };

  // --- scenario_gen: synthetic-Internet generation -----------------------
  topogen::ScenarioConfig config = benchx::config_from_env();
  topogen::Scenario scenario, scenario_parallel;
  util::set_thread_count(1);
  double gen_serial =
      time_ms([&] { scenario = topogen::build_scenario(config); });
  util::set_thread_count(threads);
  double gen_parallel =
      time_ms([&] { scenario_parallel = topogen::build_scenario(config); });
  if (scenario.dated_announcements.size() !=
      scenario_parallel.dated_announcements.size()) {
    std::fprintf(stderr, "perf_pipeline: scenario_gen mismatch (%zu vs %zu)\n",
                 scenario.dated_announcements.size(),
                 scenario_parallel.dated_announcements.size());
    return 1;
  }
  record_stage("scenario_gen", gen_serial, gen_parallel);

  sim::PropagationSim simulator = scenario.make_sim();
  std::vector<sim::Announcement> announcements = classify(scenario);
  sim::RouteCollector collector(simulator, scenario.vantage_points);
  ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
  const std::vector<sim::AnnouncementGroup> groups =
      sim::group_announcements(announcements);

  // --- propagation_single: one engine call, no fan-out -------------------
  // The raw per-call cost of the propagation engine on the largest
  // group. A warmup call builds the lazy drop masks and sizes the
  // thread-local workspace, so the timed call is the steady state the
  // fan-out stages see.
  if (groups.empty()) {
    std::fprintf(stderr, "perf_pipeline: no announcement groups\n");
    return 1;
  }
  size_t big = 0;
  for (size_t g = 1; g < groups.size(); ++g) {
    if (groups[g].prefixes.size() > groups[big].prefixes.size()) big = g;
  }
  util::set_thread_count(1);
  (void)simulator.propagate(groups[big].origin, groups[big].cls);  // warmup
  sim::PropagationResult single;
  double single_ms = time_ms(
      [&] { single = simulator.propagate(groups[big].origin, groups[big].cls); });
  if (single.source.size() != simulator.indexer().size()) {
    std::fprintf(stderr, "perf_pipeline: propagation_single bad result\n");
    return 1;
  }
  rows.push_back(StageRow{"propagation_single", 1, single_ms, 1.0, false});
  std::printf("%-12s serial %9.3f ms   (one engine call, no fan-out)\n",
              "propagation_single", single_ms);

  // --- propagation_batched: the batched lane-engine resolve alone --------
  // Every group resolved in one propagate_cached(requests) call: misses
  // sweep through the lane engine batch_width() origins at a time. No
  // path extraction, no merge -- the raw many-origin propagation cost
  // the collector and hegemony stages sit on top of.
  std::vector<sim::PropagationRequest> requests;
  requests.reserve(groups.size());
  for (const auto& group : groups) {
    requests.push_back(sim::PropagationRequest{group.origin, group.cls});
  }
  std::vector<sim::PropagationResultPtr> batched_serial, batched_parallel;
  util::set_thread_count(1);
  simulator.clear_cache();
  double batched_serial_ms =
      time_ms([&] { batched_serial = simulator.propagate_cached(requests); });
  util::set_thread_count(threads);
  simulator.clear_cache();
  double batched_parallel_ms = time_ms(
      [&] { batched_parallel = simulator.propagate_cached(requests); });
  for (size_t r = 0; r < requests.size(); ++r) {
    if (batched_serial[r] == nullptr || batched_parallel[r] == nullptr ||
        batched_serial[r]->source != batched_parallel[r]->source) {
      std::fprintf(stderr, "perf_pipeline: propagation_batched mismatch\n");
      return 1;
    }
  }
  record_stage("propagation_batched", batched_serial_ms, batched_parallel_ms);
  std::printf("batch width %zu lanes, %zu groups -> %zu sweeps\n",
              sim::batch_width(), groups.size(),
              (groups.size() + sim::batch_width() - 1) / sim::batch_width());

  // --- propagation: collector RIB fan-out --------------------------------
  // Runs against the memo the batched stage warmed -- in production every
  // stage shares one resolve, so this row measures the collector's own
  // work (path extraction, entry building, merge) plus cache lookups.
  // The cold resolve cost is the propagation_batched row above.
  bgp::Rib rib_serial, rib_parallel;
  util::set_thread_count(1);
  double prop_serial =
      time_ms([&] { rib_serial = collector.collect(announcements); });
  util::set_thread_count(threads);
  double prop_parallel =
      time_ms([&] { rib_parallel = collector.collect(announcements); });
  if (rib_serial.entry_count() != rib_parallel.entry_count()) {
    std::fprintf(stderr, "perf_pipeline: propagation mismatch (%zu vs %zu)\n",
                 rib_serial.entry_count(), rib_parallel.entry_count());
    return 1;
  }
  record_stage("propagation", prop_serial, prop_parallel);

  // --- rib_merge: sharded flat-RIB row build from group entries ----------
  // merge_group_entries consumes its entry sets (singleton groups are
  // moved into rows), so each timed run gets its own copy, made outside
  // the timer -- the stage measures the merge, not the setup.
  const std::vector<std::vector<bgp::RibEntry>> group_entries =
      collector.collect_group_entries(groups);
  std::vector<std::vector<bgp::RibEntry>> entries_run1 = group_entries;
  std::vector<std::vector<bgp::RibEntry>> entries_run2 = group_entries;
  std::vector<bgp::RibRow> merged_serial, merged_parallel;
  util::set_thread_count(1);
  double merge_serial = time_ms([&] {
    merged_serial = sim::merge_group_entries(groups, std::move(entries_run1));
  });
  util::set_thread_count(threads);
  double merge_parallel = time_ms([&] {
    merged_parallel = sim::merge_group_entries(groups, std::move(entries_run2));
  });
  if (merged_serial.size() != merged_parallel.size() ||
      merged_serial.size() != rib_serial.prefix_count()) {
    std::fprintf(stderr, "perf_pipeline: rib_merge mismatch\n");
    return 1;
  }
  record_stage("rib_merge", merge_serial, merge_parallel);

  // --- hegemony: IHR snapshot over (vantage, origin) path sets -----------
  // Runs against the cache the propagation stage warmed: the per-group
  // propagations are shared, so this stage measures path extraction +
  // hegemony scoring plus cache lookups, which is the production shape.
  const sim::PropagationCacheStats before_hegemony = simulator.cache_stats();
  ihr::IhrSnapshot snap_serial, snap_parallel;
  util::set_thread_count(1);
  double hege_serial = time_ms([&] {
    snap_serial =
        builder.build(scenario.announcements(), scenario.vrps, scenario.irr);
  });
  util::set_thread_count(threads);
  double hege_parallel = time_ms([&] {
    snap_parallel =
        builder.build(scenario.announcements(), scenario.vrps, scenario.irr);
  });
  if (snap_serial.transits.size() != snap_parallel.transits.size()) {
    std::fprintf(stderr, "perf_pipeline: hegemony mismatch (%zu vs %zu)\n",
                 snap_serial.transits.size(), snap_parallel.transits.size());
    return 1;
  }
  record_stage("hegemony", hege_serial, hege_parallel);
  const sim::PropagationCacheStats cache_stats = simulator.cache_stats();
  const uint64_t hegemony_hits = cache_stats.hits - before_hegemony.hits;
  std::printf("propagation cache: %llu hits (%llu during hegemony), "
              "%llu misses, %zu entries, %.1f MiB\n",
              static_cast<unsigned long long>(cache_stats.hits),
              static_cast<unsigned long long>(hegemony_hits),
              static_cast<unsigned long long>(cache_stats.misses),
              cache_stats.entries,
              static_cast<double>(cache_stats.bytes) / (1024.0 * 1024.0));

  // --- mrt_decode: TABLE_DUMP_V2 whole-dump decode -----------------------
  std::ostringstream dump_stream;
  mrt::TableDumpWriter writer(dump_stream, /*timestamp=*/1651363200);
  writer.write_rib(rib_serial, "perf.pipeline");
  const std::string dump = dump_stream.str();
  std::printf("mrt dump: %zu bytes, %zu prefixes\n", dump.size(),
              rib_serial.prefix_count());

  // The timed path is the zero-copy span decode (frame-index scan +
  // in-place body parse), the same code read_rib_file runs against an
  // mmap'd dump -- no istream, no per-record body copies.
  const std::span<const uint8_t> dump_bytes = util::as_bytes(dump);
  bgp::Rib decoded_serial, decoded_parallel;
  util::set_thread_count(1);
  double mrt_serial = time_ms(
      [&] { decoded_serial = mrt::TableDumpReader::read_rib(dump_bytes); });
  util::set_thread_count(threads);
  double mrt_parallel = time_ms(
      [&] { decoded_parallel = mrt::TableDumpReader::read_rib(dump_bytes); });
  util::set_thread_count(0);
  if (decoded_serial.entry_count() != decoded_parallel.entry_count() ||
      decoded_serial.entry_count() != rib_serial.entry_count()) {
    std::fprintf(stderr, "perf_pipeline: mrt_decode mismatch\n");
    return 1;
  }
  record_stage("mrt_decode", mrt_serial, mrt_parallel);

  // --- bgp4mp_fold: BGP4MP update-stream fold into a live RIB ------------
  // The decoded RIB is re-expressed as a BGP4MP update stream (one
  // announce per entry, built outside the timer) and folded into an
  // empty RIB with the peer table pre-registered: the steady-state cost
  // of applying collector deltas. Serial only -- the fold is a stream,
  // order is its contract.
  std::ostringstream update_stream;
  mrt::Bgp4mpWriter update_writer(update_stream);
  const std::vector<mrt::Bgp4mpRecord> deltas =
      mrt::diff_ribs(bgp::Rib{}, decoded_serial, /*timestamp=*/1651363200);
  for (const auto& rec : deltas) update_writer.write(rec);
  const std::string updates = update_stream.str();
  std::printf("bgp4mp stream: %zu bytes, %zu updates\n", updates.size(),
              deltas.size());

  bgp::Rib folded;
  for (size_t p = 0; p < decoded_serial.peer_count(); ++p) {
    folded.add_peer(decoded_serial.peer_asn(static_cast<uint32_t>(p)));
  }
  util::set_thread_count(1);
  size_t folded_updates = 0;
  double fold_ms = time_ms([&] {
    mrt::UpdateStreamReader update_reader(util::as_bytes(updates));
    folded_updates = update_reader.fold_into(folded);
  });
  util::set_thread_count(0);
  if (folded_updates != deltas.size() ||
      folded.entry_count() != decoded_serial.entry_count()) {
    std::fprintf(stderr, "perf_pipeline: bgp4mp_fold mismatch\n");
    return 1;
  }
  rows.push_back(StageRow{"bgp4mp_fold", 1, fold_ms, 1.0, false});
  std::printf("%-12s serial %9.1f ms   (%.2f us/update, stream fold)\n",
              "bgp4mp_fold", fold_ms,
              deltas.empty() ? 0.0 : 1000.0 * fold_ms /
                                         static_cast<double>(deltas.size()));

  // --- snapshot_series: delta-aware temporal sweep vs cold rebuilds ------
  // The temporal snapshot engine advances the ecosystem day by day,
  // folding each EcosystemDelta in place and recomputing only what the
  // delta touched (classification, propagation cache entries, hegemony
  // views). The baseline is the honest alternative: rebuilding every
  // day's snapshot from scratch. Both run serial, so the speedup is
  // algorithmic, not parallelism. Every day of the incremental sweep is
  // checked byte-for-byte (digests over every emitted record field)
  // against the cold-rebuild oracle before timings are reported.
  int series_days = 64;
  if (const char* env = std::getenv("MANRS_SERIES_DAYS")) {
    auto parsed = util::parse_int<int>(env);
    series_days = parsed && *parsed >= 1 ? *parsed : 1;
  }
  util::set_thread_count(1);
  std::vector<benchx::DayOutputs> series_outputs;
  std::vector<benchx::DayEngineStats> series_stats;
  std::vector<double> series_day_ms;
  series_outputs.reserve(static_cast<size_t>(series_days));
  // Day-0 setup (classify + fold the base table) is charged to the
  // incremental side -- the cold baseline pays the equivalent inside
  // every rebuild.
  std::unique_ptr<benchx::SnapshotSeries> series_ptr;
  const double series_setup_ms = time_ms(
      [&] { series_ptr = std::make_unique<benchx::SnapshotSeries>(scenario); });
  benchx::SnapshotSeries& series = *series_ptr;
  double incremental_ms = time_ms([&] {
    for (int d = 1; d <= series_days; ++d) {
      series_day_ms.push_back(time_ms([&] { series.advance(); }));
      series_outputs.push_back(series.outputs());
      series_stats.push_back(series.last_stats());
    }
  });
  incremental_ms += series_setup_ms;
  double cold_ms = 0.0;
  for (int d = 1; d <= series_days; ++d) {
    benchx::DayOutputs cold;
    cold_ms += time_ms([&] { cold = series.cold_rebuild(d); });
    if (!(cold == series_outputs[static_cast<size_t>(d - 1)])) {
      std::fprintf(stderr,
                   "perf_pipeline: snapshot_series day %d diverges from the "
                   "cold-rebuild oracle\n",
                   d);
      return 1;
    }
  }
  util::set_thread_count(0);
  const double series_speedup =
      incremental_ms > 0.0 ? cold_ms / incremental_ms : 0.0;
  rows.push_back(
      StageRow{"snapshot_series", 1, incremental_ms, series_speedup, false});
  uint64_t series_hits = 0, series_misses = 0, series_invalidated = 0;
  for (const auto& st : series_stats) {
    series_hits += st.cache_hits;
    series_misses += st.cache_misses;
    series_invalidated += st.cache_invalidated;
  }
  std::printf("%-12s %d days incremental %9.1f ms   cold %9.1f ms   "
              "speedup %.2fx (serial, oracle-checked)\n",
              "snapshot_series", series_days, incremental_ms, cold_ms,
              series_speedup);
  std::printf("series cache: %llu hits, %llu misses, %llu invalidated "
              "across %d days\n",
              static_cast<unsigned long long>(series_hits),
              static_cast<unsigned long long>(series_misses),
              static_cast<unsigned long long>(series_invalidated),
              series_days);
  std::string series_json;
  {
    std::ostringstream sj;
    char buf[192];
    std::snprintf(buf, sizeof(buf),
                  "{\"days\": %d, \"incremental_ms\": %.3f, "
                  "\"cold_ms\": %.3f, \"speedup\": %.3f,\n",
                  series_days, incremental_ms, cold_ms, series_speedup);
    sj << buf;
    sj << "        \"per_day\": [\n";
    for (size_t i = 0; i < series_stats.size(); ++i) {
      const benchx::DayEngineStats& st = series_stats[i];
      std::snprintf(
          buf, sizeof(buf),
          "          {\"day\": %d, \"wall_ms\": %.3f, \"hits\": %llu, "
          "\"misses\": %llu, \"invalidated\": %llu, \"reclassified\": %zu, "
          "\"groups_reused\": %zu}%s\n",
          st.day, series_day_ms[i], static_cast<unsigned long long>(st.cache_hits),
          static_cast<unsigned long long>(st.cache_misses),
          static_cast<unsigned long long>(st.cache_invalidated),
          st.reclassified, st.groups_reused,
          i + 1 < series_stats.size() ? "," : "");
      sj << buf;
    }
    sj << "        ]}";
    series_json = sj.str();
  }

  const sim::PathArenaStats arena_stats = sim::path_arena_stats();
  std::printf("path arena: %llu paths, %llu hops (%.1f%% shared)\n",
              static_cast<unsigned long long>(arena_stats.paths),
              static_cast<unsigned long long>(arena_stats.hops),
              arena_stats.hops > 0
                  ? 100.0 * static_cast<double>(arena_stats.shared_hops) /
                        static_cast<double>(arena_stats.hops)
                  : 0.0);

  write_json(json_path, run_json(scale, threads, cache_stats, hegemony_hits,
                                 arena_stats, series_json, rows));
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
