// Reproduces Fig 9: the distribution of MANRS preference scores
// (Formula 9) for RPKI Invalid, Valid, and NotFound prefix-origin pairs --
// the paper's collective ROV-effectiveness measurement (§9.4).
#include <cstdio>

#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("fig09_preference",
                      "Fig 9 + Finding 9.4 (MANRS preference score)");
  benchx::Pipeline pipeline = benchx::Pipeline::build();

  auto scores = core::compute_preference_scores(pipeline.snapshot.transits,
                                                pipeline.scenario.manrs);
  util::EmpiricalDistribution valid, invalid, not_found;
  for (const auto& s : scores) {
    switch (s.rpki) {
      case rpki::RpkiStatus::kValid:
        valid.add(s.score);
        break;
      case rpki::RpkiStatus::kInvalidAsn:
      case rpki::RpkiStatus::kInvalidLength:
        invalid.add(s.score);
        break;
      case rpki::RpkiStatus::kNotFound:
        not_found.add(s.score);
        break;
    }
  }

  benchx::print_section("Fig 9: CDF of MANRS preference scores");
  benchx::print_cdf("RPKI Invalid (" + std::to_string(invalid.size()) + ")",
                    invalid, -4.0, 3.0);
  benchx::print_cdf("RPKI Valid (" + std::to_string(valid.size()) + ")",
                    valid, -4.0, 3.0);
  benchx::print_cdf(
      "RPKI NotFound (" + std::to_string(not_found.size()) + ")", not_found,
      -4.0, 3.0);
  benchx::export_cdf("fig09", "RPKI Invalid", invalid);
  benchx::export_cdf("fig09", "RPKI Valid", valid);
  benchx::export_cdf("fig09", "RPKI NotFound", not_found);

  benchx::print_section("Finding 9.4 checks");
  auto positive_share = [](const util::EmpiricalDistribution& d) {
    return d.empty() ? 0.0 : 100.0 * (1.0 - d.cdf(0.0));
  };
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.0f%%", positive_share(valid));
  benchx::print_vs_paper("Valid prefix-origins preferring MANRS transit",
                         buf, "34%");
  std::snprintf(buf, sizeof(buf), "%.0f%%", positive_share(not_found));
  benchx::print_vs_paper("NotFound prefix-origins preferring MANRS transit",
                         buf, "36%");
  std::snprintf(buf, sizeof(buf), "%.0f%%", positive_share(invalid));
  benchx::print_vs_paper("Invalid prefix-origins preferring MANRS transit",
                         buf, "14%");
  bool shape_holds = positive_share(invalid) < positive_share(valid) &&
                     positive_share(invalid) < positive_share(not_found);
  benchx::print_vs_paper(
      "Invalid announcements avoid MANRS transits",
      shape_holds ? "yes" : "NO", "yes (14% vs 34%/36%)");
  return 0;
}
