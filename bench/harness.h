// Shared harness for the per-figure/per-table reproduction benches.
//
// Every bench builds the same paper-scale scenario (override with the
// MANRS_SCALE environment variable: "tiny", "default", "large", or
// "full") and
// prints its figure or table as plain text, with the paper's published
// value alongside where one exists. EXPERIMENTS.md collects the output.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/rib.h"
#include "core/conformance.h"
#include "ihr/dataset.h"
#include "ihr/hegemony.h"
#include "netbase/prefix_trie.h"
#include "simulator/propagation.h"
#include "topogen/evolution.h"
#include "topogen/scenario.h"
#include "util/stats.h"

namespace manrs::benchx {

/// Scenario selected by MANRS_SCALE (default: paper_default).
topogen::ScenarioConfig config_from_env();

/// Classify announcements against the scenario's registries without
/// running propagation (enough for the origination-side analyses).
std::vector<ihr::PrefixOriginRecord> classify_only(
    const topogen::Scenario& scenario,
    const std::vector<bgp::PrefixOrigin>& announcements);

/// The full pipeline: scenario + simulator + IHR snapshot. Construction
/// cost is dominated by propagation, so benches that only need
/// classification should use classify_only instead.
struct Pipeline {
  topogen::Scenario scenario;
  sim::PropagationSim simulator;
  ihr::IhrSnapshot snapshot;
  std::unordered_map<uint32_t, core::OriginationStats> origination;
  std::unordered_map<uint32_t, core::PropagationStats> propagation;

  static Pipeline build();
  static Pipeline build(const topogen::ScenarioConfig& config,
                        bool with_transits = true);
};

/// One day's full measurement output from the temporal snapshot engine:
/// the per-day points of the Fig 2 / Fig 6 / Fig 9 series, the
/// conformance aggregates, and FNV-1a digests over the binary record
/// streams -- the byte-identity keys the cold-rebuild oracle compares.
struct DayOutputs {
  int day = 0;

  // Fig 2 series: ecosystem size.
  size_t participants = 0;
  size_t member_ases = 0;

  // Fig 6 series: RPKI saturation by membership (% of routed v4 space).
  double rsat_manrs = 0.0;
  double rsat_non_manrs = 0.0;

  // Fig 9 series: mean preference score, RPKI-Valid vs everything else.
  double preference_valid_mean = 0.0;
  double preference_other_mean = 0.0;

  // Conformance aggregates over the day's announcements.
  size_t announcements = 0;
  size_t conformant = 0;
  size_t unconformant = 0;
  size_t transit_records = 0;

  // Digests over the prefix-origin dataset, the transit dataset, and the
  // preference scores (every field of every record, in emit order).
  uint64_t prefix_origin_digest = 0;
  uint64_t transit_digest = 0;
  uint64_t preference_digest = 0;

  friend bool operator==(const DayOutputs&, const DayOutputs&) = default;
};

/// Per-day accounting of how much work the incremental engine skipped.
struct DayEngineStats {
  int day = 0;
  size_t delta_ops = 0;      // size of the day's EcosystemDelta
  size_t reclassified = 0;   // announcements re-run through the validators
  size_t groups = 0;         // (origin, class) propagation groups today
  size_t groups_reused = 0;  // hegemony views served from the group memo
  uint64_t cache_hits = 0;   // propagation-cache counters, this day only
  uint64_t cache_misses = 0;
  uint64_t cache_invalidated = 0;
};

/// The temporal snapshot engine: sweeps an EcosystemEvolution day by day,
/// folding each EcosystemDelta into live state (staged Rib / VrpStore /
/// IrrDatabase deltas, PropagationSim::apply_delta) and recomputing the
/// day's outputs incrementally -- only announcements whose covering
/// ROA/IRR records changed are reclassified, and per-group hegemony views
/// are reused whenever the group's propagation result survived the day's
/// cache invalidation.
///
/// Day protocol (statically checked by the series-delta typestate rule):
/// begin_day() produces the next day's delta, which must be apply()-ed
/// exactly once before recompute(); advance() runs the full cycle.
/// cold_rebuild(k) independently rebuilds day k from scratch -- the
/// oracle recompute() must match digest-for-digest.
class SnapshotSeries {
 public:
  /// `base` must outlive the series. Day 0 is the base snapshot.
  explicit SnapshotSeries(const topogen::Scenario& base,
                          topogen::EvolutionConfig config = {});

  int day() const { return day_; }
  const topogen::EcosystemEvolution& evolution() const { return evolution_; }
  const sim::PropagationSim& simulator() const { return sim_; }

  /// The delta that advances the series to day()+1.
  topogen::EcosystemDelta begin_day();

  /// Fold a delta produced by begin_day() into the live state.
  void apply(const topogen::EcosystemDelta& delta);

  /// Recompute the current day's outputs incrementally.
  const DayOutputs& recompute();

  /// begin_day() + apply() + recompute().
  const DayOutputs& advance();

  /// Rebuild day `k` from scratch (fresh registries, fresh simulator, no
  /// memo): the byte-identity oracle and the 64-cold-builds baseline.
  DayOutputs cold_rebuild(int k) const;

  const DayOutputs& outputs() const { return outputs_; }
  const DayEngineStats& last_stats() const { return stats_; }

 private:
  struct Classification {
    rpki::RpkiStatus rpki = rpki::RpkiStatus::kNotFound;
    irr::IrrStatus irr = irr::IrrStatus::kNotFound;
  };

  /// Per-(origin, class) hegemony view, pinned to the propagation result
  /// it was derived from; reusable while the cache returns the same
  /// result object.
  struct GroupMemo {
    sim::PropagationResultPtr result;
    uint32_t visibility = 0;
    std::vector<ihr::HegemonyScore> hegemony;
    std::vector<bool> via_customer;
  };

  friend DayOutputs compute_day_outputs(
      int day, const std::vector<bgp::PrefixOrigin>& announcements,
      const sim::PropagationSim& sim,
      const std::vector<net::Asn>& vantage_points,
      const rpki::VrpStore& vrps, const irr::IrrRegistry& irr,
      const core::ManrsRegistry& registry,
      const std::unordered_map<bgp::PrefixOrigin,
                               SnapshotSeries::Classification>* classifications,
      std::unordered_map<uint64_t, SnapshotSeries::GroupMemo>* memo,
      DayEngineStats* stats);

  uint32_t peer_of(net::Asn origin);
  Classification classify(const bgp::PrefixOrigin& po) const;

  const topogen::Scenario* base_;
  topogen::EcosystemEvolution evolution_;
  int day_ = 0;

  bgp::Rib rib_;  // the live announcement table (one peer per origin)
  std::unordered_map<uint32_t, uint32_t> origin_peer_;
  rpki::VrpStore vrps_;
  irr::IrrRegistry irr_;
  core::ManrsRegistry registry_;
  sim::PropagationSim sim_;

  std::unordered_map<bgp::PrefixOrigin, Classification> classifications_;
  net::PrefixTrie<bgp::PrefixOrigin> announcement_index_;
  std::unordered_map<uint64_t, GroupMemo> group_memo_;

  uint64_t baseline_hits_ = 0;
  uint64_t baseline_misses_ = 0;
  DayOutputs outputs_;
  DayEngineStats stats_;
};

/// Group key for the six Fig 5/7/8 populations.
struct GroupKey {
  astopo::SizeClass size;
  bool manrs;
};

std::string group_label(const GroupKey& key, size_t n);

/// Print helpers.
void print_title(const std::string& bench, const std::string& artifact);
void print_section(const std::string& name);
/// One CDF as rows "x  F(x)" on a fixed grid plus summary quantiles.
void print_cdf(const std::string& label,
               const util::EmpiricalDistribution& dist, double lo, double hi,
               size_t points = 11);
/// "measured X (paper: Y)" line.
void print_vs_paper(const std::string& what, const std::string& measured,
                    const std::string& paper);

/// When the MANRS_PLOT_DIR environment variable is set, write the full
/// empirical CDF of `dist` as a gnuplot-ready two-column step file
/// `<dir>/<bench>.<series>.dat` (x, F(x)); see plots/plot_all.gp. No-op
/// otherwise.
void export_cdf(const std::string& bench, const std::string& series,
                const util::EmpiricalDistribution& dist);

}  // namespace manrs::benchx
