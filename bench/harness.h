// Shared harness for the per-figure/per-table reproduction benches.
//
// Every bench builds the same paper-scale scenario (override with the
// MANRS_SCALE environment variable: "tiny", "default", "large", or
// "full") and
// prints its figure or table as plain text, with the paper's published
// value alongside where one exists. EXPERIMENTS.md collects the output.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/conformance.h"
#include "ihr/dataset.h"
#include "simulator/propagation.h"
#include "topogen/scenario.h"
#include "util/stats.h"

namespace manrs::benchx {

/// Scenario selected by MANRS_SCALE (default: paper_default).
topogen::ScenarioConfig config_from_env();

/// Classify announcements against the scenario's registries without
/// running propagation (enough for the origination-side analyses).
std::vector<ihr::PrefixOriginRecord> classify_only(
    const topogen::Scenario& scenario,
    const std::vector<bgp::PrefixOrigin>& announcements);

/// The full pipeline: scenario + simulator + IHR snapshot. Construction
/// cost is dominated by propagation, so benches that only need
/// classification should use classify_only instead.
struct Pipeline {
  topogen::Scenario scenario;
  sim::PropagationSim simulator;
  ihr::IhrSnapshot snapshot;
  std::unordered_map<uint32_t, core::OriginationStats> origination;
  std::unordered_map<uint32_t, core::PropagationStats> propagation;

  static Pipeline build();
  static Pipeline build(const topogen::ScenarioConfig& config,
                        bool with_transits = true);
};

/// Group key for the six Fig 5/7/8 populations.
struct GroupKey {
  astopo::SizeClass size;
  bool manrs;
};

std::string group_label(const GroupKey& key, size_t n);

/// Print helpers.
void print_title(const std::string& bench, const std::string& artifact);
void print_section(const std::string& name);
/// One CDF as rows "x  F(x)" on a fixed grid plus summary quantiles.
void print_cdf(const std::string& label,
               const util::EmpiricalDistribution& dist, double lo, double hi,
               size_t points = 11);
/// "measured X (paper: Y)" line.
void print_vs_paper(const std::string& what, const std::string& measured,
                    const std::string& paper);

/// When the MANRS_PLOT_DIR environment variable is set, write the full
/// empirical CDF of `dist` as a gnuplot-ready two-column step file
/// `<dir>/<bench>.<series>.dat` (x, F(x)); see plots/plot_all.gp. No-op
/// otherwise.
void export_cdf(const std::string& bench, const std::string& series,
                const util::EmpiricalDistribution& dist);

}  // namespace manrs::benchx
