// Reproduces Fig 4a (MANRS ASes by RIR over time) and Fig 4b (percentage
// of routed IPv4 address space announced by MANRS ASes, by RIR, over
// time), including the anomalies the paper calls out: the 2020 Brazil
// (LACNIC) AS jump and the 2020 APNIC/ARIN space jumps with the 2021 dip.
#include <array>
#include <cstdio>

#include "astopo/prefix2as.h"
#include "harness.h"

using namespace manrs;

int main() {
  benchx::print_title("fig04_geography",
                      "Fig 4a/4b (MANRS ASes and routed space by RIR)");
  topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());

  benchx::print_section("Fig 4a: MANRS ASes by RIR (cumulative)");
  std::printf("%-6s", "year");
  for (net::Rir rir : net::kAllRirs) {
    std::printf("%10s", std::string(net::rir_name(rir)).c_str());
  }
  std::printf("%10s\n", "total");
  for (int year = scenario.config.first_year;
       year <= scenario.config.last_year; ++year) {
    util::Date cutoff(year, 12, 31);
    std::array<size_t, 5> counts{};
    size_t total = 0;
    for (net::Asn asn : scenario.manrs.member_ases_at(cutoff)) {
      const topogen::AsProfile* profile = scenario.profile_of(asn);
      if (!profile) continue;
      ++counts[static_cast<size_t>(profile->rir)];
      ++total;
    }
    std::printf("%-6d", year);
    for (net::Rir rir : net::kAllRirs) {
      std::printf("%10zu", counts[static_cast<size_t>(rir)]);
    }
    std::printf("%10zu\n", total);
  }

  benchx::print_section(
      "Fig 4b: % of routed IPv4 space announced by MANRS ASes, by RIR");
  std::printf("%-6s", "year");
  for (net::Rir rir : net::kAllRirs) {
    std::printf("%10s", std::string(net::rir_name(rir)).c_str());
  }
  std::printf("%10s\n", "total%");
  for (int year = scenario.config.first_year;
       year <= scenario.config.last_year; ++year) {
    util::Date cutoff(year, 12, 31);
    auto table = scenario.announcements_in_year(year);
    astopo::Prefix2As all;
    std::array<astopo::Prefix2As, 5> manrs_by_rir;
    for (const auto& po : table) {
      if (!po.prefix.is_v4()) continue;
      all.push_back(po);
      if (!scenario.manrs.is_member(po.origin, cutoff)) continue;
      const topogen::AsProfile* profile = scenario.profile_of(po.origin);
      if (!profile) continue;
      manrs_by_rir[static_cast<size_t>(profile->rir)].push_back(po);
    }
    double total_space = astopo::routed_ipv4_space(all);
    std::printf("%-6d", year);
    double manrs_total = 0;
    for (net::Rir rir : net::kAllRirs) {
      double space =
          astopo::routed_ipv4_space(manrs_by_rir[static_cast<size_t>(rir)]);
      manrs_total += space;
      std::printf("%9.2f%%", total_space > 0 ? 100.0 * space / total_space
                                             : 0.0);
    }
    std::printf("%9.2f%%\n",
                total_space > 0 ? 100.0 * manrs_total / total_space : 0.0);
  }

  benchx::print_section("anomaly checks vs paper");
  benchx::print_vs_paper("LACNIC AS jump in 2020 (NIC.br outreach, ~90 ASes)",
                         "see 4a LACNIC column", "Fig 4a");
  benchx::print_vs_paper(
      "APNIC space jump in 2020 (China-Telecom-like anchor)",
      "see 4b APNIC column", "Fig 4b: AS4134 = 4.0% of routed v4 space");
  benchx::print_vs_paper("ARIN space drop after 2020 (Lumen-like dip)",
                         "see 4b ARIN column", "Fig 4b: 2021 dip");
  return 0;
}
