// A small, honest C++ lexer for static analysis.
//
// Scope: enough of the phase-2/phase-3 translation rules that the
// analyzer never mistakes text inside strings or comments for code (the
// false-positive class the old regex lint could not eliminate):
//
//   * line splices (backslash-newline, also backslash-CR-LF) are removed
//     everywhere except inside raw string literals, exactly as the
//     standard specifies -- a spliced // comment continues on the next
//     physical line, a spliced identifier lexes as one token;
//   * raw strings R"delim(...)delim" (with optional encoding prefix) are
//     scanned verbatim, so splices and quote characters inside them are
//     inert;
//   * pp-numbers consume digit separators (1'000'000) and exponent
//     signs, so the ' in a separator never opens a character literal;
//   * // and /* */ comments become kComment tokens (waivers live there);
//   * a # that starts a line becomes one kDirective token holding the
//     spliced directive text (stopping before a trailing // comment, so
//     waiver comments on include lines still lex as comments).
//
// The lexer never fails: malformed input (unterminated string, stray
// byte) degrades to best-effort tokens, because analysis must keep
// going on code the compiler would reject.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "analyze/token.h"

namespace manrs::analyze {

/// Lex `text` into tokens. The final token is always kEndOfFile.
std::vector<Token> lex(std::string_view text);

/// One #include extracted from a kDirective token.
struct IncludeDirective {
  std::string path;    // the text between quotes / angle brackets
  bool angled = false; // <...> vs "..."
  int line = 0;
};

/// Parse every #include out of a token stream's directive tokens.
std::vector<IncludeDirective> extract_includes(
    const std::vector<Token>& tokens);

}  // namespace manrs::analyze
