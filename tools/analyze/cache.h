// Incremental result cache for manrs_analyze.
//
// Per analyzed file, the post-waiver findings and the waived-line count
// are stored in a shard under build/analyze-cache/ (or --cache-dir).
// The key covers everything a file's findings can depend on:
//
//   key = fnv( file content hash
//            , ruleset hash        -- rule ids + layers.txt + version
//            , protocols.txt hash
//            , engine environment hash  -- summaries, caller-try flags )
//
// so editing any file that changes a function summary invalidates every
// dependent file's entry, while a no-op rescan hits on all shards. A
// shard is one text record, tab-escaped, rewritten whole on store; a
// corrupt or mismatched shard is treated as a miss. The cache is
// best-effort: every I/O failure degrades to a miss or a skipped store.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analyze/rule.h"

namespace manrs::analyze {

uint64_t fnv1a64(std::string_view data, uint64_t seed = 0xcbf29ce484222325ULL);

struct CacheEntry {
  std::vector<Finding> findings;  // post-waiver, pre-sort
  size_t waived = 0;
};

class ResultCache {
 public:
  /// `dir` is created on first store. Empty dir disables the cache.
  ResultCache(std::string dir, uint64_t env_hash);

  bool enabled() const { return !dir_.empty(); }

  /// Key for one file. `content` is the raw file text.
  uint64_t key(const std::string& rel_path, const std::string& content) const;

  /// Load the entry for (rel_path, key); false = miss.
  bool load(const std::string& rel_path, uint64_t key, CacheEntry* out) const;

  /// Store (best-effort; failures are silent).
  void store(const std::string& rel_path, uint64_t key,
             const CacheEntry& entry) const;

 private:
  std::string shard_path(const std::string& rel_path) const;

  std::string dir_;
  uint64_t env_hash_ = 0;
};

}  // namespace manrs::analyze
