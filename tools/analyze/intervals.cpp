// Interval lattice, the width dataflow pass, and the lockset scan.
//
// Everything here is engineered around one asymmetry: an overstated
// byte *consumption* or an understated guard *budget* can only hide a
// finding (a false negative), while the reverse invents one. So the
// evaluator returns Unknown for anything it cannot fully consume, reads
// of unknown width subtract zero from the budget, guards with
// non-singleton arguments poison the budget to NoProof, and callee
// summaries are min-over-paths under-approximations. The result is a
// pass that stays silent the moment it loses the thread -- the same
// zero-false-positive contract the typestate engine makes.
#include "analyze/intervals.h"

#include <algorithm>
#include <climits>
#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "analyze/dataflow.h"

namespace manrs::analyze {

Interval interval_join(const Interval& a, const Interval& b) {
  if (a.kind == Interval::kBottom) return b;
  if (b.kind == Interval::kBottom) return a;
  if (a.kind == Interval::kUnknown || b.kind == Interval::kUnknown) {
    return Interval::unknown();
  }
  return Interval::range(std::min(a.lo, b.lo), std::max(a.hi, b.hi));
}

Interval interval_widen(const Interval& prev, const Interval& next) {
  if (prev.kind == Interval::kBottom) return next;
  if (next.kind == Interval::kBottom) return prev;
  if (prev.kind == Interval::kUnknown || next.kind == Interval::kUnknown) {
    return Interval::unknown();
  }
  if (next.lo >= prev.lo && next.hi <= prev.hi) return prev;
  return Interval::unknown();
}

namespace {

constexpr size_t npos = FileContext::npos;
// Saturation bound for interval arithmetic: far from overflow even
// after repeated +/-, so clamped math stays ordered.
constexpr long long kSat = LLONG_MAX / 4;
// Budget sentinel: no guard proof on some path into this point.
constexpr long long kNoProof = LLONG_MIN;
// Summary sentinel on the consumed counter: the callee established a
// guard of its own (or lost the parameter); stop accumulating.
constexpr long long kStopped = -(kSat * 2);

long long clamp_sat(__int128 v) {
  if (v > kSat) return kSat;
  if (v < -kSat) return -kSat;
  return static_cast<long long>(v);
}

uint64_t fnv1a_str(uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= 0xff;  // field separator
  h *= 0x100000001b3ULL;
  return h;
}

uint64_t fnv1a_u64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

int builtin_size(const std::string& name) {
  static const std::map<std::string, int> kSizes = {
      {"uint8_t", 1},  {"int8_t", 1},  {"char", 1},     {"bool", 1},
      {"uint16_t", 2}, {"int16_t", 2}, {"short", 2},    {"uint32_t", 4},
      {"int32_t", 4},  {"int", 4},     {"unsigned", 4}, {"float", 4},
      {"uint64_t", 8}, {"int64_t", 8}, {"size_t", 8},   {"long", 8},
      {"double", 8},   {"uintptr_t", 8}, {"ptrdiff_t", 8}};
  auto it = kSizes.find(name);
  return it == kSizes.end() ? 0 : it->second;
}

bool call_keyword(const std::string& s) {
  static const std::set<std::string> kWords = {
      "if",     "for",           "while",    "switch",   "catch",
      "return", "sizeof",        "alignof",  "decltype", "throw",
      "static_assert", "noexcept", "assert", "defined",  "case",
      "new",    "delete",        "co_await", "co_return", "co_yield"};
  return kWords.count(s) != 0;
}

bool compound_assign_tok(const Token& t) {
  if (t.kind != TokenKind::kPunct) return false;
  return t.text == "+=" || t.text == "-=" || t.text == "*=" ||
         t.text == "/=" || t.text == "%=" || t.text == "&=" ||
         t.text == "|=" || t.text == "^=" || t.text == "<<=" ||
         t.text == ">>=";
}

bool comparison_tok(const Token& t) {
  if (t.kind != TokenKind::kPunct) return false;
  return t.text == "<" || t.text == "<=" || t.text == "==" ||
         t.text == "!=" || t.text == ">" || t.text == ">=";
}

/// Parse an integer literal token (base prefixes, digit separators,
/// integer suffixes). Returns false for floats / malformed.
bool parse_int_literal(const std::string& text, long long* out) {
  std::string body;
  body.reserve(text.size());
  for (char c : text) {
    if (c != '\'') body.push_back(c);
  }
  while (!body.empty()) {
    char c = body.back();
    if (c == 'u' || c == 'U' || c == 'l' || c == 'L' || c == 'z' ||
        c == 'Z') {
      body.pop_back();
    } else {
      break;
    }
  }
  if (body.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(body.c_str(), &end, 0);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

// ---------------------------------------------------------------------------
// Width pass: one function, one protocol, run in two modes.
//
// Check mode walks the CFG tracking, per cursor variable, the byte
// budget proved by the dominating guard, and flags reads whose minimum
// consumption exceeds it. Summary mode runs the same transfer focused
// on one by-reference parameter and computes the bytes consumed on
// *every* path before the callee guards on its own -- the value
// check-mode charges at call sites that pass the cursor onward.
// ---------------------------------------------------------------------------

struct WidthViolation {
  size_t pos = 0;
  std::string message;
};

class WidthPass {
 public:
  WidthPass(const AnalyzedFile& f, const FunctionUnit& u,
            const ProtocolSpec& spec, const CallGraph& graph,
            const std::map<size_t, std::map<size_t, long long>>& required)
      : f_(f), u_(u), spec_(spec), graph_(graph), required_(required) {
    vars_ = find_tracked_vars(f, u.def, spec.types, spec.fresh_init);
    scan_array_sizes();
  }

  bool has_vars() const { return !vars_.empty(); }

  void check(std::vector<WidthViolation>* out) {
    summary_var_ = npos;
    run(out);
  }

  /// Bytes consumed through parameter `param_index` on every path
  /// before the function guards on it itself. 0 when untrackable.
  long long summarize(size_t param_index) {
    summary_var_ = npos;
    for (size_t v = 0; v < vars_.size(); ++v) {
      if (vars_[v].is_param && vars_[v].param_index == param_index) {
        summary_var_ = v;
      }
    }
    if (summary_var_ == npos) return 0;
    run(nullptr);
    const State& exit = outs_[u_.cfg.exit];
    if (!exit.reach) return 0;
    return std::max(0LL, exit.need);
  }

 private:
  struct State {
    bool reach = false;
    // Integer locals proved to hold a range (absence = unknown).
    std::map<std::string, Interval> env;
    // Per tracked var: guard-proved byte budget, kNoProof = none.
    std::vector<long long> budget;
    // Summary mode: bytes consumed through the focus parameter since
    // entry (kStopped once the callee guards), and the running maximum
    // of that prefix -- the value min-joined into the summary.
    long long c = 0;
    long long need = 0;

    bool operator==(const State& o) const {
      return reach == o.reach && env == o.env && budget == o.budget &&
             c == o.c && need == o.need;
    }
  };

  const Token& tok(size_t i) const { return f_.tokens[f_.code[i]]; }
  size_t size() const { return f_.code.size(); }

  size_t var_index(const std::string& name) const {
    for (size_t v = 0; v < vars_.size(); ++v) {
      if (vars_[v].name == name) return v;
    }
    return npos;
  }

  bool is_guard(const std::string& m) const {
    return std::find(spec_.guards.begin(), spec_.guards.end(), m) !=
           spec_.guards.end();
  }
  bool is_pure(const std::string& m) const {
    return std::find(spec_.pure.begin(), spec_.pure.end(), m) !=
           spec_.pure.end();
  }
  bool is_fresh_init(const std::string& m) const {
    return std::find(spec_.fresh_init.begin(), spec_.fresh_init.end(), m) !=
           spec_.fresh_init.end();
  }
  const ReadSpec* find_read(const std::string& m) const {
    for (const ReadSpec& r : spec_.reads) {
      if (r.method == m) return &r;
    }
    return nullptr;
  }

  void kill_var(State& st, size_t v) const {
    st.budget[v] = kNoProof;
    if (v == summary_var_) st.c = kStopped;
  }

  /// `std::array<T, N> name` declarations in the body: name -> N.
  /// A separate map so .size() stays evaluable across env kills.
  void scan_array_sizes() {
    const size_t end = u_.def.close;
    for (size_t i = u_.def.open + 1; i < end && i < size(); ++i) {
      if (!tok(i).is_ident("array") || i + 1 >= end) continue;
      if (!tok(i + 1).is_punct("<")) continue;
      int depth = 0;
      size_t g = npos;
      for (size_t j = i + 1; j < end; ++j) {
        const Token& t = tok(j);
        if (t.is_punct("<")) {
          ++depth;
        } else if (t.is_punct(">")) {
          if (--depth == 0) {
            g = j;
            break;
          }
        } else if (t.is_punct(">>")) {
          depth -= 2;
          if (depth <= 0) {
            g = j;
            break;
          }
        } else if (t.is_punct(";") || t.is_punct("{")) {
          break;
        }
      }
      if (g == npos || g + 1 >= end) continue;
      long long n = 0;
      if (tok(g - 1).kind != TokenKind::kNumber ||
          !parse_int_literal(tok(g - 1).text, &n)) {
        continue;
      }
      if (tok(g + 1).kind != TokenKind::kIdentifier) continue;
      array_sizes_[tok(g + 1).text] = n;
    }
  }

  /// First code position >= `from` ending the statement / argument:
  /// a depth-0 `;` `,` or closing bracket.
  size_t stmt_end(size_t from) const {
    int depth = 0;
    for (size_t j = from; j < size(); ++j) {
      const Token& t = tok(j);
      if (t.is_punct("(") || t.is_punct("[")) {
        ++depth;
      } else if (t.is_punct(")") || t.is_punct("]")) {
        if (depth == 0) return j;
        --depth;
      } else if (depth == 0 &&
                 (t.is_punct(";") || t.is_punct(",") || t.is_punct("{") ||
                  t.is_punct("}"))) {
        return j;
      }
    }
    return size();
  }

  /// Like stmt_end but also stops at depth-0 logical/ternary operators:
  /// the right-hand side of a comparison ends there.
  size_t cmp_rhs_end(size_t from) const {
    int depth = 0;
    for (size_t j = from; j < size(); ++j) {
      const Token& t = tok(j);
      if (t.is_punct("(") || t.is_punct("[")) {
        ++depth;
      } else if (t.is_punct(")") || t.is_punct("]")) {
        if (depth == 0) return j;
        --depth;
      } else if (depth == 0 &&
                 (t.is_punct(";") || t.is_punct(",") || t.is_punct("{") ||
                  t.is_punct("}") || t.is_punct("&&") || t.is_punct("||") ||
                  t.is_punct("?") || t.is_punct(":"))) {
        return j;
      }
    }
    return size();
  }

  // Recursive-descent evaluator over [pos, e). Anything not consumed
  // in full collapses to Unknown.
  Interval eval(const State& st, size_t b, size_t e) const {
    size_t pos = b;
    Interval v = parse_expr(st, pos, e);
    if (pos != e) return Interval::unknown();
    return v;
  }

  Interval parse_expr(const State& st, size_t& pos, size_t e) const {
    Interval v = parse_term(st, pos, e);
    while (pos < e && (tok(pos).is_punct("+") || tok(pos).is_punct("-"))) {
      bool add = tok(pos).is_punct("+");
      ++pos;
      Interval r = parse_term(st, pos, e);
      v = add ? interval_add(v, r) : interval_sub(v, r);
    }
    return v;
  }

  Interval parse_term(const State& st, size_t& pos, size_t e) const {
    Interval v = parse_factor(st, pos, e);
    while (pos < e && tok(pos).is_punct("*")) {
      ++pos;
      v = interval_mul(v, parse_factor(st, pos, e));
    }
    return v;
  }

  Interval parse_factor(const State& st, size_t& pos, size_t e) const {
    if (pos >= e) return Interval::unknown();
    const Token& t = tok(pos);
    if (t.is_punct("-") || t.is_punct("+")) {
      bool neg = t.is_punct("-");
      ++pos;
      Interval v = parse_factor(st, pos, e);
      return neg ? interval_sub(Interval::constant(0), v) : v;
    }
    if (t.kind == TokenKind::kNumber) {
      long long v = 0;
      ++pos;
      if (!parse_int_literal(t.text, &v)) return Interval::unknown();
      return Interval::constant(v);
    }
    if (t.is_punct("(")) {
      size_t close = f_.match[pos];
      if (close == npos || close >= e) {
        pos = e;
        return Interval::unknown();
      }
      ++pos;
      Interval v = parse_expr(st, pos, close);
      if (pos != close) v = Interval::unknown();
      pos = close + 1;
      return v;
    }
    if (t.is_ident("sizeof") && pos + 1 < e && tok(pos + 1).is_punct("(")) {
      size_t close = f_.match[pos + 1];
      if (close == npos || close >= e) {
        pos = e;
        return Interval::unknown();
      }
      // Last identifier inside names the type terminal.
      std::string type;
      for (size_t j = pos + 2; j < close; ++j) {
        if (tok(j).kind == TokenKind::kIdentifier) type = tok(j).text;
      }
      pos = close + 1;
      int sz = builtin_size(type);
      return sz > 0 ? Interval::constant(sz) : Interval::unknown();
    }
    if (t.is_ident("static_cast") && pos + 1 < e &&
        tok(pos + 1).is_punct("<")) {
      size_t j = pos + 1;
      int depth = 0;
      while (j < e) {
        if (tok(j).is_punct("<")) {
          ++depth;
        } else if (tok(j).is_punct(">")) {
          if (--depth == 0) break;
        } else if (tok(j).is_punct(">>")) {
          depth -= 2;
          if (depth <= 0) break;
        }
        ++j;
      }
      if (j >= e || j + 1 >= e || !tok(j + 1).is_punct("(")) {
        pos = e;
        return Interval::unknown();
      }
      size_t close = f_.match[j + 1];
      if (close == npos || close >= e) {
        pos = e;
        return Interval::unknown();
      }
      pos = j + 2;
      Interval v = parse_expr(st, pos, close);
      if (pos != close) v = Interval::unknown();
      pos = close + 1;
      return v;
    }
    if (t.kind == TokenKind::kIdentifier && !call_keyword(t.text)) {
      // name.size() over a std::array declared in this function.
      if (pos + 3 < e && (tok(pos + 1).is_punct(".")) &&
          tok(pos + 2).is_ident("size") && tok(pos + 3).is_punct("(")) {
        size_t close = f_.match[pos + 3];
        if (close == pos + 4 && close < e) {
          auto it = array_sizes_.find(t.text);
          pos = close + 1;
          if (it != array_sizes_.end()) return Interval::constant(it->second);
          return Interval::unknown();
        }
      }
      auto it = st.env.find(t.text);
      if (it != st.env.end() && pos + 1 >= e) {
        ++pos;
        return it->second;
      }
      if (it != st.env.end()) {
        const Token& nx = tok(pos + 1);
        // A bare use inside a larger expression is fine; a call or
        // member access is not this identifier's value.
        if (!nx.is_punct("(") && !nx.is_punct(".") && !nx.is_punct("->") &&
            !nx.is_punct("[") && !nx.is_punct("::")) {
          ++pos;
          return it->second;
        }
      }
    }
    pos = e;
    return Interval::unknown();
  }

  /// Open paren of the innermost argument list containing `i`, or npos.
  size_t find_arg_open(size_t i) const {
    int depth = 0;
    for (size_t j = i; j-- > 0;) {
      const Token& t = tok(j);
      if (t.is_punct(")") || t.is_punct("]")) {
        ++depth;
      } else if (t.is_punct("(") || t.is_punct("[")) {
        if (depth == 0) return t.is_punct("(") ? j : npos;
        --depth;
      } else if (t.is_punct(";") || t.is_punct("{") || t.is_punct("}")) {
        return npos;
      }
    }
    return npos;
  }

  void handle_method(size_t i, size_t v, State& st,
                     std::vector<WidthViolation>* collect) const {
    const std::string& method = tok(i + 2).text;
    size_t lparen = i + 3;
    size_t close = f_.match[lparen];
    bool has_args = close != npos && close > lparen + 1;

    if (is_guard(method)) {
      bool cmp_after = close != npos && close + 1 < size() &&
                       comparison_tok(tok(close + 1));
      if (v == summary_var_ && (has_args || cmp_after)) st.c = kStopped;
      if (has_args) {
        Interval a = eval(st, lparen + 1, close);
        if (a.is_singleton() && a.lo >= 0) {
          st.budget[v] = std::max(st.budget[v], a.lo);
        } else {
          st.budget[v] = kNoProof;
        }
      } else if (cmp_after) {
        const Token& cmp = tok(close + 1);
        if (cmp.is_punct(">=") || cmp.is_punct(">")) {
          size_t re = cmp_rhs_end(close + 2);
          Interval a = eval(st, close + 2, re);
          if (a.is_singleton() && a.lo >= 0) {
            long long k = cmp.is_punct(">") ? a.lo + 1 : a.lo;
            st.budget[v] = std::max(st.budget[v], k);
          }
          // Non-singleton: the comparison proves nothing but consumes
          // nothing either; the prior budget stays valid.
        }
      }
      return;
    }

    const ReadSpec* rs = find_read(method);
    if (rs != nullptr) {
      long long wlo = 0;
      Interval a = Interval::unknown();
      if (rs->width >= 0) {
        wlo = rs->width;
        a = Interval::constant(rs->width);
      } else if (has_args) {
        a = eval(st, lparen + 1, close);
        if (a.kind == Interval::kRange) wlo = std::max(0LL, a.lo);
      }
      if (st.budget[v] != kNoProof && wlo > st.budget[v]) {
        if (collect != nullptr) {
          WidthViolation viol;
          viol.pos = i + 2;
          viol.message = "'" + vars_[v].name + "." + method + "' consumes " +
                         std::to_string(wlo) +
                         " byte(s) but the dominating guard proves only " +
                         std::to_string(st.budget[v]) + " more";
          collect->push_back(std::move(viol));
        }
        st.budget[v] = kNoProof;
      } else if (st.budget[v] != kNoProof) {
        st.budget[v] -= wlo;
      }
      if (v == summary_var_ && st.c > kStopped) {
        st.c = clamp_sat(static_cast<__int128>(st.c) + wlo);
        st.need = std::max(st.need, st.c);
      }
      if (is_fresh_init(method) && i >= 2 && tok(i - 1).is_punct("=") &&
          tok(i - 2).kind == TokenKind::kIdentifier) {
        size_t cv = var_index(tok(i - 2).text);
        if (cv != npos) {
          // `child = cur.sub(n)`: the child cursor spans exactly n
          // bytes, so a singleton n is a full budget for it.
          st.budget[cv] = a.is_singleton() && a.lo >= 0 ? a.lo : kNoProof;
        }
      }
      return;
    }

    if (is_pure(method)) return;
    kill_var(st, v);
  }

  void handle_passed(size_t i, size_t v, State& st,
                     std::vector<WidthViolation>* collect) const {
    size_t open = find_arg_open(i);
    if (open == npos || open == 0) {
      kill_var(st, v);
      return;
    }
    const Token& name = tok(open - 1);
    if (name.kind != TokenKind::kIdentifier || call_keyword(name.text)) {
      kill_var(st, v);
      return;
    }
    std::string terminal = name.text;
    std::string qualified = terminal;
    bool saw_scope = false;
    size_t k = open - 1;
    while (k >= 2 && tok(k - 1).is_punct("::") &&
           tok(k - 2).kind == TokenKind::kIdentifier) {
      qualified = tok(k - 2).text + "::" + qualified;
      saw_scope = true;
      k -= 2;
    }
    bool member = k > 0 && (tok(k - 1).is_punct(".") || tok(k - 1).is_punct("->"));
    size_t arg_index = 0;
    int depth = 0;
    for (size_t j = open + 1; j < i; ++j) {
      const Token& t = tok(j);
      if (t.is_punct("(") || t.is_punct("[")) {
        ++depth;
      } else if (t.is_punct(")") || t.is_punct("]")) {
        --depth;
      } else if (depth == 0 && t.is_punct(",")) {
        ++arg_index;
      }
    }
    std::vector<size_t> cands =
        graph_.resolve(terminal, saw_scope ? qualified : std::string());
    bool tracked_ref = false;
    long long required = 0;
    if (cands.size() == 1) {
      const FunctionDef& cd = graph_.functions()[cands[0]].def;
      if (arg_index < cd.params.size()) {
        const ParamInfo& cp = cd.params[arg_index];
        bool cursor_type =
            std::find(spec_.types.begin(), spec_.types.end(),
                      cp.type_terminal) != spec_.types.end();
        if (cursor_type && !cp.name.empty()) {
          if (!cp.by_ref) return;  // callee got a copy: budget survives
          tracked_ref = true;
          auto fit = required_.find(cands[0]);
          if (fit != required_.end()) {
            auto pit = fit->second.find(arg_index);
            if (pit != fit->second.end()) required = pit->second;
          }
        }
      }
    }
    if (tracked_ref && !member && required > 0 && st.budget[v] != kNoProof &&
        st.budget[v] < required && collect != nullptr) {
      WidthViolation viol;
      viol.pos = i;
      viol.message = "'" + vars_[v].name + "' passed to '" + terminal +
                     "', which consumes " + std::to_string(required) +
                     " byte(s) on every path, but the guard proves only " +
                     std::to_string(st.budget[v]);
      collect->push_back(std::move(viol));
    }
    if (v == summary_var_ && st.c > kStopped) {
      if (tracked_ref) {
        st.need = std::max(
            st.need, clamp_sat(static_cast<__int128>(st.c) + required));
      }
      st.c = kStopped;
    }
    st.budget[v] = kNoProof;
  }

  void step(size_t i, State& st, std::vector<WidthViolation>* collect) const {
    const Token& t = tok(i);
    if (t.kind != TokenKind::kIdentifier) return;
    const size_t n = size();
    const Token* prev = i > 0 ? &tok(i - 1) : nullptr;
    const Token* next = i + 1 < n ? &tok(i + 1) : nullptr;
    bool head = prev == nullptr ||
                (!prev->is_punct(".") && !prev->is_punct("->") &&
                 !prev->is_punct("::"));

    // Any call expression invalidates the integer locals it receives
    // (out-params), except the protocol's own methods on a tracked
    // cursor, whose arguments are read-only by contract.
    if (next != nullptr && next->is_punct("(") && !call_keyword(t.text)) {
      bool member = prev != nullptr &&
                    (prev->is_punct(".") || prev->is_punct("->"));
      bool listed_on_tracked = false;
      if (member && i >= 2 && tok(i - 2).kind == TokenKind::kIdentifier &&
          var_index(tok(i - 2).text) != npos &&
          (is_guard(t.text) || find_read(t.text) != nullptr ||
           is_pure(t.text))) {
        listed_on_tracked = true;
      }
      if (!listed_on_tracked) {
        size_t close = f_.match[i + 1];
        if (close != npos) {
          for (size_t j = i + 2; j < close; ++j) {
            if (tok(j).kind == TokenKind::kIdentifier) st.env.erase(tok(j).text);
          }
        }
      }
    }

    size_t v = head ? var_index(t.text) : npos;
    if (v != npos) {
      if (prev != nullptr && prev->is_punct("&")) {
        kill_var(st, v);
        return;
      }
      if (next != nullptr && (next->is_punct(".") || next->is_punct("->")) &&
          i + 3 < n && tok(i + 2).kind == TokenKind::kIdentifier &&
          tok(i + 3).is_punct("(")) {
        handle_method(i, v, st, collect);
        return;
      }
      if (next != nullptr &&
          (next->is_punct("=") || compound_assign_tok(*next))) {
        kill_var(st, v);
        return;
      }
      bool arg_shape =
          prev != nullptr && (prev->is_punct("(") || prev->is_punct(",")) &&
          next != nullptr && (next->is_punct(",") || next->is_punct(")"));
      if (arg_shape) {
        handle_passed(i, v, st, collect);
        return;
      }
      // Declaration (`ByteCursor r(...)`) or an unrecognized use: lose
      // whatever was proved. Conservative in the silent direction.
      kill_var(st, v);
      return;
    }

    // Integer-environment transfer for everything else.
    if (!head) return;
    if (next != nullptr && next->is_punct("=")) {
      size_t e = stmt_end(i + 2);
      Interval val = eval(st, i + 2, e);
      if (val.kind == Interval::kRange) {
        st.env[t.text] = val;
      } else {
        st.env.erase(t.text);
      }
      return;
    }
    if ((next != nullptr &&
         (compound_assign_tok(*next) || next->is_punct("++") ||
          next->is_punct("--"))) ||
        (prev != nullptr &&
         (prev->is_punct("&") || prev->is_punct("++") ||
          prev->is_punct("--") || prev->is_punct(">>")))) {
      st.env.erase(t.text);
    }
  }

  State transfer(size_t b, const State& in,
                 std::vector<WidthViolation>* collect) const {
    State st = in;
    if (!st.reach) return st;
    for (const CodeRange& range : u_.cfg.blocks[b].ranges) {
      for (size_t i = range.first; i < range.second && i < size(); ++i) {
        step(i, st, collect);
      }
    }
    return st;
  }

  State join_preds(size_t b, const std::vector<std::vector<size_t>>& preds,
                   const State& entry_state) const {
    State in;
    in.budget.assign(vars_.size(), kNoProof);
    auto contribute = [&](const State& s) {
      if (!s.reach) return;
      if (!in.reach) {
        in = s;
        return;
      }
      for (auto it = in.env.begin(); it != in.env.end();) {
        auto jt = s.env.find(it->first);
        if (jt == s.env.end()) {
          it = in.env.erase(it);
          continue;
        }
        it->second = interval_join(it->second, jt->second);
        if (it->second.kind != Interval::kRange) {
          it = in.env.erase(it);
        } else {
          ++it;
        }
      }
      for (size_t v = 0; v < in.budget.size(); ++v) {
        in.budget[v] = std::min(in.budget[v], s.budget[v]);
      }
      in.c = std::min(in.c, s.c);
      in.need = std::min(in.need, s.need);
    };
    if (b == u_.cfg.entry) contribute(entry_state);
    for (size_t p : preds[b]) {
      if (p < b) contribute(outs_[p]);
    }
    for (size_t p : preds[b]) {
      if (p < b || !outs_[p].reach) continue;
      if (!in.reach) {
        // Reachable only around a loop: keep nothing.
        in.reach = true;
        in.env.clear();
        in.budget.assign(vars_.size(), kNoProof);
        in.c = 0;
        in.need = 0;
        continue;
      }
      // Back edge: budgets are not loop-invariant (reads consume), so
      // they drop to NoProof; integer locals widen.
      for (long long& budget : in.budget) budget = kNoProof;
      const State& bp = outs_[p];
      for (auto it = in.env.begin(); it != in.env.end();) {
        auto jt = bp.env.find(it->first);
        Interval back =
            jt == bp.env.end() ? Interval::unknown() : jt->second;
        it->second = interval_widen(it->second, back);
        if (it->second.kind != Interval::kRange) {
          it = in.env.erase(it);
        } else {
          ++it;
        }
      }
    }
    return in;
  }

  void run(std::vector<WidthViolation>* out) {
    const Cfg& cfg = u_.cfg;
    const size_t nblocks = cfg.blocks.size();
    std::vector<std::vector<size_t>> preds(nblocks);
    for (size_t b = 0; b < nblocks; ++b) {
      for (size_t s : cfg.blocks[b].succ) preds[s].push_back(b);
    }
    State entry_state;
    entry_state.reach = true;
    entry_state.budget.assign(vars_.size(), kNoProof);
    outs_.assign(nblocks, State{});
    for (State& s : outs_) s.budget.assign(vars_.size(), kNoProof);
    bool changed = true;
    int rounds = 0;
    while (changed && rounds++ < 64) {
      changed = false;
      for (size_t b = 0; b < nblocks; ++b) {
        State in = join_preds(b, preds, entry_state);
        State nw = transfer(b, in, nullptr);
        if (!(nw == outs_[b])) {
          outs_[b] = std::move(nw);
          changed = true;
        }
      }
    }
    if (out != nullptr) {
      std::set<size_t> seen;
      for (size_t b = 0; b < nblocks; ++b) {
        if (spec_.try_suppresses && cfg.blocks[b].try_depth > 0) continue;
        State in = join_preds(b, preds, entry_state);
        std::vector<WidthViolation> local;
        transfer(b, in, &local);
        for (WidthViolation& viol : local) {
          if (seen.insert(viol.pos).second) out->push_back(std::move(viol));
        }
      }
    }
  }

  const AnalyzedFile& f_;
  const FunctionUnit& u_;
  const ProtocolSpec& spec_;
  const CallGraph& graph_;
  const std::map<size_t, std::map<size_t, long long>>& required_;
  std::vector<TrackedVar> vars_;
  std::map<std::string, long long> array_sizes_;
  size_t summary_var_ = npos;
  std::vector<State> outs_;
};

}  // namespace

Interval interval_add(const Interval& a, const Interval& b) {
  if (a.kind == Interval::kBottom || b.kind == Interval::kBottom) {
    return Interval::bottom();
  }
  if (a.kind == Interval::kUnknown || b.kind == Interval::kUnknown) {
    return Interval::unknown();
  }
  return Interval::range(
      clamp_sat(static_cast<__int128>(a.lo) + b.lo),
      clamp_sat(static_cast<__int128>(a.hi) + b.hi));
}

Interval interval_sub(const Interval& a, const Interval& b) {
  if (a.kind == Interval::kBottom || b.kind == Interval::kBottom) {
    return Interval::bottom();
  }
  if (a.kind == Interval::kUnknown || b.kind == Interval::kUnknown) {
    return Interval::unknown();
  }
  return Interval::range(
      clamp_sat(static_cast<__int128>(a.lo) - b.hi),
      clamp_sat(static_cast<__int128>(a.hi) - b.lo));
}

Interval interval_mul(const Interval& a, const Interval& b) {
  if (a.kind == Interval::kBottom || b.kind == Interval::kBottom) {
    return Interval::bottom();
  }
  if (a.kind == Interval::kUnknown || b.kind == Interval::kUnknown) {
    return Interval::unknown();
  }
  __int128 p1 = static_cast<__int128>(a.lo) * b.lo;
  __int128 p2 = static_cast<__int128>(a.lo) * b.hi;
  __int128 p3 = static_cast<__int128>(a.hi) * b.lo;
  __int128 p4 = static_cast<__int128>(a.hi) * b.hi;
  __int128 lo = std::min(std::min(p1, p2), std::min(p3, p4));
  __int128 hi = std::max(std::max(p1, p2), std::max(p3, p4));
  return Interval::range(clamp_sat(lo), clamp_sat(hi));
}

// ---------------------------------------------------------------------------
// Lockset scan over parallel lambda bodies.
// ---------------------------------------------------------------------------

namespace {

bool lex_keywordish(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return", "throw",  "case",   "goto",  "new",    "delete",
      "else",   "do",     "co_return", "co_yield", "co_await", "sizeof",
      "typeid", "if",     "while",  "switch", "not",   "and", "or"};
  return kKeywords.count(s) != 0;
}

bool lex_type_ish(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) return !lex_keywordish(t.text);
  return t.is_punct(">") || t.is_punct("*") || t.is_punct("&") ||
         t.is_punct("&&") || t.is_punct("]") || t.is_punct("::");
}

bool lex_mutating_method(const std::string& name) {
  static const std::set<std::string> kMethods = {
      "push_back", "emplace_back", "pop_back", "insert", "emplace",
      "erase",     "clear",        "resize",   "assign", "append",
      "push",      "pop",          "push_front"};
  return kMethods.count(name) != 0;
}

/// Local declarations in [begin, end): type-ish prev + declarator
/// continuation, structured bindings, C-array declarators. Over-
/// approximating only ever silences a finding.
void lex_collect_locals(const AnalyzedFile& f, size_t begin, size_t end,
                        std::set<std::string>& locals) {
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  const size_t n = f.code.size();
  for (size_t i = begin; i < end && i < n; ++i) {
    const Token& t = tok(i);
    if (t.is_punct("[") && i > begin) {
      const Token& prev = tok(i - 1);
      if (prev.is_ident("auto") || prev.is_punct("&") || prev.is_punct("&&")) {
        size_t close = f.match[i];
        for (size_t j = i + 1; j < close && j < n; ++j) {
          if (tok(j).kind == TokenKind::kIdentifier) {
            locals.insert(tok(j).text);
          }
        }
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier || lex_keywordish(t.text)) continue;
    if (i == begin || i + 1 >= n) continue;
    const Token& prev = tok(i - 1);
    const Token& next = tok(i + 1);
    if (!lex_type_ish(prev) || prev.is_punct("::")) continue;
    if (prev.kind == TokenKind::kIdentifier && lex_keywordish(prev.text)) {
      continue;
    }
    if (next.is_punct("=") || next.is_punct(";") || next.is_punct(",") ||
        next.is_punct(")") || next.is_punct(":") || next.is_punct("{") ||
        next.is_punct("(")) {
      locals.insert(t.text);
    } else if (next.is_punct("[")) {
      size_t close = f.match[i + 1];
      if (close != npos && close + 1 < n) {
        const Token& after = tok(close + 1);
        if (after.is_punct(";") || after.is_punct("=") ||
            after.is_punct(",")) {
          locals.insert(t.text);
        }
      }
    }
  }
}

struct LockMutation {
  size_t pos = 0;
  std::string name;
  bool indexed_by_var = false;
  std::string sub_index;  // single-identifier first subscript, else ""
};

/// Writes in [begin, end) to identifiers outside `locals`: the
/// contract-rule mutation scan plus the shape of the first subscript
/// (a lone identifier is a candidate slot index).
std::vector<LockMutation> lex_scan_mutations(
    const AnalyzedFile& f, size_t begin, size_t end,
    const std::set<std::string>& locals, const std::string& loop_var) {
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  std::vector<LockMutation> out;
  const size_t n = f.code.size();
  for (size_t i = begin; i < end && i < n; ++i) {
    const Token& t = tok(i);
    if (t.kind != TokenKind::kIdentifier || lex_keywordish(t.text)) continue;
    if (i > 0) {
      const Token& prev = tok(i - 1);
      if (prev.is_punct(".") || prev.is_punct("->") || prev.is_punct("::")) {
        continue;
      }
    }
    if (locals.count(t.text) != 0 || t.text == loop_var) continue;

    size_t j = i + 1;
    bool indexed = false;
    bool first_sub = true;
    std::string sub_index;
    std::string last_member;
    while (j < end) {
      const Token& a = tok(j);
      if (a.is_punct("[")) {
        size_t close = f.match[j];
        if (close == npos || close >= end) break;
        if (!loop_var.empty()) {
          for (size_t k = j + 1; k < close; ++k) {
            if (tok(k).is_ident(loop_var)) indexed = true;
          }
        }
        if (first_sub && close == j + 2 &&
            tok(j + 1).kind == TokenKind::kIdentifier) {
          sub_index = tok(j + 1).text;
        }
        first_sub = false;
        j = close + 1;
        continue;
      }
      if ((a.is_punct(".") || a.is_punct("->")) && j + 1 < end &&
          tok(j + 1).kind == TokenKind::kIdentifier) {
        last_member = tok(j + 1).text;
        j += 2;
        continue;
      }
      break;
    }
    if (j >= end) continue;
    const Token& op = tok(j);

    bool wrote = false;
    if (op.is_punct("=")) {
      bool decl = j == i + 1 && i > begin && lex_type_ish(tok(i - 1));
      wrote = !decl;
    } else if (compound_assign_tok(op) || op.is_punct("++") ||
               op.is_punct("--")) {
      wrote = true;
    } else if (!last_member.empty() && op.is_punct("(") &&
               lex_mutating_method(last_member)) {
      wrote = true;
    }
    if (!wrote && i > 0) {
      const Token& prev = tok(i - 1);
      if ((prev.is_punct("++") || prev.is_punct("--")) && j == i + 1) {
        wrote = true;
      }
    }
    if (!wrote) continue;
    LockMutation m;
    m.pos = i;
    m.name = t.text;
    m.indexed_by_var = indexed;
    m.sub_index = std::move(sub_index);
    out.push_back(std::move(m));
  }
  return out;
}

/// True when [b, e) is `c0 + c1 * loop_var` with c1 != 0, built from
/// integer literals, the loop variable, `+ - *`, and static_cast
/// wrappers around a single literal or the loop variable. That shape
/// makes the indexed slot injective in the loop variable.
bool lex_linear_in(const AnalyzedFile& f, size_t b, size_t e,
                   const std::string& loop_var) {
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  bool nonzero_var_term = false;
  size_t term_start = b;
  for (size_t i = b; i <= e; ++i) {
    bool term_break = i == e || tok(i).is_punct("+") || tok(i).is_punct("-");
    if (!term_break) continue;
    // Classify the term [term_start, i).
    int var_count = 0;
    bool zero_literal = false;
    bool ok = term_start < i;
    for (size_t j = term_start; j < i && ok; ++j) {
      const Token& t = tok(j);
      if (t.is_punct("*")) continue;
      if (t.is_ident("static_cast")) {
        // static_cast < T > ( x )
        size_t k = j + 1;
        int depth = 0;
        while (k < i) {
          if (tok(k).is_punct("<")) {
            ++depth;
          } else if (tok(k).is_punct(">")) {
            if (--depth == 0) break;
          }
          ++k;
        }
        if (k + 3 >= i || !tok(k + 1).is_punct("(") ||
            !tok(k + 3).is_punct(")")) {
          ok = false;
          break;
        }
        const Token& inner = tok(k + 2);
        if (inner.is_ident(loop_var)) {
          ++var_count;
        } else if (inner.kind == TokenKind::kNumber) {
          long long v = 0;
          if (parse_int_literal(inner.text, &v) && v == 0) {
            zero_literal = true;
          }
        } else {
          ok = false;
        }
        j = k + 3;
        continue;
      }
      if (t.kind == TokenKind::kNumber) {
        long long v = 0;
        if (parse_int_literal(t.text, &v)) {
          if (v == 0) zero_literal = true;
        } else {
          ok = false;
        }
        continue;
      }
      if (t.is_ident(loop_var)) {
        ++var_count;
        continue;
      }
      ok = false;
    }
    if (!ok || var_count > 1) return false;
    if (var_count == 1 && !zero_literal) nonzero_var_term = true;
    term_start = i + 1;
  }
  return nonzero_var_term;
}

}  // namespace

// ---------------------------------------------------------------------------
// ValueEngine
// ---------------------------------------------------------------------------

ValueEngine::ValueEngine(std::vector<ProtocolSpec> protocols,
                         const std::vector<const AnalyzedFile*>& files,
                         const CallGraph* graph)
    : protocols_(std::move(protocols)), files_(files), graph_(graph) {
  compute_try_cover();
  compute_width_summaries();
}

void ValueEngine::compute_try_cover() {
  const auto& fns = graph_->functions();
  fn_try_covered_.assign(fns.size(), 0);
  // Least fixpoint of: covered(fn) = fn has call sites and each is in
  // a try block or in a covered caller. Starts all-false, so cycles
  // stay uncovered (the reporting direction).
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t fn = 0; fn < fns.size(); ++fn) {
      if (fn_try_covered_[fn] != 0) continue;
      const std::vector<size_t>& sites = graph_->callers_of(fn);
      if (sites.empty()) continue;
      bool all = true;
      for (size_t s : sites) {
        const CallSite& cs = graph_->sites()[s];
        if (cs.in_try) continue;
        if (cs.caller == SIZE_MAX || fn_try_covered_[cs.caller] == 0) {
          all = false;
          break;
        }
      }
      if (all) {
        fn_try_covered_[fn] = 1;
        changed = true;
      }
    }
  }
}

void ValueEngine::compute_width_summaries() {
  const auto& fns = graph_->functions();
  width_required_.assign(protocols_.size(), {});
  for (size_t p = 0; p < protocols_.size(); ++p) {
    const ProtocolSpec& spec = protocols_[p];
    if (spec.kind != ProtocolSpec::kWidth) continue;
    auto& req = width_required_[p];
    for (size_t fn = 0; fn < fns.size(); ++fn) {
      const FunctionDef& def = fns[fn].def;
      for (size_t pi = 0; pi < def.params.size(); ++pi) {
        const ParamInfo& par = def.params[pi];
        if (!par.by_ref || par.name.empty()) continue;
        if (std::find(spec.types.begin(), spec.types.end(),
                      par.type_terminal) == spec.types.end()) {
          continue;
        }
        req[fn][pi] = 0;
      }
    }
    // Gauss-Seidel over the call graph; requirements only grow, so
    // this converges (bounded rounds as a backstop).
    for (int round = 0; round < 16; ++round) {
      bool changed = false;
      for (auto& entry : req) {
        const FunctionUnit& u = fns[entry.first];
        WidthPass pass(*files_[u.file_index], u, spec, *graph_, req);
        for (auto& pentry : entry.second) {
          long long v = pass.summarize(pentry.first);
          if (v != pentry.second) {
            pentry.second = v;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }
  }
}

void ValueEngine::width_check(size_t proto, size_t fn,
                              std::vector<Finding>* out) const {
  const ProtocolSpec& spec = protocols_[proto];
  const FunctionUnit& u = graph_->functions()[fn];
  const AnalyzedFile& f = *files_[u.file_index];
  WidthPass pass(f, u, spec, *graph_, width_required_[proto]);
  if (!pass.has_vars()) return;
  std::vector<WidthViolation> viols;
  pass.check(&viols);
  for (WidthViolation& viol : viols) {
    const Token& t = f.tokens[f.code[viol.pos]];
    Finding fd;
    fd.file = f.rel_path;
    fd.line = t.line;
    fd.col = t.col;
    fd.rule = spec.id;
    fd.severity = spec.severity;
    fd.message = std::move(viol.message);
    fd.hint = spec.hint;
    out->push_back(std::move(fd));
  }
}

std::vector<Finding> ValueEngine::lockset_check(size_t proto,
                                                size_t file_index) const {
  const ProtocolSpec& spec = protocols_[proto];
  const AnalyzedFile& f = *files_[file_index];
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  const size_t n = f.code.size();
  std::vector<Finding> out;

  auto is_atomic_type = [&](const std::string& text) {
    for (const std::string& prefix : spec.atomic_prefixes) {
      if (text.rfind(prefix, 0) == 0) return true;
    }
    return false;
  };
  // File-wide names declared with an atomic type: writes to them are
  // synchronized wherever they happen.
  std::set<std::string> synced;
  for (size_t i = 0; i + 1 < n; ++i) {
    const Token& t = tok(i);
    if (t.kind != TokenKind::kIdentifier || !is_atomic_type(t.text)) continue;
    size_t k = i + 1;
    if (tok(k).is_punct("<")) {
      int depth = 0;
      while (k < n) {
        if (tok(k).is_punct("<")) {
          ++depth;
        } else if (tok(k).is_punct(">")) {
          if (--depth == 0) {
            ++k;
            break;
          }
        } else if (tok(k).is_punct(">>")) {
          depth -= 2;
          if (depth <= 0) {
            ++k;
            break;
          }
        } else if (tok(k).is_punct(";")) {
          break;
        }
        ++k;
      }
    }
    if (k < n && tok(k).kind == TokenKind::kIdentifier) {
      synced.insert(tok(k).text);
    }
  }

  auto is_lock_type = [&](const std::string& text) {
    return std::find(spec.lock_types.begin(), spec.lock_types.end(), text) !=
           spec.lock_types.end();
  };

  for (size_t i = 0; i < n; ++i) {
    const Token& t = tok(i);
    if (t.kind != TokenKind::kIdentifier) continue;
    if (std::find(spec.functions.begin(), spec.functions.end(), t.text) ==
        spec.functions.end()) {
      continue;
    }
    LambdaExpr lam = find_lambda_arg(f, i);
    if (lam.lbracket == npos || lam.body_open == npos ||
        lam.body_close == npos) {
      continue;
    }
    const std::string loop_var = last_param_name(f, lam);
    const size_t body_b = lam.body_open + 1;
    const size_t body_e = lam.body_close;

    std::set<std::string> locals;
    if (lam.params_open != npos && lam.params_close != npos) {
      for (size_t j = lam.params_open + 1; j < lam.params_close; ++j) {
        if (tok(j).kind == TokenKind::kIdentifier) locals.insert(tok(j).text);
      }
    }
    lex_collect_locals(f, body_b, body_e, locals);

    // Live lock regions: an RAII lock declaration opens a segment to
    // its scope end, split by explicit .unlock()/.lock() pairs.
    std::vector<std::pair<size_t, size_t>> locked;
    for (size_t j = body_b; j + 1 < body_e; ++j) {
      if (tok(j).kind != TokenKind::kIdentifier || !is_lock_type(tok(j).text)) {
        continue;
      }
      size_t k = j + 1;
      if (tok(k).is_punct("<")) {
        int depth = 0;
        while (k < body_e) {
          if (tok(k).is_punct("<")) {
            ++depth;
          } else if (tok(k).is_punct(">")) {
            if (--depth == 0) {
              ++k;
              break;
            }
          }
          ++k;
        }
      }
      if (k >= body_e || tok(k).kind != TokenKind::kIdentifier) continue;
      const std::string lock_name = tok(k).text;
      size_t scope_close = body_e;
      size_t eb = f.encl[j];
      if (eb != npos && f.match[eb] != npos) {
        scope_close = std::min(scope_close, f.match[eb]);
      }
      size_t seg_start = k;
      for (size_t m = k; m + 2 < scope_close; ++m) {
        if (!tok(m).is_ident(lock_name)) continue;
        if (!tok(m + 1).is_punct(".") && !tok(m + 1).is_punct("->")) continue;
        if (tok(m + 2).is_ident("unlock")) {
          if (seg_start != npos) {
            locked.emplace_back(seg_start, m);
            seg_start = npos;
          }
        } else if (tok(m + 2).is_ident("lock") && seg_start == npos) {
          seg_start = m;
        }
      }
      if (seg_start != npos) locked.emplace_back(seg_start, scope_close);
    }
    auto in_locked = [&](size_t pos) {
      for (const auto& seg : locked) {
        if (pos >= seg.first && pos < seg.second) return true;
      }
      return false;
    };

    // A local is a good slot index when every assignment to it in the
    // body is linear in the loop variable with a nonzero coefficient.
    auto slot_good = [&](const std::string& name) {
      bool any = false;
      for (size_t j = body_b; j < body_e; ++j) {
        if (!tok(j).is_ident(name)) continue;
        if (j > 0) {
          const Token& prev = tok(j - 1);
          if (prev.is_punct(".") || prev.is_punct("->") ||
              prev.is_punct("::")) {
            continue;
          }
        }
        if (j + 1 >= body_e) continue;
        const Token& next = tok(j + 1);
        if (next.is_punct("=")) {
          size_t e = j + 2;
          int depth = 0;
          while (e < body_e) {
            const Token& x = tok(e);
            if (x.is_punct("(") || x.is_punct("[")) {
              ++depth;
            } else if (x.is_punct(")") || x.is_punct("]")) {
              if (depth == 0) break;
              --depth;
            } else if (depth == 0 && (x.is_punct(";") || x.is_punct(","))) {
              break;
            }
            ++e;
          }
          if (!lex_linear_in(f, j + 2, e, loop_var)) return false;
          any = true;
          continue;
        }
        if (compound_assign_tok(next) || next.is_punct("++") ||
            next.is_punct("--")) {
          return false;
        }
        if (j > 0 && (tok(j - 1).is_punct("++") || tok(j - 1).is_punct("--"))) {
          return false;
        }
      }
      return any;
    };

    for (const LockMutation& m :
         lex_scan_mutations(f, body_b, body_e, locals, loop_var)) {
      if (!captures_by_ref(f, lam, m.name)) continue;
      if (synced.count(m.name) != 0) continue;
      if (m.indexed_by_var) continue;
      if (in_locked(m.pos)) continue;
      if (!m.sub_index.empty() && locals.count(m.sub_index) != 0 &&
          slot_good(m.sub_index)) {
        continue;
      }
      const Token& head = tok(m.pos);
      Finding fd;
      fd.file = f.rel_path;
      fd.line = head.line;
      fd.col = head.col;
      fd.rule = spec.id;
      fd.severity = spec.severity;
      fd.message = "lambda passed to '" + t.text + "' writes to captured '" +
                   m.name + "' with a possibly-empty lockset";
      fd.hint = spec.hint;
      out.push_back(std::move(fd));
    }
  }
  return out;
}

std::vector<Finding> ValueEngine::check_file(size_t file_index) const {
  std::vector<Finding> out;
  const AnalyzedFile& f = *files_[file_index];
  for (size_t p = 0; p < protocols_.size(); ++p) {
    const ProtocolSpec& spec = protocols_[p];
    if (!spec.in_scope(f.rel_path)) continue;
    if (spec.kind == ProtocolSpec::kWidth) {
      for (size_t fn : graph_->functions_in(file_index)) {
        if (spec.callers_try_suppresses && fn_try_covered_[fn] != 0) continue;
        width_check(p, fn, &out);
      }
    } else if (spec.kind == ProtocolSpec::kLockset) {
      std::vector<Finding> lock = lockset_check(p, file_index);
      out.insert(out.end(), std::make_move_iterator(lock.begin()),
                 std::make_move_iterator(lock.end()));
    }
  }
  return out;
}

uint64_t ValueEngine::environment_hash() const {
  uint64_t h = 1469598103934665603ull;
  h = fnv1a_u64(h, kLatticeVersion);
  for (const ProtocolSpec& spec : protocols_) {
    if (spec.kind != ProtocolSpec::kWidth &&
        spec.kind != ProtocolSpec::kLockset) {
      continue;
    }
    h = fnv1a_str(h, spec.id);
    h = fnv1a_str(h, spec.severity);
    h = fnv1a_u64(h, static_cast<uint64_t>(spec.kind));
    h = fnv1a_u64(h, (spec.try_suppresses ? 1u : 0u) |
                         (spec.callers_try_suppresses ? 2u : 0u));
    for (const std::string& s : spec.types) h = fnv1a_str(h, s);
    for (const std::string& s : spec.scope) h = fnv1a_str(h, s);
    for (const std::string& s : spec.fresh_init) h = fnv1a_str(h, s);
    for (const std::string& s : spec.functions) h = fnv1a_str(h, s);
    for (const std::string& s : spec.guards) h = fnv1a_str(h, s);
    for (const ReadSpec& r : spec.reads) {
      h = fnv1a_str(h, r.method);
      h = fnv1a_u64(h, static_cast<uint64_t>(r.width));
    }
    for (const std::string& s : spec.pure) h = fnv1a_str(h, s);
    for (const std::string& s : spec.lock_types) h = fnv1a_str(h, s);
    for (const std::string& s : spec.atomic_prefixes) h = fnv1a_str(h, s);
  }
  const auto& fns = graph_->functions();
  for (size_t fn = 0; fn < fns.size(); ++fn) {
    h = fnv1a_str(h, files_[fns[fn].file_index]->rel_path);
    h = fnv1a_str(h, fns[fn].def.qualified);
    h = fnv1a_u64(h, fn_try_covered_[fn]);
  }
  for (const auto& req : width_required_) {
    for (const auto& fentry : req) {
      h = fnv1a_u64(h, fentry.first);
      for (const auto& pentry : fentry.second) {
        h = fnv1a_u64(h, pentry.first);
        h = fnv1a_u64(h, static_cast<uint64_t>(pentry.second));
      }
    }
  }
  return h;
}

}  // namespace manrs::analyze
