// The three rules regex cannot express: they need scopes, declarations,
// and call sites. (The parallel-capture race heuristic that used to
// live here was replaced by the flow-aware lockset-race protocol in
// intervals.cpp.)
//
//   determinism-iteration  range-for over an unordered container that
//                          mutates an accumulator: iteration order is
//                          stdlib-specific, so unless the accumulator is
//                          sorted afterwards (the sanctioned
//                          sort-then-scan shape, recognized here) the
//                          output bytes depend on the stdlib -- the
//                          filter_variant bug class.
//   layer-violation        a first-party include edge not declared in
//                          tools/analyze/layers.txt.
//   parse-throw-boundary   a throw of anything but ParseError/MrtError
//                          inside the wire dirs, which would sail past
//                          the per-record catch (ParseError) boundary.
#include <algorithm>
#include <set>
#include <string>

#include "analyze/analyzer.h"
#include "analyze/rule.h"

namespace manrs::analyze {

namespace {

bool is_keywordish(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return", "throw",  "case",   "goto",  "new",    "delete",
      "else",   "do",     "co_return", "co_yield", "co_await", "sizeof",
      "typeid", "if",     "while",  "switch", "not",   "and", "or"};
  return kKeywords.count(s) != 0;
}

bool type_ish(const Token& t) {
  if (t.kind == TokenKind::kIdentifier) return !is_keywordish(t.text);
  return t.is_punct(">") || t.is_punct("*") || t.is_punct("&") ||
         t.is_punct("&&") || t.is_punct("]") || t.is_punct("::");
}

bool compound_assign(const Token& t) {
  if (t.kind != TokenKind::kPunct) return false;
  return t.text == "+=" || t.text == "-=" || t.text == "*=" ||
         t.text == "/=" || t.text == "%=" || t.text == "&=" ||
         t.text == "|=" || t.text == "^=" || t.text == "<<=" ||
         t.text == ">>=";
}

bool mutating_method(const std::string& name) {
  static const std::set<std::string> kMethods = {
      "push_back", "emplace_back", "pop_back", "insert", "emplace",
      "erase",     "clear",        "resize",   "assign", "append",
      "push",      "pop",          "push_front"};
  return kMethods.count(name) != 0;
}

/// Heuristic local-declaration collector for a token range: an
/// identifier preceded by a type-ish token and followed by a declarator
/// continuation is recorded, as are structured-binding names. Over-
/// approximating locals only ever silences a finding, never invents one.
void collect_locals(const FileContext& ctx, size_t begin, size_t end,
                    std::set<std::string>& locals) {
  for (size_t i = begin; i < end && i < ctx.size(); ++i) {
    const Token& t = ctx.tok(i);
    if (t.is_punct("[") && i > begin) {
      // auto& [a, b] : structured binding introduces every name inside.
      const Token& prev = ctx.tok(i - 1);
      if (prev.is_ident("auto") || prev.is_punct("&") || prev.is_punct("&&")) {
        size_t close = ctx.match(i);
        for (size_t j = i + 1; j < close && j < ctx.size(); ++j) {
          if (ctx.tok(j).kind == TokenKind::kIdentifier) {
            locals.insert(ctx.tok(j).text);
          }
        }
      }
      continue;
    }
    if (t.kind != TokenKind::kIdentifier || is_keywordish(t.text)) continue;
    if (i == begin || i + 1 >= ctx.size()) continue;
    const Token& prev = ctx.tok(i - 1);
    const Token& next = ctx.tok(i + 1);
    if (!type_ish(prev) || prev.is_punct("::")) continue;
    if (prev.kind == TokenKind::kIdentifier && is_keywordish(prev.text))
      continue;
    if (next.is_punct("=") || next.is_punct(";") || next.is_punct(",") ||
        next.is_punct(")") || next.is_punct(":") || next.is_punct("{") ||
        next.is_punct("(")) {
      locals.insert(t.text);
    } else if (next.is_punct("[")) {
      // C-array declarator: `Type name[expr]` then `;`, `=`, or `,`.
      // A subscripted *store* (`a[i] = x`) never has a type-ish token
      // before the array name, so the surrounding guard excludes it.
      size_t close = ctx.match(i + 1);
      if (close != FileContext::npos && close + 1 < ctx.size()) {
        const Token& after = ctx.tok(close + 1);
        if (after.is_punct(";") || after.is_punct("=") ||
            after.is_punct(",")) {
          locals.insert(t.text);
        }
      }
    }
  }
}

struct Mutation {
  size_t pos = 0;            // code position of the mutated identifier
  std::string name;          // the identifier (head of any member chain)
  bool indexed_by_var = false;  // some subscript on it names the loop var
};

/// Scan [begin, end) for writes to identifiers outside `locals`: direct
/// or compound assignment, increment/decrement, mutating member calls,
/// and subscripted stores. `loop_var` (may be empty) marks subscripts
/// that make a store per-slot safe for the parallel rule.
std::vector<Mutation> scan_mutations(const FileContext& ctx, size_t begin,
                                     size_t end,
                                     const std::set<std::string>& locals,
                                     const std::string& loop_var) {
  std::vector<Mutation> out;
  for (size_t i = begin; i < end && i < ctx.size(); ++i) {
    const Token& t = ctx.tok(i);
    if (t.kind != TokenKind::kIdentifier || is_keywordish(t.text)) continue;
    if (i > 0) {
      const Token& prev = ctx.tok(i - 1);
      if (prev.is_punct(".") || prev.is_punct("->") || prev.is_punct("::"))
        continue;  // not the head of the chain
    }
    if (locals.count(t.text) != 0 || t.text == loop_var) continue;

    // Walk the access chain: subscripts and member selections.
    size_t j = i + 1;
    bool indexed = false;
    bool subscripted = false;
    std::string last_member;
    while (j < end) {
      const Token& a = ctx.tok(j);
      if (a.is_punct("[")) {
        size_t close = ctx.match(j);
        if (close == FileContext::npos || close >= end) break;
        if (!loop_var.empty()) {
          for (size_t k = j + 1; k < close; ++k) {
            if (ctx.tok(k).is_ident(loop_var)) indexed = true;
          }
        }
        subscripted = true;
        j = close + 1;
        continue;
      }
      if ((a.is_punct(".") || a.is_punct("->")) && j + 1 < end &&
          ctx.tok(j + 1).kind == TokenKind::kIdentifier) {
        last_member = ctx.tok(j + 1).text;
        j += 2;
        continue;
      }
      break;
    }
    if (j >= end) continue;
    const Token& op = ctx.tok(j);

    bool wrote = false;
    if (op.is_punct("=")) {
      // Plain `X = ...` straight after a type-ish token is a declaration
      // with initializer, already covered by collect_locals.
      bool decl = j == i + 1 && i > begin && type_ish(ctx.tok(i - 1));
      wrote = !decl;
    } else if (compound_assign(op) || op.is_punct("++") || op.is_punct("--")) {
      wrote = true;
    } else if (!last_member.empty() && op.is_punct("(") &&
               mutating_method(last_member)) {
      wrote = true;
    }
    if (!wrote && i > 0) {
      const Token& prev = ctx.tok(i - 1);
      if ((prev.is_punct("++") || prev.is_punct("--")) && j == i + 1) {
        wrote = true;
        (void)subscripted;
      }
    }
    if (!wrote) continue;
    Mutation m;
    m.pos = i;
    m.name = t.text;
    m.indexed_by_var = indexed;
    out.push_back(std::move(m));
  }
  return out;
}

/// The close position of the innermost enclosing brace pair that looks
/// like a function body (its '{' is preceded by ')' or a function
/// qualifier); falls back to the innermost enclosing brace.
size_t enclosing_function_close(const FileContext& ctx, size_t pos) {
  size_t open = ctx.encl(pos);
  size_t fallback = FileContext::npos;
  while (open != FileContext::npos) {
    if (fallback == FileContext::npos) fallback = ctx.match(open);
    if (open > 0) {
      const Token& before = ctx.tok(open - 1);
      if (before.is_punct(")") || before.is_ident("const") ||
          before.is_ident("noexcept") || before.is_ident("override") ||
          before.is_ident("try") || before.is_ident("mutable")) {
        return ctx.match(open);
      }
    }
    open = ctx.encl(open);
  }
  return fallback != FileContext::npos ? fallback : ctx.size();
}

/// True if `name` is passed to std::sort / std::stable_sort between
/// `from` and `to` -- the sanctioned sort-then-scan completion.
bool sorted_later(const FileContext& ctx, size_t from, size_t to,
                  const std::string& name) {
  for (size_t i = from; i < to && i + 1 < ctx.size(); ++i) {
    const Token& t = ctx.tok(i);
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "sort" && t.text != "stable_sort")) {
      continue;
    }
    if (!ctx.tok(i + 1).is_punct("(")) continue;
    size_t close = ctx.match(i + 1);
    if (close == FileContext::npos) continue;
    for (size_t j = i + 2; j < close; ++j) {
      if (ctx.tok(j).is_ident(name)) return true;
    }
  }
  return false;
}

class DeterminismIterationRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "determinism-iteration", "error",
        "range-for over an unordered container mutating an accumulator: "
        "iteration order is stdlib-specific, so the result depends on the "
        "standard library unless the accumulator is sorted afterwards",
        "collect into a flat vector and sort before use (sort-then-scan, "
        "docs/performance.md), or waive with the reason the fold is "
        "order-independent"};
    return kInfo;
  }

  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i + 1 < ctx.size(); ++i) {
      if (!ctx.tok(i).is_ident("for") || !ctx.tok(i + 1).is_punct("(")) {
        continue;
      }
      size_t open = i + 1;
      size_t close = ctx.match(open);
      if (close == FileContext::npos) continue;
      // The range-for colon at top nesting depth inside the parens.
      size_t colon = FileContext::npos;
      int depth = 0;
      for (size_t j = open + 1; j < close; ++j) {
        const Token& t = ctx.tok(j);
        if (t.is_punct("(") || t.is_punct("[") || t.is_punct("{")) ++depth;
        if (t.is_punct(")") || t.is_punct("]") || t.is_punct("}")) --depth;
        if (depth == 0 && t.is_punct(":")) {
          colon = j;
          break;
        }
        if (depth == 0 && t.is_punct(";")) break;  // classic for
      }
      if (colon == FileContext::npos) continue;

      // Resolve the range expression to a container name.
      size_t j = colon + 1;
      while (j < close &&
             (ctx.tok(j).is_punct("*") || ctx.tok(j).is_punct("&"))) {
        ++j;
      }
      std::string name;
      bool call = false;
      while (j < close) {
        const Token& t = ctx.tok(j);
        if (t.kind == TokenKind::kIdentifier) {
          name = t.text;
          ++j;
          continue;
        }
        if (t.is_punct("::") || t.is_punct(".") || t.is_punct("->")) {
          ++j;
          continue;
        }
        if (t.is_punct("(")) call = true;
        break;
      }
      if (name.empty()) continue;
      bool unordered =
          call ? ctx.program().unordered_fns.count(name) != 0
               : ctx.unordered_var_in_scope(name, ctx.tok(i).line);
      if (!unordered) continue;

      // Scope bookkeeping: loop-head names and body locals don't count.
      std::set<std::string> locals;
      for (size_t k = open + 1; k < colon; ++k) {
        if (ctx.tok(k).kind == TokenKind::kIdentifier) {
          locals.insert(ctx.tok(k).text);
        }
      }
      size_t body_begin = close + 1;
      size_t body_end;
      if (body_begin < ctx.size() && ctx.tok(body_begin).is_punct("{")) {
        body_end = ctx.match(body_begin);
        if (body_end == FileContext::npos) continue;
        ++body_begin;
      } else {
        body_end = body_begin;
        while (body_end < ctx.size() && !ctx.tok(body_end).is_punct(";")) {
          ++body_end;
        }
      }
      collect_locals(ctx, body_begin, body_end, locals);
      std::vector<Mutation> muts =
          scan_mutations(ctx, body_begin, body_end, locals, "");

      size_t func_close = enclosing_function_close(ctx, i);
      std::set<std::string> reported;
      for (const Mutation& m : muts) {
        if (reported.count(m.name) != 0) continue;
        reported.insert(m.name);
        if (sorted_later(ctx, body_end, func_close, m.name)) continue;
        out.push_back(ctx.finding(
            *this, i,
            "range-for over unordered container '" + name +
                "' mutates accumulator '" + m.name +
                "' which is never sorted afterwards"));
      }
    }
  }
};

class LayerViolationRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "layer-violation", "error",
        "first-party include edge not declared in the layering DAG "
        "(tools/analyze/layers.txt); undeclared edges calcify into cycles",
        "depend downward only, or declare the edge in "
        "tools/analyze/layers.txt with review"};
    return kInfo;
  }
  bool applies_to(const std::string& rel) const override {
    return path_starts_with(rel, {"src/"});
  }

  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    const LayerConfig& layers = ctx.layers();
    if (!layers.loaded) return;
    const std::string& rel = ctx.rel_path();
    size_t slash = rel.find('/', 4);  // after "src/"
    if (slash == std::string::npos) return;
    std::string module = rel.substr(4, slash - 4);

    auto make = [&](int line, std::string message) {
      Finding f;
      f.file = rel;
      f.line = line;
      f.col = 1;
      f.rule = info().id;
      f.severity = info().severity;
      f.message = std::move(message);
      f.hint = info().hint;
      out.push_back(std::move(f));
    };

    if (!layers.is_module(module)) {
      make(1, "module '" + module + "' is not declared in " +
                  layers.source_path);
      return;
    }
    const std::set<std::string>& allowed = layers.allowed.at(module);
    for (const IncludeDirective& inc : ctx.file().includes) {
      if (inc.angled) continue;
      size_t s = inc.path.find('/');
      if (s == std::string::npos) continue;
      std::string target = inc.path.substr(0, s);
      if (target == module || !layers.is_module(target)) continue;
      if (allowed.count(target) != 0) continue;
      make(inc.line, "layer violation: '" + module + "' includes '" +
                         inc.path + "' but layers.txt declares no " +
                         module + " -> " + target + " edge");
    }
  }
};

class ParseThrowBoundaryRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "parse-throw-boundary", "error",
        "the wire readers catch util::ParseError per record and keep "
        "scanning; any other exception type thrown in a parse path "
        "bypasses that boundary and aborts the whole read",
        "throw util::ParseError (or mrt::MrtError, which derives from "
        "it); report soft failures through return values"};
    return kInfo;
  }
  bool applies_to(const std::string& rel) const override {
    return in_parse_dirs(rel);
  }

  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i < ctx.size(); ++i) {
      if (!ctx.tok(i).is_ident("throw")) continue;
      if (i + 1 >= ctx.size()) continue;
      if (ctx.tok(i + 1).is_punct(";")) continue;  // rethrow
      // Resolve the thrown type's terminal name.
      std::string last;
      size_t j = i + 1;
      while (j < ctx.size()) {
        const Token& t = ctx.tok(j);
        if (t.kind == TokenKind::kIdentifier) {
          last = t.text;
          ++j;
          continue;
        }
        if (t.is_punct("::")) {
          ++j;
          continue;
        }
        break;
      }
      if (last == "ParseError" || last == "MrtError") continue;
      out.push_back(ctx.finding(
          *this, i,
          "throw of '" + (last.empty() ? std::string("<non-type>") : last) +
              "' inside a wire-parse dir bypasses the per-record "
              "ParseError boundary"));
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_contract_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<DeterminismIterationRule>());
  rules.push_back(std::make_unique<LayerViolationRule>());
  rules.push_back(std::make_unique<ParseThrowBoundaryRule>());
  return rules;
}

}  // namespace manrs::analyze
