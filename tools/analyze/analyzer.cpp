#include "analyze/analyzer.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analyze/cache.h"
#include "analyze/intervals.h"
#include "analyze/typestate.h"
#include "util/parallel.h"

namespace manrs::analyze {

namespace fs = std::filesystem;

namespace {

const std::set<std::string> kCppSuffixes = {".cpp", ".cc", ".cxx", ".h",
                                            ".hpp"};

/// Directory names never scanned: generated trees and the deliberately
/// broken analyzer fixture corpus (tests/analyze_fixtures).
bool skip_dir(const std::string& name) {
  return name == ".git" || name == "out" || name == "data" ||
         name == "analyze_fixtures" || name.rfind("build", 0) == 0;
}

/// Audited exceptions carried over from tools/lint_wire.py: per rule,
/// the repo-relative files where the pattern is the sanctioned
/// implementation rather than a violation.
bool allowlisted(const std::string& rule, const std::string& rel) {
  if (rule == "reinterpret-cast") {
    return rel == "src/util/bytes.cpp";
  }
  if (rule == "raw-thread") {
    return rel == "src/util/parallel.h" || rel == "src/util/parallel.cpp";
  }
  if (rule == "rib-map") {
    return rel == "src/bgp/rib.h" || rel == "src/bgp/rib.cpp";
  }
  if (rule == "std-hash") {
    return rel == "src/util/det_hash.h" || rel == "src/netbase/asn.h" ||
           rel == "src/netbase/prefix.h" || rel == "src/bgp/route.h";
  }
  return false;
}

}  // namespace

bool is_waiver_comment(const std::string& text) {
  // The marker must open the comment ("// lint-ok: reason"): prose that
  // merely quotes lint-ok elsewhere in a comment is not a waiver.
  size_t pos = 0;
  while (pos < text.size() &&
         (text[pos] == '/' || text[pos] == '*' ||
          std::isspace(static_cast<unsigned char>(text[pos])))) {
    ++pos;
  }
  if (text.compare(pos, 8, "lint-ok:") != 0) return false;
  pos += 8;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  // A reason is required; a bare "lint-ok:" waives nothing.
  return pos < text.size() && text[pos] != '*' && text[pos] != '/';
}

LayerConfig parse_layers(const std::string& text, std::string path) {
  LayerConfig config;
  config.source_path = std::move(path);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    std::string module = line.substr(0, colon);
    // trim
    auto trim = [](std::string& s) {
      size_t b = s.find_first_not_of(" \t\r");
      size_t e = s.find_last_not_of(" \t\r");
      s = b == std::string::npos ? "" : s.substr(b, e - b + 1);
    };
    trim(module);
    if (module.empty()) continue;
    std::set<std::string>& deps = config.allowed[module];
    std::istringstream rest(line.substr(colon + 1));
    std::string dep;
    while (rest >> dep) deps.insert(dep);
  }
  config.loaded = !config.allowed.empty();
  return config;
}

bool path_starts_with(const std::string& rel_path,
                      std::initializer_list<const char*> prefixes) {
  for (const char* p : prefixes) {
    if (rel_path.rfind(p, 0) == 0) return true;
  }
  return false;
}

bool in_parse_dirs(const std::string& rel_path) {
  return path_starts_with(rel_path,
                          {"src/mrt/", "src/rpki/", "src/irr/",
                           "src/netbase/"});
}

bool FileContext::unordered_var_in_scope(const std::string& name,
                                         int line) const {
  auto it = file_.unordered_vars.find(name);
  if (it != file_.unordered_vars.end()) {
    for (int decl_line : it->second) {
      if (decl_line <= line) return true;
    }
  }
  // Members declared in a first-party header this file includes (e.g. a
  // .cpp iterating a map member declared in its own .h). One level of
  // include resolution is enough for that pattern.
  for (const IncludeDirective& inc : file_.includes) {
    if (inc.angled) continue;
    for (const char* prefix : {"src/", "tools/", ""}) {
      auto fit = program_.files.find(prefix + inc.path);
      if (fit == program_.files.end()) continue;
      const AnalyzedFile* header = fit->second;
      if (header->unordered_vars.find(name) != header->unordered_vars.end()) {
        return true;
      }
      break;
    }
  }
  return false;
}

Finding FileContext::finding(const Rule& rule, size_t code_pos,
                             std::string message) const {
  const Token& t = tok(code_pos);
  Finding f;
  f.file = file_.rel_path;
  f.line = t.line;
  f.col = t.col;
  f.rule = rule.info().id;
  f.severity = rule.info().severity;
  f.message = std::move(message);
  f.hint = rule.info().hint;
  return f;
}

Analyzer::Analyzer(std::string root) {
  // Anchor the root so target expansion and rel-path computation agree
  // regardless of how the caller spelled it.
  std::error_code ec;
  fs::path abs = fs::absolute(root, ec);
  root_ = ec ? root : abs.lexically_normal().string();
  auto slurp = [](const std::string& path, std::string* out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream text;
    text << in.rdbuf();
    *out = text.str();
    return true;
  };
  if (slurp(root_ + "/tools/analyze/layers.txt", &layers_text_)) {
    layers_ = parse_layers(layers_text_, root_ + "/tools/analyze/layers.txt");
  }
  if (slurp(root_ + "/tools/analyze/protocols.txt", &protocols_text_)) {
    protocols_ = parse_protocols(protocols_text_, &protocol_error_);
  }
}

Analyzer::~Analyzer() = default;

void Analyzer::enable_cache(std::string dir) { cache_dir_ = std::move(dir); }

bool Analyzer::add_file(const std::string& path) {
  fs::path abs = fs::path(path).is_absolute() ? fs::path(path)
                                              : fs::path(root_) / path;
  std::ifstream in(abs, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "manrs_analyze: cannot read %s\n",
                 abs.string().c_str());
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();

  AnalyzedFile file;
  std::error_code ec;
  fs::path rel = fs::relative(abs, root_, ec);
  file.rel_path = (ec || rel.empty()) ? abs.generic_string()
                                      : rel.generic_string();
  file.text = text.str();
  files_.push_back(std::move(file));
  indexed_ = false;
  return true;
}

bool Analyzer::add_target(const std::string& target) {
  fs::path abs = fs::path(target).is_absolute() ? fs::path(target)
                                                : fs::path(root_) / target;
  std::error_code ec;
  if (fs::is_regular_file(abs, ec)) return add_file(abs.string());
  if (!fs::is_directory(abs, ec)) {
    std::fprintf(stderr, "manrs_analyze: no such path: %s\n",
                 abs.string().c_str());
    return false;
  }
  std::vector<std::string> paths;
  std::vector<fs::path> stack = {abs};
  while (!stack.empty()) {
    fs::path dir = stack.back();
    stack.pop_back();
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_directory()) {
        if (!skip_dir(entry.path().filename().string())) {
          stack.push_back(entry.path());
        }
        continue;
      }
      if (!entry.is_regular_file()) continue;
      if (kCppSuffixes.count(entry.path().extension().string()) != 0) {
        paths.push_back(entry.path().string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  bool ok = true;
  for (const std::string& p : paths) ok = add_file(p) && ok;
  return ok;
}

AnalyzedFile analyze_text(std::string rel_path, std::string text) {
  AnalyzedFile file;
  file.rel_path = std::move(rel_path);
  file.text = std::move(text);
  file.tokens = lex(file.text);
  file.includes = extract_includes(file.tokens);
  const std::vector<Token>& toks = file.tokens;

  // Code view + waivers.
  int pending_waiver_line = 0;  // standalone waiver comment covers line+1
  std::map<int, bool> line_has_code;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokenKind::kComment) {
      if (is_waiver_comment(t.text)) {
        WaiverSite site;
        site.line = t.line;
        for (int l = t.line; l <= t.end_line; ++l) {
          file.waived_lines.insert(l);
          site.covers.insert(l);
        }
        file.waiver_sites.push_back(std::move(site));
        if (!line_has_code[t.line]) pending_waiver_line = t.end_line + 1;
      }
      continue;
    }
    if (t.kind == TokenKind::kEndOfFile) continue;
    for (int l = t.line; l <= t.end_line; ++l) line_has_code[l] = true;
    if (t.kind == TokenKind::kDirective) continue;
    file.code.push_back(i);
  }
  if (pending_waiver_line != 0) {
    // Re-scan: each standalone waiver comment covers the next line.
    bool prev_standalone_waiver = false;
    int prev_comment_line = 0;
    int prev_end_line = 0;
    for (const Token& t : toks) {
      if (t.kind == TokenKind::kComment && is_waiver_comment(t.text) &&
          !line_has_code[t.line]) {
        prev_standalone_waiver = true;
        prev_comment_line = t.line;
        prev_end_line = t.end_line;
        continue;
      }
      if (prev_standalone_waiver && t.kind != TokenKind::kEndOfFile &&
          t.line > prev_end_line) {
        file.waived_lines.insert(t.line);
        for (WaiverSite& site : file.waiver_sites) {
          if (site.line == prev_comment_line) site.covers.insert(t.line);
        }
        prev_standalone_waiver = false;
      }
    }
  }

  // Bracket matching + enclosing-brace table over the code view.
  const size_t n = file.code.size();
  file.match.assign(n, FileContext::npos);
  file.encl.assign(n, FileContext::npos);
  std::vector<size_t> paren_stack;
  std::vector<size_t> brace_stack;
  for (size_t i = 0; i < n; ++i) {
    const Token& t = toks[file.code[i]];
    file.encl[i] = brace_stack.empty() ? FileContext::npos
                                       : brace_stack.back();
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(" || t.text == "[") {
      paren_stack.push_back(i);
    } else if (t.text == ")" || t.text == "]") {
      if (!paren_stack.empty()) {
        file.match[paren_stack.back()] = i;
        file.match[i] = paren_stack.back();
        paren_stack.pop_back();
      }
    } else if (t.text == "{") {
      brace_stack.push_back(i);
    } else if (t.text == "}") {
      if (!brace_stack.empty()) {
        file.match[brace_stack.back()] = i;
        file.match[i] = brace_stack.back();
        brace_stack.pop_back();
      }
    }
  }

  // Declaration index: unordered_map/unordered_set variables and
  // functions returning them. The scan is token-local: find the type
  // name, balance its template argument list, then classify what the
  // closing '>' is followed by.
  auto code_tok = [&](size_t i) -> const Token& { return toks[file.code[i]]; };
  for (size_t i = 0; i < n; ++i) {
    const Token& t = code_tok(i);
    if (t.kind != TokenKind::kIdentifier ||
        (t.text != "unordered_map" && t.text != "unordered_set")) {
      continue;
    }
    if (i + 1 >= n || !code_tok(i + 1).is_punct("<")) continue;
    // Balance the template argument list (">>" closes two levels).
    int depth = 0;
    size_t j = i + 1;
    for (; j < n && j < i + 400; ++j) {
      const Token& a = code_tok(j);
      if (a.is_punct("<")) {
        ++depth;
      } else if (a.is_punct(">")) {
        if (--depth == 0) break;
      } else if (a.is_punct(">>")) {
        depth -= 2;
        if (depth <= 0) break;
      } else if (a.is_punct(";") || a.is_punct("{")) {
        break;
      }
    }
    if (j >= n || depth > 0) continue;
    size_t k = j + 1;
    // Skip declarator decorations between type and name.
    while (k < n && (code_tok(k).is_punct("&") || code_tok(k).is_punct("*") ||
                     code_tok(k).is_punct("&&") ||
                     code_tok(k).is_ident("const"))) {
      ++k;
    }
    if (k >= n || code_tok(k).kind != TokenKind::kIdentifier) continue;
    if (code_tok(k).is_ident("const")) continue;
    const std::string& name = code_tok(k).text;
    if (k + 1 < n && code_tok(k + 1).is_punct("(")) {
      // Declared return type of a function.
      file.unordered_fn_decls.insert(name);
    } else if (k + 1 < n && (code_tok(k + 1).is_punct("::") ||
                             code_tok(k + 1).is_punct("<"))) {
      // unordered_map<...>::iterator etc. -- not a variable.
    } else {
      file.unordered_vars[name].push_back(code_tok(k).line);
    }
  }
  return file;
}

void Analyzer::finish_index() {
  if (indexed_) return;
  // Pass 1 in parallel: lex + per-file index. Each task touches only
  // its own AnalyzedFile; the cross-file steps below stay serial.
  util::parallel_for(files_.size(), [&](size_t i) {
    AnalyzedFile& f = files_[i];
    files_[i] = analyze_text(std::move(f.rel_path), std::move(f.text));
  });
  program_.files.clear();
  program_.unordered_fns.clear();
  for (const AnalyzedFile& f : files_) {
    program_.files[f.rel_path] = &f;
    program_.unordered_fns.insert(f.unordered_fn_decls.begin(),
                                  f.unordered_fn_decls.end());
  }
  // `auto x = f(...)` where f is declared (in any scanned file) to
  // return an unordered container: x inherits the container type.
  for (AnalyzedFile& file : files_) {
    const size_t n = file.code.size();
    auto code_tok = [&](size_t i) -> const Token& {
      return file.tokens[file.code[i]];
    };
    for (size_t i = 0; i + 3 < n; ++i) {
      if (!code_tok(i).is_ident("auto")) continue;
      size_t k = i + 1;
      while (k < n && (code_tok(k).is_punct("&") || code_tok(k).is_punct("*") ||
                       code_tok(k).is_ident("const"))) {
        ++k;
      }
      if (k + 2 >= n || code_tok(k).kind != TokenKind::kIdentifier) continue;
      if (!code_tok(k + 1).is_punct("=")) continue;
      // Find the called function: the identifier right before the first
      // '(' of the initializer.
      size_t p = k + 2;
      while (p < n && !code_tok(p).is_punct("(") && !code_tok(p).is_punct(";"))
        ++p;
      if (p >= n || !code_tok(p).is_punct("(") || p == k + 2) continue;
      const Token& callee = code_tok(p - 1);
      if (callee.kind == TokenKind::kIdentifier &&
          program_.unordered_fns.count(callee.text) != 0) {
        file.unordered_vars[code_tok(k).text].push_back(code_tok(k).line);
      }
    }
    for (auto& [name, lines] : file.unordered_vars) {
      std::sort(lines.begin(), lines.end());
    }
  }
  indexed_ = true;
}

std::vector<CatalogEntry> Analyzer::rule_catalog() const {
  std::vector<CatalogEntry> out;
  for (const auto& rule : make_all_rules()) {
    const RuleInfo& info = rule->info();
    out.push_back(CatalogEntry{info.id, info.severity, info.summary,
                               info.hint});
  }
  out.push_back(CatalogEntry{
      "unused-waiver", "info",
      "a lint-ok comment that suppresses no finding is stale and hides "
      "the rule it once silenced",
      "delete the stale comment (or fix the rule id it targets)"});
  for (const ProtocolSpec& spec : protocols_) {
    out.push_back(CatalogEntry{spec.id, spec.severity, spec.summary,
                               spec.hint});
  }
  return out;
}

AnalysisResult Analyzer::run() {
  finish_index();
  std::vector<std::unique_ptr<Rule>> rules = make_all_rules();

  std::vector<const AnalyzedFile*> file_ptrs;
  file_ptrs.reserve(files_.size());
  for (const AnalyzedFile& f : files_) file_ptrs.push_back(&f);
  // A malformed protocols.txt disables the flow rules (the caller
  // surfaces protocol_error() as a configuration error).
  std::vector<ProtocolSpec> protos =
      protocol_error_.empty() ? protocols_ : std::vector<ProtocolSpec>{};
  // One cross-TU call graph shared by the typestate and value engines.
  CallGraph graph = build_call_graph(file_ptrs);
  TypestateEngine engine(protos, file_ptrs, &graph);
  ValueEngine value_engine(std::move(protos), file_ptrs, &graph);

  // The cache key folds in everything that can change a file's results
  // besides its own content: the rule set, the layer and protocol
  // configs, and the cross-TU environment (summaries, caller-try sets,
  // the value lattice).
  ResultCache cache(cache_dir_, [&] {
    uint64_t h = fnv1a64("manrs_analyze-cache");
    for (const auto& rule : rules) h = fnv1a64(rule->info().id, h);
    h = fnv1a64(layers_text_, h);
    h = fnv1a64(protocols_text_, h);
    uint64_t env = engine.environment_hash();
    h ^= env + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    uint64_t value_env = value_engine.environment_hash();
    h ^= value_env + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  }());

  struct FileOutcome {
    std::vector<Finding> findings;  // post-waiver
    size_t waived = 0;
    bool from_cache = false;
  };
  std::vector<FileOutcome> outcomes(files_.size());
  util::parallel_for(files_.size(), [&](size_t i) {
    const AnalyzedFile& file = files_[i];
    FileOutcome& slot = outcomes[i];
    uint64_t key = 0;
    if (cache.enabled()) {
      key = cache.key(file.rel_path, file.text);
      CacheEntry entry;
      if (cache.load(file.rel_path, key, &entry)) {
        slot.findings = std::move(entry.findings);
        slot.waived = entry.waived;
        slot.from_cache = true;
        return;
      }
    }
    FileContext ctx(file, program_, layers_);
    std::vector<Finding> raw;
    for (const auto& rule : rules) {
      if (!rule->applies_to(file.rel_path)) continue;
      if (allowlisted(rule->info().id, file.rel_path)) continue;
      rule->check(ctx, raw);
    }
    std::vector<Finding> flow = engine.check_file(i);
    raw.insert(raw.end(), std::make_move_iterator(flow.begin()),
               std::make_move_iterator(flow.end()));
    std::vector<Finding> value = value_engine.check_file(i);
    raw.insert(raw.end(), std::make_move_iterator(value.begin()),
               std::make_move_iterator(value.end()));
    std::vector<uint8_t> site_used(file.waiver_sites.size(), 0);
    for (Finding& f : raw) {
      if (file.waived_lines.count(f.line) != 0) {
        ++slot.waived;
        for (size_t s = 0; s < file.waiver_sites.size(); ++s) {
          if (file.waiver_sites[s].covers.count(f.line) != 0) site_used[s] = 1;
        }
        continue;
      }
      slot.findings.push_back(std::move(f));
    }
    // Waiver hygiene: a lint-ok comment that absorbed nothing is dead
    // weight (the finding it silenced was fixed, or it never matched).
    // Emitted after the waiver filter, so a stale waiver cannot waive
    // its own report.
    for (size_t s = 0; s < file.waiver_sites.size(); ++s) {
      if (site_used[s] != 0) continue;
      Finding f;
      f.file = file.rel_path;
      f.line = file.waiver_sites[s].line;
      f.col = 1;
      f.rule = "unused-waiver";
      f.severity = "info";
      f.message = "lint-ok waiver suppresses no finding; remove it";
      f.hint = "delete the stale comment (or fix the rule id it targets)";
      slot.findings.push_back(std::move(f));
    }
    if (cache.enabled()) {
      CacheEntry entry;
      entry.findings = slot.findings;
      entry.waived = slot.waived;
      cache.store(file.rel_path, key, entry);
    }
  });

  AnalysisResult result;
  result.files_scanned = files_.size();
  for (FileOutcome& slot : outcomes) {
    result.waived += slot.waived;
    if (slot.from_cache) {
      ++result.cache_hits;
    } else {
      ++result.cache_misses;
    }
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(slot.findings.begin()),
                           std::make_move_iterator(slot.findings.end()));
  }
  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;  // total order => stable bytes
            });
  return result;
}

}  // namespace manrs::analyze
