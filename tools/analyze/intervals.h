// Value-aware analysis layer: a constant/interval lattice over integer
// locals plus the two rule families built on it.
//
// The lattice is the classic three-tier interval domain: Bottom (no
// information yet, the identity of join), a [lo, hi] range, and Unknown
// (the sink -- anything the evaluator cannot prove lands here and never
// recovers, which is what keeps the rules at zero false positives).
// Joins take the convex hull; back-edges widen straight to Unknown so
// loops converge immediately instead of crawling up the integer line.
//
// Two protocol kinds consume the lattice (parsed from protocols.txt by
// typestate.h's parser, same registry/SARIF/cache plumbing):
//
//   kind width    -- quantitative upgrade of the binary cursor-guard
//     typestate: at every ByteCursor/ByteReader read site the engine
//     compares the bytes the read consumes (fixed-width u8..u64, or
//     bytes(n)/skip(n)/sub(n) with n evaluated in the lattice) against
//     the *budget* proved by the dominating can_read(k) /
//     "remaining() >= k" guard. A read whose minimum consumption
//     exceeds the proved budget is the can_read(8)-then-read-12 class
//     binary typestate cannot see. Budgets only exist when the guard
//     argument evaluates to a singleton interval; everything else is
//     NoProof and stays silent. Interprocedurally, every (function,
//     by-reference cursor parameter) gets a summary: the number of
//     bytes the callee consumes on *every* path before establishing a
//     guard of its own (a min-over-paths under-approximation, so a
//     caller is only flagged when each path through the callee would
//     overrun its proof). try-blocks and transitively try-covered
//     call chains suppress, mirroring the cursor-guard attributes.
//
//   kind lockset  -- flow-aware replacement for the lexical
//     parallel-capture heuristic: inside every parallel_for /
//     parallel_map lambda, a write to a captured-by-reference location
//     is accepted only if it is (a) to an atomic-typed name, (b) inside
//     a live lock region (scoped_lock/lock_guard/unique_lock tracked
//     from declaration to scope end, truncated by .unlock() and
//     reopened by .lock()), (c) subscripted by the loop variable, or
//     (d) subscripted by a local whose every assignment is a linear
//     form of the loop variable with a provably nonzero coefficient
//     (the out[slot] slot-indexing idiom). Everything else is a
//     may-be-empty lockset on a shared location: a race.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analyze/callgraph.h"
#include "analyze/rule.h"
#include "analyze/typestate.h"

namespace manrs::analyze {

/// Version of the value lattice + transfer semantics. Folded into the
/// cache environment hash (a semantics change must invalidate cached
/// per-file results) and stamped into BENCH_analyze.json runs.
inline constexpr uint64_t kLatticeVersion = 1;

struct Interval {
  enum Kind { kBottom, kRange, kUnknown };
  Kind kind = kBottom;
  long long lo = 0;
  long long hi = 0;

  static Interval bottom() { return Interval{}; }
  static Interval unknown() {
    Interval v;
    v.kind = kUnknown;
    return v;
  }
  static Interval constant(long long c) { return range(c, c); }
  static Interval range(long long lo, long long hi) {
    Interval v;
    v.kind = kRange;
    v.lo = lo;
    v.hi = hi;
    return v;
  }

  bool is_singleton() const { return kind == kRange && lo == hi; }
  bool operator==(const Interval& o) const {
    if (kind != o.kind) return false;
    if (kind != kRange) return true;
    return lo == o.lo && hi == o.hi;
  }
  bool operator!=(const Interval& o) const { return !(*this == o); }
};

/// Least upper bound: Bottom is the identity, Unknown the sink,
/// ranges take the convex hull.
Interval interval_join(const Interval& a, const Interval& b);

/// Widening for back-edges: any growth beyond `prev` jumps straight to
/// Unknown (stable or narrowing values keep `prev`).
Interval interval_widen(const Interval& prev, const Interval& next);

/// Saturating interval arithmetic; Bottom propagates Bottom, Unknown
/// propagates Unknown.
Interval interval_add(const Interval& a, const Interval& b);
Interval interval_sub(const Interval& a, const Interval& b);
Interval interval_mul(const Interval& a, const Interval& b);

class ValueEngine {
 public:
  /// `files` and `graph` must outlive the engine (same shared call
  /// graph the typestate engine runs on, see build_call_graph).
  /// Non-width/lockset protocols are ignored.
  ValueEngine(std::vector<ProtocolSpec> protocols,
              const std::vector<const AnalyzedFile*>& files,
              const CallGraph* graph);

  /// All width + lockset findings anchored in files[file_index],
  /// unsorted.
  std::vector<Finding> check_file(size_t file_index) const;

  /// Digest of everything a file's value findings can depend on
  /// besides its own content: the lattice version, the specs, the
  /// width summaries, and per-function try coverage.
  uint64_t environment_hash() const;

 private:
  void compute_try_cover();
  void compute_width_summaries();
  void width_check(size_t proto, size_t fn, std::vector<Finding>* out) const;
  std::vector<Finding> lockset_check(size_t proto, size_t file_index) const;

  std::vector<ProtocolSpec> protocols_;
  std::vector<const AnalyzedFile*> files_;
  const CallGraph* graph_;
  // Transitive caller-try coverage: every call site of fn is in a try
  // or in a function that is itself covered.
  std::vector<uint8_t> fn_try_covered_;
  // Per width protocol: fn -> param_index -> required bytes.
  std::vector<std::map<size_t, std::map<size_t, long long>>> width_required_;
};

}  // namespace manrs::analyze
