#include "analyze/cache.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/strings.h"

namespace manrs::analyze {

namespace {

constexpr uint64_t kCacheFormat = 3;  // bump to invalidate all shards

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      switch (s[i]) {
        case 't': out += '\t'; break;
        case 'n': out += '\n'; break;
        default: out += s[i];
      }
    } else {
      out += s[i];
    }
  }
  return out;
}

std::vector<std::string> split_tabs(const std::string& line) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= line.size(); ++i) {
    if (i == line.size() || line[i] == '\t') {
      out.push_back(line.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string hex64(uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

}  // namespace

uint64_t fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

ResultCache::ResultCache(std::string dir, uint64_t env_hash)
    : dir_(std::move(dir)), env_hash_(env_hash) {}

uint64_t ResultCache::key(const std::string& rel_path,
                          const std::string& content) const {
  uint64_t h = fnv1a64(content);
  h = fnv1a64(rel_path, h * 0x100000001b3ULL + kCacheFormat);
  h ^= env_hash_ + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::string ResultCache::shard_path(const std::string& rel_path) const {
  return dir_ + "/" + hex64(fnv1a64(rel_path)) + ".rec";
}

bool ResultCache::load(const std::string& rel_path, uint64_t key,
                       CacheEntry* out) const {
  if (!enabled()) return false;
  std::ifstream in(shard_path(rel_path));
  if (!in) return false;
  std::string header;
  if (!std::getline(in, header)) return false;
  std::vector<std::string> hf = split_tabs(header);
  // header: rel_path  key-hex  finding-count  waived-count
  if (hf.size() != 4 || unescape(hf[0]) != rel_path ||
      hf[1] != hex64(key)) {
    return false;
  }
  auto count_v = util::parse_uint<uint64_t>(hf[2]);
  auto waived_v = util::parse_uint<uint64_t>(hf[3]);
  if (!count_v || !waived_v) return false;
  const size_t count = static_cast<size_t>(*count_v);
  CacheEntry entry;
  entry.waived = static_cast<size_t>(*waived_v);
  std::string line;
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return false;
    std::vector<std::string> f = split_tabs(line);
    // finding: file  line  col  rule  severity  message  hint
    if (f.size() != 7) return false;
    Finding fd;
    fd.file = unescape(f[0]);
    auto line_v = util::parse_int<int>(f[1]);
    auto col_v = util::parse_int<int>(f[2]);
    if (!line_v || !col_v) return false;
    fd.line = *line_v;
    fd.col = *col_v;
    fd.rule = unescape(f[3]);
    fd.severity = unescape(f[4]);
    fd.message = unescape(f[5]);
    fd.hint = unescape(f[6]);
    entry.findings.push_back(std::move(fd));
  }
  *out = std::move(entry);
  return true;
}

void ResultCache::store(const std::string& rel_path, uint64_t key,
                        const CacheEntry& entry) const {
  if (!enabled()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) return;
  std::ostringstream buf;
  buf << escape(rel_path) << '\t' << hex64(key) << '\t'
      << entry.findings.size() << '\t' << entry.waived << '\n';
  for (const Finding& fd : entry.findings) {
    buf << escape(fd.file) << '\t' << fd.line << '\t' << fd.col << '\t'
        << escape(fd.rule) << '\t' << escape(fd.severity) << '\t'
        << escape(fd.message) << '\t' << escape(fd.hint) << '\n';
  }
  const std::string path = shard_path(rel_path);
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return;
    out << buf.str();
    if (!out) return;
  }
  std::filesystem::rename(tmp, path, ec);
  if (ec) std::filesystem::remove(tmp, ec);
}

}  // namespace manrs::analyze
