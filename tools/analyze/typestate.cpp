#include "analyze/typestate.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <sstream>

#include "util/parallel.h"

namespace manrs::analyze {

namespace {

constexpr size_t npos = FileContext::npos;

uint64_t fnv1a_str(uint64_t h, const std::string& s) {
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= 0xff;  // field separator
  h *= 0x100000001b3ULL;
  return h;
}
uint64_t fnv1a_u64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xff;
    h *= 0x100000001b3ULL;
  }
  return h;
}

bool method_matches(const std::string& pattern, const std::string& method) {
  if (!pattern.empty() && pattern.back() == '*') {
    return method.compare(0, pattern.size() - 1, pattern, 0,
                          pattern.size() - 1) == 0;
  }
  return pattern == method;
}

std::vector<std::string> split_ws(const std::string& s) {
  std::istringstream in(s);
  std::vector<std::string> out;
  std::string w;
  while (in >> w) out.push_back(w);
  return out;
}

}  // namespace

bool ProtocolSpec::in_scope(const std::string& rel_path) const {
  if (scope.empty()) return true;
  for (const std::string& p : scope) {
    if (rel_path.rfind(p, 0) == 0) return true;
  }
  return false;
}

int ProtocolSpec::state_index(const std::string& name) const {
  for (size_t i = 0; i < states.size(); ++i) {
    if (states[i] == name) return static_cast<int>(i);
  }
  return -1;
}

std::vector<ProtocolSpec> parse_protocols(const std::string& text,
                                          std::string* error) {
  std::vector<ProtocolSpec> out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  ProtocolSpec* cur = nullptr;
  auto fail = [&](const std::string& msg) {
    if (error != nullptr) {
      *error = "protocols.txt:" + std::to_string(lineno) + ": " + msg;
    }
    out.clear();
    return out;
  };
  while (std::getline(in, line)) {
    ++lineno;
    size_t b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos) continue;
    if (line[b] == '#') continue;
    size_t e = line.find_last_not_of(" \t\r");
    line = line.substr(b, e - b + 1);
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    std::string rest;
    std::getline(ls, rest);
    size_t rb = rest.find_first_not_of(" \t");
    rest = rb == std::string::npos ? "" : rest.substr(rb);

    if (key == "protocol") {
      if (cur != nullptr) return fail("nested 'protocol' (missing 'end')");
      if (rest.empty()) return fail("protocol needs a rule id");
      out.push_back(ProtocolSpec{});
      cur = &out.back();
      cur->id = split_ws(rest)[0];
      continue;
    }
    if (cur == nullptr) return fail("directive outside a protocol block");
    if (key == "end") {
      if (cur->kind == ProtocolSpec::kTypestate && cur->states.empty()) {
        return fail("protocol '" + cur->id + "' declares no states");
      }
      if (cur->kind == ProtocolSpec::kTypestate && cur->types.empty()) {
        return fail("protocol '" + cur->id + "' declares no tracked types");
      }
      if (cur->kind == ProtocolSpec::kWidth &&
          (cur->types.empty() || cur->reads.empty() || cur->guards.empty())) {
        return fail("width protocol '" + cur->id +
                    "' needs type, guard, and read directives");
      }
      if (cur->kind == ProtocolSpec::kLockset &&
          (cur->functions.empty() || cur->lock_types.empty())) {
        return fail("lockset protocol '" + cur->id +
                    "' needs functions and lock directives");
      }
      cur = nullptr;
      continue;
    }
    if (key == "kind") {
      if (rest == "nesting") {
        cur->kind = ProtocolSpec::kNesting;
      } else if (rest == "typestate") {
        cur->kind = ProtocolSpec::kTypestate;
      } else if (rest == "width") {
        cur->kind = ProtocolSpec::kWidth;
      } else if (rest == "lockset") {
        cur->kind = ProtocolSpec::kLockset;
      } else {
        return fail("unknown kind '" + rest + "'");
      }
    } else if (key == "type") {
      cur->types = split_ws(rest);
    } else if (key == "severity") {
      if (rest != "error" && rest != "warning") {
        return fail("severity must be error|warning");
      }
      cur->severity = rest;
    } else if (key == "summary") {
      cur->summary = rest;
    } else if (key == "hint") {
      cur->hint = rest;
    } else if (key == "scope") {
      cur->scope = split_ws(rest);
    } else if (key == "states") {
      cur->states = split_ws(rest);
    } else if (key == "start") {
      int idx = cur->state_index(rest);
      if (idx < 0) return fail("unknown start state '" + rest + "'");
      cur->start = idx;
    } else if (key == "attr") {
      for (const std::string& a : split_ws(rest)) {
        if (a == "try-suppresses") {
          cur->try_suppresses = true;
        } else if (a == "callers-try-suppresses") {
          cur->callers_try_suppresses = true;
        } else if (a == "no-share-parallel") {
          cur->no_share_parallel = true;
        } else {
          return fail("unknown attr '" + a + "'");
        }
      }
    } else if (key == "fresh-init") {
      cur->fresh_init = split_ws(rest);
    } else if (key == "functions") {
      cur->functions = split_ws(rest);
    } else if (key == "guard") {
      cur->guards = split_ws(rest);
    } else if (key == "read") {
      std::vector<std::string> w = split_ws(rest);
      if (w.size() != 2) return fail("read needs '<method> <bytes|arg>'");
      ReadSpec rs;
      rs.method = w[0];
      if (w[1] == "arg") {
        rs.width = -1;
      } else {
        char* end_ptr = nullptr;
        long v = std::strtol(w[1].c_str(), &end_ptr, 10);
        if (end_ptr == nullptr || *end_ptr != '\0' || v < 0) {
          return fail("read width must be a byte count or 'arg'");
        }
        rs.width = static_cast<int>(v);
      }
      cur->reads.push_back(std::move(rs));
    } else if (key == "pure") {
      cur->pure = split_ws(rest);
    } else if (key == "lock") {
      cur->lock_types = split_ws(rest);
    } else if (key == "atomic") {
      cur->atomic_prefixes = split_ws(rest);
    } else if (key == "on") {
      std::istringstream ts(rest);
      std::string state, method, arrow;
      ts >> state >> method >> arrow;
      ProtocolTransition tr;
      tr.from = cur->state_index(state);
      if (tr.from < 0) return fail("unknown state '" + state + "'");
      tr.method = method;
      if (arrow == "->") {
        std::string to;
        ts >> to;
        tr.to = cur->state_index(to);
        if (tr.to < 0) return fail("unknown target state '" + to + "'");
      } else if (arrow == "!!") {
        tr.is_error = true;
        std::getline(ts, tr.message);
        size_t mb = tr.message.find_first_not_of(" \t");
        tr.message =
            mb == std::string::npos ? "" : tr.message.substr(mb);
        if (tr.message.empty()) return fail("error transition needs a message");
      } else {
        return fail("transition needs '->' or '!!'");
      }
      cur->table.push_back(std::move(tr));
    } else {
      return fail("unknown directive '" + key + "'");
    }
  }
  if (cur != nullptr) {
    ++lineno;
    return fail("missing 'end' for protocol '" + cur->id + "'");
  }
  return out;
}

// ---------------------------------------------------------------------------

TypestateEngine::TypestateEngine(
    std::vector<ProtocolSpec> protocols,
    const std::vector<const AnalyzedFile*>& files,
    const CallGraph* graph)
    : protocols_(std::move(protocols)), files_(files), graph_(graph) {
  const size_t nfns = graph_->functions().size();
  vars_.resize(protocols_.size());
  events_.resize(protocols_.size());
  summaries_.resize(protocols_.size());
  for (size_t p = 0; p < protocols_.size(); ++p) {
    if (protocols_[p].kind != ProtocolSpec::kTypestate) continue;
    vars_[p].resize(nfns);
    events_[p].resize(nfns);
    summaries_[p].resize(nfns);
  }
  util::parallel_for(nfns, [&](size_t fn) {
    const FunctionUnit& u = graph_->functions()[fn];
    const AnalyzedFile& f = *files_[u.file_index];
    for (size_t p = 0; p < protocols_.size(); ++p) {
      const ProtocolSpec& proto = protocols_[p];
      if (proto.kind != ProtocolSpec::kTypestate) continue;
      vars_[p][fn] =
          find_tracked_vars(f, u.def, proto.types, proto.fresh_init);
      if (!vars_[p][fn].empty()) {
        events_[p][fn] = extract_events(f, u.cfg, vars_[p][fn]);
      }
    }
  });
  fn_callers_all_try_.resize(nfns, 0);
  for (size_t fn = 0; fn < nfns; ++fn) {
    fn_callers_all_try_[fn] = graph_->all_callers_in_try(fn) ? 1 : 0;
  }
  compute_summaries();
}

uint64_t TypestateEngine::unknown_bit(size_t proto) const {
  return 1ULL << protocols_[proto].states.size();
}

const ProtocolTransition* TypestateEngine::lookup(
    size_t proto, int state, const std::string& method) const {
  for (const ProtocolTransition& tr : protocols_[proto].table) {
    if (tr.from == state && method_matches(tr.method, method)) return &tr;
  }
  return nullptr;
}

void TypestateEngine::run_flow(size_t proto, size_t fn,
                               const std::vector<TrackedVar>& vars,
                               const std::vector<std::vector<Event>>& events,
                               size_t var, uint64_t entry_mask,
                               uint64_t* exit_mask,
                               std::vector<FlowError>* errors) const {
  const ProtocolSpec& spec = protocols_[proto];
  const Cfg& cfg = graph_->functions()[fn].cfg;
  const size_t nblocks = cfg.blocks.size();
  const uint64_t unknown = unknown_bit(proto);
  const size_t nstates = spec.states.size();

  // Transfer one block's events over a state set. When `collect` is
  // non-null, error transitions append findings.
  auto transfer = [&](uint64_t mask, size_t b,
                      std::vector<FlowError>* collect) -> uint64_t {
    const int try_depth = cfg.blocks[b].try_depth;
    for (const Event& e : events[b]) {
      if (e.var != var) continue;
      if (mask == 0) break;
      switch (e.kind) {
        case Event::kAssign:
          mask = unknown;
          break;
        case Event::kMethod: {
          uint64_t next = mask & unknown;
          for (size_t s = 0; s < nstates; ++s) {
            if ((mask & (1ULL << s)) == 0) continue;
            const ProtocolTransition* tr =
                lookup(proto, static_cast<int>(s), e.method);
            if (tr == nullptr) {
              next |= 1ULL << s;
            } else if (tr->is_error) {
              if (collect != nullptr &&
                  !(spec.try_suppresses && try_depth > 0)) {
                FlowError err;
                err.pos = e.pos;
                err.var = var;
                err.message = "'" + vars[var].name + "' (" + spec.states[s] +
                              "): " + tr->message;
                collect->push_back(std::move(err));
              }
              next |= 1ULL << s;  // stay; later uses report again
            } else {
              next |= 1ULL << static_cast<size_t>(tr->to);
            }
          }
          mask = next;
          break;
        }
        case Event::kPassedTo: {
          std::vector<size_t> cands =
              graph_->resolve(e.callee_terminal, e.callee_qualified);
          if (cands.empty()) {
            mask = unknown;  // external call: anything may happen
            break;
          }
          uint64_t next = mask & unknown;
          bool bail_unknown = false;
          for (size_t cand : cands) {
            const FunctionDef& cd = graph_->functions()[cand].def;
            if (e.arg_index >= cd.params.size()) {
              bail_unknown = true;
              break;
            }
            const ParamInfo& cp = cd.params[e.arg_index];
            bool tracked = !cp.name.empty() &&
                           std::find(spec.types.begin(), spec.types.end(),
                                     cp.type_terminal) != spec.types.end();
            if (!tracked) {
              bail_unknown = true;
              break;
            }
            if (!cp.by_ref) {
              next |= mask & ~unknown;  // callee got a copy
              continue;
            }
            auto sit = summaries_[proto][cand].find(e.arg_index);
            if (sit == summaries_[proto][cand].end()) {
              next |= mask & ~unknown;  // no summary yet (bottom)
              continue;
            }
            const Summary& sum = sit->second;
            for (size_t s = 0; s < nstates; ++s) {
              if ((mask & (1ULL << s)) == 0) continue;
              if (sum.error[s] != 0 && collect != nullptr &&
                  cands.size() == 1 &&
                  !(spec.try_suppresses && try_depth > 0)) {
                FlowError err;
                err.pos = e.pos;
                err.var = var;
                err.message = "'" + vars[var].name + "' (" + spec.states[s] +
                              ") passed to '" + e.callee_terminal +
                              "', where " + sum.error_method[s];
                collect->push_back(std::move(err));
              }
              next |= sum.exit_mask[s];
            }
            if ((mask & unknown) != 0) next |= unknown;
          }
          mask = bail_unknown ? unknown : next;
          break;
        }
      }
    }
    return mask;
  };

  // Predecessor lists once per call.
  std::vector<std::vector<size_t>> preds(nblocks);
  for (size_t b = 0; b < nblocks; ++b) {
    for (size_t s : cfg.blocks[b].succ) preds[s].push_back(b);
  }
  std::vector<uint64_t> out_mask(nblocks, 0);
  bool changed = true;
  int rounds = 0;
  while (changed && rounds++ < 64) {
    changed = false;
    for (size_t b = 0; b < nblocks; ++b) {
      uint64_t in = (b == cfg.entry) ? entry_mask : 0;
      for (size_t p : preds[b]) in |= out_mask[p];
      uint64_t nw = transfer(in, b, nullptr);
      if (nw != out_mask[b]) {
        out_mask[b] = nw;
        changed = true;
      }
    }
  }
  if (exit_mask != nullptr) *exit_mask = out_mask[cfg.exit];
  if (errors != nullptr) {
    std::set<size_t> seen;  // one finding per code position
    for (size_t b = 0; b < nblocks; ++b) {
      uint64_t in = (b == cfg.entry) ? entry_mask : 0;
      for (size_t p : preds[b]) in |= out_mask[p];
      std::vector<FlowError> local;
      transfer(in, b, &local);
      for (FlowError& err : local) {
        if (seen.insert(err.pos).second) errors->push_back(std::move(err));
      }
    }
  }
}

void TypestateEngine::compute_summaries() {
  const size_t nfns = graph_->functions().size();
  // Seed: every tracked reference parameter gets a bottom summary.
  for (size_t p = 0; p < protocols_.size(); ++p) {
    const ProtocolSpec& spec = protocols_[p];
    if (spec.kind != ProtocolSpec::kTypestate) continue;
    const size_t entries = spec.states.size() + 1;  // + Unknown
    for (size_t fn = 0; fn < nfns; ++fn) {
      for (const TrackedVar& v : vars_[p][fn]) {
        if (!v.is_param) continue;
        Summary& sum = summaries_[p][fn][v.param_index];
        sum.exit_mask.assign(entries, 0);
        sum.error.assign(entries, 0);
        sum.error_method.assign(entries, "");
      }
    }
  }
  // Fixpoint: recompute every summary until stable. Masks and error
  // flags only grow, so this terminates.
  for (int round = 0; round < 16; ++round) {
    bool changed = false;
    for (size_t p = 0; p < protocols_.size(); ++p) {
      const ProtocolSpec& spec = protocols_[p];
      if (spec.kind != ProtocolSpec::kTypestate) continue;
      const size_t nstates = spec.states.size();
      for (size_t fn = 0; fn < nfns; ++fn) {
        for (auto& [param_index, sum] : summaries_[p][fn]) {
          size_t var = npos;
          for (size_t v = 0; v < vars_[p][fn].size(); ++v) {
            if (vars_[p][fn][v].is_param &&
                vars_[p][fn][v].param_index == param_index) {
              var = v;
              break;
            }
          }
          if (var == npos) continue;
          for (size_t s = 0; s <= nstates; ++s) {
            uint64_t entry =
                s < nstates ? (1ULL << s) : unknown_bit(p);
            uint64_t exit = 0;
            std::vector<FlowError> errs;
            run_flow(p, fn, vars_[p][fn], events_[p][fn], var, entry, &exit,
                     &errs);
            exit |= entry == unknown_bit(p) ? unknown_bit(p) : 0;
            if (exit != sum.exit_mask[s]) {
              sum.exit_mask[s] = exit;
              changed = true;
            }
            if (!errs.empty() && sum.error[s] == 0) {
              sum.error[s] = 1;
              sum.error_method[s] = errs[0].message;
              changed = true;
            }
          }
        }
      }
    }
    if (!changed) break;
  }
}

std::vector<Finding> TypestateEngine::check_file(size_t file_index) const {
  std::vector<Finding> out;
  const AnalyzedFile& f = *files_[file_index];
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  auto emit = [&](const ProtocolSpec& spec, size_t pos,
                  const std::string& message) {
    Finding fd;
    fd.file = f.rel_path;
    fd.line = tok(pos).line;
    fd.col = tok(pos).col;
    fd.rule = spec.id;
    fd.severity = spec.severity;
    fd.message = message;
    fd.hint = spec.hint;
    out.push_back(std::move(fd));
  };

  for (size_t p = 0; p < protocols_.size(); ++p) {
    const ProtocolSpec& spec = protocols_[p];
    if (spec.kind != ProtocolSpec::kTypestate) continue;
    if (!spec.in_scope(f.rel_path)) continue;
    for (size_t fn : graph_->functions_in(file_index)) {
      const std::vector<TrackedVar>& vars = vars_[p][fn];
      if (vars.empty()) continue;
      if (spec.callers_try_suppresses && fn_callers_all_try_[fn] != 0) {
        // Every known call site wraps this function in a try: the
        // per-record error boundary covers whatever throws inside.
        continue;
      }
      for (size_t v = 0; v < vars.size(); ++v) {
        uint64_t entry;
        if (vars[v].is_param) {
          // Parameter misuse is charged to callers via the summary;
          // reporting it here too would double-count.
          continue;
        }
        entry = vars[v].fresh ? (1ULL << static_cast<size_t>(spec.start))
                              : unknown_bit(p);
        std::vector<FlowError> errs;
        run_flow(p, fn, vars, events_[p][fn], v, entry, nullptr, &errs);
        for (const FlowError& err : errs) {
          emit(spec, err.pos, err.message);
        }
      }
    }
  }

  std::vector<Finding> lex = lexical_checks(file_index);
  out.insert(out.end(), std::make_move_iterator(lex.begin()),
             std::make_move_iterator(lex.end()));
  return out;
}

std::vector<Finding> TypestateEngine::lexical_checks(size_t file_index) const {
  std::vector<Finding> out;
  const AnalyzedFile& f = *files_[file_index];
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  const size_t n = f.code.size();
  auto emit = [&](const ProtocolSpec& spec, size_t pos, std::string message) {
    Finding fd;
    fd.file = f.rel_path;
    fd.line = tok(pos).line;
    fd.col = tok(pos).col;
    fd.rule = spec.id;
    fd.severity = spec.severity;
    fd.message = std::move(message);
    fd.hint = spec.hint;
    out.push_back(std::move(fd));
  };

  // The parallel entry points any of the lexical checks care about.
  std::vector<std::string> fanouts = {"parallel_for", "parallel_map"};

  for (size_t i = 0; i + 1 < n; ++i) {
    if (tok(i).kind != TokenKind::kIdentifier) continue;
    if (std::find(fanouts.begin(), fanouts.end(), tok(i).text) ==
        fanouts.end()) {
      continue;
    }
    LambdaExpr lam = find_lambda_arg(f, i);
    if (lam.lbracket == npos) continue;

    // --- no-share-parallel: tracked vars of the enclosing function
    // captured by reference and touched inside the lambda body.
    for (size_t p = 0; p < protocols_.size(); ++p) {
      const ProtocolSpec& spec = protocols_[p];
      if (spec.kind != ProtocolSpec::kTypestate || !spec.no_share_parallel) {
        continue;
      }
      if (!spec.in_scope(f.rel_path)) continue;
      // Innermost enclosing function definition.
      size_t encl = npos;
      for (size_t fn : graph_->functions_in(file_index)) {
        const FunctionDef& d = graph_->functions()[fn].def;
        if (d.open < i && i < d.close &&
            (encl == npos || d.open > graph_->functions()[encl].def.open)) {
          encl = fn;
        }
      }
      if (encl == npos) continue;
      for (const TrackedVar& v : vars_[p][encl]) {
        // Declared inside the lambda body itself? Then it is per-slot.
        if (!captures_by_ref(f, lam, v.name)) continue;
        bool declared_inside = false;
        for (size_t j = lam.body_open + 1; j < lam.body_close; ++j) {
          if (tok(j).kind == TokenKind::kIdentifier &&
              std::find(spec.types.begin(), spec.types.end(), tok(j).text) !=
                  spec.types.end() &&
              j + 1 < lam.body_close &&
              tok(j + 1).kind == TokenKind::kIdentifier &&
              tok(j + 1).text == v.name) {
            declared_inside = true;
            break;
          }
        }
        if (declared_inside) continue;
        for (size_t j = lam.body_open + 1; j < lam.body_close; ++j) {
          if (tok(j).kind == TokenKind::kIdentifier && tok(j).text == v.name &&
              j + 1 < lam.body_close &&
              (tok(j + 1).is_punct(".") || tok(j + 1).is_punct("->"))) {
            emit(spec, j,
                 "'" + v.name + "' (" + spec.types.front() +
                     ") is captured by reference and used inside a " +
                     tok(i).text +
                     " lambda: every slot mutates the same workspace");
            break;
          }
        }
      }
    }

    // --- kind nesting: an inner fan-out whose [&] lambda touches the
    // outer lambda's loop index.
    for (size_t p = 0; p < protocols_.size(); ++p) {
      const ProtocolSpec& spec = protocols_[p];
      if (spec.kind != ProtocolSpec::kNesting) continue;
      if (!spec.in_scope(f.rel_path)) continue;
      const std::vector<std::string>& fns =
          spec.functions.empty() ? fanouts : spec.functions;
      std::string loop_var = last_param_name(f, lam);
      if (loop_var.empty()) continue;
      for (size_t j = lam.body_open + 1; j < lam.body_close; ++j) {
        if (tok(j).kind != TokenKind::kIdentifier) continue;
        if (std::find(fns.begin(), fns.end(), tok(j).text) == fns.end()) {
          continue;
        }
        LambdaExpr inner = find_lambda_arg(f, j);
        if (inner.lbracket == npos) continue;
        if (!captures_by_ref(f, inner, loop_var)) continue;
        for (size_t k = inner.body_open + 1; k < inner.body_close; ++k) {
          if (tok(k).kind == TokenKind::kIdentifier &&
              tok(k).text == loop_var) {
            emit(spec, k,
                 "nested " + tok(j).text + " lambda captures the outer loop "
                 "index '" + loop_var + "' by reference");
            break;
          }
        }
      }
    }
  }
  return out;
}

uint64_t TypestateEngine::environment_hash() const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const ProtocolSpec& spec : protocols_) {
    h = fnv1a_str(h, spec.id);
    h = fnv1a_str(h, spec.severity);
    for (const std::string& s : spec.states) h = fnv1a_str(h, s);
    for (const std::string& s : spec.types) h = fnv1a_str(h, s);
    for (const std::string& s : spec.scope) h = fnv1a_str(h, s);
    for (const std::string& s : spec.fresh_init) h = fnv1a_str(h, s);
    for (const std::string& s : spec.functions) h = fnv1a_str(h, s);
    for (const std::string& s : spec.guards) h = fnv1a_str(h, s);
    for (const ReadSpec& r : spec.reads) {
      h = fnv1a_str(h, r.method);
      h = fnv1a_u64(h, static_cast<uint64_t>(r.width));
    }
    for (const std::string& s : spec.pure) h = fnv1a_str(h, s);
    for (const std::string& s : spec.lock_types) h = fnv1a_str(h, s);
    for (const std::string& s : spec.atomic_prefixes) h = fnv1a_str(h, s);
    h = fnv1a_u64(h, static_cast<uint64_t>(spec.kind));
    h = fnv1a_u64(h, static_cast<uint64_t>(spec.start));
    h = fnv1a_u64(h, (spec.try_suppresses ? 1u : 0u) |
                         (spec.callers_try_suppresses ? 2u : 0u) |
                         (spec.no_share_parallel ? 4u : 0u));
    for (const ProtocolTransition& tr : spec.table) {
      h = fnv1a_str(h, tr.method);
      h = fnv1a_str(h, tr.message);
      h = fnv1a_u64(h, static_cast<uint64_t>(tr.from));
      h = fnv1a_u64(h, static_cast<uint64_t>(tr.to));
      h = fnv1a_u64(h, tr.is_error ? 1 : 0);
    }
  }
  for (size_t fn = 0; fn < graph_->functions().size(); ++fn) {
    const FunctionUnit& u = graph_->functions()[fn];
    h = fnv1a_str(h, files_[u.file_index]->rel_path);
    h = fnv1a_str(h, u.def.qualified);
    h = fnv1a_u64(h, fn_callers_all_try_[fn]);
    for (size_t p = 0; p < summaries_.size(); ++p) {
      if (summaries_[p].empty()) continue;
      for (const auto& [param_index, sum] : summaries_[p][fn]) {
        h = fnv1a_u64(h, param_index);
        for (size_t s = 0; s < sum.exit_mask.size(); ++s) {
          h = fnv1a_u64(h, sum.exit_mask[s]);
          h = fnv1a_u64(h, sum.error[s]);
          h = fnv1a_str(h, sum.error_method[s]);
        }
      }
    }
  }
  return h;
}

}  // namespace manrs::analyze
