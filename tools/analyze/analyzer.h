// manrs_analyze driver: file loading, lexing, indexing, rule running.
//
// The analyzer makes two passes. Pass 1 (parallel, one task per file
// through util::parallel_for) lexes every file, extracts its includes,
// scans its comment tokens for `// lint-ok: <reason>` waivers, and
// builds the declaration index: variables (locals, members, and
// parameters) whose declared type names unordered_map/unordered_set,
// functions whose declared return type does, and `auto x = f(...)`
// propagation through those functions. Pass 2 builds the flow engine
// (CFGs, call graph, typestate summaries -- see typestate.h) and runs
// every registered rule plus the engine over every file, in parallel,
// then drops findings on waived lines and findings covered by the
// per-rule allowlists (the audited exceptions inherited from
// tools/lint_wire.py). The global sort at the end makes output
// independent of scheduling, which is what lets the incremental cache
// (cache.h) promise byte-identical warm reruns.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.h"
#include "analyze/rule.h"
#include "analyze/token.h"

namespace manrs::analyze {

// Defined in typestate.h (which includes this header via cfg.h; the
// analyzer only holds protocols by value inside a vector, so a forward
// declaration plus an out-of-line destructor breaks the cycle).
struct ProtocolSpec;

/// The include-layering contract, parsed from tools/analyze/layers.txt.
/// Each declared module (a directory under src/) lists the modules it
/// may include; including an undeclared edge is a layer-violation.
struct LayerConfig {
  bool loaded = false;
  std::string source_path;
  // module -> allowed first-party modules (not including itself).
  std::map<std::string, std::set<std::string>> allowed;

  bool is_module(const std::string& name) const {
    return allowed.find(name) != allowed.end();
  }
};

/// Parse a layers.txt. Lines: `module: dep dep ...`; '#' comments.
LayerConfig parse_layers(const std::string& text, std::string path);

/// One `// lint-ok:` comment and the source lines it suppresses
/// findings on. The analyzer marks sites that actually absorbed a
/// finding; the rest are reported as unused-waiver.
struct WaiverSite {
  int line = 0;         // line of the waiver comment itself
  std::set<int> covers; // lines whose findings this comment waives
};

struct AnalyzedFile {
  std::string rel_path;  // posix, relative to the analysis root
  std::string text;      // raw file content (cache keys hash it)
  std::vector<Token> tokens;
  std::vector<size_t> code;  // indexes of code tokens (no comments/directives)
  std::vector<size_t> match;  // per code position: matching ()/[]/{} position
  std::vector<size_t> encl;   // per code position: enclosing '{' code position
  std::vector<IncludeDirective> includes;
  std::set<int> waived_lines;
  std::vector<WaiverSite> waiver_sites;
  // name -> source lines where an unordered_map/unordered_set variable
  // of that name is declared in this file.
  std::map<std::string, std::vector<int>> unordered_vars;
  // Functions declared in this file returning an unordered container
  // (file-local so indexing can run in parallel; merged globally later).
  std::set<std::string> unordered_fn_decls;
};

/// True for a comment that opens with a `lint-ok: <reason>` waiver (a
/// bare "lint-ok:" with no reason waives nothing, and prose that only
/// mentions lint-ok mid-comment is not a waiver).
bool is_waiver_comment(const std::string& text);

/// Lex + index one buffer: code view, waiver lines, bracket match /
/// enclosing-brace tables, declaration scan. The building block of the
/// analyzer's parallel pass 1, exported for unit tests.
AnalyzedFile analyze_text(std::string rel_path, std::string text);

struct ProgramIndex {
  // Functions (by name, any file) declared to return an unordered
  // container -- used to type `auto x = f(...)` and `for (e : f())`.
  std::set<std::string> unordered_fns;
  // rel_path -> file (owned by Analysis below).
  std::map<std::string, const AnalyzedFile*> files;
};

/// Rule-facing view of one file plus the global index.
class FileContext {
 public:
  FileContext(const AnalyzedFile& file, const ProgramIndex& program,
              const LayerConfig& layers)
      : file_(file), program_(program), layers_(layers) {}

  const AnalyzedFile& file() const { return file_; }
  const ProgramIndex& program() const { return program_; }
  const LayerConfig& layers() const { return layers_; }
  const std::string& rel_path() const { return file_.rel_path; }

  /// Code view: tokens with comments and directives removed.
  size_t size() const { return file_.code.size(); }
  const Token& tok(size_t i) const { return file_.tokens[file_.code[i]]; }
  /// Matching bracket for a code position holding ( [ or {; npos if none.
  size_t match(size_t i) const { return file_.match[i]; }
  /// Code position of the nearest enclosing '{'; npos at namespace scope.
  size_t encl(size_t i) const { return file_.encl[i]; }

  static constexpr size_t npos = static_cast<size_t>(-1);

  /// True if `name`, used at `line` in this file, resolves to a variable
  /// declared with an unordered container type -- in this file or in a
  /// first-party header this file includes.
  bool unordered_var_in_scope(const std::string& name, int line) const;

  Finding finding(const Rule& rule, size_t code_pos,
                  std::string message) const;

 private:
  const AnalyzedFile& file_;
  const ProgramIndex& program_;
  const LayerConfig& layers_;
};

struct AnalysisResult {
  std::vector<Finding> findings;  // unwaived, sorted (file, line, col, rule)
  size_t files_scanned = 0;
  size_t waived = 0;
  size_t cache_hits = 0;
  size_t cache_misses = 0;  // files analyzed fresh (== files_scanned
                            // when the cache is disabled)
};

class Analyzer {
 public:
  /// `root`: the repository root all rel paths are computed against.
  /// Loads tools/analyze/layers.txt and tools/analyze/protocols.txt
  /// from it (a malformed protocols file sets protocol_error()).
  explicit Analyzer(std::string root);
  ~Analyzer();  // out-of-line: ProtocolSpec is incomplete here

  /// Load one file (path absolute or root-relative); lexing and
  /// indexing are deferred to run(). Returns false (with a message to
  /// stderr) if unreadable.
  bool add_file(const std::string& path);

  /// Expand a file-or-directory target into add_file calls, skipping
  /// non-C++ files and the skip list (build dirs, fixture corpora).
  /// Returns false if the target does not exist.
  bool add_target(const std::string& target);

  /// Persist per-file results under `dir` and reuse them on rerun when
  /// nothing the file's findings depend on changed. Call before run().
  void enable_cache(std::string dir);

  /// Run every rule and the typestate engine over every loaded file.
  AnalysisResult run();

  const LayerConfig& layers() const { return layers_; }

  /// Non-empty when tools/analyze/protocols.txt failed to parse; the
  /// flow rules are disabled and the caller should treat the scan as a
  /// configuration error.
  const std::string& protocol_error() const { return protocol_error_; }

  /// Static rules plus the loaded protocol rules, catalog order.
  std::vector<CatalogEntry> rule_catalog() const;

 private:
  void finish_index();

  std::string root_;
  LayerConfig layers_;
  std::string layers_text_;
  std::string protocols_text_;
  std::vector<ProtocolSpec> protocols_;
  std::string protocol_error_;
  std::string cache_dir_;
  std::vector<AnalyzedFile> files_;
  ProgramIndex program_;
  bool indexed_ = false;
};

}  // namespace manrs::analyze
