// manrs_analyze driver: file loading, lexing, indexing, rule running.
//
// The analyzer makes two passes. Pass 1 lexes every file, extracts its
// includes, scans its comment tokens for `// lint-ok: <reason>` waivers,
// and builds the declaration index: variables (locals, members, and
// parameters) whose declared type names unordered_map/unordered_set,
// functions whose declared return type does, and `auto x = f(...)`
// propagation through those functions. Pass 2 runs every registered
// rule over every file, then drops findings on waived lines and
// findings covered by the per-rule allowlists (the audited exceptions
// inherited from tools/lint_wire.py).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/lexer.h"
#include "analyze/rule.h"
#include "analyze/token.h"

namespace manrs::analyze {

/// The include-layering contract, parsed from tools/analyze/layers.txt.
/// Each declared module (a directory under src/) lists the modules it
/// may include; including an undeclared edge is a layer-violation.
struct LayerConfig {
  bool loaded = false;
  std::string source_path;
  // module -> allowed first-party modules (not including itself).
  std::map<std::string, std::set<std::string>> allowed;

  bool is_module(const std::string& name) const {
    return allowed.find(name) != allowed.end();
  }
};

/// Parse a layers.txt. Lines: `module: dep dep ...`; '#' comments.
LayerConfig parse_layers(const std::string& text, std::string path);

struct AnalyzedFile {
  std::string rel_path;  // posix, relative to the analysis root
  std::vector<Token> tokens;
  std::vector<size_t> code;  // indexes of code tokens (no comments/directives)
  std::vector<size_t> match;  // per code position: matching ()/[]/{} position
  std::vector<size_t> encl;   // per code position: enclosing '{' code position
  std::vector<IncludeDirective> includes;
  std::set<int> waived_lines;
  // name -> source lines where an unordered_map/unordered_set variable
  // of that name is declared in this file.
  std::map<std::string, std::vector<int>> unordered_vars;
};

struct ProgramIndex {
  // Functions (by name, any file) declared to return an unordered
  // container -- used to type `auto x = f(...)` and `for (e : f())`.
  std::set<std::string> unordered_fns;
  // rel_path -> file (owned by Analysis below).
  std::map<std::string, const AnalyzedFile*> files;
};

/// Rule-facing view of one file plus the global index.
class FileContext {
 public:
  FileContext(const AnalyzedFile& file, const ProgramIndex& program,
              const LayerConfig& layers)
      : file_(file), program_(program), layers_(layers) {}

  const AnalyzedFile& file() const { return file_; }
  const ProgramIndex& program() const { return program_; }
  const LayerConfig& layers() const { return layers_; }
  const std::string& rel_path() const { return file_.rel_path; }

  /// Code view: tokens with comments and directives removed.
  size_t size() const { return file_.code.size(); }
  const Token& tok(size_t i) const { return file_.tokens[file_.code[i]]; }
  /// Matching bracket for a code position holding ( [ or {; npos if none.
  size_t match(size_t i) const { return file_.match[i]; }
  /// Code position of the nearest enclosing '{'; npos at namespace scope.
  size_t encl(size_t i) const { return file_.encl[i]; }

  static constexpr size_t npos = static_cast<size_t>(-1);

  /// True if `name`, used at `line` in this file, resolves to a variable
  /// declared with an unordered container type -- in this file or in a
  /// first-party header this file includes.
  bool unordered_var_in_scope(const std::string& name, int line) const;

  Finding finding(const Rule& rule, size_t code_pos,
                  std::string message) const;

 private:
  const AnalyzedFile& file_;
  const ProgramIndex& program_;
  const LayerConfig& layers_;
};

struct AnalysisResult {
  std::vector<Finding> findings;  // unwaived, sorted (file, line, col, rule)
  size_t files_scanned = 0;
  size_t waived = 0;
};

class Analyzer {
 public:
  /// `root`: the repository root all rel paths are computed against.
  explicit Analyzer(std::string root);

  /// Load + lex one file (path absolute or root-relative). Returns false
  /// (with a message to stderr) if unreadable.
  bool add_file(const std::string& path);

  /// Expand a file-or-directory target into add_file calls, skipping
  /// non-C++ files and the skip list (build dirs, fixture corpora).
  /// Returns false if the target does not exist.
  bool add_target(const std::string& target);

  /// Run every rule over every loaded file.
  AnalysisResult run();

  const LayerConfig& layers() const { return layers_; }

 private:
  void index_file(AnalyzedFile& file);
  void finish_index();

  std::string root_;
  LayerConfig layers_;
  std::vector<AnalyzedFile> files_;
  ProgramIndex program_;
  bool indexed_ = false;
};

}  // namespace manrs::analyze
