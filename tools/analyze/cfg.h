// Per-function control-flow graphs recovered from the token stream.
//
// find_functions() walks a file's code view and locates function
// definitions: a '{' whose backward context is a parameter list
// (walking over cv/ref qualifiers, noexcept(...), trailing return
// types, and constructor member-init lists), with the qualified name
// chain ("A::B::name") read off the tokens before the '('. Lambdas,
// destructors, and operator overloads are deliberately skipped -- the
// typestate pass only needs named functions it can resolve calls to.
//
// build_cfg() lowers one function body to a small branching IR: basic
// blocks holding ordered code-position ranges, split on
// if/else/for/while/do/switch/try/return/throw/break/continue. Each
// block records its lexical try depth so rules can treat exception
// boundaries as guards. Statements are ranges, not expressions: a
// lambda body inside a statement stays linear inside its block, which
// is the right approximation for the event-sequence analysis built on
// top (events inside the lambda are seen in lexical order).
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analyze/analyzer.h"

namespace manrs::analyze {

struct ParamInfo {
  std::string name;           // "" if unnamed
  std::string type_terminal;  // identifier right before the name, "" unknown
  bool by_ref = false;        // declared & / && / *
};

struct FunctionDef {
  std::string name;       // terminal identifier ("next")
  std::string qualified;  // as spelled at the definition ("TableDumpReader::next")
  int line = 0;
  size_t lparen = 0;  // code pos of the parameter list '('
  size_t open = 0;    // code pos of the body '{'
  size_t close = 0;   // code pos of the matching '}'
  std::vector<ParamInfo> params;
};

/// Half-open [begin, end) range of code positions.
using CodeRange = std::pair<size_t, size_t>;

struct BasicBlock {
  std::vector<CodeRange> ranges;  // code executed in this block, in order
  std::vector<size_t> succ;       // successor block ids
  int try_depth = 0;              // > 0: lexically inside a try block
};

struct Cfg {
  std::vector<BasicBlock> blocks;
  size_t entry = 0;
  size_t exit = 0;
};

/// All named function definitions in `file`, in code order.
std::vector<FunctionDef> find_functions(const AnalyzedFile& file);

/// Lower `fn`'s body (open..close) to a CFG. Never fails: unparseable
/// constructs degrade to linear ranges.
Cfg build_cfg(const AnalyzedFile& file, const FunctionDef& fn);

/// A lambda expression located in the code view. Shared by the lexical
/// typestate checks and the lockset analysis.
struct LambdaExpr {
  size_t lbracket = FileContext::npos;   // '['
  size_t cap_close = FileContext::npos;  // matching ']'
  size_t body_open = FileContext::npos;  // '{'
  size_t body_close = FileContext::npos; // matching '}'
  size_t params_open = FileContext::npos;   // '(' of the parameter list
  size_t params_close = FileContext::npos;
};

/// Locate the lambda argument of a call whose name token is at `call`
/// (jumping an explicit template argument list). Returns
/// lbracket == npos when no lambda literal is found.
LambdaExpr find_lambda_arg(const AnalyzedFile& f, size_t call);

/// True when the capture list takes `name` by reference: a bare '&'
/// default not overridden by a by-value mention of `name`, or an
/// explicit "&name".
bool captures_by_ref(const AnalyzedFile& f, const LambdaExpr& lam,
                     const std::string& name);

/// Name of the last parameter of a lambda ("size_t i" -> "i").
std::string last_param_name(const AnalyzedFile& f, const LambdaExpr& lam);

}  // namespace manrs::analyze
