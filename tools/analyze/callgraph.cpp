#include "analyze/callgraph.h"

#include <set>

#include "util/parallel.h"

namespace manrs::analyze {

namespace {

/// Identifiers that look like calls in "name (" position but are not.
const std::set<std::string> kNotACall = {
    "if",      "for",     "while",    "switch", "catch",    "return",
    "sizeof",  "alignof", "decltype", "new",    "delete",   "throw",
    "typeid",  "static_assert", "alignas", "noexcept", "assert",
    "defined", "co_await", "co_return", "requires"};

}  // namespace

CallGraph::CallGraph(const std::vector<const AnalyzedFile*>& files,
                     std::vector<std::vector<FunctionDef>> defs,
                     std::vector<std::vector<Cfg>> cfgs) {
  fns_by_file_.resize(files.size());
  for (size_t fi = 0; fi < files.size(); ++fi) {
    for (size_t k = 0; k < defs[fi].size(); ++k) {
      size_t id = fns_.size();
      fns_.push_back(FunctionUnit{fi, std::move(defs[fi][k]),
                                  std::move(cfgs[fi][k])});
      by_name_[fns_[id].def.name].push_back(id);
      by_qualified_[fns_[id].def.qualified].push_back(id);
      fns_by_file_[fi].push_back(id);
    }
  }

  // Call sites: scan each function's CFG block ranges for "name (".
  for (size_t fn = 0; fn < fns_.size(); ++fn) {
    const FunctionUnit& u = fns_[fn];
    const AnalyzedFile& f = *files[u.file_index];
    auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
    for (size_t b = 0; b < u.cfg.blocks.size(); ++b) {
      const BasicBlock& block = u.cfg.blocks[b];
      for (const CodeRange& r : block.ranges) {
        for (size_t i = r.first; i + 1 < r.second; ++i) {
          if (tok(i).kind != TokenKind::kIdentifier) continue;
          if (!tok(i + 1).is_punct("(")) continue;
          if (kNotACall.count(tok(i).text) != 0) continue;
          CallSite site;
          site.file_index = u.file_index;
          site.caller = fn;
          site.terminal = tok(i).text;
          site.pos = i;
          // Lexical try detection: walk the enclosing-brace chain.
          // (The CFG's try_depth misses tries inside lambda bodies,
          // which parse as linear ranges -- the brace chain does not.)
          site.in_try = block.try_depth > 0;
          for (size_t b = f.encl[i]; b != static_cast<size_t>(-1) && !site.in_try;
               b = f.encl[b]) {
            if (b >= 1 && tok(b - 1).is_ident("try")) site.in_try = true;
            if (b <= u.def.open) break;
          }
          // Walk the qualification chain leftward; note member calls.
          size_t q = i;
          std::vector<std::string> parts = {tok(i).text};
          while (q >= 2 && tok(q - 1).is_punct("::") &&
                 tok(q - 2).kind == TokenKind::kIdentifier) {
            parts.push_back(tok(q - 2).text);
            q -= 2;
          }
          if (q >= 1 &&
              (tok(q - 1).is_punct(".") || tok(q - 1).is_punct("->"))) {
            site.is_member = true;
          }
          // A declaration "Type name(" has an identifier right before
          // the (possibly qualified) name -- not a call. ("return f(",
          // "= f(", "(f(" all have punctuation there.)
          if (!site.is_member && q >= 1 &&
              tok(q - 1).kind == TokenKind::kIdentifier &&
              kNotACall.count(tok(q - 1).text) == 0) {
            continue;
          }
          if (parts.size() > 1) {
            for (size_t k = parts.size(); k-- > 0;) {
              if (!site.qualified.empty()) site.qualified += "::";
              site.qualified += parts[k];
            }
          }
          sites_.push_back(std::move(site));
        }
      }
    }
  }

  // Caller lists per definition.
  for (size_t s = 0; s < sites_.size(); ++s) {
    for (size_t fn : resolve(sites_[s].terminal, sites_[s].qualified)) {
      callers_[fn].push_back(s);
    }
  }
}

const std::vector<size_t>& CallGraph::functions_in(size_t file_index) const {
  if (file_index >= fns_by_file_.size()) return empty_;
  return fns_by_file_[file_index];
}

std::vector<size_t> CallGraph::resolve(const std::string& terminal,
                                       const std::string& qualified) const {
  if (!qualified.empty()) {
    auto it = by_qualified_.find(qualified);
    if (it != by_qualified_.end()) return it->second;
    // Suffix match: "TableDumpReader::next" at the site vs
    // "mrt::TableDumpReader::next"-style definitions do not occur (the
    // definition spelling is what the file wrote), but the reverse
    // does: a fully qualified call to a bare-spelled definition. Fall
    // through to the terminal name.
  }
  auto it = by_name_.find(terminal);
  if (it == by_name_.end()) return {};
  if (qualified.empty()) return it->second;
  // Qualified call, no exact definition spelling: keep candidates whose
  // definition spelling ends with the call's qualification or vice
  // versa (any-path fallback).
  std::vector<size_t> out;
  for (size_t fn : it->second) {
    const std::string& dq = fns_[fn].def.qualified;
    auto ends_with = [](const std::string& a, const std::string& b) {
      return a.size() >= b.size() &&
             a.compare(a.size() - b.size(), b.size(), b) == 0;
    };
    if (ends_with(dq, qualified) || ends_with(qualified, dq)) {
      out.push_back(fn);
    }
  }
  if (out.empty()) return it->second;
  return out;
}

const std::vector<size_t>& CallGraph::callers_of(size_t fn) const {
  auto it = callers_.find(fn);
  if (it == callers_.end()) return empty_;
  return it->second;
}

bool CallGraph::all_callers_in_try(size_t fn) const {
  const std::vector<size_t>& cs = callers_of(fn);
  if (cs.empty()) return false;
  for (size_t s : cs) {
    if (!sites_[s].in_try) return false;
  }
  return true;
}

CallGraph build_call_graph(const std::vector<const AnalyzedFile*>& files) {
  std::vector<std::vector<FunctionDef>> defs(files.size());
  std::vector<std::vector<Cfg>> cfgs(files.size());
  util::parallel_for(files.size(), [&](size_t i) {
    defs[i] = find_functions(*files[i]);
    cfgs[i].reserve(defs[i].size());
    for (const FunctionDef& fn : defs[i]) {
      cfgs[i].push_back(build_cfg(*files[i], fn));
    }
  });
  return CallGraph(files, std::move(defs), std::move(cfgs));
}

}  // namespace manrs::analyze
