#include "analyze/lexer.h"

#include <array>
#include <cctype>

namespace manrs::analyze {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool ident_cont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }
bool alnum(char c) { return std::isalnum(static_cast<unsigned char>(c)); }

/// Multi-character punctuators, longest first within each family. The
/// lexer tries 3-char, then 2-char, then falls back to a single char.
constexpr std::array<std::string_view, 5> kPunct3 = {
    "<<=", ">>=", "...", "->*", "<=>"};
constexpr std::array<std::string_view, 19> kPunct2 = {
    "::", "->", "++", "--", "+=", "-=", "*=", "/=", "%=", "&=",
    "|=", "^=", "==", "!=", "<=", ">=", "&&", "||", "##"};

/// Character scanner over the raw source text. `advance()` moves one
/// logical character: line splices (backslash followed by a newline,
/// optionally with a carriage return) are consumed transparently and
/// counted as line breaks, so token spellings come out spliced while
/// line numbers stay physical. Raw string bodies bypass the splice skip
/// via `advance_raw()`.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) { skip_splices(); }

  bool done() const { return pos_ >= text_.size(); }
  char cur() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  /// Logical lookahead: the character `ahead` logical positions past the
  /// current one, skipping splices in between.
  char peek(size_t ahead) const {
    size_t i = pos_;
    for (size_t k = 0; k < ahead && i < text_.size(); ++k) {
      i = splice_end(i + 1);
    }
    return i < text_.size() ? text_[i] : '\0';
  }

  int line() const { return line_; }
  int col() const { return col_; }

  /// Consume one logical character (then skip any splices).
  void advance() {
    advance_raw();
    skip_splices();
  }

  /// Consume one physical character, no splice processing (raw strings).
  void advance_raw() {
    if (pos_ >= text_.size()) return;
    if (text_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

 private:
  /// If a splice sequence starts at `i`, the index just past it (and past
  /// any chained splices); otherwise `i`.
  size_t splice_end(size_t i) const {
    while (i + 1 < text_.size() && text_[i] == '\\') {
      if (text_[i + 1] == '\n') {
        i += 2;
      } else if (text_[i + 1] == '\r' && i + 2 < text_.size() &&
                 text_[i + 2] == '\n') {
        i += 3;
      } else {
        break;
      }
    }
    return i;
  }

  void skip_splices() {
    while (pos_ + 1 < text_.size() && text_[pos_] == '\\') {
      if (text_[pos_ + 1] == '\n') {
        pos_ += 2;
      } else if (text_[pos_ + 1] == '\r' && pos_ + 2 < text_.size() &&
                 text_[pos_ + 2] == '\n') {
        pos_ += 3;
      } else {
        break;
      }
      ++line_;
      col_ = 1;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : c_(text) {}

  std::vector<Token> run() {
    std::vector<Token> out;
    bool line_start = true;  // only whitespace seen since the last newline
    while (!c_.done()) {
      char ch = c_.cur();
      if (ch == '\n') {
        line_start = true;
        c_.advance();
        continue;
      }
      if (ch == ' ' || ch == '\t' || ch == '\r' || ch == '\v' || ch == '\f') {
        c_.advance();
        continue;
      }
      if (ch == '/' && c_.peek(1) == '/') {
        out.push_back(line_comment());
        continue;
      }
      if (ch == '/' && c_.peek(1) == '*') {
        out.push_back(block_comment());
        continue;
      }
      if (ch == '#' && line_start) {
        out.push_back(directive());
        continue;
      }
      line_start = false;
      if (ident_start(ch)) {
        out.push_back(identifier_or_literal());
        continue;
      }
      if (digit(ch) || (ch == '.' && digit(c_.peek(1)))) {
        out.push_back(number());
        continue;
      }
      if (ch == '"') {
        out.push_back(string_literal(""));
        continue;
      }
      if (ch == '\'') {
        out.push_back(char_literal(""));
        continue;
      }
      out.push_back(punct());
    }
    Token eof;
    eof.kind = TokenKind::kEndOfFile;
    eof.line = c_.line();
    eof.end_line = c_.line();
    eof.col = c_.col();
    out.push_back(eof);
    return out;
  }

 private:
  Token start(TokenKind kind) const {
    Token t;
    t.kind = kind;
    t.line = c_.line();
    t.col = c_.col();
    return t;
  }

  void finish(Token& t) const { t.end_line = c_.line(); }

  void take(Token& t) {
    t.text.push_back(c_.cur());
    t.end_line = c_.line();
    c_.advance();
  }

  void take_raw(Token& t) {
    t.text.push_back(c_.cur());
    t.end_line = c_.line();
    c_.advance_raw();
  }

  Token line_comment() {
    Token t = start(TokenKind::kComment);
    // Splices inside the comment are consumed by advance(), so a spliced
    // // comment swallows the next physical line exactly as in phase 2.
    while (!c_.done() && c_.cur() != '\n') take(t);
    return t;
  }

  Token block_comment() {
    Token t = start(TokenKind::kComment);
    take(t);  // '/'
    take(t);  // '*'
    while (!c_.done()) {
      if (c_.cur() == '*' && c_.peek(1) == '/') {
        take(t);
        take(t);
        break;
      }
      take(t);
    }
    return t;
  }

  Token directive() {
    Token t = start(TokenKind::kDirective);
    // Up to the logical end of line; a trailing // comment is left for
    // the normal comment path so waivers on include lines stay visible.
    while (!c_.done() && c_.cur() != '\n') {
      if (c_.cur() == '/' && c_.peek(1) == '/') break;
      if (c_.cur() == '/' && c_.peek(1) == '*') {
        // Swallow an embedded block comment; it cannot carry a waiver.
        c_.advance();
        c_.advance();
        while (!c_.done() && !(c_.cur() == '*' && c_.peek(1) == '/')) {
          c_.advance();
        }
        if (!c_.done()) {
          c_.advance();
          c_.advance();
        }
        t.text.push_back(' ');
        t.end_line = c_.line();
        continue;
      }
      take(t);
    }
    return t;
  }

  Token identifier_or_literal() {
    Token t = start(TokenKind::kIdentifier);
    while (!c_.done() && ident_cont(c_.cur())) take(t);
    // Encoding prefixes glue onto an immediately following literal.
    if (c_.cur() == '"') {
      if (t.text == "R" || t.text == "u8R" || t.text == "uR" ||
          t.text == "UR" || t.text == "LR") {
        return raw_string(std::move(t));
      }
      if (t.text == "u8" || t.text == "u" || t.text == "U" || t.text == "L") {
        return string_literal_into(std::move(t));
      }
    }
    if (c_.cur() == '\'' &&
        (t.text == "u8" || t.text == "u" || t.text == "U" || t.text == "L")) {
      return char_literal_into(std::move(t));
    }
    return t;
  }

  Token number() {
    Token t = start(TokenKind::kNumber);
    // pp-number: digits, identifier chars, '.', exponent signs, and
    // digit separators (a ' followed by an alphanumeric character).
    while (!c_.done()) {
      char ch = c_.cur();
      if (alnum(ch) || ch == '_' || ch == '.') {
        bool exponent = (ch == 'e' || ch == 'E' || ch == 'p' || ch == 'P');
        take(t);
        if (exponent && (c_.cur() == '+' || c_.cur() == '-')) take(t);
        continue;
      }
      if (ch == '\'' && alnum(c_.peek(1))) {
        take(t);
        continue;
      }
      break;
    }
    return t;
  }

  Token string_literal(std::string_view prefix) {
    Token t = start(TokenKind::kString);
    t.text = prefix;
    return string_literal_into(std::move(t));
  }

  Token string_literal_into(Token t) {
    t.kind = TokenKind::kString;
    take(t);  // opening quote
    while (!c_.done() && c_.cur() != '\n') {
      if (c_.cur() == '\\') {
        take(t);
        if (!c_.done()) take(t);
        continue;
      }
      if (c_.cur() == '"') {
        take(t);
        break;
      }
      take(t);
    }
    return t;
  }

  Token char_literal(std::string_view prefix) {
    Token t = start(TokenKind::kCharLit);
    t.text = prefix;
    return char_literal_into(std::move(t));
  }

  Token char_literal_into(Token t) {
    t.kind = TokenKind::kCharLit;
    take(t);  // opening quote
    while (!c_.done() && c_.cur() != '\n') {
      if (c_.cur() == '\\') {
        take(t);
        if (!c_.done()) take(t);
        continue;
      }
      if (c_.cur() == '\'') {
        take(t);
        break;
      }
      take(t);
    }
    return t;
  }

  Token raw_string(Token t) {
    t.kind = TokenKind::kString;
    take_raw(t);  // opening quote -- from here on, splices are inert
    std::string delim;
    while (!c_.done() && c_.cur() != '(' && c_.cur() != '\n' &&
           delim.size() < 16) {
      delim.push_back(c_.cur());
      take_raw(t);
    }
    if (c_.cur() != '(') return t;  // malformed; degrade gracefully
    take_raw(t);
    const std::string closer = ")" + delim + "\"";
    std::string window;
    while (!c_.done()) {
      window.push_back(c_.cur());
      if (window.size() > closer.size()) window.erase(window.begin());
      take_raw(t);
      if (window == closer) break;
    }
    return t;
  }

  Token punct() {
    Token t = start(TokenKind::kPunct);
    std::array<char, 3> look = {c_.cur(), c_.peek(1), c_.peek(2)};
    for (std::string_view p : kPunct3) {
      if (p[0] == look[0] && p[1] == look[1] && p[2] == look[2]) {
        take(t);
        take(t);
        take(t);
        return t;
      }
    }
    for (std::string_view p : kPunct2) {
      if (p[0] == look[0] && p[1] == look[1]) {
        take(t);
        take(t);
        return t;
      }
    }
    take(t);
    return t;
  }

  Cursor c_;
};

}  // namespace

std::vector<Token> lex(std::string_view text) { return Lexer(text).run(); }

std::vector<IncludeDirective> extract_includes(
    const std::vector<Token>& tokens) {
  std::vector<IncludeDirective> out;
  for (const Token& t : tokens) {
    if (t.kind != TokenKind::kDirective) continue;
    // Directive text looks like: #  include  "path"  or  <path>
    size_t i = t.text.find('#');
    if (i == std::string::npos) continue;
    ++i;
    while (i < t.text.size() &&
           std::isspace(static_cast<unsigned char>(t.text[i]))) {
      ++i;
    }
    if (t.text.compare(i, 7, "include") != 0) continue;
    i += 7;
    while (i < t.text.size() &&
           std::isspace(static_cast<unsigned char>(t.text[i]))) {
      ++i;
    }
    if (i >= t.text.size()) continue;
    char open = t.text[i];
    char close = open == '<' ? '>' : (open == '"' ? '"' : '\0');
    if (close == '\0') continue;
    size_t end = t.text.find(close, i + 1);
    if (end == std::string::npos) continue;
    IncludeDirective inc;
    inc.path = t.text.substr(i + 1, end - i - 1);
    inc.angled = open == '<';
    inc.line = t.line;
    out.push_back(std::move(inc));
  }
  return out;
}

}  // namespace manrs::analyze
