// The nine rules ported from the tools/lint_wire.py regex corpus onto
// the token stream. Porting buys three things the regexes could not do:
// banned names inside string literals and comments are invisible, the
// raw-thread rule distinguishes spawning a thread from naming
// std::thread::hardware_concurrency, and member calls (obj.sprintf)
// never collide with the C library functions being banned.
#include <initializer_list>
#include <set>
#include <string>

#include "analyze/analyzer.h"
#include "analyze/rule.h"

namespace manrs::analyze {

namespace {

/// True when the code token at `i` is a free-function use: not reached
/// through `.` `->` or `::`.
bool free_call(const FileContext& ctx, size_t i) {
  if (i == 0) return true;
  const Token& prev = ctx.tok(i - 1);
  return !(prev.is_punct(".") || prev.is_punct("->") || prev.is_punct("::"));
}

bool next_is(const FileContext& ctx, size_t i, const char* text) {
  return i + 1 < ctx.size() && ctx.tok(i + 1).is(text);
}

/// True when tokens [i, i+2] spell `std :: name`.
bool std_qualified(const FileContext& ctx, size_t i) {
  return i >= 2 && ctx.tok(i - 2).is_ident("std") &&
         ctx.tok(i - 1).is_punct("::");
}

class ReinterpretCastRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "reinterpret-cast", "error",
        "aliasing/alignment UB on input buffers; the audited byte<->char "
        "bridge in src/util/bytes.cpp is the only sanctioned site",
        "use ByteCursor / util::read_exact / util::as_chars instead"};
    return kInfo;
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i < ctx.size(); ++i) {
      if (ctx.tok(i).is_ident("reinterpret_cast")) {
        out.push_back(ctx.finding(*this, i, "reinterpret_cast in first-party "
                                            "code"));
      }
    }
  }
};

class UncheckedMemcpyRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "unchecked-memcpy", "error",
        "memcpy in parse paths copies with a length derived from network "
        "data; the cursor API bounds-checks first",
        "use ByteCursor::bytes() / ByteBuf::bytes() in parse paths"};
    return kInfo;
  }
  bool applies_to(const std::string& rel) const override {
    return in_parse_dirs(rel);
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i < ctx.size(); ++i) {
      if (!ctx.tok(i).is_ident("memcpy") || !next_is(ctx, i, "(")) continue;
      if (!free_call(ctx, i) && !std_qualified(ctx, i)) continue;
      out.push_back(ctx.finding(*this, i, "memcpy in a wire-parse path"));
    }
  }
};

class ThrowingStrtoxRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "throwing-strtox", "error",
        "std::sto* throws on malformed input and silently accepts trailing "
        "junk",
        "use util::parse_uint / parse_int / parse_double"};
    return kInfo;
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    static const std::set<std::string> kNames = {
        "stoi", "stol", "stoll", "stoul", "stoull", "stof", "stod", "stold"};
    for (size_t i = 0; i < ctx.size(); ++i) {
      const Token& t = ctx.tok(i);
      if (t.kind != TokenKind::kIdentifier || kNames.count(t.text) == 0)
        continue;
      if (!std_qualified(ctx, i)) continue;
      out.push_back(ctx.finding(*this, i, "std::" + t.text + " call"));
    }
  }
};

class LocaleAtoxRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "locale-atox", "error",
        "atoi/atol/atof: undefined behaviour on out-of-range input, no "
        "error reporting at all",
        "use util::parse_uint / parse_int / parse_double"};
    return kInfo;
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    static const std::set<std::string> kNames = {"atoi", "atol", "atoll",
                                                 "atof"};
    for (size_t i = 0; i < ctx.size(); ++i) {
      const Token& t = ctx.tok(i);
      if (t.kind != TokenKind::kIdentifier || kNames.count(t.text) == 0)
        continue;
      if (!next_is(ctx, i, "(")) continue;
      if (!free_call(ctx, i) && !std_qualified(ctx, i)) continue;
      out.push_back(ctx.finding(*this, i, t.text + " call"));
    }
  }
};

class UnboundedCopyRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "unbounded-copy", "error",
        "strcpy/strcat/sprintf/gets write without a length bound",
        "use bounded/typed formatting (snprintf, std::string)"};
    return kInfo;
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    static const std::set<std::string> kNames = {"strcpy", "strcat", "sprintf",
                                                 "gets"};
    for (size_t i = 0; i < ctx.size(); ++i) {
      const Token& t = ctx.tok(i);
      if (t.kind != TokenKind::kIdentifier || kNames.count(t.text) == 0)
        continue;
      if (!next_is(ctx, i, "(")) continue;
      if (!free_call(ctx, i) && !std_qualified(ctx, i)) continue;
      out.push_back(ctx.finding(*this, i, t.text + " call"));
    }
  }
};

class UnionPunningRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "union-punning", "error",
        "type punning through union member writes in parse code "
        "(heuristic: any union defined in a parse dir)",
        "decode through ByteCursor typed reads, not unions"};
    return kInfo;
  }
  bool applies_to(const std::string& rel) const override {
    return in_parse_dirs(rel);
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i < ctx.size(); ++i) {
      if (!ctx.tok(i).is_ident("union")) continue;
      // A definition: `union {` or `union Name {`.
      for (size_t j = i + 1; j < ctx.size() && j <= i + 3; ++j) {
        if (ctx.tok(j).is_punct("{")) {
          out.push_back(
              ctx.finding(*this, i, "union definition in a wire-parse path"));
          break;
        }
        if (ctx.tok(j).kind != TokenKind::kIdentifier) break;
      }
    }
  }
};

class RawThreadRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "raw-thread", "error",
        "all concurrency flows through util::parallel_for so the "
        "determinism contract and the TSan matrix cover every parallel "
        "path; raw std::thread/jthread/async bypass both",
        "use util::parallel_for / util::ThreadPool (src/util/parallel.h)"};
    return kInfo;
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i < ctx.size(); ++i) {
      const Token& t = ctx.tok(i);
      if (t.kind != TokenKind::kIdentifier ||
          (t.text != "thread" && t.text != "jthread" && t.text != "async")) {
        continue;
      }
      if (!std_qualified(ctx, i)) continue;
      // std::thread::id / std::thread::hardware_concurrency are queries,
      // not thread creation; only a declarator or call spawns.
      if (next_is(ctx, i, "::")) continue;
      out.push_back(ctx.finding(*this, i, "raw std::" + t.text + " use"));
    }
  }
};

class RibMapRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "rib-map", "error",
        "a prefix-keyed tree map reintroduces the allocation- and "
        "cache-miss-heavy pattern the flat sorted Rib replaced "
        "(docs/performance.md)",
        "use the flat sorted bgp::Rib / sort-then-scan over a flat vector"};
    return kInfo;
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i < ctx.size(); ++i) {
      if (!ctx.tok(i).is_ident("map") || !std_qualified(ctx, i)) continue;
      if (!next_is(ctx, i, "<")) continue;
      // First template argument: net::Prefix or bgp::PrefixOrigin,
      // optionally const-qualified.
      size_t j = i + 2;
      while (j < ctx.size() && ctx.tok(j).is_ident("const")) ++j;
      if (j + 2 >= ctx.size()) continue;
      bool prefix_key =
          (ctx.tok(j).is_ident("net") && ctx.tok(j + 1).is_punct("::") &&
           ctx.tok(j + 2).is_ident("Prefix")) ||
          (ctx.tok(j).is_ident("bgp") && ctx.tok(j + 1).is_punct("::") &&
           ctx.tok(j + 2).is_ident("PrefixOrigin"));
      if (!prefix_key) continue;
      out.push_back(ctx.finding(
          *this, i, "std::map keyed by " + ctx.tok(j).text +
                        "::" + ctx.tok(j + 2).text + " outside src/bgp/rib.*"));
    }
  }
};

class StdHashRule final : public Rule {
 public:
  const RuleInfo& info() const override {
    static const RuleInfo kInfo = {
        "std-hash", "error",
        "std::hash is stdlib-specific; a hash folded into output bytes "
        "silently breaks the bytes-depend-only-on-the-seed contract (the "
        "filter_variant bug)",
        "output-facing hashes use util::fnv1a_* (src/util/det_hash.h); "
        "container hashers go through the type's std::hash specialization "
        "implicitly"};
    return kInfo;
  }
  bool applies_to(const std::string& rel) const override {
    return path_starts_with(rel, {"src/"});
  }
  void check(const FileContext& ctx, std::vector<Finding>& out) const override {
    for (size_t i = 0; i < ctx.size(); ++i) {
      if (!ctx.tok(i).is_ident("hash") || !std_qualified(ctx, i)) continue;
      if (!next_is(ctx, i, "<")) continue;
      out.push_back(ctx.finding(*this, i, "std::hash named in src/"));
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> make_wire_rules();
std::vector<std::unique_ptr<Rule>> make_contract_rules();

std::vector<std::unique_ptr<Rule>> make_wire_rules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<ReinterpretCastRule>());
  rules.push_back(std::make_unique<UncheckedMemcpyRule>());
  rules.push_back(std::make_unique<ThrowingStrtoxRule>());
  rules.push_back(std::make_unique<LocaleAtoxRule>());
  rules.push_back(std::make_unique<UnboundedCopyRule>());
  rules.push_back(std::make_unique<UnionPunningRule>());
  rules.push_back(std::make_unique<RawThreadRule>());
  rules.push_back(std::make_unique<RibMapRule>());
  rules.push_back(std::make_unique<StdHashRule>());
  return rules;
}

std::vector<std::unique_ptr<Rule>> make_all_rules() {
  std::vector<std::unique_ptr<Rule>> rules = make_wire_rules();
  for (auto& r : make_contract_rules()) rules.push_back(std::move(r));
  return rules;
}

}  // namespace manrs::analyze
