#include "analyze/output.h"

#include <cstdio>
#include <cstring>
#include <string>

namespace manrs::analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_text(std::ostream& out, const AnalysisResult& result) {
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ":" << f.col << ": " << f.severity
        << ": " << f.message << " [" << f.rule << "]\n";
    if (!f.hint.empty()) out << "    hint: " << f.hint << "\n";
  }
  out << "manrs_analyze: " << result.files_scanned << " file(s), "
      << result.findings.size() << " finding(s), " << result.waived
      << " waived\n";
}

void write_json(std::ostream& out, const AnalysisResult& result) {
  out << "{\"tool\":\"manrs_analyze\",\"version\":1,\"files_scanned\":"
      << result.files_scanned << ",\"waived\":" << result.waived
      << ",\"cache_hits\":" << result.cache_hits
      << ",\"cache_misses\":" << result.cache_misses << ",\"findings\":[";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"column\":" << f.col << ",\"rule\":\"" << json_escape(f.rule)
        << "\",\"severity\":\"" << json_escape(f.severity)
        << "\",\"message\":\"" << json_escape(f.message) << "\",\"hint\":\""
        << json_escape(f.hint) << "\"}";
  }
  out << "]}\n";
}

void write_sarif(std::ostream& out, const AnalysisResult& result,
                 const std::vector<CatalogEntry>& catalog) {
  out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      << "\"name\":\"manrs_analyze\",\"informationUri\":"
      << "\"docs/static-analysis.md\",\"rules\":[";
  bool first = true;
  for (const CatalogEntry& info : catalog) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << json_escape(info.id)
        << "\",\"shortDescription\":{\"text\":\"" << json_escape(info.summary)
        << "\"},\"help\":{\"text\":\"" << json_escape(info.hint)
        << "\"},\"defaultConfiguration\":{\"level\":\""
        << (info.severity == "error"
                ? "error"
                : info.severity == "info" ? "note" : "warning")
        << "\"}}";
  }
  out << "]}},\"results\":[";
  first = true;
  for (const Finding& f : result.findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"" << json_escape(f.rule) << "\",\"level\":\""
        << (f.severity == "error"
                ? "error"
                : f.severity == "info" ? "note" : "warning")
        << "\",\"message\":{\"text\":\"" << json_escape(f.message)
        << "\"},\"locations\":[{\"physicalLocation\":{"
        << "\"artifactLocation\":{\"uri\":\"" << json_escape(f.file)
        << "\"},\"region\":{\"startLine\":" << f.line
        << ",\"startColumn\":" << f.col << "}}}]}";
  }
  out << "]}]}\n";
}

std::vector<SarifResult> parse_sarif_results(const std::string& text) {
  // write_sarif emits one flat object per result; reading those back
  // only needs three scalar fields, so a targeted scan beats a JSON
  // parser: find each "ruleId", then the following uri and startLine.
  std::vector<SarifResult> out;
  auto string_after = [&](size_t from, const char* key,
                          std::string* value) -> size_t {
    size_t k = text.find(key, from);
    if (k == std::string::npos) return std::string::npos;
    size_t q1 = text.find('"', k + std::strlen(key));
    if (q1 == std::string::npos) return std::string::npos;
    size_t q2 = q1 + 1;
    std::string v;
    while (q2 < text.size() && text[q2] != '"') {
      if (text[q2] == '\\' && q2 + 1 < text.size()) {
        ++q2;
        switch (text[q2]) {
          case 'n': v += '\n'; break;
          case 't': v += '\t'; break;
          case 'r': v += '\r'; break;
          default: v += text[q2];
        }
      } else {
        v += text[q2];
      }
      ++q2;
    }
    if (q2 >= text.size()) return std::string::npos;
    *value = std::move(v);
    return q2 + 1;
  };
  size_t pos = text.find("\"results\":[");
  if (pos == std::string::npos) return out;
  while (true) {
    SarifResult r;
    size_t after = string_after(pos, "\"ruleId\":", &r.rule);
    if (after == std::string::npos) break;
    size_t uri_end = string_after(after, "\"uri\":", &r.file);
    if (uri_end == std::string::npos) break;
    size_t ls = text.find("\"startLine\":", uri_end);
    if (ls == std::string::npos) break;
    ls += 12;
    int line = 0;
    while (ls < text.size() && text[ls] >= '0' && text[ls] <= '9') {
      line = line * 10 + (text[ls] - '0');
      ++ls;
    }
    r.line = line;
    out.push_back(std::move(r));
    pos = ls;
  }
  return out;
}

}  // namespace manrs::analyze
