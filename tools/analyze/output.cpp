#include "analyze/output.h"

#include <cstdio>
#include <string>

namespace manrs::analyze {

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

void write_text(std::ostream& out, const AnalysisResult& result) {
  for (const Finding& f : result.findings) {
    out << f.file << ":" << f.line << ":" << f.col << ": " << f.severity
        << ": " << f.message << " [" << f.rule << "]\n";
    if (!f.hint.empty()) out << "    hint: " << f.hint << "\n";
  }
  out << "manrs_analyze: " << result.files_scanned << " file(s), "
      << result.findings.size() << " finding(s), " << result.waived
      << " waived\n";
}

void write_json(std::ostream& out, const AnalysisResult& result) {
  out << "{\"tool\":\"manrs_analyze\",\"version\":1,\"files_scanned\":"
      << result.files_scanned << ",\"waived\":" << result.waived
      << ",\"findings\":[";
  bool first = true;
  for (const Finding& f : result.findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"file\":\"" << json_escape(f.file) << "\",\"line\":" << f.line
        << ",\"column\":" << f.col << ",\"rule\":\"" << json_escape(f.rule)
        << "\",\"severity\":\"" << json_escape(f.severity)
        << "\",\"message\":\"" << json_escape(f.message) << "\",\"hint\":\""
        << json_escape(f.hint) << "\"}";
  }
  out << "]}\n";
}

void write_sarif(std::ostream& out, const AnalysisResult& result) {
  out << "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
      << "\"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{"
      << "\"name\":\"manrs_analyze\",\"informationUri\":"
      << "\"docs/static-analysis.md\",\"rules\":[";
  bool first = true;
  for (const auto& rule : make_all_rules()) {
    const RuleInfo& info = rule->info();
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << json_escape(info.id)
        << "\",\"shortDescription\":{\"text\":\"" << json_escape(info.summary)
        << "\"},\"help\":{\"text\":\"" << json_escape(info.hint)
        << "\"},\"defaultConfiguration\":{\"level\":\""
        << (std::string(info.severity) == "error" ? "error" : "warning")
        << "\"}}";
  }
  out << "]}},\"results\":[";
  first = true;
  for (const Finding& f : result.findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"" << json_escape(f.rule) << "\",\"level\":\""
        << (f.severity == "error" ? "error" : "warning")
        << "\",\"message\":{\"text\":\"" << json_escape(f.message)
        << "\"},\"locations\":[{\"physicalLocation\":{"
        << "\"artifactLocation\":{\"uri\":\"" << json_escape(f.file)
        << "\"},\"region\":{\"startLine\":" << f.line
        << ",\"startColumn\":" << f.col << "}}}]}";
  }
  out << "]}]}\n";
}

}  // namespace manrs::analyze
