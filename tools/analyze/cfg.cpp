#include "analyze/cfg.h"

#include <set>

namespace manrs::analyze {

namespace {

constexpr size_t npos = FileContext::npos;

/// Keywords that can never be a function name at a definition site.
const std::set<std::string> kNotAFunctionName = {
    "if",     "for",    "while",  "switch",   "catch",  "return",
    "do",     "else",   "new",    "delete",   "sizeof", "alignof",
    "decltype", "operator", "try", "case",    "default", "throw",
    "static_assert", "alignas", "requires", "co_await", "co_return"};

/// Qualifier-ish tokens allowed between the parameter list ')' and the
/// body '{' (besides noexcept(...) and a trailing return type).
bool is_post_param_qualifier(const Token& t) {
  return t.is_ident("const") || t.is_ident("noexcept") ||
         t.is_ident("override") || t.is_ident("final") ||
         t.is_ident("mutable") || t.is_ident("volatile") ||
         t.is_punct("&") || t.is_punct("&&");
}

class View {
 public:
  explicit View(const AnalyzedFile& f) : f_(f) {}
  size_t size() const { return f_.code.size(); }
  const Token& tok(size_t i) const { return f_.tokens[f_.code[i]]; }
  size_t match(size_t i) const { return f_.match[i]; }

 private:
  const AnalyzedFile& f_;
};

/// Parse one parameter declaration [a, b) into ParamInfo.
ParamInfo parse_param(const View& v, size_t a, size_t b) {
  ParamInfo p;
  // Cut a default argument off first.
  for (size_t i = a; i < b; ++i) {
    if (v.tok(i).is_punct("=")) {
      b = i;
      break;
    }
    // Jump balanced groups so a '=' inside a template default stays put.
    if ((v.tok(i).is_punct("(") || v.tok(i).is_punct("[") ||
         v.tok(i).is_punct("{")) &&
        v.match(i) != npos && v.match(i) < b) {
      i = v.match(i);
    }
  }
  size_t name_pos = npos;
  for (size_t i = a; i < b; ++i) {
    if (v.tok(i).kind == TokenKind::kIdentifier) name_pos = i;
  }
  if (name_pos == npos) return p;
  p.name = v.tok(name_pos).text;
  for (size_t i = a; i < b; ++i) {
    const Token& t = v.tok(i);
    if (t.is_punct("&") || t.is_punct("&&") || t.is_punct("*")) {
      p.by_ref = true;
    }
  }
  // The type terminal: the identifier right before the name, skipping
  // cv/ref/ptr decorations. "std::span<const uint8_t> b" has '>' there,
  // so its terminal stays "" -- by design only plain "Type name" /
  // "ns::Type& name" declarations are typed.
  size_t q = name_pos;
  while (q > a) {
    const Token& t = v.tok(q - 1);
    if (t.is_punct("&") || t.is_punct("&&") || t.is_punct("*") ||
        t.is_ident("const") || t.is_ident("volatile")) {
      --q;
      continue;
    }
    break;
  }
  if (q > a && v.tok(q - 1).kind == TokenKind::kIdentifier &&
      q - 1 != name_pos) {
    p.type_terminal = v.tok(q - 1).text;
  }
  return p;
}

/// Split the parameter list (lparen..rparen) at top-level commas,
/// protecting template argument lists with an angle-depth heuristic.
std::vector<ParamInfo> parse_params(const View& v, size_t lparen,
                                    size_t rparen) {
  std::vector<ParamInfo> out;
  if (rparen <= lparen + 1) return out;
  int angle = 0;
  size_t start = lparen + 1;
  for (size_t i = lparen + 1; i <= rparen; ++i) {
    const Token& t = v.tok(i);
    if (i < rparen && (t.is_punct("(") || t.is_punct("[") ||
                       t.is_punct("{")) &&
        v.match(i) != npos && v.match(i) < rparen) {
      i = v.match(i);
      continue;
    }
    if (t.is_punct("<")) ++angle;
    if (t.is_punct(">") && angle > 0) --angle;
    if (t.is_punct(">>") && angle > 0) angle -= 2;
    if (i == rparen || (t.is_punct(",") && angle <= 0)) {
      if (i > start) out.push_back(parse_param(v, start, i));
      start = i + 1;
      if (i == rparen) break;
    }
  }
  return out;
}

/// Walk back from a body '{' to the ')' closing the parameter list.
/// Handles trailing return types, noexcept(...), and constructor
/// member-init lists. Returns npos when this '{' is not a function body.
size_t find_param_close(const View& v, size_t open) {
  size_t p = open;
  int budget = 64;  // trailing return types are short; give up otherwise
  while (p > 0 && budget-- > 0) {
    const Token& t = v.tok(p - 1);
    if (is_post_param_qualifier(t) || t.kind == TokenKind::kIdentifier ||
        t.is_punct("::") || t.is_punct("->") || t.is_punct("<") ||
        t.is_punct(">") || t.is_punct("*") || t.is_punct(",") ||
        t.is_punct(">>")) {
      // Part of a trailing return type / qualifier run -- except a bare
      // identifier directly before '{' with no ')' further back means
      // this is a class/namespace/enum/init-list brace; the loop below
      // rejects that because it never finds a ')'.
      if (t.kind == TokenKind::kIdentifier && !is_post_param_qualifier(t)) {
        // Only skip identifiers when a -> (trailing return) or
        // qualifier chain is plausibly in progress; a '{' preceded by a
        // plain name ("struct Foo {", "vec{1,2}") is not a body.
        bool has_arrow = false;
        for (size_t q = p; q > 0 && q + 16 > p; --q) {
          const Token& u = v.tok(q - 1);
          if (u.is_punct("->")) {
            has_arrow = true;
            break;
          }
          if (u.is_punct(")") || u.is_punct("{") || u.is_punct(";")) break;
        }
        if (!has_arrow && p == open) return npos;
        if (!has_arrow) {
          // mid-walk identifier without an arrow: qualifier like
          // noexcept already handled; bail out.
          return npos;
        }
      }
      --p;
      continue;
    }
    if (t.is_punct(")")) {
      size_t lp = v.match(p - 1);
      if (lp == npos) return npos;
      // noexcept(...) -- keep walking left of it.
      if (lp > 0 && v.tok(lp - 1).is_ident("noexcept")) {
        p = lp - 1;
        continue;
      }
      // Constructor member-init entry "name(args)": the token chain
      // before the name ends in ':' or ','. Walk to the real list.
      size_t nm = lp;
      while (nm > 0 && (v.tok(nm - 1).kind == TokenKind::kIdentifier ||
                        v.tok(nm - 1).is_punct("::"))) {
        --nm;
      }
      if (nm > 0 && (v.tok(nm - 1).is_punct(":") ||
                     v.tok(nm - 1).is_punct(","))) {
        p = nm - 1;  // continue left of the ':'/','
        continue;
      }
      return p - 1;
    }
    if (t.is_punct("}")) {
      // Brace-init member-init entry "name{args}" -- jump it.
      size_t lb = v.match(p - 1);
      if (lb == npos) return npos;
      size_t nm = lb;
      while (nm > 0 && (v.tok(nm - 1).kind == TokenKind::kIdentifier ||
                        v.tok(nm - 1).is_punct("::"))) {
        --nm;
      }
      if (nm > 0 && (v.tok(nm - 1).is_punct(":") ||
                     v.tok(nm - 1).is_punct(","))) {
        p = nm - 1;
        continue;
      }
      return npos;
    }
    return npos;
  }
  return npos;
}

class CfgBuilder {
 public:
  CfgBuilder(const View& v, const FunctionDef& fn) : v_(v), fn_(fn) {}

  Cfg build() {
    cfg_.entry = new_block();
    cur_ = cfg_.entry;
    size_t exit = new_block();
    cfg_.exit = exit;
    parse_stmts(fn_.open + 1, fn_.close);
    link(cur_, cfg_.exit);
    return std::move(cfg_);
  }

 private:
  size_t new_block() {
    cfg_.blocks.push_back(BasicBlock{});
    cfg_.blocks.back().try_depth = try_depth_;
    return cfg_.blocks.size() - 1;
  }
  void link(size_t a, size_t b) { cfg_.blocks[a].succ.push_back(b); }
  void add_range(size_t lo, size_t hi) {
    if (lo < hi) cfg_.blocks[cur_].ranges.emplace_back(lo, hi);
  }
  const Token& tok(size_t i) const { return v_.tok(i); }
  size_t match(size_t i) const { return v_.match(i); }

  /// End (one past) of the plain statement starting at `i`, jumping
  /// balanced groups so ';' inside for-heads / lambdas stays internal.
  size_t stmt_end(size_t i, size_t hi) const {
    size_t j = i;
    while (j < hi) {
      const Token& t = tok(j);
      if ((t.is_punct("(") || t.is_punct("[") || t.is_punct("{")) &&
          match(j) != npos && match(j) < hi) {
        j = match(j) + 1;
        continue;
      }
      if (t.is_punct(";")) return j + 1;
      ++j;
    }
    return hi;
  }

  /// Parse statements in [lo, hi). `cur_` tracks the open block.
  void parse_stmts(size_t lo, size_t hi) {
    size_t i = lo;
    while (i < hi) {
      i = parse_stmt(i, hi);
    }
  }

  /// Parse exactly one statement starting at `i`; returns its end.
  size_t parse_stmt(size_t i, size_t hi) {
    const Token& t = tok(i);
    if (t.is_punct(";")) return i + 1;
    if (t.is_punct("{") && match(i) != npos && match(i) < hi) {
      parse_stmts(i + 1, match(i));
      return match(i) + 1;
    }
    if (t.kind == TokenKind::kIdentifier) {
      const std::string& kw = t.text;
      if (kw == "if") return parse_if(i, hi);
      if (kw == "for" || kw == "while") return parse_loop(i, hi);
      if (kw == "do") return parse_do(i, hi);
      if (kw == "switch") return parse_switch(i, hi);
      if (kw == "try") return parse_try(i, hi);
      if (kw == "return" || kw == "throw") {
        size_t j = stmt_end(i, hi);
        add_range(i, j);
        link(cur_, cfg_.exit);
        cur_ = new_block();  // unreachable continuation
        return j;
      }
      if (kw == "break" || kw == "continue") {
        size_t j = stmt_end(i, hi);
        add_range(i, j);
        if (kw == "break" && !breaks_.empty()) link(cur_, breaks_.back());
        if (kw == "continue" && !continues_.empty()) {
          link(cur_, continues_.back());
        }
        cur_ = new_block();
        return j;
      }
      if (kw == "case" || kw == "default") {
        // Stray label (only reachable when switch parsing degraded):
        // skip to its ':'.
        size_t j = i + 1;
        while (j < hi && !tok(j).is_punct(":")) ++j;
        return j < hi ? j + 1 : hi;
      }
      if (kw == "else") {
        // Orphan else (degraded if parse): treat its body linearly.
        return parse_stmt(i + 1, hi);
      }
    }
    size_t j = stmt_end(i, hi);
    add_range(i, j);
    return j;
  }

  size_t parse_if(size_t i, size_t hi) {
    size_t c = i + 1;
    if (c < hi && tok(c).is_ident("constexpr")) ++c;
    if (c >= hi || !tok(c).is_punct("(") || match(c) == npos ||
        match(c) >= hi) {
      size_t j = stmt_end(i, hi);
      add_range(i, j);
      return j;
    }
    size_t close = match(c);
    add_range(i, close + 1);  // condition evaluates in the current block
    size_t cond = cur_;

    cur_ = new_block();
    link(cond, cur_);
    size_t end = parse_stmt(close + 1, hi);
    size_t then_exit = cur_;

    size_t else_exit = cond;  // condition-false falls through
    if (end < hi && tok(end).is_ident("else")) {
      cur_ = new_block();
      link(cond, cur_);
      end = parse_stmt(end + 1, hi);
      else_exit = cur_;
    }
    size_t join = new_block();
    link(then_exit, join);
    link(else_exit, join);
    cur_ = join;
    return end;
  }

  size_t parse_loop(size_t i, size_t hi) {
    if (i + 1 >= hi || !tok(i + 1).is_punct("(") || match(i + 1) == npos ||
        match(i + 1) >= hi) {
      size_t j = stmt_end(i, hi);
      add_range(i, j);
      return j;
    }
    size_t close = match(i + 1);
    size_t head = new_block();
    link(cur_, head);
    cur_ = head;
    add_range(i, close + 1);  // init + condition + step, approximated

    size_t exit = new_block();
    size_t body = new_block();
    link(head, body);
    breaks_.push_back(exit);
    continues_.push_back(head);
    cur_ = body;
    size_t end = parse_stmt(close + 1, hi);
    link(cur_, head);  // back edge
    breaks_.pop_back();
    continues_.pop_back();
    link(head, exit);
    cur_ = exit;
    return end;
  }

  size_t parse_do(size_t i, size_t hi) {
    size_t body = new_block();
    link(cur_, body);
    size_t exit = new_block();
    breaks_.push_back(exit);
    continues_.push_back(body);
    cur_ = body;
    size_t end = parse_stmt(i + 1, hi);
    breaks_.pop_back();
    continues_.pop_back();
    if (end < hi && tok(end).is_ident("while") && end + 1 < hi &&
        tok(end + 1).is_punct("(") && match(end + 1) != npos) {
      size_t close = match(end + 1);
      add_range(end, close + 1);
      end = close + 1;
      if (end < hi && tok(end).is_punct(";")) ++end;
    }
    link(cur_, body);  // back edge (condition true)
    link(cur_, exit);
    cur_ = exit;
    return end;
  }

  size_t parse_switch(size_t i, size_t hi) {
    if (i + 1 >= hi || !tok(i + 1).is_punct("(") || match(i + 1) == npos ||
        match(i + 1) + 1 >= hi || !tok(match(i + 1) + 1).is_punct("{") ||
        match(match(i + 1) + 1) == npos) {
      size_t j = stmt_end(i, hi);
      add_range(i, j);
      return j;
    }
    size_t close = match(i + 1);
    size_t bopen = close + 1;
    size_t bend = match(bopen);
    add_range(i, close + 1);
    size_t head = cur_;

    // Label positions at the top level of the switch body.
    std::vector<size_t> labels;
    bool has_default = false;
    for (size_t j = bopen + 1; j < bend; ++j) {
      const Token& t = tok(j);
      if ((t.is_punct("(") || t.is_punct("[") || t.is_punct("{")) &&
          match(j) != npos && match(j) < bend) {
        j = match(j);
        continue;
      }
      if (t.is_ident("case") || t.is_ident("default")) {
        labels.push_back(j);
        if (t.is_ident("default")) has_default = true;
      }
    }
    size_t exit = new_block();
    breaks_.push_back(exit);
    std::vector<size_t> segs;
    segs.reserve(labels.size());
    for (size_t k = 0; k < labels.size(); ++k) {
      size_t seg = new_block();
      link(head, seg);
      segs.push_back(seg);
    }
    if (!has_default) link(head, exit);
    for (size_t k = 0; k < labels.size(); ++k) {
      size_t colon = labels[k] + 1;
      while (colon < bend && !tok(colon).is_punct(":")) {
        // jump groups inside "case ns::kValue:" etc. ("::" is one token)
        if ((tok(colon).is_punct("(") || tok(colon).is_punct("[")) &&
            match(colon) != npos) {
          colon = match(colon);
        }
        ++colon;
      }
      size_t seg_end = (k + 1 < labels.size()) ? labels[k + 1] : bend;
      cur_ = segs[k];
      if (colon < seg_end) parse_stmts(colon + 1, seg_end);
      // Fallthrough to the next segment, or out of the switch.
      link(cur_, k + 1 < segs.size() ? segs[k + 1] : exit);
    }
    breaks_.pop_back();
    cur_ = exit;
    return bend + 1;
  }

  size_t parse_try(size_t i, size_t hi) {
    if (i + 1 >= hi || !tok(i + 1).is_punct("{") || match(i + 1) == npos ||
        match(i + 1) >= hi) {
      size_t j = stmt_end(i, hi);
      add_range(i, j);
      return j;
    }
    size_t bend = match(i + 1);
    size_t before = cur_;
    ++try_depth_;
    size_t tb = new_block();
    size_t body_first = tb;
    link(before, tb);
    cur_ = tb;
    parse_stmts(i + 2, bend);
    size_t body_end = cur_;
    size_t body_last = cfg_.blocks.size() - 1;
    --try_depth_;

    size_t after = new_block();
    link(body_end, after);
    size_t end = bend + 1;
    while (end < hi && tok(end).is_ident("catch") && end + 1 < hi &&
           tok(end + 1).is_punct("(") && match(end + 1) != npos) {
      size_t cclose = match(end + 1);
      if (cclose + 1 >= hi || !tok(cclose + 1).is_punct("{") ||
          match(cclose + 1) == npos) {
        break;
      }
      size_t cb = new_block();
      // An exception can fly out of any point of the try body: every
      // block lexically inside it may hand its state to the handler.
      for (size_t b = body_first; b <= body_last; ++b) link(b, cb);
      link(before, cb);
      cur_ = cb;
      parse_stmts(cclose + 2, match(cclose + 1));
      link(cur_, after);
      end = match(cclose + 1) + 1;
    }
    cur_ = after;
    return end;
  }

  const View& v_;
  const FunctionDef& fn_;
  Cfg cfg_;
  size_t cur_ = 0;
  int try_depth_ = 0;
  std::vector<size_t> breaks_;
  std::vector<size_t> continues_;
};

}  // namespace

std::vector<FunctionDef> find_functions(const AnalyzedFile& file) {
  View v(file);
  std::vector<FunctionDef> out;
  const size_t n = v.size();
  for (size_t i = 0; i < n; ++i) {
    if (!v.tok(i).is_punct("{") || v.match(i) == npos) continue;
    size_t pclose = find_param_close(v, i);
    if (pclose == npos) continue;
    size_t lparen = v.match(pclose);
    if (lparen == npos || lparen == 0) continue;
    const Token& name = v.tok(lparen - 1);
    if (name.kind != TokenKind::kIdentifier ||
        kNotAFunctionName.count(name.text) != 0) {
      continue;
    }
    // Lambdas ("](...)") and destructors ("~Name(") are not call
    // targets the resolver handles; skip them.
    if (lparen >= 2 && (v.tok(lparen - 2).is_punct("]") ||
                        v.tok(lparen - 2).is_punct("~"))) {
      continue;
    }
    FunctionDef fn;
    fn.name = name.text;
    fn.line = name.line;
    fn.lparen = lparen;
    fn.open = i;
    fn.close = v.match(i);
    // Qualified spelling: walk "ident ::" pairs leftward.
    std::vector<std::string> parts = {name.text};
    size_t q = lparen - 1;
    while (q >= 2 && v.tok(q - 1).is_punct("::") &&
           v.tok(q - 2).kind == TokenKind::kIdentifier) {
      parts.push_back(v.tok(q - 2).text);
      q -= 2;
    }
    for (size_t k = parts.size(); k-- > 0;) {
      if (!fn.qualified.empty()) fn.qualified += "::";
      fn.qualified += parts[k];
    }
    fn.params = parse_params(v, lparen, pclose);
    out.push_back(std::move(fn));
  }
  return out;
}

Cfg build_cfg(const AnalyzedFile& file, const FunctionDef& fn) {
  View v(file);
  return CfgBuilder(v, fn).build();
}

LambdaExpr find_lambda_arg(const AnalyzedFile& f, size_t call) {
  constexpr size_t npos = FileContext::npos;
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  LambdaExpr lam;
  size_t open = call + 1;
  // parallel_map<T>(...): jump the template argument list.
  if (open < f.code.size() && tok(open).is_punct("<")) {
    int depth = 0;
    for (size_t j = open; j < f.code.size() && j < open + 64; ++j) {
      if (tok(j).is_punct("<")) ++depth;
      if (tok(j).is_punct(">") && --depth == 0) {
        open = j + 1;
        break;
      }
      if (tok(j).is_punct(">>")) {
        depth -= 2;
        if (depth <= 0) {
          open = j + 1;
          break;
        }
      }
    }
  }
  if (open >= f.code.size() || !tok(open).is_punct("(") ||
      f.match[open] == npos) {
    return lam;
  }
  size_t close = f.match[open];
  for (size_t j = open + 1; j < close; ++j) {
    if (tok(j).is_punct("[") && f.match[j] != npos && f.match[j] < close) {
      size_t cc = f.match[j];
      size_t k = cc + 1;
      LambdaExpr cand;
      cand.lbracket = j;
      cand.cap_close = cc;
      if (k < close && tok(k).is_punct("(") && f.match[k] != npos) {
        cand.params_open = k;
        cand.params_close = f.match[k];
        k = f.match[k] + 1;
      }
      // skip mutable / noexcept / trailing return
      while (k < close && !tok(k).is_punct("{") && k < cc + 48) ++k;
      if (k < close && tok(k).is_punct("{") && f.match[k] != npos) {
        cand.body_open = k;
        cand.body_close = f.match[k];
        return cand;
      }
    }
  }
  return lam;
}

bool captures_by_ref(const AnalyzedFile& f, const LambdaExpr& lam,
                     const std::string& name) {
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  bool ref_default = false;
  bool by_value = false;
  bool by_ref = false;
  for (size_t j = lam.lbracket + 1; j < lam.cap_close; ++j) {
    const Token& t = tok(j);
    if (t.is_punct("&")) {
      if (j + 1 < lam.cap_close && tok(j + 1).kind == TokenKind::kIdentifier) {
        if (tok(j + 1).text == name) by_ref = true;
        ++j;
      } else {
        ref_default = true;
      }
      continue;
    }
    if (t.kind == TokenKind::kIdentifier && t.text == name) {
      // "[i]" / "[&, i]" / "[i = expr]" -- a by-value (re)binding.
      by_value = true;
    }
  }
  if (by_ref) return true;
  if (by_value) return false;
  return ref_default;
}

std::string last_param_name(const AnalyzedFile& f, const LambdaExpr& lam) {
  if (lam.params_open == FileContext::npos) return "";
  auto tok = [&](size_t i) -> const Token& { return f.tokens[f.code[i]]; };
  std::string name;
  for (size_t j = lam.params_open + 1; j < lam.params_close; ++j) {
    if (tok(j).kind == TokenKind::kIdentifier) name = tok(j).text;
  }
  return name;
}

}  // namespace manrs::analyze
