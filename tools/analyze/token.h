// Token model for the manrs_analyze C++ lexer.
//
// The lexer produces a flat token stream in which comments and
// preprocessor directives are first-class tokens: rules that inspect
// code use the comment-free "code view" (see analyzer.h), while the
// waiver scanner and the include extractor read the comment and
// directive tokens directly. Line numbers always refer to the original
// source text, before line-splice (backslash-newline) removal.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace manrs::analyze {

enum class TokenKind : uint8_t {
  kIdentifier,  // identifiers and keywords (rules match on spelling)
  kNumber,      // pp-number: integers, floats, digit separators, suffixes
  kString,      // string literal, including raw strings and prefixes
  kCharLit,     // character literal, including prefixes
  kPunct,       // operators and punctuation, longest-match
  kComment,     // // or /* */ comment, full text
  kDirective,   // a # preprocessor directive (text up to // or newline)
  kEndOfFile,
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;  // splice-normalized spelling (raw strings verbatim)
  int line = 0;      // 1-based line of the first character
  int col = 0;       // 1-based column of the first character
  int end_line = 0;  // line of the last character (multi-line tokens)

  bool is(std::string_view s) const { return text == s; }
  bool is_ident(std::string_view s) const {
    return kind == TokenKind::kIdentifier && text == s;
  }
  bool is_punct(std::string_view s) const {
    return kind == TokenKind::kPunct && text == s;
  }
};

}  // namespace manrs::analyze
