// Declarative typestate protocols and the flow-aware rule engine.
//
// Protocols live in tools/analyze/protocols.txt (see parse_protocols
// for the grammar). Each kTypestate protocol is a state machine over
// method-call events on tracked variables: states, a start state, and
// per-(state, method) transitions that either move to a new state or
// report an error. The engine runs a forward "may" dataflow over each
// function's CFG -- the abstract value is a SET of possible states
// (meet = union), so an error is reported when any reachable state has
// an error transition for the event. Unknown (reassignment, unresolved
// call, copy initializer) is a sink state with no transitions: the
// engine never reports on what it cannot prove, trading recall for a
// zero-false-positive default.
//
// Interprocedural: for every (function, tracked reference parameter)
// the engine computes a summary -- per entry state, whether the body
// errors and which states it can exit in -- by running the same
// dataflow once per entry state, to fixpoint over the cross-TU call
// graph (bottom-initialized, so cycles converge). kPassedTo events
// apply callee summaries at the call site; an error inside the callee
// is reported at the caller, where the bad state was produced.
//
// Two protocol kinds are lexical rather than flow-based:
//   * attr no-share-parallel -- a tracked variable captured by
//     reference into a util::parallel_for/parallel_map lambda;
//   * kind nesting -- a nested parallel_for whose [&] lambda touches
//     the outer lambda's loop index.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analyze/callgraph.h"
#include "analyze/dataflow.h"
#include "analyze/rule.h"

namespace manrs::analyze {

struct ProtocolTransition {
  int from = 0;
  std::string method;  // "try_*" patterns: trailing '*' is a wildcard
  bool is_error = false;
  int to = 0;               // target state when !is_error
  std::string message;      // error text when is_error
};

/// A consuming read method for kWidth protocols: a fixed byte width,
/// or width -1 meaning "the first argument, evaluated as an interval".
struct ReadSpec {
  std::string method;
  int width = 0;
};

struct ProtocolSpec {
  enum Kind { kTypestate, kNesting, kWidth, kLockset };
  Kind kind = kTypestate;
  std::string id;        // rule id ("rib-typestate")
  std::string severity = "error";
  std::string summary;
  std::string hint;
  std::vector<std::string> types;       // tracked type terminals
  std::vector<std::string> scope;       // path prefixes; empty = everywhere
  std::vector<std::string> states;
  int start = 0;
  bool try_suppresses = false;          // events in try blocks never error
  bool callers_try_suppresses = false;  // local findings dropped when every
                                        // call site of the function is in try
  bool no_share_parallel = false;
  std::vector<std::string> fresh_init;  // methods returning a fresh object
  std::vector<std::string> functions;   // kNesting/kLockset: fan-out entries
  std::vector<ProtocolTransition> table;
  // kWidth-only vocabulary.
  std::vector<std::string> guards;      // can_read/remaining-style proofs
  std::vector<ReadSpec> reads;          // consuming methods + byte widths
  std::vector<std::string> pure;        // non-consuming methods (done, data)
  // kLockset-only vocabulary.
  std::vector<std::string> lock_types;      // scoped RAII lock type terminals
  std::vector<std::string> atomic_prefixes; // type prefixes treated as atomic

  bool in_scope(const std::string& rel_path) const;
  int state_index(const std::string& name) const;
};

/// Parse a protocols.txt. On error returns an empty vector and sets
/// *error to a message naming the offending line.
std::vector<ProtocolSpec> parse_protocols(const std::string& text,
                                          std::string* error);

class TypestateEngine {
 public:
  /// Builds per-protocol tracked vars/events over a shared cross-TU
  /// call graph (see build_call_graph) and runs the summary fixpoint.
  /// `files` and `graph` must outlive the engine.
  TypestateEngine(std::vector<ProtocolSpec> protocols,
                  const std::vector<const AnalyzedFile*>& files,
                  const CallGraph* graph);

  /// All findings anchored in files[file_index] (local misuse plus
  /// call-site findings produced by callee summaries), unsorted.
  std::vector<Finding> check_file(size_t file_index) const;

  /// Deterministic digest of everything a single file's findings can
  /// depend on besides its own content: protocol specs, function
  /// summaries, and per-function caller-try coverage. Cache keys
  /// include it so a cross-TU change invalidates dependent files.
  uint64_t environment_hash() const;

  const std::vector<ProtocolSpec>& protocols() const { return protocols_; }

 private:
  struct Summary {
    // Indexed by entry state (real states then Unknown): exit mask,
    // error flag, and the method that errors first (for the message).
    std::vector<uint64_t> exit_mask;
    std::vector<uint8_t> error;
    std::vector<std::string> error_method;
  };
  struct FlowError {
    size_t pos = 0;
    size_t var = 0;
    std::string message;
  };

  uint64_t unknown_bit(size_t proto) const;
  const ProtocolTransition* lookup(size_t proto, int state,
                                   const std::string& method) const;
  void run_flow(size_t proto, size_t fn, const std::vector<TrackedVar>& vars,
                const std::vector<std::vector<Event>>& events, size_t var,
                uint64_t entry_mask, uint64_t* exit_mask,
                std::vector<FlowError>* errors) const;
  void compute_summaries();
  std::vector<Finding> lexical_checks(size_t file_index) const;

  std::vector<ProtocolSpec> protocols_;
  std::vector<const AnalyzedFile*> files_;
  const CallGraph* graph_;
  // Per protocol, per function: tracked vars + per-block events.
  std::vector<std::vector<std::vector<TrackedVar>>> vars_;
  std::vector<std::vector<std::vector<std::vector<Event>>>> events_;
  // summaries_[proto][fn] -> param_index -> Summary
  std::vector<std::vector<std::map<size_t, Summary>>> summaries_;
  std::vector<uint8_t> fn_callers_all_try_;
};

}  // namespace manrs::analyze
