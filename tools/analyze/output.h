// Output emitters for manrs_analyze: human text, machine JSON, and
// SARIF 2.1.0 (the CI artifact format).
#pragma once

#include <ostream>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/rule.h"

namespace manrs::analyze {

/// `file:line:col: severity: message [rule]` plus a trailing summary.
void write_text(std::ostream& out, const AnalysisResult& result);

/// {"tool":"manrs_analyze","version":1,"files_scanned":N,"findings":[...]}
void write_json(std::ostream& out, const AnalysisResult& result);

/// SARIF 2.1.0: one run, rule metadata in tool.driver.rules (the full
/// catalog, including protocol rules), one result per finding.
void write_sarif(std::ostream& out, const AnalysisResult& result,
                 const std::vector<CatalogEntry>& catalog);

/// One result row parsed back out of a SARIF file (baseline diffing).
struct SarifResult {
  std::string rule;
  std::string file;
  int line = 0;
};

/// Extract (ruleId, uri, startLine) triples from SARIF text written by
/// write_sarif. Tolerant of whitespace; anything unparseable is
/// skipped.
std::vector<SarifResult> parse_sarif_results(const std::string& text);

}  // namespace manrs::analyze
