// manrs_analyze: token- and flow-aware static analyzer for this repo.
//
//   manrs_analyze [--root DIR] [--json] [--sarif FILE] [--list-rules]
//                 [--cache] [--cache-dir DIR]
//                 [--baseline FILE] [--fail-on-new]
//                 [--stats-json FILE] [paths...]
//
// Paths (files or directories) are resolved against the repo root. With
// no paths, scans src tools bench tests (whichever exist).
//
// Exit code contract (tools/lint_wire.py execs this binary, so the
// shim inherits it): 0 = clean scan, 1 = findings (or, under
// --fail-on-new, findings not present in the baseline), 2 = internal
// error: bad usage, unreadable path, malformed protocols.txt, or any
// exception escaping the analysis.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/intervals.h"
#include "analyze/output.h"

namespace fs = std::filesystem;

namespace {

/// Walk up from the current directory looking for the layering config
/// that marks the repo root.
std::string discover_root() {
  std::error_code ec;
  fs::path dir = fs::current_path(ec);
  if (ec) return ".";
  for (fs::path p = dir; !p.empty(); p = p.parent_path()) {
    if (fs::exists(p / "tools" / "analyze" / "layers.txt", ec)) {
      return p.string();
    }
    if (p == p.root_path()) break;
  }
  return dir.string();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--sarif FILE] "
               "[--list-rules] [--cache] [--cache-dir DIR] "
               "[--baseline FILE] [--fail-on-new] [--stats-json FILE] "
               "[paths...]\n",
               argv0);
  return 2;
}

/// Pull prior run objects out of an accumulating bench JSON (same
/// format as BENCH_pipeline.json) so a new run appends, never rewrites.
std::vector<std::string> extract_runs(const std::string& text) {
  std::vector<std::string> runs;
  size_t pos = text.find("\"runs\"");
  if (pos == std::string::npos) return runs;
  pos = text.find('[', pos);
  if (pos == std::string::npos) return runs;
  int bracket = 0;
  int brace = 0;
  size_t start = std::string::npos;
  for (size_t i = pos; i < text.size(); ++i) {
    char c = text[i];
    if (c == '[') {
      ++bracket;
    } else if (c == ']') {
      if (--bracket == 0 && brace == 0) break;
    } else if (c == '{') {
      if (brace++ == 0) start = i;
    } else if (c == '}') {
      if (--brace == 0 && start != std::string::npos) {
        runs.push_back(text.substr(start, i - start + 1));
        start = std::string::npos;
      }
    }
  }
  return runs;
}

void append_stats(const std::string& path,
                  const manrs::analyze::AnalysisResult& result,
                  bool cache_enabled, double wall_ms) {
  std::vector<std::string> runs;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream text;
      text << in.rdbuf();
      runs = extract_runs(text.str());
    }
  }
  std::ostringstream run;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"files\": %zu, \"findings\": %zu, \"waived\": %zu, "
                "\"cache\": %s, \"cache_hits\": %zu, \"cache_misses\": %zu, "
                "\"lattice\": %llu, \"wall_ms\": %.3f}",
                result.files_scanned, result.findings.size(), result.waived,
                cache_enabled ? "true" : "false", result.cache_hits,
                result.cache_misses,
                static_cast<unsigned long long>(manrs::analyze::kLatticeVersion),
                wall_ms);
  run << buf;
  runs.push_back(run.str());

  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "manrs_analyze: cannot write %s\n", path.c_str());
    return;
  }
  out << "{\n  \"bench\": \"manrs_analyze\",\n  \"runs\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    out << "    " << runs[i] << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run_analysis(int argc, char** argv) {
  std::string root;
  bool json = false;
  bool list_rules = false;
  bool use_cache = false;
  bool fail_on_new = false;
  bool self_test_throw = false;
  std::string sarif_path;
  std::string cache_dir;
  std::string baseline_path;
  std::string stats_path;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--root") == 0) {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--sarif") == 0) {
      if (++i >= argc) return usage(argv[0]);
      sarif_path = argv[i];
    } else if (std::strcmp(arg, "--list-rules") == 0) {
      list_rules = true;
    } else if (std::strcmp(arg, "--cache") == 0) {
      use_cache = true;
    } else if (std::strcmp(arg, "--cache-dir") == 0) {
      if (++i >= argc) return usage(argv[0]);
      use_cache = true;
      cache_dir = argv[i];
    } else if (std::strcmp(arg, "--baseline") == 0) {
      if (++i >= argc) return usage(argv[0]);
      baseline_path = argv[i];
    } else if (std::strcmp(arg, "--fail-on-new") == 0) {
      fail_on_new = true;
    } else if (std::strcmp(arg, "--stats-json") == 0) {
      if (++i >= argc) return usage(argv[0]);
      stats_path = argv[i];
    } else if (std::strcmp(arg, "--self-test-throw") == 0) {
      self_test_throw = true;  // exercises the exit-2 exception path
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else {
      targets.push_back(arg);
    }
  }

  if (self_test_throw) {
    throw std::runtime_error("--self-test-throw");
  }

  if (root.empty()) root = discover_root();
  manrs::analyze::Analyzer analyzer(root);
  if (!analyzer.layers().loaded) {
    std::fprintf(stderr,
                 "manrs_analyze: warning: no layering config at "
                 "%s/tools/analyze/layers.txt; layer-violation disabled\n",
                 root.c_str());
  }
  if (!analyzer.protocol_error().empty()) {
    std::fprintf(stderr, "manrs_analyze: %s\n",
                 analyzer.protocol_error().c_str());
    return 2;
  }

  if (list_rules) {
    for (const manrs::analyze::CatalogEntry& info : analyzer.rule_catalog()) {
      std::printf("%-24s %-8s %s\n", info.id.c_str(), info.severity.c_str(),
                  info.summary.c_str());
    }
    return 0;
  }

  if (targets.empty()) {
    std::error_code ec;
    for (const char* d : {"src", "tools", "bench", "tests"}) {
      if (fs::is_directory(fs::path(root) / d, ec)) targets.push_back(d);
    }
    if (targets.empty()) {
      std::fprintf(stderr, "manrs_analyze: nothing to scan under %s\n",
                   root.c_str());
      return 2;
    }
  }

  bool ok = true;
  for (const std::string& t : targets) ok = analyzer.add_target(t) && ok;
  if (!ok) return 2;

  if (use_cache) {
    if (cache_dir.empty()) cache_dir = root + "/build/analyze-cache";
    analyzer.enable_cache(cache_dir);
  }

  const auto t0 = std::chrono::steady_clock::now();
  manrs::analyze::AnalysisResult result = analyzer.run();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();

  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path);
    if (!sarif) {
      std::fprintf(stderr, "manrs_analyze: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    manrs::analyze::write_sarif(sarif, result, analyzer.rule_catalog());
  }
  if (!stats_path.empty()) {
    append_stats(stats_path, result, use_cache, wall_ms);
  }
  if (json) {
    manrs::analyze::write_json(std::cout, result);
  } else {
    manrs::analyze::write_text(std::cout, result);
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "manrs_analyze: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream text;
    text << in.rdbuf();
    // Multiset diff by (rule, file, line): a finding is "new" when the
    // current scan holds more instances of its key than the baseline.
    std::map<std::string, int> budget;
    for (const manrs::analyze::SarifResult& r :
         manrs::analyze::parse_sarif_results(text.str())) {
      ++budget[r.rule + "\t" + r.file + "\t" + std::to_string(r.line)];
    }
    size_t fresh = 0;
    for (const manrs::analyze::Finding& f : result.findings) {
      std::string key = f.rule + "\t" + f.file + "\t" + std::to_string(f.line);
      auto it = budget.find(key);
      if (it != budget.end() && it->second > 0) {
        --it->second;
      } else {
        ++fresh;
        std::fprintf(stderr, "manrs_analyze: new vs baseline: %s:%d: %s [%s]\n",
                     f.file.c_str(), f.line, f.message.c_str(),
                     f.rule.c_str());
      }
    }
    std::fprintf(stderr, "manrs_analyze: %zu finding(s) new vs baseline %s\n",
                 fresh, baseline_path.c_str());
    if (fail_on_new) return fresh == 0 ? 0 : 1;
  }

  return result.findings.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run_analysis(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "manrs_analyze: internal error: %s\n", e.what());
    return 2;
  } catch (...) {
    std::fprintf(stderr, "manrs_analyze: internal error\n");
    return 2;
  }
}
