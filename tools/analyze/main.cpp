// manrs_analyze: token- and scope-aware static analyzer for this repo.
//
//   manrs_analyze [--root DIR] [--json] [--sarif FILE] [--list-rules]
//                 [paths...]
//
// Paths (files or directories) are resolved against the repo root. With
// no paths, scans src tools bench tests (whichever exist). Exit 0 when
// clean, 1 with findings, 2 on usage/configuration errors.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/output.h"

namespace fs = std::filesystem;

namespace {

/// Walk up from the current directory looking for the layering config
/// that marks the repo root.
std::string discover_root() {
  std::error_code ec;
  fs::path dir = fs::current_path(ec);
  if (ec) return ".";
  for (fs::path p = dir; !p.empty(); p = p.parent_path()) {
    if (fs::exists(p / "tools" / "analyze" / "layers.txt", ec)) {
      return p.string();
    }
    if (p == p.root_path()) break;
  }
  return dir.string();
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--sarif FILE] "
               "[--list-rules] [paths...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root;
  bool json = false;
  bool list_rules = false;
  std::string sarif_path;
  std::vector<std::string> targets;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--root") == 0) {
      if (++i >= argc) return usage(argv[0]);
      root = argv[i];
    } else if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--sarif") == 0) {
      if (++i >= argc) return usage(argv[0]);
      sarif_path = argv[i];
    } else if (std::strcmp(arg, "--list-rules") == 0) {
      list_rules = true;
    } else if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      usage(argv[0]);
      return 0;
    } else if (arg[0] == '-') {
      return usage(argv[0]);
    } else {
      targets.push_back(arg);
    }
  }

  if (list_rules) {
    for (const auto& rule : manrs::analyze::make_all_rules()) {
      const manrs::analyze::RuleInfo& info = rule->info();
      std::printf("%-24s %-8s %s\n", info.id, info.severity, info.summary);
    }
    return 0;
  }

  if (root.empty()) root = discover_root();
  manrs::analyze::Analyzer analyzer(root);
  if (!analyzer.layers().loaded) {
    std::fprintf(stderr,
                 "manrs_analyze: warning: no layering config at "
                 "%s/tools/analyze/layers.txt; layer-violation disabled\n",
                 root.c_str());
  }

  if (targets.empty()) {
    std::error_code ec;
    for (const char* d : {"src", "tools", "bench", "tests"}) {
      if (fs::is_directory(fs::path(root) / d, ec)) targets.push_back(d);
    }
    if (targets.empty()) {
      std::fprintf(stderr, "manrs_analyze: nothing to scan under %s\n",
                   root.c_str());
      return 2;
    }
  }

  bool ok = true;
  for (const std::string& t : targets) ok = analyzer.add_target(t) && ok;
  if (!ok) return 2;

  manrs::analyze::AnalysisResult result = analyzer.run();

  if (!sarif_path.empty()) {
    std::ofstream sarif(sarif_path);
    if (!sarif) {
      std::fprintf(stderr, "manrs_analyze: cannot write %s\n",
                   sarif_path.c_str());
      return 2;
    }
    manrs::analyze::write_sarif(sarif, result);
  }
  if (json) {
    manrs::analyze::write_json(std::cout, result);
  } else {
    manrs::analyze::write_text(std::cout, result);
  }
  return result.findings.empty() ? 0 : 1;
}
