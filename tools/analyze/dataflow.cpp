#include "analyze/dataflow.h"

#include <algorithm>
#include <set>

namespace manrs::analyze {

namespace {

constexpr size_t npos = FileContext::npos;

bool in_list(const std::vector<std::string>& list, const std::string& s) {
  return std::find(list.begin(), list.end(), s) != list.end();
}

const std::set<std::string> kNotACallHere = {
    "if", "for", "while", "switch", "catch", "return", "sizeof",
    "alignof", "decltype", "new", "delete", "throw", "typeid"};

// Statement keywords that may directly precede a use of a variable
// ("return v.m()"). Any other preceding identifier means a declaration
// ("Rib rib") or a qualified name, not a use.
const std::set<std::string> kStmtKeyword = {"return", "co_return", "else",
                                            "do", "throw", "co_yield"};

}  // namespace

std::vector<TrackedVar> find_tracked_vars(
    const AnalyzedFile& file, const FunctionDef& fn,
    const std::vector<std::string>& types,
    const std::vector<std::string>& fresh_init) {
  auto tok = [&](size_t i) -> const Token& { return file.tokens[file.code[i]]; };
  std::vector<TrackedVar> out;

  for (size_t pi = 0; pi < fn.params.size(); ++pi) {
    const ParamInfo& p = fn.params[pi];
    if (p.name.empty() || !in_list(types, p.type_terminal)) continue;
    TrackedVar v;
    v.name = p.name;
    v.decl_line = fn.line;
    v.is_param = true;
    v.param_index = pi;
    out.push_back(std::move(v));
  }

  // Local declarations: "Type name", "ns::Type& name", with the
  // declarator possibly continuing ", name2". Template arguments
  // ("vector<Type>") never match: the token after the type must start a
  // declarator.
  for (size_t i = fn.open + 1; i + 1 < fn.close; ++i) {
    const Token& t = tok(i);
    if (t.kind != TokenKind::kIdentifier || !in_list(types, t.text)) continue;
    if (i > 0 && (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->"))) {
      continue;  // member access spelled like the type name
    }
    size_t k = i + 1;
    while (k < fn.close &&
           (tok(k).is_punct("&") || tok(k).is_punct("&&") ||
            tok(k).is_punct("*") || tok(k).is_ident("const"))) {
      ++k;
    }
    if (k >= fn.close || tok(k).kind != TokenKind::kIdentifier) continue;
    // Next token decides whether this is a declaration at all.
    while (k < fn.close) {
      const Token& name = tok(k);
      if (name.kind != TokenKind::kIdentifier) break;
      size_t after = k + 1;
      if (after >= fn.close) break;
      const Token& a = tok(after);
      TrackedVar v;
      v.name = name.text;
      v.decl_line = name.line;
      if (a.is_punct(";") || a.is_punct(",")) {
        v.fresh = true;  // default construction
      } else if (a.is_punct("(") || a.is_punct("{")) {
        v.fresh = true;  // direct construction with arguments
      } else if (a.is_punct("=")) {
        // Copy/call initializer: Unknown unless a fresh-init method is
        // called in the initializer ("auto sub = r.sub(n)").
        v.fresh = false;
        size_t e = after + 1;
        // Linear scan (not group-jumping): a fresh-init call can sit
        // anywhere in the initializer expression.
        while (e < fn.close && !tok(e).is_punct(";")) {
          if (tok(e).kind == TokenKind::kIdentifier &&
              in_list(fresh_init, tok(e).text) && e + 1 < fn.close &&
              tok(e + 1).is_punct("(") && e >= 1 &&
              (tok(e - 1).is_punct(".") || tok(e - 1).is_punct("->"))) {
            v.fresh = true;
          }
          ++e;
        }
      } else {
        break;  // "Type name)" etc. -- not a declaration we track
      }
      out.push_back(std::move(v));
      // Multi-declarator: jump the initializer, continue after ','.
      size_t e = after;
      if (tok(e).is_punct("(") || tok(e).is_punct("{")) {
        if (file.match[e] == npos || file.match[e] >= fn.close) break;
        e = file.match[e] + 1;
      } else if (tok(e).is_punct("=")) {
        while (e < fn.close && !tok(e).is_punct(";") && !tok(e).is_punct(",")) {
          if ((tok(e).is_punct("(") || tok(e).is_punct("{") ||
               tok(e).is_punct("[")) &&
              file.match[e] != npos && file.match[e] < fn.close) {
            e = file.match[e];
          }
          ++e;
        }
      }
      if (e >= fn.close || !tok(e).is_punct(",")) break;
      k = e + 1;
    }
  }

  // Deduplicate by name (shadowing collapses to the first declaration;
  // events match by name, so a merged view is the conservative one).
  std::vector<TrackedVar> dedup;
  std::set<std::string> seen;
  for (TrackedVar& v : out) {
    if (seen.insert(v.name).second) dedup.push_back(std::move(v));
  }
  return dedup;
}

std::vector<std::vector<Event>> extract_events(
    const AnalyzedFile& file, const Cfg& cfg,
    const std::vector<TrackedVar>& vars) {
  auto tok = [&](size_t i) -> const Token& { return file.tokens[file.code[i]]; };
  auto var_index = [&](const std::string& name) -> size_t {
    for (size_t v = 0; v < vars.size(); ++v) {
      if (vars[v].name == name) return v;
    }
    return npos;
  };

  std::vector<std::vector<Event>> out(cfg.blocks.size());
  for (size_t b = 0; b < cfg.blocks.size(); ++b) {
    std::vector<Event>& events = out[b];
    for (const CodeRange& r : cfg.blocks[b].ranges) {
      for (size_t i = r.first; i < r.second; ++i) {
        const Token& t = tok(i);
        if (t.kind != TokenKind::kIdentifier) continue;

        // Method events and reassignment on a tracked variable.
        size_t v = var_index(t.text);
        if (v != npos &&
            !(i > r.first &&
              (tok(i - 1).is_punct(".") || tok(i - 1).is_punct("->") ||
               tok(i - 1).is_punct("::") ||
               (tok(i - 1).kind == TokenKind::kIdentifier &&
                kStmtKeyword.count(tok(i - 1).text) == 0)))) {
          if (i + 3 < r.second &&
              (tok(i + 1).is_punct(".") || tok(i + 1).is_punct("->")) &&
              tok(i + 2).kind == TokenKind::kIdentifier &&
              tok(i + 3).is_punct("(")) {
            Event e;
            e.kind = Event::kMethod;
            e.var = v;
            e.pos = i + 2;
            e.method = tok(i + 2).text;
            events.push_back(std::move(e));
            continue;
          }
          if (i + 1 < r.second && tok(i + 1).is_punct("=")) {
            Event e;
            e.kind = Event::kAssign;
            e.var = v;
            e.pos = i;
            events.push_back(std::move(e));
            continue;
          }
        }

        // Passed-to events: scan the argument list of each call.
        if (i + 1 < r.second && tok(i + 1).is_punct("(") &&
            kNotACallHere.count(t.text) == 0 &&
            file.match[i + 1] != npos && file.match[i + 1] < r.second) {
          // Reject declarations "Type name(" (identifier right before
          // the possibly qualified name).
          size_t q = i;
          std::vector<std::string> parts = {t.text};
          while (q >= 2 && tok(q - 1).is_punct("::") &&
                 tok(q - 2).kind == TokenKind::kIdentifier) {
            parts.push_back(tok(q - 2).text);
            q -= 2;
          }
          bool is_member =
              q >= 1 && (tok(q - 1).is_punct(".") || tok(q - 1).is_punct("->"));
          if (!is_member && q >= 1 &&
              tok(q - 1).kind == TokenKind::kIdentifier &&
              kNotACallHere.count(tok(q - 1).text) == 0) {
            continue;
          }
          std::string qualified;
          if (parts.size() > 1) {
            for (size_t k = parts.size(); k-- > 0;) {
              if (!qualified.empty()) qualified += "::";
              qualified += parts[k];
            }
          }
          size_t close = file.match[i + 1];
          size_t arg_start = i + 2;
          size_t arg_index = 0;
          for (size_t j = i + 2; j <= close; ++j) {
            bool at_end = (j == close);
            if (!at_end && (tok(j).is_punct("(") || tok(j).is_punct("[") ||
                            tok(j).is_punct("{")) &&
                file.match[j] != npos && file.match[j] < close) {
              j = file.match[j];
              continue;
            }
            if (at_end || tok(j).is_punct(",")) {
              // Argument [arg_start, j): exactly v, &v, or
              // std::move(v) counts as handing the object over.
              size_t len = j - arg_start;
              size_t name_pos = npos;
              if (len == 1 && tok(arg_start).kind == TokenKind::kIdentifier) {
                name_pos = arg_start;
              } else if (len == 2 && tok(arg_start).is_punct("&") &&
                         tok(arg_start + 1).kind == TokenKind::kIdentifier) {
                name_pos = arg_start + 1;
              } else if (len == 6 && tok(arg_start).is_ident("std") &&
                         tok(arg_start + 1).is_punct("::") &&
                         tok(arg_start + 2).is_ident("move") &&
                         tok(arg_start + 3).is_punct("(")) {
                name_pos = arg_start + 4;
              }
              if (name_pos != npos) {
                size_t pv = var_index(tok(name_pos).text);
                if (pv != npos) {
                  Event e;
                  e.kind = Event::kPassedTo;
                  e.var = pv;
                  e.pos = i;
                  e.callee_terminal = t.text;
                  e.callee_qualified = qualified;
                  e.arg_index = arg_index;
                  events.push_back(std::move(e));
                }
              }
              arg_start = j + 1;
              ++arg_index;
            }
          }
        }
      }
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const Event& a, const Event& b) { return a.pos < b.pos; });
  }
  return out;
}

}  // namespace manrs::analyze
