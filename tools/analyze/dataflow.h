// Def-use extraction over tracked object types, per function.
//
// find_tracked_vars() locates, inside one function, the local variables
// (and reference parameters) whose declared type terminal matches a
// protocol's tracked type names. Initialization is classified: a
// default / direct construction starts in the protocol's start state, a
// copy / call initializer is Unknown (conservative: no false
// positives), unless the initializer calls one of the protocol's
// "fresh-init" methods (e.g. ByteCursor::sub carving a child cursor).
//
// extract_events() walks the function's CFG blocks and emits, in
// lexical order per block, the events the typestate engine consumes:
// method calls on a tracked variable, reassignment, and the variable
// being passed (bare, &var, or std::move(var)) to a call.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/cfg.h"

namespace manrs::analyze {

struct TrackedVar {
  std::string name;
  int decl_line = 0;
  bool is_param = false;
  size_t param_index = 0;  // position in the callee's parameter list
  bool fresh = true;       // start state vs Unknown at the declaration
};

struct Event {
  enum Kind { kMethod, kPassedTo, kAssign };
  Kind kind = kMethod;
  size_t var = 0;  // index into the tracked-var list
  size_t pos = 0;  // code position (anchor for findings)
  std::string method;            // kMethod: the member called
  std::string callee_terminal;   // kPassedTo
  std::string callee_qualified;  // kPassedTo ("" if bare)
  size_t arg_index = 0;          // kPassedTo: zero-based argument slot
};

/// Tracked variables of `fn` whose type terminal is in `types`.
/// `fresh_init`: method names whose call result counts as fresh.
std::vector<TrackedVar> find_tracked_vars(
    const AnalyzedFile& file, const FunctionDef& fn,
    const std::vector<std::string>& types,
    const std::vector<std::string>& fresh_init);

/// Per CFG block, the events on `vars`, sorted by code position.
std::vector<std::vector<Event>> extract_events(
    const AnalyzedFile& file, const Cfg& cfg,
    const std::vector<TrackedVar>& vars);

}  // namespace manrs::analyze
