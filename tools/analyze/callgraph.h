// Cross-translation-unit call graph over the analyzed file set.
//
// Definitions come from cfg.h's find_functions(); call sites are read
// off each function's CFG blocks (so every site knows whether it sits
// inside a try block). Resolution is by qualified name first
// ("TableDumpReader::next" spelled at the call site), then by terminal
// name when that is unambiguous across the program; an ambiguous bare
// name resolves to every definition carrying it (the any-path
// fallback) -- callers that need soundness treat multi-candidate
// resolution conservatively.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "analyze/cfg.h"

namespace manrs::analyze {

struct CallSite {
  size_t file_index = 0;    // into the file list handed to build_call_graph
  size_t caller = SIZE_MAX; // def index of the enclosing function
  std::string terminal;     // callee name as called ("next")
  std::string qualified;    // qualified spelling at the site, "" if bare
  size_t pos = 0;           // code position of the callee name token
  bool in_try = false;      // lexically inside a try block (caller side)
  bool is_member = false;   // obj.name(...) / obj->name(...)
};

struct FunctionUnit {
  size_t file_index = 0;
  FunctionDef def;
  Cfg cfg;
};

class CallGraph {
 public:
  /// `files` must outlive the graph. defs/cfgs are moved in per file.
  CallGraph(const std::vector<const AnalyzedFile*>& files,
            std::vector<std::vector<FunctionDef>> defs,
            std::vector<std::vector<Cfg>> cfgs);

  const std::vector<FunctionUnit>& functions() const { return fns_; }
  const std::vector<CallSite>& sites() const { return sites_; }

  /// Function units defined in `file_index`, as indexes into functions().
  const std::vector<size_t>& functions_in(size_t file_index) const;

  /// Candidate definitions for a call (empty = unresolved/external).
  std::vector<size_t> resolve(const std::string& terminal,
                              const std::string& qualified) const;

  /// Call sites resolving to def `fn` (exact-qualified or bare-name).
  const std::vector<size_t>& callers_of(size_t fn) const;

  /// True if `fn` has at least one known call site and every one of
  /// them is lexically inside a try block.
  bool all_callers_in_try(size_t fn) const;

 private:
  std::vector<FunctionUnit> fns_;
  std::vector<CallSite> sites_;
  std::map<std::string, std::vector<size_t>> by_name_;
  std::map<std::string, std::vector<size_t>> by_qualified_;
  std::map<size_t, std::vector<size_t>> callers_;
  std::vector<std::vector<size_t>> fns_by_file_;
  std::vector<size_t> empty_;
};

/// Build (defs, cfgs) for every file, fanned out over the pool, and
/// hand them to a CallGraph. The shared entry point for every engine
/// that needs the cross-TU graph (typestate, value analysis).
CallGraph build_call_graph(const std::vector<const AnalyzedFile*>& files);

}  // namespace manrs::analyze
