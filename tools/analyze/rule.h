// Rule registry model for manrs_analyze.
//
// Each rule is a small class carrying an id, a severity, a one-line
// rationale, and a fix hint, plus a check() that walks one file's token
// stream. Rules see the world through FileContext: the comment-free
// code view, brace/paren match tables, the per-file (plus included
// headers) declaration index, and the layer configuration. Waivers and
// per-rule allowlists are applied centrally by the analyzer, not by the
// rules themselves.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "analyze/token.h"

namespace manrs::analyze {

struct Finding {
  std::string file;  // repo-relative posix path
  int line = 0;
  int col = 0;
  std::string rule;
  std::string severity;
  std::string message;
  std::string hint;
};

struct RuleInfo {
  const char* id;
  const char* severity;  // "error" | "warning"
  const char* summary;   // one-line rationale (doc/catalog text)
  const char* hint;      // fix hint shown with each finding
};

/// Owned rule metadata: the static token/scope rules plus the
/// protocol-driven typestate rules, merged for --list-rules and the
/// SARIF rules array.
struct CatalogEntry {
  std::string id;
  std::string severity;
  std::string summary;
  std::string hint;
};

class FileContext;

class Rule {
 public:
  virtual ~Rule() = default;
  virtual const RuleInfo& info() const = 0;
  /// Restrict the rule to path prefixes (repo-relative). Default: all.
  virtual bool applies_to(const std::string& rel_path) const {
    (void)rel_path;
    return true;
  }
  virtual void check(const FileContext& ctx,
                     std::vector<Finding>& out) const = 0;
};

/// Every rule the analyzer ships, in catalog order (the 9 rules ported
/// from the regex lint first, then the 4 token/scope-native rules).
std::vector<std::unique_ptr<Rule>> make_all_rules();

/// True if `rel_path` starts with any of the given posix prefixes.
bool path_starts_with(const std::string& rel_path,
                      std::initializer_list<const char*> prefixes);

/// The wire-format parse directories (per-record error boundary scope).
bool in_parse_dirs(const std::string& rel_path);

}  // namespace manrs::analyze
