// manrs_series: sweep the temporal snapshot engine over N days and emit
// the paper's Fig 2 / Fig 6 / Fig 9 series day by day.
//
//   manrs_series [--days N] [--oracle] [--json out.json]
//
// The base snapshot comes from the synthetic scenario generator at the
// scale selected by MANRS_SCALE (tiny / default / large / full); the
// evolution applies the daily-delta churn model (announcement flaps,
// ROA/IRR edits, weekly MANRS membership batches, topology growth) and
// the snapshot engine recomputes each day incrementally. One line per
// day:
//
//   day | Fig 2 participants + member ASes | Fig 6 RPKI saturation
//   (MANRS vs non-MANRS, % of routed v4 space) | Fig 9 mean preference
//   score (RPKI-Valid vs other) | propagation-cache hits / misses /
//   invalidations for that day.
//
// --oracle additionally rebuilds every day from scratch and requires the
// incremental outputs to match byte-for-byte (exit 1 on divergence);
// --json writes the same series as a machine-readable array. Exit codes:
// 1 = oracle divergence, 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness.h"
#include "topogen/evolution.h"
#include "topogen/scenario.h"
#include "util/parallel.h"
#include "util/strings.h"

using namespace manrs;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: manrs_series [--days <n>] [--oracle] "
               "[--json <out.json>]\n");
}

void write_series_json(const std::string& path,
                       const std::vector<benchx::DayOutputs>& outputs,
                       const std::vector<benchx::DayEngineStats>& stats) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "manrs_series: cannot open %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(file, "{\n  \"series\": [\n");
  for (size_t i = 0; i < outputs.size(); ++i) {
    const benchx::DayOutputs& o = outputs[i];
    const benchx::DayEngineStats& s = stats[i];
    std::fprintf(
        file,
        "    {\"day\": %d, \"participants\": %zu, \"member_ases\": %zu, "
        "\"rsat_manrs\": %.4f, \"rsat_non_manrs\": %.4f, "
        "\"preference_valid\": %.4f, \"preference_other\": %.4f, "
        "\"announcements\": %zu, \"conformant\": %zu, "
        "\"unconformant\": %zu, "
        "\"cache\": {\"hits\": %llu, \"misses\": %llu, "
        "\"invalidated\": %llu}}%s\n",
        o.day, o.participants, o.member_ases, o.rsat_manrs, o.rsat_non_manrs,
        o.preference_valid_mean, o.preference_other_mean, o.announcements,
        o.conformant, o.unconformant,
        static_cast<unsigned long long>(s.cache_hits),
        static_cast<unsigned long long>(s.cache_misses),
        static_cast<unsigned long long>(s.cache_invalidated),
        i + 1 < outputs.size() ? "," : "");
  }
  std::fprintf(file, "  ]\n}\n");
  std::fclose(file);
}

}  // namespace

int main(int argc, char** argv) {
  int days = 64;
  bool oracle = false;
  std::string json_path;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "manrs_series: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--days") == 0) {
      const char* raw = need_value("--days");
      auto parsed = util::parse_int<int>(raw);
      if (!parsed || *parsed < 1) {
        std::fprintf(stderr,
                     "manrs_series: invalid day count '%s' "
                     "(need a positive integer)\n",
                     raw);
        return 2;
      }
      days = *parsed;
    } else if (std::strcmp(argv[i], "--oracle") == 0) {
      oracle = true;
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json_path = need_value("--json");
    } else {
      usage();
      return 2;
    }
  }

  const topogen::Scenario scenario =
      topogen::build_scenario(benchx::config_from_env());
  benchx::SnapshotSeries series(scenario);

  std::printf("# %d-day ecosystem evolution, %zu base announcements, "
              "%zu participants\n",
              days, scenario.announcements().size(),
              scenario.manrs.participant_count());
  std::printf("#      |   fig2 size    |  fig6 rpki sat %% |  fig9 preference"
              " |     cache (day)\n");
  std::printf("#  day | partic   ases  |   manrs    other |   valid    other"
              " |  hit  miss  inval\n");

  std::vector<benchx::DayOutputs> outputs;
  std::vector<benchx::DayEngineStats> stats;
  outputs.reserve(static_cast<size_t>(days));
  for (int d = 1; d <= days; ++d) {
    const benchx::DayOutputs& o = series.advance();
    const benchx::DayEngineStats& s = series.last_stats();
    outputs.push_back(o);
    stats.push_back(s);
    std::printf("  %4d | %6zu %6zu  | %7.3f  %7.3f | %7.4f  %7.4f "
                "| %4llu  %4llu  %5llu\n",
                o.day, o.participants, o.member_ases, o.rsat_manrs,
                o.rsat_non_manrs, o.preference_valid_mean,
                o.preference_other_mean,
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.cache_invalidated));
  }

  if (oracle) {
    for (int d = 1; d <= days; ++d) {
      const benchx::DayOutputs cold = series.cold_rebuild(d);
      if (!(cold == outputs[static_cast<size_t>(d - 1)])) {
        std::fprintf(stderr,
                     "manrs_series: day %d diverges from the cold-rebuild "
                     "oracle\n",
                     d);
        return 1;
      }
    }
    std::printf("# oracle: all %d days byte-identical to cold rebuilds\n",
                days);
  }

  if (!json_path.empty()) {
    write_series_json(json_path, outputs, stats);
    std::printf("# wrote %s\n", json_path.c_str());
  }
  return 0;
}
