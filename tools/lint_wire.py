#!/usr/bin/env python3
"""Compatibility shim: the wire lint is now the manrs_analyze binary.

The nine regex rules that lived here were ported onto manrs_analyze's
token stream (tools/analyze/), which also adds the scope-aware rules
regex cannot express. This shim keeps the old CLI contract --
``python3 tools/lint_wire.py [--root DIR] [paths...]``, exit 0 clean /
1 findings / 2 usage -- and execs the binary.

Binary discovery: $MANRS_ANALYZE if set, else the newest
build*/tools/analyze/manrs_analyze under the repo root.
"""

from __future__ import annotations

import os
import sys
from pathlib import Path


def find_binary(root: Path) -> Path | None:
    env = os.environ.get("MANRS_ANALYZE")
    if env:
        path = Path(env)
        return path if path.is_file() else None
    candidates = [
        path
        for path in root.glob("build*/tools/analyze/manrs_analyze")
        if path.is_file() and os.access(path, os.X_OK)
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda p: p.stat().st_mtime)


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    passthrough = []
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--root":
            if not args:
                print("usage: lint_wire.py [--root DIR] [paths...]",
                      file=sys.stderr)
                return 2
            root = Path(args.pop(0)).resolve()
        else:
            passthrough.append(arg)

    binary = find_binary(root)
    if binary is None:
        print(
            "lint_wire.py: manrs_analyze binary not found; build it first\n"
            "  (cmake -B build -S . && cmake --build build "
            "--target manrs_analyze)\n"
            "  or set $MANRS_ANALYZE to the binary path",
            file=sys.stderr,
        )
        return 2

    os.execv(str(binary), [str(binary), "--root", str(root), *passthrough])
    return 2  # unreachable


if __name__ == "__main__":
    sys.exit(main(sys.argv))
