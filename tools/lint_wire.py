#!/usr/bin/env python3
"""Repo-specific wire-safety lint.

Scans first-party C++ sources for patterns that have caused real bugs in
network-data parsers and that the ByteCursor layer (src/util/bytes.h)
exists to replace. Any new violation fails the build (tools/check.sh runs
this). The banned patterns:

  reinterpret-cast   reinterpret_cast anywhere outside the audited
                     byte<->char bridge in src/util/bytes.cpp. Wire
                     decoding must go through ByteCursor, stream I/O
                     through util::read_exact / util::write_bytes.
  unchecked-memcpy   memcpy in parse paths (src/mrt, src/rpki, src/irr,
                     src/netbase). Use ByteCursor::bytes() / ByteBuf.
  throwing-strtox    std::stoi / stol / stoul / stoull / stof / stod:
                     throw on malformed input and silently accept
                     trailing junk. Use util::parse_uint / parse_int /
                     parse_double (strict, optional-returning).
  locale-atox        atoi / atol / atof: undefined behaviour on
                     out-of-range input, no error reporting at all.
  unbounded-copy     strcpy / strcat / sprintf / gets: unbounded writes.
  union-punning      type punning through union member writes in parse
                     code (flagged only in parse dirs, heuristic).
  raw-thread         std::thread / std::jthread / std::async outside
                     src/util/parallel.*. All concurrency flows through
                     util::parallel_for so the determinism contract and
                     TSan coverage of tests/test_parallel*.cpp apply to
                     every parallel code path.
  rib-map            std::map keyed by net::Prefix or bgp::PrefixOrigin
                     outside src/bgp/rib.*. The RIB is a flat sorted
                     vector and hot aggregations use sort-then-scan over
                     flat vectors (docs/performance.md); a prefix-keyed
                     tree map reintroduces the allocation- and
                     cache-miss-heavy pattern the flat RIB replaced.
  std-hash           std::hash<...> named anywhere in src/ outside
                     src/util/det_hash.h and the allowlisted container
                     hasher specializations. std::hash is stdlib-specific,
                     so a hash folded into output bytes (variant buckets,
                     shard keys) silently breaks the "bytes depend only on
                     the seed" contract -- exactly the filter_variant bug.
                     Hash wire bytes with util::fnv1a_* instead; plain
                     unordered containers over project types use their
                     std::hash specializations without naming std::hash.

A line may carry an explicit waiver comment `// lint-ok: <reason>`; the
waiver applies to that line and, for a line containing only the comment,
to the following line. Waivers are expected to be rare and reviewed.

Usage: lint_wire.py [--root DIR] [paths...]
Exit status: 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# Directories scanned by default, relative to the repo root.
DEFAULT_SCAN_DIRS = ["src", "tools"]

# Files allowed to contain reinterpret_cast: the audited aliasing bridge.
REINTERPRET_ALLOWLIST = {
    Path("src/util/bytes.cpp"),
}

# Files allowed to spawn threads: the sanctioned concurrency layer.
THREAD_ALLOWLIST = {
    Path("src/util/parallel.h"),
    Path("src/util/parallel.cpp"),
}

# Files allowed to hold prefix-keyed tree maps: the RIB itself (its flat
# table is the sanctioned representation; the allowlist exists so a
# staged-build implementation detail never forces a waiver comment).
RIB_MAP_ALLOWLIST = {
    Path("src/bgp/rib.h"),
    Path("src/bgp/rib.cpp"),
}

# Files allowed to name std::hash<...>: the deterministic-hash header that
# documents the rule, and the std::hash specializations that make project
# key types usable in unordered containers (in-memory only -- their values
# must never be folded into output bytes).
STD_HASH_ALLOWLIST = {
    Path("src/util/det_hash.h"),
    Path("src/netbase/asn.h"),
    Path("src/netbase/prefix.h"),
    Path("src/bgp/route.h"),
}

# Parse-path directories where memcpy/punning from network data is banned.
PARSE_DIRS = ("src/mrt", "src/rpki", "src/irr", "src/netbase")

CPP_SUFFIXES = {".cpp", ".cc", ".cxx", ".h", ".hpp"}

RULES = [
    (
        "reinterpret-cast",
        re.compile(r"\breinterpret_cast\b"),
        None,  # everywhere (allowlist handled separately)
        "use ByteCursor / util::read_exact / util::as_chars instead",
    ),
    (
        "unchecked-memcpy",
        re.compile(r"\bmemcpy\s*\("),
        PARSE_DIRS,
        "use ByteCursor::bytes() / ByteBuf::bytes() in parse paths",
    ),
    (
        "throwing-strtox",
        re.compile(r"\bstd::sto(i|l|ul|ll|ull|f|d|ld)\b"),
        None,
        "use util::parse_uint / parse_int / parse_double",
    ),
    (
        "locale-atox",
        re.compile(r"(?<![\w:])ato[ifl]\s*\("),
        None,
        "use util::parse_uint / parse_int / parse_double",
    ),
    (
        "unbounded-copy",
        re.compile(r"(?<![\w:])(strcpy|strcat|sprintf|gets)\s*\("),
        None,
        "use bounded/typed formatting (snprintf, std::string)",
    ),
    (
        "union-punning",
        re.compile(r"\bunion\b.*\{"),
        PARSE_DIRS,
        "decode through ByteCursor typed reads, not unions",
    ),
    (
        "raw-thread",
        re.compile(r"\bstd::(thread|jthread|async)\b"),
        None,
        "use util::parallel_for / util::ThreadPool (src/util/parallel.h)",
    ),
    (
        "rib-map",
        re.compile(r"\bstd::map\s*<\s*(net::Prefix|bgp::PrefixOrigin)\b"),
        None,
        "use the flat sorted bgp::Rib / sort-then-scan over a flat vector"
        " (docs/performance.md)",
    ),
    (
        "std-hash",
        re.compile(r"\bstd::hash\s*<"),
        ("src/",),
        "output-facing hashes use util::fnv1a_* (src/util/det_hash.h);"
        " container hashers go through the type's std::hash"
        " specialization implicitly",
    ),
]

WAIVER = re.compile(r"//\s*lint-ok:\s*\S")
LINE_COMMENT = re.compile(r"//.*$")


def strip_strings_and_comments(line: str) -> str:
    """Best-effort removal of string literal contents and // comments so
    that banned identifiers inside text don't trip the scan."""
    out = []
    in_str = None
    i = 0
    while i < len(line):
        c = line[i]
        if in_str:
            if c == "\\":
                i += 2
                continue
            if c == in_str:
                in_str = None
            i += 1
            continue
        if c in "\"'":
            in_str = c
            out.append(c)
            i += 1
            continue
        if c == "/" and line[i : i + 2] == "//":
            break
        out.append(c)
        i += 1
    return "".join(out)


def scan_file(root: Path, path: Path) -> list[str]:
    rel = path.relative_to(root)
    rel_posix = rel.as_posix()
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError as e:
        return [f"{rel_posix}: unreadable: {e}"]

    violations = []
    waiver_next = False
    for lineno, raw in enumerate(text.splitlines(), start=1):
        waived = waiver_next or bool(WAIVER.search(raw))
        # A standalone waiver comment covers the following line.
        waiver_next = bool(WAIVER.search(raw)) and bool(
            raw.strip().startswith("//")
        )
        code = strip_strings_and_comments(raw)
        if not code.strip():
            continue
        for name, pattern, dirs, hint in RULES:
            if dirs is not None and not rel_posix.startswith(dirs):
                continue
            if not pattern.search(code):
                continue
            if name == "reinterpret-cast" and rel in REINTERPRET_ALLOWLIST:
                continue
            if name == "raw-thread" and rel in THREAD_ALLOWLIST:
                continue
            if name == "rib-map" and rel in RIB_MAP_ALLOWLIST:
                continue
            if name == "std-hash" and rel in STD_HASH_ALLOWLIST:
                continue
            if waived:
                continue
            violations.append(
                f"{rel_posix}:{lineno}: [{name}] {raw.strip()}\n"
                f"    hint: {hint}"
            )
    return violations


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: parent of tools/)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to scan (default: {DEFAULT_SCAN_DIRS})",
    )
    args = parser.parse_args(argv)
    root = args.root.resolve()

    targets = [root / p for p in (args.paths or DEFAULT_SCAN_DIRS)]
    files: list[Path] = []
    for target in targets:
        if target.is_file():
            files.append(target)
        elif target.is_dir():
            files.extend(
                p
                for p in sorted(target.rglob("*"))
                if p.suffix in CPP_SUFFIXES and p.is_file()
            )
        else:
            print(f"lint_wire: no such path: {target}", file=sys.stderr)
            return 2

    all_violations: list[str] = []
    for f in files:
        all_violations.extend(scan_file(root, f))

    if all_violations:
        print(f"lint_wire: {len(all_violations)} violation(s):\n")
        print("\n".join(all_violations))
        return 1
    print(f"lint_wire: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
