// mrtcat: print MRT files (TABLE_DUMP_V2 RIB dumps and BGP4MP update
// streams) as text, bgpdump-style.
//
//   mrtcat <file.mrt> [--summary]
//
// Output, one line per (prefix, peer) RIB entry / per update:
//   TABLE_DUMP2|<timestamp>|B|<peer-ip>|<peer-asn>|<prefix>|<as-path>
//   BGP4MP|<timestamp>|A|<peer-ip>|<peer-asn>|<prefix>|<as-path>
//   BGP4MP|<timestamp>|W|<peer-ip>|<peer-asn>|<prefix>
// which matches the classic `bgpdump -m` field layout closely enough for
// downstream scripts.
#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "mrt/bgp4mp.h"
#include "mrt/table_dump.h"
#include "util/bytes.h"

using namespace manrs;

namespace {

struct Summary {
  size_t rib_records = 0;
  size_t rib_entries = 0;
  size_t updates = 0;
  size_t announced = 0;
  size_t withdrawn = 0;
  size_t peers = 0;
  size_t bad = 0;
  size_t skipped = 0;
};

int dump_table(std::istream& in, bool print, Summary& summary) {
  mrt::TableDumpReader reader(in);
  mrt::TableDumpReader::Record record;
  std::vector<mrt::PeerEntry> peers;
  while (reader.next(record)) {
    if (record.peer_index) {
      peers = record.peer_index->peers;
      summary.peers = peers.size();
      continue;
    }
    if (!record.rib) continue;
    ++summary.rib_records;
    for (const auto& entry : record.rib->entries) {
      ++summary.rib_entries;
      if (!print) continue;
      const char* peer_ip = "?";
      std::string peer_ip_str;
      uint32_t peer_asn = 0;
      if (entry.peer_index < peers.size()) {
        peer_ip_str = peers[entry.peer_index].address.to_string();
        peer_ip = peer_ip_str.c_str();
        peer_asn = peers[entry.peer_index].asn.value();
      }
      std::printf("TABLE_DUMP2|%u|B|%s|%u|%s|%s\n", record.header.timestamp,
                  peer_ip, peer_asn, record.rib->prefix.to_string().c_str(),
                  entry.path.to_string().c_str());
    }
  }
  summary.bad += reader.bad_records();
  summary.skipped += reader.skipped_records();
  return 0;
}

int dump_updates(std::istream& in, bool print, Summary& summary) {
  mrt::Bgp4mpReader reader(in);
  mrt::Bgp4mpRecord record;
  while (reader.next(record)) {
    ++summary.updates;
    std::string peer_ip = record.peer_ip.to_string();
    for (const auto& prefix : record.update.announced) {
      ++summary.announced;
      if (print) {
        std::printf("BGP4MP|%u|A|%s|%u|%s|%s\n", record.timestamp,
                    peer_ip.c_str(), record.peer_asn.value(),
                    prefix.to_string().c_str(),
                    record.update.path.to_string().c_str());
      }
    }
    for (const auto& prefix : record.update.withdrawn) {
      ++summary.withdrawn;
      if (print) {
        std::printf("BGP4MP|%u|W|%s|%u|%s\n", record.timestamp,
                    peer_ip.c_str(), record.peer_asn.value(),
                    prefix.to_string().c_str());
      }
    }
  }
  summary.bad += reader.bad_records();
  summary.skipped += reader.skipped_records();
  return 0;
}

/// Peek the first record header to choose a decoder (type 13 = table
/// dump, 16 = BGP4MP).
int detect_type(std::istream& in) {
  std::array<uint8_t, 12> header{};
  if (!util::read_exact(in, header)) return -1;
  util::ByteCursor cursor(header);
  cursor.skip(4);  // timestamp
  uint16_t type = cursor.u16();
  in.seekg(0);
  return type;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: mrtcat <file.mrt> [--summary]\n");
    return 2;
  }
  bool summary_only = argc > 2 && std::strcmp(argv[2], "--summary") == 0;

  std::ifstream in(argv[1], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "mrtcat: cannot open %s\n", argv[1]);
    return 1;
  }
  int type = detect_type(in);
  if (type < 0) {
    std::fprintf(stderr, "mrtcat: %s: not an MRT file\n", argv[1]);
    return 1;
  }

  Summary summary;
  if (type == mrt::kTypeBgp4mp) {
    dump_updates(in, !summary_only, summary);
    if (summary_only) {
      std::printf("%s: BGP4MP stream, %zu updates (%zu announced, %zu "
                  "withdrawn prefixes), %zu skipped, %zu bad\n",
                  argv[1], summary.updates, summary.announced,
                  summary.withdrawn, summary.skipped, summary.bad);
    }
  } else {
    dump_table(in, !summary_only, summary);
    if (summary_only) {
      std::printf("%s: TABLE_DUMP_V2 RIB, %zu peers, %zu prefixes, %zu "
                  "entries, %zu skipped, %zu bad\n",
                  argv[1], summary.peers, summary.rib_records,
                  summary.rib_entries, summary.skipped, summary.bad);
    }
  }
  return summary.bad > 0 ? 3 : 0;
}
