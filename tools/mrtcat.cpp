// mrtcat: print MRT files (TABLE_DUMP_V2 RIB dumps and BGP4MP update
// streams) as text, bgpdump-style.
//
//   mrtcat <file.mrt> [--summary]
//
// Output, one line per (prefix, peer) RIB entry / per update:
//   TABLE_DUMP2|<timestamp>|B|<peer-ip>|<peer-asn>|<prefix>|<as-path>
//   BGP4MP|<timestamp>|A|<peer-ip>|<peer-asn>|<prefix>|<as-path>
//   BGP4MP|<timestamp>|W|<peer-ip>|<peer-asn>|<prefix>
// which matches the classic `bgpdump -m` field layout closely enough for
// downstream scripts.
//
// The file is memory-mapped (util::MappedFile) and decoded in place via
// the zero-copy span readers; nothing is copied through an istream.
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "mrt/bgp4mp.h"
#include "mrt/frame_index.h"
#include "mrt/table_dump.h"
#include "util/bytes.h"
#include "util/mapped_file.h"

using namespace manrs;

namespace {

struct Summary {
  size_t rib_records = 0;
  size_t rib_entries = 0;
  size_t updates = 0;
  size_t announced = 0;
  size_t withdrawn = 0;
  size_t peers = 0;
  size_t bad = 0;
  size_t skipped = 0;
};

int dump_table(std::span<const uint8_t> data, bool print, Summary& summary) {
  mrt::TableDumpScan scan(data);
  mrt::TableDumpReader::Record record;
  std::vector<mrt::PeerEntry> peers;
  while (scan.next(record)) {
    if (record.peer_index) {
      peers = record.peer_index->peers;
      summary.peers = peers.size();
      continue;
    }
    if (!record.rib) continue;
    ++summary.rib_records;
    for (const auto& entry : record.rib->entries) {
      ++summary.rib_entries;
      if (!print) continue;
      const char* peer_ip = "?";
      std::string peer_ip_str;
      uint32_t peer_asn = 0;
      if (entry.peer_index < peers.size()) {
        peer_ip_str = peers[entry.peer_index].address.to_string();
        peer_ip = peer_ip_str.c_str();
        peer_asn = peers[entry.peer_index].asn.value();
      }
      std::printf("TABLE_DUMP2|%u|B|%s|%u|%s|%s\n", record.header.timestamp,
                  peer_ip, peer_asn, record.rib->prefix.to_string().c_str(),
                  entry.path.to_string().c_str());
    }
  }
  summary.bad += scan.bad_records();
  summary.skipped += scan.skipped_records();
  return 0;
}

int dump_updates(std::span<const uint8_t> data, bool print,
                 Summary& summary) {
  mrt::UpdateStreamReader reader(data);
  mrt::Bgp4mpRecord record;
  while (reader.next(record)) {
    ++summary.updates;
    std::string peer_ip = record.peer_ip.to_string();
    for (const auto& prefix : record.update.announced) {
      ++summary.announced;
      if (print) {
        std::printf("BGP4MP|%u|A|%s|%u|%s|%s\n", record.timestamp,
                    peer_ip.c_str(), record.peer_asn.value(),
                    prefix.to_string().c_str(),
                    record.update.path.to_string().c_str());
      }
    }
    for (const auto& prefix : record.update.withdrawn) {
      ++summary.withdrawn;
      if (print) {
        std::printf("BGP4MP|%u|W|%s|%u|%s\n", record.timestamp,
                    peer_ip.c_str(), record.peer_asn.value(),
                    prefix.to_string().c_str());
      }
    }
  }
  summary.bad += reader.bad_records();
  summary.skipped += reader.skipped_records();
  return 0;
}

/// Peek the first record header to choose a decoder (type 13 = table
/// dump, 16 = BGP4MP).
int detect_type(std::span<const uint8_t> data) {
  util::ByteCursor cursor(data);
  if (!cursor.can_read(12)) return -1;
  cursor.skip(4);  // timestamp
  return cursor.u16();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: mrtcat <file.mrt> [--summary]\n");
    return 2;
  }
  bool summary_only = argc > 2 && std::strcmp(argv[2], "--summary") == 0;

  util::MappedFile file;
  if (!file.open(argv[1])) {
    std::fprintf(stderr, "mrtcat: cannot open %s\n", argv[1]);
    return 1;
  }
  int type = detect_type(file.bytes());
  if (type < 0) {
    std::fprintf(stderr, "mrtcat: %s: not an MRT file\n", argv[1]);
    return 1;
  }

  Summary summary;
  if (type == mrt::kTypeBgp4mp) {
    dump_updates(file.bytes(), !summary_only, summary);
    if (summary_only) {
      std::printf("%s: BGP4MP stream, %zu updates (%zu announced, %zu "
                  "withdrawn prefixes), %zu skipped, %zu bad\n",
                  argv[1], summary.updates, summary.announced,
                  summary.withdrawn, summary.skipped, summary.bad);
    }
  } else {
    dump_table(file.bytes(), !summary_only, summary);
    if (summary_only) {
      std::printf("%s: TABLE_DUMP_V2 RIB, %zu peers, %zu prefixes, %zu "
                  "entries, %zu skipped, %zu bad\n",
                  argv[1], summary.peers, summary.rib_records,
                  summary.rib_entries, summary.skipped, summary.bad);
    }
  }
  return summary.bad > 0 ? 3 : 0;
}
