// manrs_validate: classify routes against RPKI and IRR data from files,
// and score MANRS Action 4 conformance per origin AS.
//
//   manrs_validate --vrps vrps.csv [--irr dump.db]... [--routes pfx2as.txt]
//
// Inputs use the real-world formats (RIPE validated-ROA CSV, RPSL dumps,
// CAIDA pfx2as); without --routes, routes are read from stdin as
// "<prefix> <asn>" lines. Output, one line per route:
//
//   <prefix> <origin> rpki=<status> irr=<status> manrs=<class>
//
// followed by a per-AS conformance table. This is the operator-facing
// half of the paper's pipeline with no synthetic data involved.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "astopo/prefix2as.h"
#include "core/conformance.h"
#include "irr/database.h"
#include "irr/validation.h"
#include "rpki/archive.h"
#include "rpki/validation.h"
#include "util/strings.h"

using namespace manrs;

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: manrs_validate --vrps <vrps.csv> [--irr <dump.db>]... "
               "[--routes <pfx2as.txt>] [--threshold <pct>]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string vrps_path;
  std::vector<std::string> irr_paths;
  std::string routes_path;
  double threshold = core::kIspAction4Threshold;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "manrs_validate: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--vrps") == 0) {
      vrps_path = need_value("--vrps");
    } else if (std::strcmp(argv[i], "--irr") == 0) {
      irr_paths.emplace_back(need_value("--irr"));
    } else if (std::strcmp(argv[i], "--routes") == 0) {
      routes_path = need_value("--routes");
    } else if (std::strcmp(argv[i], "--threshold") == 0) {
      const char* raw = need_value("--threshold");
      auto parsed = util::parse_double(raw);
      if (!parsed || *parsed < 0.0 || *parsed > 100.0) {
        std::fprintf(stderr,
                     "manrs_validate: invalid threshold '%s' "
                     "(need a percentage in [0, 100])\n",
                     raw);
        return 2;
      }
      threshold = *parsed;
    } else {
      usage();
      return 2;
    }
  }
  if (vrps_path.empty() && irr_paths.empty()) {
    usage();
    return 2;
  }

  // Load VRPs.
  rpki::VrpStore vrps;
  if (!vrps_path.empty()) {
    std::ifstream in(vrps_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", vrps_path.c_str());
      return 1;
    }
    rpki::VrpCsvStats stats;
    auto loaded = rpki::read_vrp_csv(in, stats);
    if (loaded.empty() && stats.skipped > 0) {
      std::fprintf(stderr,
                   "manrs_validate: %s: no valid VRP rows (%zu rows "
                   "rejected; first error: %s)\n",
                   vrps_path.c_str(), stats.skipped,
                   stats.first_error.c_str());
      return 1;
    }
    vrps.add_all(loaded);
    std::fprintf(stderr, "loaded %zu VRPs from %s (%zu rows skipped)\n",
                 loaded.size(), vrps_path.c_str(), stats.skipped);
  }

  // Load IRR dumps (each file becomes one registry source; the file stem
  // is the source name).
  irr::IrrRegistry registry;
  for (const std::string& path : irr_paths) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::string name = path;
    if (auto pos = name.find_last_of('/'); pos != std::string::npos) {
      name = name.substr(pos + 1);
    }
    auto& db = registry.add_database(name, /*authoritative=*/false);
    size_t malformed = 0;
    size_t objects = db.load_rpsl(in, &malformed);
    std::fprintf(stderr,
                 "loaded %zu objects from %s (%zu malformed lines)\n",
                 objects, path.c_str(), malformed);
  }

  // Routes: pfx2as file or stdin lines.
  astopo::Prefix2As routes;
  if (!routes_path.empty()) {
    std::ifstream in(routes_path);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", routes_path.c_str());
      return 1;
    }
    size_t bad = 0;
    routes = astopo::read_prefix2as(in, &bad);
    if (bad > 0) {
      std::fprintf(stderr, "%zu malformed route lines skipped\n", bad);
    }
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      auto fields = util::split_ws(line);
      if (fields.size() < 2) continue;
      auto prefix = net::Prefix::parse(fields[0]);
      auto asn = net::Asn::parse(fields[1]);
      if (prefix && asn) {
        routes.push_back({*prefix, *asn});
      } else {
        std::fprintf(stderr, "skipping malformed line: %s\n", line.c_str());
      }
    }
  }

  // Classify.
  struct AsAccumulator {
    size_t total = 0;
    size_t conformant = 0;
  };
  std::map<uint32_t, AsAccumulator> per_as;
  for (const auto& route : routes) {
    rpki::RpkiStatus rpki = vrps.validate(route.prefix, route.origin);
    irr::IrrStatus irr = irr::validate_route(registry, route.prefix,
                                             route.origin);
    core::ConformanceClass cls = core::classify_conformance(rpki, irr);
    const char* cls_name =
        cls == core::ConformanceClass::kConformant
            ? "conformant"
            : (cls == core::ConformanceClass::kUnconformant
                   ? "UNCONFORMANT"
                   : "unregistered");
    std::printf("%-24s %-10s rpki=%-13s irr=%-13s manrs=%s\n",
                route.prefix.to_string().c_str(),
                route.origin.to_string().c_str(),
                std::string(rpki::to_string(rpki)).c_str(),
                std::string(irr::to_string(irr)).c_str(), cls_name);
    AsAccumulator& acc = per_as[route.origin.value()];
    ++acc.total;
    if (cls == core::ConformanceClass::kConformant) ++acc.conformant;
  }

  if (!per_as.empty()) {
    std::printf("\nper-AS MANRS Action 4 summary (threshold %.0f%%):\n",
                threshold);
    for (const auto& [asn, acc] : per_as) {
      double pct = acc.total
                       ? 100.0 * static_cast<double>(acc.conformant) /
                             static_cast<double>(acc.total)
                       : 0.0;
      std::printf("  AS%-10u %4zu/%-4zu conformant (%5.1f%%)  %s\n", asn,
                  acc.conformant, acc.total, pct,
                  pct >= threshold ? "PASS" : "FAIL");
    }
  }
  return 0;
}
