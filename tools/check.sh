#!/usr/bin/env bash
# Single-entry-point static-analysis + test gate, usable as CI:
#
#   1. configure + build with ASan+UBSan, warnings-as-errors
#   2. run the full ctest suite (including the malformed-input fuzz
#      corpus) under the sanitizers
#   3. repeat the golden + propagation oracle/cache-equality +
#      batched-lane-equality + streaming-ingest + snapshot-series
#      tests across the MANRS_THREADS x MANRS_GRAIN environment matrix
#      (byte-equality at every combination), then the ingest goldens
#      once more under ASan with explicit emphasis
#      (MrtIngest/UpdateStream: block-scan stitching, mmap decode,
#      update-stream folding), then a series-smoke stage (manrs_series
#      sweeping the temporal snapshot engine at tiny scale with every
#      day oracle-checked against cold rebuilds)
#   4. TSan build + run of the parallel-pipeline tests (thread pool,
#      the serial-vs-parallel golden tests, the sharded RIB merge, the
#      propagation oracle, cache-equality, batched-lane, and
#      streaming-ingest frame-scan/decode tests) --
#      once at defaults and once at MANRS_GRAIN=1 -- plus perf_pipeline
#      smoke runs at MANRS_SCALE=tiny (TSan) and MANRS_SCALE=large
#      (sanitize build; skip with SMOKE_LARGE=0) (skip TSan with
#      TSAN=0)
#   5. clang-tidy over the full tree (src, tools, bench, tests) against
#      the sanitize build's compile_commands.json (skipped with a
#      warning if not installed)
#   6. manrs_analyze (tools/analyze/): the repo's own flow-aware
#      analyzer -- fails on any unwaived finding, writes a SARIF
#      artifact to out/analyze.sarif, self-checks its own sources,
#      sanity-checks the value layer (cursor-width / lockset-race /
#      unused-waiver must fire on the fixture corpus), verifies the
#      incremental cache (warm re-scan byte-identical to the cold
#      scan, timings + lattice version appended to
#      BENCH_analyze.json), runs the baseline diff gate, and
#      exercises the legacy tools/lint_wire.py entry point as a shim
#      over the same binary
#
# Exit 0 iff every stage that could run passed. See
# docs/static-analysis.md for the policy behind each stage.
#
# Env knobs:
#   BUILD_DIR       sanitizer build directory (default: build-sanitize)
#   SANITIZE        sanitizer set (default: address,undefined; use thread
#                   for a TSan pass of the whole suite)
#   TSAN_BUILD_DIR  TSan build directory (default: build-tsan)
#   TSAN            set to 0 to skip the dedicated TSan parallel-test stage
#   SMOKE_LARGE     set to 0 to skip the MANRS_SCALE=large pipeline smoke
#   JOBS            parallelism (default: nproc)

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo_root"

BUILD_DIR="${BUILD_DIR:-build-sanitize}"
SANITIZE="${SANITIZE:-address,undefined}"
JOBS="${JOBS:-$(nproc)}"

step() { printf '\n== %s ==\n' "$*"; }

step "configure + build (SANITIZE=$SANITIZE)"
cmake -B "$BUILD_DIR" -S . -DSANITIZE="$SANITIZE" \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
cmake --build "$BUILD_DIR" -j "$JOBS"

step "ctest under sanitizers"
# abort_on_error makes any ASan report fail the test immediately;
# detect_leaks stays on by default with ASan.
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"

step "thread x grain golden matrix"
# Repeat the serial-vs-parallel golden tests plus the propagation
# oracle / cache-equality tests through the environment: every
# MANRS_THREADS x MANRS_GRAIN combination must be byte-identical (the
# tests compare against an in-process serial golden or the naive
# reference oracle). This also exercises the env parsing / pool
# construction paths the in-test set_thread_count / set_grain
# overrides bypass, and the cache under every pool shape.
for matrix_threads in 2 4; do
  for matrix_grain in 1 64; do
    echo "-- MANRS_THREADS=$matrix_threads MANRS_GRAIN=$matrix_grain"
    MANRS_THREADS="$matrix_threads" MANRS_GRAIN="$matrix_grain" \
    ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}" \
    UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
      ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
        -R 'ParallelGolden|PropagationOracle|PropagationCache|PropagationBatch|MrtIngest|UpdateStream|SnapshotSeries|DeltaOracle'
  done
done

step "ingest goldens under ASan (mmap + block-parallel scan + fold)"
# The streaming-ingest goldens are the memory-safety hot spot of the MRT
# path: zero-copy spans into a mapping, speculative block anchors probing
# arbitrary offsets, and in-place body decode. Run the MrtIngest /
# UpdateStream suites on their own under ASan so a regression here fails
# with an ingest-named stage, not buried in the full suite.
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
    -R 'MrtIngest|UpdateStream'

step "series-smoke (manrs_series, tiny scale, oracle-checked)"
# The temporal snapshot engine end to end under ASan: a 12-day sweep of
# the daily-delta evolution, every day's outputs byte-checked against an
# independent cold rebuild (--oracle), Fig 2/6/9 series on stdout.
MANRS_SCALE=tiny \
ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}" \
UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
  "./$BUILD_DIR/tools/manrs_series" --days 12 --oracle

if [[ "${TSAN:-1}" != "0" && "$SANITIZE" != "thread" ]]; then
  TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"

  step "TSan: build parallel-pipeline tests"
  cmake -B "$TSAN_BUILD_DIR" -S . -DSANITIZE=thread
  cmake --build "$TSAN_BUILD_DIR" -j "$JOBS" \
    --target tests_util tests_integration tests_bgp_mrt tests_series \
    perf_pipeline

  step "TSan: parallel + golden + propagation cache tests"
  # The pool, env-parsing, and shutdown tests plus the serial-vs-parallel
  # golden equality tests (including the sharded flat-RIB merge) and the
  # propagation oracle / cache / batched-lane tests (concurrent lazy mask
  # build, cache insert/lookup under the pool, and the batched front
  # end's thread-local workspaces + locked install); TSan halts on the
  # first race.
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
      -R 'Parallel|ThreadPool|PropagationOracle|PropagationCache|PropagationBatch|MrtIngest|UpdateStream|SnapshotSeries|DeltaOracle'

  step "TSan: golden + cache tests at MANRS_GRAIN=1 (max chunk handoff)"
  # Grain 1 maximises work-counter contention, cross-thread row handoffs
  # in the sharded merge, and propagation-cache insert/lookup
  # interleavings -- the worst case for races.
  MANRS_THREADS=4 MANRS_GRAIN=1 \
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    ctest --test-dir "$TSAN_BUILD_DIR" --output-on-failure -j "$JOBS" \
      -R 'ParallelGolden|PropagationOracle|PropagationCache|PropagationBatch|MrtIngest|UpdateStream|SnapshotSeries|DeltaOracle'

  step "TSan: perf_pipeline smoke (MANRS_SCALE=tiny)"
  # MANRS_SERIES_DAYS caps the snapshot_series stage (default 64 days)
  # so the TSan smoke stays bounded; 16 days still crosses two weekly
  # membership batches.
  MANRS_SCALE=tiny \
  MANRS_SERIES_DAYS=16 \
  MANRS_BENCH_JSON="$TSAN_BUILD_DIR/BENCH_pipeline.smoke.json" \
  TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
    "./$TSAN_BUILD_DIR/bench/perf_pipeline"
fi

if [[ "${SMOKE_LARGE:-1}" != "0" ]]; then
  step "perf_pipeline smoke (MANRS_SCALE=large, sanitize build)"
  # The ROADMAP's "large run finishes at all" gate: the full pipeline at
  # the large preset (~3x default ASes), JSON into the build tree so the
  # repo's BENCH_pipeline.json only accumulates deliberate runs. Same
  # invocation as the smoke_large CMake target, but under ASan+UBSan.
  MANRS_SCALE=large \
  MANRS_SERIES_DAYS=8 \
  MANRS_BENCH_JSON="$BUILD_DIR/BENCH_smoke_large.json" \
  ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}" \
    "./$BUILD_DIR/bench/perf_pipeline"
fi

step "clang-tidy (full tree)"
if command -v clang-tidy >/dev/null 2>&1; then
  # Every first-party .cpp with an entry in the sanitize build's
  # compile_commands.json, including tools/analyze/; the fixture corpus
  # is deliberately broken and never compiled, so it is excluded.
  mapfile -t tidy_sources < <(find src tools bench tests -name '*.cpp' \
    -not -path 'tests/analyze_fixtures/*' | sort)
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "${tidy_sources[@]}"
  else
    clang-tidy -p "$BUILD_DIR" --quiet "${tidy_sources[@]}"
  fi
else
  echo "warning: clang-tidy not installed; skipping (install it to run" \
       "the checked-in .clang-tidy profile)" >&2
fi

step "analyze (manrs_analyze)"
analyze_bin="$BUILD_DIR/tools/analyze/manrs_analyze"
if [[ ! -x "$analyze_bin" ]]; then
  cmake --build "$BUILD_DIR" -j "$JOBS" --target manrs_analyze
fi
mkdir -p out
# Fails (exit 1) on any unwaived finding across src tools bench tests;
# the SARIF artifact is the CI-consumable report.
"$analyze_bin" --root "$repo_root" --sarif out/analyze.sarif

step "analyze: self-check (tools/analyze over itself)"
"$analyze_bin" --root "$repo_root" tools/analyze

step "analyze: value layer (fixture corpus sanity)"
# The interval/lockset tier must keep firing on the fixture corpus: a
# silent engine regression would otherwise only show as "repo still
# clean". Exit 1 is expected (the corpus is deliberately broken).
fixtures_json=$("$analyze_bin" --root "$repo_root/tests/analyze_fixtures/tree" \
  --json || true)
for rule in cursor-width lockset-race unused-waiver; do
  grep -q "\"rule\":\"$rule\"" <<<"$fixtures_json" || {
    echo "value-layer rule never fired on fixtures: $rule" >&2; exit 1; }
done
echo "-- cursor-width, lockset-race, unused-waiver all fire on fixtures"

step "analyze: incremental cache (cold vs warm scan)"
# Two cached scans from a cold cache: the warm re-scan must reproduce
# the SARIF byte for byte and hit the cache for every file. Wall times
# for both runs accumulate in BENCH_analyze.json (runs[] is append-only,
# like BENCH_pipeline.json).
rm -rf "$BUILD_DIR/analyze-cache"
"$analyze_bin" --root "$repo_root" --cache-dir "$BUILD_DIR/analyze-cache" \
  --sarif out/analyze.cold.sarif --stats-json BENCH_analyze.json
"$analyze_bin" --root "$repo_root" --cache-dir "$BUILD_DIR/analyze-cache" \
  --sarif out/analyze.warm.sarif --stats-json BENCH_analyze.json \
  --json > out/analyze.warm.json
cmp out/analyze.cold.sarif out/analyze.warm.sarif
grep -q '"cache_misses":0' out/analyze.warm.json
echo "-- warm scan byte-identical, all cache hits"

step "analyze: baseline gate (no new findings vs out/analyze.sarif)"
# The diff mode must pass against the scan's own baseline; CI jobs can
# point --baseline at a committed out/analyze-baseline.sarif instead to
# gate PRs on net-new findings only.
"$analyze_bin" --root "$repo_root" --baseline out/analyze.sarif --fail-on-new

step "analyze: lint_wire.py shim contract"
MANRS_ANALYZE="$analyze_bin" python3 tools/lint_wire.py

step "all checks passed"
