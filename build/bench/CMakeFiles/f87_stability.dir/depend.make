# Empty dependencies file for f87_stability.
# This may be replaced when dependencies are built.
