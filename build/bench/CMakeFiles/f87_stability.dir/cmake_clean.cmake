file(REMOVE_RECURSE
  "CMakeFiles/f87_stability.dir/f87_stability.cpp.o"
  "CMakeFiles/f87_stability.dir/f87_stability.cpp.o.d"
  "f87_stability"
  "f87_stability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f87_stability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
