file(REMOVE_RECURSE
  "CMakeFiles/table2_action1.dir/table2_action1.cpp.o"
  "CMakeFiles/table2_action1.dir/table2_action1.cpp.o.d"
  "table2_action1"
  "table2_action1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_action1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
