# Empty dependencies file for fig07_filtering.
# This may be replaced when dependencies are built.
