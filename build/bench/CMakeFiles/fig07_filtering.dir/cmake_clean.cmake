file(REMOVE_RECURSE
  "CMakeFiles/fig07_filtering.dir/fig07_filtering.cpp.o"
  "CMakeFiles/fig07_filtering.dir/fig07_filtering.cpp.o.d"
  "fig07_filtering"
  "fig07_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
