file(REMOVE_RECURSE
  "CMakeFiles/ext_action3.dir/ext_action3.cpp.o"
  "CMakeFiles/ext_action3.dir/ext_action3.cpp.o.d"
  "ext_action3"
  "ext_action3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_action3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
