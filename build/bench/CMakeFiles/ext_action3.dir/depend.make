# Empty dependencies file for ext_action3.
# This may be replaced when dependencies are built.
