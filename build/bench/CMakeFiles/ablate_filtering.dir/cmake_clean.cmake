file(REMOVE_RECURSE
  "CMakeFiles/ablate_filtering.dir/ablate_filtering.cpp.o"
  "CMakeFiles/ablate_filtering.dir/ablate_filtering.cpp.o.d"
  "ablate_filtering"
  "ablate_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
