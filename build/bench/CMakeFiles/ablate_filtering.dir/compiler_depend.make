# Empty compiler generated dependencies file for ablate_filtering.
# This may be replaced when dependencies are built.
