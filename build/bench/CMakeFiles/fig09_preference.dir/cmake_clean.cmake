file(REMOVE_RECURSE
  "CMakeFiles/fig09_preference.dir/fig09_preference.cpp.o"
  "CMakeFiles/fig09_preference.dir/fig09_preference.cpp.o.d"
  "fig09_preference"
  "fig09_preference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_preference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
