# Empty compiler generated dependencies file for fig09_preference.
# This may be replaced when dependencies are built.
