file(REMOVE_RECURSE
  "CMakeFiles/fig04_geography.dir/fig04_geography.cpp.o"
  "CMakeFiles/fig04_geography.dir/fig04_geography.cpp.o.d"
  "fig04_geography"
  "fig04_geography.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_geography.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
