# Empty compiler generated dependencies file for fig04_geography.
# This may be replaced when dependencies are built.
