file(REMOVE_RECURSE
  "CMakeFiles/ext_incidents.dir/ext_incidents.cpp.o"
  "CMakeFiles/ext_incidents.dir/ext_incidents.cpp.o.d"
  "ext_incidents"
  "ext_incidents.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_incidents.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
