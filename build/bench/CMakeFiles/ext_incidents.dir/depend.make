# Empty dependencies file for ext_incidents.
# This may be replaced when dependencies are built.
