file(REMOVE_RECURSE
  "CMakeFiles/fig06_saturation.dir/fig06_saturation.cpp.o"
  "CMakeFiles/fig06_saturation.dir/fig06_saturation.cpp.o.d"
  "fig06_saturation"
  "fig06_saturation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_saturation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
