# Empty compiler generated dependencies file for fig06_saturation.
# This may be replaced when dependencies are built.
