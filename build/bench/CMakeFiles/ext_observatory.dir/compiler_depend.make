# Empty compiler generated dependencies file for ext_observatory.
# This may be replaced when dependencies are built.
