file(REMOVE_RECURSE
  "CMakeFiles/ext_observatory.dir/ext_observatory.cpp.o"
  "CMakeFiles/ext_observatory.dir/ext_observatory.cpp.o.d"
  "ext_observatory"
  "ext_observatory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_observatory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
