file(REMOVE_RECURSE
  "CMakeFiles/ablate_irr_maxlen.dir/ablate_irr_maxlen.cpp.o"
  "CMakeFiles/ablate_irr_maxlen.dir/ablate_irr_maxlen.cpp.o.d"
  "ablate_irr_maxlen"
  "ablate_irr_maxlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_irr_maxlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
