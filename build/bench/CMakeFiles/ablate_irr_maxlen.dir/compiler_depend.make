# Empty compiler generated dependencies file for ablate_irr_maxlen.
# This may be replaced when dependencies are built.
