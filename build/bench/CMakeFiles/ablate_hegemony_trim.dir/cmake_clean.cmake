file(REMOVE_RECURSE
  "CMakeFiles/ablate_hegemony_trim.dir/ablate_hegemony_trim.cpp.o"
  "CMakeFiles/ablate_hegemony_trim.dir/ablate_hegemony_trim.cpp.o.d"
  "ablate_hegemony_trim"
  "ablate_hegemony_trim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_hegemony_trim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
