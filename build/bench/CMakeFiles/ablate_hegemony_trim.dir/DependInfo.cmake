
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablate_hegemony_trim.cpp" "bench/CMakeFiles/ablate_hegemony_trim.dir/ablate_hegemony_trim.cpp.o" "gcc" "bench/CMakeFiles/ablate_hegemony_trim.dir/ablate_hegemony_trim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topogen/CMakeFiles/manrs_topogen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/manrs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ihr/CMakeFiles/manrs_ihr.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/manrs_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/irr/CMakeFiles/manrs_irr.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/manrs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/astopo/CMakeFiles/manrs_astopo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/manrs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/manrs_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
