# Empty dependencies file for ablate_hegemony_trim.
# This may be replaced when dependencies are built.
