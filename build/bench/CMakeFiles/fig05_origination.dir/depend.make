# Empty dependencies file for fig05_origination.
# This may be replaced when dependencies are built.
