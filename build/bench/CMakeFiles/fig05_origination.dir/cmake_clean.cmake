file(REMOVE_RECURSE
  "CMakeFiles/fig05_origination.dir/fig05_origination.cpp.o"
  "CMakeFiles/fig05_origination.dir/fig05_origination.cpp.o.d"
  "fig05_origination"
  "fig05_origination.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_origination.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
