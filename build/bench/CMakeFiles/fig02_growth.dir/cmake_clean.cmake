file(REMOVE_RECURSE
  "CMakeFiles/fig02_growth.dir/fig02_growth.cpp.o"
  "CMakeFiles/fig02_growth.dir/fig02_growth.cpp.o.d"
  "fig02_growth"
  "fig02_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
