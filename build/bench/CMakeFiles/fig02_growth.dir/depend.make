# Empty dependencies file for fig02_growth.
# This may be replaced when dependencies are built.
