# Empty compiler generated dependencies file for table1_casestudies.
# This may be replaced when dependencies are built.
