file(REMOVE_RECURSE
  "CMakeFiles/table1_casestudies.dir/table1_casestudies.cpp.o"
  "CMakeFiles/table1_casestudies.dir/table1_casestudies.cpp.o.d"
  "table1_casestudies"
  "table1_casestudies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_casestudies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
