# Empty dependencies file for f70_completeness.
# This may be replaced when dependencies are built.
