file(REMOVE_RECURSE
  "CMakeFiles/f70_completeness.dir/f70_completeness.cpp.o"
  "CMakeFiles/f70_completeness.dir/f70_completeness.cpp.o.d"
  "f70_completeness"
  "f70_completeness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f70_completeness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
