# Empty compiler generated dependencies file for f83_action4_conformance.
# This may be replaced when dependencies are built.
