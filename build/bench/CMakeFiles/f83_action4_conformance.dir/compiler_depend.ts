# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for f83_action4_conformance.
