file(REMOVE_RECURSE
  "CMakeFiles/f83_action4_conformance.dir/f83_action4_conformance.cpp.o"
  "CMakeFiles/f83_action4_conformance.dir/f83_action4_conformance.cpp.o.d"
  "f83_action4_conformance"
  "f83_action4_conformance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/f83_action4_conformance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
