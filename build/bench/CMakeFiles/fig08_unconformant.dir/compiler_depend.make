# Empty compiler generated dependencies file for fig08_unconformant.
# This may be replaced when dependencies are built.
