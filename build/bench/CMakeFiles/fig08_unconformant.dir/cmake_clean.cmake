file(REMOVE_RECURSE
  "CMakeFiles/fig08_unconformant.dir/fig08_unconformant.cpp.o"
  "CMakeFiles/fig08_unconformant.dir/fig08_unconformant.cpp.o.d"
  "fig08_unconformant"
  "fig08_unconformant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_unconformant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
