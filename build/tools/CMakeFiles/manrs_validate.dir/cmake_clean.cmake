file(REMOVE_RECURSE
  "CMakeFiles/manrs_validate.dir/manrs_validate.cpp.o"
  "CMakeFiles/manrs_validate.dir/manrs_validate.cpp.o.d"
  "manrs_validate"
  "manrs_validate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_validate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
