# Empty compiler generated dependencies file for manrs_validate.
# This may be replaced when dependencies are built.
