# Empty dependencies file for mrtcat.
# This may be replaced when dependencies are built.
