file(REMOVE_RECURSE
  "CMakeFiles/mrtcat.dir/mrtcat.cpp.o"
  "CMakeFiles/mrtcat.dir/mrtcat.cpp.o.d"
  "mrtcat"
  "mrtcat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrtcat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
