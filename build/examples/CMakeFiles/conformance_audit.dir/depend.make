# Empty dependencies file for conformance_audit.
# This may be replaced when dependencies are built.
