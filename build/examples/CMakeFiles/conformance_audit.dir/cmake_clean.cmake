file(REMOVE_RECURSE
  "CMakeFiles/conformance_audit.dir/conformance_audit.cpp.o"
  "CMakeFiles/conformance_audit.dir/conformance_audit.cpp.o.d"
  "conformance_audit"
  "conformance_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
