file(REMOVE_RECURSE
  "CMakeFiles/hijack_simulation.dir/hijack_simulation.cpp.o"
  "CMakeFiles/hijack_simulation.dir/hijack_simulation.cpp.o.d"
  "hijack_simulation"
  "hijack_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hijack_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
