# Empty compiler generated dependencies file for hijack_simulation.
# This may be replaced when dependencies are built.
