file(REMOVE_RECURSE
  "CMakeFiles/irr_tools.dir/irr_tools.cpp.o"
  "CMakeFiles/irr_tools.dir/irr_tools.cpp.o.d"
  "irr_tools"
  "irr_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/irr_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
