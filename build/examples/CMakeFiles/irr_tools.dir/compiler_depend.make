# Empty compiler generated dependencies file for irr_tools.
# This may be replaced when dependencies are built.
