file(REMOVE_RECURSE
  "CMakeFiles/manrs_irr.dir/database.cpp.o"
  "CMakeFiles/manrs_irr.dir/database.cpp.o.d"
  "CMakeFiles/manrs_irr.dir/objects.cpp.o"
  "CMakeFiles/manrs_irr.dir/objects.cpp.o.d"
  "CMakeFiles/manrs_irr.dir/rpsl.cpp.o"
  "CMakeFiles/manrs_irr.dir/rpsl.cpp.o.d"
  "CMakeFiles/manrs_irr.dir/validation.cpp.o"
  "CMakeFiles/manrs_irr.dir/validation.cpp.o.d"
  "libmanrs_irr.a"
  "libmanrs_irr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_irr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
