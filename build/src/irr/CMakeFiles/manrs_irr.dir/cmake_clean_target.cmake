file(REMOVE_RECURSE
  "libmanrs_irr.a"
)
