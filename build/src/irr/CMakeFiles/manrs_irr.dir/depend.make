# Empty dependencies file for manrs_irr.
# This may be replaced when dependencies are built.
