# Empty dependencies file for manrs_astopo.
# This may be replaced when dependencies are built.
