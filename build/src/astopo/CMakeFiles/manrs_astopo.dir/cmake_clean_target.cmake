file(REMOVE_RECURSE
  "libmanrs_astopo.a"
)
