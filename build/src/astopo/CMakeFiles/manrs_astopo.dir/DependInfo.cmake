
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/astopo/as2org.cpp" "src/astopo/CMakeFiles/manrs_astopo.dir/as2org.cpp.o" "gcc" "src/astopo/CMakeFiles/manrs_astopo.dir/as2org.cpp.o.d"
  "/root/repo/src/astopo/asrank.cpp" "src/astopo/CMakeFiles/manrs_astopo.dir/asrank.cpp.o" "gcc" "src/astopo/CMakeFiles/manrs_astopo.dir/asrank.cpp.o.d"
  "/root/repo/src/astopo/graph.cpp" "src/astopo/CMakeFiles/manrs_astopo.dir/graph.cpp.o" "gcc" "src/astopo/CMakeFiles/manrs_astopo.dir/graph.cpp.o.d"
  "/root/repo/src/astopo/prefix2as.cpp" "src/astopo/CMakeFiles/manrs_astopo.dir/prefix2as.cpp.o" "gcc" "src/astopo/CMakeFiles/manrs_astopo.dir/prefix2as.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/manrs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/manrs_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
