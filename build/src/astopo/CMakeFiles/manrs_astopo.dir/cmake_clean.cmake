file(REMOVE_RECURSE
  "CMakeFiles/manrs_astopo.dir/as2org.cpp.o"
  "CMakeFiles/manrs_astopo.dir/as2org.cpp.o.d"
  "CMakeFiles/manrs_astopo.dir/asrank.cpp.o"
  "CMakeFiles/manrs_astopo.dir/asrank.cpp.o.d"
  "CMakeFiles/manrs_astopo.dir/graph.cpp.o"
  "CMakeFiles/manrs_astopo.dir/graph.cpp.o.d"
  "CMakeFiles/manrs_astopo.dir/prefix2as.cpp.o"
  "CMakeFiles/manrs_astopo.dir/prefix2as.cpp.o.d"
  "libmanrs_astopo.a"
  "libmanrs_astopo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_astopo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
