# Empty dependencies file for manrs_rpki.
# This may be replaced when dependencies are built.
