file(REMOVE_RECURSE
  "CMakeFiles/manrs_rpki.dir/archive.cpp.o"
  "CMakeFiles/manrs_rpki.dir/archive.cpp.o.d"
  "CMakeFiles/manrs_rpki.dir/roa.cpp.o"
  "CMakeFiles/manrs_rpki.dir/roa.cpp.o.d"
  "CMakeFiles/manrs_rpki.dir/validation.cpp.o"
  "CMakeFiles/manrs_rpki.dir/validation.cpp.o.d"
  "libmanrs_rpki.a"
  "libmanrs_rpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
