file(REMOVE_RECURSE
  "libmanrs_rpki.a"
)
