# Empty compiler generated dependencies file for manrs_ihr.
# This may be replaced when dependencies are built.
