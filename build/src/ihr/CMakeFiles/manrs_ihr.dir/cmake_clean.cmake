file(REMOVE_RECURSE
  "CMakeFiles/manrs_ihr.dir/dataset.cpp.o"
  "CMakeFiles/manrs_ihr.dir/dataset.cpp.o.d"
  "CMakeFiles/manrs_ihr.dir/hegemony.cpp.o"
  "CMakeFiles/manrs_ihr.dir/hegemony.cpp.o.d"
  "libmanrs_ihr.a"
  "libmanrs_ihr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_ihr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
