file(REMOVE_RECURSE
  "libmanrs_ihr.a"
)
