# CMake generated Testfile for 
# Source directory: /root/repo/src/ihr
# Build directory: /root/repo/build/src/ihr
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
