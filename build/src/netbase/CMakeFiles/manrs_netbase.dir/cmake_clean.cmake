file(REMOVE_RECURSE
  "CMakeFiles/manrs_netbase.dir/ip.cpp.o"
  "CMakeFiles/manrs_netbase.dir/ip.cpp.o.d"
  "CMakeFiles/manrs_netbase.dir/prefix.cpp.o"
  "CMakeFiles/manrs_netbase.dir/prefix.cpp.o.d"
  "libmanrs_netbase.a"
  "libmanrs_netbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
