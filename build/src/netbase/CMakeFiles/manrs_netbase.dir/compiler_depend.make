# Empty compiler generated dependencies file for manrs_netbase.
# This may be replaced when dependencies are built.
