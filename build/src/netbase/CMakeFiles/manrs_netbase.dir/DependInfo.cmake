
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netbase/ip.cpp" "src/netbase/CMakeFiles/manrs_netbase.dir/ip.cpp.o" "gcc" "src/netbase/CMakeFiles/manrs_netbase.dir/ip.cpp.o.d"
  "/root/repo/src/netbase/prefix.cpp" "src/netbase/CMakeFiles/manrs_netbase.dir/prefix.cpp.o" "gcc" "src/netbase/CMakeFiles/manrs_netbase.dir/prefix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
