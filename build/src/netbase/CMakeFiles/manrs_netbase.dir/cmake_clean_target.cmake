file(REMOVE_RECURSE
  "libmanrs_netbase.a"
)
