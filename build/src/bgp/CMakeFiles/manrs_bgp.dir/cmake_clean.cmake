file(REMOVE_RECURSE
  "CMakeFiles/manrs_bgp.dir/rib.cpp.o"
  "CMakeFiles/manrs_bgp.dir/rib.cpp.o.d"
  "libmanrs_bgp.a"
  "libmanrs_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
