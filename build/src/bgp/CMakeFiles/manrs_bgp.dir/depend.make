# Empty dependencies file for manrs_bgp.
# This may be replaced when dependencies are built.
