file(REMOVE_RECURSE
  "libmanrs_bgp.a"
)
