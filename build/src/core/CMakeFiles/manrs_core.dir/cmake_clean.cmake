file(REMOVE_RECURSE
  "CMakeFiles/manrs_core.dir/conformance.cpp.o"
  "CMakeFiles/manrs_core.dir/conformance.cpp.o.d"
  "CMakeFiles/manrs_core.dir/incidents.cpp.o"
  "CMakeFiles/manrs_core.dir/incidents.cpp.o.d"
  "CMakeFiles/manrs_core.dir/manrs.cpp.o"
  "CMakeFiles/manrs_core.dir/manrs.cpp.o.d"
  "CMakeFiles/manrs_core.dir/monitoring.cpp.o"
  "CMakeFiles/manrs_core.dir/monitoring.cpp.o.d"
  "CMakeFiles/manrs_core.dir/observatory.cpp.o"
  "CMakeFiles/manrs_core.dir/observatory.cpp.o.d"
  "CMakeFiles/manrs_core.dir/peeringdb.cpp.o"
  "CMakeFiles/manrs_core.dir/peeringdb.cpp.o.d"
  "CMakeFiles/manrs_core.dir/report.cpp.o"
  "CMakeFiles/manrs_core.dir/report.cpp.o.d"
  "libmanrs_core.a"
  "libmanrs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
