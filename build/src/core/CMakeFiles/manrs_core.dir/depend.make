# Empty dependencies file for manrs_core.
# This may be replaced when dependencies are built.
