
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/conformance.cpp" "src/core/CMakeFiles/manrs_core.dir/conformance.cpp.o" "gcc" "src/core/CMakeFiles/manrs_core.dir/conformance.cpp.o.d"
  "/root/repo/src/core/incidents.cpp" "src/core/CMakeFiles/manrs_core.dir/incidents.cpp.o" "gcc" "src/core/CMakeFiles/manrs_core.dir/incidents.cpp.o.d"
  "/root/repo/src/core/manrs.cpp" "src/core/CMakeFiles/manrs_core.dir/manrs.cpp.o" "gcc" "src/core/CMakeFiles/manrs_core.dir/manrs.cpp.o.d"
  "/root/repo/src/core/monitoring.cpp" "src/core/CMakeFiles/manrs_core.dir/monitoring.cpp.o" "gcc" "src/core/CMakeFiles/manrs_core.dir/monitoring.cpp.o.d"
  "/root/repo/src/core/observatory.cpp" "src/core/CMakeFiles/manrs_core.dir/observatory.cpp.o" "gcc" "src/core/CMakeFiles/manrs_core.dir/observatory.cpp.o.d"
  "/root/repo/src/core/peeringdb.cpp" "src/core/CMakeFiles/manrs_core.dir/peeringdb.cpp.o" "gcc" "src/core/CMakeFiles/manrs_core.dir/peeringdb.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/manrs_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/manrs_core.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ihr/CMakeFiles/manrs_ihr.dir/DependInfo.cmake"
  "/root/repo/build/src/astopo/CMakeFiles/manrs_astopo.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/manrs_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/irr/CMakeFiles/manrs_irr.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/manrs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/manrs_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/manrs_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
