file(REMOVE_RECURSE
  "libmanrs_core.a"
)
