# Empty compiler generated dependencies file for manrs_sim.
# This may be replaced when dependencies are built.
