file(REMOVE_RECURSE
  "CMakeFiles/manrs_sim.dir/collector.cpp.o"
  "CMakeFiles/manrs_sim.dir/collector.cpp.o.d"
  "CMakeFiles/manrs_sim.dir/propagation.cpp.o"
  "CMakeFiles/manrs_sim.dir/propagation.cpp.o.d"
  "libmanrs_sim.a"
  "libmanrs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
