file(REMOVE_RECURSE
  "libmanrs_sim.a"
)
