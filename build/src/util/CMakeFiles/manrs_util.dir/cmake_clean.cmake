file(REMOVE_RECURSE
  "CMakeFiles/manrs_util.dir/csv.cpp.o"
  "CMakeFiles/manrs_util.dir/csv.cpp.o.d"
  "CMakeFiles/manrs_util.dir/date.cpp.o"
  "CMakeFiles/manrs_util.dir/date.cpp.o.d"
  "CMakeFiles/manrs_util.dir/logging.cpp.o"
  "CMakeFiles/manrs_util.dir/logging.cpp.o.d"
  "CMakeFiles/manrs_util.dir/stats.cpp.o"
  "CMakeFiles/manrs_util.dir/stats.cpp.o.d"
  "CMakeFiles/manrs_util.dir/strings.cpp.o"
  "CMakeFiles/manrs_util.dir/strings.cpp.o.d"
  "libmanrs_util.a"
  "libmanrs_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
