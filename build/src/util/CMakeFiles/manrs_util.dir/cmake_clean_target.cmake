file(REMOVE_RECURSE
  "libmanrs_util.a"
)
