# Empty compiler generated dependencies file for manrs_util.
# This may be replaced when dependencies are built.
