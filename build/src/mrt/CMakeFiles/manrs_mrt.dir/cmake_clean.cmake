file(REMOVE_RECURSE
  "CMakeFiles/manrs_mrt.dir/bgp4mp.cpp.o"
  "CMakeFiles/manrs_mrt.dir/bgp4mp.cpp.o.d"
  "CMakeFiles/manrs_mrt.dir/table_dump.cpp.o"
  "CMakeFiles/manrs_mrt.dir/table_dump.cpp.o.d"
  "libmanrs_mrt.a"
  "libmanrs_mrt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
