
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mrt/bgp4mp.cpp" "src/mrt/CMakeFiles/manrs_mrt.dir/bgp4mp.cpp.o" "gcc" "src/mrt/CMakeFiles/manrs_mrt.dir/bgp4mp.cpp.o.d"
  "/root/repo/src/mrt/table_dump.cpp" "src/mrt/CMakeFiles/manrs_mrt.dir/table_dump.cpp.o" "gcc" "src/mrt/CMakeFiles/manrs_mrt.dir/table_dump.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bgp/CMakeFiles/manrs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/manrs_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
