file(REMOVE_RECURSE
  "libmanrs_mrt.a"
)
