# Empty compiler generated dependencies file for manrs_mrt.
# This may be replaced when dependencies are built.
