# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("netbase")
subdirs("rpki")
subdirs("irr")
subdirs("bgp")
subdirs("mrt")
subdirs("astopo")
subdirs("simulator")
subdirs("ihr")
subdirs("topogen")
subdirs("core")
