# Empty compiler generated dependencies file for manrs_topogen.
# This may be replaced when dependencies are built.
