file(REMOVE_RECURSE
  "libmanrs_topogen.a"
)
