file(REMOVE_RECURSE
  "CMakeFiles/manrs_topogen.dir/casestudies.cpp.o"
  "CMakeFiles/manrs_topogen.dir/casestudies.cpp.o.d"
  "CMakeFiles/manrs_topogen.dir/config.cpp.o"
  "CMakeFiles/manrs_topogen.dir/config.cpp.o.d"
  "CMakeFiles/manrs_topogen.dir/generator.cpp.o"
  "CMakeFiles/manrs_topogen.dir/generator.cpp.o.d"
  "CMakeFiles/manrs_topogen.dir/history.cpp.o"
  "CMakeFiles/manrs_topogen.dir/history.cpp.o.d"
  "libmanrs_topogen.a"
  "libmanrs_topogen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manrs_topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
