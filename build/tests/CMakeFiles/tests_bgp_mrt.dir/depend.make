# Empty dependencies file for tests_bgp_mrt.
# This may be replaced when dependencies are built.
