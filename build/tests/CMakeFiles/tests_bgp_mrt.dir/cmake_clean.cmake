file(REMOVE_RECURSE
  "CMakeFiles/tests_bgp_mrt.dir/test_bgp.cpp.o"
  "CMakeFiles/tests_bgp_mrt.dir/test_bgp.cpp.o.d"
  "CMakeFiles/tests_bgp_mrt.dir/test_bgp4mp.cpp.o"
  "CMakeFiles/tests_bgp_mrt.dir/test_bgp4mp.cpp.o.d"
  "CMakeFiles/tests_bgp_mrt.dir/test_mrt.cpp.o"
  "CMakeFiles/tests_bgp_mrt.dir/test_mrt.cpp.o.d"
  "tests_bgp_mrt"
  "tests_bgp_mrt.pdb"
  "tests_bgp_mrt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_bgp_mrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
