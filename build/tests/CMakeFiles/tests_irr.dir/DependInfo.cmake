
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_irr.cpp" "tests/CMakeFiles/tests_irr.dir/test_irr.cpp.o" "gcc" "tests/CMakeFiles/tests_irr.dir/test_irr.cpp.o.d"
  "/root/repo/tests/test_rpsl.cpp" "tests/CMakeFiles/tests_irr.dir/test_rpsl.cpp.o" "gcc" "tests/CMakeFiles/tests_irr.dir/test_rpsl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/irr/CMakeFiles/manrs_irr.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/manrs_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
