file(REMOVE_RECURSE
  "CMakeFiles/tests_irr.dir/test_irr.cpp.o"
  "CMakeFiles/tests_irr.dir/test_irr.cpp.o.d"
  "CMakeFiles/tests_irr.dir/test_rpsl.cpp.o"
  "CMakeFiles/tests_irr.dir/test_rpsl.cpp.o.d"
  "tests_irr"
  "tests_irr.pdb"
  "tests_irr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_irr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
