# Empty dependencies file for tests_irr.
# This may be replaced when dependencies are built.
