file(REMOVE_RECURSE
  "CMakeFiles/tests_topogen.dir/test_topogen.cpp.o"
  "CMakeFiles/tests_topogen.dir/test_topogen.cpp.o.d"
  "tests_topogen"
  "tests_topogen.pdb"
  "tests_topogen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_topogen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
