# Empty dependencies file for tests_topogen.
# This may be replaced when dependencies are built.
