file(REMOVE_RECURSE
  "CMakeFiles/tests_fuzz.dir/test_fuzz.cpp.o"
  "CMakeFiles/tests_fuzz.dir/test_fuzz.cpp.o.d"
  "tests_fuzz"
  "tests_fuzz.pdb"
  "tests_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
