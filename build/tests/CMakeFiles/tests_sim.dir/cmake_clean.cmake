file(REMOVE_RECURSE
  "CMakeFiles/tests_sim.dir/test_ihr.cpp.o"
  "CMakeFiles/tests_sim.dir/test_ihr.cpp.o.d"
  "CMakeFiles/tests_sim.dir/test_ihr_builder.cpp.o"
  "CMakeFiles/tests_sim.dir/test_ihr_builder.cpp.o.d"
  "CMakeFiles/tests_sim.dir/test_propagation.cpp.o"
  "CMakeFiles/tests_sim.dir/test_propagation.cpp.o.d"
  "CMakeFiles/tests_sim.dir/test_propagation_property.cpp.o"
  "CMakeFiles/tests_sim.dir/test_propagation_property.cpp.o.d"
  "tests_sim"
  "tests_sim.pdb"
  "tests_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
