# Empty compiler generated dependencies file for tests_astopo.
# This may be replaced when dependencies are built.
