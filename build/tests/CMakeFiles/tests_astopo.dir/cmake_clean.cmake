file(REMOVE_RECURSE
  "CMakeFiles/tests_astopo.dir/test_astopo.cpp.o"
  "CMakeFiles/tests_astopo.dir/test_astopo.cpp.o.d"
  "tests_astopo"
  "tests_astopo.pdb"
  "tests_astopo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_astopo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
