
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_astopo.cpp" "tests/CMakeFiles/tests_astopo.dir/test_astopo.cpp.o" "gcc" "tests/CMakeFiles/tests_astopo.dir/test_astopo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/astopo/CMakeFiles/manrs_astopo.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/manrs_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/netbase/CMakeFiles/manrs_netbase.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
