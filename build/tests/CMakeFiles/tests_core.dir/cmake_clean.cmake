file(REMOVE_RECURSE
  "CMakeFiles/tests_core.dir/test_conformance.cpp.o"
  "CMakeFiles/tests_core.dir/test_conformance.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_incidents.cpp.o"
  "CMakeFiles/tests_core.dir/test_incidents.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_manrs_registry.cpp.o"
  "CMakeFiles/tests_core.dir/test_manrs_registry.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_monitoring.cpp.o"
  "CMakeFiles/tests_core.dir/test_monitoring.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_observatory.cpp.o"
  "CMakeFiles/tests_core.dir/test_observatory.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_peeringdb.cpp.o"
  "CMakeFiles/tests_core.dir/test_peeringdb.cpp.o.d"
  "CMakeFiles/tests_core.dir/test_report.cpp.o"
  "CMakeFiles/tests_core.dir/test_report.cpp.o.d"
  "tests_core"
  "tests_core.pdb"
  "tests_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
