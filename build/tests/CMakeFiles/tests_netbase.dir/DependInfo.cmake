
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_ip.cpp" "tests/CMakeFiles/tests_netbase.dir/test_ip.cpp.o" "gcc" "tests/CMakeFiles/tests_netbase.dir/test_ip.cpp.o.d"
  "/root/repo/tests/test_prefix.cpp" "tests/CMakeFiles/tests_netbase.dir/test_prefix.cpp.o" "gcc" "tests/CMakeFiles/tests_netbase.dir/test_prefix.cpp.o.d"
  "/root/repo/tests/test_trie.cpp" "tests/CMakeFiles/tests_netbase.dir/test_trie.cpp.o" "gcc" "tests/CMakeFiles/tests_netbase.dir/test_trie.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netbase/CMakeFiles/manrs_netbase.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
