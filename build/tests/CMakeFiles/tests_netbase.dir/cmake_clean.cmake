file(REMOVE_RECURSE
  "CMakeFiles/tests_netbase.dir/test_ip.cpp.o"
  "CMakeFiles/tests_netbase.dir/test_ip.cpp.o.d"
  "CMakeFiles/tests_netbase.dir/test_prefix.cpp.o"
  "CMakeFiles/tests_netbase.dir/test_prefix.cpp.o.d"
  "CMakeFiles/tests_netbase.dir/test_trie.cpp.o"
  "CMakeFiles/tests_netbase.dir/test_trie.cpp.o.d"
  "tests_netbase"
  "tests_netbase.pdb"
  "tests_netbase[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_netbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
