# Empty dependencies file for tests_netbase.
# This may be replaced when dependencies are built.
