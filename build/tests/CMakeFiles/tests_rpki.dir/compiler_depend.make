# Empty compiler generated dependencies file for tests_rpki.
# This may be replaced when dependencies are built.
