file(REMOVE_RECURSE
  "CMakeFiles/tests_rpki.dir/test_roa.cpp.o"
  "CMakeFiles/tests_rpki.dir/test_roa.cpp.o.d"
  "CMakeFiles/tests_rpki.dir/test_rpki_archive.cpp.o"
  "CMakeFiles/tests_rpki.dir/test_rpki_archive.cpp.o.d"
  "CMakeFiles/tests_rpki.dir/test_rpki_validation.cpp.o"
  "CMakeFiles/tests_rpki.dir/test_rpki_validation.cpp.o.d"
  "tests_rpki"
  "tests_rpki.pdb"
  "tests_rpki[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
