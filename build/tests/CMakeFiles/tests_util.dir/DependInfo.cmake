
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_csv.cpp" "tests/CMakeFiles/tests_util.dir/test_csv.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/test_csv.cpp.o.d"
  "/root/repo/tests/test_date.cpp" "tests/CMakeFiles/tests_util.dir/test_date.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/test_date.cpp.o.d"
  "/root/repo/tests/test_logging.cpp" "tests/CMakeFiles/tests_util.dir/test_logging.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/test_logging.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/tests_util.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_strings.cpp" "tests/CMakeFiles/tests_util.dir/test_strings.cpp.o" "gcc" "tests/CMakeFiles/tests_util.dir/test_strings.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/manrs_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
