file(REMOVE_RECURSE
  "CMakeFiles/tests_util.dir/test_csv.cpp.o"
  "CMakeFiles/tests_util.dir/test_csv.cpp.o.d"
  "CMakeFiles/tests_util.dir/test_date.cpp.o"
  "CMakeFiles/tests_util.dir/test_date.cpp.o.d"
  "CMakeFiles/tests_util.dir/test_logging.cpp.o"
  "CMakeFiles/tests_util.dir/test_logging.cpp.o.d"
  "CMakeFiles/tests_util.dir/test_stats.cpp.o"
  "CMakeFiles/tests_util.dir/test_stats.cpp.o.d"
  "CMakeFiles/tests_util.dir/test_strings.cpp.o"
  "CMakeFiles/tests_util.dir/test_strings.cpp.o.d"
  "tests_util"
  "tests_util.pdb"
  "tests_util[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tests_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
