#include "ihr/dataset.h"
#include "ihr/hegemony.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::ihr {
namespace {

using net::Asn;
using net::Prefix;

bgp::AsPath path(std::initializer_list<uint32_t> hops) {
  std::vector<Asn> v;
  for (uint32_t h : hops) v.emplace_back(h);
  return bgp::AsPath(std::move(v));
}

double score_of(const std::vector<HegemonyScore>& scores, uint32_t asn) {
  for (const auto& s : scores) {
    if (s.asn == Asn(asn)) return s.score;
  }
  return 0.0;
}

TEST(TrimmedMean, NoTrim) {
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(5, 10, 0.0), 0.5);
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(0, 10, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(10, 10, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(0, 0, 0.1), 0.0);
}

TEST(TrimmedMean, TrimRemovesExtremes) {
  // 10 samples, trim 10% -> drop 1 from each end (one 0 and one 1).
  // ones=5, zeros=5: window [1,9) holds indices 1..8 = 4 zeros, 4 ones.
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(5, 10, 0.1), 0.5);
  // ones=1: the single 1 sits at index 9, trimmed away.
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(1, 10, 0.1), 0.0);
  // ones=9: the single 0 at index 0 is trimmed; window all ones.
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(9, 10, 0.1), 1.0);
}

TEST(TrimmedMean, OverTrimIsZero) {
  EXPECT_DOUBLE_EQ(trimmed_indicator_mean(1, 2, 0.5), 0.0);
}

TEST(Hegemony, OriginOnAllPaths) {
  std::vector<bgp::AsPath> paths{
      path({10, 2, 1}),
      path({11, 3, 1}),
      path({12, 2, 1}),
  };
  auto scores = compute_hegemony(paths, 0.0);
  // The origin AS1 is on every path (the "trivial transit", §5.3).
  EXPECT_DOUBLE_EQ(score_of(scores, 1), 1.0);
  EXPECT_NEAR(score_of(scores, 2), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(score_of(scores, 3), 1.0 / 3.0, 1e-12);
}

TEST(Hegemony, VantageNotCountedOnOwnPath) {
  std::vector<bgp::AsPath> paths{
      path({10, 1}),
      path({11, 10, 1}),
  };
  auto scores = compute_hegemony(paths, 0.0);
  // AS10 appears as vantage on path 0 (not counted) and as transit on
  // path 1 (counted): 1 of 2.
  EXPECT_DOUBLE_EQ(score_of(scores, 10), 0.5);
}

TEST(Hegemony, PrependingCountedOnce) {
  std::vector<bgp::AsPath> paths{path({10, 2, 2, 2, 1})};
  auto scores = compute_hegemony(paths, 0.0);
  EXPECT_DOUBLE_EQ(score_of(scores, 2), 1.0);
}

TEST(Hegemony, TrimDropsRareTransits) {
  // 20 paths; AS9 on exactly one -> trimmed away at 10%.
  std::vector<bgp::AsPath> paths;
  for (int i = 0; i < 19; ++i) paths.push_back(path({100, 2, 1}));
  paths.push_back(path({101, 9, 1}));
  auto scores = compute_hegemony(paths, 0.1);
  EXPECT_DOUBLE_EQ(score_of(scores, 9), 0.0);
  EXPECT_GT(score_of(scores, 2), 0.9);
  // Zero-score ASes are omitted entirely.
  for (const auto& s : scores) EXPECT_NE(s.asn, Asn(9));
}

TEST(Hegemony, SortedByScoreDescending) {
  std::vector<bgp::AsPath> paths{
      path({10, 2, 1}),
      path({11, 2, 1}),
      path({12, 3, 1}),
  };
  auto scores = compute_hegemony(paths, 0.0);
  for (size_t i = 1; i < scores.size(); ++i) {
    EXPECT_GE(scores[i - 1].score, scores[i].score);
  }
  EXPECT_EQ(scores.front().asn, Asn(1));
}

TEST(Hegemony, EmptyInput) {
  EXPECT_TRUE(compute_hegemony(std::vector<bgp::AsPath>{}, 0.1).empty());
  EXPECT_TRUE(compute_hegemony(std::vector<sim::PathView>{}, 0.1).empty());
}

TEST(IhrCsv, PrefixOriginRoundTrip) {
  std::vector<PrefixOriginRecord> records;
  PrefixOriginRecord r;
  r.prefix = Prefix::must_parse("10.0.0.0/8");
  r.origin = Asn(64496);
  r.rpki = rpki::RpkiStatus::kInvalidLength;
  r.irr = irr::IrrStatus::kValid;
  r.visibility = 17;
  records.push_back(r);

  std::ostringstream out;
  write_prefix_origin_csv(out, records);
  std::istringstream in(out.str());
  size_t bad = 0;
  auto parsed = read_prefix_origin_csv(in, &bad);
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].prefix, r.prefix);
  EXPECT_EQ(parsed[0].origin, r.origin);
  EXPECT_EQ(parsed[0].rpki, r.rpki);
  EXPECT_EQ(parsed[0].irr, r.irr);
  EXPECT_EQ(parsed[0].visibility, 17u);
}

TEST(IhrCsv, TransitRoundTrip) {
  std::vector<TransitRecord> records;
  TransitRecord t;
  t.prefix = Prefix::must_parse("2001:db8::/32");
  t.origin = Asn(1);
  t.transit = Asn(2);
  t.hegemony = 0.66;
  t.via_customer = true;
  t.rpki = rpki::RpkiStatus::kNotFound;
  t.irr = irr::IrrStatus::kInvalidAsn;
  records.push_back(t);

  std::ostringstream out;
  write_transit_csv(out, records);
  std::istringstream in(out.str());
  size_t bad = 0;
  auto parsed = read_transit_csv(in, &bad);
  EXPECT_EQ(bad, 0u);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].transit, Asn(2));
  EXPECT_NEAR(parsed[0].hegemony, 0.66, 1e-6);
  EXPECT_TRUE(parsed[0].via_customer);
  EXPECT_EQ(parsed[0].irr, irr::IrrStatus::kInvalidAsn);
}

}  // namespace
}  // namespace manrs::ihr
