// Unit tests for the bounds-checked byte cursor/buffer layer that all
// wire-format codecs decode through (util/bytes.h).
#include "util/bytes.h"

#include <gtest/gtest.h>

#include <array>
#include <sstream>

namespace manrs::util {
namespace {

TEST(ByteBuf, BigEndianEncoding) {
  ByteBuf w;
  w.u8(0x01);
  w.u16(0x0203);
  w.u32(0x04050607);
  w.u64(0x08090A0B0C0D0E0FULL);
  const std::vector<uint8_t> expected = {0x01, 0x02, 0x03, 0x04, 0x05,
                                         0x06, 0x07, 0x08, 0x09, 0x0A,
                                         0x0B, 0x0C, 0x0D, 0x0E, 0x0F};
  EXPECT_EQ(w.data(), expected);
}

TEST(ByteBuf, AsciiAppendsWithoutCasts) {
  ByteBuf w;
  w.ascii("rrc00");
  ASSERT_EQ(w.size(), 5u);
  EXPECT_EQ(as_chars(w.span()), "rrc00");
}

TEST(ByteBuf, PatchU16RewritesSlot) {
  ByteBuf w;
  w.u16(0);
  w.u32(0xDEADBEEF);
  w.patch_u16(0, 0x1234);
  ByteCursor r(w.span());
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEF);
}

TEST(ByteBuf, PatchU16OutOfRangeThrows) {
  ByteBuf w;
  w.u8(0);
  EXPECT_THROW(w.patch_u16(0, 1), ParseError);
  EXPECT_THROW(w.patch_u16(7, 1), ParseError);
}

TEST(ByteCursor, RoundTripsWriterOutput) {
  ByteBuf w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x01234567);
  w.u64(0x89ABCDEF01234567ULL);
  ByteCursor r(w.span());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x01234567u);
  EXPECT_EQ(r.u64(), 0x89ABCDEF01234567ULL);
  EXPECT_TRUE(r.done());
}

TEST(ByteCursor, ThrowsOnTruncationWithoutAdvancing) {
  const std::vector<uint8_t> data = {0x00, 0x01, 0x02};
  ByteCursor r(data);
  r.u8();
  EXPECT_THROW(r.u32(), ParseError);
  // A failed read must not consume anything.
  EXPECT_EQ(r.position(), 1u);
  EXPECT_EQ(r.u16(), 0x0102);
}

TEST(ByteCursor, TryReadsReturnNulloptAtEnd) {
  const std::vector<uint8_t> data = {0x11, 0x22};
  ByteCursor r(data);
  EXPECT_EQ(r.try_u16(), 0x1122);
  EXPECT_EQ(r.try_u8(), std::nullopt);
  EXPECT_EQ(r.try_u16(), std::nullopt);
  EXPECT_EQ(r.try_u32(), std::nullopt);
  EXPECT_EQ(r.try_u64(), std::nullopt);
  EXPECT_EQ(r.try_bytes(1), std::nullopt);
}

TEST(ByteCursor, SubCursorIsBoundsLimited) {
  const std::vector<uint8_t> data = {0x01, 0x02, 0x03, 0x04, 0x05};
  ByteCursor r(data);
  ByteCursor inner = r.sub(2);
  EXPECT_EQ(inner.u16(), 0x0102);
  // The inner cursor cannot see the parent's remaining bytes.
  EXPECT_THROW(inner.u8(), ParseError);
  // The parent resumes exactly after the carved extent.
  EXPECT_EQ(r.u8(), 0x03);
}

TEST(ByteCursor, SubCursorOverrunThrows) {
  const std::vector<uint8_t> data = {0x01, 0x02};
  ByteCursor r(data);
  EXPECT_THROW(r.sub(3), ParseError);
}

TEST(ByteCursor, AsciiAliasesBuffer) {
  ByteBuf w;
  w.ascii("view-name");
  ByteCursor r(w.span());
  EXPECT_EQ(r.ascii(4), "view");
  EXPECT_EQ(r.remaining(), 5u);
}

TEST(ByteCursor, SkipAndBytesBoundsChecked) {
  const std::vector<uint8_t> data(8, 0xAA);
  ByteCursor r(data);
  r.skip(4);
  EXPECT_THROW(r.skip(5), ParseError);
  EXPECT_THROW(r.bytes(5), ParseError);
  EXPECT_EQ(r.bytes(4).size(), 4u);
}

TEST(StreamBridge, ReadExactAndUpto) {
  std::istringstream in(std::string("\x01\x02\x03", 3));
  std::array<uint8_t, 2> two{};
  ASSERT_TRUE(read_exact(in, two));
  EXPECT_EQ(two[0], 0x01);
  EXPECT_EQ(two[1], 0x02);
  std::array<uint8_t, 4> four{};
  EXPECT_EQ(read_upto(in, four), 1u);  // only one byte left
  EXPECT_EQ(four[0], 0x03);
  EXPECT_FALSE(read_exact(in, two));  // EOF
}

TEST(StreamBridge, WriteBytesRoundTrip) {
  ByteBuf w;
  w.u32(0xCAFEBABE);
  std::ostringstream out;
  write_bytes(out, w.span());
  std::string s = out.str();
  ByteCursor r(as_bytes(s));
  EXPECT_EQ(r.u32(), 0xCAFEBABE);
}

TEST(StreamBridge, CharViewsRoundTrip) {
  std::string_view text = "mrt";
  auto bytes = as_bytes(text);
  ASSERT_EQ(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 'm');
  EXPECT_EQ(as_chars(bytes), text);
}

}  // namespace
}  // namespace manrs::util
