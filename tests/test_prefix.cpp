#include "netbase/prefix.h"

#include <gtest/gtest.h>

#include "netbase/asn.h"

namespace manrs::net {
namespace {

TEST(Prefix, ParseBasics) {
  auto p = Prefix::parse("192.0.2.0/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 24u);
  EXPECT_TRUE(p->is_v4());
  EXPECT_EQ(p->to_string(), "192.0.2.0/24");
}

TEST(Prefix, ParseV6) {
  auto p = Prefix::parse("2001:db8::/32");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->length(), 32u);
  EXPECT_FALSE(p->is_v4());
}

TEST(Prefix, Malformed) {
  EXPECT_FALSE(Prefix::parse("192.0.2.0"));      // no length
  EXPECT_FALSE(Prefix::parse("192.0.2.0/33"));   // v4 length > 32
  EXPECT_FALSE(Prefix::parse("2001:db8::/129"));
  EXPECT_FALSE(Prefix::parse("bogus/24"));
  EXPECT_FALSE(Prefix::parse("192.0.2.0/-1"));
  EXPECT_FALSE(Prefix::parse("192.0.2.0/x"));
}

TEST(Prefix, CanonicalizesHostBits) {
  // 192.0.2.77/24 canonicalizes to 192.0.2.0/24.
  auto p = Prefix::parse("192.0.2.77/24");
  ASSERT_TRUE(p);
  EXPECT_EQ(p->to_string(), "192.0.2.0/24");
  EXPECT_EQ(*p, Prefix::must_parse("192.0.2.0/24"));
}

TEST(Prefix, ContainsPrefix) {
  Prefix p16 = Prefix::must_parse("10.1.0.0/16");
  Prefix p24 = Prefix::must_parse("10.1.2.0/24");
  Prefix other = Prefix::must_parse("10.2.0.0/16");
  EXPECT_TRUE(p16.contains(p24));
  EXPECT_FALSE(p24.contains(p16));
  EXPECT_TRUE(p16.contains(p16));  // reflexive
  EXPECT_FALSE(p16.contains(other));
  EXPECT_FALSE(other.contains(p24));
}

TEST(Prefix, ContainsIsFamilyStrict) {
  Prefix v4 = Prefix::must_parse("0.0.0.0/0");
  Prefix v6 = Prefix::must_parse("::/0");
  EXPECT_FALSE(v4.contains(v6));
  EXPECT_FALSE(v6.contains(v4));
  EXPECT_FALSE(v4.contains(*IpAddress::parse("::1")));
}

TEST(Prefix, ContainsAddress) {
  Prefix p = Prefix::must_parse("192.0.2.0/24");
  EXPECT_TRUE(p.contains(*IpAddress::parse("192.0.2.255")));
  EXPECT_FALSE(p.contains(*IpAddress::parse("192.0.3.0")));
}

TEST(Prefix, DefaultRouteContainsEverythingV4) {
  Prefix def = Prefix::must_parse("0.0.0.0/0");
  EXPECT_TRUE(def.contains(Prefix::must_parse("203.0.113.0/24")));
  EXPECT_TRUE(def.contains(*IpAddress::parse("8.8.8.8")));
}

TEST(Prefix, AddressCount) {
  EXPECT_DOUBLE_EQ(Prefix::must_parse("10.0.0.0/8").address_count(),
                   16777216.0);
  EXPECT_DOUBLE_EQ(Prefix::must_parse("192.0.2.0/24").address_count(), 256.0);
  EXPECT_DOUBLE_EQ(Prefix::must_parse("192.0.2.1/32").address_count(), 1.0);
  EXPECT_DOUBLE_EQ(Prefix::must_parse("0.0.0.0/0").address_count(),
                   4294967296.0);
  EXPECT_DOUBLE_EQ(Prefix::must_parse("2001:db8::/64").address_count(),
                   18446744073709551616.0);
}

TEST(Prefix, HashDistinguishesLengths) {
  std::hash<Prefix> h;
  EXPECT_NE(h(Prefix::must_parse("10.0.0.0/8")),
            h(Prefix::must_parse("10.0.0.0/9")));
}

TEST(Prefix, OrderingIsTotal) {
  Prefix a = Prefix::must_parse("10.0.0.0/8");
  Prefix b = Prefix::must_parse("10.0.0.0/16");
  Prefix c = Prefix::must_parse("11.0.0.0/8");
  EXPECT_LT(a, b);  // same address, shorter first
  EXPECT_LT(a, c);
  EXPECT_LT(b, c);
}

TEST(Asn, ParseBothSpellings) {
  EXPECT_EQ(Asn::parse("64496"), Asn(64496));
  EXPECT_EQ(Asn::parse("AS64496"), Asn(64496));
  EXPECT_EQ(Asn::parse("as64496"), Asn(64496));
  EXPECT_EQ(Asn::parse("4294967295"), Asn(4294967295u));
  EXPECT_FALSE(Asn::parse("4294967296"));  // > 32 bits
  EXPECT_FALSE(Asn::parse("AS"));
  EXPECT_FALSE(Asn::parse(""));
  EXPECT_FALSE(Asn::parse("64496x"));
  EXPECT_FALSE(Asn::parse("-1"));
}

TEST(Asn, FormatAndReserved) {
  EXPECT_EQ(Asn(15169).to_string(), "AS15169");
  EXPECT_TRUE(Asn(0).is_reserved_as0());
  EXPECT_FALSE(Asn(1).is_reserved_as0());
}

// Containment is consistent with masking across a sweep of lengths.
class PrefixContainsP : public ::testing::TestWithParam<unsigned> {};
TEST_P(PrefixContainsP, ParentContainsAllChildren) {
  unsigned len = GetParam();
  Prefix parent(IpAddress::v4(0xC6336400u), len);  // 198.51.100.0
  // A /28 child inside.
  Prefix child(IpAddress::v4(0xC6336400u), 28);
  if (len <= 28) {
    EXPECT_TRUE(parent.contains(child)) << "len=" << len;
  } else {
    EXPECT_FALSE(parent.contains(child)) << "len=" << len;
  }
}
INSTANTIATE_TEST_SUITE_P(Lengths, PrefixContainsP,
                         ::testing::Range(0u, 33u));

}  // namespace
}  // namespace manrs::net
