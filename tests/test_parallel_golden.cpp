// Serial-vs-parallel golden equality: the determinism contract of the
// parallel measurement pipeline. For each parallelized stage --
// scenario generation, collector propagation (including the sharded
// flat-RIB merge), IHR hegemony, MRT TABLE_DUMP_V2 decode -- the output
// with MANRS_THREADS=1 (exact serial fallback) must be byte-identical
// to the output with a multi-thread pool, at every chunking grain
// (MANRS_GRAIN). Outputs are compared through their canonical
// serializations (TABLE_DUMP_V2 bytes, dataset CSVs, scenario content
// dumps), so any reordering or dropped/duplicated item fails.
// tools/check.sh additionally runs these tests under TSan and repeats
// the matrix through the environment variables.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ihr/dataset.h"
#include "mrt/table_dump.h"
#include "simulator/collector.h"
#include "topogen/scenario.h"
#include "util/parallel.h"

namespace manrs {
namespace {

using net::Asn;

constexpr size_t kParallelThreads = 4;

const topogen::Scenario& golden_scenario() {
  static const topogen::Scenario s =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  return s;
}

/// Classified simulator announcements, the collector's input (same
/// classification rule as IhrSnapshotBuilder::build).
std::vector<sim::Announcement> classified_announcements(
    const topogen::Scenario& scenario) {
  std::vector<sim::Announcement> out;
  for (const auto& po : scenario.announcements()) {
    sim::AnnouncementClass cls;
    cls.rpki_invalid = rpki::is_invalid(scenario.vrps.validate(po.prefix, po.origin));
    cls.irr_invalid = irr::validate_route(scenario.irr, po.prefix, po.origin) ==
                      irr::IrrStatus::kInvalidAsn;
    cls.variant = (cls.rpki_invalid || cls.irr_invalid)
                      ? sim::filter_variant(po.prefix)
                      : 0;
    out.push_back(sim::Announcement{po.prefix, po.origin, cls});
  }
  return out;
}

std::string rib_bytes(const bgp::Rib& rib) {
  std::ostringstream out;
  mrt::TableDumpWriter writer(out, /*timestamp=*/1651363200);  // 2022-05-01
  writer.write_rib(rib, "golden");
  return out.str();
}

/// Run `fn` with the global pool pinned to `threads`, restoring the
/// environment-derived default afterwards.
template <typename Fn>
auto with_threads(size_t threads, Fn&& fn) {
  util::set_thread_count(threads);
  auto result = fn();
  util::set_thread_count(0);
  return result;
}

/// The golden matrix: compute `fn` serially, then under every
/// MANRS_THREADS in {2, 4} x MANRS_GRAIN in {1, 64} combination, and
/// require byte equality with the serial result.
template <typename Fn>
void expect_thread_grain_invariant(Fn&& fn) {
  util::set_thread_count(1);
  util::set_grain(0);
  const std::string golden = fn();
  ASSERT_FALSE(golden.empty());
  for (size_t threads : {size_t{2}, size_t{4}}) {
    for (size_t grain : {size_t{1}, size_t{64}}) {
      util::set_thread_count(threads);
      util::set_grain(grain);
      EXPECT_EQ(golden, fn())
          << "threads=" << threads << " grain=" << grain;
    }
  }
  util::set_thread_count(0);
  util::set_grain(0);
}

/// Canonical byte dump of the RNG-derived scenario content: dated
/// announcements, dated VRPs, and vantage points. Any divergence in the
/// per-AS plan streams shows up here.
std::string scenario_bytes(const topogen::Scenario& s) {
  std::ostringstream out;
  for (const auto& a : s.dated_announcements) {
    out << a.po.prefix.to_string() << ' ' << a.po.origin.value() << ' '
        << a.first_year << ' ' << a.last_year << '\n';
  }
  out << "---\n";
  for (const auto& v : s.dated_vrps) {
    out << v.vrp.prefix.to_string() << ' ' << v.vrp.max_length << ' '
        << v.vrp.asn.value() << ' ' << v.year << '\n';
  }
  out << "---\n";
  for (const auto& vp : s.vantage_points) out << vp.value() << '\n';
  return out.str();
}

TEST(ParallelGolden, CollectorRibIsByteIdentical) {
  const topogen::Scenario& scenario = golden_scenario();
  sim::PropagationSim simulator = scenario.make_sim();
  sim::RouteCollector collector(simulator, scenario.vantage_points);
  auto announcements = classified_announcements(scenario);
  ASSERT_FALSE(announcements.empty());

  std::string serial = with_threads(
      1, [&] { return rib_bytes(collector.collect(announcements)); });
  std::string parallel = with_threads(kParallelThreads, [&] {
    return rib_bytes(collector.collect(announcements));
  });
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelGolden, HegemonySnapshotIsByteIdentical) {
  const topogen::Scenario& scenario = golden_scenario();
  sim::PropagationSim simulator = scenario.make_sim();
  ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);

  auto snapshot_csvs = [&] {
    ihr::IhrSnapshot snapshot = builder.build(scenario.announcements(),
                                              scenario.vrps, scenario.irr);
    std::ostringstream po, transit;
    ihr::write_prefix_origin_csv(po, snapshot.prefix_origins);
    ihr::write_transit_csv(transit, snapshot.transits);
    return po.str() + "\n---\n" + transit.str();
  };
  std::string serial = with_threads(1, snapshot_csvs);
  std::string parallel = with_threads(kParallelThreads, snapshot_csvs);
  ASSERT_GT(serial.size(), 100u);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelGolden, MrtDecodeIsByteIdentical) {
  const topogen::Scenario& scenario = golden_scenario();
  sim::PropagationSim simulator = scenario.make_sim();
  sim::RouteCollector collector(simulator, scenario.vantage_points);
  auto announcements = classified_announcements(scenario);
  std::string dump = with_threads(
      1, [&] { return rib_bytes(collector.collect(announcements)); });

  auto decode = [&] {
    std::istringstream in(dump);
    size_t bad = 0;
    bgp::Rib rib = mrt::TableDumpReader::read_rib(in, &bad);
    EXPECT_EQ(bad, 0u);
    return rib_bytes(rib);
  };
  std::string serial = with_threads(1, decode);
  std::string parallel = with_threads(kParallelThreads, decode);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  // Decode must also round-trip the original dump exactly.
  EXPECT_EQ(serial, dump);
}

TEST(ParallelGolden, ScenarioBytesInvariantAcrossThreadsAndGrain) {
  expect_thread_grain_invariant([] {
    return scenario_bytes(
        topogen::build_scenario(topogen::ScenarioConfig::tiny()));
  });
}

TEST(ParallelGolden, CollectorRibInvariantAcrossThreadsAndGrain) {
  const topogen::Scenario& scenario = golden_scenario();
  sim::PropagationSim simulator = scenario.make_sim();
  sim::RouteCollector collector(simulator, scenario.vantage_points);
  auto announcements = classified_announcements(scenario);
  expect_thread_grain_invariant(
      [&] { return rib_bytes(collector.collect(announcements)); });
}

TEST(ParallelGolden, HegemonyInvariantAcrossThreadsAndGrain) {
  const topogen::Scenario& scenario = golden_scenario();
  sim::PropagationSim simulator = scenario.make_sim();
  ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
  expect_thread_grain_invariant([&] {
    ihr::IhrSnapshot snapshot = builder.build(scenario.announcements(),
                                              scenario.vrps, scenario.irr);
    std::ostringstream po, transit;
    ihr::write_prefix_origin_csv(po, snapshot.prefix_origins);
    ihr::write_transit_csv(transit, snapshot.transits);
    return po.str() + "\n---\n" + transit.str();
  });
}

TEST(ParallelGolden, ShardedMergeMatchesStagedFinalize) {
  // merge_group_entries (the sharded bulk path) must produce exactly the
  // rows the staged insert_many + finalize path produces.
  const topogen::Scenario& scenario = golden_scenario();
  sim::PropagationSim simulator = scenario.make_sim();
  sim::RouteCollector collector(simulator, scenario.vantage_points);
  auto announcements = classified_announcements(scenario);
  auto groups = sim::group_announcements(announcements);
  auto group_entries = with_threads(
      1, [&] { return collector.collect_group_entries(groups); });

  bgp::Rib staged;
  for (Asn peer : scenario.vantage_points) staged.add_peer(peer);
  for (size_t g = 0; g < groups.size(); ++g) {
    for (const auto& prefix : groups[g].prefixes) {
      staged.insert_many(prefix, group_entries[g]);
    }
  }
  staged.finalize();

  bgp::Rib sharded;
  for (Asn peer : scenario.vantage_points) sharded.add_peer(peer);
  sharded.adopt_rows(sim::merge_group_entries(groups, group_entries));

  EXPECT_EQ(rib_bytes(staged), rib_bytes(sharded));
}

TEST(ParallelGolden, MrtDecodeCorruptionHandlingMatchesSerial) {
  const topogen::Scenario& scenario = golden_scenario();
  sim::PropagationSim simulator = scenario.make_sim();
  sim::RouteCollector collector(simulator, scenario.vantage_points);
  auto announcements = classified_announcements(scenario);
  std::string dump = with_threads(
      1, [&] { return rib_bytes(collector.collect(announcements)); });
  ASSERT_GT(dump.size(), 200u);

  // Three corruptions: a truncated tail, a flipped byte mid-stream, and
  // a corrupt body byte. Serial and parallel decodes must agree on both
  // the surviving RIB and the bad-record count.
  std::vector<std::string> corrupted;
  corrupted.push_back(dump.substr(0, dump.size() - 7));
  for (size_t victim : {dump.size() / 2, dump.size() / 3}) {
    std::string c = dump;
    c[victim] = static_cast<char>(~static_cast<unsigned char>(c[victim]));
    corrupted.push_back(std::move(c));
  }

  for (const std::string& stream : corrupted) {
    auto decode = [&] {
      std::istringstream in(stream);
      size_t bad = 0;
      bgp::Rib rib = mrt::TableDumpReader::read_rib(in, &bad);
      return std::make_pair(rib_bytes(rib), bad);
    };
    auto serial = with_threads(1, decode);
    auto parallel = with_threads(kParallelThreads, decode);
    EXPECT_EQ(serial.first, parallel.first);
    EXPECT_EQ(serial.second, parallel.second);
  }
}

}  // namespace
}  // namespace manrs
