// Property test: the three-phase (linear-time) propagation must agree
// with a naive fixpoint implementation of BGP route selection under
// Gao-Rexford policies -- same reachability, same route class, same path
// length -- on randomized topologies, with and without filtering.
#include <gtest/gtest.h>

#include <limits>
#include <map>

#include "simulator/propagation.h"
#include "util/rng.h"

namespace manrs::sim {
namespace {

using astopo::AsGraph;
using net::Asn;

/// Reference: iterate BGP selection to a fixpoint.
///
/// Each AS holds its best route as (class, distance); preference is class
/// first (origin > customer > peer > provider), then shorter distance. An
/// AS exports only its best route, to everyone when that route is
/// customer-learned or self-originated, and to customers only otherwise.
struct RefRoute {
  RouteSource source = RouteSource::kNone;
  uint16_t distance = std::numeric_limits<uint16_t>::max();

  bool operator==(const RefRoute&) const = default;
};

bool better(const RefRoute& a, const RefRoute& b) {
  if (a.source != b.source) {
    return static_cast<int>(a.source) > static_cast<int>(b.source);
  }
  return a.distance < b.distance;
}

std::map<uint32_t, RefRoute> reference_propagate(
    const AsGraph& graph, const std::map<uint32_t, FilterPolicy>& policies,
    Asn origin, const AnnouncementClass& cls) {
  std::map<uint32_t, RefRoute> routes;
  if (!graph.contains(origin)) return routes;
  routes[origin.value()] = RefRoute{RouteSource::kOrigin, 0};

  auto policy_of = [&](Asn asn) {
    auto it = policies.find(asn.value());
    return it == policies.end() ? FilterPolicy{} : it->second;
  };
  auto drops = [&](Asn receiver, RouteSource adjacency) {
    FilterPolicy policy = policy_of(receiver);
    if (policy.rov && cls.rpki_invalid) return true;
    bool invalid = cls.rpki_invalid || cls.irr_invalid;
    if (!invalid) return false;
    if (adjacency == RouteSource::kCustomer &&
        cls.variant < policy.customer_strictness) {
      return true;
    }
    if (adjacency == RouteSource::kPeer &&
        cls.variant < policy.peer_strictness) {
      return true;
    }
    return false;
  };

  // Synchronous relaxation to the converged BGP state: each round, every
  // AS recomputes its best route from its neighbors' *current* best
  // routes (a node switching from a short peer route to a long customer
  // route re-advertises, so derived routes must be recomputed too --
  // keeping monotone improvements would freeze stale state).
  bool changed = true;
  size_t guard = 0;
  while (changed && guard++ < 2 * graph.as_count() + 8) {
    changed = false;
    std::map<uint32_t, RefRoute> next;
    next[origin.value()] = RefRoute{RouteSource::kOrigin, 0};
    for (Asn u : graph.all_asns()) {
      if (u == origin) continue;
      RefRoute best;  // kNone
      auto consider = [&](Asn v, RouteSource adjacency_at_u) {
        auto vit = routes.find(v.value());
        if (vit == routes.end()) return;
        const RefRoute& via = vit->second;
        // v exports its best route to u only when valley-free allows it.
        bool exported = via.source == RouteSource::kOrigin ||
                        via.source == RouteSource::kCustomer ||
                        adjacency_at_u == RouteSource::kProvider;
        if (!exported) return;
        if (drops(u, adjacency_at_u)) return;
        RefRoute candidate{adjacency_at_u,
                           static_cast<uint16_t>(via.distance + 1)};
        if (best.source == RouteSource::kNone || better(candidate, best)) {
          best = candidate;
        }
      };
      // Routes learned FROM customers / peers / providers of u.
      for (Asn c : graph.customers(u)) consider(c, RouteSource::kCustomer);
      for (Asn p : graph.peers(u)) consider(p, RouteSource::kPeer);
      for (Asn p : graph.providers(u)) consider(p, RouteSource::kProvider);
      if (best.source != RouteSource::kNone) next[u.value()] = best;
    }
    if (next != routes) {
      routes = std::move(next);
      changed = true;
    }
  }
  return routes;
}

AsGraph random_graph(util::Rng& rng, size_t n) {
  AsGraph graph;
  // A loose hierarchy: node i may buy transit from lower-indexed nodes
  // (guarantees acyclic p2c), plus random peering.
  for (size_t i = 0; i < n; ++i) graph.add_as(Asn(100 + i));
  for (size_t i = 1; i < n; ++i) {
    size_t providers = 1 + rng.uniform(2);
    for (size_t k = 0; k < providers; ++k) {
      size_t p = rng.uniform(i);
      graph.add_provider_customer(Asn(100 + p), Asn(100 + i));
    }
  }
  size_t peerings = n / 2;
  for (size_t k = 0; k < peerings; ++k) {
    size_t a = rng.uniform(n), b = rng.uniform(n);
    if (a == b) continue;
    // Avoid peer edges parallel to p2c edges (not meaningful in BGP).
    if (graph.is_provider_of(Asn(100 + a), Asn(100 + b)) ||
        graph.is_provider_of(Asn(100 + b), Asn(100 + a))) {
      continue;
    }
    graph.add_peer_peer(Asn(100 + a), Asn(100 + b));
  }
  return graph;
}

class PropagationVsReferenceP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationVsReferenceP, AgreesOnRandomGraphs) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    size_t n = 12 + rng.uniform(28);
    AsGraph graph = random_graph(rng, n);

    std::map<uint32_t, FilterPolicy> policies;
    for (Asn asn : graph.all_asns()) {
      FilterPolicy policy;
      policy.rov = rng.bernoulli(0.2);
      if (rng.bernoulli(0.3)) {
        policy.customer_strictness =
            static_cast<uint8_t>(1 + rng.uniform(kFilterVariants));
      }
      if (rng.bernoulli(0.2)) {
        policy.peer_strictness =
            static_cast<uint8_t>(1 + rng.uniform(kFilterVariants));
      }
      policies[asn.value()] = policy;
    }

    PropagationSim sim(graph);
    for (const auto& [asn, policy] : policies) {
      sim.set_policy(Asn(asn), policy);
    }

    for (int a = 0; a < 6; ++a) {
      Asn origin(100 + static_cast<uint32_t>(rng.uniform(n)));
      AnnouncementClass cls;
      cls.rpki_invalid = rng.bernoulli(0.4);
      cls.irr_invalid = rng.bernoulli(0.4);
      cls.variant =
          static_cast<uint8_t>(rng.uniform(kFilterVariants));

      PropagationResult fast = sim.propagate(origin, cls);
      auto reference = reference_propagate(graph, policies, origin, cls);

      for (Asn asn : graph.all_asns()) {
        int32_t id = sim.indexer().id_of(asn);
        ASSERT_GE(id, 0);
        auto ref_it = reference.find(asn.value());
        bool ref_reached = ref_it != reference.end();
        EXPECT_EQ(fast.reached(id), ref_reached)
            << "seed=" << GetParam() << " origin=" << origin.to_string()
            << " as=" << asn.to_string();
        if (!ref_reached || !fast.reached(id)) continue;
        EXPECT_EQ(fast.source[static_cast<size_t>(id)],
                  ref_it->second.source)
            << origin.to_string() << " -> " << asn.to_string();
        EXPECT_EQ(fast.distance[static_cast<size_t>(id)],
                  ref_it->second.distance)
            << origin.to_string() << " -> " << asn.to_string();
        // The materialized path must be valley-free and consistent.
        bgp::AsPath path = sim.path_from(fast, asn);
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.hops().size(),
                  static_cast<size_t>(ref_it->second.distance) + 1);
        EXPECT_EQ(path.origin(), origin);
        EXPECT_FALSE(path.has_loop());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationVsReferenceP,
                         ::testing::Values(1001, 2002, 3003, 4004, 5005,
                                           6006, 7007, 8008));

}  // namespace
}  // namespace manrs::sim
