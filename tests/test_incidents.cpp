#include "core/incidents.h"

#include <gtest/gtest.h>

namespace manrs::core {
namespace {

using net::Asn;
using net::Prefix;

bgp::PrefixOrigin po(const char* prefix, uint32_t origin) {
  return {Prefix::must_parse(prefix), Asn(origin)};
}

rpki::VrpStore victim_vrps() {
  rpki::VrpStore vrps;
  vrps.add({Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)});
  return vrps;
}

TEST(IncidentDetector, QuietBaselineNoIncidents) {
  rpki::VrpStore vrps = victim_vrps();
  IncidentDetector detector(vrps);
  std::vector<bgp::PrefixOrigin> table{po("10.0.0.0/8", 1),
                                       po("20.0.0.0/8", 2)};
  detector.observe(table);
  detector.observe(table);
  detector.observe(table);
  EXPECT_TRUE(detector.incidents().empty());
}

TEST(IncidentDetector, MoasConflictOpensAndCloses) {
  rpki::VrpStore vrps;  // empty: pure MOAS, no RPKI signal
  IncidentDetector detector(vrps);
  detector.observe({po("10.0.0.0/8", 1)});
  detector.observe({po("10.0.0.0/8", 1), po("10.0.0.0/8", 666)});  // hijack
  detector.observe({po("10.0.0.0/8", 1), po("10.0.0.0/8", 666)});
  detector.observe({po("10.0.0.0/8", 1)});  // resolved

  auto incidents = detector.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, IncidentKind::kMoasConflict);
  EXPECT_EQ(incidents[0].offender, Asn(666));
  EXPECT_EQ(incidents[0].established, Asn(1));
  EXPECT_EQ(incidents[0].first_snapshot, 1u);
  EXPECT_EQ(incidents[0].last_snapshot, 2u);
  EXPECT_EQ(incidents[0].duration(), 2u);
  EXPECT_FALSE(incidents[0].ongoing);
}

TEST(IncidentDetector, ReappearanceIsNewEpisode) {
  rpki::VrpStore vrps;
  IncidentDetector detector(vrps);
  detector.observe({po("10.0.0.0/8", 1)});
  detector.observe({po("10.0.0.0/8", 1), po("10.0.0.0/8", 666)});
  detector.observe({po("10.0.0.0/8", 1)});
  detector.observe({po("10.0.0.0/8", 1), po("10.0.0.0/8", 666)});
  auto incidents = detector.incidents();
  ASSERT_EQ(incidents.size(), 2u);
  EXPECT_TRUE(incidents[1].ongoing);
  EXPECT_FALSE(incidents[0].ongoing);
}

TEST(IncidentDetector, InitialMultiOriginIsNotMoas) {
  // Anycast-style legitimate MOAS present from the baseline.
  rpki::VrpStore vrps;
  IncidentDetector detector(vrps);
  std::vector<bgp::PrefixOrigin> table{po("10.0.0.0/8", 1),
                                       po("10.0.0.0/8", 2)};
  detector.observe(table);
  detector.observe(table);
  EXPECT_TRUE(detector.incidents().empty());
}

TEST(IncidentDetector, RpkiInvalidOriginationDetected) {
  rpki::VrpStore vrps = victim_vrps();
  IncidentDetector detector(vrps);
  // Invalid from the very first snapshot: still an incident.
  detector.observe({po("10.0.0.0/8", 1), po("10.1.0.0/16", 99)});
  detector.observe({po("10.0.0.0/8", 1)});
  auto incidents = detector.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, IncidentKind::kRpkiInvalidOrigin);
  EXPECT_EQ(incidents[0].offender, Asn(99));
  EXPECT_EQ(incidents[0].duration(), 1u);
}

TEST(IncidentDetector, MoasTakesPrecedenceOverRpki) {
  // A hijack of ROA-covered space is both MOAS and RPKI-invalid; it is
  // reported once, as MOAS.
  rpki::VrpStore vrps = victim_vrps();
  IncidentDetector detector(vrps);
  detector.observe({po("10.0.0.0/8", 1)});
  detector.observe({po("10.0.0.0/8", 1), po("10.0.0.0/8", 666)});
  auto incidents = detector.incidents();
  ASSERT_EQ(incidents.size(), 1u);
  EXPECT_EQ(incidents[0].kind, IncidentKind::kMoasConflict);
}

TEST(IncidentDetector, NewPrefixWithNewOriginIsNotMoas) {
  // A prefix absent from the baseline cannot MOAS-conflict.
  rpki::VrpStore vrps;
  IncidentDetector detector(vrps);
  detector.observe({po("10.0.0.0/8", 1)});
  detector.observe({po("10.0.0.0/8", 1), po("30.0.0.0/8", 7)});
  EXPECT_TRUE(detector.incidents().empty());
}

TEST(IncidentSummary, SplitsByMembership) {
  ManrsRegistry registry;
  Participant p;
  p.org_id = "org1";
  p.joined = util::Date(2020, 1, 1);
  p.registered_ases.push_back(Asn(666));
  registry.add_participant(p);

  std::vector<Incident> incidents(3);
  incidents[0].kind = IncidentKind::kMoasConflict;
  incidents[0].offender = Asn(666);  // member
  incidents[0].first_snapshot = 0;
  incidents[0].last_snapshot = 1;
  incidents[1].kind = IncidentKind::kRpkiInvalidOrigin;
  incidents[1].offender = Asn(5);
  incidents[2].kind = IncidentKind::kRpkiInvalidOrigin;
  incidents[2].offender = Asn(6);

  auto summary = summarize_incidents(incidents, registry, 10, 100);
  EXPECT_EQ(summary.total, 3u);
  EXPECT_EQ(summary.moas, 1u);
  EXPECT_EQ(summary.rpki_invalid, 2u);
  EXPECT_EQ(summary.by_manrs_members, 1u);
  EXPECT_EQ(summary.by_others, 2u);
  EXPECT_DOUBLE_EQ(summary.member_rate_per_origin, 0.1);
  EXPECT_DOUBLE_EQ(summary.other_rate_per_origin, 0.02);
  EXPECT_DOUBLE_EQ(summary.mean_duration, (2.0 + 1.0 + 1.0) / 3.0);
}

TEST(IncidentSummary, EmptyInputs) {
  ManrsRegistry registry;
  auto summary = summarize_incidents({}, registry, 0, 0);
  EXPECT_EQ(summary.total, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_duration, 0.0);
  EXPECT_DOUBLE_EQ(summary.member_rate_per_origin, 0.0);
}

TEST(IncidentKindNames, Strings) {
  EXPECT_EQ(to_string(IncidentKind::kMoasConflict), "moas-conflict");
  EXPECT_EQ(to_string(IncidentKind::kRpkiInvalidOrigin),
            "rpki-invalid-origin");
}

}  // namespace
}  // namespace manrs::core
