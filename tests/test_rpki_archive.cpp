#include "rpki/archive.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::rpki {
namespace {

using net::Asn;
using net::Prefix;
using util::Date;

TEST(VrpCsv, RoundTrip) {
  std::vector<Vrp> vrps{
      {Prefix::must_parse("10.0.0.0/8"), 24, Asn(64496), net::Rir::kRipe},
      {Prefix::must_parse("2001:db8::/32"), 48, Asn(64497),
       net::Rir::kApnic},
  };
  std::ostringstream out;
  write_vrp_csv(out, vrps, Date(2022, 5, 1));

  std::istringstream in(out.str());
  size_t skipped = 0;
  auto parsed = read_vrp_csv(in, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0], vrps[0]);
  EXPECT_EQ(parsed[1], vrps[1]);
}

TEST(VrpCsv, HeaderMatchesRipeFormat) {
  std::ostringstream out;
  write_vrp_csv(out, {}, Date(2022, 5, 1));
  EXPECT_EQ(out.str(),
            "URI,ASN,IP Prefix,Max Length,Not Before,Not After\n");
}

TEST(VrpCsv, ReadsRealWorldShapedRows) {
  // Rows in the exact shape RIPE publishes.
  std::string text =
      "URI,ASN,IP Prefix,Max Length,Not Before,Not After\n"
      "rsync://rpki.ripe.net/repo/x.roa,AS3333,193.0.0.0/21,21,"
      "2021-01-01,2023-01-01\n"
      "rsync://rpki.apnic.net/repo/y.roa,AS4608,1.0.0.0/24,24,"
      "2021-01-01,2023-01-01\n";
  std::istringstream in(text);
  auto vrps = read_vrp_csv(in);
  ASSERT_EQ(vrps.size(), 2u);
  EXPECT_EQ(vrps[0].asn, Asn(3333));
  EXPECT_EQ(vrps[0].prefix, Prefix::must_parse("193.0.0.0/21"));
  EXPECT_EQ(vrps[0].trust_anchor, net::Rir::kRipe);
  EXPECT_EQ(vrps[1].trust_anchor, net::Rir::kApnic);
}

TEST(VrpCsv, SkipsMalformedRows) {
  std::string text =
      "URI,ASN,IP Prefix,Max Length,Not Before,Not After\n"
      "u,ASxyz,10.0.0.0/8,8,a,b\n"      // bad ASN
      "u,AS1,299.0.0.0/8,8,a,b\n"       // bad prefix
      "u,AS1,10.0.0.0/8,notnum,a,b\n"   // bad max length
      "u,AS1,10.0.0.0/8,7,a,b\n"        // max length < prefix length
      "short,row\n"                     // too few columns
      "u,AS1,10.0.0.0/8,8,a,b\n";       // good
  std::istringstream in(text);
  size_t skipped = 0;
  auto vrps = read_vrp_csv(in, &skipped);
  EXPECT_EQ(vrps.size(), 1u);
  EXPECT_EQ(skipped, 5u);
}

TEST(ArchiveSeries, ExactAndAtOrBefore) {
  RpkiArchiveSeries series;
  series.add_snapshot(Date(2020, 5, 1),
                      {{Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)}});
  series.add_snapshot(Date(2021, 5, 1),
                      {{Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)},
                       {Prefix::must_parse("11.0.0.0/8"), 8, Asn(2)}});

  ASSERT_NE(series.at(Date(2020, 5, 1)), nullptr);
  EXPECT_EQ(series.at(Date(2020, 5, 1))->size(), 1u);
  EXPECT_EQ(series.at(Date(2020, 6, 1)), nullptr);

  // at_or_before picks the latest snapshot not after the query.
  EXPECT_EQ(series.at_or_before(Date(2020, 12, 31))->size(), 1u);
  EXPECT_EQ(series.at_or_before(Date(2022, 1, 1))->size(), 2u);
  EXPECT_EQ(series.at_or_before(Date(2019, 1, 1)), nullptr);
}

TEST(ArchiveSeries, DatesSorted) {
  RpkiArchiveSeries series;
  series.add_snapshot(Date(2021, 5, 1), {});
  series.add_snapshot(Date(2015, 5, 1), {});
  auto dates = series.dates();
  ASSERT_EQ(dates.size(), 2u);
  EXPECT_LT(dates[0], dates[1]);
}

}  // namespace
}  // namespace manrs::rpki
