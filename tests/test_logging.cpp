#include "util/logging.h"

#include <gtest/gtest.h>

namespace manrs::util {
namespace {

TEST(Logging, LevelGateIsGlobal) {
  LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(original);
}

TEST(Logging, StreamStyleComposition) {
  // Messages go to stderr; the test only checks the builder compiles and
  // does not crash for mixed types.
  LogLevel original = log_level();
  set_log_level(LogLevel::kError);  // suppress output during the test
  log_info() << "count=" << 42 << " ratio=" << 0.5 << " flag=" << true;
  log_debug() << "suppressed";
  log_warn() << "suppressed too";
  set_log_level(original);
  SUCCEED();
}

}  // namespace
}  // namespace manrs::util
