#include "netbase/ip.h"

#include <gtest/gtest.h>

namespace manrs::net {
namespace {

TEST(Ipv4, ParseAndFormat) {
  auto a = IpAddress::parse("192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_TRUE(a->is_v4());
  EXPECT_EQ(a->v4_value(), 0xC0000201u);
  EXPECT_EQ(a->to_string(), "192.0.2.1");
}

TEST(Ipv4, Extremes) {
  EXPECT_EQ(IpAddress::parse("0.0.0.0")->v4_value(), 0u);
  EXPECT_EQ(IpAddress::parse("255.255.255.255")->v4_value(), 0xFFFFFFFFu);
}

TEST(Ipv4, Malformed) {
  EXPECT_FALSE(IpAddress::parse("256.0.0.1"));
  EXPECT_FALSE(IpAddress::parse("1.2.3"));
  EXPECT_FALSE(IpAddress::parse("1.2.3.4.5"));
  EXPECT_FALSE(IpAddress::parse("1.2.3.x"));
  EXPECT_FALSE(IpAddress::parse(""));
  EXPECT_FALSE(IpAddress::parse("1..2.3"));
  EXPECT_FALSE(IpAddress::parse("01234.1.1.1"));
}

TEST(Ipv6, ParseFull) {
  auto a = IpAddress::parse("2001:0db8:0000:0000:0000:0000:0000:0001");
  ASSERT_TRUE(a);
  EXPECT_TRUE(a->is_v6());
  EXPECT_EQ(a->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo(), 0x0000000000000001ULL);
}

TEST(Ipv6, ParseCompressed) {
  auto a = IpAddress::parse("2001:db8::1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->hi(), 0x20010db800000000ULL);
  EXPECT_EQ(a->lo(), 1ULL);
  EXPECT_EQ(IpAddress::parse("::")->hi(), 0ULL);
  EXPECT_EQ(IpAddress::parse("::1")->lo(), 1ULL);
  EXPECT_EQ(IpAddress::parse("fe80::")->hi(), 0xfe80000000000000ULL);
}

TEST(Ipv6, EmbeddedV4Tail) {
  auto a = IpAddress::parse("::ffff:192.0.2.1");
  ASSERT_TRUE(a);
  EXPECT_EQ(a->lo(), 0x0000ffffc0000201ULL);
}

TEST(Ipv6, Malformed) {
  EXPECT_FALSE(IpAddress::parse("2001:db8"));
  EXPECT_FALSE(IpAddress::parse("1:2:3:4:5:6:7:8:9"));
  EXPECT_FALSE(IpAddress::parse("::1::2"));
  EXPECT_FALSE(IpAddress::parse("2001:db8:::1"));
  EXPECT_FALSE(IpAddress::parse("g::1"));
  EXPECT_FALSE(IpAddress::parse("12345::"));
}

TEST(Ipv6, Rfc5952Formatting) {
  // Longest zero run compressed, lowercase.
  EXPECT_EQ(IpAddress::parse("2001:0DB8:0:0:0:0:0:1")->to_string(),
            "2001:db8::1");
  EXPECT_EQ(IpAddress::v6(0, 0).to_string(), "::");
  EXPECT_EQ(IpAddress::v6(0, 1).to_string(), "::1");
  // Zero run at the end.
  EXPECT_EQ(IpAddress::parse("2a00::")->to_string(), "2a00::");
  // Only runs of >= 2 groups compress.
  EXPECT_EQ(IpAddress::parse("2001:0:1:2:3:4:5:6")->to_string(),
            "2001:0:1:2:3:4:5:6");
}

TEST(IpAddress, BitIndexing) {
  IpAddress v4 = IpAddress::v4(0x80000001u);  // 128.0.0.1
  EXPECT_TRUE(v4.bit(0));
  EXPECT_FALSE(v4.bit(1));
  EXPECT_TRUE(v4.bit(31));

  IpAddress v6 = IpAddress::v6(0x8000000000000000ULL, 1ULL);
  EXPECT_TRUE(v6.bit(0));
  EXPECT_FALSE(v6.bit(64));
  EXPECT_TRUE(v6.bit(127));
}

TEST(IpAddress, WithBit) {
  IpAddress a = IpAddress::v4(0);
  IpAddress b = a.with_bit(0, true);
  EXPECT_EQ(b.v4_value(), 0x80000000u);
  EXPECT_EQ(b.with_bit(0, false), a);
  IpAddress c = IpAddress::v6(0, 0).with_bit(127, true);
  EXPECT_EQ(c.lo(), 1ULL);
}

TEST(IpAddress, Masked) {
  IpAddress a = IpAddress::v4(0xC0A81234u);  // 192.168.18.52
  EXPECT_EQ(a.masked(16).v4_value(), 0xC0A80000u);
  EXPECT_EQ(a.masked(0).v4_value(), 0u);
  EXPECT_EQ(a.masked(32).v4_value(), 0xC0A81234u);

  IpAddress b = IpAddress::v6(0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(b.masked(64).lo(), 0ULL);
  EXPECT_EQ(b.masked(64).hi(), 0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(b.masked(65).lo(), 0x8000000000000000ULL);
  EXPECT_EQ(b.masked(128), b);
}

TEST(IpAddress, OrderingByFamilyThenValue) {
  // v4 < v6 by family tag.
  EXPECT_LT(IpAddress::v4(0xFFFFFFFFu), IpAddress::v6(0, 0));
  EXPECT_LT(IpAddress::v4(1), IpAddress::v4(2));
}

// Round-trip sweep.
class Ipv4RoundTripP : public ::testing::TestWithParam<const char*> {};
TEST_P(Ipv4RoundTripP, ParseFormatRoundTrip) {
  auto a = IpAddress::parse(GetParam());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), GetParam());
}
INSTANTIATE_TEST_SUITE_P(Samples, Ipv4RoundTripP,
                         ::testing::Values("0.0.0.0", "10.0.0.1",
                                           "172.16.254.3", "192.0.2.0",
                                           "203.0.113.200",
                                           "255.255.255.255"));

class Ipv6RoundTripP : public ::testing::TestWithParam<const char*> {};
TEST_P(Ipv6RoundTripP, ParseFormatRoundTrip) {
  auto a = IpAddress::parse(GetParam());
  ASSERT_TRUE(a);
  EXPECT_EQ(a->to_string(), GetParam());
  // Formatting is canonical: re-parsing gives the same address.
  EXPECT_EQ(IpAddress::parse(a->to_string()), *a);
}
INSTANTIATE_TEST_SUITE_P(Samples, Ipv6RoundTripP,
                         ::testing::Values("::", "::1", "2001:db8::1",
                                           "2400::", "2a00:1450:4001::5",
                                           "fe80::1:2:3:4",
                                           "2001:0:1:2:3:4:5:6"));

}  // namespace
}  // namespace manrs::net
