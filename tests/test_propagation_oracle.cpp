// Oracle tests for the rebuilt propagation engine.
//
// Two layers of defense:
//
//   * PropagationOracle: a naive per-AS-decision reference that scores
//     every neighbor offer with the full Gao-Rexford preference --
//     customer > peer > provider, then shorter path, then lowest
//     next-hop ASN -- iterated to a fixpoint. Unlike the fixpoint in
//     test_propagation_property.cpp (reachability/class/distance), this
//     oracle also pins down the chosen next hop, i.e. the exact
//     tie-break the CSR engine implements with dense-id comparisons.
//   * PropagationCache: propagate_cached() must be observationally
//     identical to propagate() -- same result values, and byte-identical
//     collector RIBs and hegemony CSVs with the cache on vs off -- while
//     actually sharing work across stages (hit rate > 0) and collapsing
//     classes no policy distinguishes onto one entry.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ihr/dataset.h"
#include "mrt/table_dump.h"
#include "simulator/collector.h"
#include "simulator/propagation.h"
#include "topogen/scenario.h"
#include "util/rng.h"

namespace manrs {
namespace {

using astopo::AsGraph;
using net::Asn;
using sim::AnnouncementClass;
using sim::FilterPolicy;
using sim::PropagationResult;
using sim::PropagationSim;
using sim::PropagationWorkspace;
using sim::RouteSource;

// ---------------------------------------------------------------------------
// The reference oracle: full per-AS decision, one neighbor offer at a time.

struct OracleRoute {
  RouteSource source = RouteSource::kNone;
  uint16_t distance = 0;
  uint32_t next_hop = 0;  // ASN value; 0 (reserved ASN) for the origin

  bool operator==(const OracleRoute&) const = default;
};

/// Full route preference: class (RouteSource enum order is already
/// provider < peer < customer < origin), then distance, then lowest
/// next-hop ASN.
bool better(const OracleRoute& a, const OracleRoute& b) {
  if (a.source != b.source) {
    return static_cast<int>(a.source) > static_cast<int>(b.source);
  }
  if (a.distance != b.distance) return a.distance < b.distance;
  return a.next_hop < b.next_hop;
}

std::map<uint32_t, OracleRoute> oracle_propagate(
    const AsGraph& graph, const std::map<uint32_t, FilterPolicy>& policies,
    Asn origin, const AnnouncementClass& cls) {
  std::map<uint32_t, OracleRoute> routes;
  if (!graph.contains(origin)) return routes;
  routes[origin.value()] = OracleRoute{RouteSource::kOrigin, 0, 0};

  auto drops = [&](Asn receiver, RouteSource adjacency) {
    auto it = policies.find(receiver.value());
    FilterPolicy policy = it == policies.end() ? FilterPolicy{} : it->second;
    if (policy.rov && cls.rpki_invalid) return true;
    bool invalid = cls.rpki_invalid || cls.irr_invalid;
    if (!invalid) return false;
    if (adjacency == RouteSource::kCustomer &&
        cls.variant < policy.customer_strictness) {
      return true;
    }
    if (adjacency == RouteSource::kPeer &&
        cls.variant < policy.peer_strictness) {
      return true;
    }
    return false;
  };

  // Synchronous relaxation to the converged BGP state (see
  // test_propagation_property.cpp for why monotone updates don't work).
  bool changed = true;
  size_t guard = 0;
  while (changed && guard++ < 2 * graph.as_count() + 8) {
    changed = false;
    std::map<uint32_t, OracleRoute> next;
    next[origin.value()] = OracleRoute{RouteSource::kOrigin, 0, 0};
    for (Asn u : graph.all_asns()) {
      if (u == origin) continue;
      OracleRoute best;  // kNone
      auto consider = [&](Asn v, RouteSource adjacency_at_u) {
        auto vit = routes.find(v.value());
        if (vit == routes.end()) return;
        const OracleRoute& via = vit->second;
        // v exports its best route to u only when valley-free allows it:
        // customer/origin routes go to everyone, anything goes downhill.
        bool exported = via.source == RouteSource::kOrigin ||
                        via.source == RouteSource::kCustomer ||
                        adjacency_at_u == RouteSource::kProvider;
        if (!exported) return;
        if (drops(u, adjacency_at_u)) return;
        OracleRoute candidate{adjacency_at_u,
                              static_cast<uint16_t>(via.distance + 1),
                              v.value()};
        if (best.source == RouteSource::kNone || better(candidate, best)) {
          best = candidate;
        }
      };
      for (Asn c : graph.customers(u)) consider(c, RouteSource::kCustomer);
      for (Asn p : graph.peers(u)) consider(p, RouteSource::kPeer);
      for (Asn p : graph.providers(u)) consider(p, RouteSource::kProvider);
      if (best.source != RouteSource::kNone) next[u.value()] = best;
    }
    if (next != routes) {
      routes = std::move(next);
      changed = true;
    }
  }
  return routes;
}

AsGraph random_graph(util::Rng& rng, size_t n) {
  AsGraph graph;
  // Node i may buy transit from lower-indexed nodes (acyclic p2c), plus
  // random peering edges not parallel to p2c edges.
  for (size_t i = 0; i < n; ++i) graph.add_as(Asn(100 + i));
  for (size_t i = 1; i < n; ++i) {
    size_t providers = 1 + rng.uniform(2);
    for (size_t k = 0; k < providers; ++k) {
      graph.add_provider_customer(Asn(100 + rng.uniform(i)), Asn(100 + i));
    }
  }
  for (size_t k = 0; k < n / 2; ++k) {
    size_t a = rng.uniform(n), b = rng.uniform(n);
    if (a == b) continue;
    if (graph.is_provider_of(Asn(100 + a), Asn(100 + b)) ||
        graph.is_provider_of(Asn(100 + b), Asn(100 + a))) {
      continue;
    }
    graph.add_peer_peer(Asn(100 + a), Asn(100 + b));
  }
  return graph;
}

std::map<uint32_t, FilterPolicy> random_policies(util::Rng& rng,
                                                 const AsGraph& graph) {
  std::map<uint32_t, FilterPolicy> policies;
  for (Asn asn : graph.all_asns()) {
    FilterPolicy policy;
    policy.rov = rng.bernoulli(0.2);
    if (rng.bernoulli(0.3)) {
      policy.customer_strictness =
          static_cast<uint8_t>(1 + rng.uniform(sim::kFilterVariants));
    }
    if (rng.bernoulli(0.2)) {
      policy.peer_strictness =
          static_cast<uint8_t>(1 + rng.uniform(sim::kFilterVariants));
    }
    policies[asn.value()] = policy;
  }
  return policies;
}

AnnouncementClass random_class(util::Rng& rng) {
  AnnouncementClass cls;
  cls.rpki_invalid = rng.bernoulli(0.4);
  cls.irr_invalid = rng.bernoulli(0.4);
  cls.variant = static_cast<uint8_t>(rng.uniform(sim::kFilterVariants));
  return cls;
}

class PropagationOracleP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagationOracleP, EveryPerAsDecisionMatches) {
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 3; ++trial) {
    size_t n = 10 + rng.uniform(30);
    AsGraph graph = random_graph(rng, n);
    auto policies = random_policies(rng, graph);

    PropagationSim sim(graph);
    for (const auto& [asn, policy] : policies) {
      sim.set_policy(Asn(asn), policy);
    }

    // One workspace reused across every propagation of the trial: the
    // epoch reset must leave no state behind from earlier calls.
    PropagationWorkspace workspace;
    for (int a = 0; a < 6; ++a) {
      Asn origin(100 + static_cast<uint32_t>(rng.uniform(n)));
      AnnouncementClass cls = random_class(rng);

      PropagationResult fast = sim.propagate(origin, cls, workspace);
      auto oracle = oracle_propagate(graph, policies, origin, cls);

      for (Asn asn : graph.all_asns()) {
        int32_t id = sim.indexer().id_of(asn);
        ASSERT_GE(id, 0);
        auto ref = oracle.find(asn.value());
        const bool ref_reached = ref != oracle.end();
        ASSERT_EQ(fast.reached(id), ref_reached)
            << "seed=" << GetParam() << " origin=" << origin.to_string()
            << " as=" << asn.to_string();
        if (!ref_reached) continue;
        const size_t i = static_cast<size_t>(id);
        EXPECT_EQ(fast.source[i], ref->second.source)
            << origin.to_string() << " -> " << asn.to_string();
        EXPECT_EQ(fast.distance[i], ref->second.distance)
            << origin.to_string() << " -> " << asn.to_string();
        if (ref->second.source != RouteSource::kOrigin) {
          // The decisive check: the engine's dense-id tie-break must pick
          // exactly the oracle's lowest-ASN next hop.
          ASSERT_GE(fast.next_hop[i], 0);
          EXPECT_EQ(sim.indexer().asn_of(fast.next_hop[i]).value(),
                    ref->second.next_hop)
              << "seed=" << GetParam() << " origin=" << origin.to_string()
              << " as=" << asn.to_string();
        } else {
          EXPECT_EQ(fast.next_hop[i], PropagationResult::kNoRoute);
        }
      }
    }
  }
}

TEST_P(PropagationOracleP, WorkspaceReuseIsIdempotent) {
  util::Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  size_t n = 12 + rng.uniform(20);
  AsGraph graph = random_graph(rng, n);
  auto policies = random_policies(rng, graph);
  PropagationSim sim(graph);
  for (const auto& [asn, policy] : policies) sim.set_policy(Asn(asn), policy);

  // Results through one long-lived workspace must equal results through a
  // fresh workspace per call, in any interleaving.
  PropagationWorkspace reused;
  for (int a = 0; a < 8; ++a) {
    Asn origin(100 + static_cast<uint32_t>(rng.uniform(n)));
    AnnouncementClass cls = random_class(rng);
    PropagationResult warm = sim.propagate(origin, cls, reused);
    PropagationWorkspace fresh;
    PropagationResult cold = sim.propagate(origin, cls, fresh);
    EXPECT_EQ(warm.source, cold.source);
    EXPECT_EQ(warm.next_hop, cold.next_hop);
    EXPECT_EQ(warm.distance, cold.distance);
  }
}

TEST_P(PropagationOracleP, BatchedLanesMatchOracle) {
  // Every lane of one batched sweep must match the naive oracle. The
  // batch deliberately mixes effective drop signatures: valid lanes
  // propagate unfiltered while invalid variants hit ROV / strictness
  // filters of the same policies in the same sweep, plus a duplicate
  // (origin, class) lane pair.
  util::Rng rng(GetParam() * 0x2545f4914f6cdd1dull + 1);
  size_t n = 12 + rng.uniform(24);
  AsGraph graph = random_graph(rng, n);
  auto policies = random_policies(rng, graph);
  PropagationSim sim(graph);
  for (const auto& [asn, policy] : policies) sim.set_policy(Asn(asn), policy);

  std::vector<sim::PropagationRequest> requests;
  AnnouncementClass valid;  // all-clear signature
  Asn first(100 + static_cast<uint32_t>(rng.uniform(n)));
  requests.push_back(sim::PropagationRequest{first, valid});
  requests.push_back(sim::PropagationRequest{first, valid});  // duplicate lane
  for (int a = 0; a < 8; ++a) {
    requests.push_back(sim::PropagationRequest{
        Asn(100 + static_cast<uint32_t>(rng.uniform(n))), random_class(rng)});
  }

  sim::BatchWorkspace workspace;
  std::vector<PropagationResult> lanes = sim.propagate_batch(requests,
                                                             workspace);
  ASSERT_EQ(lanes.size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    auto oracle = oracle_propagate(graph, policies, requests[r].origin,
                                   requests[r].cls);
    const PropagationResult& lane = lanes[r];
    for (Asn asn : graph.all_asns()) {
      int32_t id = sim.indexer().id_of(asn);
      ASSERT_GE(id, 0);
      auto ref = oracle.find(asn.value());
      const bool ref_reached = ref != oracle.end();
      ASSERT_EQ(lane.reached(id), ref_reached)
          << "seed=" << GetParam() << " lane=" << r
          << " origin=" << requests[r].origin.to_string()
          << " as=" << asn.to_string();
      if (!ref_reached) continue;
      const size_t i = static_cast<size_t>(id);
      EXPECT_EQ(lane.source[i], ref->second.source)
          << "lane=" << r << " as=" << asn.to_string();
      EXPECT_EQ(lane.distance[i], ref->second.distance)
          << "lane=" << r << " as=" << asn.to_string();
      if (ref->second.source != RouteSource::kOrigin) {
        ASSERT_GE(lane.next_hop[i], 0);
        EXPECT_EQ(sim.indexer().asn_of(lane.next_hop[i]).value(),
                  ref->second.next_hop)
            << "seed=" << GetParam() << " lane=" << r
            << " origin=" << requests[r].origin.to_string()
            << " as=" << asn.to_string();
      } else {
        EXPECT_EQ(lane.next_hop[i], PropagationResult::kNoRoute);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagationOracleP,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// ---------------------------------------------------------------------------
// Cache equivalence and sharing.

TEST(PropagationCache, CachedMatchesUncached) {
  util::Rng rng(4242);
  AsGraph graph = random_graph(rng, 24);
  auto policies = random_policies(rng, graph);
  PropagationSim sim(graph);
  for (const auto& [asn, policy] : policies) sim.set_policy(Asn(asn), policy);

  for (int a = 0; a < 12; ++a) {
    Asn origin(100 + static_cast<uint32_t>(rng.uniform(24)));
    AnnouncementClass cls = random_class(rng);
    PropagationResult plain = sim.propagate(origin, cls);
    sim::PropagationResultPtr cached = sim.propagate_cached(origin, cls);
    ASSERT_NE(cached, nullptr);
    EXPECT_EQ(plain.source, cached->source);
    EXPECT_EQ(plain.next_hop, cached->next_hop);
    EXPECT_EQ(plain.distance, cached->distance);
    // Second lookup must serve the identical object.
    EXPECT_EQ(sim.propagate_cached(origin, cls).get(), cached.get());
  }
  auto stats = sim.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.entries, 0u);
}

TEST(PropagationCache, EquivalentClassesShareOneEntry) {
  // With no filtering policies at all, every class has all-zero drop
  // masks: valid and invalid announcements at one origin must collapse
  // onto a single cached propagation.
  util::Rng rng(99);
  AsGraph graph = random_graph(rng, 16);
  PropagationSim sim(graph);

  Asn origin(105);
  AnnouncementClass valid;  // all defaults
  sim::PropagationResultPtr first = sim.propagate_cached(origin, valid);
  AnnouncementClass invalid;
  invalid.rpki_invalid = true;
  invalid.variant = 2;
  sim::PropagationResultPtr second = sim.propagate_cached(origin, invalid);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(sim.cache_stats().hits, 1u);
  EXPECT_EQ(sim.cache_stats().misses, 1u);
}

TEST(PropagationCache, ClearAndDisable) {
  util::Rng rng(7);
  AsGraph graph = random_graph(rng, 12);
  PropagationSim sim(graph);
  Asn origin(103);
  AnnouncementClass cls;
  PropagationResult plain = sim.propagate(origin, cls);

  ASSERT_TRUE(sim.cache_enabled());
  sim::PropagationResultPtr kept = sim.propagate_cached(origin, cls);
  EXPECT_EQ(sim.cache_stats().entries, 1u);
  sim.clear_cache();
  EXPECT_EQ(sim.cache_stats().entries, 0u);
  // Pointers returned before the clear stay valid.
  EXPECT_EQ(kept->source, plain.source);

  sim.set_cache_enabled(false);
  sim::PropagationResultPtr uncached = sim.propagate_cached(origin, cls);
  EXPECT_EQ(sim.cache_stats().entries, 0u);
  EXPECT_EQ(uncached->source, plain.source);
  EXPECT_EQ(uncached->next_hop, plain.next_hop);
  EXPECT_EQ(uncached->distance, plain.distance);
  sim.set_cache_enabled(true);
}

// Scenario-level byte equality: the full collector and hegemony outputs
// must not depend on whether the cache is on.

std::vector<sim::Announcement> classified_announcements(
    const topogen::Scenario& scenario) {
  std::vector<sim::Announcement> out;
  for (const auto& po : scenario.announcements()) {
    AnnouncementClass cls;
    cls.rpki_invalid =
        rpki::is_invalid(scenario.vrps.validate(po.prefix, po.origin));
    cls.irr_invalid =
        irr::validate_route(scenario.irr, po.prefix, po.origin) ==
        irr::IrrStatus::kInvalidAsn;
    cls.variant = (cls.rpki_invalid || cls.irr_invalid)
                      ? sim::filter_variant(po.prefix)
                      : 0;
    out.push_back(sim::Announcement{po.prefix, po.origin, cls});
  }
  return out;
}

std::string rib_bytes(const bgp::Rib& rib) {
  std::ostringstream out;
  mrt::TableDumpWriter writer(out, /*timestamp=*/1651363200);  // 2022-05-01
  writer.write_rib(rib, "oracle");
  return out.str();
}

std::string hegemony_bytes(const ihr::IhrSnapshot& snapshot) {
  std::ostringstream po, transit;
  ihr::write_prefix_origin_csv(po, snapshot.prefix_origins);
  ihr::write_transit_csv(transit, snapshot.transits);
  return po.str() + "\n---\n" + transit.str();
}

TEST(PropagationCache, CollectorBytesIdenticalCacheOnVsOff) {
  const topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  auto announcements = classified_announcements(scenario);
  ASSERT_FALSE(announcements.empty());

  auto collect_bytes = [&](bool cache_on) {
    PropagationSim simulator = scenario.make_sim();
    simulator.set_cache_enabled(cache_on);
    sim::RouteCollector collector(simulator, scenario.vantage_points);
    return rib_bytes(collector.collect(announcements));
  };
  std::string on = collect_bytes(true);
  std::string off = collect_bytes(false);
  ASSERT_FALSE(on.empty());
  EXPECT_EQ(on, off);
}

TEST(PropagationCache, HegemonyBytesIdenticalCacheOnVsOff) {
  const topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());

  auto snapshot_bytes = [&](bool cache_on) {
    PropagationSim simulator = scenario.make_sim();
    simulator.set_cache_enabled(cache_on);
    ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
    return hegemony_bytes(builder.build(scenario.announcements(),
                                        scenario.vrps, scenario.irr));
  };
  std::string on = snapshot_bytes(true);
  std::string off = snapshot_bytes(false);
  ASSERT_GT(on.size(), 100u);
  EXPECT_EQ(on, off);
}

TEST(PropagationCache, HegemonyStageReusesCollectorPropagations) {
  // The cross-stage contract the bench relies on: after the collector
  // has run, the hegemony builder's groups are all cache hits.
  const topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  PropagationSim simulator = scenario.make_sim();
  sim::RouteCollector collector(simulator, scenario.vantage_points);
  auto announcements = classified_announcements(scenario);
  ASSERT_FALSE(announcements.empty());

  (void)collector.collect(announcements);
  auto after_collect = simulator.cache_stats();
  EXPECT_GT(after_collect.misses, 0u);
  EXPECT_GT(after_collect.entries, 0u);

  ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
  (void)builder.build(scenario.announcements(), scenario.vrps, scenario.irr);
  auto after_build = simulator.cache_stats();
  EXPECT_GT(after_build.hits, after_collect.hits);
  // Identical group structure: the second stage adds no new entries.
  EXPECT_EQ(after_build.entries, after_collect.entries);
}

}  // namespace
}  // namespace manrs
