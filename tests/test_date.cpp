#include "util/date.h"

#include <gtest/gtest.h>

namespace manrs::util {
namespace {

TEST(Date, EpochIsDayZero) {
  EXPECT_EQ(Date(1970, 1, 1).to_days(), 0);
  EXPECT_EQ(Date(1970, 1, 2).to_days(), 1);
  EXPECT_EQ(Date(1969, 12, 31).to_days(), -1);
}

TEST(Date, KnownOffsets) {
  // 2022-05-01, the paper's snapshot date.
  EXPECT_EQ(Date(2022, 5, 1).to_days(), 19113);
  EXPECT_EQ(Date::from_days(19113), Date(2022, 5, 1));
}

TEST(Date, Validity) {
  EXPECT_TRUE(Date(2022, 2, 28).valid());
  EXPECT_FALSE(Date(2022, 2, 29).valid());  // not a leap year
  EXPECT_TRUE(Date(2020, 2, 29).valid());   // leap year
  EXPECT_FALSE(Date(2000, 13, 1).valid());
  EXPECT_FALSE(Date(2000, 0, 1).valid());
  EXPECT_FALSE(Date(2000, 4, 31).valid());
  EXPECT_TRUE(Date(2000, 2, 29).valid());   // 400-year leap rule
  EXPECT_FALSE(Date(1900, 2, 29).valid());  // 100-year non-leap rule
}

TEST(Date, Parse) {
  EXPECT_EQ(Date::parse("2022-05-01"), Date(2022, 5, 1));
  EXPECT_EQ(Date::parse("2022/05/01"), Date(2022, 5, 1));
  EXPECT_EQ(Date::parse("20220501"), Date(2022, 5, 1));
  EXPECT_EQ(Date::parse(" 2022-05-01 "), Date(2022, 5, 1));
  EXPECT_FALSE(Date::parse("2022-13-01"));
  EXPECT_FALSE(Date::parse("2022-02-30"));
  EXPECT_FALSE(Date::parse("not-a-date"));
  EXPECT_FALSE(Date::parse(""));
}

TEST(Date, Format) {
  EXPECT_EQ(Date(2022, 5, 1).to_string(), "2022-05-01");
  EXPECT_EQ(Date(199, 12, 31).to_string(), "0199-12-31");
}

TEST(Date, AddDaysAcrossMonthAndYear) {
  EXPECT_EQ(Date(2022, 2, 25).add_days(7), Date(2022, 3, 4));
  EXPECT_EQ(Date(2021, 12, 31).add_days(1), Date(2022, 1, 1));
  EXPECT_EQ(Date(2022, 1, 1).add_days(-1), Date(2021, 12, 31));
}

TEST(Date, AddMonths) {
  EXPECT_EQ(Date(2022, 5, 15).add_months(1), Date(2022, 6, 1));
  EXPECT_EQ(Date(2022, 12, 1).add_months(1), Date(2023, 1, 1));
  EXPECT_EQ(Date(2022, 1, 1).add_months(-1), Date(2021, 12, 1));
  EXPECT_EQ(Date(2022, 5, 1).add_months(-12), Date(2021, 5, 1));
}

TEST(Date, Ordering) {
  EXPECT_LT(Date(2021, 12, 31), Date(2022, 1, 1));
  EXPECT_LT(Date(2022, 1, 31), Date(2022, 2, 1));
  EXPECT_EQ(Date(2022, 5, 1), Date(2022, 5, 1));
}

TEST(DateSeries, WeeklySnapshots) {
  // The paper's 12 weekly snapshots Feb 1 - May 1 2022 fit this helper.
  auto series = date_series(Date(2022, 2, 1), Date(2022, 5, 1), 7);
  ASSERT_FALSE(series.empty());
  EXPECT_EQ(series.front(), Date(2022, 2, 1));
  EXPECT_EQ(series.size(), 13u);  // inclusive
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_EQ(series[i].to_days() - series[i - 1].to_days(), 7);
  }
}

TEST(DateSeries, AnnualSnapshots) {
  auto series = annual_series(2015, 2022, 5, 1);
  ASSERT_EQ(series.size(), 8u);
  EXPECT_EQ(series.front(), Date(2015, 5, 1));
  EXPECT_EQ(series.back(), Date(2022, 5, 1));
}

TEST(DateSeries, DegenerateInputs) {
  EXPECT_TRUE(date_series(Date(2022, 1, 2), Date(2022, 1, 1), 7).empty());
  EXPECT_TRUE(date_series(Date(2022, 1, 1), Date(2022, 2, 1), 0).empty());
  EXPECT_EQ(date_series(Date(2022, 1, 1), Date(2022, 1, 1), 7).size(), 1u);
}

// Round-trip property across a wide range of days.
class DateRoundTripP : public ::testing::TestWithParam<int64_t> {};

TEST_P(DateRoundTripP, DaysRoundTrip) {
  int64_t days = GetParam();
  Date d = Date::from_days(days);
  EXPECT_TRUE(d.valid());
  EXPECT_EQ(d.to_days(), days);
  EXPECT_EQ(Date::parse(d.to_string()), d);
}

INSTANTIATE_TEST_SUITE_P(SampledDays, DateRoundTripP,
                         ::testing::Values(-719468, -1, 0, 1, 365, 10957,
                                           16436, 18262, 19113, 20000,
                                           30000, 2932896));

}  // namespace
}  // namespace manrs::util
