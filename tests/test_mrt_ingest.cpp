// Streaming zero-copy MRT ingest tests: frame-index scan edge cases
// (truncation, corruption, block-boundary straddling), mmap-vs-istream
// byte-equality goldens across the thread x grain matrix, and the
// BGP4MP update-stream fold (MrtIngest / UpdateStream suites).
//
// "Byte-identical" is checked the strong way: two Ribs are equal iff
// re-serializing both through TableDumpWriter yields the same bytes
// (peer table, row order, per-row entry order -- everything).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mrt/bgp4mp.h"
#include "mrt/frame_index.h"
#include "mrt/table_dump.h"
#include "util/bytes.h"
#include "util/mapped_file.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace manrs::mrt {
namespace {

using net::Asn;
using net::Prefix;

bgp::AsPath path(std::initializer_list<uint32_t> hops) {
  std::vector<Asn> v;
  for (uint32_t h : hops) v.emplace_back(h);
  return bgp::AsPath(std::move(v));
}

/// Random finalized Rib: `prefixes` rows spread over five peers.
bgp::Rib random_rib(uint64_t seed, int prefixes) {
  util::Rng rng(seed);
  bgp::Rib rib;
  std::vector<uint32_t> peers;
  for (int i = 0; i < 5; ++i) {
    peers.push_back(rib.add_peer(Asn(65000 + static_cast<uint32_t>(i))));
  }
  for (int i = 0; i < prefixes; ++i) {
    bool v6 = rng.bernoulli(0.3);
    unsigned len = static_cast<unsigned>(
        v6 ? 16 + rng.uniform(49) : 8 + rng.uniform(25));
    net::IpAddress addr =
        v6 ? net::IpAddress::v6(rng.next(), rng.next())
           : net::IpAddress::v4(static_cast<uint32_t>(rng.next()));
    Prefix prefix(addr, len);
    size_t hop_count = 1 + rng.uniform(6);
    std::vector<Asn> hops;
    for (size_t h = 0; h < hop_count; ++h) {
      hops.emplace_back(static_cast<uint32_t>(1 + rng.uniform(100000)));
    }
    rib.insert(prefix, peers[rng.uniform(peers.size())],
               bgp::AsPath(std::move(hops)));
  }
  rib.finalize();
  return rib;
}

/// Serialize a finalized Rib; the byte-equality oracle for Rib identity.
std::string dump_of(const bgp::Rib& rib) {
  std::ostringstream out;
  TableDumpWriter writer(out, /*timestamp=*/1651363200);
  writer.write_rib(rib, "ingest-test");
  return out.str();
}

/// Order-insensitive row content: "prefix peer_asn|path" lines with each
/// row's entries sorted, for fold tests where entry order inside a row
/// legitimately differs from a from-scratch build.
std::vector<std::string> canonical(const bgp::Rib& rib) {
  std::vector<std::string> out;
  rib.for_each([&](const Prefix& prefix,
                   const std::vector<bgp::RibEntry>& entries) {
    std::vector<std::string> rows;
    for (const auto& e : entries) {
      rows.push_back(rib.peer_asn(e.peer_index).to_string() + "|" +
                     e.path.to_string());
    }
    std::sort(rows.begin(), rows.end());
    for (const auto& r : rows) out.push_back(prefix.to_string() + " " + r);
  });
  return out;
}

/// Append one hand-crafted MRT record (12-byte header + body).
void put_record(ByteWriter& w, uint16_t type, uint16_t subtype,
                std::span<const uint8_t> body, uint32_t timestamp = 7) {
  w.u32(timestamp);
  w.u16(type);
  w.u16(subtype);
  w.u32(static_cast<uint32_t>(body.size()));
  w.bytes(body);
}

void expect_same_index(const FrameIndex& a, const FrameIndex& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].offset, b.records[i].offset) << i;
    EXPECT_EQ(a.records[i].length, b.records[i].length) << i;
    EXPECT_EQ(a.records[i].type, b.records[i].type) << i;
    EXPECT_EQ(a.records[i].subtype, b.records[i].subtype) << i;
    EXPECT_EQ(a.records[i].timestamp, b.records[i].timestamp) << i;
  }
  EXPECT_EQ(a.bad, b.bad);
  EXPECT_EQ(a.truncated, b.truncated);
  EXPECT_EQ(a.scanned_bytes, b.scanned_bytes);
}

class MrtIngest : public ::testing::Test {
 protected:
  // Every test leaves the global pool and grain as it found them.
  void TearDown() override {
    util::set_thread_count(0);
    util::set_grain(0);
  }
};

TEST_F(MrtIngest, FrameScanEmptyInput) {
  FrameIndex index = scan_frames({});
  EXPECT_TRUE(index.records.empty());
  EXPECT_EQ(index.bad, 0u);
  EXPECT_FALSE(index.truncated);
  EXPECT_EQ(index.scanned_bytes, 0u);
}

TEST_F(MrtIngest, FrameScanTruncatedHeaderAtEof) {
  ByteWriter w;
  w.u32(1);
  w.u16(13);  // six header bytes, then EOF
  FrameIndex index = scan_frames(w.span());
  EXPECT_TRUE(index.records.empty());
  EXPECT_EQ(index.bad, 1u);
  EXPECT_TRUE(index.truncated);
  EXPECT_EQ(index.scanned_bytes, 0u);
}

TEST_F(MrtIngest, FrameScanTruncatedBodyAtEof) {
  ByteWriter w;
  w.u32(1);
  w.u16(13);
  w.u16(2);
  w.u32(100);  // declares 100 body bytes...
  w.u32(0);    // ...but only 4 follow
  FrameIndex index = scan_frames(w.span());
  EXPECT_TRUE(index.records.empty());
  EXPECT_EQ(index.bad, 1u);
  EXPECT_TRUE(index.truncated);
}

TEST_F(MrtIngest, FrameScanCorruptLengthMidFileEndsChain) {
  ByteWriter good_body;
  good_body.u32(0xAABBCCDD);
  ByteWriter w;
  put_record(w, 99, 0, good_body.span());
  const size_t corrupt_at = w.size();
  w.u32(2);
  w.u16(99);
  w.u16(0);
  w.u32(0xFFFFFFFFu);  // absurd declared length: the chain is broken
  put_record(w, 99, 0, good_body.span());  // unreachable

  FrameIndex index = scan_frames(w.span());
  ASSERT_EQ(index.records.size(), 1u);
  EXPECT_EQ(index.records[0].offset, 12u);
  EXPECT_EQ(index.records[0].length, 4u);
  EXPECT_EQ(index.bad, 1u);
  EXPECT_TRUE(index.truncated);
  EXPECT_EQ(index.scanned_bytes, corrupt_at);
}

TEST_F(MrtIngest, ParallelScanMatchesSerialAcrossBlockHints) {
  // Zero-filled bodies are the adversarial case: a zero timestamp /
  // type / length parses as a plausible chain of empty records, so
  // block anchors probed inside a body look valid until the stitch
  // pass rejects them.
  ByteWriter w;
  std::vector<uint8_t> zeros(97, 0);
  std::vector<uint8_t> ones(61, 0xFF);
  for (int i = 0; i < 40; ++i) {
    put_record(w, 13, 2, i % 2 ? std::span<const uint8_t>(zeros)
                               : std::span<const uint8_t>(ones),
               static_cast<uint32_t>(i));
  }
  const FrameIndex serial = scan_frames(w.span());
  ASSERT_EQ(serial.records.size(), 40u);

  for (size_t threads : {2u, 4u, 8u}) {
    util::set_thread_count(threads);
    for (size_t hint : {13u, 16u, 64u, 256u, 1024u}) {
      FrameIndex parallel = scan_frames_parallel(w.span(), hint);
      expect_same_index(parallel, serial);
    }
  }
}

TEST_F(MrtIngest, ParallelScanMatchesSerialOnCorruptTail) {
  ByteWriter w;
  std::vector<uint8_t> zeros(33, 0);
  for (int i = 0; i < 20; ++i) put_record(w, 13, 2, zeros);
  w.u32(9);
  w.u16(13);
  w.u16(2);
  w.u32(1u << 30);  // oversized declared length mid-file
  for (int i = 0; i < 5; ++i) put_record(w, 13, 2, zeros);

  const FrameIndex serial = scan_frames(w.span());
  EXPECT_EQ(serial.bad, 1u);
  EXPECT_TRUE(serial.truncated);
  util::set_thread_count(4);
  for (size_t hint : {16u, 128u, 512u}) {
    FrameIndex parallel = scan_frames_parallel(w.span(), hint);
    expect_same_index(parallel, serial);
  }
}

TEST_F(MrtIngest, ReadRibSpanMatchesStreamReaderByteForByte) {
  bgp::Rib rib = random_rib(4242, 200);
  const std::string dump = dump_of(rib);

  size_t bad_span = 0;
  bgp::Rib from_span =
      TableDumpReader::read_rib(util::as_bytes(dump), &bad_span);
  std::istringstream in(dump);
  size_t bad_stream = 0;
  bgp::Rib from_stream = TableDumpReader::read_rib(in, &bad_stream);

  EXPECT_EQ(bad_span, 0u);
  EXPECT_EQ(bad_stream, 0u);
  EXPECT_EQ(dump_of(from_span), dump_of(from_stream));
  EXPECT_EQ(dump_of(from_span), dump);  // round-trip is exact
}

TEST_F(MrtIngest, ReadRibGoldenAcrossThreadGrainMatrix) {
  bgp::Rib rib = random_rib(99, 300);
  const std::string dump = dump_of(rib);
  util::set_thread_count(1);
  const std::string golden =
      dump_of(TableDumpReader::read_rib(util::as_bytes(dump)));

  for (size_t threads : {1u, 2u, 4u}) {
    for (size_t grain : {1u, 7u, 0u}) {
      util::set_thread_count(threads);
      util::set_grain(grain);
      size_t bad = 0;
      bgp::Rib decoded = TableDumpReader::read_rib(util::as_bytes(dump), &bad);
      EXPECT_EQ(bad, 0u);
      EXPECT_EQ(dump_of(decoded), golden)
          << "threads=" << threads << " grain=" << grain;
    }
  }
}

TEST_F(MrtIngest, ReadRibTruncatedDumpCountsOneBadRecord) {
  bgp::Rib rib = random_rib(7, 40);
  std::string dump = dump_of(rib);
  dump.resize(dump.size() - 5);  // chop mid-record
  size_t bad = 0;
  bgp::Rib parsed = TableDumpReader::read_rib(util::as_bytes(dump), &bad);
  EXPECT_EQ(bad, 1u);
  EXPECT_EQ(parsed.prefix_count(), rib.prefix_count() - 1);
}

TEST_F(MrtIngest, ReadRibFileMmapMatchesInMemoryDecode) {
  bgp::Rib rib = random_rib(2024, 150);
  const std::string dump = dump_of(rib);
  const std::string file = testing::TempDir() + "ingest_mmap.mrt";
  {
    std::ofstream out(file, std::ios::binary);
    out << dump;
  }
  size_t bad = 1;
  bgp::Rib from_file = TableDumpReader::read_rib_file(file, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(dump_of(from_file), dump);
  std::remove(file.c_str());
}

TEST_F(MrtIngest, ReadRibFileMissingSetsBad) {
  size_t bad = 0;
  bgp::Rib rib =
      TableDumpReader::read_rib_file(testing::TempDir() + "no_such.mrt", &bad);
  EXPECT_EQ(bad, 1u);
  EXPECT_EQ(rib.prefix_count(), 0u);
}

TEST_F(MrtIngest, MappedFileBasics) {
  const std::string file = testing::TempDir() + "ingest_mapped.bin";
  {
    std::ofstream out(file, std::ios::binary);
    out << "manrs";
  }
  util::MappedFile mapped;
  ASSERT_TRUE(mapped.open(file));
  EXPECT_TRUE(mapped.is_open());
  ASSERT_EQ(mapped.size(), 5u);
  EXPECT_EQ(util::as_chars(mapped.bytes()), "manrs");
  mapped.close();
  EXPECT_FALSE(mapped.is_open());
  EXPECT_FALSE(mapped.open(testing::TempDir() + "definitely_missing.bin"));
  std::remove(file.c_str());
}

TEST_F(MrtIngest, MappedFileEmptyFileIsEmptySpan) {
  const std::string file = testing::TempDir() + "ingest_empty.mrt";
  { std::ofstream out(file, std::ios::binary); }
  util::MappedFile mapped;
  ASSERT_TRUE(mapped.open(file));
  EXPECT_EQ(mapped.size(), 0u);
  size_t bad = 1;
  bgp::Rib rib = TableDumpReader::read_rib_file(file, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(rib.prefix_count(), 0u);
  mapped.close();
  std::remove(file.c_str());
}

TEST_F(MrtIngest, TableDumpScanMatchesStreamReader) {
  // A dump with an unknown-type record spliced in and a chopped tail:
  // the span scan must report the same records, skips, and bads as the
  // istream reader.
  bgp::Rib rib = random_rib(11, 30);
  std::ostringstream out;
  ByteWriter legacy;
  legacy.u32(0xFFFFFFFFu);
  ByteWriter w;
  put_record(w, 12, 1, legacy.span());
  util::write_bytes(out, w.span());
  TableDumpWriter writer(out, 77);
  writer.write_rib(rib, "scan");
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 3);

  std::istringstream in(bytes);
  TableDumpReader reader(in);
  TableDumpScan scan(util::as_bytes(bytes));
  TableDumpReader::Record a, b;
  size_t records = 0;
  while (true) {
    bool more_stream = reader.next(a);
    bool more_scan = scan.next(b);
    ASSERT_EQ(more_stream, more_scan);
    if (!more_stream) break;
    ++records;
    EXPECT_EQ(a.header.type, b.header.type);
    EXPECT_EQ(a.header.subtype, b.header.subtype);
    EXPECT_EQ(a.peer_index.has_value(), b.peer_index.has_value());
    EXPECT_EQ(a.rib.has_value(), b.rib.has_value());
    if (a.rib && b.rib) {
      EXPECT_EQ(a.rib->prefix, b.rib->prefix);
      EXPECT_EQ(a.rib->entries.size(), b.rib->entries.size());
    }
  }
  EXPECT_GT(records, 0u);
  EXPECT_EQ(reader.skipped_records(), scan.skipped_records());
  EXPECT_EQ(reader.bad_records(), scan.bad_records());
}

TEST(UpdateStream, EmptyToFullFoldReproducesDumpBytes) {
  bgp::Rib rib = random_rib(31337, 120);
  const std::vector<Bgp4mpRecord> deltas =
      diff_ribs(bgp::Rib{}, rib, /*timestamp=*/1651363200);
  std::ostringstream out;
  Bgp4mpWriter writer(out);
  for (const auto& rec : deltas) writer.write(rec);
  const std::string stream = out.str();

  // Pre-register the peer table in dump order; the announce stream then
  // rebuilds the table byte-for-byte.
  bgp::Rib folded;
  for (size_t p = 0; p < rib.peer_count(); ++p) {
    folded.add_peer(rib.peer_asn(static_cast<uint32_t>(p)));
  }
  UpdateStreamReader reader(util::as_bytes(stream));
  EXPECT_EQ(reader.fold_into(folded), deltas.size());
  EXPECT_EQ(reader.bad_records(), 0u);
  EXPECT_EQ(dump_of(folded), dump_of(rib));
}

TEST(UpdateStream, IncrementalChurnFoldMatchesTarget) {
  bgp::Rib before = random_rib(555, 80);
  // Target: drop some rows, change some paths, add new prefixes.
  bgp::Rib after;
  for (size_t p = 0; p < before.peer_count(); ++p) {
    after.add_peer(before.peer_asn(static_cast<uint32_t>(p)));
  }
  size_t row = 0;
  before.for_each([&](const Prefix& prefix,
                      const std::vector<bgp::RibEntry>& entries) {
    ++row;
    if (row % 5 == 0) return;  // withdrawn entirely
    for (const auto& e : entries) {
      bgp::AsPath p2 = row % 3 == 0 ? e.path.prepend(Asn(64999)) : e.path;
      after.insert(prefix, e.peer_index, std::move(p2));
    }
  });
  after.insert(Prefix::must_parse("198.51.100.0/24"), 0, path({65000, 42}));
  after.insert(Prefix::must_parse("2001:db8:ffff::/48"), 1,
               path({65001, 43}));
  after.finalize();

  const std::vector<Bgp4mpRecord> deltas = diff_ribs(before, after, 9);
  std::ostringstream out;
  Bgp4mpWriter writer(out);
  for (const auto& rec : deltas) writer.write(rec);
  const std::string stream = out.str();

  UpdateStreamReader reader(util::as_bytes(stream));
  bgp::Rib folded = std::move(before);
  reader.fold_into(folded);
  EXPECT_EQ(reader.bad_records(), 0u);
  EXPECT_EQ(canonical(folded), canonical(after));
}

TEST(UpdateStream, WithdrawRemovesEntryThenRow) {
  bgp::Rib rib;
  uint32_t p0 = rib.add_peer(Asn(65000));
  uint32_t p1 = rib.add_peer(Asn(65001));
  const Prefix prefix = Prefix::must_parse("192.0.2.0/24");
  rib.insert(prefix, p0, path({65000, 7}));
  rib.insert(prefix, p1, path({65001, 7}));
  rib.finalize();

  auto withdraw = [&](uint32_t peer_asn) {
    Bgp4mpRecord rec;
    rec.timestamp = 1;
    rec.peer_asn = Asn(peer_asn);
    rec.local_asn = Asn(64512);
    rec.peer_ip = net::IpAddress::v4(0x0A000001);
    rec.local_ip = net::IpAddress::v4(0x0A000002);
    rec.update.withdrawn.push_back(prefix);
    std::ostringstream out;
    Bgp4mpWriter writer(out);
    writer.write(rec);
    const std::string stream = out.str();
    UpdateStreamReader reader(util::as_bytes(stream));
    EXPECT_EQ(reader.fold_into(rib), 1u);
  };

  withdraw(65000);
  ASSERT_EQ(rib.entries(prefix).size(), 1u);
  EXPECT_EQ(rib.peer_asn(rib.entries(prefix)[0].peer_index), Asn(65001));
  withdraw(65001);
  EXPECT_EQ(rib.prefix_count(), 0u);
  // Withdrawing a never-announced prefix is an idempotent no-op.
  withdraw(65000);
  EXPECT_EQ(rib.prefix_count(), 0u);
}

TEST(UpdateStream, TwoBatchDeltaCycleMatchesDirectBuild) {
  bgp::Rib a = random_rib(1, 40);
  bgp::Rib b = random_rib(2, 40);
  bgp::Rib c = random_rib(3, 40);

  auto stream_of = [](const bgp::Rib& from, const bgp::Rib& to) {
    std::ostringstream out;
    Bgp4mpWriter writer(out);
    for (const auto& rec : diff_ribs(from, to, 5)) writer.write(rec);
    return out.str();
  };
  const std::string ab = stream_of(a, b);
  const std::string bc = stream_of(b, c);

  // Each fold_into() is one begin_delta()/finalize() cycle; a standing
  // RIB absorbs successive delta batches.
  bgp::Rib live = std::move(a);
  UpdateStreamReader first(util::as_bytes(ab));
  first.fold_into(live);
  EXPECT_EQ(canonical(live), canonical(b));
  UpdateStreamReader second(util::as_bytes(bc));
  second.fold_into(live);
  EXPECT_EQ(canonical(live), canonical(c));
}

TEST(UpdateStream, EmptyDiffFoldsToNoChange) {
  bgp::Rib rib = random_rib(8, 25);
  EXPECT_TRUE(diff_ribs(rib, rib, 1).empty());
  UpdateStreamReader reader({});
  bgp::Rib copy = random_rib(8, 25);
  EXPECT_EQ(reader.fold_into(copy), 0u);
  EXPECT_EQ(dump_of(copy), dump_of(rib));
}

TEST(UpdateStream, SkipsAndBadsAreCounted) {
  std::ostringstream out;
  // 1. A TABLE_DUMP_V2-typed record: wrong MRT type, skipped.
  ByteWriter foreign_body;
  foreign_body.u32(0);
  ByteWriter foreign;
  put_record(foreign, 13, 2, foreign_body.span());
  util::write_bytes(out, foreign.span());
  // 2. A valid UPDATE.
  Bgp4mpRecord rec;
  rec.timestamp = 2;
  rec.peer_asn = Asn(65000);
  rec.local_asn = Asn(64512);
  rec.peer_ip = net::IpAddress::v4(0x0A000001);
  rec.local_ip = net::IpAddress::v4(0x0A000002);
  rec.update.announced.push_back(Prefix::must_parse("10.0.0.0/8"));
  rec.update.path = path({65000, 1});
  Bgp4mpWriter writer(out);
  writer.write(rec);
  // 3. A BGP KEEPALIVE in a BGP4MP_MESSAGE_AS4 record: skipped.
  ByteWriter keepalive;
  keepalive.u32(65000);
  keepalive.u32(64512);
  keepalive.u16(0);
  keepalive.u16(1);  // AFI v4
  keepalive.u32(0x0A000001);
  keepalive.u32(0x0A000002);
  for (int i = 0; i < 4; ++i) keepalive.u32(0xFFFFFFFFu);
  keepalive.u16(19);
  keepalive.u8(4);  // KEEPALIVE
  ByteWriter ka;
  put_record(ka, kTypeBgp4mp, kSubtypeBgp4mpMessageAs4, keepalive.span());
  util::write_bytes(out, ka.span());
  // 4. A malformed BGP4MP body: counted bad.
  ByteWriter garbage_body;
  garbage_body.u32(0xDEADBEEFu);
  ByteWriter garbage;
  put_record(garbage, kTypeBgp4mp, kSubtypeBgp4mpMessageAs4,
             garbage_body.span());
  util::write_bytes(out, garbage.span());

  const std::string stream = out.str();
  UpdateStreamReader reader(util::as_bytes(stream));
  Bgp4mpRecord parsed;
  ASSERT_TRUE(reader.next(parsed));
  EXPECT_EQ(parsed.update.announced.size(), 1u);
  EXPECT_FALSE(reader.next(parsed));
  EXPECT_EQ(reader.skipped_records(), 2u);
  EXPECT_EQ(reader.bad_records(), 1u);
}

TEST(UpdateStream, MatchesStreamingReaderRecordForRecord) {
  bgp::Rib rib = random_rib(65, 50);
  std::ostringstream out;
  Bgp4mpWriter writer(out);
  for (const auto& rec : diff_ribs(bgp::Rib{}, rib, 3)) writer.write(rec);
  const std::string stream = out.str();

  std::istringstream in(stream);
  Bgp4mpReader streaming(in);
  UpdateStreamReader spanning(util::as_bytes(stream));
  Bgp4mpRecord a, b;
  while (true) {
    bool more_stream = streaming.next(a);
    bool more_span = spanning.next(b);
    ASSERT_EQ(more_stream, more_span);
    if (!more_stream) break;
    EXPECT_EQ(a.peer_asn, b.peer_asn);
    EXPECT_EQ(a.update.announced, b.update.announced);
    EXPECT_EQ(a.update.withdrawn, b.update.withdrawn);
    EXPECT_EQ(a.update.path, b.update.path);
  }
  EXPECT_EQ(streaming.bad_records(), spanning.bad_records());
  EXPECT_EQ(streaming.skipped_records(), spanning.skipped_records());
}

}  // namespace
}  // namespace manrs::mrt
