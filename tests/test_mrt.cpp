#include "mrt/table_dump.h"

#include <gtest/gtest.h>

#include <sstream>

#include "mrt/wire.h"
#include "util/bytes.h"
#include "util/rng.h"

namespace manrs::mrt {
namespace {

using net::Asn;
using net::Prefix;

bgp::AsPath path(std::initializer_list<uint32_t> hops) {
  std::vector<Asn> v;
  for (uint32_t h : hops) v.emplace_back(h);
  return bgp::AsPath(std::move(v));
}

TEST(Wire, BigEndianRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0102030405060708ULL);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_TRUE(r.done());
}

TEST(Wire, TruncationThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0);
  // Cursor truncation throws util::ParseError; MrtError (a subclass) is
  // reserved for MRT semantic errors. Both unwind to the record boundary.
  EXPECT_THROW(r.u32(), util::ParseError);
}

TEST(Wire, PatchU16) {
  ByteWriter w;
  w.u16(0);
  w.u8(9);
  w.patch_u16(0, 0xBEEF);
  ByteReader r(w.data());
  EXPECT_EQ(r.u16(), 0xBEEF);
}

TEST(Nlri, EncodeDecodeV4) {
  ByteWriter w;
  encode_nlri(w, Prefix::must_parse("192.0.2.0/24"));
  EXPECT_EQ(w.size(), 4u);  // 1 length byte + 3 prefix bytes
  ByteReader r(w.data());
  EXPECT_EQ(decode_nlri(r, net::Family::kIpv4),
            Prefix::must_parse("192.0.2.0/24"));
}

TEST(Nlri, EncodeDecodeOddLengths) {
  for (const char* s : {"10.0.0.0/8", "10.128.0.0/9", "0.0.0.0/0",
                        "203.0.113.77/32", "10.1.2.0/23"}) {
    ByteWriter w;
    encode_nlri(w, Prefix::must_parse(s));
    ByteReader r(w.data());
    EXPECT_EQ(decode_nlri(r, net::Family::kIpv4), Prefix::must_parse(s)) << s;
  }
}

TEST(Nlri, EncodeDecodeV6) {
  ByteWriter w;
  encode_nlri(w, Prefix::must_parse("2001:db8::/32"));
  EXPECT_EQ(w.size(), 5u);
  ByteReader r(w.data());
  EXPECT_EQ(decode_nlri(r, net::Family::kIpv6),
            Prefix::must_parse("2001:db8::/32"));
}

TEST(Nlri, BadLengthThrows) {
  ByteWriter w;
  w.u8(33);  // invalid for v4
  w.u32(0);
  ByteReader r(w.data());
  EXPECT_THROW(decode_nlri(r, net::Family::kIpv4), MrtError);
}

TEST(PathAttributes, RoundTrip) {
  ByteWriter w;
  encode_path_attributes(w, path({64512, 64513, 64514}), net::Family::kIpv4);
  ByteReader r(w.data());
  bgp::AsPath decoded = decode_path_attributes(r, w.size());
  EXPECT_EQ(decoded, path({64512, 64513, 64514}));
  EXPECT_TRUE(r.done());
}

TEST(PathAttributes, FourByteAsns) {
  ByteWriter w;
  encode_path_attributes(w, path({4200000001u, 1}), net::Family::kIpv4);
  ByteReader r(w.data());
  EXPECT_EQ(decode_path_attributes(r, w.size()), path({4200000001u, 1}));
}

TEST(PathAttributes, AsSetSegmentRejected) {
  // Craft an AS_PATH attribute with an AS_SET segment (type 1).
  ByteWriter w;
  w.u8(0x40);  // transitive
  w.u8(2);     // AS_PATH
  w.u8(6);     // length
  w.u8(1);     // AS_SET
  w.u8(1);     // one ASN
  w.u32(99);
  ByteReader r(w.data());
  EXPECT_THROW(decode_path_attributes(r, w.size()), MrtError);
}

TEST(PathAttributes, UnknownAttributesSkipped) {
  ByteWriter w;
  // Unknown attribute type 42, 3 bytes.
  w.u8(0x40);
  w.u8(42);
  w.u8(3);
  w.u8(1);
  w.u8(2);
  w.u8(3);
  // Then AS_PATH.
  ByteWriter ap;
  encode_path_attributes(ap, path({7, 8}), net::Family::kIpv6);
  w.bytes(ap);
  ByteReader r(w.data());
  EXPECT_EQ(decode_path_attributes(r, w.size()), path({7, 8}));
}

TEST(TableDump, FullRibRoundTrip) {
  bgp::Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  uint32_t p1 = rib.add_peer(Asn(200));
  rib.insert(Prefix::must_parse("10.0.0.0/8"), p0, path({100, 1}));
  rib.insert(Prefix::must_parse("10.0.0.0/8"), p1, path({200, 50, 1}));
  rib.insert(Prefix::must_parse("192.0.2.0/24"), p0, path({100, 2}));
  rib.insert(Prefix::must_parse("2001:db8::/32"), p1, path({200, 3}));

  std::ostringstream out;
  TableDumpWriter writer(out, /*timestamp=*/1651363200);  // 2022-05-01
  size_t records = writer.write_rib(rib, "synthetic-view");
  EXPECT_EQ(records, 3u);

  std::istringstream in(out.str());
  size_t bad = 0;
  bgp::Rib parsed = TableDumpReader::read_rib(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.prefix_count(), 3u);
  EXPECT_EQ(parsed.entry_count(), 4u);
  EXPECT_EQ(parsed.peer_count(), 2u);

  auto entries = parsed.entries(Prefix::must_parse("10.0.0.0/8"));
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].path, path({100, 1}));
  EXPECT_EQ(entries[1].path, path({200, 50, 1}));

  auto v6 = parsed.entries(Prefix::must_parse("2001:db8::/32"));
  ASSERT_EQ(v6.size(), 1u);
  EXPECT_EQ(v6[0].path, path({200, 3}));
}

TEST(TableDump, PeerIndexTableRoundTrip) {
  std::ostringstream out;
  TableDumpWriter writer(out, 42);
  PeerIndexTable table;
  table.collector_bgp_id = 0x0A000001;
  table.view_name = "rv6";
  table.peers.push_back(
      {0x01020304, net::IpAddress::v4(0x0A000002), Asn(65000)});
  table.peers.push_back(
      {0x05060708, *net::IpAddress::parse("2001:db8::1"), Asn(4200000000u)});
  writer.write_peer_index(table);

  std::istringstream in(out.str());
  TableDumpReader reader(in);
  TableDumpReader::Record record;
  ASSERT_TRUE(reader.next(record));
  ASSERT_TRUE(record.peer_index.has_value());
  EXPECT_EQ(record.header.type, kTypeTableDumpV2);
  EXPECT_EQ(record.header.timestamp, 42u);
  EXPECT_EQ(record.peer_index->view_name, "rv6");
  ASSERT_EQ(record.peer_index->peers.size(), 2u);
  EXPECT_EQ(record.peer_index->peers[0].asn, Asn(65000));
  EXPECT_EQ(record.peer_index->peers[1].address,
            *net::IpAddress::parse("2001:db8::1"));
  EXPECT_EQ(record.peer_index->peers[1].asn, Asn(4200000000u));
  EXPECT_FALSE(reader.next(record));
}

TEST(TableDump, SkipsUnknownTypes) {
  // Hand-craft a record of MRT type 12 (legacy TABLE_DUMP) followed by a
  // valid PEER_INDEX_TABLE; the reader must skip the former.
  std::ostringstream out;
  ByteWriter legacy;
  legacy.u32(0);
  legacy.u16(12);
  legacy.u16(1);
  legacy.u32(4);
  legacy.u32(0xFFFFFFFF);
  util::write_bytes(out, legacy.data());
  TableDumpWriter writer(out, 1);
  writer.write_peer_index(PeerIndexTable{});

  std::istringstream in(out.str());
  TableDumpReader reader(in);
  TableDumpReader::Record record;
  ASSERT_TRUE(reader.next(record));
  EXPECT_TRUE(record.peer_index.has_value());
  EXPECT_EQ(reader.skipped_records(), 1u);
}

TEST(TableDump, TruncatedStreamCountsBadRecord) {
  bgp::Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  rib.insert(Prefix::must_parse("10.0.0.0/8"), p0, path({100, 1}));
  std::ostringstream out;
  TableDumpWriter writer(out, 1);
  writer.write_rib(rib, "x");
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 5);  // chop the tail

  std::istringstream in(bytes);
  size_t bad = 0;
  bgp::Rib parsed = TableDumpReader::read_rib(in, &bad);
  EXPECT_EQ(bad, 1u);
  EXPECT_EQ(parsed.prefix_count(), 0u);  // only the peer table survived
}

// Fuzz-ish property: random RIBs round-trip exactly.
class MrtRoundTripP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MrtRoundTripP, RandomRibRoundTrips) {
  manrs::util::Rng rng(GetParam());
  bgp::Rib rib;
  std::vector<uint32_t> peers;
  for (int i = 0; i < 5; ++i) {
    peers.push_back(rib.add_peer(Asn(65000 + static_cast<uint32_t>(i))));
  }
  for (int i = 0; i < 50; ++i) {
    bool v6 = rng.bernoulli(0.3);
    unsigned len = static_cast<unsigned>(
        v6 ? 16 + rng.uniform(49) : 8 + rng.uniform(25));
    net::IpAddress addr =
        v6 ? net::IpAddress::v6(rng.next(), rng.next())
           : net::IpAddress::v4(static_cast<uint32_t>(rng.next()));
    Prefix prefix(addr, len);
    std::vector<Asn> hops;
    size_t hop_count = 1 + rng.uniform(6);
    for (size_t h = 0; h < hop_count; ++h) {
      hops.emplace_back(static_cast<uint32_t>(1 + rng.uniform(100000)));
    }
    rib.insert(prefix, peers[rng.uniform(peers.size())],
               bgp::AsPath(std::move(hops)));
  }

  std::ostringstream out;
  TableDumpWriter writer(out, 123456);
  writer.write_rib(rib, "fuzz");
  std::istringstream in(out.str());
  size_t bad = 0;
  bgp::Rib parsed = TableDumpReader::read_rib(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.prefix_count(), rib.prefix_count());
  EXPECT_EQ(parsed.entry_count(), rib.entry_count());
  // Spot-check: identical prefix-origin sets.
  EXPECT_EQ(parsed.prefix_origins(), rib.prefix_origins());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrtRoundTripP,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace manrs::mrt
