#include "astopo/as2org.h"
#include "astopo/asrank.h"
#include "astopo/graph.h"
#include "astopo/prefix2as.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::astopo {
namespace {

using net::Asn;
using net::Prefix;

AsGraph diamond() {
  // 1 (tier1) -> {2, 3} -> 4, with 2--3 peering.
  AsGraph g;
  g.add_provider_customer(Asn(1), Asn(2));
  g.add_provider_customer(Asn(1), Asn(3));
  g.add_provider_customer(Asn(2), Asn(4));
  g.add_provider_customer(Asn(3), Asn(4));
  g.add_peer_peer(Asn(2), Asn(3));
  return g;
}

TEST(AsGraph, AdjacencyQueries) {
  AsGraph g = diamond();
  EXPECT_EQ(g.as_count(), 4u);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.customers(Asn(1)), (std::vector<Asn>{Asn(2), Asn(3)}));
  EXPECT_EQ(g.providers(Asn(4)), (std::vector<Asn>{Asn(2), Asn(3)}));
  EXPECT_EQ(g.peers(Asn(2)), (std::vector<Asn>{Asn(3)}));
  EXPECT_TRUE(g.is_provider_of(Asn(1), Asn(2)));
  EXPECT_FALSE(g.is_provider_of(Asn(2), Asn(1)));
  EXPECT_TRUE(g.are_peers(Asn(2), Asn(3)));
  EXPECT_TRUE(g.are_peers(Asn(3), Asn(2)));
  EXPECT_FALSE(g.are_peers(Asn(1), Asn(4)));
}

TEST(AsGraph, DuplicateAndSelfEdgesIgnored) {
  AsGraph g;
  g.add_provider_customer(Asn(1), Asn(2));
  g.add_provider_customer(Asn(1), Asn(2));
  g.add_provider_customer(Asn(1), Asn(1));
  g.add_peer_peer(Asn(1), Asn(2));
  g.add_peer_peer(Asn(2), Asn(1));
  g.add_peer_peer(Asn(3), Asn(3));
  EXPECT_EQ(g.edge_count(), 2u);
}

TEST(AsGraph, UnknownAsnQueriesAreEmpty) {
  AsGraph g = diamond();
  EXPECT_TRUE(g.customers(Asn(99)).empty());
  EXPECT_TRUE(g.providers(Asn(99)).empty());
  EXPECT_EQ(g.customer_degree(Asn(99)), 0u);
  EXPECT_EQ(g.customer_cone_size(Asn(99)), 0u);
  EXPECT_FALSE(g.contains(Asn(99)));
}

TEST(AsGraph, CustomerCone) {
  AsGraph g = diamond();
  // CAIDA convention: the cone includes the AS itself.
  EXPECT_EQ(g.customer_cone(Asn(1)),
            (std::vector<Asn>{Asn(1), Asn(2), Asn(3), Asn(4)}));
  EXPECT_EQ(g.customer_cone(Asn(2)), (std::vector<Asn>{Asn(2), Asn(4)}));
  EXPECT_EQ(g.customer_cone(Asn(4)), (std::vector<Asn>{Asn(4)}));
  EXPECT_EQ(g.customer_cone_size(Asn(1)), 4u);
  // Peer links do not contribute to the cone.
  EXPECT_EQ(g.customer_cone_size(Asn(3)), 2u);
}

TEST(AsGraph, ConeHandlesSharedSubtrees) {
  // 4 is reachable via both 2 and 3 but counted once.
  AsGraph g = diamond();
  EXPECT_EQ(g.customer_cone_size(Asn(1)), 4u);
}

TEST(AsGraph, AsRelRoundTrip) {
  AsGraph g = diamond();
  std::ostringstream out;
  g.write_as_rel(out);
  std::istringstream in(out.str());
  size_t bad = 0;
  AsGraph parsed = AsGraph::read_as_rel(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.as_count(), g.as_count());
  EXPECT_EQ(parsed.edge_count(), g.edge_count());
  EXPECT_TRUE(parsed.is_provider_of(Asn(1), Asn(2)));
  EXPECT_TRUE(parsed.are_peers(Asn(2), Asn(3)));
}

TEST(AsGraph, AsRelParsesCaidaShape) {
  std::istringstream in(
      "# comment line\n"
      "1|2|-1\n"
      "2|3|0\n"
      "bad line\n"
      "4|5|7\n");  // unknown relationship code
  size_t bad = 0;
  AsGraph g = AsGraph::read_as_rel(in, &bad);
  EXPECT_EQ(bad, 2u);
  EXPECT_TRUE(g.is_provider_of(Asn(1), Asn(2)));
  EXPECT_TRUE(g.are_peers(Asn(2), Asn(3)));
}

TEST(SizeClass, DhamdhereThresholds) {
  EXPECT_EQ(classify_degree(0), SizeClass::kSmall);
  EXPECT_EQ(classify_degree(2), SizeClass::kSmall);
  EXPECT_EQ(classify_degree(3), SizeClass::kMedium);
  EXPECT_EQ(classify_degree(180), SizeClass::kMedium);
  EXPECT_EQ(classify_degree(181), SizeClass::kLarge);
  EXPECT_EQ(to_string(SizeClass::kLarge), "large");
}

TEST(AsRank, OrderedByConeSize) {
  AsGraph g = diamond();
  auto rank = compute_as_rank(g);
  ASSERT_EQ(rank.size(), 4u);
  EXPECT_EQ(rank[0].asn, Asn(1));
  EXPECT_EQ(rank[0].rank, 1u);
  EXPECT_EQ(rank[0].customer_cone_size, 4u);
  // Ties (AS2 and AS3 both have cone size 2) break by ascending ASN.
  EXPECT_EQ(rank[1].asn, Asn(2));
  EXPECT_EQ(rank[2].asn, Asn(3));
  EXPECT_EQ(rank[3].asn, Asn(4));
}

TEST(As2Org, MappingAndSiblings) {
  As2Org a2o;
  a2o.add_organization({"org1", "Example", "US", net::Rir::kArin});
  a2o.add_organization({"org2", "Other", "DE", net::Rir::kRipe});
  a2o.map_as(Asn(1), "org1");
  a2o.map_as(Asn(2), "org1");
  a2o.map_as(Asn(3), "org2");

  EXPECT_TRUE(a2o.are_siblings(Asn(1), Asn(2)));
  EXPECT_FALSE(a2o.are_siblings(Asn(1), Asn(3)));
  EXPECT_FALSE(a2o.are_siblings(Asn(1), Asn(99)));
  EXPECT_EQ(a2o.ases_of("org1"), (std::vector<Asn>{Asn(1), Asn(2)}));
  ASSERT_NE(a2o.organization_of(Asn(3)), nullptr);
  EXPECT_EQ(a2o.organization_of(Asn(3))->country, "DE");
  EXPECT_EQ(a2o.organization_of(Asn(99)), nullptr);
}

TEST(As2Org, RemapMovesAs) {
  As2Org a2o;
  a2o.add_organization({"org1", "A", "US", net::Rir::kArin});
  a2o.add_organization({"org2", "B", "US", net::Rir::kArin});
  a2o.map_as(Asn(1), "org1");
  a2o.map_as(Asn(1), "org2");
  EXPECT_TRUE(a2o.ases_of("org1").empty());
  EXPECT_EQ(a2o.ases_of("org2"), (std::vector<Asn>{Asn(1)}));
}

TEST(As2Org, AffinityClassification) {
  As2Org a2o;
  a2o.add_organization({"org1", "A", "US", net::Rir::kArin});
  a2o.map_as(Asn(1), "org1");
  a2o.map_as(Asn(2), "org1");
  AsGraph g;
  g.add_provider_customer(Asn(3), Asn(1));

  EXPECT_EQ(a2o.classify(Asn(1), Asn(2), g), AsAffinity::kSibling);
  EXPECT_EQ(a2o.classify(Asn(1), Asn(3), g), AsAffinity::kCustomerProvider);
  EXPECT_EQ(a2o.classify(Asn(3), Asn(1), g), AsAffinity::kCustomerProvider);
  EXPECT_EQ(a2o.classify(Asn(2), Asn(3), g), AsAffinity::kUnrelated);
  EXPECT_EQ(a2o.classify(Asn(1), Asn(1), g), AsAffinity::kSibling);
  EXPECT_EQ(to_string(AsAffinity::kCustomerProvider), "C-P");
}

TEST(As2Org, FileRoundTrip) {
  As2Org a2o;
  a2o.add_organization({"org1", "Example Net", "US", net::Rir::kArin});
  a2o.add_organization({"org2", "Beispiel", "DE", net::Rir::kRipe});
  a2o.map_as(Asn(64496), "org1");
  a2o.map_as(Asn(64497), "org2");

  std::ostringstream out;
  a2o.write(out);
  std::istringstream in(out.str());
  size_t bad = 0;
  As2Org parsed = As2Org::read(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.organization_count(), 2u);
  EXPECT_EQ(parsed.mapped_as_count(), 2u);
  ASSERT_NE(parsed.organization_of(Asn(64496)), nullptr);
  EXPECT_EQ(parsed.organization_of(Asn(64496))->name, "Example Net");
  EXPECT_EQ(parsed.organization_of(Asn(64497))->rir, net::Rir::kRipe);
}

TEST(Prefix2As, FileRoundTrip) {
  Prefix2As rows{
      {Prefix::must_parse("10.0.0.0/8"), Asn(1)},
      {Prefix::must_parse("192.0.2.0/24"), Asn(64496)},
  };
  std::ostringstream out;
  write_prefix2as(out, rows);
  std::istringstream in(out.str());
  size_t bad = 0;
  auto parsed = read_prefix2as(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed, rows);
}

TEST(Prefix2As, ParsesMultiOriginRows) {
  std::istringstream in("10.0.0.0\t8\t1_2\n192.0.2.0\t24\t3,4\n");
  auto parsed = read_prefix2as(in);
  ASSERT_EQ(parsed.size(), 4u);
  EXPECT_EQ(parsed[0].origin, Asn(1));
  EXPECT_EQ(parsed[1].origin, Asn(2));
  EXPECT_EQ(parsed[3].origin, Asn(4));
}

TEST(Prefix2As, RoutedSpaceMergesOverlaps) {
  Prefix2As rows{
      {Prefix::must_parse("10.0.0.0/8"), Asn(1)},
      {Prefix::must_parse("10.1.0.0/16"), Asn(2)},   // inside the /8
      {Prefix::must_parse("192.0.2.0/24"), Asn(3)},
      {Prefix::must_parse("2001:db8::/32"), Asn(4)},  // v6 ignored
  };
  EXPECT_DOUBLE_EQ(routed_ipv4_space(rows), 16777216.0 + 256.0);
}

TEST(Prefix2As, RoutedSpaceAdjacentBlocks) {
  Prefix2As rows{
      {Prefix::must_parse("10.0.0.0/9"), Asn(1)},
      {Prefix::must_parse("10.128.0.0/9"), Asn(2)},  // adjacent, no overlap
  };
  EXPECT_DOUBLE_EQ(routed_ipv4_space(rows), 16777216.0);
  EXPECT_DOUBLE_EQ(routed_ipv4_space({}), 0.0);
}

}  // namespace
}  // namespace manrs::astopo
