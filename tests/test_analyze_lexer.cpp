// Lexer unit tests for manrs_analyze: the phase-2/phase-3 corner cases
// the analyzer's correctness rests on -- raw strings, line-spliced
// comments and identifiers, digit separators, and include extraction.
#include "analyze/lexer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using manrs::analyze::IncludeDirective;
using manrs::analyze::lex;
using manrs::analyze::Token;
using manrs::analyze::TokenKind;

/// Tokens minus the trailing kEndOfFile.
std::vector<Token> lex_body(std::string_view text) {
  std::vector<Token> tokens = lex(text);
  EXPECT_FALSE(tokens.empty());
  EXPECT_EQ(tokens.back().kind, TokenKind::kEndOfFile);
  tokens.pop_back();
  return tokens;
}

const Token* find_kind(const std::vector<Token>& tokens, TokenKind kind) {
  for (const Token& t : tokens) {
    if (t.kind == kind) return &t;
  }
  return nullptr;
}

TEST(AnalyzeLexer, RawStringIsOneVerbatimToken) {
  // Quotes, backslashes, and a would-be line splice inside a raw string
  // are all inert.
  auto tokens = lex_body("const char* s = R\"(say \"hi\" \\ not-escape)\";");
  const Token* str = find_kind(tokens, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_NE(str->text.find("say \"hi\""), std::string::npos);
  EXPECT_NE(str->text.find("not-escape"), std::string::npos);
  // Exactly one string literal: the inner quotes opened nothing.
  int strings = 0;
  for (const Token& t : tokens) strings += t.kind == TokenKind::kString;
  EXPECT_EQ(strings, 1);
}

TEST(AnalyzeLexer, RawStringCustomDelimiter) {
  // The )" inside the literal does not close it; only )x" does.
  auto tokens = lex_body("auto s = R\"x(close )\" not yet)x\";");
  const Token* str = find_kind(tokens, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_NE(str->text.find("close )\" not yet"), std::string::npos);
  // The statement still ends in a ; punct after the string.
  EXPECT_TRUE(tokens.back().is_punct(";"));
}

TEST(AnalyzeLexer, RawStringMultiLineTracksLines) {
  auto tokens = lex_body("auto s = R\"(one\ntwo\nthree)\";\nint after = 0;");
  const Token* str = find_kind(tokens, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_EQ(str->line, 1);
  EXPECT_EQ(str->end_line, 3);
  // The token after the literal's line is physical, not logical.
  const Token* after = nullptr;
  for (const Token& t : tokens) {
    if (t.is_ident("after")) after = &t;
  }
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->line, 4);
}

TEST(AnalyzeLexer, SplicedLineCommentContinues) {
  // The backslash-newline splices the comment across two physical
  // lines; `int x` only starts on line 3.
  auto tokens = lex_body("// part one \\\npart two\nint x;");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_NE(tokens[0].text.find("part two"), std::string::npos);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].end_line, 2);
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[1].is_ident("int"));
  EXPECT_EQ(tokens[1].line, 3);
}

TEST(AnalyzeLexer, WaiverInsideRawStringIsStringNotComment) {
  // "// lint-ok: ..." spelled inside a raw string must lex as string
  // data; the waiver scan only looks at kComment tokens.
  auto tokens =
      lex_body("const char* t = R\"(// lint-ok: not a waiver)\";");
  const Token* str = find_kind(tokens, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_NE(str->text.find("lint-ok"), std::string::npos);
  EXPECT_EQ(find_kind(tokens, TokenKind::kComment), nullptr);
}

TEST(AnalyzeLexer, SplicedWaiverCommentSpansBothLines) {
  // A spliced "// lint-ok:" comment keeps its start line (where the
  // waived code sits) and extends end_line over the continuation.
  auto tokens = lex_body("strcpy(d, s);  // lint-ok: reason \\\ncontinued");
  const Token* comment = find_kind(tokens, TokenKind::kComment);
  ASSERT_NE(comment, nullptr);
  EXPECT_NE(comment->text.find("lint-ok: reason"), std::string::npos);
  EXPECT_NE(comment->text.find("continued"), std::string::npos);
  EXPECT_EQ(comment->line, 1);
  EXPECT_EQ(comment->end_line, 2);
}

TEST(AnalyzeLexer, SplicedIdentifierLexesAsOne) {
  auto tokens = lex_body("in\\\nt value;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_TRUE(tokens[0].is_ident("int"));
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].end_line, 2);
  EXPECT_TRUE(tokens[1].is_ident("value"));
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(AnalyzeLexer, DigitSeparatorsStayInOneNumber) {
  auto tokens = lex_body("auto n = 1'000'000; auto h = 0xFF'FFu;");
  int numbers = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kNumber) {
      ++numbers;
      EXPECT_TRUE(t.text == "1'000'000" || t.text == "0xFF'FFu") << t.text;
    }
    // The ' in a separator must never open a character literal.
    EXPECT_NE(t.kind, TokenKind::kCharLit);
  }
  EXPECT_EQ(numbers, 2);
}

TEST(AnalyzeLexer, FloatExponentIsOneNumber) {
  auto tokens = lex_body("double d = 1.5e-3;");
  const Token* num = find_kind(tokens, TokenKind::kNumber);
  ASSERT_NE(num, nullptr);
  EXPECT_EQ(num->text, "1.5e-3");
}

TEST(AnalyzeLexer, EscapedQuoteStaysInString) {
  auto tokens = lex_body("const char* s = \"a\\\"b\"; int y;");
  const Token* str = find_kind(tokens, TokenKind::kString);
  ASSERT_NE(str, nullptr);
  EXPECT_NE(str->text.find("a\\\"b"), std::string::npos);
  const Token* y = nullptr;
  for (const Token& t : tokens) {
    if (t.is_ident("y")) y = &t;
  }
  EXPECT_NE(y, nullptr);
}

TEST(AnalyzeLexer, ExtractIncludesQuotedAndAngled) {
  std::vector<Token> tokens =
      lex("#include \"bgp/rib.h\"\n#include <vector>\nint x;\n"
          "#include \"util/bytes.h\"  // lint-ok: fixture reason\n");
  std::vector<IncludeDirective> incs = manrs::analyze::extract_includes(tokens);
  ASSERT_EQ(incs.size(), 3u);
  EXPECT_EQ(incs[0].path, "bgp/rib.h");
  EXPECT_FALSE(incs[0].angled);
  EXPECT_EQ(incs[0].line, 1);
  EXPECT_EQ(incs[1].path, "vector");
  EXPECT_TRUE(incs[1].angled);
  EXPECT_EQ(incs[1].line, 2);
  EXPECT_EQ(incs[2].path, "util/bytes.h");
  EXPECT_EQ(incs[2].line, 4);
  // The trailing comment on the include line must stay a comment token
  // (waivers on include lines depend on it).
  bool saw_waiver_comment = false;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kComment &&
        t.text.find("lint-ok:") != std::string::npos) {
      saw_waiver_comment = true;
      EXPECT_EQ(t.line, 4);
    }
  }
  EXPECT_TRUE(saw_waiver_comment);
}

TEST(AnalyzeLexer, ThreeCharPunctLongestMatch) {
  auto tokens = lex_body("a <=> b; c >>= 2;");
  bool spaceship = false, shift_assign = false;
  for (const Token& t : tokens) {
    spaceship |= t.is_punct("<=>");
    shift_assign |= t.is_punct(">>=");
  }
  EXPECT_TRUE(spaceship);
  EXPECT_TRUE(shift_assign);
}

TEST(AnalyzeLexer, BlockCommentSpansLines) {
  auto tokens = lex_body("/* one\ntwo */ int z;");
  ASSERT_FALSE(tokens.empty());
  EXPECT_EQ(tokens[0].kind, TokenKind::kComment);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].end_line, 2);
  EXPECT_TRUE(tokens[1].is_ident("int"));
  EXPECT_EQ(tokens[1].line, 2);
}

}  // namespace
