// Scenario-level dataset round trips: every serialized dataset must
// reload into an equivalent in-memory structure, and analyses run on the
// reloaded data must give identical answers -- the guarantee a downstream
// user relies on when they archive `dataset_export` output and reprocess
// it later.
#include <gtest/gtest.h>

#include <sstream>

#include "astopo/prefix2as.h"
#include "core/conformance.h"
#include "irr/validation.h"
#include "rpki/archive.h"
#include "topogen/scenario.h"

namespace manrs {
namespace {

const topogen::Scenario& scenario() {
  static const topogen::Scenario s =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  return s;
}

TEST(DatasetRoundTrip, AsRelGraphEquivalent) {
  std::ostringstream out;
  scenario().graph.write_as_rel(out);
  std::istringstream in(out.str());
  size_t bad = 0;
  astopo::AsGraph reloaded = astopo::AsGraph::read_as_rel(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(reloaded.as_count(), scenario().graph.as_count());
  EXPECT_EQ(reloaded.edge_count(), scenario().graph.edge_count());
  // Degree classes (the analysis-relevant projection) must agree.
  for (net::Asn asn : scenario().graph.all_asns()) {
    EXPECT_EQ(reloaded.customer_degree(asn),
              scenario().graph.customer_degree(asn))
        << asn.to_string();
  }
}

TEST(DatasetRoundTrip, As2OrgEquivalent) {
  std::ostringstream out;
  scenario().as2org.write(out);
  std::istringstream in(out.str());
  size_t bad = 0;
  astopo::As2Org reloaded = astopo::As2Org::read(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(reloaded.organization_count(),
            scenario().as2org.organization_count());
  EXPECT_EQ(reloaded.mapped_as_count(), scenario().as2org.mapped_as_count());
  for (const auto& profile : scenario().profiles) {
    const astopo::Organization* a =
        scenario().as2org.organization_of(profile.asn);
    const astopo::Organization* b = reloaded.organization_of(profile.asn);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->org_id, b->org_id);
    EXPECT_EQ(a->rir, b->rir);
  }
}

TEST(DatasetRoundTrip, ManrsRegistryEquivalent) {
  std::ostringstream out;
  scenario().manrs.write_csv(out);
  std::istringstream in(out.str());
  size_t bad = 0;
  core::ManrsRegistry reloaded = core::ManrsRegistry::read_csv(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(reloaded.participant_count(),
            scenario().manrs.participant_count());
  EXPECT_EQ(reloaded.member_ases(), scenario().manrs.member_ases());
  for (net::Asn asn : scenario().manrs.member_ases()) {
    EXPECT_EQ(reloaded.program_of(asn), scenario().manrs.program_of(asn));
    EXPECT_EQ(reloaded.join_date(asn), scenario().manrs.join_date(asn));
  }
}

TEST(DatasetRoundTrip, VrpsValidateIdentically) {
  std::vector<rpki::Vrp> vrps;
  scenario().vrps.for_each([&](const rpki::Vrp& v) { vrps.push_back(v); });
  std::ostringstream out;
  rpki::write_vrp_csv(out, vrps, scenario().snapshot_date);
  std::istringstream in(out.str());
  size_t skipped = 0;
  rpki::VrpStore reloaded(rpki::read_vrp_csv(in, &skipped));
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(reloaded.size(), scenario().vrps.size());
  // The RFC 6811 verdicts -- the thing the archive exists for -- must be
  // identical for every current announcement.
  for (const auto& po : scenario().announcements()) {
    EXPECT_EQ(reloaded.validate(po.prefix, po.origin),
              scenario().vrps.validate(po.prefix, po.origin))
        << po.to_string();
  }
}

TEST(DatasetRoundTrip, IrrDumpsValidateIdentically) {
  // Serialize every database to RPSL, reload into a fresh registry with
  // the same authoritative flags, and compare validation outcomes.
  irr::IrrRegistry reloaded;
  for (const irr::IrrDatabase* db : scenario().irr.databases()) {
    std::ostringstream out;
    db->write_rpsl(out);
    std::istringstream in(out.str());
    auto& copy = reloaded.add_database(db->name(), db->authoritative());
    size_t malformed = 0;
    copy.load_rpsl(in, &malformed);
    EXPECT_EQ(malformed, 0u) << db->name();
    EXPECT_EQ(copy.route_count(), db->route_count()) << db->name();
  }
  size_t checked = 0;
  for (const auto& po : scenario().announcements()) {
    if (++checked > 2000) break;  // sampling keeps the test quick
    EXPECT_EQ(irr::validate_route(reloaded, po.prefix, po.origin),
              irr::validate_route(scenario().irr, po.prefix, po.origin))
        << po.to_string();
  }
}

TEST(DatasetRoundTrip, ConformanceIdenticalOnReloadedData) {
  // End to end: reload VRPs + IRR from their archives and recompute
  // Action 4 verdicts; every verdict must match the in-memory pipeline.
  std::vector<rpki::Vrp> vrps;
  scenario().vrps.for_each([&](const rpki::Vrp& v) { vrps.push_back(v); });
  std::ostringstream vrp_out;
  rpki::write_vrp_csv(vrp_out, vrps, scenario().snapshot_date);
  std::istringstream vrp_in(vrp_out.str());
  rpki::VrpStore vrps2(rpki::read_vrp_csv(vrp_in));

  irr::IrrRegistry irr2;
  for (const irr::IrrDatabase* db : scenario().irr.databases()) {
    std::ostringstream out;
    db->write_rpsl(out);
    std::istringstream in(out.str());
    irr2.add_database(db->name(), db->authoritative()).load_rpsl(in);
  }

  auto classify = [&](const rpki::VrpStore& v, const irr::IrrRegistry& i) {
    std::vector<ihr::PrefixOriginRecord> records;
    for (const auto& po : scenario().announcements()) {
      ihr::PrefixOriginRecord r;
      r.prefix = po.prefix;
      r.origin = po.origin;
      r.rpki = v.validate(po.prefix, po.origin);
      r.irr = irr::validate_route(i, po.prefix, po.origin);
      records.push_back(r);
    }
    return core::compute_origination_stats(records);
  };
  auto original = classify(scenario().vrps, scenario().irr);
  auto reloaded = classify(vrps2, irr2);
  ASSERT_EQ(original.size(), reloaded.size());
  for (const auto& [asn, stats] : original) {
    const auto& other = reloaded.at(asn);
    EXPECT_EQ(stats.conformant, other.conformant) << asn;
    EXPECT_EQ(stats.total, other.total) << asn;
  }
}

}  // namespace
}  // namespace manrs
