#include "rpki/validation.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace manrs::rpki {
namespace {

using net::Asn;
using net::Prefix;

VrpStore make_store(std::initializer_list<Vrp> vrps) {
  VrpStore store;
  for (const auto& v : vrps) store.add(v);
  return store;
}

TEST(Rfc6811, NotFoundWhenNoCoveringVrp) {
  VrpStore store = make_store({{Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)}});
  EXPECT_EQ(store.validate(Prefix::must_parse("11.0.0.0/8"), Asn(1)),
            RpkiStatus::kNotFound);
  // A more-specific VRP does not cover a less-specific route.
  VrpStore store2 =
      make_store({{Prefix::must_parse("10.1.0.0/16"), 16, Asn(1)}});
  EXPECT_EQ(store2.validate(Prefix::must_parse("10.0.0.0/8"), Asn(1)),
            RpkiStatus::kNotFound);
}

TEST(Rfc6811, ValidExactMatch) {
  VrpStore store =
      make_store({{Prefix::must_parse("192.0.2.0/24"), 24, Asn(64496)}});
  EXPECT_EQ(store.validate(Prefix::must_parse("192.0.2.0/24"), Asn(64496)),
            RpkiStatus::kValid);
}

TEST(Rfc6811, ValidViaMaxLength) {
  VrpStore store =
      make_store({{Prefix::must_parse("10.0.0.0/8"), 24, Asn(64496)}});
  EXPECT_EQ(store.validate(Prefix::must_parse("10.1.2.0/24"), Asn(64496)),
            RpkiStatus::kValid);
  EXPECT_EQ(store.validate(Prefix::must_parse("10.0.0.0/8"), Asn(64496)),
            RpkiStatus::kValid);
}

TEST(Rfc6811, InvalidLengthWhenTooSpecific) {
  VrpStore store =
      make_store({{Prefix::must_parse("10.0.0.0/8"), 16, Asn(64496)}});
  EXPECT_EQ(store.validate(Prefix::must_parse("10.1.2.0/24"), Asn(64496)),
            RpkiStatus::kInvalidLength);
}

TEST(Rfc6811, InvalidAsnWhenNoVrpMatchesOrigin) {
  VrpStore store =
      make_store({{Prefix::must_parse("10.0.0.0/8"), 24, Asn(64496)}});
  EXPECT_EQ(store.validate(Prefix::must_parse("10.1.2.0/24"), Asn(64497)),
            RpkiStatus::kInvalidAsn);
}

TEST(Rfc6811, AnyMatchingVrpMakesValid) {
  // One VRP with wrong ASN, one correct: Valid wins (RFC 6811).
  VrpStore store = make_store({
      {Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)},
      {Prefix::must_parse("10.0.0.0/8"), 24, Asn(2)},
  });
  EXPECT_EQ(store.validate(Prefix::must_parse("10.1.0.0/16"), Asn(2)),
            RpkiStatus::kValid);
  // ASN matches but length fails on one VRP; another VRP has wrong ASN:
  // Invalid Length (ASN match exists).
  VrpStore store2 = make_store({
      {Prefix::must_parse("10.0.0.0/8"), 8, Asn(2)},
      {Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)},
  });
  EXPECT_EQ(store2.validate(Prefix::must_parse("10.1.0.0/16"), Asn(2)),
            RpkiStatus::kInvalidLength);
}

TEST(Rfc6811, As0NeverValidates) {
  // RFC 7607/6483: an AS0 VRP marks space that must not be originated;
  // it can only make announcements Invalid.
  VrpStore store =
      make_store({{Prefix::must_parse("203.0.113.0/24"), 24, Asn(0)}});
  EXPECT_EQ(store.validate(Prefix::must_parse("203.0.113.0/24"), Asn(0)),
            RpkiStatus::kInvalidAsn);
  EXPECT_EQ(store.validate(Prefix::must_parse("203.0.113.0/24"), Asn(7)),
            RpkiStatus::kInvalidAsn);
}

TEST(Rfc6811, As0PlusRealRoaStillValid) {
  // The paper's AS23947 case: prefix registered under AS0 *and* correctly
  // elsewhere would be Valid; with only AS0, Invalid.
  VrpStore store = make_store({
      {Prefix::must_parse("203.0.113.0/24"), 24, Asn(0)},
      {Prefix::must_parse("203.0.113.0/24"), 24, Asn(23947)},
  });
  EXPECT_EQ(store.validate(Prefix::must_parse("203.0.113.0/24"), Asn(23947)),
            RpkiStatus::kValid);
}

TEST(Rfc6811, Ipv6Routes) {
  VrpStore store =
      make_store({{Prefix::must_parse("2001:db8::/32"), 48, Asn(64496)}});
  EXPECT_EQ(store.validate(Prefix::must_parse("2001:db8:1::/48"), Asn(64496)),
            RpkiStatus::kValid);
  EXPECT_EQ(store.validate(Prefix::must_parse("2001:db8::/64"), Asn(64496)),
            RpkiStatus::kInvalidLength);
  EXPECT_EQ(store.validate(Prefix::must_parse("2001:db9::/48"), Asn(64496)),
            RpkiStatus::kNotFound);
}

TEST(VrpStore, CoveredAndCovering) {
  VrpStore store =
      make_store({{Prefix::must_parse("10.0.0.0/8"), 16, Asn(1)}});
  EXPECT_TRUE(store.covered(Prefix::must_parse("10.9.0.0/16")));
  EXPECT_FALSE(store.covered(Prefix::must_parse("11.0.0.0/8")));
  auto covering = store.covering(Prefix::must_parse("10.9.0.0/16"));
  ASSERT_EQ(covering.size(), 1u);
  EXPECT_EQ(covering[0].asn, Asn(1));
}

TEST(Vrp, WellFormed) {
  EXPECT_TRUE((Vrp{Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)}).well_formed());
  EXPECT_TRUE(
      (Vrp{Prefix::must_parse("10.0.0.0/8"), 32, Asn(1)}).well_formed());
  EXPECT_FALSE(
      (Vrp{Prefix::must_parse("10.0.0.0/8"), 7, Asn(1)}).well_formed());
  EXPECT_FALSE(
      (Vrp{Prefix::must_parse("10.0.0.0/8"), 33, Asn(1)}).well_formed());
  EXPECT_TRUE(
      (Vrp{Prefix::must_parse("2001:db8::/32"), 128, Asn(1)}).well_formed());
}

TEST(StatusHelpers, InvalidPredicateAndNames) {
  EXPECT_TRUE(is_invalid(RpkiStatus::kInvalidAsn));
  EXPECT_TRUE(is_invalid(RpkiStatus::kInvalidLength));
  EXPECT_FALSE(is_invalid(RpkiStatus::kValid));
  EXPECT_FALSE(is_invalid(RpkiStatus::kNotFound));
  EXPECT_EQ(to_string(RpkiStatus::kValid), "Valid");
  EXPECT_EQ(to_string(RpkiStatus::kNotFound), "NotFound");
}

// Property test: the trie-backed validator agrees with a brute-force
// implementation of RFC 6811 on random inputs.
class RovVsBruteForceP : public ::testing::TestWithParam<uint64_t> {};

RpkiStatus brute_force(const std::vector<Vrp>& vrps, const Prefix& route,
                       Asn origin) {
  bool any = false, asn_match = false, valid = false;
  for (const auto& vrp : vrps) {
    if (!vrp.prefix.contains(route)) continue;
    any = true;
    if (vrp.asn == origin && !vrp.asn.is_reserved_as0()) {
      asn_match = true;
      if (vrp.max_length >= route.length()) valid = true;
    }
  }
  if (!any) return RpkiStatus::kNotFound;
  if (valid) return RpkiStatus::kValid;
  if (asn_match) return RpkiStatus::kInvalidLength;
  return RpkiStatus::kInvalidAsn;
}

TEST_P(RovVsBruteForceP, Agrees) {
  manrs::util::Rng rng(GetParam());
  std::vector<Vrp> vrps;
  VrpStore store;
  for (int i = 0; i < 200; ++i) {
    unsigned len = 8 + static_cast<unsigned>(rng.uniform(17));  // 8..24
    // Cluster addresses so covering relations actually occur.
    uint32_t addr = static_cast<uint32_t>(rng.uniform(16)) << 24;
    Prefix p(net::IpAddress::v4(addr | (static_cast<uint32_t>(rng.next()) &
                                        0x00FFFF00)),
             len);
    unsigned maxlen = len + static_cast<unsigned>(rng.uniform(33 - len));
    Vrp vrp{p, maxlen, Asn(static_cast<uint32_t>(rng.uniform(6)))};
    vrps.push_back(vrp);
    store.add(vrp);
  }
  for (int q = 0; q < 300; ++q) {
    unsigned len = 8 + static_cast<unsigned>(rng.uniform(25));  // 8..32
    uint32_t addr = static_cast<uint32_t>(rng.uniform(16)) << 24;
    Prefix route(net::IpAddress::v4(addr | (static_cast<uint32_t>(rng.next()) &
                                            0x00FFFFFF)),
                 len);
    Asn origin(static_cast<uint32_t>(rng.uniform(6)));
    EXPECT_EQ(store.validate(route, origin), brute_force(vrps, route, origin))
        << route.to_string() << " " << origin.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RovVsBruteForceP,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace manrs::rpki
