// End-to-end integration tests: generate a miniature Internet, run the
// full measurement pipeline, and check the paper's qualitative findings
// hold (MANRS networks behave better) plus cross-module consistency
// (collector RIB -> MRT -> prefix2as -> conformance give coherent views).
#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "astopo/prefix2as.h"
#include "core/conformance.h"
#include "core/report.h"
#include "ihr/dataset.h"
#include "mrt/table_dump.h"
#include "simulator/collector.h"
#include "topogen/history.h"
#include "topogen/scenario.h"
#include "util/stats.h"

namespace manrs {
namespace {

using net::Asn;

struct Pipeline {
  topogen::Scenario scenario;
  sim::PropagationSim simulator;
  ihr::IhrSnapshot snapshot;
  std::unordered_map<uint32_t, core::OriginationStats> origination;
  std::unordered_map<uint32_t, core::PropagationStats> propagation;

  explicit Pipeline(topogen::Scenario s)
      : scenario(std::move(s)), simulator(scenario.make_sim()) {
    ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
    snapshot = builder.build(scenario.announcements(), scenario.vrps,
                             scenario.irr);
    origination = core::compute_origination_stats(snapshot.prefix_origins);
    propagation = core::compute_propagation_stats(snapshot.transits);
  }
};

const Pipeline& pipeline() {
  static const Pipeline p(
      topogen::build_scenario(topogen::ScenarioConfig::tiny()));
  return p;
}

TEST(Integration, SnapshotCoversEveryAnnouncement) {
  const Pipeline& p = pipeline();
  EXPECT_EQ(p.snapshot.prefix_origins.size(),
            p.scenario.announcements().size());
}

TEST(Integration, ManrsMoreAction4ConformantThanOthers) {
  const Pipeline& p = pipeline();
  // Exclude the scripted case-study organizations: they are deliberately
  // unconformant and, at the miniature test scale, dominate the MANRS
  // population in a way they do not at paper scale.
  std::unordered_set<std::string> scripted;
  for (const auto& [label, org_id] : p.scenario.case_study_orgs) {
    scripted.insert(org_id);
  }
  size_t manrs_ok = 0, manrs_total = 0, other_ok = 0, other_total = 0;
  for (const auto& profile : p.scenario.profiles) {
    if (scripted.count(profile.org_id)) continue;
    auto it = p.origination.find(profile.asn.value());
    const core::OriginationStats* stats =
        it == p.origination.end() ? nullptr : &it->second;
    if (stats == nullptr || stats->total == 0) continue;  // quiet
    bool ok = core::check_action4(stats, core::Program::kIsp).conformant;
    if (profile.manrs) {
      ++manrs_total;
      manrs_ok += ok;
    } else {
      ++other_total;
      other_ok += ok;
    }
  }
  ASSERT_GT(manrs_total, 0u);
  ASSERT_GT(other_total, 0u);
  double manrs_rate =
      static_cast<double>(manrs_ok) / static_cast<double>(manrs_total);
  double other_rate =
      static_cast<double>(other_ok) / static_cast<double>(other_total);
  EXPECT_GT(manrs_rate, other_rate);
}

TEST(Integration, CaseStudyOrgsAreUnconformant) {
  const Pipeline& p = pipeline();
  for (const auto& [label, org_id] : p.scenario.case_study_orgs) {
    const core::Participant* participant = p.scenario.manrs.find_org(org_id);
    ASSERT_NE(participant, nullptr);
    core::MemberReport report = core::build_member_report(
        *participant, p.snapshot.prefix_origins, p.snapshot.transits);
    EXPECT_FALSE(report.action4_conformant) << label;
  }
}

TEST(Integration, CaseStudyAffinityMatchesScaledTable1) {
  const Pipeline& p = pipeline();
  double scale = p.scenario.config.case_study_scale;
  for (const auto& [label, org_id] : p.scenario.case_study_orgs) {
    if (label != "CDN3") continue;
    const core::Participant* participant = p.scenario.manrs.find_org(org_id);
    ASSERT_NE(participant, nullptr);
    core::CaseStudyRow row = core::analyze_unconformant_org(
        *participant, label, p.scenario.as2org, p.scenario.graph,
        p.snapshot.prefix_origins, p.scenario.vrps, p.scenario.irr);
    // CDN3: 5 IRR Invalid, all sibling (scaled).
    size_t expected = std::max<size_t>(1, static_cast<size_t>(5 * scale));
    EXPECT_EQ(row.irr_invalid, expected);
    EXPECT_EQ(row.irr_sibling_cp, expected);
    EXPECT_EQ(row.irr_unrelated, 0u);
    EXPECT_EQ(row.rpki_invalid, 0u);
  }
}

TEST(Integration, InvalidAnnouncementsAvoidManrsTransits) {
  // Fig 9's qualitative claim: the median MANRS preference score of RPKI
  // Invalid prefix-origins is below that of Valid ones.
  const Pipeline& p = pipeline();
  auto scores = core::compute_preference_scores(p.snapshot.transits,
                                                p.scenario.manrs);
  util::EmpiricalDistribution valid, invalid;
  for (const auto& s : scores) {
    if (s.rpki == rpki::RpkiStatus::kValid) valid.add(s.score);
    if (rpki::is_invalid(s.rpki)) invalid.add(s.score);
  }
  ASSERT_GT(valid.size(), 10u);
  ASSERT_GT(invalid.size(), 3u);
  EXPECT_LT(invalid.median(), valid.median());
}

TEST(Integration, CollectorRibSurvivesMrtRoundTrip) {
  const Pipeline& p = pipeline();
  sim::RouteCollector collector(p.simulator, p.scenario.vantage_points);
  std::vector<sim::Announcement> announcements;
  size_t limit = 500;  // keep the dump small
  for (const auto& po : p.scenario.announcements()) {
    if (announcements.size() >= limit) break;
    announcements.push_back(sim::Announcement{po.prefix, po.origin, {}});
  }
  bgp::Rib rib = collector.collect(announcements);

  std::ostringstream out;
  mrt::TableDumpWriter writer(out, 1651363200);
  writer.write_rib(rib, "integration");
  std::istringstream in(out.str());
  size_t bad = 0;
  bgp::Rib parsed = mrt::TableDumpReader::read_rib(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.prefix_count(), rib.prefix_count());
  EXPECT_EQ(parsed.prefix_origins(), rib.prefix_origins());

  // prefix2as derived from the decoded MRT matches the announcements fed
  // into the collector.
  astopo::Prefix2As rows = astopo::prefix2as_from_rib(parsed);
  std::unordered_set<std::string> announced;
  for (const auto& a : announcements) {
    announced.insert(bgp::PrefixOrigin{a.prefix, a.origin}.to_string());
  }
  for (const auto& row : rows) {
    EXPECT_TRUE(announced.count(row.to_string())) << row.to_string();
  }
}

TEST(Integration, SaturationManrsAboveNonManrs) {
  const Pipeline& p = pipeline();
  astopo::Prefix2As routed;
  for (const auto& po : p.scenario.announcements()) routed.push_back(po);
  auto saturation = core::compute_rpki_saturation(routed, p.scenario.vrps,
                                                  p.scenario.manrs);
  EXPECT_GT(saturation.rsat_manrs(), saturation.rsat_non_manrs());
  EXPECT_GT(saturation.rsat_manrs(), 0.0);
  EXPECT_LT(saturation.rsat_manrs(), 100.0);
}

TEST(Integration, HistoricalSaturationGrows) {
  const Pipeline& p = pipeline();
  double prev = -1.0;
  int growths = 0, years = 0;
  for (int year = 2016; year <= 2022; year += 2) {
    astopo::Prefix2As routed;
    for (const auto& po : p.scenario.announcements_in_year(year)) {
      routed.push_back(po);
    }
    auto vrps = p.scenario.vrps_in_year(year);
    auto saturation =
        core::compute_rpki_saturation(routed, vrps, p.scenario.manrs);
    double total =
        saturation.manrs_covered_space + saturation.non_manrs_covered_space;
    if (prev >= 0 && total > prev) ++growths;
    prev = total;
    ++years;
  }
  EXPECT_GE(growths, years - 2);  // essentially monotone growth
}

TEST(Integration, WeeklyConformanceMostlyStable) {
  // §8.5: most ASes keep their conformance status across the 12 weeks.
  const Pipeline& p = pipeline();
  topogen::WeeklySeries series = topogen::build_weekly_series(p.scenario, 6);
  ihr::IhrSnapshotBuilder builder(p.simulator, p.scenario.vantage_points);

  std::unordered_map<uint32_t, std::vector<bool>> verdicts;
  for (const auto& table : series.announcements) {
    auto snapshot = builder.build(table, p.scenario.vrps, p.scenario.irr);
    auto origination = core::compute_origination_stats(snapshot.prefix_origins);
    for (Asn asn : p.scenario.manrs.member_ases()) {
      auto it = origination.find(asn.value());
      auto verdict = core::check_action4(
          it == origination.end() ? nullptr : &it->second,
          core::Program::kIsp);
      verdicts[asn.value()].push_back(verdict.conformant);
    }
  }
  size_t stable = 0, fluctuating = 0;
  // lint-ok: commutative counter fold, order-independent
  for (const auto& [asn, history] : verdicts) {
    bool all_same = std::adjacent_find(history.begin(), history.end(),
                                       std::not_equal_to<>()) == history.end();
    all_same ? ++stable : ++fluctuating;
  }
  EXPECT_GT(stable, fluctuating * 5);  // overwhelmingly stable
  EXPECT_GT(fluctuating, 0u);          // but the scripted leaks do show up
}

TEST(Integration, MemberReportsCoverAllParticipants) {
  const Pipeline& p = pipeline();
  size_t reports = 0;
  for (const auto& participant : p.scenario.manrs.participants()) {
    core::MemberReport report = core::build_member_report(
        participant, p.snapshot.prefix_origins, p.snapshot.transits);
    EXPECT_EQ(report.ases.size(), participant.registered_ases.size());
    ++reports;
  }
  EXPECT_EQ(reports, p.scenario.manrs.participant_count());
}

}  // namespace
}  // namespace manrs
