// IhrSnapshotBuilder behaviour on a hand-built topology where every
// expected record can be reasoned out exactly.
#include <gtest/gtest.h>

#include "ihr/dataset.h"
#include "irr/database.h"
#include "simulator/propagation.h"

namespace manrs::ihr {
namespace {

using net::Asn;
using net::Prefix;

// Chain topology with two vantage points:
//
//   V1 (AS10) --customer--> T (AS20) --customer--> O (AS30)
//   V2 (AS11) --customer--> T
//
// (V1/V2 are providers of T; T is the provider of O.)
struct Fixture {
  astopo::AsGraph graph;
  rpki::VrpStore vrps;
  irr::IrrRegistry irr;

  Fixture() {
    graph.add_provider_customer(Asn(10), Asn(20));
    graph.add_provider_customer(Asn(11), Asn(20));
    graph.add_provider_customer(Asn(20), Asn(30));
    vrps.add({Prefix::must_parse("10.0.0.0/16"), 16, Asn(30)});
    auto& db = irr.add_database("RADB", false);
    irr::RouteObject route;
    route.prefix = Prefix::must_parse("10.1.0.0/16");
    route.origin = Asn(99);  // wrong origin -> IRR Invalid for AS30
    db.add_route(route);
  }
};

TEST(IhrBuilder, ClassifiesAndBuildsTransits) {
  Fixture f;
  sim::PropagationSim simulator(f.graph);
  IhrSnapshotBuilder builder(simulator, {Asn(10), Asn(11)}, /*trim=*/0.0);

  std::vector<bgp::PrefixOrigin> announcements{
      {Prefix::must_parse("10.0.0.0/16"), Asn(30)},  // RPKI Valid
      {Prefix::must_parse("10.1.0.0/16"), Asn(30)},  // IRR Invalid
      {Prefix::must_parse("10.2.0.0/16"), Asn(30)},  // both NotFound
  };
  IhrSnapshot snapshot = builder.build(announcements, f.vrps, f.irr);

  ASSERT_EQ(snapshot.prefix_origins.size(), 3u);
  EXPECT_EQ(snapshot.prefix_origins[0].rpki, rpki::RpkiStatus::kValid);
  EXPECT_EQ(snapshot.prefix_origins[0].irr, irr::IrrStatus::kNotFound);
  EXPECT_EQ(snapshot.prefix_origins[1].rpki, rpki::RpkiStatus::kNotFound);
  EXPECT_EQ(snapshot.prefix_origins[1].irr, irr::IrrStatus::kInvalidAsn);
  EXPECT_EQ(snapshot.prefix_origins[2].rpki, rpki::RpkiStatus::kNotFound);
  EXPECT_EQ(snapshot.prefix_origins[2].irr, irr::IrrStatus::kNotFound);
  // Both vantage points see every announcement (no filters installed).
  for (const auto& record : snapshot.prefix_origins) {
    EXPECT_EQ(record.visibility, 2u) << record.prefix.to_string();
  }

  // Transit records: AS20 is on both vantage paths toward every prefix;
  // hegemony 1.0; it learned the routes from its customer AS30. The
  // origin itself is excluded (the "trivial transit").
  ASSERT_EQ(snapshot.transits.size(), 3u);
  for (const auto& transit : snapshot.transits) {
    EXPECT_EQ(transit.transit, Asn(20));
    EXPECT_DOUBLE_EQ(transit.hegemony, 1.0);
    EXPECT_TRUE(transit.via_customer);
    EXPECT_EQ(transit.origin, Asn(30));
  }
  // Statuses are carried onto the transit records (Formulas 4-6 need
  // them).
  EXPECT_EQ(snapshot.transits[1].irr, irr::IrrStatus::kInvalidAsn);
}

TEST(IhrBuilder, FilteredAnnouncementsLoseVisibility) {
  Fixture f;
  sim::PropagationSim simulator(f.graph);
  sim::FilterPolicy strict;
  strict.customer_strictness = sim::kFilterVariants;
  simulator.set_policy(Asn(20), strict);  // T filters its customer O
  IhrSnapshotBuilder builder(simulator, {Asn(10), Asn(11)}, 0.0);

  std::vector<bgp::PrefixOrigin> announcements{
      {Prefix::must_parse("10.1.0.0/16"), Asn(30)},  // IRR Invalid: dropped
      {Prefix::must_parse("10.0.0.0/16"), Asn(30)},  // Valid: passes
  };
  IhrSnapshot snapshot = builder.build(announcements, f.vrps, f.irr);
  ASSERT_EQ(snapshot.prefix_origins.size(), 2u);
  EXPECT_EQ(snapshot.prefix_origins[0].visibility, 0u);
  EXPECT_EQ(snapshot.prefix_origins[1].visibility, 2u);
  // The dropped announcement contributes no transit records.
  ASSERT_EQ(snapshot.transits.size(), 1u);
  EXPECT_EQ(snapshot.transits[0].prefix, Prefix::must_parse("10.0.0.0/16"));
}

TEST(IhrBuilder, ViaCustomerFalseForPeerLearnedRoutes) {
  // The vantage V is a customer of A; A peers with B; B is the origin's
  // provider. V's (valley-free) path is V <- A <- B <- O, where A learned
  // the route from its PEER and B from its CUSTOMER:
  //
  //   A (AS20) --peer-- B (AS21)
  //      |                 |
  //   V (AS10)          O (AS30)
  astopo::AsGraph graph;
  graph.add_provider_customer(Asn(20), Asn(10));
  graph.add_peer_peer(Asn(20), Asn(21));
  graph.add_provider_customer(Asn(21), Asn(30));
  sim::PropagationSim simulator(graph);
  rpki::VrpStore vrps;
  irr::IrrRegistry irr_registry;
  IhrSnapshotBuilder builder(simulator, {Asn(10)}, 0.0);

  IhrSnapshot snapshot = builder.build(
      {{Prefix::must_parse("10.0.0.0/16"), Asn(30)}}, vrps, irr_registry);
  // Path: 10 -> 20 -> 21 -> 30. AS20 learned from peer AS21 (not a
  // customer); AS21 learned from customer AS30.
  ASSERT_EQ(snapshot.transits.size(), 2u);
  for (const auto& transit : snapshot.transits) {
    if (transit.transit == Asn(20)) {
      EXPECT_FALSE(transit.via_customer);
    }
    if (transit.transit == Asn(21)) {
      EXPECT_TRUE(transit.via_customer);
    }
  }
}

TEST(IhrBuilder, TrimRemovesSingleVantageTransit) {
  // 20 vantage points; one reaches the origin through a side AS that no
  // other vantage uses -> trimmed away at 10%.
  astopo::AsGraph graph;
  for (uint32_t v = 100; v < 119; ++v) {
    graph.add_provider_customer(Asn(v), Asn(20));
  }
  graph.add_provider_customer(Asn(20), Asn(30));
  // Vantage 119 reaches AS30 via its own private transit AS50.
  graph.add_provider_customer(Asn(119), Asn(50));
  graph.add_provider_customer(Asn(50), Asn(30));
  sim::PropagationSim simulator(graph);
  rpki::VrpStore vrps;
  irr::IrrRegistry irr_registry;

  std::vector<Asn> vantages;
  for (uint32_t v = 100; v < 120; ++v) vantages.emplace_back(v);

  IhrSnapshotBuilder untrimmed(simulator, vantages, 0.0);
  auto snap0 = untrimmed.build(
      {{Prefix::must_parse("10.0.0.0/16"), Asn(30)}}, vrps, irr_registry);
  bool saw_50 = false;
  for (const auto& t : snap0.transits) saw_50 |= t.transit == Asn(50);
  EXPECT_TRUE(saw_50);

  IhrSnapshotBuilder trimmed(simulator, vantages, 0.1);
  auto snap1 = trimmed.build(
      {{Prefix::must_parse("10.0.0.0/16"), Asn(30)}}, vrps, irr_registry);
  for (const auto& t : snap1.transits) {
    EXPECT_NE(t.transit, Asn(50));
  }
}

}  // namespace
}  // namespace manrs::ihr
