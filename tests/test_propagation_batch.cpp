// Batched propagation engine tests.
//
// Three layers:
//
//   * PropagationBatch: the lane engine (propagate_batch) must equal the
//     single-origin engine result-for-result at every lane width -- 1,
//     a non-power-of-two, the full 64, and a width larger than the
//     request count -- and the batched propagate_cached() front end must
//     share memo entries (and hit/miss accounting) with the single-call
//     overload.
//   * PropagationBatchPaths: extract_paths() views must match path_from
//     hop-for-hop, including no-route vantages, the origin itself, and
//     unknown ASNs, while the arena's suffix memo actually shares hops.
//   * PropagationBatchGolden: full collector RIBs and hegemony CSVs must
//     be byte-identical to the single-origin engine across the thread x
//     grain x batch-width matrix. The single-engine golden is produced by
//     pre-warming the propagation cache through propagate_cached(origin,
//     cls) -- the batched front end then serves only single-engine
//     results -- plus, for the collector, an explicit path_from +
//     merge_group_entries reference build.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ihr/dataset.h"
#include "mrt/table_dump.h"
#include "simulator/collector.h"
#include "simulator/propagation.h"
#include "topogen/scenario.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace manrs {
namespace {

using astopo::AsGraph;
using net::Asn;
using sim::AnnouncementClass;
using sim::FilterPolicy;
using sim::PropagationRequest;
using sim::PropagationResult;
using sim::PropagationSim;

// Restores the lane width (and the thread/grain knobs the golden matrix
// touches) no matter how a test exits.
struct EngineKnobGuard {
  ~EngineKnobGuard() {
    sim::set_batch_width(0);
    util::set_thread_count(0);
    util::set_grain(0);
  }
};

AsGraph random_graph(util::Rng& rng, size_t n) {
  AsGraph graph;
  // Node i may buy transit from lower-indexed nodes (acyclic p2c), plus
  // random peering edges not parallel to p2c edges.
  for (size_t i = 0; i < n; ++i) graph.add_as(Asn(100 + i));
  for (size_t i = 1; i < n; ++i) {
    size_t providers = 1 + rng.uniform(2);
    for (size_t k = 0; k < providers; ++k) {
      graph.add_provider_customer(Asn(100 + rng.uniform(i)), Asn(100 + i));
    }
  }
  for (size_t k = 0; k < n / 2; ++k) {
    size_t a = rng.uniform(n), b = rng.uniform(n);
    if (a == b) continue;
    if (graph.is_provider_of(Asn(100 + a), Asn(100 + b)) ||
        graph.is_provider_of(Asn(100 + b), Asn(100 + a))) {
      continue;
    }
    graph.add_peer_peer(Asn(100 + a), Asn(100 + b));
  }
  return graph;
}

void apply_random_policies(util::Rng& rng, const AsGraph& graph,
                           PropagationSim& sim) {
  for (Asn asn : graph.all_asns()) {
    FilterPolicy policy;
    policy.rov = rng.bernoulli(0.2);
    if (rng.bernoulli(0.3)) {
      policy.customer_strictness =
          static_cast<uint8_t>(1 + rng.uniform(sim::kFilterVariants));
    }
    if (rng.bernoulli(0.2)) {
      policy.peer_strictness =
          static_cast<uint8_t>(1 + rng.uniform(sim::kFilterVariants));
    }
    sim.set_policy(asn, policy);
  }
}

AnnouncementClass random_class(util::Rng& rng) {
  AnnouncementClass cls;
  cls.rpki_invalid = rng.bernoulli(0.4);
  cls.irr_invalid = rng.bernoulli(0.4);
  cls.variant = static_cast<uint8_t>(rng.uniform(sim::kFilterVariants));
  return cls;
}

/// A request mix that exercises every batched code path: valid + invalid
/// classes (different effective drop signatures), duplicate (origin,
/// class) pairs, and one unknown origin.
std::vector<PropagationRequest> mixed_requests(util::Rng& rng, size_t n,
                                               size_t count) {
  std::vector<PropagationRequest> requests;
  requests.reserve(count);
  for (size_t r = 0; r < count; ++r) {
    Asn origin(100 + static_cast<uint32_t>(rng.uniform(n)));
    AnnouncementClass cls =
        rng.bernoulli(0.3) ? AnnouncementClass{} : random_class(rng);
    requests.push_back(PropagationRequest{origin, cls});
    if (rng.bernoulli(0.2) && requests.size() < count) {
      requests.push_back(requests.back());  // duplicate lane
      ++r;
    }
  }
  requests[count / 2].origin = Asn(99999999);  // unknown to the graph
  return requests;
}

void expect_result_eq(const PropagationResult& got,
                      const PropagationResult& want, size_t request,
                      size_t width) {
  EXPECT_EQ(got.source, want.source) << "request=" << request
                                     << " width=" << width;
  EXPECT_EQ(got.next_hop, want.next_hop)
      << "request=" << request << " width=" << width;
  EXPECT_EQ(got.distance, want.distance)
      << "request=" << request << " width=" << width;
}

TEST(PropagationBatch, MatchesSingleAcrossWidths) {
  EngineKnobGuard guard;
  util::Rng rng(20260801);
  const size_t n = 40;
  AsGraph graph = random_graph(rng, n);
  PropagationSim sim(graph);
  apply_random_policies(rng, graph, sim);

  // 90 requests: at width 64 that is one full sweep plus a partial one.
  std::vector<PropagationRequest> requests = mixed_requests(rng, n, 90);
  std::vector<PropagationResult> singles;
  singles.reserve(requests.size());
  for (const PropagationRequest& req : requests) {
    singles.push_back(sim.propagate(req.origin, req.cls));
  }

  for (size_t width : {size_t{1}, size_t{7}, size_t{64}}) {
    sim::set_batch_width(width);
    ASSERT_EQ(sim::batch_width(), width);
    std::vector<PropagationResult> lanes = sim.propagate_batch(requests);
    ASSERT_EQ(lanes.size(), requests.size());
    for (size_t r = 0; r < requests.size(); ++r) {
      expect_result_eq(lanes[r], singles[r], r, width);
    }
  }

  // Width larger than the whole request list: one short sweep.
  sim::set_batch_width(64);
  std::vector<PropagationRequest> few(requests.begin(), requests.begin() + 5);
  std::vector<PropagationResult> lanes = sim.propagate_batch(few);
  for (size_t r = 0; r < few.size(); ++r) {
    expect_result_eq(lanes[r], singles[r], r, 64);
  }
}

TEST(PropagationBatch, WorkspaceReuseAcrossSweeps) {
  // One lane workspace reused across batches of varying width and lane
  // count must leave no state behind between sweeps.
  EngineKnobGuard guard;
  util::Rng rng(715);
  const size_t n = 28;
  AsGraph graph = random_graph(rng, n);
  PropagationSim sim(graph);
  apply_random_policies(rng, graph, sim);

  sim::BatchWorkspace reused;
  for (size_t round = 0; round < 4; ++round) {
    sim::set_batch_width(round + 1);  // 1, 2, 3, 4 lanes per sweep
    std::vector<PropagationRequest> requests =
        mixed_requests(rng, n, 6 + 3 * round);
    std::vector<PropagationResult> warm = sim.propagate_batch(requests,
                                                              reused);
    for (size_t r = 0; r < requests.size(); ++r) {
      PropagationResult cold = sim.propagate(requests[r].origin,
                                             requests[r].cls);
      expect_result_eq(warm[r], cold, r, round + 1);
    }
  }
}

TEST(PropagationBatch, WidthKnobReadsEnvironment) {
  EngineKnobGuard guard;
  ASSERT_EQ(setenv("MANRS_BATCH_WIDTH", "7", 1), 0);
  sim::set_batch_width(0);  // re-read the environment
  EXPECT_EQ(sim::batch_width(), 7u);
  ASSERT_EQ(setenv("MANRS_BATCH_WIDTH", "100", 1), 0);
  sim::set_batch_width(0);
  EXPECT_EQ(sim::batch_width(), sim::kMaxBatchLanes);  // clamped
  ASSERT_EQ(unsetenv("MANRS_BATCH_WIDTH"), 0);
  sim::set_batch_width(0);
  EXPECT_EQ(sim::batch_width(), sim::kMaxBatchLanes);  // default
  sim::set_batch_width(3);
  EXPECT_EQ(sim::batch_width(), 3u);
}

TEST(PropagationBatch, CachedBatchSharesEntriesWithSingleCalls) {
  EngineKnobGuard guard;
  util::Rng rng(1177);
  const size_t n = 24;
  AsGraph graph = random_graph(rng, n);
  PropagationSim sim(graph);
  apply_random_policies(rng, graph, sim);
  ASSERT_TRUE(sim.cache_enabled());

  std::vector<PropagationRequest> requests = mixed_requests(rng, n, 40);
  sim::set_batch_width(7);
  std::vector<sim::PropagationResultPtr> batched =
      sim.propagate_cached(requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (size_t r = 0; r < requests.size(); ++r) {
    ASSERT_NE(batched[r], nullptr) << r;
    // Values equal the uncached single engine...
    PropagationResult plain = sim.propagate(requests[r].origin,
                                            requests[r].cls);
    expect_result_eq(*batched[r], plain, r, 7);
    // ...and known origins share the exact memo object a single-origin
    // cached call serves.
    if (sim.indexer().id_of(requests[r].origin) >= 0) {
      EXPECT_EQ(sim.propagate_cached(requests[r].origin, requests[r].cls)
                    .get(),
                batched[r].get())
          << r;
    }
  }
}

TEST(PropagationBatch, CachedBatchCountsDuplicatesAsHits) {
  // The batched front end must account exactly like the same sequence of
  // single-origin calls: first occurrence of a missing key is one miss,
  // every later occurrence in the same batch is a hit.
  EngineKnobGuard guard;
  util::Rng rng(31);
  AsGraph graph = random_graph(rng, 16);
  PropagationSim sim(graph);

  AnnouncementClass valid;
  std::vector<PropagationRequest> requests{
      PropagationRequest{Asn(101), valid},
      PropagationRequest{Asn(101), valid},  // duplicate of the pending miss
      PropagationRequest{Asn(105), valid},
  };
  std::vector<sim::PropagationResultPtr> first =
      sim.propagate_cached(requests);
  EXPECT_EQ(first[0].get(), first[1].get());
  auto stats = sim.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 2u);

  // A second identical batch is all hits against the installed entries.
  std::vector<sim::PropagationResultPtr> second =
      sim.propagate_cached(requests);
  for (size_t r = 0; r < requests.size(); ++r) {
    EXPECT_EQ(second[r].get(), first[r].get());
  }
  stats = sim.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(PropagationBatch, CachedBatchWithCacheDisabled) {
  EngineKnobGuard guard;
  util::Rng rng(92);
  const size_t n = 20;
  AsGraph graph = random_graph(rng, n);
  PropagationSim sim(graph);
  apply_random_policies(rng, graph, sim);
  sim.set_cache_enabled(false);

  std::vector<PropagationRequest> requests = mixed_requests(rng, n, 12);
  std::vector<sim::PropagationResultPtr> batched =
      sim.propagate_cached(requests);
  for (size_t r = 0; r < requests.size(); ++r) {
    ASSERT_NE(batched[r], nullptr);
    PropagationResult plain = sim.propagate(requests[r].origin,
                                            requests[r].cls);
    expect_result_eq(*batched[r], plain, r, sim::batch_width());
  }
  EXPECT_EQ(sim.cache_stats().entries, 0u);
  sim.set_cache_enabled(true);
}

TEST(PropagationBatch, UnknownOriginYieldsAllNone) {
  EngineKnobGuard guard;
  util::Rng rng(55);
  AsGraph graph = random_graph(rng, 10);
  PropagationSim sim(graph);

  std::vector<PropagationRequest> requests{
      PropagationRequest{Asn(424242), AnnouncementClass{}}};
  std::vector<PropagationResult> lanes = sim.propagate_batch(requests);
  std::vector<sim::PropagationResultPtr> cached =
      sim.propagate_cached(requests);
  ASSERT_EQ(lanes[0].source.size(), sim.indexer().size());
  for (size_t i = 0; i < lanes[0].source.size(); ++i) {
    EXPECT_EQ(lanes[0].source[i], sim::RouteSource::kNone);
    EXPECT_EQ(cached[0]->source[i], sim::RouteSource::kNone);
  }
}

// ---------------------------------------------------------------------------
// Arena path extraction.

TEST(PropagationBatchPaths, ExtractMatchesPathFrom) {
  util::Rng rng(60061);
  const size_t n = 32;
  AsGraph graph = random_graph(rng, n);
  PropagationSim sim(graph);
  apply_random_policies(rng, graph, sim);

  // Vantages: every AS (origin included), plus an ASN the graph has
  // never heard of.
  std::vector<Asn> vantages = sim.indexer().asns();
  vantages.push_back(Asn(77777777));

  sim::PathArena arena;  // reused across results: epoch reset under test
  for (int round = 0; round < 6; ++round) {
    Asn origin(100 + static_cast<uint32_t>(rng.uniform(n)));
    AnnouncementClass cls = round == 0 ? AnnouncementClass{}
                                       : random_class(rng);
    PropagationResult result = sim.propagate(origin, cls);

    sim::PathArenaStats before = sim::path_arena_stats();
    std::vector<sim::PathView> views =
        sim.extract_paths(result, vantages, arena);
    sim::PathArenaStats after = sim::path_arena_stats();
    ASSERT_EQ(views.size(), vantages.size());

    uint64_t expected_paths = 0;
    for (size_t k = 0; k < vantages.size(); ++k) {
      bgp::AsPath want = sim.path_from(result, vantages[k]);
      ASSERT_EQ(views[k].size(), want.hops().size())
          << "round=" << round << " vantage=" << vantages[k].to_string();
      for (size_t h = 0; h < want.hops().size(); ++h) {
        EXPECT_EQ(views[k][h], want.hops()[h]);
      }
      // to_path round-trips into the owned representation.
      EXPECT_EQ(views[k].to_path().hops(), want.hops());
      if (!want.empty()) ++expected_paths;
    }
    EXPECT_EQ(after.paths - before.paths, expected_paths);
    // With every AS as a vantage, interior chain nodes are themselves
    // vantages: all but the first hop of later walks come off the memo.
    if (expected_paths > 1) {
      EXPECT_GT(after.shared_hops, before.shared_hops);
    }
  }
}

TEST(PropagationBatchPaths, BrokenChainYieldsEmptyView) {
  util::Rng rng(808);
  AsGraph graph = random_graph(rng, 12);
  PropagationSim sim(graph);
  Asn origin(100);
  PropagationResult result = sim.propagate(origin, AnnouncementClass{});

  // Corrupt one routed, non-origin AS into a self-loop: path_from
  // reports kBrokenChain, and the arena walk must agree (empty view)
  // for every vantage whose chain crosses it.
  int32_t victim = -1;
  for (size_t i = 0; i < result.source.size(); ++i) {
    if (result.source[i] != sim::RouteSource::kNone &&
        result.source[i] != sim::RouteSource::kOrigin) {
      victim = static_cast<int32_t>(i);
      break;
    }
  }
  ASSERT_GE(victim, 0);
  result.next_hop[static_cast<size_t>(victim)] = victim;

  std::vector<Asn> vantages = sim.indexer().asns();
  sim::PathArena arena;
  std::vector<sim::PathView> views = sim.extract_paths(result, vantages,
                                                       arena);
  for (size_t k = 0; k < vantages.size(); ++k) {
    sim::PathStatus status = sim::PathStatus::kOk;
    bgp::AsPath want = sim.path_from(result, vantages[k], &status);
    EXPECT_EQ(views[k].empty(), want.empty())
        << vantages[k].to_string() << " status=" << static_cast<int>(status);
    if (!want.empty()) {
      ASSERT_EQ(views[k].size(), want.hops().size());
      for (size_t h = 0; h < want.hops().size(); ++h) {
        EXPECT_EQ(views[k][h], want.hops()[h]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Full-pipeline byte equality vs the single-origin engine.

std::vector<sim::Announcement> classified_announcements(
    const topogen::Scenario& scenario) {
  std::vector<sim::Announcement> out;
  for (const auto& po : scenario.announcements()) {
    AnnouncementClass cls;
    cls.rpki_invalid =
        rpki::is_invalid(scenario.vrps.validate(po.prefix, po.origin));
    cls.irr_invalid =
        irr::validate_route(scenario.irr, po.prefix, po.origin) ==
        irr::IrrStatus::kInvalidAsn;
    cls.variant = (cls.rpki_invalid || cls.irr_invalid)
                      ? sim::filter_variant(po.prefix)
                      : 0;
    out.push_back(sim::Announcement{po.prefix, po.origin, cls});
  }
  return out;
}

std::string rib_bytes(const bgp::Rib& rib) {
  std::ostringstream out;
  mrt::TableDumpWriter writer(out, /*timestamp=*/1651363200);  // 2022-05-01
  writer.write_rib(rib, "batch");
  return out.str();
}

std::string hegemony_bytes(const ihr::IhrSnapshot& snapshot) {
  std::ostringstream po, transit;
  ihr::write_prefix_origin_csv(po, snapshot.prefix_origins);
  ihr::write_transit_csv(transit, snapshot.transits);
  return po.str() + "\n---\n" + transit.str();
}

/// Force every group's propagation through the single-origin engine:
/// propagate_cached(origin, cls) computes with propagate_id, so after
/// this warm-up the batched front end resolves every request as a memo
/// hit and the lane engine never runs.
void prewarm_single_engine(const PropagationSim& sim,
                           const std::vector<sim::Announcement>& as) {
  for (const auto& group : sim::group_announcements(as)) {
    (void)sim.propagate_cached(group.origin, group.cls);
  }
}

TEST(PropagationBatchGolden, PipelineBytesMatchSingleEngineAcrossMatrix) {
  EngineKnobGuard guard;
  const topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  const auto announcements = classified_announcements(scenario);
  ASSERT_FALSE(announcements.empty());

  auto pipeline_bytes = [&](bool single_engine) {
    PropagationSim simulator = scenario.make_sim();
    if (single_engine) prewarm_single_engine(simulator, announcements);
    sim::RouteCollector collector(simulator, scenario.vantage_points);
    std::string rib = rib_bytes(collector.collect(announcements));
    ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
    std::string heg = hegemony_bytes(builder.build(
        scenario.announcements(), scenario.vrps, scenario.irr));
    return std::pair<std::string, std::string>(std::move(rib),
                                               std::move(heg));
  };

  util::set_thread_count(1);
  util::set_grain(0);
  sim::set_batch_width(0);
  const auto [golden_rib, golden_heg] = pipeline_bytes(true);
  ASSERT_GT(golden_rib.size(), 100u);
  ASSERT_GT(golden_heg.size(), 100u);

  // An explicit single-engine collector reference: per-group single
  // propagation + per-peer path_from, merged with the same sharded
  // merge. Pins the golden itself to the pre-batch pipeline.
  {
    PropagationSim simulator = scenario.make_sim();
    bgp::Rib rib;
    for (Asn peer : scenario.vantage_points) rib.add_peer(peer);
    const auto groups = sim::group_announcements(announcements);
    std::vector<std::vector<bgp::RibEntry>> entries(groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      sim::PropagationResultPtr result =
          simulator.propagate_cached(groups[g].origin, groups[g].cls);
      for (size_t i = 0; i < scenario.vantage_points.size(); ++i) {
        bgp::AsPath path =
            simulator.path_from(*result, scenario.vantage_points[i]);
        if (!path.empty()) {
          entries[g].push_back(
              bgp::RibEntry{static_cast<uint32_t>(i), std::move(path)});
        }
      }
    }
    rib.adopt_rows(sim::merge_group_entries(groups, std::move(entries)));
    ASSERT_EQ(rib_bytes(rib), golden_rib);
  }

  for (size_t width : {size_t{1}, size_t{7}, size_t{64}}) {
    for (size_t threads : {size_t{1}, size_t{4}}) {
      for (size_t grain : {size_t{1}, size_t{64}}) {
        sim::set_batch_width(width);
        util::set_thread_count(threads);
        util::set_grain(grain);
        const auto [rib, heg] = pipeline_bytes(false);
        EXPECT_EQ(rib, golden_rib) << "width=" << width
                                   << " threads=" << threads
                                   << " grain=" << grain;
        EXPECT_EQ(heg, golden_heg) << "width=" << width
                                   << " threads=" << threads
                                   << " grain=" << grain;
      }
    }
  }
}

}  // namespace
}  // namespace manrs
