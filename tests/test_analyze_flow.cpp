// In-process unit tests for the flow layer of manrs_analyze: function
// discovery, CFG shape, protocol-spec parsing, waiver-comment edge
// cases, the typestate engine, the interval lattice, and the value
// engine run end-to-end over synthetic files.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/analyzer.h"
#include "analyze/callgraph.h"
#include "analyze/cfg.h"
#include "analyze/intervals.h"
#include "analyze/rule.h"
#include "analyze/typestate.h"

namespace {

using manrs::analyze::analyze_text;
using manrs::analyze::AnalyzedFile;
using manrs::analyze::build_call_graph;
using manrs::analyze::build_cfg;
using manrs::analyze::CallGraph;
using manrs::analyze::Cfg;
using manrs::analyze::find_functions;
using manrs::analyze::Finding;
using manrs::analyze::FunctionDef;
using manrs::analyze::Interval;
using manrs::analyze::interval_add;
using manrs::analyze::interval_join;
using manrs::analyze::interval_mul;
using manrs::analyze::interval_sub;
using manrs::analyze::interval_widen;
using manrs::analyze::is_waiver_comment;
using manrs::analyze::parse_protocols;
using manrs::analyze::ProtocolSpec;
using manrs::analyze::TypestateEngine;
using manrs::analyze::ValueEngine;

TEST(AnalyzeFlow, FindFunctionsRecoversQualifiedNamesAndParams) {
  AnalyzedFile f = analyze_text(
      "src/x.cpp",
      "bool TableDumpReader::next(Record& out, int flags) {\n"
      "  return false;\n"
      "}\n"
      "static void helper() {}\n");
  std::vector<FunctionDef> fns = find_functions(f);
  ASSERT_EQ(fns.size(), 2u);
  EXPECT_EQ(fns[0].name, "next");
  EXPECT_EQ(fns[0].qualified, "TableDumpReader::next");
  ASSERT_EQ(fns[0].params.size(), 2u);
  EXPECT_EQ(fns[0].params[0].name, "out");
  EXPECT_EQ(fns[0].params[0].type_terminal, "Record");
  EXPECT_TRUE(fns[0].params[0].by_ref);
  EXPECT_EQ(fns[0].params[1].name, "flags");
  EXPECT_FALSE(fns[0].params[1].by_ref);
  EXPECT_EQ(fns[1].name, "helper");
  EXPECT_TRUE(fns[1].params.empty());
}

TEST(AnalyzeFlow, CfgSplitsOnBranches) {
  AnalyzedFile f = analyze_text(
      "src/x.cpp",
      "int g(int a) {\n"
      "  int r = 0;\n"
      "  if (a > 0) {\n"
      "    r = 1;\n"
      "  } else {\n"
      "    r = 2;\n"
      "  }\n"
      "  return r;\n"
      "}\n");
  std::vector<FunctionDef> fns = find_functions(f);
  ASSERT_EQ(fns.size(), 1u);
  Cfg cfg = build_cfg(f, fns[0]);
  // At minimum: entry/head, then-block, else-block, join/exit.
  EXPECT_GE(cfg.blocks.size(), 4u);
  // Some block must have two successors (the branch).
  bool has_branch = false;
  for (const auto& b : cfg.blocks) has_branch |= b.succ.size() >= 2;
  EXPECT_TRUE(has_branch);
  // The exit block is reachable and has no successors.
  EXPECT_TRUE(cfg.blocks[cfg.exit].succ.empty());
}

TEST(AnalyzeFlow, CfgMarksTryDepth) {
  AnalyzedFile f = analyze_text(
      "src/x.cpp",
      "void g() {\n"
      "  before();\n"
      "  try {\n"
      "    inside();\n"
      "  } catch (...) {\n"
      "  }\n"
      "  after();\n"
      "}\n");
  std::vector<FunctionDef> fns = find_functions(f);
  ASSERT_EQ(fns.size(), 1u);
  Cfg cfg = build_cfg(f, fns[0]);
  bool some_in_try = false;
  bool some_outside = false;
  for (const auto& b : cfg.blocks) {
    if (b.ranges.empty()) continue;
    (b.try_depth > 0 ? some_in_try : some_outside) = true;
  }
  EXPECT_TRUE(some_in_try);
  EXPECT_TRUE(some_outside);
}

TEST(AnalyzeFlow, ParseProtocolsRoundTrips) {
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(
      "# comment\n"
      "protocol demo\n"
      "  type Widget\n"
      "  severity warning\n"
      "  summary widget protocol\n"
      "  hint fix it\n"
      "  scope src/\n"
      "  states closed open\n"
      "  start closed\n"
      "  attr try-suppresses\n"
      "  on closed open_it -> open\n"
      "  on closed use !! used while closed\n"
      "end\n",
      &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(specs.size(), 1u);
  const ProtocolSpec& s = specs[0];
  EXPECT_EQ(s.id, "demo");
  EXPECT_EQ(s.severity, "warning");
  EXPECT_TRUE(s.try_suppresses);
  EXPECT_FALSE(s.callers_try_suppresses);
  ASSERT_EQ(s.states.size(), 2u);
  EXPECT_EQ(s.start, s.state_index("closed"));
  ASSERT_EQ(s.table.size(), 2u);
  EXPECT_FALSE(s.table[0].is_error);
  EXPECT_EQ(s.table[0].to, s.state_index("open"));
  EXPECT_TRUE(s.table[1].is_error);
  EXPECT_EQ(s.table[1].message, "used while closed");
  EXPECT_TRUE(s.in_scope("src/a.cpp"));
  EXPECT_FALSE(s.in_scope("bench/a.cpp"));
}

TEST(AnalyzeFlow, ParseProtocolsRejectsUnknownState) {
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(
      "protocol demo\n"
      "  states a b\n"
      "  on nosuch m -> a\n"
      "end\n",
      &error);
  EXPECT_TRUE(specs.empty());
  EXPECT_NE(error.find("3"), std::string::npos) << error;  // line number
}

TEST(AnalyzeFlow, ParseProtocolsRejectsDirectiveOutsideProtocol) {
  std::string error;
  parse_protocols("states a b\n", &error);
  EXPECT_FALSE(error.empty());
}

TEST(AnalyzeFlow, WaiverCommentRequiresReason) {
  EXPECT_TRUE(is_waiver_comment("// lint-ok: tested elsewhere"));
  EXPECT_FALSE(is_waiver_comment("// lint-ok:"));
  EXPECT_FALSE(is_waiver_comment("// lint-ok:   "));
  EXPECT_FALSE(is_waiver_comment("/* lint-ok: */"));
  EXPECT_TRUE(is_waiver_comment("/* lint-ok: checked */"));
  EXPECT_FALSE(is_waiver_comment("// nothing to see"));
}

TEST(AnalyzeFlow, EngineFlagsStagedReadAcrossFunctions) {
  // The callee reads; the caller leaves the Rib staged. The finding
  // must anchor at the caller's call site.
  AnalyzedFile f = analyze_text(
      "src/bgp/x.cpp",
      "unsigned long count(Rib& r) { return r.entry_count(); }\n"
      "void build() {\n"
      "  Rib r;\n"
      "  r.insert(1, 2, 3);\n"
      "  count(r);\n"
      "}\n");
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(
      "protocol rib-typestate\n"
      "  type Rib\n"
      "  states clean staged finalized\n"
      "  start clean\n"
      "  on clean insert -> staged\n"
      "  on staged entry_count !! staged read\n"
      "  on staged finalize -> finalized\n"
      "end\n",
      &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<const AnalyzedFile*> files = {&f};
  CallGraph graph = build_call_graph(files);
  TypestateEngine engine(std::move(specs), files, &graph);
  std::vector<Finding> findings = engine.check_file(0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "rib-typestate");
  EXPECT_EQ(findings[0].line, 5);
}

TEST(AnalyzeFlow, EngineStaysQuietWhenProtocolIsFollowed) {
  AnalyzedFile f = analyze_text(
      "src/bgp/x.cpp",
      "void build() {\n"
      "  Rib r;\n"
      "  r.insert(1, 2, 3);\n"
      "  r.finalize();\n"
      "  auto n = r.entry_count();\n"
      "  (void)n;\n"
      "}\n");
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(
      "protocol rib-typestate\n"
      "  type Rib\n"
      "  states clean staged finalized\n"
      "  start clean\n"
      "  on clean insert -> staged\n"
      "  on staged entry_count !! staged read\n"
      "  on staged finalize -> finalized\n"
      "end\n",
      &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<const AnalyzedFile*> files = {&f};
  CallGraph graph = build_call_graph(files);
  TypestateEngine engine(std::move(specs), files, &graph);
  EXPECT_TRUE(engine.check_file(0).empty());
}

TEST(AnalyzeIntervals, JoinIdentitySinkAndHull) {
  Interval b = Interval::bottom();
  Interval u = Interval::unknown();
  Interval r = Interval::range(2, 5);
  // Bottom is the identity of join.
  EXPECT_EQ(interval_join(b, r), r);
  EXPECT_EQ(interval_join(r, b), r);
  EXPECT_EQ(interval_join(b, b), b);
  // Unknown is the sink.
  EXPECT_EQ(interval_join(u, r), u);
  EXPECT_EQ(interval_join(r, u), u);
  // Ranges take the convex hull.
  EXPECT_EQ(interval_join(r, Interval::range(7, 9)), Interval::range(2, 9));
  EXPECT_EQ(interval_join(Interval::constant(4), Interval::constant(4)),
            Interval::constant(4));
}

TEST(AnalyzeIntervals, WideningJumpsToUnknownOnGrowth) {
  Interval r = Interval::range(0, 4);
  // Stable or narrowing values keep the previous bound.
  EXPECT_EQ(interval_widen(r, r), r);
  EXPECT_EQ(interval_widen(r, Interval::range(1, 3)), r);
  // Any growth in either direction goes straight to Unknown.
  EXPECT_EQ(interval_widen(r, Interval::range(0, 5)), Interval::unknown());
  EXPECT_EQ(interval_widen(r, Interval::range(-1, 4)), Interval::unknown());
  // Bottom previous just adopts the next value.
  EXPECT_EQ(interval_widen(Interval::bottom(), r), r);
}

TEST(AnalyzeIntervals, ArithmeticPropagatesAndSaturates) {
  Interval a = Interval::range(1, 3);
  Interval b = Interval::range(10, 20);
  EXPECT_EQ(interval_add(a, b), Interval::range(11, 23));
  EXPECT_EQ(interval_sub(b, a), Interval::range(7, 19));
  EXPECT_EQ(interval_mul(a, b), Interval::range(10, 60));
  // Negative factors flip the bound order; mul must take min/max
  // over all four corner products.
  EXPECT_EQ(interval_mul(Interval::range(-2, 3), Interval::range(4, 5)),
            Interval::range(-10, 15));
  // Unknown propagates, Bottom propagates.
  EXPECT_EQ(interval_add(Interval::unknown(), a), Interval::unknown());
  EXPECT_EQ(interval_add(Interval::bottom(), a), Interval::bottom());
  // Overflow saturates instead of wrapping (stays a range, not UB).
  Interval big = Interval::constant(1LL << 62);
  EXPECT_EQ(interval_mul(big, big).kind, Interval::kRange);
}

namespace {
// Shared width protocol for the ValueEngine tests below.
const char* kWidthProto =
    "protocol cursor-width\n"
    "  kind width\n"
    "  type ByteCursor\n"
    "  severity warning\n"
    "  summary guard proves fewer bytes than the reads consume\n"
    "  scope src/\n"
    "  guard can_read remaining\n"
    "  read u16 2\n"
    "  read u32 4\n"
    "  read u64 8\n"
    "  read bytes arg\n"
    "end\n";
}  // namespace

TEST(AnalyzeFlow, ValueEngineFlagsGuardNarrowerThanReads) {
  AnalyzedFile f = analyze_text(
      "src/mrt/x.cpp",
      "void parse(ByteCursor& c) {\n"
      "  if (!c.can_read(8)) return;\n"
      "  auto a = c.u64();\n"
      "  auto b = c.u32();\n"  // 12 > 8: overrun
      "  (void)a; (void)b;\n"
      "}\n");
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(kWidthProto, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<const AnalyzedFile*> files = {&f};
  CallGraph graph = build_call_graph(files);
  ValueEngine engine(std::move(specs), files, &graph);
  std::vector<Finding> findings = engine.check_file(0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "cursor-width");
  EXPECT_EQ(findings[0].line, 4);
}

TEST(AnalyzeFlow, ValueEngineTracksArithmeticOnGuardedLength) {
  // The guard budget covers len but not len + 2: the lattice has to
  // evaluate the addition to see the overrun.
  AnalyzedFile f = analyze_text(
      "src/mrt/x.cpp",
      "void parse(ByteCursor& c) {\n"
      "  std::size_t len = 4;\n"
      "  if (!c.can_read(len)) return;\n"
      "  auto v = c.bytes(len + 2);\n"
      "  (void)v;\n"
      "}\n");
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(kWidthProto, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<const AnalyzedFile*> files = {&f};
  CallGraph graph = build_call_graph(files);
  ValueEngine engine(std::move(specs), files, &graph);
  std::vector<Finding> findings = engine.check_file(0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
}

TEST(AnalyzeFlow, ValueEngineAcceptsExactAndRenewedGuards) {
  AnalyzedFile f = analyze_text(
      "src/mrt/x.cpp",
      "void parse(ByteCursor& c) {\n"
      "  if (!c.can_read(4)) return;\n"
      "  auto a = c.u32();\n"
      "  if (!c.can_read(8)) return;\n"
      "  auto b = c.u64();\n"
      "  (void)a; (void)b;\n"
      "}\n");
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(kWidthProto, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<const AnalyzedFile*> files = {&f};
  CallGraph graph = build_call_graph(files);
  ValueEngine engine(std::move(specs), files, &graph);
  EXPECT_TRUE(engine.check_file(0).empty());
}

TEST(AnalyzeFlow, ValueEngineChargesCalleeConsumptionToCaller) {
  // The callee consumes 8 bytes on every path; the caller only proved
  // 4, so the pass site is the finding.
  AnalyzedFile f = analyze_text(
      "src/mrt/x.cpp",
      "unsigned long read8(ByteCursor& c) { return c.u64(); }\n"
      "void parse(ByteCursor& c) {\n"
      "  if (!c.can_read(4)) return;\n"
      "  auto v = read8(c);\n"
      "  (void)v;\n"
      "}\n");
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(kWidthProto, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<const AnalyzedFile*> files = {&f};
  CallGraph graph = build_call_graph(files);
  ValueEngine engine(std::move(specs), files, &graph);
  std::vector<Finding> findings = engine.check_file(0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("read8"), std::string::npos)
      << findings[0].message;
}

TEST(AnalyzeFlow, ValueEngineLocksetAcceptsLinearSlotRejectsConstant) {
  const char* proto =
      "protocol lockset-race\n"
      "  kind lockset\n"
      "  severity error\n"
      "  summary parallel write with a possibly-empty lockset\n"
      "  scope src/\n"
      "  functions parallel_for\n"
      "  lock lock_guard unique_lock scoped_lock\n"
      "  atomic atomic\n"
      "end\n";
  AnalyzedFile bad = analyze_text(
      "src/simulator/bad.cpp",
      "void f(std::size_t n, std::vector<int>& out) {\n"
      "  util::parallel_for(n, [&](std::size_t i) {\n"
      "    std::size_t slot = 0;\n"
      "    out[slot] += static_cast<int>(i);\n"
      "  });\n"
      "}\n");
  AnalyzedFile good = analyze_text(
      "src/simulator/good.cpp",
      "void f(std::size_t n, std::vector<int>& out) {\n"
      "  util::parallel_for(n, [&](std::size_t i) {\n"
      "    std::size_t slot = 2 * i + 1;\n"
      "    out[slot] = static_cast<int>(i);\n"
      "  });\n"
      "}\n");
  std::string error;
  std::vector<ProtocolSpec> specs = parse_protocols(proto, &error);
  ASSERT_TRUE(error.empty()) << error;
  std::vector<const AnalyzedFile*> files = {&bad, &good};
  CallGraph graph = build_call_graph(files);
  ValueEngine engine(std::move(specs), files, &graph);
  std::vector<Finding> findings = engine.check_file(0);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "lockset-race");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_TRUE(engine.check_file(1).empty());
}

}  // namespace
