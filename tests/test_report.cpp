#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::core {
namespace {

using irr::IrrStatus;
using net::Asn;
using net::Prefix;
using rpki::RpkiStatus;

ihr::PrefixOriginRecord record(const char* prefix, uint32_t origin,
                               RpkiStatus rpki, IrrStatus irr) {
  ihr::PrefixOriginRecord r;
  r.prefix = Prefix::must_parse(prefix);
  r.origin = Asn(origin);
  r.rpki = rpki;
  r.irr = irr;
  return r;
}

Participant participant(const char* org, Program program,
                        std::initializer_list<uint32_t> ases) {
  Participant p;
  p.org_id = org;
  p.program = program;
  p.joined = util::Date(2020, 1, 1);
  for (uint32_t a : ases) p.registered_ases.emplace_back(a);
  return p;
}

TEST(Completeness, Finding70Buckets) {
  // org1: both ASes registered, both originate -> fully registered.
  // org2: AS3 registered+originating, AS4 unregistered+originating
  //       -> partial, some space unregistered.
  // org3: AS5 registered, AS6 unregistered but quiet -> quiescent partial.
  // org4: AS7 registered but quiet, AS8 unregistered originating
  //       -> announces ONLY from unregistered ASes.
  ManrsRegistry registry;
  registry.add_participant(participant("org1", Program::kIsp, {1, 2}));
  registry.add_participant(participant("org2", Program::kIsp, {3}));
  registry.add_participant(participant("org3", Program::kIsp, {5}));
  registry.add_participant(participant("org4", Program::kIsp, {7}));

  astopo::As2Org a2o;
  for (const char* org : {"org1", "org2", "org3", "org4"}) {
    a2o.add_organization({org, org, "US", net::Rir::kArin});
  }
  a2o.map_as(Asn(1), "org1");
  a2o.map_as(Asn(2), "org1");
  a2o.map_as(Asn(3), "org2");
  a2o.map_as(Asn(4), "org2");
  a2o.map_as(Asn(5), "org3");
  a2o.map_as(Asn(6), "org3");
  a2o.map_as(Asn(7), "org4");
  a2o.map_as(Asn(8), "org4");

  std::vector<ihr::PrefixOriginRecord> origins{
      record("10.0.0.0/24", 1, RpkiStatus::kValid, IrrStatus::kValid),
      record("10.0.1.0/24", 2, RpkiStatus::kValid, IrrStatus::kValid),
      record("10.0.2.0/24", 3, RpkiStatus::kValid, IrrStatus::kValid),
      record("10.0.3.0/24", 4, RpkiStatus::kValid, IrrStatus::kValid),
      record("10.0.4.0/24", 5, RpkiStatus::kValid, IrrStatus::kValid),
      record("10.0.5.0/24", 8, RpkiStatus::kValid, IrrStatus::kValid),
  };

  CompletenessStats stats =
      compute_registration_completeness(registry, a2o, origins);
  EXPECT_EQ(stats.total_orgs, 4u);
  EXPECT_EQ(stats.orgs_all_ases_registered, 1u);
  EXPECT_EQ(stats.orgs_all_space_via_registered, 2u);  // org1, org3
  EXPECT_EQ(stats.orgs_some_space_unregistered, 2u);   // org2, org4
  EXPECT_EQ(stats.orgs_only_unregistered_space, 1u);   // org4
  EXPECT_EQ(stats.orgs_quiescent_unregistered, 1u);    // org3
  EXPECT_DOUBLE_EQ(stats.pct_all_ases(), 25.0);
  EXPECT_DOUBLE_EQ(stats.pct_all_space(), 50.0);
}

TEST(CaseStudy, ClassifiesMismatchAffinity) {
  // AS1 (registered) originates three bad prefixes:
  //  - 10.0.0.0/24: RPKI Invalid, ROA names sibling AS2.
  //  - 10.0.1.0/24: IRR Invalid, route object names provider AS3.
  //  - 10.0.2.0/24: IRR Invalid, route object names unrelated AS9.
  //  - 10.0.3.0/24: registered nowhere.
  ManrsRegistry registry;
  registry.add_participant(participant("org1", Program::kIsp, {1}));
  astopo::As2Org a2o;
  a2o.add_organization({"org1", "Org", "US", net::Rir::kArin});
  a2o.map_as(Asn(1), "org1");
  a2o.map_as(Asn(2), "org1");
  astopo::AsGraph graph;
  graph.add_provider_customer(Asn(3), Asn(1));
  graph.add_as(Asn(9));

  rpki::VrpStore vrps;
  vrps.add({Prefix::must_parse("10.0.0.0/24"), 24, Asn(2)});
  irr::IrrRegistry irr_registry;
  auto& db = irr_registry.add_database("RADB", false);
  irr::RouteObject r1;
  r1.prefix = Prefix::must_parse("10.0.1.0/24");
  r1.origin = Asn(3);
  db.add_route(r1);
  irr::RouteObject r2;
  r2.prefix = Prefix::must_parse("10.0.2.0/24");
  r2.origin = Asn(9);
  db.add_route(r2);

  std::vector<ihr::PrefixOriginRecord> origins{
      record("10.0.0.0/24", 1, RpkiStatus::kInvalidAsn, IrrStatus::kNotFound),
      record("10.0.1.0/24", 1, RpkiStatus::kNotFound, IrrStatus::kInvalidAsn),
      record("10.0.2.0/24", 1, RpkiStatus::kNotFound, IrrStatus::kInvalidAsn),
      record("10.0.3.0/24", 1, RpkiStatus::kNotFound, IrrStatus::kNotFound),
      record("10.0.4.0/24", 1, RpkiStatus::kValid, IrrStatus::kValid),
  };

  CaseStudyRow row = analyze_unconformant_org(
      *registry.participant_of(Asn(1)), "ISPX", a2o, graph, origins, vrps,
      irr_registry);
  EXPECT_EQ(row.label, "ISPX");
  EXPECT_EQ(row.rpki_invalid, 1u);
  EXPECT_EQ(row.rpki_sibling_cp, 1u);
  EXPECT_EQ(row.rpki_unrelated, 0u);
  EXPECT_EQ(row.irr_invalid, 2u);
  EXPECT_EQ(row.irr_sibling_cp, 1u);
  EXPECT_EQ(row.irr_unrelated, 1u);
  EXPECT_EQ(row.unregistered, 1u);
}

TEST(MemberReport, VerdictsAndOffenders) {
  Participant p = participant("org1", Program::kIsp, {1, 2});
  std::vector<ihr::PrefixOriginRecord> origins{
      record("10.0.0.0/24", 1, RpkiStatus::kValid, IrrStatus::kValid),
      record("10.0.1.0/24", 1, RpkiStatus::kInvalidAsn, IrrStatus::kNotFound),
      // AS2 originates nothing: trivially conformant.
  };
  std::vector<ihr::TransitRecord> transits;

  MemberReport report = build_member_report(p, origins, transits);
  EXPECT_EQ(report.org_id, "org1");
  ASSERT_EQ(report.ases.size(), 2u);
  // AS1: 50% conformant, below the 90% ISP bar.
  EXPECT_FALSE(report.ases[0].action4.conformant);
  ASSERT_EQ(report.ases[0].unconformant_origins.size(), 1u);
  EXPECT_EQ(report.ases[0].unconformant_origins[0].prefix,
            Prefix::must_parse("10.0.1.0/24"));
  // AS2: trivially conformant.
  EXPECT_TRUE(report.ases[1].action4.trivially);
  EXPECT_FALSE(report.action4_conformant);
  EXPECT_TRUE(report.action1_conformant);

  std::ostringstream out;
  print_member_report(out, report);
  EXPECT_NE(out.str().find("NOT CONFORMANT"), std::string::npos);
  EXPECT_NE(out.str().find("10.0.1.0/24"), std::string::npos);
}

}  // namespace
}  // namespace manrs::core
