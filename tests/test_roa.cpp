#include "rpki/roa.h"

#include <gtest/gtest.h>

namespace manrs::rpki {
namespace {

using net::Asn;
using net::Prefix;
using util::Date;

ResourceCertificate make_cert(uint64_t serial,
                              std::vector<Prefix> resources) {
  ResourceCertificate cert;
  cert.serial = serial;
  cert.resources = std::move(resources);
  cert.not_before = Date(2020, 1, 1);
  cert.not_after = Date(2025, 1, 1);
  return cert;
}

TEST(RelyingParty, AcceptsWellFormedRoa) {
  RelyingParty rp;
  rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8")}));
  Roa roa;
  roa.asn = Asn(64496);
  roa.prefixes.push_back({Prefix::must_parse("10.1.0.0/16"), 24});
  roa.certificate_serial = 1;
  rp.add_roa(roa);

  EXPECT_EQ(rp.validate_roa(roa, Date(2022, 5, 1)), RoaValidity::kAccepted);
  size_t rejected = 0;
  auto vrps = rp.evaluate(Date(2022, 5, 1), &rejected);
  ASSERT_EQ(vrps.size(), 1u);
  EXPECT_EQ(rejected, 0u);
  EXPECT_EQ(vrps[0].prefix, Prefix::must_parse("10.1.0.0/16"));
  EXPECT_EQ(vrps[0].max_length, 24u);
  EXPECT_EQ(vrps[0].asn, Asn(64496));
}

TEST(RelyingParty, DefaultMaxLengthIsPrefixLength) {
  RelyingParty rp;
  rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8")}));
  Roa roa;
  roa.asn = Asn(64496);
  roa.prefixes.push_back({Prefix::must_parse("10.1.0.0/16"), 0});  // unset
  roa.certificate_serial = 1;
  rp.add_roa(roa);
  auto vrps = rp.evaluate(Date(2022, 5, 1));
  ASSERT_EQ(vrps.size(), 1u);
  EXPECT_EQ(vrps[0].max_length, 16u);
}

TEST(RelyingParty, RejectsExpiredCertificate) {
  RelyingParty rp;
  rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8")}));
  Roa roa;
  roa.asn = Asn(1);
  roa.prefixes.push_back({Prefix::must_parse("10.0.0.0/16"), 0});
  roa.certificate_serial = 1;
  rp.add_roa(roa);
  EXPECT_EQ(rp.validate_roa(roa, Date(2026, 1, 1)),
            RoaValidity::kExpiredCertificate);
  EXPECT_EQ(rp.validate_roa(roa, Date(2019, 1, 1)),
            RoaValidity::kExpiredCertificate);
  size_t rejected = 0;
  EXPECT_TRUE(rp.evaluate(Date(2026, 1, 1), &rejected).empty());
  EXPECT_EQ(rejected, 1u);
}

TEST(RelyingParty, RejectsBadSignature) {
  RelyingParty rp;
  ResourceCertificate cert = make_cert(1, {Prefix::must_parse("10.0.0.0/8")});
  cert.signature_valid = false;
  rp.add_certificate(cert);
  Roa roa;
  roa.asn = Asn(1);
  roa.prefixes.push_back({Prefix::must_parse("10.0.0.0/16"), 0});
  roa.certificate_serial = 1;
  rp.add_roa(roa);
  EXPECT_EQ(rp.validate_roa(roa, Date(2022, 1, 1)),
            RoaValidity::kBadSignature);
  EXPECT_TRUE(rp.evaluate(Date(2022, 1, 1)).empty());
}

TEST(RelyingParty, RejectsResourceOverclaim) {
  RelyingParty rp;
  rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8")}));
  Roa roa;
  roa.asn = Asn(1);
  roa.prefixes.push_back({Prefix::must_parse("11.0.0.0/16"), 0});  // outside
  roa.certificate_serial = 1;
  rp.add_roa(roa);
  EXPECT_EQ(rp.validate_roa(roa, Date(2022, 1, 1)),
            RoaValidity::kResourceOverclaim);
}

TEST(RelyingParty, RejectsMalformedMaxLength) {
  RelyingParty rp;
  rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8")}));
  Roa roa;
  roa.asn = Asn(1);
  roa.prefixes.push_back({Prefix::must_parse("10.0.0.0/16"), 8});  // < len
  roa.certificate_serial = 1;
  EXPECT_EQ(rp.validate_roa(roa, Date(2022, 1, 1)), RoaValidity::kMalformed);
  Roa roa2;
  roa2.asn = Asn(1);
  roa2.prefixes.push_back({Prefix::must_parse("10.0.0.0/16"), 33});  // > 32
  roa2.certificate_serial = 1;
  EXPECT_EQ(rp.validate_roa(roa2, Date(2022, 1, 1)), RoaValidity::kMalformed);
}

TEST(RelyingParty, RejectsUnknownCertificate) {
  RelyingParty rp;
  Roa roa;
  roa.asn = Asn(1);
  roa.certificate_serial = 42;
  EXPECT_EQ(rp.validate_roa(roa, Date(2022, 1, 1)),
            RoaValidity::kUnknownCertificate);
}

TEST(RelyingParty, DuplicateSerialRefused) {
  RelyingParty rp;
  EXPECT_TRUE(
      rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8")})));
  EXPECT_FALSE(
      rp.add_certificate(make_cert(1, {Prefix::must_parse("11.0.0.0/8")})));
  EXPECT_EQ(rp.certificate_count(), 1u);
}

TEST(RelyingParty, MultiPrefixRoaEmitsOneVrpEach) {
  RelyingParty rp;
  rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8"),
                                   Prefix::must_parse("2001:db8::/32")}));
  Roa roa;
  roa.asn = Asn(64496);
  roa.prefixes.push_back({Prefix::must_parse("10.1.0.0/16"), 20});
  roa.prefixes.push_back({Prefix::must_parse("2001:db8::/48"), 0});
  roa.certificate_serial = 1;
  rp.add_roa(roa);
  auto vrps = rp.evaluate(Date(2022, 1, 1));
  EXPECT_EQ(vrps.size(), 2u);
}

TEST(RelyingParty, RoaWithAnyAsnOverOwnedSpaceIsAccepted) {
  // A resource holder may authorize ANY origin ASN over its space (this
  // is how the generator produces wrong-origin ROAs and how AS0 ROAs
  // exist at all).
  RelyingParty rp;
  rp.add_certificate(make_cert(1, {Prefix::must_parse("10.0.0.0/8")}));
  Roa roa;
  roa.asn = Asn(0);
  roa.prefixes.push_back({Prefix::must_parse("10.0.0.0/16"), 0});
  roa.certificate_serial = 1;
  EXPECT_EQ(rp.validate_roa(roa, Date(2022, 1, 1)), RoaValidity::kAccepted);
}

TEST(RoaValidity, Names) {
  EXPECT_EQ(to_string(RoaValidity::kAccepted), "accepted");
  EXPECT_EQ(to_string(RoaValidity::kResourceOverclaim),
            "resource-overclaim");
}

}  // namespace
}  // namespace manrs::rpki
