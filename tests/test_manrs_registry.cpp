#include "core/manrs.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::core {
namespace {

using net::Asn;
using util::Date;

Participant make_participant(const char* org, Program program, int year,
                             std::initializer_list<uint32_t> ases) {
  Participant p;
  p.org_id = org;
  p.program = program;
  p.joined = Date(year, 5, 1);
  for (uint32_t a : ases) p.registered_ases.emplace_back(a);
  return p;
}

TEST(Program, NamesAndThresholds) {
  EXPECT_EQ(to_string(Program::kIsp), "ISP");
  EXPECT_EQ(to_string(Program::kCdn), "CDN");
  EXPECT_EQ(parse_program("ISP"), Program::kIsp);
  EXPECT_EQ(parse_program("Network Operators"), Program::kIsp);
  EXPECT_EQ(parse_program("cdn"), Program::kCdn);
  EXPECT_FALSE(parse_program("bogus"));
  EXPECT_DOUBLE_EQ(action4_threshold(Program::kIsp), 90.0);
  EXPECT_DOUBLE_EQ(action4_threshold(Program::kCdn), 100.0);
}

TEST(ManrsRegistry, MembershipLookups) {
  ManrsRegistry registry;
  registry.add_participant(
      make_participant("org1", Program::kIsp, 2019, {1, 2}));
  registry.add_participant(make_participant("org2", Program::kCdn, 2021, {3}));

  EXPECT_TRUE(registry.is_member(Asn(1)));
  EXPECT_TRUE(registry.is_member(Asn(3)));
  EXPECT_FALSE(registry.is_member(Asn(4)));
  EXPECT_EQ(registry.program_of(Asn(1)), Program::kIsp);
  EXPECT_EQ(registry.program_of(Asn(3)), Program::kCdn);
  EXPECT_FALSE(registry.program_of(Asn(4)).has_value());
  EXPECT_EQ(registry.join_date(Asn(3)), Date(2021, 5, 1));
}

TEST(ManrsRegistry, MembershipAsOfDate) {
  ManrsRegistry registry;
  registry.add_participant(make_participant("org1", Program::kIsp, 2019, {1}));
  EXPECT_FALSE(registry.is_member(Asn(1), Date(2018, 12, 31)));
  EXPECT_TRUE(registry.is_member(Asn(1), Date(2019, 5, 1)));
  EXPECT_TRUE(registry.is_member(Asn(1), Date(2022, 1, 1)));
  EXPECT_EQ(registry.member_ases_at(Date(2018, 1, 1)).size(), 0u);
  EXPECT_EQ(registry.member_ases_at(Date(2020, 1, 1)).size(), 1u);
}

TEST(ManrsRegistry, MemberListsSortedAndFiltered) {
  ManrsRegistry registry;
  registry.add_participant(
      make_participant("org1", Program::kIsp, 2019, {5, 1}));
  registry.add_participant(make_participant("org2", Program::kCdn, 2021, {3}));
  EXPECT_EQ(registry.member_ases(),
            (std::vector<Asn>{Asn(1), Asn(3), Asn(5)}));
  EXPECT_EQ(registry.member_ases(Program::kCdn), (std::vector<Asn>{Asn(3)}));
  EXPECT_EQ(registry.participants_in(Program::kIsp).size(), 1u);
}

TEST(ManrsRegistry, ParticipantOfAndFindOrg) {
  ManrsRegistry registry;
  registry.add_participant(make_participant("org1", Program::kIsp, 2019, {1}));
  ASSERT_NE(registry.participant_of(Asn(1)), nullptr);
  EXPECT_EQ(registry.participant_of(Asn(1))->org_id, "org1");
  EXPECT_EQ(registry.participant_of(Asn(9)), nullptr);
  ASSERT_NE(registry.find_org("org1"), nullptr);
  EXPECT_EQ(registry.find_org("nope"), nullptr);
}

TEST(ManrsRegistry, CsvRoundTrip) {
  ManrsRegistry registry;
  registry.add_participant(
      make_participant("org1", Program::kIsp, 2019, {1, 2}));
  registry.add_participant(make_participant("org2", Program::kCdn, 2021, {3}));

  std::ostringstream out;
  registry.write_csv(out);
  std::istringstream in(out.str());
  size_t bad = 0;
  ManrsRegistry parsed = ManrsRegistry::read_csv(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.participant_count(), 2u);
  EXPECT_TRUE(parsed.is_member(Asn(2)));
  EXPECT_EQ(parsed.program_of(Asn(3)), Program::kCdn);
  EXPECT_EQ(parsed.join_date(Asn(1)), Date(2019, 5, 1));
}

TEST(ManrsRegistry, CsvRejectsBadRows) {
  std::istringstream in(
      "org_id,program,joined,ases\n"
      "org1,ISP,2019-05-01,1+2\n"
      "org2,NOPE,2019-05-01,3\n"     // bad program
      "org3,ISP,bogus,4\n"            // bad date
      "org4,ISP,2019-05-01,x+5\n");  // bad ASN
  size_t bad = 0;
  ManrsRegistry parsed = ManrsRegistry::read_csv(in, &bad);
  EXPECT_EQ(parsed.participant_count(), 1u);
  EXPECT_EQ(bad, 3u);
}

}  // namespace
}  // namespace manrs::core
