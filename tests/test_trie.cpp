#include "netbase/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace manrs::net {
namespace {

TEST(PrefixTrie, ExactMatch) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 2);  // multi-value
  trie.insert(Prefix::must_parse("10.0.0.0/16"), 3);

  EXPECT_EQ(trie.size(), 3u);
  EXPECT_EQ(trie.exact(Prefix::must_parse("10.0.0.0/8")),
            (std::vector<int>{1, 2}));
  EXPECT_EQ(trie.exact(Prefix::must_parse("10.0.0.0/16")),
            (std::vector<int>{3}));
  EXPECT_TRUE(trie.exact(Prefix::must_parse("10.0.0.0/12")).empty());
}

TEST(PrefixTrie, CoveringOrderedLeastSpecificFirst) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::must_parse("10.1.0.0/16"), 16);
  trie.insert(Prefix::must_parse("10.1.2.0/24"), 24);
  trie.insert(Prefix::must_parse("10.2.0.0/16"), 99);  // sibling, not covering

  auto covering = trie.covering(Prefix::must_parse("10.1.2.0/24"));
  EXPECT_EQ(covering, (std::vector<int>{8, 16, 24}));

  covering = trie.covering(Prefix::must_parse("10.1.2.128/25"));
  EXPECT_EQ(covering, (std::vector<int>{8, 16, 24}));

  covering = trie.covering(Prefix::must_parse("10.3.0.0/16"));
  EXPECT_EQ(covering, (std::vector<int>{8}));

  covering = trie.covering(Prefix::must_parse("11.0.0.0/8"));
  EXPECT_TRUE(covering.empty());
}

TEST(PrefixTrie, RootEntryCoversEverythingInFamily) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("0.0.0.0/0"), 0);
  EXPECT_EQ(trie.covering(Prefix::must_parse("203.0.113.0/24")).size(), 1u);
  EXPECT_TRUE(trie.covering(Prefix::must_parse("2001:db8::/32")).empty());
}

TEST(PrefixTrie, CoveredSubtree) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 8);
  trie.insert(Prefix::must_parse("10.1.0.0/16"), 16);
  trie.insert(Prefix::must_parse("10.1.2.0/24"), 24);
  trie.insert(Prefix::must_parse("11.0.0.0/8"), 11);

  std::vector<int> covered;
  trie.for_each_covered(Prefix::must_parse("10.1.0.0/16"),
                        [&](int v) { covered.push_back(v); });
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, (std::vector<int>{16, 24}));

  covered.clear();
  trie.for_each_covered(Prefix::must_parse("10.0.0.0/8"),
                        [&](int v) { covered.push_back(v); });
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, (std::vector<int>{8, 16, 24}));
}

TEST(PrefixTrie, AnyCovering) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 1);
  EXPECT_TRUE(trie.any_covering(Prefix::must_parse("10.200.0.0/16")));
  EXPECT_FALSE(trie.any_covering(Prefix::must_parse("12.0.0.0/8")));
  // A /16 entry does not cover its /8 parent.
  PrefixTrie<int> trie2;
  trie2.insert(Prefix::must_parse("10.1.0.0/16"), 1);
  EXPECT_FALSE(trie2.any_covering(Prefix::must_parse("10.0.0.0/8")));
}

TEST(PrefixTrie, FamiliesAreSeparate) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("::/0"), 6);
  trie.insert(Prefix::must_parse("0.0.0.0/0"), 4);
  EXPECT_EQ(trie.covering(Prefix::must_parse("2001:db8::/32")),
            (std::vector<int>{6}));
  EXPECT_EQ(trie.covering(Prefix::must_parse("10.0.0.0/8")),
            (std::vector<int>{4}));
}

TEST(PrefixTrie, ClearResets) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 1);
  trie.clear();
  EXPECT_TRUE(trie.empty());
  EXPECT_TRUE(trie.covering(Prefix::must_parse("10.0.0.0/8")).empty());
}

TEST(PrefixTrie, ForEachVisitsAll) {
  PrefixTrie<int> trie;
  trie.insert(Prefix::must_parse("10.0.0.0/8"), 1);
  trie.insert(Prefix::must_parse("2001:db8::/32"), 2);
  int count = 0, sum = 0;
  trie.for_each([&](int v) {
    ++count;
    sum += v;
  });
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sum, 3);
}

// Property test: trie covering/covered results agree with a brute-force
// linear scan over randomly generated prefixes.
class TrieVsLinearP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TrieVsLinearP, MatchesLinearScan) {
  manrs::util::Rng rng(GetParam());
  std::vector<Prefix> stored;
  PrefixTrie<size_t> trie;
  for (size_t i = 0; i < 300; ++i) {
    bool v6 = rng.bernoulli(0.2);
    unsigned maxlen = v6 ? 64 : 32;
    unsigned len = static_cast<unsigned>(rng.uniform(maxlen + 1));
    IpAddress addr =
        v6 ? IpAddress::v6(rng.next(), 0) : IpAddress::v4(
                 static_cast<uint32_t>(rng.next()));
    Prefix p(addr, len);
    stored.push_back(p);
    trie.insert(p, i);
  }

  for (size_t q = 0; q < 100; ++q) {
    bool v6 = rng.bernoulli(0.2);
    unsigned maxlen = v6 ? 64 : 32;
    unsigned len = static_cast<unsigned>(rng.uniform(maxlen + 1));
    IpAddress addr =
        v6 ? IpAddress::v6(rng.next(), 0) : IpAddress::v4(
                 static_cast<uint32_t>(rng.next()));
    Prefix query(addr, len);

    std::vector<size_t> expected_covering, expected_covered;
    for (size_t i = 0; i < stored.size(); ++i) {
      if (stored[i].contains(query)) expected_covering.push_back(i);
      if (query.contains(stored[i])) expected_covered.push_back(i);
    }
    auto got_covering = trie.covering(query);
    std::sort(got_covering.begin(), got_covering.end());
    std::sort(expected_covering.begin(), expected_covering.end());
    EXPECT_EQ(got_covering, expected_covering);

    std::vector<size_t> got_covered;
    trie.for_each_covered(query, [&](size_t v) { got_covered.push_back(v); });
    std::sort(got_covered.begin(), got_covered.end());
    EXPECT_EQ(got_covered, expected_covered);

    EXPECT_EQ(trie.any_covering(query), !expected_covering.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieVsLinearP,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace manrs::net
