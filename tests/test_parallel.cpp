// The util::parallel layer: MANRS_THREADS parsing, pool lifecycle
// (shutdown with queued work must drain, not deadlock), exception
// propagation, nesting, and serial/parallel equivalence of the
// index-slot pattern. tools/check.sh runs this file under TSan as well
// as ASan/UBSan.
#include "util/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

namespace manrs::util {
namespace {

// ---- MANRS_THREADS parsing ---------------------------------------------

TEST(ParallelConfig, ParseUnsetFallsBackToHardware) {
  EXPECT_EQ(parse_thread_count(nullptr, 8), 8u);
  EXPECT_EQ(parse_thread_count(nullptr, 1), 1u);
}

TEST(ParallelConfig, ParseHardwareZeroClampsToOne) {
  // hardware_concurrency() may legitimately return 0 ("unknown").
  EXPECT_EQ(parse_thread_count(nullptr, 0), 1u);
  EXPECT_EQ(parse_thread_count("junk", 0), 1u);
}

TEST(ParallelConfig, ParseZeroMeansDefault) {
  EXPECT_EQ(parse_thread_count("0", 6), 6u);
}

TEST(ParallelConfig, ParseGarbageMeansDefault) {
  EXPECT_EQ(parse_thread_count("", 4), 4u);
  EXPECT_EQ(parse_thread_count("abc", 4), 4u);
  EXPECT_EQ(parse_thread_count("-3", 4), 4u);
  EXPECT_EQ(parse_thread_count("2.5", 4), 4u);
  EXPECT_EQ(parse_thread_count("4x", 4), 4u);
  EXPECT_EQ(parse_thread_count(" 4", 4), 4u);
}

TEST(ParallelConfig, ParseExplicitCount) {
  EXPECT_EQ(parse_thread_count("1", 8), 1u);
  EXPECT_EQ(parse_thread_count("4", 8), 4u);
  EXPECT_EQ(parse_thread_count("32", 2), 32u);  // env beats hardware
}

TEST(ParallelConfig, ParseHugeValuesClamp) {
  EXPECT_EQ(parse_thread_count("99999", 8), kMaxThreads);
  EXPECT_EQ(parse_thread_count("18446744073709551615", 8), kMaxThreads);
  // Out-of-range for uint64 entirely: garbage -> default.
  EXPECT_EQ(parse_thread_count("99999999999999999999999", 8), 8u);
  // An absurd hardware report clamps too.
  EXPECT_EQ(parse_thread_count(nullptr, 100000), kMaxThreads);
}

TEST(ParallelConfig, DefaultThreadCountReadsEnvironment) {
  ::setenv("MANRS_THREADS", "3", 1);
  EXPECT_EQ(default_thread_count(), 3u);
  ::setenv("MANRS_THREADS", "not-a-number", 1);
  size_t fallback = default_thread_count();
  EXPECT_GE(fallback, 1u);
  EXPECT_LE(fallback, kMaxThreads);
  ::unsetenv("MANRS_THREADS");
}

TEST(ParallelConfig, SetThreadCountReconfiguresGlobal) {
  set_thread_count(5);
  EXPECT_EQ(thread_count(), 5u);
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1u);
  // 0 = re-resolve from the environment on next query.
  ::setenv("MANRS_THREADS", "2", 1);
  set_thread_count(0);
  EXPECT_EQ(thread_count(), 2u);
  ::unsetenv("MANRS_THREADS");
  set_thread_count(0);
}

// ---- MANRS_GRAIN parsing / auto grain ----------------------------------

TEST(ParallelConfig, ParseGrainUnsetOrGarbageMeansAuto) {
  EXPECT_EQ(parse_grain(nullptr), 0u);
  EXPECT_EQ(parse_grain(""), 0u);
  EXPECT_EQ(parse_grain("abc"), 0u);
  EXPECT_EQ(parse_grain("-3"), 0u);
  EXPECT_EQ(parse_grain("2.5"), 0u);
  EXPECT_EQ(parse_grain("64x"), 0u);
  EXPECT_EQ(parse_grain(" 64"), 0u);
  EXPECT_EQ(parse_grain("99999999999999999999999"), 0u);  // > uint64
}

TEST(ParallelConfig, ParseGrainExplicitValues) {
  EXPECT_EQ(parse_grain("0"), 0u);  // 0 = auto, by definition
  EXPECT_EQ(parse_grain("1"), 1u);
  EXPECT_EQ(parse_grain("64"), 64u);
  EXPECT_EQ(parse_grain("100000"), 100000u);
}

TEST(ParallelConfig, AutoGrainScalesWithWorkPerThread) {
  // n / (threads * 8), clamped to at least 1.
  EXPECT_EQ(auto_grain(0, 4), 1u);
  EXPECT_EQ(auto_grain(31, 4), 1u);   // 31/32 rounds to 0 -> clamp
  EXPECT_EQ(auto_grain(32, 4), 1u);
  EXPECT_EQ(auto_grain(64, 4), 2u);
  EXPECT_EQ(auto_grain(1000, 4), 31u);
  EXPECT_EQ(auto_grain(1000, 1), 125u);
  EXPECT_EQ(auto_grain(1000, 0), 125u);  // 0 threads treated as 1
}

TEST(ParallelConfig, SetGrainReconfiguresGlobal) {
  set_grain(64);
  EXPECT_EQ(grain_size(), 64u);
  set_grain(1);
  EXPECT_EQ(grain_size(), 1u);
  // 0 = re-resolve from the environment on next query.
  ::setenv("MANRS_GRAIN", "7", 1);
  set_grain(0);
  EXPECT_EQ(grain_size(), 7u);
  ::unsetenv("MANRS_GRAIN");
  set_grain(0);
  EXPECT_EQ(grain_size(), 0u);  // unset env -> auto
}

// ---- chunk boundary edges ----------------------------------------------

// Each case: every index hit exactly once, at every explicit grain,
// including n == 0, n < grain, and n not divisible by grain.
TEST(ThreadPool, ChunkedCoversAllIndicesAtEveryGrain) {
  ThreadPool pool(4);
  for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64}, size_t{100}}) {
    for (size_t grain : {size_t{0}, size_t{1}, size_t{3}, size_t{64},
                         size_t{1000}}) {
      std::vector<std::atomic<int>> hits(n);
      pool.parallel_for(n, [&](size_t i) { ++hits[i]; }, grain);
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1)
            << "n=" << n << " grain=" << grain << " index " << i;
      }
    }
  }
}

TEST(ThreadPool, GrainLargerThanNRunsSerially) {
  // One chunk covers everything: no helper tasks, caller runs it all.
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  std::set<std::thread::id> seen;
  std::mutex mu;
  pool.parallel_for(
      5,
      [&](size_t) {
        ++ran;
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(std::this_thread::get_id());
      },
      /*grain=*/1000);
  EXPECT_EQ(ran.load(), 5);
  EXPECT_EQ(seen.size(), 1u);  // single chunk -> single thread
}

TEST(ThreadPool, ChunkedExceptionPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   100,
                   [](size_t i) {
                     if (i == 37) throw std::runtime_error("item 37");
                   },
                   /*grain=*/8),
               std::runtime_error);
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](size_t) { ++ran; }, /*grain=*/3);
  EXPECT_EQ(ran.load(), 8);
}

TEST(ParallelFor, GlobalHonorsGrainAcrossBoundaryCases) {
  set_thread_count(4);
  for (size_t grain : {size_t{1}, size_t{3}, size_t{64}}) {
    set_grain(grain);
    for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{65}}) {
      std::vector<std::atomic<int>> hits(n);
      parallel_for(n, [&](size_t i) { ++hits[i]; });
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(hits[i].load(), 1) << "n=" << n << " grain=" << grain;
      }
    }
  }
  set_grain(0);
  set_thread_count(0);
}

// ---- ThreadPool lifecycle ----------------------------------------------

TEST(ThreadPool, IdleShutdownDoesNotDeadlock) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  // Destructor runs with workers parked on the condition variable.
}

TEST(ThreadPool, ZeroRequestedThreadsStillWorks) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.parallel_for(10, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, ShutdownDrainsQueuedWork) {
  std::atomic<int> ran{0};
  {
    // One worker, many queued tasks that outpace it: destruction must
    // run every one of them (drain semantics), not hang or drop them.
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&ran] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++ran;
      });
    }
  }
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](size_t i) { ++hits[i]; });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForPropagatesExceptions) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](size_t i) {
                          if (i == 37) throw std::runtime_error("item 37");
                        }),
      std::runtime_error);
  // The pool survives a failed parallel_for and remains usable.
  std::atomic<int> ran{0};
  pool.parallel_for(8, [&](size_t) { ++ran; });
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  // A 1-thread pool would classically deadlock on nesting; the region
  // guard makes the inner call serial instead.
  ThreadPool pool(1);
  std::atomic<int> inner_total{0};
  pool.parallel_for(4, [&](size_t) {
    pool.parallel_for(4, [&](size_t) { ++inner_total; });
  });
  EXPECT_EQ(inner_total.load(), 16);
}

// ---- global parallel_for / parallel_map --------------------------------

TEST(ParallelFor, MatchesSerialSum) {
  constexpr size_t kN = 500;
  std::vector<uint64_t> serial(kN), parallel(kN);
  auto fn = [](size_t i) { return static_cast<uint64_t>(i) * 3 + 1; };

  set_thread_count(1);
  parallel_for(kN, [&](size_t i) { serial[i] = fn(i); });
  set_thread_count(4);
  parallel_for(kN, [&](size_t i) { parallel[i] = fn(i); });
  set_thread_count(0);

  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(std::accumulate(serial.begin(), serial.end(), uint64_t{0}),
            std::accumulate(parallel.begin(), parallel.end(), uint64_t{0}));
}

TEST(ParallelFor, ZeroAndOneItems) {
  int ran = 0;
  parallel_for(0, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 0);
  parallel_for(1, [&](size_t) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(ParallelFor, GlobalExceptionPropagates) {
  set_thread_count(4);
  EXPECT_THROW(parallel_for(64,
                            [](size_t i) {
                              if (i == 5) throw std::out_of_range("boom");
                            }),
               std::out_of_range);
  set_thread_count(0);
}

TEST(ParallelMap, IndexSlotOrderIsPreserved) {
  set_thread_count(4);
  auto out = parallel_map<std::string>(
      26, [](size_t i) { return std::string(1, static_cast<char>('a' + i)); });
  set_thread_count(0);
  ASSERT_EQ(out.size(), 26u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], std::string(1, static_cast<char>('a' + i)));
  }
}

}  // namespace
}  // namespace manrs::util
