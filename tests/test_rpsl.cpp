#include "irr/rpsl.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::irr {
namespace {

TEST(RpslParser, SingleObject) {
  auto objects = parse_rpsl(
      "route:      192.0.2.0/24\n"
      "origin:     AS64496\n"
      "mnt-by:     MAINT-EXAMPLE\n"
      "source:     RADB\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].object_class(), "route");
  EXPECT_EQ(objects[0].key(), "192.0.2.0/24");
  EXPECT_EQ(objects[0].first("origin"), "AS64496");
}

TEST(RpslParser, MultipleObjectsSeparatedByBlankLines) {
  auto objects = parse_rpsl(
      "route: 10.0.0.0/8\norigin: AS1\n"
      "\n\n"
      "route: 11.0.0.0/8\norigin: AS2\n");
  ASSERT_EQ(objects.size(), 2u);
  EXPECT_EQ(objects[1].first("origin"), "AS2");
}

TEST(RpslParser, ContinuationLines) {
  auto objects = parse_rpsl(
      "as-set: AS-EXAMPLE\n"
      "members: AS1, AS2,\n"
      "         AS3, AS4\n"
      "+        AS5\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("members"), "AS1, AS2, AS3, AS4 AS5");
}

TEST(RpslParser, CommentsStripped) {
  auto objects = parse_rpsl(
      "# leading file comment\n"
      "route: 10.0.0.0/8  # inline comment\n"
      "origin: AS1\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].key(), "10.0.0.0/8");
}

TEST(RpslParser, AttributeNamesLowercased) {
  auto objects = parse_rpsl("ROUTE: 10.0.0.0/8\nOrigin: AS1\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].object_class(), "route");
  EXPECT_TRUE(objects[0].first("origin").has_value());
}

TEST(RpslParser, MalformedLinesCounted) {
  size_t malformed = 0;
  auto objects = parse_rpsl(
      "route: 10.0.0.0/8\n"
      "this line has no colon\n"
      "origin: AS1\n",
      &malformed);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(malformed, 1u);
  EXPECT_EQ(objects[0].first("origin"), "AS1");
}

TEST(RpslParser, RepeatedAttributes) {
  auto objects = parse_rpsl(
      "aut-num: AS1\n"
      "import: from AS2 accept ANY\n"
      "import: from AS3 accept AS3\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].all("import").size(), 2u);
}

TEST(RpslParser, EmptyInput) {
  EXPECT_TRUE(parse_rpsl("").empty());
  EXPECT_TRUE(parse_rpsl("\n\n# only comments\n\n").empty());
}

TEST(RpslParser, CrLfTolerated) {
  auto objects = parse_rpsl("route: 10.0.0.0/8\r\norigin: AS1\r\n");
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].first("origin"), "AS1");
}

TEST(RpslWriter, RoundTrip) {
  RpslObject obj;
  obj.attributes.push_back({"route", "192.0.2.0/24"});
  obj.attributes.push_back({"origin", "AS64496"});
  obj.attributes.push_back({"source", "RADB"});
  std::ostringstream out;
  write_rpsl(out, obj);

  auto parsed = parse_rpsl(out.str());
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].attributes.size(), 3u);
  EXPECT_EQ(parsed[0].key(), "192.0.2.0/24");
  EXPECT_EQ(parsed[0].first("source"), "RADB");
}

TEST(RpslWriter, ConcatenatedObjectsRoundTrip) {
  RpslObject a, b;
  a.attributes.push_back({"route", "10.0.0.0/8"});
  a.attributes.push_back({"origin", "AS1"});
  b.attributes.push_back({"as-set", "AS-X"});
  b.attributes.push_back({"members", "AS1, AS2"});
  std::ostringstream out;
  write_rpsl(out, a);
  write_rpsl(out, b);
  auto parsed = parse_rpsl(out.str());
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].object_class(), "route");
  EXPECT_EQ(parsed[1].object_class(), "as-set");
}

}  // namespace
}  // namespace manrs::irr
