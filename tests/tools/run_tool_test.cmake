# Negative-path runner for CLI tools: asserts exit code and (optionally) a
# regex over combined stdout+stderr. CTest invokes this as
#   cmake -DTOOL=<bin> -DARGS=<;-list> -DEXPECT_EXIT=<n>
#         [-DEXPECT_OUTPUT=<regex>] -P run_tool_test.cmake
# A tool that dies on a signal (ASan abort, segfault) produces a non-numeric
# RESULT_VARIABLE, which never matches EXPECT_EXIT -- crashes always fail.
if(NOT DEFINED TOOL OR NOT DEFINED EXPECT_EXIT)
  message(FATAL_ERROR "run_tool_test.cmake needs -DTOOL and -DEXPECT_EXIT")
endif()

separate_arguments(tool_args UNIX_COMMAND "${ARGS}")

execute_process(
  COMMAND "${TOOL}" ${tool_args}
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE run_stdout
  ERROR_VARIABLE run_stderr
  TIMEOUT 60
)

if(NOT exit_code STREQUAL "${EXPECT_EXIT}")
  message(FATAL_ERROR
    "${TOOL} ${ARGS}: expected exit ${EXPECT_EXIT}, got '${exit_code}'\n"
    "stdout: ${run_stdout}\nstderr: ${run_stderr}")
endif()

if(DEFINED EXPECT_OUTPUT)
  if(NOT "${run_stdout}${run_stderr}" MATCHES "${EXPECT_OUTPUT}")
    message(FATAL_ERROR
      "${TOOL} ${ARGS}: output does not match '${EXPECT_OUTPUT}'\n"
      "stdout: ${run_stdout}\nstderr: ${run_stderr}")
  endif()
endif()
