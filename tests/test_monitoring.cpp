#include "core/monitoring.h"

#include <gtest/gtest.h>

namespace manrs::core {
namespace {

using irr::IrrStatus;
using net::Asn;
using net::Prefix;
using rpki::RpkiStatus;

ihr::PrefixOriginRecord record(const char* prefix, uint32_t origin,
                               RpkiStatus rpki, IrrStatus irr) {
  ihr::PrefixOriginRecord r;
  r.prefix = Prefix::must_parse(prefix);
  r.origin = Asn(origin);
  r.rpki = rpki;
  r.irr = irr;
  return r;
}

ihr::PrefixOriginRecord good(const char* prefix, uint32_t origin) {
  return record(prefix, origin, RpkiStatus::kValid, IrrStatus::kValid);
}

ihr::PrefixOriginRecord bad(const char* prefix, uint32_t origin) {
  return record(prefix, origin, RpkiStatus::kInvalidAsn,
                IrrStatus::kNotFound);
}

TEST(ConformanceDelta, NoChangesOnIdenticalSnapshots) {
  std::vector<ihr::PrefixOriginRecord> snapshot{good("10.0.0.0/24", 1),
                                                bad("10.0.1.0/24", 1)};
  auto delta = diff_conformance(snapshot, snapshot);
  EXPECT_TRUE(delta.prefix_changes.empty());
  EXPECT_TRUE(delta.as_transitions.empty());
  EXPECT_EQ(delta.stable_unconformant_ases, 1u);  // AS1 at 50% < 90%
}

TEST(ConformanceDelta, DetectsBecameUnconformant) {
  std::vector<ihr::PrefixOriginRecord> before{good("10.0.0.0/24", 1)};
  std::vector<ihr::PrefixOriginRecord> after{bad("10.0.0.0/24", 1)};
  auto delta = diff_conformance(before, after);
  ASSERT_EQ(delta.prefix_changes.size(), 1u);
  EXPECT_EQ(delta.prefix_changes[0].transition,
            PrefixTransition::kBecameUnconformant);
  EXPECT_EQ(delta.prefix_changes[0].rpki_after, RpkiStatus::kInvalidAsn);
  // The AS flipped 100% -> 0%.
  ASSERT_EQ(delta.as_transitions.size(), 1u);
  EXPECT_TRUE(delta.as_transitions[0].was_conformant);
  EXPECT_FALSE(delta.as_transitions[0].now_conformant);
  EXPECT_DOUBLE_EQ(delta.as_transitions[0].og_before, 100.0);
  EXPECT_DOUBLE_EQ(delta.as_transitions[0].og_after, 0.0);
}

TEST(ConformanceDelta, DetectsResolutionAndNewOffenders) {
  std::vector<ihr::PrefixOriginRecord> before{bad("10.0.0.0/24", 1),
                                              good("20.0.0.0/24", 2)};
  std::vector<ihr::PrefixOriginRecord> after{good("10.0.0.0/24", 1),
                                             good("20.0.0.0/24", 2),
                                             bad("30.0.0.0/24", 3)};
  auto delta = diff_conformance(before, after);
  ASSERT_EQ(delta.prefix_changes.size(), 2u);
  EXPECT_EQ(delta.prefix_changes[0].transition, PrefixTransition::kResolved);
  EXPECT_EQ(delta.prefix_changes[0].prefix_origin.origin, Asn(1));
  EXPECT_EQ(delta.prefix_changes[1].transition,
            PrefixTransition::kNewUnconformant);
  EXPECT_EQ(delta.prefix_changes[1].prefix_origin.origin, Asn(3));
}

TEST(ConformanceDelta, WithdrawnUnconformantReported) {
  std::vector<ihr::PrefixOriginRecord> before{bad("10.0.0.0/24", 1),
                                              good("10.0.1.0/24", 1)};
  std::vector<ihr::PrefixOriginRecord> after{good("10.0.1.0/24", 1)};
  auto delta = diff_conformance(before, after);
  ASSERT_EQ(delta.prefix_changes.size(), 1u);
  EXPECT_EQ(delta.prefix_changes[0].transition,
            PrefixTransition::kWithdrawnUnconformant);
  // AS1: 50% -> 100% (withdrawing the offender fixes the AS).
  ASSERT_EQ(delta.as_transitions.size(), 1u);
  EXPECT_TRUE(delta.as_transitions[0].now_conformant);
}

TEST(ConformanceDelta, ThresholdRespected) {
  // 10 prefixes, 1 goes bad: 90% exactly -> still conformant at the ISP
  // bar, a flip at a 95% bar.
  std::vector<ihr::PrefixOriginRecord> before, after;
  for (int i = 0; i < 10; ++i) {
    std::string prefix = "10.0." + std::to_string(i) + ".0/24";
    before.push_back(good(prefix.c_str(), 1));
    after.push_back(i == 0 ? bad(prefix.c_str(), 1)
                           : good(prefix.c_str(), 1));
  }
  EXPECT_TRUE(diff_conformance(before, after, 90.0).as_transitions.empty());
  EXPECT_EQ(diff_conformance(before, after, 95.0).as_transitions.size(), 1u);
}

TEST(ConformanceDelta, UnregisteredIsNotUnconformant) {
  // NotFound/NotFound prefixes are "unregistered", not offenders: no
  // transition when they appear or disappear.
  std::vector<ihr::PrefixOriginRecord> before{good("10.0.0.0/24", 1)};
  std::vector<ihr::PrefixOriginRecord> after{
      good("10.0.0.0/24", 1),
      record("10.0.1.0/24", 1, RpkiStatus::kNotFound, IrrStatus::kNotFound)};
  auto delta = diff_conformance(before, after);
  EXPECT_TRUE(delta.prefix_changes.empty());
}

TEST(VrpDelta, AddedRemovedUnchanged) {
  std::vector<rpki::Vrp> before{
      {Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)},
      {Prefix::must_parse("11.0.0.0/8"), 8, Asn(2)},
  };
  std::vector<rpki::Vrp> after{
      {Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)},   // unchanged
      {Prefix::must_parse("11.0.0.0/8"), 16, Asn(2)},  // maxlen changed
      {Prefix::must_parse("12.0.0.0/8"), 8, Asn(3)},   // new
  };
  auto delta = diff_vrps(before, after);
  EXPECT_EQ(delta.unchanged, 1u);
  ASSERT_EQ(delta.added.size(), 2u);  // changed maxlen counts as add+remove
  ASSERT_EQ(delta.removed.size(), 1u);
  EXPECT_EQ(delta.removed[0].max_length, 8u);
  EXPECT_EQ(delta.removed[0].asn, Asn(2));
}

TEST(VrpDelta, EmptySides) {
  std::vector<rpki::Vrp> some{{Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)}};
  auto grow = diff_vrps({}, some);
  EXPECT_EQ(grow.added.size(), 1u);
  EXPECT_TRUE(grow.removed.empty());
  auto shrink = diff_vrps(some, {});
  EXPECT_EQ(shrink.removed.size(), 1u);
  auto nil = diff_vrps({}, {});
  EXPECT_EQ(nil.unchanged, 0u);
}

TEST(PrefixTransitionNames, Strings) {
  EXPECT_EQ(to_string(PrefixTransition::kResolved), "resolved");
  EXPECT_EQ(to_string(PrefixTransition::kNewUnconformant),
            "new-unconformant");
}

}  // namespace
}  // namespace manrs::core
