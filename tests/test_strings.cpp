#include "util/strings.h"

#include <gtest/gtest.h>

namespace manrs::util {
namespace {

TEST(Split, PreservesEmptyFields) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Split, EmptyInputIsOneEmptyField) {
  auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Split, TrailingDelimiter) {
  auto parts = split("a|b|", '|');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[2], "");
}

TEST(SplitWs, CollapsesRuns) {
  auto parts = split_ws("  foo \t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[1], "bar");
  EXPECT_EQ(parts[2], "baz");
}

TEST(SplitWs, EmptyAndAllWhitespace) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws(" \t\n").empty());
}

TEST(Trim, BothEnds) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Case, ToLowerAndIequals) {
  EXPECT_EQ(to_lower("RaDb"), "radb");
  EXPECT_TRUE(iequals("RIPE", "ripe"));
  EXPECT_FALSE(iequals("RIPE", "RIPEE"));
  EXPECT_FALSE(iequals("a", "b"));
}

TEST(Affixes, StartsEndsWith) {
  EXPECT_TRUE(starts_with("route6", "route"));
  EXPECT_FALSE(starts_with("rou", "route"));
  EXPECT_TRUE(ends_with("table.mrt", ".mrt"));
  EXPECT_FALSE(ends_with("mrt", "table.mrt"));
}

TEST(Join, Basic) {
  EXPECT_EQ(join(std::vector<std::string>{"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(join(std::vector<std::string>{"x"}, ","), "x");
}

TEST(ParseUint, Strict) {
  EXPECT_EQ(parse_uint<uint32_t>("42"), 42u);
  EXPECT_EQ(parse_uint<uint32_t>("0"), 0u);
  EXPECT_FALSE(parse_uint<uint32_t>(""));
  EXPECT_FALSE(parse_uint<uint32_t>("42x"));
  EXPECT_FALSE(parse_uint<uint32_t>("-1"));
  EXPECT_FALSE(parse_uint<uint8_t>("256"));  // overflow
  EXPECT_EQ(parse_uint<uint8_t>("255"), 255u);
}

TEST(ParseInt, Strict) {
  EXPECT_EQ(parse_int<int>("-7"), -7);
  EXPECT_FALSE(parse_int<int>("7.5"));
  EXPECT_FALSE(parse_int<int>(" 7"));
}

TEST(ParseDouble, Strict) {
  EXPECT_DOUBLE_EQ(*parse_double("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double("-1e3"), -1000.0);
  EXPECT_FALSE(parse_double("abc"));
  EXPECT_FALSE(parse_double("1.0x"));
  EXPECT_FALSE(parse_double(""));
}

}  // namespace
}  // namespace manrs::util
