// End-to-end rule tests for manrs_analyze: run the real binary over
// the deliberately-broken fixture tree (tests/analyze_fixtures/tree)
// with --json and assert the exact (file, line, rule) finding set --
// positives and negatives in one shot, since any unexpected finding
// fails the set comparison.
//
// The fixture corpus doubles as the parity check for the retired
// tools/lint_wire.py regex rules: every spelling the old regexes
// flagged appears as a positive here, so all nine ported rule ids must
// show up, alongside the four token/scope-native ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#ifndef MANRS_ANALYZE_BIN
#error "MANRS_ANALYZE_BIN must point at the manrs_analyze binary"
#endif
#ifndef MANRS_ANALYZE_TREE
#error "MANRS_ANALYZE_TREE must point at the fixture tree"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_analyzer(const std::string& args) {
  std::string cmd =
      std::string(MANRS_ANALYZE_BIN) + " " + args + " 2>/dev/null";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) r.out.append(buf, n);
  int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

using FindingKey = std::tuple<std::string, int, std::string>;  // file,line,rule

/// Pull (file, line, rule) triples out of the analyzer's --json output.
/// The format is the fixed machine shape write_json emits, so simple
/// key scanning is reliable.
std::vector<FindingKey> parse_findings(const std::string& json) {
  std::vector<FindingKey> out;
  size_t pos = 0;
  while ((pos = json.find("{\"file\":\"", pos)) != std::string::npos) {
    size_t fbeg = pos + 9;
    size_t fend = json.find('"', fbeg);
    size_t lbeg = json.find("\"line\":", fend) + 7;
    size_t rbeg = json.find("\"rule\":\"", fend) + 8;
    size_t rend = json.find('"', rbeg);
    out.emplace_back(json.substr(fbeg, fend - fbeg),
                     static_cast<int>(
                         std::strtol(json.c_str() + lbeg, nullptr, 10)),
                     json.substr(rbeg, rend - rbeg));
    pos = rend;
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AnalyzeRules, FixtureTreeFindingsMatchExactly) {
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json");
  ASSERT_EQ(r.exit_code, 1) << r.out;  // findings present -> exit 1

  std::vector<FindingKey> expected = {
      {"src/core/pos_layer_undeclared.cpp", 1, "layer-violation"},
      {"src/mrt/pos_memcpy.cpp", 4, "unchecked-memcpy"},
      {"src/mrt/pos_reinterpret.cpp", 3, "reinterpret-cast"},
      {"src/mrt/pos_throw.cpp", 5, "parse-throw-boundary"},
      {"src/mrt/pos_union.cpp", 2, "union-punning"},
      {"src/netbase/pos_layer.cpp", 1, "layer-violation"},
      {"src/simulator/pos_det_iter.cpp", 7, "determinism-iteration"},
      {"src/simulator/pos_par_capture.cpp", 7, "parallel-capture"},
      {"src/simulator/pos_ribmap.cpp", 7, "rib-map"},
      {"src/util/pos_atox.cpp", 3, "locale-atox"},
      {"src/util/pos_stdhash.cpp", 4, "std-hash"},
      {"src/util/pos_strtox.cpp", 4, "throwing-strtox"},
      {"src/util/pos_thread.cpp", 4, "raw-thread"},
      {"src/util/pos_unbounded.cpp", 3, "unbounded-copy"},
      {"src/util/pos_waiver_noreason.cpp", 3, "unbounded-copy"},
  };
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(parse_findings(r.out), expected) << r.out;
}

TEST(AnalyzeRules, RegexCorpusParityAllPortedRulesFire) {
  // Every rule id the old tools/lint_wire.py regexes implemented must
  // still be produced by the port (the fixture corpus holds the old
  // corpus spellings), and the four new rules must fire too.
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json");
  ASSERT_EQ(r.exit_code, 1);
  std::set<std::string> fired;
  for (const FindingKey& k : parse_findings(r.out)) {
    fired.insert(std::get<2>(k));
  }
  const std::array<const char*, 13> all_rules = {
      "reinterpret-cast", "unchecked-memcpy", "throwing-strtox",
      "locale-atox", "unbounded-copy", "union-punning", "raw-thread",
      "rib-map", "std-hash", "determinism-iteration", "parallel-capture",
      "layer-violation", "parse-throw-boundary"};
  for (const char* rule : all_rules) {
    EXPECT_EQ(fired.count(rule), 1u) << "rule never fired: " << rule;
  }
}

TEST(AnalyzeRules, CleanFileExitsZero) {
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json src/util/neg_thread.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(parse_findings(r.out).size(), 0u) << r.out;
}

TEST(AnalyzeRules, WaiversAreCountedNotReported) {
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json src/util/neg_waiver_sameline.cpp" +
                             " src/simulator/neg_det_waived.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("\"waived\":2"), std::string::npos) << r.out;
}

TEST(AnalyzeRules, ListRulesShowsFullCatalog) {
  RunResult r = run_analyzer("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"reinterpret-cast", "determinism-iteration", "parallel-capture",
        "layer-violation", "parse-throw-boundary"}) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
  }
}

TEST(AnalyzeRules, SarifArtifactIsWritten) {
  std::string sarif_path = testing::TempDir() + "analyze_test.sarif";
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --sarif " + sarif_path);
  EXPECT_EQ(r.exit_code, 1);
  std::ifstream in(sarif_path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(text.str().find("manrs_analyze"), std::string::npos);
  EXPECT_NE(text.str().find("determinism-iteration"), std::string::npos);
  std::remove(sarif_path.c_str());
}

}  // namespace
