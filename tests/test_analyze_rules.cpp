// End-to-end rule tests for manrs_analyze: run the real binary over
// the deliberately-broken fixture tree (tests/analyze_fixtures/tree)
// with --json and assert the exact (file, line, rule) finding set --
// positives and negatives in one shot, since any unexpected finding
// fails the set comparison.
//
// The fixture corpus doubles as the parity check for the retired
// tools/lint_wire.py regex rules: every spelling the old regexes
// flagged appears as a positive here, so all nine ported rule ids must
// show up, alongside the four token/scope-native ones.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#ifndef MANRS_ANALYZE_BIN
#error "MANRS_ANALYZE_BIN must point at the manrs_analyze binary"
#endif
#ifndef MANRS_ANALYZE_TREE
#error "MANRS_ANALYZE_TREE must point at the fixture tree"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;
};

RunResult run_analyzer(const std::string& args) {
  std::string cmd =
      std::string(MANRS_ANALYZE_BIN) + " " + args + " 2>/dev/null";
  RunResult r;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return r;
  char buf[4096];
  size_t n;
  while ((n = fread(buf, 1, sizeof buf, pipe)) > 0) r.out.append(buf, n);
  int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

using FindingKey = std::tuple<std::string, int, std::string>;  // file,line,rule

/// Pull (file, line, rule) triples out of the analyzer's --json output.
/// The format is the fixed machine shape write_json emits, so simple
/// key scanning is reliable.
std::vector<FindingKey> parse_findings(const std::string& json) {
  std::vector<FindingKey> out;
  size_t pos = 0;
  while ((pos = json.find("{\"file\":\"", pos)) != std::string::npos) {
    size_t fbeg = pos + 9;
    size_t fend = json.find('"', fbeg);
    size_t lbeg = json.find("\"line\":", fend) + 7;
    size_t rbeg = json.find("\"rule\":\"", fend) + 8;
    size_t rend = json.find('"', rbeg);
    out.emplace_back(json.substr(fbeg, fend - fbeg),
                     static_cast<int>(
                         std::strtol(json.c_str() + lbeg, nullptr, 10)),
                     json.substr(rbeg, rend - rbeg));
    pos = rend;
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(AnalyzeRules, FixtureTreeFindingsMatchExactly) {
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json");
  ASSERT_EQ(r.exit_code, 1) << r.out;  // findings present -> exit 1

  std::vector<FindingKey> expected = {
      {"bench/pos_series_advance_pending.cpp", 6, "series-delta"},
      {"bench/pos_series_reapply.cpp", 7, "series-delta"},
      {"bench/pos_series_recompute_pending.cpp", 7, "series-delta"},
      {"src/bgp/pos_rib_erase_after_finalize.cpp", 7, "rib-typestate"},
      {"src/bgp/pos_rib_insert_after_finalize.cpp", 7, "rib-typestate"},
      {"src/bgp/pos_rib_pass_staged.cpp", 9, "rib-typestate"},
      {"src/bgp/pos_rib_read_staged.cpp", 6, "rib-typestate"},
      {"src/core/pos_layer_undeclared.cpp", 1, "layer-violation"},
      {"src/mrt/pos_cursor_after_try.cpp", 9, "cursor-guard"},
      {"src/mrt/pos_cursor_unguarded.cpp", 5, "cursor-guard"},
      {"src/mrt/pos_memcpy.cpp", 4, "unchecked-memcpy"},
      {"src/mrt/pos_reinterpret.cpp", 3, "reinterpret-cast"},
      {"src/mrt/pos_throw.cpp", 5, "parse-throw-boundary"},
      {"src/mrt/pos_union.cpp", 2, "union-punning"},
      {"src/mrt/pos_waiver_rawstring.cpp", 4, "unchecked-memcpy"},
      {"src/mrt/pos_width_caller.cpp", 11, "cursor-width"},
      {"src/mrt/pos_width_fixed.cpp", 8, "cursor-width"},
      {"src/mrt/pos_width_var.cpp", 8, "cursor-width"},
      {"src/netbase/pos_layer.cpp", 1, "layer-violation"},
      {"src/simulator/pos_bws_shared_parallel.cpp", 7, "batch-workspace"},
      {"src/simulator/pos_bws_stale_seed.cpp", 5, "batch-workspace"},
      {"src/simulator/pos_det_iter.cpp", 7, "determinism-iteration"},
      {"src/simulator/pos_lockset_slot.cpp", 9, "lockset-race"},
      {"src/simulator/pos_lockset_unlocked.cpp", 12, "lockset-race"},
      {"src/simulator/pos_nested_capture.cpp", 6, "nested-parallel"},
      {"src/simulator/pos_nested_map_capture.cpp", 6, "nested-parallel"},
      {"src/simulator/pos_par_capture.cpp", 7, "lockset-race"},
      {"src/simulator/pos_ribmap.cpp", 7, "rib-map"},
      {"src/simulator/pos_ws_shared_parallel.cpp", 7, "workspace-epoch"},
      {"src/simulator/pos_ws_stale_install.cpp", 5, "workspace-epoch"},
      {"src/util/pos_atox.cpp", 3, "locale-atox"},
      {"src/util/pos_mapped_pass_closed.cpp", 8, "mapped-span"},
      {"src/util/pos_mapped_use_after_close.cpp", 8, "mapped-span"},
      {"src/util/pos_stdhash.cpp", 4, "std-hash"},
      {"src/util/pos_strtox.cpp", 4, "throwing-strtox"},
      {"src/util/pos_thread.cpp", 4, "raw-thread"},
      {"src/util/pos_unbounded.cpp", 3, "unbounded-copy"},
      {"src/util/pos_waiver_noreason.cpp", 3, "unbounded-copy"},
      {"src/util/pos_waiver_unused.cpp", 4, "unused-waiver"},
      {"src/util/pos_waiver_unused_standalone.cpp", 3, "unused-waiver"},
  };
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(parse_findings(r.out), expected) << r.out;
}

TEST(AnalyzeRules, RegexCorpusParityAllPortedRulesFire) {
  // Every rule id the old tools/lint_wire.py regexes implemented must
  // still be produced by the port (the fixture corpus holds the old
  // corpus spellings), and the four new rules must fire too.
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json");
  ASSERT_EQ(r.exit_code, 1);
  std::set<std::string> fired;
  for (const FindingKey& k : parse_findings(r.out)) {
    fired.insert(std::get<2>(k));
  }
  const std::array<const char*, 22> all_rules = {
      "reinterpret-cast", "unchecked-memcpy", "throwing-strtox",
      "locale-atox", "unbounded-copy", "union-punning", "raw-thread",
      "rib-map", "std-hash", "determinism-iteration", "lockset-race",
      "layer-violation", "parse-throw-boundary", "rib-typestate",
      "workspace-epoch", "batch-workspace", "cursor-guard",
      "nested-parallel", "mapped-span", "series-delta", "cursor-width",
      "unused-waiver"};
  for (const char* rule : all_rules) {
    EXPECT_EQ(fired.count(rule), 1u) << "rule never fired: " << rule;
  }
}

TEST(AnalyzeRules, CleanFileExitsZero) {
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json src/util/neg_thread.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(parse_findings(r.out).size(), 0u) << r.out;
}

TEST(AnalyzeRules, WaiversAreCountedNotReported) {
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json src/util/neg_waiver_sameline.cpp" +
                             " src/simulator/neg_det_waived.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("\"waived\":2"), std::string::npos) << r.out;
}

TEST(AnalyzeRules, ListRulesShowsFullCatalog) {
  RunResult r = run_analyzer("--list-rules");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* rule :
       {"reinterpret-cast", "determinism-iteration", "lockset-race",
        "layer-violation", "parse-throw-boundary", "rib-typestate",
        "workspace-epoch", "batch-workspace", "cursor-guard",
        "nested-parallel", "mapped-span", "series-delta", "cursor-width",
        "unused-waiver"}) {
    EXPECT_NE(r.out.find(rule), std::string::npos) << rule;
  }
}

TEST(AnalyzeRules, WaiverInsideRawStringDoesNotWaive) {
  // R"(// lint-ok: ...)" is string data; the memcpy on the same line
  // must still fire.
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json src/mrt/pos_waiver_rawstring.cpp");
  EXPECT_EQ(r.exit_code, 1) << r.out;
  std::vector<FindingKey> expected = {
      {"src/mrt/pos_waiver_rawstring.cpp", 4, "unchecked-memcpy"}};
  EXPECT_EQ(parse_findings(r.out), expected) << r.out;
  EXPECT_NE(r.out.find("\"waived\":0"), std::string::npos) << r.out;
}

TEST(AnalyzeRules, SplicedWaiverCommentStillCoversItsLine) {
  // A backslash-newline inside "// lint-ok: ..." extends the comment,
  // so the waiver (and its reason) still covers the strcpy line.
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --json src/util/neg_waiver_spliced.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_EQ(parse_findings(r.out).size(), 0u) << r.out;
  EXPECT_NE(r.out.find("\"waived\":1"), std::string::npos) << r.out;
}

TEST(AnalyzeRules, CachedRerunIsByteIdenticalAndAllHits) {
  std::string dir = testing::TempDir() + "analyze_cache_test";
  // TempDir() is stable across runs; start from a genuinely cold cache.
  ASSERT_EQ(std::system(("rm -rf " + dir).c_str()), 0);
  std::string s1 = dir + ".cold.sarif";
  std::string s2 = dir + ".warm.sarif";
  std::string common = std::string("--root ") + MANRS_ANALYZE_TREE +
                       " --json --cache-dir " + dir;
  RunResult cold = run_analyzer(common + " --sarif " + s1);
  ASSERT_EQ(cold.exit_code, 1) << cold.out;
  EXPECT_NE(cold.out.find("\"cache_hits\":0"), std::string::npos) << cold.out;
  RunResult warm = run_analyzer(common + " --sarif " + s2);
  ASSERT_EQ(warm.exit_code, 1) << warm.out;
  EXPECT_NE(warm.out.find("\"cache_misses\":0"), std::string::npos)
      << warm.out;
  // The cached re-scan must reproduce the cold SARIF byte for byte.
  std::ifstream f1(s1, std::ios::binary);
  std::ifstream f2(s2, std::ios::binary);
  ASSERT_TRUE(f1.good());
  ASSERT_TRUE(f2.good());
  std::ostringstream b1;
  std::ostringstream b2;
  b1 << f1.rdbuf();
  b2 << f2.rdbuf();
  EXPECT_EQ(b1.str(), b2.str());
  std::remove(s1.c_str());
  std::remove(s2.c_str());
}

TEST(AnalyzeRules, BaselinePassesOnItselfFailsOnNewFindings) {
  std::string base = testing::TempDir() + "analyze_baseline_test.sarif";
  // Baseline the full tree, then diff the same scan: nothing new.
  RunResult make = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                                " --sarif " + base);
  ASSERT_EQ(make.exit_code, 1);
  RunResult self = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                                " --baseline " + base + " --fail-on-new");
  EXPECT_EQ(self.exit_code, 0) << self.out;
  // Baseline only a subtree: the rest of the corpus counts as new.
  RunResult partial = run_analyzer(std::string("--root ") +
                                   MANRS_ANALYZE_TREE + " --sarif " + base +
                                   " src/util/pos_atox.cpp");
  ASSERT_EQ(partial.exit_code, 1);
  RunResult gated = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                                 " --baseline " + base + " --fail-on-new");
  EXPECT_EQ(gated.exit_code, 1) << gated.out;
  std::remove(base.c_str());
}

TEST(AnalyzeRules, InternalErrorExitsTwo) {
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --self-test-throw");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(AnalyzeRules, MalformedProtocolSpecExitsTwo) {
  std::string root = testing::TempDir() + "analyze_badproto";
  std::string tools = root + "/tools/analyze";
  ASSERT_EQ(std::system(("mkdir -p " + tools + " " + root + "/src").c_str()),
            0);
  {
    std::ofstream proto(tools + "/protocols.txt");
    proto << "protocol broken\n  on nosuch method -> nowhere\nend\n";
    std::ofstream src(root + "/src/a.cpp");
    src << "int x;\n";
  }
  RunResult r = run_analyzer("--root " + root);
  EXPECT_EQ(r.exit_code, 2);
  ASSERT_EQ(std::system(("rm -rf " + root).c_str()), 0);
}

TEST(AnalyzeRules, SarifArtifactIsWritten) {
  std::string sarif_path = testing::TempDir() + "analyze_test.sarif";
  RunResult r = run_analyzer(std::string("--root ") + MANRS_ANALYZE_TREE +
                             " --sarif " + sarif_path);
  EXPECT_EQ(r.exit_code, 1);
  std::ifstream in(sarif_path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(text.str().find("manrs_analyze"), std::string::npos);
  EXPECT_NE(text.str().find("determinism-iteration"), std::string::npos);
  std::remove(sarif_path.c_str());
}

}  // namespace
