#include "core/peeringdb.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::core {
namespace {

using net::Asn;
using util::Date;

PeeringDbNet net_record(uint32_t asn, const char* email, Date updated) {
  return PeeringDbNet{Asn(asn), "net-" + std::to_string(asn), email,
                      updated};
}

TEST(PeeringDb, AddFindReplace) {
  PeeringDb db;
  db.add(net_record(1, "a@x", Date(2022, 1, 1)));
  ASSERT_NE(db.find(Asn(1)), nullptr);
  EXPECT_EQ(db.find(Asn(1))->contact_email, "a@x");
  EXPECT_EQ(db.find(Asn(2)), nullptr);
  db.add(net_record(1, "b@x", Date(2022, 2, 1)));
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find(Asn(1))->contact_email, "b@x");
}

TEST(PeeringDb, CsvRoundTrip) {
  PeeringDb db;
  db.add(net_record(64496, "noc@example.net", Date(2022, 3, 4)));
  db.add(net_record(64497, "", Date(2019, 1, 1)));
  std::ostringstream out;
  db.write_csv(out);
  std::istringstream in(out.str());
  size_t bad = 0;
  PeeringDb parsed = PeeringDb::read_csv(in, &bad);
  EXPECT_EQ(bad, 0u);
  EXPECT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed.find(Asn(64496))->contact_email, "noc@example.net");
  EXPECT_EQ(parsed.find(Asn(64497))->updated, Date(2019, 1, 1));
}

TEST(PeeringDb, CsvRejectsBadRows) {
  std::istringstream in(
      "asn,name,contact,updated\n"
      "64496,x,a@b,2022-01-01\n"
      "notanasn,x,a@b,2022-01-01\n"
      "64497,x,a@b,baddate\n"
      "64498,short\n");
  size_t bad = 0;
  PeeringDb parsed = PeeringDb::read_csv(in, &bad);
  EXPECT_EQ(parsed.size(), 1u);
  EXPECT_EQ(bad, 3u);
}

struct Action3Fixture {
  irr::IrrRegistry irr;
  PeeringDb pdb;
  Date as_of{2022, 5, 1};

  Action3Fixture() {
    auto& db = irr.add_database("RIPE", true);
    irr::AutNumObject with_contact;
    with_contact.asn = Asn(1);
    with_contact.contacts.push_back("NOC-1");
    db.add_aut_num(with_contact);
    irr::AutNumObject no_contact;
    no_contact.asn = Asn(2);
    db.add_aut_num(no_contact);

    pdb.add(PeeringDbNet{Asn(3), "fresh", "noc@fresh", Date(2022, 1, 1)});
    pdb.add(PeeringDbNet{Asn(4), "stale", "noc@stale", Date(2015, 1, 1)});
    pdb.add(PeeringDbNet{Asn(5), "no-mail", "", Date(2022, 1, 1)});
  }
};

TEST(Action3, ViaIrrContact) {
  Action3Fixture f;
  auto verdict = check_action3(f.irr, f.pdb, Asn(1), f.as_of);
  EXPECT_TRUE(verdict.conformant);
  EXPECT_TRUE(verdict.via_irr);
  EXPECT_FALSE(verdict.via_peeringdb);
}

TEST(Action3, AutNumWithoutContactDoesNotCount) {
  Action3Fixture f;
  auto verdict = check_action3(f.irr, f.pdb, Asn(2), f.as_of);
  EXPECT_FALSE(verdict.conformant);
  EXPECT_FALSE(verdict.via_irr);
}

TEST(Action3, ViaFreshPeeringDb) {
  Action3Fixture f;
  auto verdict = check_action3(f.irr, f.pdb, Asn(3), f.as_of);
  EXPECT_TRUE(verdict.conformant);
  EXPECT_TRUE(verdict.via_peeringdb);
  EXPECT_FALSE(verdict.via_irr);
}

TEST(Action3, StalePeeringDbFails) {
  Action3Fixture f;
  auto verdict = check_action3(f.irr, f.pdb, Asn(4), f.as_of);
  EXPECT_FALSE(verdict.conformant);
  EXPECT_TRUE(verdict.stale_peeringdb);
  // With a generous max age it passes.
  verdict = check_action3(f.irr, f.pdb, Asn(4), f.as_of, 365 * 20);
  EXPECT_TRUE(verdict.conformant);
}

TEST(Action3, EmptyEmailDoesNotCount) {
  Action3Fixture f;
  EXPECT_FALSE(check_action3(f.irr, f.pdb, Asn(5), f.as_of).conformant);
}

TEST(Action3, UnknownAsFails) {
  Action3Fixture f;
  EXPECT_FALSE(check_action3(f.irr, f.pdb, Asn(99), f.as_of).conformant);
}

TEST(Action3, AutNumContactParsesFromRpsl) {
  auto objects = irr::parse_rpsl(
      "aut-num: AS64496\n"
      "as-name: EXAMPLE\n"
      "admin-c: JD1-RIPE\n"
      "tech-c:  NOC2-RIPE\n"
      "e-mail:  noc@example.net\n");
  auto aut = irr::AutNumObject::from_rpsl(objects[0]);
  ASSERT_TRUE(aut);
  EXPECT_TRUE(aut->has_contact());
  EXPECT_EQ(aut->contacts.size(), 3u);
  // Round trip preserves contact presence.
  auto back = irr::AutNumObject::from_rpsl(aut->to_rpsl());
  ASSERT_TRUE(back);
  EXPECT_TRUE(back->has_contact());
}

}  // namespace
}  // namespace manrs::core
