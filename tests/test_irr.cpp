#include "irr/database.h"
#include "irr/objects.h"
#include "irr/validation.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::irr {
namespace {

using net::Asn;
using net::Prefix;

RouteObject make_route(const char* prefix, uint32_t origin) {
  RouteObject r;
  r.prefix = Prefix::must_parse(prefix);
  r.origin = Asn(origin);
  return r;
}

TEST(TypedObjects, RouteFromRpsl) {
  auto objects = parse_rpsl(
      "route: 192.0.2.0/24\norigin: AS64496\nmnt-by: MAINT-A\nsource: radb\n");
  ASSERT_EQ(objects.size(), 1u);
  auto route = RouteObject::from_rpsl(objects[0]);
  ASSERT_TRUE(route);
  EXPECT_EQ(route->prefix, Prefix::must_parse("192.0.2.0/24"));
  EXPECT_EQ(route->origin, Asn(64496));
  EXPECT_EQ(route->source, "RADB");
  ASSERT_EQ(route->maintainers.size(), 1u);
  EXPECT_EQ(route->maintainers[0], "MAINT-A");
}

TEST(TypedObjects, Route6RequiresV6Prefix) {
  auto v6 = parse_rpsl("route6: 2001:db8::/32\norigin: AS1\n");
  EXPECT_TRUE(RouteObject::from_rpsl(v6[0]).has_value());
  auto mismatched = parse_rpsl("route6: 10.0.0.0/8\norigin: AS1\n");
  EXPECT_FALSE(RouteObject::from_rpsl(mismatched[0]).has_value());
  auto mismatched2 = parse_rpsl("route: 2001:db8::/32\norigin: AS1\n");
  EXPECT_FALSE(RouteObject::from_rpsl(mismatched2[0]).has_value());
}

TEST(TypedObjects, RouteRejectsMalformed) {
  auto no_origin = parse_rpsl("route: 10.0.0.0/8\nmnt-by: X\n");
  EXPECT_FALSE(RouteObject::from_rpsl(no_origin[0]).has_value());
  auto bad_origin = parse_rpsl("route: 10.0.0.0/8\norigin: banana\n");
  EXPECT_FALSE(RouteObject::from_rpsl(bad_origin[0]).has_value());
  auto bad_prefix = parse_rpsl("route: banana\norigin: AS1\n");
  EXPECT_FALSE(RouteObject::from_rpsl(bad_prefix[0]).has_value());
}

TEST(TypedObjects, AsSetFromRpsl) {
  auto objects = parse_rpsl(
      "as-set: as-example\n"
      "members: AS1, AS-FOO, AS2\n"
      "source: RADB\n");
  auto set = AsSetObject::from_rpsl(objects[0]);
  ASSERT_TRUE(set);
  EXPECT_EQ(set->name, "AS-EXAMPLE");  // canonical upper case
  ASSERT_EQ(set->members.size(), 3u);
  EXPECT_TRUE(set->members[0].is_asn());
  EXPECT_EQ(*set->members[0].asn, Asn(1));
  EXPECT_FALSE(set->members[1].is_asn());
  EXPECT_EQ(set->members[1].set_name, "AS-FOO");
}

TEST(TypedObjects, RpslRoundTrip) {
  RouteObject route = make_route("10.0.0.0/8", 42);
  route.source = "RIPE";
  route.maintainers.push_back("MAINT-X");
  auto back = RouteObject::from_rpsl(route.to_rpsl());
  ASSERT_TRUE(back);
  EXPECT_EQ(back->prefix, route.prefix);
  EXPECT_EQ(back->origin, route.origin);
  EXPECT_EQ(back->source, route.source);
}

TEST(IrrDatabase, CoveringRoutes) {
  IrrDatabase db("RADB", false);
  db.add_route(make_route("10.0.0.0/8", 1));
  db.add_route(make_route("10.1.0.0/16", 2));
  auto covering = db.covering_routes(Prefix::must_parse("10.1.2.0/24"));
  ASSERT_EQ(covering.size(), 2u);
  EXPECT_EQ(covering[0].origin, Asn(1));  // least specific first
  EXPECT_EQ(covering[1].origin, Asn(2));
  EXPECT_TRUE(db.covered(Prefix::must_parse("10.250.0.0/16")));
  EXPECT_FALSE(db.covered(Prefix::must_parse("11.0.0.0/8")));
}

TEST(IrrDatabase, LoadRpslIngestsKnownClasses) {
  std::istringstream in(
      "route: 10.0.0.0/8\norigin: AS1\n\n"
      "as-set: AS-X\nmembers: AS1\n\n"
      "aut-num: AS1\nas-name: EXAMPLE\n\n"
      "mntner: MAINT-X\nauth: CRYPT-PW x\n\n");  // ignored class
  IrrDatabase db("TEST", true);
  size_t loaded = db.load_rpsl(in);
  EXPECT_EQ(loaded, 3u);
  EXPECT_EQ(db.route_count(), 1u);
  EXPECT_EQ(db.as_set_count(), 1u);
  EXPECT_EQ(db.aut_num_count(), 1u);
  EXPECT_NE(db.find_as_set("as-x"), nullptr);  // case-insensitive
  EXPECT_NE(db.find_aut_num(Asn(1)), nullptr);
  EXPECT_EQ(db.find_aut_num(Asn(2)), nullptr);
}

TEST(IrrDatabase, WriteRpslRoundTrip) {
  IrrDatabase db("TEST", true);
  db.add_route(make_route("10.0.0.0/8", 1));
  db.add_route(make_route("2001:db8::/32", 2));
  AsSetObject set;
  set.name = "AS-X";
  set.members.push_back({Asn(1), ""});
  db.add_as_set(set);

  std::ostringstream out;
  db.write_rpsl(out);
  std::istringstream in(out.str());
  IrrDatabase db2("TEST2", true);
  EXPECT_EQ(db2.load_rpsl(in), 3u);
  EXPECT_EQ(db2.route_count(), 2u);
  EXPECT_TRUE(db2.covered(Prefix::must_parse("2001:db8::/48")));
}

TEST(IrrRegistry, AuthoritativePrecedence) {
  IrrRegistry registry;
  auto& radb = registry.add_database("RADB", false);
  auto& ripe = registry.add_database("RIPE", true);
  radb.add_route(make_route("10.0.0.0/8", 1));
  ripe.add_route(make_route("10.0.0.0/8", 2));

  auto dbs = registry.databases();
  ASSERT_EQ(dbs.size(), 2u);
  EXPECT_EQ(dbs[0]->name(), "RIPE");  // authoritative first

  // Same (prefix, origin) de-dup keeps the authoritative copy first; the
  // distinct origins both appear.
  auto covering = registry.covering_routes(Prefix::must_parse("10.0.0.0/8"));
  ASSERT_EQ(covering.size(), 2u);
  EXPECT_EQ(covering[0].origin, Asn(2));
}

TEST(IrrRegistry, MirrorDeduplicates) {
  IrrRegistry registry;
  auto& ripe = registry.add_database("RIPE", true);
  ripe.add_route(make_route("10.0.0.0/8", 1));
  ripe.add_route(make_route("11.0.0.0/8", 2));

  size_t copied = registry.mirror(ripe, "RADB");
  EXPECT_EQ(copied, 2u);
  // Mirroring again copies nothing new.
  EXPECT_EQ(registry.mirror(ripe, "RADB"), 0u);
  EXPECT_EQ(registry.find_database("RADB")->route_count(), 2u);
  // Mirrored objects keep their original source tag.
  auto routes =
      registry.find_database("RADB")->routes_at(Prefix::must_parse("10.0.0.0/8"));
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_EQ(routes[0].source, "RIPE");
}

TEST(IrrValidation, StatusClassification) {
  IrrRegistry registry;
  auto& db = registry.add_database("RADB", false);
  db.add_route(make_route("10.0.0.0/16", 64496));

  // Exact match, right origin: Valid.
  EXPECT_EQ(validate_route(registry, Prefix::must_parse("10.0.0.0/16"),
                           Asn(64496)),
            IrrStatus::kValid);
  // More specific than registered, right origin: Invalid Length (§6.1 --
  // the paper treats this as conformant).
  EXPECT_EQ(validate_route(registry, Prefix::must_parse("10.0.1.0/24"),
                           Asn(64496)),
            IrrStatus::kInvalidLength);
  // Wrong origin: Invalid.
  EXPECT_EQ(validate_route(registry, Prefix::must_parse("10.0.0.0/16"),
                           Asn(64497)),
            IrrStatus::kInvalidAsn);
  // No covering object: NotFound.
  EXPECT_EQ(
      validate_route(registry, Prefix::must_parse("11.0.0.0/16"), Asn(64496)),
      IrrStatus::kNotFound);
}

TEST(IrrValidation, ExactLengthRequiredForValid) {
  // Unlike RPKI max-length, IRR Valid demands an exact-length object.
  IrrRegistry registry;
  auto& db = registry.add_database("RADB", false);
  db.add_route(make_route("10.0.0.0/16", 1));
  db.add_route(make_route("10.0.0.0/24", 1));
  EXPECT_EQ(validate_route(registry, Prefix::must_parse("10.0.0.0/24"),
                           Asn(1)),
            IrrStatus::kValid);
  EXPECT_EQ(validate_route(registry, Prefix::must_parse("10.0.0.0/20"),
                           Asn(1)),
            IrrStatus::kInvalidLength);
}

TEST(IrrValidation, IsInvalidOnlyForWrongOrigin) {
  EXPECT_TRUE(is_invalid(IrrStatus::kInvalidAsn));
  EXPECT_FALSE(is_invalid(IrrStatus::kInvalidLength));
  EXPECT_FALSE(is_invalid(IrrStatus::kValid));
  EXPECT_FALSE(is_invalid(IrrStatus::kNotFound));
}

TEST(AsSetExpansion, RecursiveWithDedup) {
  IrrRegistry registry;
  auto& db = registry.add_database("RADB", false);
  AsSetObject outer;
  outer.name = "AS-OUTER";
  outer.members.push_back({Asn(1), ""});
  outer.members.push_back({std::nullopt, "AS-INNER"});
  db.add_as_set(outer);
  AsSetObject inner;
  inner.name = "AS-INNER";
  inner.members.push_back({Asn(2), ""});
  inner.members.push_back({Asn(1), ""});  // duplicate across sets
  db.add_as_set(inner);

  auto asns = registry.expand_as_set("AS-OUTER");
  EXPECT_EQ(asns, (std::vector<Asn>{Asn(1), Asn(2)}));
}

TEST(AsSetExpansion, CycleTolerated) {
  IrrRegistry registry;
  auto& db = registry.add_database("RADB", false);
  AsSetObject a, b;
  a.name = "AS-A";
  a.members.push_back({Asn(1), ""});
  a.members.push_back({std::nullopt, "AS-B"});
  b.name = "AS-B";
  b.members.push_back({Asn(2), ""});
  b.members.push_back({std::nullopt, "AS-A"});  // cycle
  db.add_as_set(a);
  db.add_as_set(b);

  auto asns = registry.expand_as_set("AS-A");
  EXPECT_EQ(asns, (std::vector<Asn>{Asn(1), Asn(2)}));
}

TEST(AsSetExpansion, MissingSetsCounted) {
  IrrRegistry registry;
  auto& db = registry.add_database("RADB", false);
  AsSetObject a;
  a.name = "AS-A";
  a.members.push_back({Asn(1), ""});
  a.members.push_back({std::nullopt, "AS-GONE"});
  db.add_as_set(a);
  size_t missing = 0;
  auto asns = registry.expand_as_set("AS-A", 32, &missing);
  EXPECT_EQ(asns, (std::vector<Asn>{Asn(1)}));
  EXPECT_EQ(missing, 1u);
}

TEST(AsSetExpansion, CrossDatabaseResolution) {
  IrrRegistry registry;
  auto& radb = registry.add_database("RADB", false);
  auto& ripe = registry.add_database("RIPE", true);
  AsSetObject outer;
  outer.name = "AS-OUTER";
  outer.members.push_back({std::nullopt, "AS-RIPE-SET"});
  radb.add_as_set(outer);
  AsSetObject inner;
  inner.name = "AS-RIPE-SET";
  inner.members.push_back({Asn(3333), ""});
  ripe.add_as_set(inner);

  auto asns = registry.expand_as_set("AS-OUTER");
  EXPECT_EQ(asns, (std::vector<Asn>{Asn(3333)}));
}

}  // namespace
}  // namespace manrs::irr
