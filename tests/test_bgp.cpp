#include "bgp/rib.h"
#include "bgp/route.h"
#include "mrt/bgp4mp.h"
#include "mrt/table_dump.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

namespace manrs::bgp {
namespace {

using net::Asn;
using net::Prefix;

AsPath path(std::initializer_list<uint32_t> hops) {
  std::vector<Asn> v;
  for (uint32_t h : hops) v.emplace_back(h);
  return AsPath(std::move(v));
}

TEST(AsPath, OriginAndFirstHop) {
  AsPath p = path({3, 2, 1});
  EXPECT_EQ(p.origin(), Asn(1));
  EXPECT_EQ(p.first_hop(), Asn(3));
  EXPECT_EQ(p.length(), 3u);
  AsPath empty;
  EXPECT_FALSE(empty.origin().has_value());
  EXPECT_FALSE(empty.first_hop().has_value());
}

TEST(AsPath, Prepend) {
  AsPath p = path({2, 1}).prepend(Asn(3));
  EXPECT_EQ(p, path({3, 2, 1}));
  // prepend does not mutate the original (value semantics).
  AsPath base = path({1});
  AsPath extended = base.prepend(Asn(2));
  EXPECT_EQ(base.length(), 1u);
  EXPECT_EQ(extended.length(), 2u);
}

TEST(AsPath, LoopDetection) {
  EXPECT_FALSE(path({3, 2, 1}).has_loop());
  EXPECT_TRUE(path({3, 2, 3, 1}).has_loop());
  // Consecutive repeats are prepending, not loops.
  EXPECT_FALSE(path({3, 3, 3, 2, 1}).has_loop());
  EXPECT_TRUE(path({3, 3, 2, 3, 1}).has_loop());
  EXPECT_FALSE(AsPath{}.has_loop());
}

TEST(AsPath, Contains) {
  AsPath p = path({3, 2, 1});
  EXPECT_TRUE(p.contains(Asn(2)));
  EXPECT_FALSE(p.contains(Asn(4)));
}

TEST(AsPath, ToString) {
  EXPECT_EQ(path({3, 2, 1}).to_string(), "AS3 AS2 AS1");
  EXPECT_EQ(AsPath{}.to_string(), "");
}

TEST(PrefixOrigin, OrderingAndHash) {
  PrefixOrigin a{Prefix::must_parse("10.0.0.0/8"), Asn(1)};
  PrefixOrigin b{Prefix::must_parse("10.0.0.0/8"), Asn(2)};
  PrefixOrigin c{Prefix::must_parse("11.0.0.0/8"), Asn(1)};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, (PrefixOrigin{Prefix::must_parse("10.0.0.0/8"), Asn(1)}));
  std::hash<PrefixOrigin> h;
  EXPECT_NE(h(a), h(b));
}

TEST(Rib, InsertAndQuery) {
  Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  uint32_t p1 = rib.add_peer(Asn(200));
  EXPECT_EQ(rib.peer_count(), 2u);
  EXPECT_EQ(rib.peer_asn(p1), Asn(200));

  Prefix pfx = Prefix::must_parse("10.0.0.0/8");
  rib.insert(pfx, p0, path({100, 1}));
  rib.insert(pfx, p1, path({200, 50, 1}));
  EXPECT_EQ(rib.prefix_count(), 1u);
  EXPECT_EQ(rib.entry_count(), 2u);
  EXPECT_EQ(rib.entries(pfx).size(), 2u);
  EXPECT_TRUE(rib.entries(Prefix::must_parse("11.0.0.0/8")).empty());
}

TEST(Rib, SamePeerReplacesPath) {
  Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  Prefix pfx = Prefix::must_parse("10.0.0.0/8");
  rib.insert(pfx, p0, path({100, 1}));
  rib.insert(pfx, p0, path({100, 2, 1}));
  ASSERT_EQ(rib.entries(pfx).size(), 1u);
  EXPECT_EQ(rib.entries(pfx)[0].path, path({100, 2, 1}));
}

TEST(Rib, PrefixOriginsDeduplicatesAcrossPeers) {
  Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  uint32_t p1 = rib.add_peer(Asn(200));
  Prefix pfx = Prefix::must_parse("10.0.0.0/8");
  rib.insert(pfx, p0, path({100, 1}));
  rib.insert(pfx, p1, path({200, 1}));  // same origin, different path
  auto origins = rib.prefix_origins();
  ASSERT_EQ(origins.size(), 1u);
  EXPECT_EQ(origins[0].origin, Asn(1));
}

TEST(Rib, MoasProducesTwoPrefixOrigins) {
  Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  uint32_t p1 = rib.add_peer(Asn(200));
  Prefix pfx = Prefix::must_parse("10.0.0.0/8");
  rib.insert(pfx, p0, path({100, 1}));
  rib.insert(pfx, p1, path({200, 2}));  // different origin (MOAS)
  auto origins = rib.prefix_origins();
  ASSERT_EQ(origins.size(), 2u);
  EXPECT_EQ(origins[0].origin, Asn(1));
  EXPECT_EQ(origins[1].origin, Asn(2));
}

TEST(Rib, PrefixesOriginatedBy) {
  Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  rib.insert(Prefix::must_parse("10.0.0.0/8"), p0, path({100, 1}));
  rib.insert(Prefix::must_parse("11.0.0.0/8"), p0, path({100, 2}));
  rib.insert(Prefix::must_parse("12.0.0.0/8"), p0, path({100, 5, 1}));
  auto prefixes = rib.prefixes_originated_by(Asn(1));
  ASSERT_EQ(prefixes.size(), 2u);
  EXPECT_EQ(prefixes[0], Prefix::must_parse("10.0.0.0/8"));
  EXPECT_EQ(prefixes[1], Prefix::must_parse("12.0.0.0/8"));
}

// ---------------------------------------------------------------------------
// Delta no-op golden: a staged batch whose ops are all effective no-ops
// (withdrawals of absent entries, re-announcements of identical paths)
// must leave the table byte-identical AND keep references returned by
// entries() valid -- the contract the temporal snapshot engine's quiet
// days lean on.

std::string serialize(const Rib& rib) {
  std::ostringstream out;
  mrt::TableDumpWriter writer(out, /*timestamp=*/1651363200);
  writer.write_rib(rib, "test.noop");
  return out.str();
}

Rib small_rib() {
  Rib rib;
  uint32_t p0 = rib.add_peer(Asn(100));
  uint32_t p1 = rib.add_peer(Asn(200));
  rib.insert(Prefix::must_parse("10.0.0.0/8"), p0, path({100, 1}));
  rib.insert(Prefix::must_parse("10.0.0.0/8"), p1, path({200, 50, 1}));
  rib.insert(Prefix::must_parse("11.1.0.0/16"), p0, path({100, 2}));
  rib.finalize();
  return rib;
}

TEST(RibDeltaNoOp, EmptyBatchIsByteIdentical) {
  Rib rib = small_rib();
  const std::string before = serialize(rib);
  rib.begin_delta();
  rib.finalize();  // nothing staged at all
  EXPECT_EQ(serialize(rib), before);
}

TEST(RibDeltaNoOp, EffectiveNoOpBatchKeepsBytesAndReferences) {
  Rib rib = small_rib();
  const std::string before = serialize(rib);
  const Prefix pfx = Prefix::must_parse("10.0.0.0/8");
  const std::vector<RibEntry>* row_before = &rib.entries(pfx);
  const RibEntry* data_before = row_before->data();

  rib.begin_delta();
  // Withdraw-of-absent: peer 1 never announced 11.1.0.0/16.
  rib.erase(Prefix::must_parse("11.1.0.0/16"), 1);
  // Withdraw of a prefix the table has never seen.
  rib.erase(Prefix::must_parse("192.0.2.0/24"), 0);
  // Re-announcement of the identical path.
  rib.insert(pfx, 0, path({100, 1}));
  rib.finalize();

  EXPECT_EQ(serialize(rib), before);
  // The no-op fast path must not rebuild rows: references stay valid.
  EXPECT_EQ(&rib.entries(pfx), row_before);
  EXPECT_EQ(rib.entries(pfx).data(), data_before);
}

TEST(RibDeltaNoOp, DiffRibsAgainstSelfIsEmpty) {
  const Rib rib = small_rib();
  EXPECT_TRUE(mrt::diff_ribs(rib, rib, /*timestamp=*/1651363200).empty());
}

TEST(RibDeltaNoOp, RealOpAmongNoOpsStillApplies) {
  Rib rib = small_rib();
  const std::string before = serialize(rib);
  rib.begin_delta();
  rib.insert(Prefix::must_parse("10.0.0.0/8"), 0, path({100, 1}));  // no-op
  rib.insert(Prefix::must_parse("12.0.0.0/8"), 0, path({100, 3}));  // real
  rib.finalize();
  EXPECT_NE(serialize(rib), before);
  EXPECT_EQ(rib.prefix_count(), 3u);
}

}  // namespace
}  // namespace manrs::bgp
