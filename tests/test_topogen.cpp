#include "topogen/scenario.h"

#include <gtest/gtest.h>

#include "astopo/asrank.h"
#include "topogen/casestudies.h"
#include "topogen/history.h"

namespace manrs::topogen {
namespace {

using astopo::SizeClass;
using net::Asn;

// One shared tiny scenario for the whole suite (generation is the
// expensive part).
const Scenario& tiny_scenario() {
  static const Scenario scenario = [] {
    return build_scenario(ScenarioConfig::tiny());
  }();
  return scenario;
}

TEST(Scenario, Deterministic) {
  ScenarioConfig config = ScenarioConfig::tiny();
  Scenario a = build_scenario(config);
  Scenario b = build_scenario(config);
  EXPECT_EQ(a.graph.as_count(), b.graph.as_count());
  EXPECT_EQ(a.graph.edge_count(), b.graph.edge_count());
  EXPECT_EQ(a.announcements(), b.announcements());
  EXPECT_EQ(a.vrps.size(), b.vrps.size());
  EXPECT_EQ(a.manrs.participant_count(), b.manrs.participant_count());
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig config = ScenarioConfig::tiny();
  config.seed = 1;
  Scenario a = build_scenario(config);
  config.seed = 2;
  Scenario b = build_scenario(config);
  EXPECT_NE(a.announcements(), b.announcements());
}

TEST(Scenario, PopulationCountsMatchConfig) {
  const Scenario& s = tiny_scenario();
  const ScenarioConfig& c = s.config;
  size_t small_manrs = 0, medium_manrs = 0, large_manrs = 0;
  for (const auto& p : s.profiles) {
    if (!p.manrs) continue;
    if (p.size == SizeClass::kSmall) ++small_manrs;
    if (p.size == SizeClass::kMedium) ++medium_manrs;
    if (p.size == SizeClass::kLarge) ++large_manrs;
  }
  EXPECT_EQ(small_manrs, c.small_manrs.count);
  EXPECT_EQ(medium_manrs, c.medium_manrs.count);
  EXPECT_EQ(large_manrs, c.large_manrs.count);
}

TEST(Scenario, DegreeClassesMatchProfiles) {
  // The generator's size labels must agree with what the analysis will
  // infer from the topology (the Dhamdhere thresholds).
  const Scenario& s = tiny_scenario();
  size_t checked = 0;
  for (const auto& p : s.profiles) {
    SizeClass derived = astopo::classify_size(s.graph, p.asn);
    EXPECT_EQ(derived, p.size) << p.asn.to_string();
    ++checked;
  }
  EXPECT_GT(checked, 100u);
}

TEST(Scenario, EveryAsReachesTier1) {
  // Connectivity: every announcement must reach the vantage points
  // (checked by propagating a clean route from a few origins).
  const Scenario& s = tiny_scenario();
  sim::PropagationSim simulator = s.make_sim();
  size_t sampled = 0;
  for (const auto& p : s.profiles) {
    if (sampled >= 25) break;
    if (p.asn.value() % 7 != 0) continue;
    ++sampled;
    auto result = simulator.propagate(p.asn, sim::AnnouncementClass{});
    size_t reached = 0;
    for (Asn vantage : s.vantage_points) {
      if (!simulator.path_from(result, vantage).empty()) ++reached;
    }
    EXPECT_GT(reached, s.vantage_points.size() / 2) << p.asn.to_string();
  }
}

TEST(Scenario, ManrsRegistryConsistentWithProfiles) {
  const Scenario& s = tiny_scenario();
  for (const auto& p : s.profiles) {
    EXPECT_EQ(s.manrs.is_member(p.asn), p.manrs) << p.asn.to_string();
    if (p.manrs) {
      ASSERT_TRUE(s.manrs.program_of(p.asn).has_value());
      EXPECT_EQ(*s.manrs.program_of(p.asn), p.program);
    }
  }
}

TEST(Scenario, As2OrgCoversEveryAs) {
  const Scenario& s = tiny_scenario();
  for (const auto& p : s.profiles) {
    const astopo::Organization* org = s.as2org.organization_of(p.asn);
    ASSERT_NE(org, nullptr) << p.asn.to_string();
    EXPECT_EQ(org->org_id, p.org_id);
  }
}

TEST(Scenario, CdnProgramSizeMatchesConfig) {
  const Scenario& s = tiny_scenario();
  size_t cdn_ases = s.manrs.member_ases(core::Program::kCdn).size();
  // Case-study CDN orgs contribute a fixed number of registered ASes (4);
  // the generator tops up to the configured count but org-granularity can
  // overshoot slightly.
  EXPECT_GE(cdn_ases, s.config.cdn_program_ases);
  EXPECT_LE(cdn_ases, s.config.cdn_program_ases + 3);
}

TEST(Scenario, AnnouncementsHaveKnownOrigins) {
  const Scenario& s = tiny_scenario();
  for (const auto& po : s.announcements()) {
    EXPECT_NE(s.profile_of(po.origin), nullptr) << po.to_string();
  }
}

TEST(Scenario, QuietAsesOriginateNothing) {
  const Scenario& s = tiny_scenario();
  // The "8 orgs announcing only from unregistered ASes" pattern requires
  // quiet registered ASes; verify via announcements.
  std::unordered_set<uint32_t> originating;
  for (const auto& po : s.announcements()) {
    originating.insert(po.origin.value());
  }
  size_t quiet_members = 0;
  for (Asn asn : s.manrs.member_ases()) {
    if (!originating.count(asn.value())) ++quiet_members;
  }
  EXPECT_GT(quiet_members, 0u);
}

TEST(Scenario, VrpsEvaluateFromRelyingParty) {
  const Scenario& s = tiny_scenario();
  EXPECT_GT(s.vrps.size(), 0u);
  EXPECT_GT(s.relying_party.roa_count(), 0u);
  EXPECT_GT(s.relying_party.certificate_count(), 0u);
  // Every dated VRP must be within the generated year range.
  for (const auto& dated : s.dated_vrps) {
    EXPECT_GE(dated.year, s.config.first_year);
    EXPECT_LE(dated.year, s.config.last_year);
  }
}

TEST(Scenario, HistoryMonotone) {
  const Scenario& s = tiny_scenario();
  size_t prev_vrps = 0;
  for (int year = s.config.first_year; year <= s.config.last_year; ++year) {
    size_t vrps = s.vrps_in_year(year).size();
    EXPECT_GE(vrps, prev_vrps) << year;  // ROAs only accumulate
    prev_vrps = vrps;
  }
  // Announcements grow over the years (modulo the anchor dip, which only
  // affects 2021+ and is small).
  EXPECT_LT(s.announcements_in_year(2015).size(),
            s.announcements_in_year(2022).size());
  // Membership grows with join dates.
  EXPECT_LT(s.manrs.member_ases_at(util::Date(2016, 5, 1)).size(),
            s.manrs.member_ases_at(util::Date(2022, 5, 1)).size());
}

TEST(Scenario, IrrHasAuthoritativeAndMirrorDatabases) {
  const Scenario& s = tiny_scenario();
  EXPECT_NE(s.irr.find_database("RADB"), nullptr);
  EXPECT_FALSE(s.irr.find_database("RADB")->authoritative());
  EXPECT_NE(s.irr.find_database("RIPE"), nullptr);
  EXPECT_TRUE(s.irr.find_database("RIPE")->authoritative());
  // RADB mirrors the authoritative registries, so it is the biggest.
  EXPECT_GT(s.irr.find_database("RADB")->route_count(),
            s.irr.find_database("RIPE")->route_count() / 2);
}

TEST(CaseStudies, TemplatesPresentInScenario) {
  const Scenario& s = tiny_scenario();
  ASSERT_EQ(s.case_study_orgs.size(), 6u);
  for (const auto& [label, org_id] : s.case_study_orgs) {
    const core::Participant* participant = s.manrs.find_org(org_id);
    ASSERT_NE(participant, nullptr) << label;
    EXPECT_FALSE(participant->registered_ases.empty());
  }
}

TEST(CaseStudies, TemplateDataMatchesTable1) {
  const auto& templates = case_study_templates();
  ASSERT_EQ(templates.size(), 6u);
  EXPECT_EQ(templates[0].label, "CDN1");
  EXPECT_EQ(templates[0].rpki_invalid_sibling, 3u);
  EXPECT_EQ(templates[0].irr_invalid_sibling, 38u);
  EXPECT_EQ(templates[0].irr_invalid_unrelated, 10u);
  EXPECT_EQ(templates[3].label, "ISP1");
  EXPECT_EQ(templates[3].irr_invalid_sibling +
                templates[3].irr_invalid_unrelated,
            302u);
  // ISP1 has 24 registered ASes.
  size_t registered = 0;
  for (const auto& as_tpl : templates[3].ases) {
    if (as_tpl.registered) ++registered;
  }
  EXPECT_EQ(registered, 24u);
}

TEST(WeeklySeries, ShapeAndChurn) {
  const Scenario& s = tiny_scenario();
  WeeklySeries series = build_weekly_series(s, 12);
  ASSERT_EQ(series.dates.size(), 12u);
  ASSERT_EQ(series.announcements.size(), 12u);
  EXPECT_EQ(series.dates.back(), s.snapshot_date);
  for (size_t w = 1; w < series.dates.size(); ++w) {
    EXPECT_EQ(series.dates[w].to_days() - series.dates[w - 1].to_days(), 7);
  }
  // Week-to-week tables differ (churn exists) but are similar in size.
  EXPECT_NE(series.announcements[0], series.announcements[11]);
  double ratio = static_cast<double>(series.announcements[0].size()) /
                 static_cast<double>(series.announcements[11].size());
  EXPECT_GT(ratio, 0.9);
  EXPECT_LT(ratio, 1.1);
  EXPECT_GT(series.cdn1_new, 0u);
  EXPECT_GT(series.cdn1_stopped, 0u);
}

TEST(WeeklySeries, FinalWeekMatchesSnapshotConformance) {
  // The last week's table must contain exactly the scenario's current
  // announcements (no lingering leaks or leavers).
  const Scenario& s = tiny_scenario();
  WeeklySeries series = build_weekly_series(s, 12);
  auto base = s.announcements();
  std::sort(base.begin(), base.end());
  auto last = series.announcements.back();
  std::sort(last.begin(), last.end());
  EXPECT_EQ(base, last);
}

TEST(WeeklySeries, FluctuatingAsesAreMembers) {
  const Scenario& s = tiny_scenario();
  WeeklySeries series = build_weekly_series(s, 12);
  for (Asn asn : series.fluctuating) {
    EXPECT_TRUE(s.manrs.is_member(asn)) << asn.to_string();
  }
}

}  // namespace
}  // namespace manrs::topogen
