// Failure-injection / fuzz robustness: every parser in the pipeline must
// survive arbitrary and corrupted input without crashing, hanging, or
// over-reading -- a real pipeline meets truncated MRT dumps and mangled
// registry exports routinely.
#include <gtest/gtest.h>

#include <sstream>

#include "irr/rpsl.h"
#include "mrt/bgp4mp.h"
#include "mrt/table_dump.h"
#include "netbase/prefix.h"
#include "rpki/archive.h"
#include "util/csv.h"
#include "util/rng.h"

namespace manrs {
namespace {

std::string random_bytes(util::Rng& rng, size_t n) {
  std::string out(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(rng.uniform(256));
  }
  return out;
}

class FuzzP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzP, TableDumpReaderSurvivesGarbage) {
  util::Rng rng(GetParam());
  std::istringstream in(random_bytes(rng, 4096));
  mrt::TableDumpReader reader(in);
  mrt::TableDumpReader::Record record;
  size_t records = 0;
  while (reader.next(record) && records < 10000) ++records;
  SUCCEED();  // not crashing/hanging is the property
}

TEST_P(FuzzP, Bgp4mpReaderSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xF00D);
  std::istringstream in(random_bytes(rng, 4096));
  mrt::Bgp4mpReader reader(in);
  mrt::Bgp4mpRecord record;
  size_t records = 0;
  while (reader.next(record) && records < 10000) ++records;
  SUCCEED();
}

TEST_P(FuzzP, TableDumpReaderSurvivesBitFlips) {
  // Start from a valid dump, flip bytes, re-read.
  util::Rng rng(GetParam() ^ 0xBEEF);
  bgp::Rib rib;
  uint32_t peer = rib.add_peer(net::Asn(65000));
  for (int i = 0; i < 20; ++i) {
    rib.insert(
        net::Prefix(net::IpAddress::v4(static_cast<uint32_t>(rng.next())),
                    24),
        peer,
        bgp::AsPath({net::Asn(65000),
                     net::Asn(static_cast<uint32_t>(1 + rng.uniform(1000)))}));
  }
  std::ostringstream out;
  mrt::TableDumpWriter writer(out, 1);
  writer.write_rib(rib, "fuzz");
  std::string bytes = out.str();
  for (int flip = 0; flip < 32; ++flip) {
    bytes[rng.uniform(bytes.size())] ^=
        static_cast<char>(1 << rng.uniform(8));
  }
  std::istringstream in(bytes);
  size_t bad = 0;
  bgp::Rib parsed = mrt::TableDumpReader::read_rib(in, &bad);
  // Whatever survives must be structurally sane.
  for (const auto& po : parsed.prefix_origins()) {
    EXPECT_LE(po.prefix.length(),
              net::family_bits(po.prefix.family()));
  }
}

TEST_P(FuzzP, RpslParserSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xCAFE);
  // Mix of printable noise, colons, and newlines.
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    uint64_t pick = rng.uniform(10);
    if (pick < 6) {
      text += static_cast<char>(32 + rng.uniform(95));
    } else if (pick < 8) {
      text += ':';
    } else {
      text += '\n';
    }
  }
  size_t malformed = 0;
  auto objects = irr::parse_rpsl(text, &malformed);
  for (const auto& obj : objects) {
    EXPECT_FALSE(obj.attributes.empty());
    for (const auto& attr : obj.attributes) {
      EXPECT_FALSE(attr.name.empty());
    }
  }
}

TEST_P(FuzzP, CsvReaderSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xD00D);
  std::string text = random_bytes(rng, 2048);
  // CsvReader is line-oriented; NUL bytes and unbalanced quotes must not
  // hang it.
  auto rows = util::parse_csv(text);
  size_t cells = 0;
  for (const auto& row : rows) cells += row.size();
  EXPECT_GE(cells, rows.size());
}

TEST_P(FuzzP, PrefixParserSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xFEED);
  for (int i = 0; i < 500; ++i) {
    std::string s;
    size_t len = rng.uniform(24);
    for (size_t c = 0; c < len; ++c) {
      static const char kAlphabet[] = "0123456789abcdef.:/ x";
      s += kAlphabet[rng.uniform(sizeof(kAlphabet) - 1)];
    }
    auto prefix = net::Prefix::parse(s);
    if (prefix) {
      // Anything accepted must round-trip cleanly.
      EXPECT_EQ(net::Prefix::parse(prefix->to_string()), *prefix) << s;
    }
  }
}

TEST_P(FuzzP, VrpCsvReaderSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xABCD);
  std::string text = "URI,ASN,IP Prefix,Max Length\n" +
                     random_bytes(rng, 1024);
  std::istringstream in(text);
  size_t skipped = 0;
  auto vrps = rpki::read_vrp_csv(in, &skipped);
  for (const auto& vrp : vrps) {
    EXPECT_TRUE(vrp.well_formed());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzP,
                         ::testing::Values(0xA1, 0xB2, 0xC3, 0xD4, 0xE5,
                                           0xF6));

}  // namespace
}  // namespace manrs
