// Failure-injection / fuzz robustness: every parser in the pipeline must
// survive arbitrary and corrupted input without crashing, hanging, or
// over-reading -- a real pipeline meets truncated MRT dumps and mangled
// registry exports routinely.
//
// Two layers:
//   * a deterministic corpus of named malformations (truncated headers,
//     lying length fields, overrunning attributes, zero-length AS_PATHs,
//     malformed RPSL) with exact per-case accounting, and
//   * seeded random garbage / bit-flip sweeps for breadth.
// Both run under ASan+UBSan via tools/check.sh.
#include <gtest/gtest.h>

#include <array>
#include <sstream>
#include <string>
#include <utility>

#include "irr/rpsl.h"
#include "mrt/bgp4mp.h"
#include "mrt/table_dump.h"
#include "netbase/prefix.h"
#include "rpki/archive.h"
#include "util/bytes.h"
#include "util/csv.h"
#include "util/rng.h"

namespace manrs {
namespace {

// ---- deterministic corpus ----------------------------------------------

/// Serialize one MRT record (header + body) to a byte string.
std::string mrt_record(uint16_t type, uint16_t subtype,
                       const mrt::ByteWriter& body, uint32_t declared_length) {
  mrt::ByteWriter rec;
  rec.u32(1650000000);  // timestamp
  rec.u16(type);
  rec.u16(subtype);
  rec.u32(declared_length);
  rec.bytes(body);
  return std::string(util::as_chars(rec.span()));
}

std::string mrt_record(uint16_t type, uint16_t subtype,
                       const mrt::ByteWriter& body) {
  return mrt_record(type, subtype, body,
                    static_cast<uint32_t>(body.size()));
}

/// Run the TABLE_DUMP_V2 reader over `bytes` and report (parsed, bad).
std::pair<size_t, size_t> scan_table_dump(const std::string& bytes) {
  std::istringstream in(bytes);
  mrt::TableDumpReader reader(in);
  mrt::TableDumpReader::Record record;
  size_t parsed = 0;
  while (reader.next(record)) ++parsed;
  return {parsed, reader.bad_records()};
}

std::pair<size_t, size_t> scan_bgp4mp(const std::string& bytes) {
  std::istringstream in(bytes);
  mrt::Bgp4mpReader reader(in);
  mrt::Bgp4mpRecord record;
  size_t parsed = 0;
  while (reader.next(record)) ++parsed;
  return {parsed, reader.bad_records()};
}

TEST(FuzzCorpus, TruncatedMrtHeader) {
  auto [parsed, bad] = scan_table_dump(std::string("\x00\x01\x02", 3));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, OversizedDeclaredLengthRejectedBeforeAllocation) {
  // Header declares a 4 GiB body. The reader must reject it at the
  // length cap -- reaching the allocation would OOM under ASan.
  mrt::ByteWriter empty;
  auto [parsed, bad] = scan_table_dump(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypeRibIpv4Unicast, empty,
                 0xFFFFFFFFu));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, DeclaredLengthLongerThanStream) {
  mrt::ByteWriter body;
  body.u32(0);  // 4 bytes present...
  auto [parsed, bad] = scan_table_dump(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypeRibIpv4Unicast, body,
                 100));  // ...100 declared
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, PeerIndexViewNameOverrunsBody) {
  mrt::ByteWriter body;
  body.u32(0x0A000001);
  body.u16(50);  // view name claims 50 bytes
  body.ascii("abc");
  auto [parsed, bad] = scan_table_dump(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypePeerIndexTable, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, NlriLengthExceedsFamilyWidth) {
  mrt::ByteWriter body;
  body.u32(0);   // sequence
  body.u8(96);   // /96 in an IPv4 record
  auto [parsed, bad] = scan_table_dump(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypeRibIpv4Unicast, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, AttributeOverrunsDeclaredBlock) {
  mrt::ByteWriter body;
  body.u32(0);                   // sequence
  body.u8(24);                   // /24
  body.bytes(std::to_array<uint8_t>({192, 0, 2}));
  body.u16(1);                   // one RIB entry
  body.u16(0);                   // peer index
  body.u32(0);                   // originated
  body.u16(4);                   // attr block: 4 bytes...
  body.u8(0x40);
  body.u8(2);                    // AS_PATH
  body.u8(200);                  // ...but attribute claims 200
  body.u8(0);
  auto [parsed, bad] = scan_table_dump(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypeRibIpv4Unicast, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, AsPathSegmentCountOverrunsAttribute) {
  mrt::ByteWriter attr;
  attr.u8(2);    // AS_SEQUENCE
  attr.u8(50);   // claims 50 hops
  attr.u32(65000);  // provides one

  mrt::ByteWriter body;
  body.u32(0);
  body.u8(24);
  body.bytes(std::to_array<uint8_t>({192, 0, 2}));
  body.u16(1);
  body.u16(0);
  body.u32(0);
  body.u16(static_cast<uint16_t>(attr.size() + 3));
  body.u8(0x40);
  body.u8(2);  // AS_PATH
  body.u8(static_cast<uint8_t>(attr.size()));
  body.bytes(attr);
  auto [parsed, bad] = scan_table_dump(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypeRibIpv4Unicast, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, AsSetSegmentIsTypedParseError) {
  mrt::ByteWriter attr;
  attr.u8(1);  // AS_SET (deprecated)
  attr.u8(1);
  attr.u32(65000);

  mrt::ByteWriter body;
  body.u32(0);
  body.u8(24);
  body.bytes(std::to_array<uint8_t>({192, 0, 2}));
  body.u16(1);
  body.u16(0);
  body.u32(0);
  body.u16(static_cast<uint16_t>(attr.size() + 3));
  body.u8(0x40);
  body.u8(2);
  body.u8(static_cast<uint8_t>(attr.size()));
  body.bytes(attr);
  auto [parsed, bad] = scan_table_dump(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypeRibIpv4Unicast, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, ZeroLengthAsPathParsesToEmptyPath) {
  // A zero-length AS_PATH attribute is structurally valid: the record
  // must parse (not crash, not count bad) and yield an empty path.
  mrt::ByteWriter body;
  body.u32(0);
  body.u8(24);
  body.bytes(std::to_array<uint8_t>({192, 0, 2}));
  body.u16(1);
  body.u16(0);
  body.u32(0);
  body.u16(3);   // attr block: flags, type, len=0
  body.u8(0x40);
  body.u8(2);    // AS_PATH
  body.u8(0);    // zero-length

  std::istringstream in(
      mrt_record(mrt::kTypeTableDumpV2, mrt::kSubtypeRibIpv4Unicast, body));
  mrt::TableDumpReader reader(in);
  mrt::TableDumpReader::Record record;
  ASSERT_TRUE(reader.next(record));
  ASSERT_TRUE(record.rib.has_value());
  ASSERT_EQ(record.rib->entries.size(), 1u);
  EXPECT_TRUE(record.rib->entries[0].path.empty());
  EXPECT_EQ(reader.bad_records(), 0u);
}

TEST(FuzzCorpus, Bgp4mpMessageLengthBelowHeaderSize) {
  mrt::ByteWriter body;
  body.u32(65000);  // peer asn
  body.u32(65001);  // local asn
  body.u16(0);      // ifindex
  body.u16(1);      // AFI v4
  body.u32(0x0A000001);
  body.u32(0x0A000002);
  for (int i = 0; i < 4; ++i) body.u32(0xFFFFFFFFu);  // marker
  body.u16(10);  // BGP message length < 19
  body.u8(2);    // UPDATE
  auto [parsed, bad] = scan_bgp4mp(
      mrt_record(mrt::kTypeBgp4mp, mrt::kSubtypeBgp4mpMessageAs4, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, Bgp4mpWithdrawnBlockOverrunsBody) {
  mrt::ByteWriter update;
  update.u16(60);  // withdrawn routes length overruns the message

  mrt::ByteWriter body;
  body.u32(65000);
  body.u32(65001);
  body.u16(0);
  body.u16(1);
  body.u32(0x0A000001);
  body.u32(0x0A000002);
  for (int i = 0; i < 4; ++i) body.u32(0xFFFFFFFFu);
  body.u16(static_cast<uint16_t>(19 + update.size()));
  body.u8(2);
  body.bytes(update);
  auto [parsed, bad] = scan_bgp4mp(
      mrt_record(mrt::kTypeBgp4mp, mrt::kSubtypeBgp4mpMessageAs4, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, Bgp4mpMpReachNextHopOverrunsAttribute) {
  mrt::ByteWriter attr;
  attr.u16(2);   // AFI v6
  attr.u8(1);    // SAFI unicast
  attr.u8(200);  // next-hop length overruns the attribute

  mrt::ByteWriter update;
  update.u16(0);  // no withdrawn
  update.u16(static_cast<uint16_t>(attr.size() + 3));
  update.u8(0x80);
  update.u8(14);  // MP_REACH_NLRI
  update.u8(static_cast<uint8_t>(attr.size()));
  update.bytes(attr);

  mrt::ByteWriter body;
  body.u32(65000);
  body.u32(65001);
  body.u16(0);
  body.u16(1);
  body.u32(0x0A000001);
  body.u32(0x0A000002);
  for (int i = 0; i < 4; ++i) body.u32(0xFFFFFFFFu);
  body.u16(static_cast<uint16_t>(19 + update.size()));
  body.u8(2);
  body.bytes(update);
  auto [parsed, bad] = scan_bgp4mp(
      mrt_record(mrt::kTypeBgp4mp, mrt::kSubtypeBgp4mpMessageAs4, body));
  EXPECT_EQ(parsed, 0u);
  EXPECT_EQ(bad, 1u);
}

TEST(FuzzCorpus, MalformedRpslLinesAreCountedNotFatal) {
  // A no-colon line, a continuation before any attribute, and an
  // attribute-less object must all be survivable and counted.
  const std::string text =
      "this line has no colon\n"
      "+ continuation with nothing to continue\n"
      "\n"
      "route: 192.0.2.0/24\n"
      "origin: AS64500\n"
      "\n";
  size_t malformed = 0;
  auto objects = irr::parse_rpsl(text, &malformed);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_EQ(objects[0].object_class(), "route");
  EXPECT_GE(malformed, 2u);
}

TEST(FuzzCorpus, RpslValueBombIsCappedAndCounted) {
  // Continuation lines that would grow one value past the cap are dropped
  // and counted instead of accumulated without bound.
  std::string text = "remarks: start\n";
  std::string filler(8000, 'x');
  for (int i = 0; i < 12; ++i) {
    text += "+ " + filler + "\n";
  }
  text += "\n";
  size_t malformed = 0;
  auto objects = irr::parse_rpsl(text, &malformed);
  ASSERT_EQ(objects.size(), 1u);
  EXPECT_LE(objects[0].attributes[0].value.size(),
            irr::RpslParser::kMaxValueLength);
  EXPECT_GE(malformed, 1u);
}

TEST(FuzzCorpus, VrpCsvRowErrorsAreTypedAndLocated) {
  const std::string text =
      "URI,ASN,IP Prefix,Max Length,Not Before,Not After\n"
      "rsync://x,notanasn,192.0.2.0/24,24,,\n"
      "rsync://y,AS64500,999.999.0.0/24,24,,\n"
      "rsync://z,AS64500,192.0.2.0/24,99,,\n"
      "rsync://ok,AS64500,192.0.2.0/24,24,,\n";
  std::istringstream in(text);
  rpki::VrpCsvStats stats;
  auto vrps = rpki::read_vrp_csv(in, stats);
  EXPECT_EQ(vrps.size(), 1u);
  EXPECT_EQ(stats.rows, 4u);
  EXPECT_EQ(stats.skipped, 3u);
  EXPECT_NE(stats.first_error.find("line 2"), std::string::npos)
      << stats.first_error;
  EXPECT_NE(stats.first_error.find("ASN"), std::string::npos)
      << stats.first_error;
}

// ---- randomized sweeps -------------------------------------------------

std::string random_bytes(util::Rng& rng, size_t n) {
  std::string out(n, '\0');
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(rng.uniform(256));
  }
  return out;
}

class FuzzP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzP, TableDumpReaderSurvivesGarbage) {
  util::Rng rng(GetParam());
  std::istringstream in(random_bytes(rng, 4096));
  mrt::TableDumpReader reader(in);
  mrt::TableDumpReader::Record record;
  size_t records = 0;
  while (reader.next(record) && records < 10000) ++records;
  SUCCEED();  // not crashing/hanging is the property
}

TEST_P(FuzzP, Bgp4mpReaderSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xF00D);
  std::istringstream in(random_bytes(rng, 4096));
  mrt::Bgp4mpReader reader(in);
  mrt::Bgp4mpRecord record;
  size_t records = 0;
  while (reader.next(record) && records < 10000) ++records;
  SUCCEED();
}

TEST_P(FuzzP, TableDumpReaderSurvivesBitFlips) {
  // Start from a valid dump, flip bytes, re-read.
  util::Rng rng(GetParam() ^ 0xBEEF);
  bgp::Rib rib;
  uint32_t peer = rib.add_peer(net::Asn(65000));
  for (int i = 0; i < 20; ++i) {
    rib.insert(
        net::Prefix(net::IpAddress::v4(static_cast<uint32_t>(rng.next())),
                    24),
        peer,
        bgp::AsPath({net::Asn(65000),
                     net::Asn(static_cast<uint32_t>(1 + rng.uniform(1000)))}));
  }
  std::ostringstream out;
  mrt::TableDumpWriter writer(out, 1);
  writer.write_rib(rib, "fuzz");
  std::string bytes = out.str();
  for (int flip = 0; flip < 32; ++flip) {
    bytes[rng.uniform(bytes.size())] ^=
        static_cast<char>(1 << rng.uniform(8));
  }
  std::istringstream in(bytes);
  size_t bad = 0;
  bgp::Rib parsed = mrt::TableDumpReader::read_rib(in, &bad);
  // Whatever survives must be structurally sane.
  for (const auto& po : parsed.prefix_origins()) {
    EXPECT_LE(po.prefix.length(),
              net::family_bits(po.prefix.family()));
  }
}

TEST_P(FuzzP, RpslParserSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xCAFE);
  // Mix of printable noise, colons, and newlines.
  std::string text;
  for (int i = 0; i < 2000; ++i) {
    uint64_t pick = rng.uniform(10);
    if (pick < 6) {
      text += static_cast<char>(32 + rng.uniform(95));
    } else if (pick < 8) {
      text += ':';
    } else {
      text += '\n';
    }
  }
  size_t malformed = 0;
  auto objects = irr::parse_rpsl(text, &malformed);
  for (const auto& obj : objects) {
    EXPECT_FALSE(obj.attributes.empty());
    for (const auto& attr : obj.attributes) {
      EXPECT_FALSE(attr.name.empty());
    }
  }
}

TEST_P(FuzzP, CsvReaderSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xD00D);
  std::string text = random_bytes(rng, 2048);
  // CsvReader is line-oriented; NUL bytes and unbalanced quotes must not
  // hang it.
  auto rows = util::parse_csv(text);
  size_t cells = 0;
  for (const auto& row : rows) cells += row.size();
  EXPECT_GE(cells, rows.size());
}

TEST_P(FuzzP, PrefixParserSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xFEED);
  for (int i = 0; i < 500; ++i) {
    std::string s;
    size_t len = rng.uniform(24);
    for (size_t c = 0; c < len; ++c) {
      static const char kAlphabet[] = "0123456789abcdef.:/ x";
      s += kAlphabet[rng.uniform(sizeof(kAlphabet) - 1)];
    }
    auto prefix = net::Prefix::parse(s);
    if (prefix) {
      // Anything accepted must round-trip cleanly.
      EXPECT_EQ(net::Prefix::parse(prefix->to_string()), *prefix) << s;
    }
  }
}

TEST_P(FuzzP, VrpCsvReaderSurvivesGarbage) {
  util::Rng rng(GetParam() ^ 0xABCD);
  std::string text = "URI,ASN,IP Prefix,Max Length\n" +
                     random_bytes(rng, 1024);
  std::istringstream in(text);
  size_t skipped = 0;
  auto vrps = rpki::read_vrp_csv(in, &skipped);
  for (const auto& vrp : vrps) {
    EXPECT_TRUE(vrp.well_formed());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzP,
                         ::testing::Values(0xA1, 0xB2, 0xC3, 0xD4, 0xE5,
                                           0xF6));

}  // namespace
}  // namespace manrs
