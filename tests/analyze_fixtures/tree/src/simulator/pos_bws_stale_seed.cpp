// Positive: a fresh batch workspace is stale until begin(); seeding a
// lane would leak the previous sweep's keys.
void f_bws_stale_seed() {
  BatchWorkspace ws;
  ws.seed_origin(7, 0);
}
