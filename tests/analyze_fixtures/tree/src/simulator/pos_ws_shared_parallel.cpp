// Positive: one workspace captured by reference into a parallel_for
// lambda -- every slot mutates the same scratch state.
void f_shared_ws(unsigned long n) {
  PropagationWorkspace ws;
  ws.begin(0);
  util::parallel_for(n, [&](unsigned long i) {
    ws.install(i);
  });
}
