// Negative: unions outside the wire-parse dirs are out of scope.
union PlainTag {
  unsigned int u;
  int i;
};
