// Negative: the slot index is a linear function of the loop variable
// with a nonzero coefficient, so writes land in disjoint elements.
#include <cstddef>
#include <cstdint>
#include <vector>
void f_slot_ok(std::size_t n, std::vector<std::uint64_t>& out) {
  util::parallel_for(n, [&](std::size_t i) {
    std::size_t slot = 2 * i + 1;
    out[slot] = i;
  });
}
