// Negative: per-slot workspaces indexed by the loop variable are the
// sanctioned parallel pattern (vector elements are not one shared
// scratch object).
void f_per_slot(std::vector<PropagationWorkspace>& slots) {
  util::parallel_for(slots.size(), [&](unsigned long i) {
    slots[i].begin(0);
    slots[i].install(i);
  });
}
