// Positive: the slot index is a constant, not a function of the loop
// variable -- every iteration writes the same element concurrently.
#include <cstddef>
#include <cstdint>
#include <vector>
void f_slot_race(std::size_t n, std::vector<std::uint64_t>& out) {
  util::parallel_for(n, [&](std::size_t i) {
    std::size_t slot = 0;
    out[slot] += i;
  });
}
