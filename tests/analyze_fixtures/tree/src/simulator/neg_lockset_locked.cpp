// Negative: the write to the captured accumulator happens under a
// scoped lock that stays live to the end of the lambda body.
#include <cstddef>
#include <mutex>
void f_locked(std::size_t n) {
  std::size_t total = 0;
  std::mutex mu;
  util::parallel_for(n, [&](std::size_t i) {
    std::scoped_lock lk(mu);
    total += i;
  });
  (void)total;
}
