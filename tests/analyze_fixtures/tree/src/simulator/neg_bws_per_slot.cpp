// Negative: per-slot batch workspaces indexed by the loop variable are
// the sanctioned parallel pattern (vector elements are not one shared
// scratch object).
void f_bws_per_slot(std::vector<BatchWorkspace>& slots) {
  util::parallel_for(slots.size(), [&](unsigned long i) {
    slots[i].begin(64, 8);
    slots[i].seed_origin(static_cast<int>(i), 0);
  });
}
