// Negative: every write lands in the slot indexed by the loop
// variable, so threads never touch the same element.
#include <cstddef>
#include <vector>
void f_slots(std::vector<int>& out) {
  util::parallel_for(out.size(), [&](std::size_t i) {
    out[i] = static_cast<int>(i) * 2;
  });
}
