// Negative: the sanctioned sort-then-scan shape -- the accumulator is
// sorted before use, so iteration order cannot leak into the result.
#include <algorithm>
#include <unordered_map>
#include <vector>
std::vector<int> f_sorted(const std::unordered_map<int, int>& scores) {
  std::vector<int> keys;
  for (const auto& [key, value] : scores) {
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}
