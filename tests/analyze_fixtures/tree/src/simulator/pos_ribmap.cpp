// Positive: a prefix-keyed tree map outside src/bgp/rib.*.
#include <map>
namespace net {
struct Prefix {};
}
struct RouteTable {
  std::map<net::Prefix, int> table;
};
