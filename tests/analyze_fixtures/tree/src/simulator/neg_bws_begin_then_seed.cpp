// Negative: begin() sizes and clears the lane arrays before each
// sweep's seeding -- the sanctioned serial pattern.
void f_bws_begin_then_seed() {
  BatchWorkspace ws;
  ws.begin(64, 8);
  ws.seed_origin(1, 0);
  ws.seed_origin(2, 1);
  ws.begin(64, 8);
  ws.seed_origin(3, 0);
}
