// Positive: the inner parallel_for's [&] lambda touches the outer
// loop index by reference.
void f_nested(unsigned long n) {
  util::parallel_for(n, [&](unsigned long i) {
    util::parallel_for(4, [&](unsigned long j) {
      sink(i + j);
    });
  });
}
