// Negative: memcpy outside the wire-parse dirs is not this rule's
// business.
#include <cstring>
void f_memcpy_ok(void* dst, const void* src, unsigned long n) {
  std::memcpy(dst, src, n);
}
