// Positive: a fresh workspace is stale until begin(); install()
// would leak the previous epoch's stamps.
void f_stale_install() {
  PropagationWorkspace ws;
  ws.install(7);
}
