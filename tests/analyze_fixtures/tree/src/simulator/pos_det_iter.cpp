// Positive: range-for over an unordered_map mutating an accumulator
// that is never sorted -- output depends on stdlib iteration order.
#include <unordered_map>
#include <vector>
std::vector<int> f_collect(const std::unordered_map<int, int>& scores) {
  std::vector<int> out;
  for (const auto& [key, value] : scores) {
    out.push_back(key + value);
  }
  return out;
}
