// Negative: a plain serial loop inside a parallel_for body shares
// nothing across threads.
void f_serial_inner(unsigned long n) {
  util::parallel_for(n, [&](unsigned long i) {
    for (unsigned long j = 0; j < 4; ++j) {
      sink(i + j);
    }
  });
}
