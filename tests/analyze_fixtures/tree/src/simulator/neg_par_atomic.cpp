// Negative: the captured accumulator is atomic, so the concurrent
// writes are synchronized.
#include <atomic>
#include <cstddef>
void f_atomic(std::size_t n) {
  std::atomic<long> total{0};
  util::parallel_for(n, [&](std::size_t i) {
    total += static_cast<long>(i);
  });
}
