// Positive: a [&] lambda given to parallel_for writes to a captured
// accumulator without indexing by the loop variable -- a data race.
#include <cstddef>
void f_race(std::size_t n) {
  std::size_t total = 0;
  util::parallel_for(n, [&](std::size_t i) {
    total += i;
  });
  (void)total;
}
