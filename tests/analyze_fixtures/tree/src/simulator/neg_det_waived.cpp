// Negative: an order-independent fold under an explicit waiver.
#include <unordered_map>
int f_total(const std::unordered_map<int, int>& scores) {
  int total = 0;
  // lint-ok: commutative sum, order-independent
  for (const auto& [key, value] : scores) {
    total += value;
  }
  return total;
}
