// Positive: one batch workspace captured by reference into a
// parallel_for lambda -- every slot sweeps over the same lane arrays.
void f_bws_shared(unsigned long n) {
  BatchWorkspace ws;
  ws.begin(64, 8);
  util::parallel_for(n, [&](unsigned long i) {
    ws.seed_origin(static_cast<int>(i), 0);
  });
}
