// Negative: the outer index is re-bound by value in the inner capture
// list, so each inner task reads a private copy.
void f_value_capture(unsigned long n) {
  util::parallel_for(n, [&](unsigned long i) {
    util::parallel_for(4, [&, i](unsigned long j) {
      sink(i + j);
    });
  });
}
