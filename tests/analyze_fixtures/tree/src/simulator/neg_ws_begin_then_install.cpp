// Negative: begin() resets the epoch before each reuse -- the
// sanctioned serial pattern.
void f_begin_then_install() {
  PropagationWorkspace ws;
  ws.begin(1);
  ws.install(2);
  ws.begin(2);
  ws.install(3);
}
