// Positive: the RAII lock is released before the write. The old
// lexical heuristic accepted any lock type named in the body; the
// lockset analysis sees the write outside the live region.
#include <cstddef>
#include <mutex>
void f_unlocked(std::size_t n) {
  std::size_t total = 0;
  std::mutex mu;
  util::parallel_for(n, [&](std::size_t i) {
    std::unique_lock lk(mu);
    lk.unlock();
    total += i;
  });
  (void)total;
}
