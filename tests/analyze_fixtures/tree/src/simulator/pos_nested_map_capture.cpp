// Positive: parallel_map nested in a parallel_for, with a [&] lambda
// reading the outer loop index.
void f_nested_map(unsigned long n) {
  util::parallel_for(n, [&](unsigned long i) {
    auto rows = util::parallel_map<int>(3, [&](unsigned long j) {
      return static_cast<int>(i * j);
    });
    (void)rows;
  });
}
