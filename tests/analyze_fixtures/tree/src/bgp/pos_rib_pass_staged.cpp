// Positive: a staged Rib handed to a reader; the callee summary
// reports the hidden finalize at the call site.
unsigned long dump_all(Rib& rib) {
  return rib.entry_count();
}
void f_pass_staged() {
  Rib rib;
  rib.insert(1, 2, 3);
  dump_all(rib);
}
