// Negative: the callee summary sees a finalized Rib at the call site,
// so the read inside the helper is fine.
unsigned long count_rows(Rib& rib) {
  return rib.entry_count();
}
void f_pass_finalized() {
  Rib rib;
  rib.insert(1, 2, 3);
  rib.finalize();
  count_rows(rib);
}
