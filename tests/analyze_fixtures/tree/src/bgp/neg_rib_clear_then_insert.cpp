// Negative: clear() returns a finalized Rib to the clean build state;
// the second insert batch is legal.
void f_clear_then_insert() {
  Rib rib;
  rib.insert(1, 2, 3);
  rib.finalize();
  rib.clear();
  rib.insert(4, 5, 6);
  rib.finalize();
}
