// Positive: withdrawing from a finalized Rib without begin_delta()
// mutates a sealed table.
void f_erase_after_finalize() {
  Rib rib;
  rib.insert(1, 2, 3);
  rib.finalize();
  rib.erase(1, 2);
}
