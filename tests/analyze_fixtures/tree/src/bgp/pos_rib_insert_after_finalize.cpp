// Positive: insert after finalize() re-stages into a sealed table;
// clear() is required between build cycles.
void f_insert_after_finalize() {
  Rib rib;
  rib.insert(1, 2, 3);
  rib.finalize();
  rib.insert(4, 5, 6);
}
