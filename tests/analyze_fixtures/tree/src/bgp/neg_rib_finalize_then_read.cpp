// Negative: the sanctioned build cycle -- finalize() after the last
// insert, reads afterwards.
void f_finalize_then_read() {
  Rib rib;
  rib.insert(1, 2, 3);
  rib.finalize();
  auto n = rib.entry_count();
  (void)n;
}
