// Positive: entry_count() while inserts are staged triggers the
// hidden lazy finalize inside a read accessor.
void f_read_staged() {
  Rib rib;
  rib.insert(1, 2, 3);
  auto n = rib.entry_count();
  (void)n;
}
