// Negative: begin_delta() reopens a finalized Rib for an update-stream
// fold; the staged erase/insert batch seals again at finalize().
void f_begin_delta_fold() {
  Rib rib;
  rib.insert(1, 2, 3);
  rib.finalize();
  rib.begin_delta();
  rib.erase(1, 2);
  rib.insert(4, 5, 6);
  rib.finalize();
}
