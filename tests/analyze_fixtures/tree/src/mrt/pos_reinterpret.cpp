// Positive: reinterpret_cast outside the audited bridge.
const int* f_reinterpret(const char* p) {
  return reinterpret_cast<const int*>(p);
}
