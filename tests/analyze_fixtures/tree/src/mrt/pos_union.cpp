// Positive: a union definition in a wire-parse dir (punning heuristic).
union PunBits {
  unsigned int u;
  float f;
};
