// Negative: every caller wraps the helper in the per-record try, so
// the ParseError a short read throws is already handled.
void parse_one(const Bytes& data) {
  ByteCursor c(data);
  auto v = c.u64();
  (void)v;
}
void f_caller(const Bytes& data) {
  try {
    parse_one(data);
  } catch (...) {
  }
}
