// Positive: the guard proves 8 bytes but the reads consume 12 -- the
// can_read(8)-then-read-12 class the binary cursor-guard typestate
// cannot see (the guard exists, it is just too narrow).
void f_width_fixed(const Bytes& data) {
  ByteCursor c(data);
  if (!c.can_read(8)) return;
  auto a = c.u64();
  auto b = c.u32();
  (void)a;
  (void)b;
}
