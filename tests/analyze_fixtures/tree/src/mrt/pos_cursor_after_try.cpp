// Positive: the try block covers earlier work; the read after it has
// neither a guard nor an owning boundary.
void f_after_try(const Bytes& data) {
  ByteCursor c(data);
  try {
    first_pass(data);
  } catch (...) {
  }
  auto v = c.u32();
  (void)v;
}
