// Positive: a waiver spelled inside a raw string is data, not a
// comment -- the memcpy on the same line still fires.
void f_rawstring(void* dst, const void* src, unsigned long n) {
  const char* t = R"(// lint-ok: not a waiver)"; std::memcpy(dst, src, n);
  (void)t;
}
