// Positive: a read with no dominating bounds guard and no enclosing
// try -- a truncated input aborts the scan.
void f_unguarded(const Bytes& data) {
  ByteCursor c(data);
  auto v = c.u16();
  (void)v;
}
