// Positive: the callee consumes 8 bytes through its by-reference
// cursor parameter on every path before guarding on its own, so the
// caller's can_read(4) proof cannot cover the call.
#include <cstdint>
std::uint64_t read_fixed8(ByteCursor& c) {
  return c.u64();
}
void f_width_caller(const Bytes& data) {
  ByteCursor c(data);
  if (!c.can_read(4)) return;
  auto v = read_fixed8(c);
  (void)v;
}
