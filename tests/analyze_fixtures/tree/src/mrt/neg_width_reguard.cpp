// Negative: the cursor re-guards after consuming its first proof, so
// every read is covered by the budget live at that point.
void f_width_reguard(const Bytes& data) {
  ByteCursor c(data);
  if (!c.can_read(4)) return;
  auto a = c.u32();
  if (!c.can_read(8)) return;
  auto b = c.u64();
  (void)a;
  (void)b;
}
