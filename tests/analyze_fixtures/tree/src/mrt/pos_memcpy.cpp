// Positive: memcpy in a wire-parse dir.
#include <cstring>
void f_memcpy(void* dst, const void* src, unsigned long n) {
  std::memcpy(dst, src, n);
}
