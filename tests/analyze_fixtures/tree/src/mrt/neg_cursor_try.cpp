// Negative: the record try block owns the ParseError; reads inside it
// are the sanctioned pattern.
void f_try_reads(const Bytes& data) {
  ByteCursor c(data);
  try {
    auto a = c.u16();
    auto b = c.bytes(4);
    (void)a;
    (void)b;
  } catch (...) {
  }
}
