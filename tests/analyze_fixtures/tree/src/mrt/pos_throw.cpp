// Positive: a non-ParseError throw inside a wire-parse dir bypasses
// the per-record error boundary.
#include <stdexcept>
void f_bad_throw() {
  throw std::runtime_error("bad header");
}
