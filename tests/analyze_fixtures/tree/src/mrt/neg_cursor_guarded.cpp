// Negative: the remaining() check dominates the reads.
void f_guarded(const Bytes& data) {
  ByteCursor c(data);
  if (c.remaining() >= 6) {
    auto a = c.u16();
    auto b = c.u32();
    (void)a;
    (void)b;
  }
}
