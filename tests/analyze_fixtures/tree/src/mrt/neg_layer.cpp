#include "netbase/prefix.h"
#include <vector>
// Negative: mrt -> netbase is a declared edge; angled includes and
// same-module includes are never layer edges.
#include "mrt/wire.h"
void f_layer_ok() {}
