// Negative: the same read shape as pos_width_fixed, but the guard
// proves exactly the 12 bytes the reads consume.
void f_width_exact(const Bytes& data) {
  ByteCursor c(data);
  if (!c.can_read(12)) return;
  auto a = c.u64();
  auto b = c.u32();
  (void)a;
  (void)b;
}
