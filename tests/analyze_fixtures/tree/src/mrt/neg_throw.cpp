// Negative: ParseError is the boundary type, and a bare rethrow
// propagates whatever the boundary already admitted.
namespace util {
struct ParseError {};
}
void f_good_throw() {
  throw util::ParseError{};
}
void f_rethrow() {
  try {
    f_good_throw();
  } catch (...) {
    throw;
  }
}
