// Negative: the tracked-variable guard width covers the read exactly.
#include <cstddef>
void f_width_var_ok(const Bytes& data) {
  ByteCursor c(data);
  std::size_t len = 6;
  if (!c.can_read(len)) return;
  auto v = c.bytes(len);
  (void)v;
}
