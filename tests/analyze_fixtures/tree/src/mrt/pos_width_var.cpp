// Positive: the guard width and read width are a tracked local; the
// read consumes two bytes more than the guard proved.
#include <cstddef>
void f_width_var(const Bytes& data) {
  ByteCursor c(data);
  std::size_t len = 4;
  if (!c.can_read(len)) return;
  auto v = c.bytes(len + 2);
  (void)v;
}
