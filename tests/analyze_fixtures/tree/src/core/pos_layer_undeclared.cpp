// Positive: the 'core' module is not declared in this tree's
// layers.txt at all.
void f_undeclared_module() {}
