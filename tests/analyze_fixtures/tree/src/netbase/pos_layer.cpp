#include "simulator/collector.h"
// Positive (line 1): netbase may not reach up into simulator.
void f_layer_up() {}
