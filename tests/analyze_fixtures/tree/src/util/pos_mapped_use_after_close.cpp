// Positive: every span from bytes() dies with the mapping; reading
// the bytes after close() is a dangling view.
void f_use_after_close() {
  MappedFile file;
  file.open("dump.mrt");
  auto view = file.bytes();
  file.close();
  file.bytes();
}
