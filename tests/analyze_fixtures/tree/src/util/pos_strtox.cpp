// Positive: std::stoi throws on malformed input.
#include <string>
int f_stoi(const std::string& s) {
  return std::stoi(s);
}
