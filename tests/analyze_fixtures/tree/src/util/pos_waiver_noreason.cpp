// Positive: a bare "lint-ok:" with no reason waives nothing.
void f_not_waived(char* d, const char* s) {
  strcpy(d, s);  // lint-ok:
}
