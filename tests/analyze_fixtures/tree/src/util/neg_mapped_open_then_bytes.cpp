// Negative: open() -> bytes()/size() -> close() is the sanctioned
// mapping lifecycle.
void f_open_then_bytes() {
  MappedFile file;
  file.open("dump.mrt");
  auto view = file.bytes();
  auto len = file.size();
  file.close();
}
