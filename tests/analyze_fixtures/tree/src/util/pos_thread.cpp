// Positive: spawning a raw std::thread bypasses the pool.
#include <thread>
void f_thread() {
  std::thread t([] {});
  t.join();
}
