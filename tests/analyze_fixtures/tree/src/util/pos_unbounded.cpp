// Positive: strcpy writes without a length bound.
void f_strcpy(char* dst, const char* src) {
  strcpy(dst, src);
}
