// Positive: the inline waiver suppresses no finding -- the line it
// sits on is clean, so the comment is stale.
void f_unused_waiver(int* dst, const int* src) {
  *dst = *src;  // lint-ok: nothing here ever fired
}
