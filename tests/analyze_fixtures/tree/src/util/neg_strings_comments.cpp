// Negative: banned names inside comments, string literals, and raw
// strings are not code. reinterpret_cast<int*>(p) in this comment is
// invisible to the token rules.
const char* kDoc =
    "memcpy(dst, src, n); strcpy(a, b); std::hash<int> h; union U {";
/* std::thread t; atoi("7"); std::stoi(s); */
const char* kRaw = R"(std::stoi(s); reinterpret_cast<char*>(p))";
