// Positive: a standalone stale waiver; the next code line is clean.
void f_unused_standalone(int a, int* out) {
  // lint-ok: stale waiver over a clean line
  *out = a;
}
