// Negative: a member call named strcpy is not the C library function.
struct Wrapper;
void f_member_strcpy(Wrapper& w, char* d, const char* s) {
  w.strcpy(d, s);
}
