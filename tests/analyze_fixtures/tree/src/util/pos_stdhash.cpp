// Positive: std::hash named in src/ (stdlib-specific hash values).
#include <functional>
unsigned long f_hash(int v) {
  return std::hash<int>{}(v);
}
