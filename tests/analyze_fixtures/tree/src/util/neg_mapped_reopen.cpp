// Negative: reopening closes the previous mapping first; spans taken
// after the second open() view the new mapping and are valid.
void f_reopen_then_bytes() {
  MappedFile file;
  file.open("a.mrt");
  file.close();
  file.open("b.mrt");
  auto view = file.bytes();
  file.close();
}
