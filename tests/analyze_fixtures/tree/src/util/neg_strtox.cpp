// Negative: a member function named stoi is not std::stoi, and the
// spelling inside a comment or string is not a call at all.
#include <string>
struct NumberParser {
  int stoi(const std::string&) { return 0; }
};
int f_member_stoi(NumberParser& p, const std::string& s) {
  const char* doc = "never call std::stoi(s) here";  // std::stoi(s)
  (void)doc;
  return p.stoi(s);
}
