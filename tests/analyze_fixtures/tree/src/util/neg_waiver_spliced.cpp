// Negative: a line-spliced waiver comment still covers its own line;
// the backslash continues the comment, not the code.
void f_spliced(char* d, const char* s) {
  strcpy(d, s);  // lint-ok: spliced waiver, reason continues \
onto the next physical line
}
