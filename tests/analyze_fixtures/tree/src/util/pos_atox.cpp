// Positive: atoi has UB on out-of-range input.
int f_atoi(const char* s) {
  return atoi(s);
}
