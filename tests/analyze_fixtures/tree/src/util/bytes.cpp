// Negative: this path is the allowlisted aliasing bridge, so the
// reinterpret_cast below is sanctioned.
const int* f_bridge(const char* p) {
  return reinterpret_cast<const int*>(p);
}
