// Positive: the callee summary reads the mapping; passing a
// never-opened MappedFile reports the dangling read at the call site.
unsigned long total_bytes(MappedFile& file) {
  return file.bytes().size();
}
void f_pass_closed() {
  MappedFile file;
  total_bytes(file);
}
