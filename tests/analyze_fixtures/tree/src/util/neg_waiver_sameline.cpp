// Negative: a same-line waiver with a reason covers its own line.
void f_waived(char* d, const char* s) {
  strcpy(d, s);  // lint-ok: fixture exercising the same-line waiver
}
