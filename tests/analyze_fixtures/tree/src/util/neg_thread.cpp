// Negative: std::thread::hardware_concurrency is a query, not a spawn.
#include <thread>
unsigned f_hw() {
  return std::thread::hardware_concurrency();
}
