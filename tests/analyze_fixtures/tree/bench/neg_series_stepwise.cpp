// Negative: the sanctioned step-wise day -- begin_day(), apply(),
// recompute() -- then the next day's cycle.
void f_stepwise() {
  SnapshotSeries series;
  auto delta = series.begin_day();
  series.apply(delta);
  series.recompute();
  auto next = series.begin_day();
  series.apply(next);
  series.recompute();
}
// Negative: recomputing the current day again is idempotent and legal.
void f_recompute_again() {
  SnapshotSeries series;
  auto delta = series.begin_day();
  series.apply(delta);
  series.recompute();
  series.recompute();
}
