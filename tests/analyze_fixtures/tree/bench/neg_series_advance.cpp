// Negative: advance() is the one-shot day and loops freely; accessors
// and cold_rebuild() never touch the day protocol.
void f_advance_loop() {
  SnapshotSeries series;
  series.advance();
  series.advance();
  auto cold = series.cold_rebuild(1);
  auto stats = series.last_stats();
  (void)cold;
  (void)stats;
}
