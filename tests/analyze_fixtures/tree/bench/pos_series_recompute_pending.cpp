// Positive: the day's delta must be apply()-ed before recompute() --
// skipping apply() leaves the propagation cache un-invalidated and
// recompute() serves stale results.
void f_recompute_pending() {
  SnapshotSeries series;
  auto delta = series.begin_day();
  series.recompute();
  (void)delta;
}
