// Positive: a consumed delta must not be apply()-ed twice -- the staged
// stores would fold the same announce/withdraw ops a second time.
void f_reapply() {
  SnapshotSeries series;
  auto delta = series.begin_day();
  series.apply(delta);
  series.apply(delta);
  series.recompute();
}
