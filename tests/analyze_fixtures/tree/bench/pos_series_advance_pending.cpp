// Positive: advance() is the one-shot day and may not interleave with
// an outstanding step-wise delta.
void f_advance_pending() {
  SnapshotSeries series;
  auto delta = series.begin_day();
  series.advance();
  (void)delta;
}
