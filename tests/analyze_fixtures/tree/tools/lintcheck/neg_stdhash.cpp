// Negative: std-hash is scoped to src/; tools may hash locally.
#include <functional>
unsigned long f_tool_hash(int v) {
  return std::hash<int>{}(v);
}
