#include "core/observatory.h"

#include <gtest/gtest.h>

namespace manrs::core {
namespace {

using irr::IrrStatus;
using net::Asn;
using net::Prefix;
using rpki::RpkiStatus;

TEST(ReadinessBucket, Thresholds) {
  EXPECT_EQ(bucket_for(100.0), ReadinessBucket::kReady);
  EXPECT_EQ(bucket_for(95.0), ReadinessBucket::kReady);
  EXPECT_EQ(bucket_for(94.9), ReadinessBucket::kAspiring);
  EXPECT_EQ(bucket_for(80.0), ReadinessBucket::kAspiring);
  EXPECT_EQ(bucket_for(79.9), ReadinessBucket::kLagging);
  EXPECT_EQ(bucket_for(0.0), ReadinessBucket::kLagging);
  EXPECT_EQ(to_string(ReadinessBucket::kAspiring), "aspiring");
}

struct Fixture {
  ManrsRegistry registry;
  irr::IrrRegistry irr_registry;
  PeeringDb peeringdb;
  std::vector<ihr::PrefixOriginRecord> origins;
  std::vector<ihr::TransitRecord> transits;
  util::Date as_of{2022, 5, 1};

  Fixture() {
    Participant perfect;
    perfect.org_id = "org-good";
    perfect.program = Program::kIsp;
    perfect.joined = util::Date(2020, 1, 1);
    perfect.registered_ases.push_back(Asn(1));
    registry.add_participant(perfect);

    Participant bad;
    bad.org_id = "org-bad";
    bad.program = Program::kIsp;
    bad.joined = util::Date(2020, 1, 1);
    bad.registered_ases.push_back(Asn(2));
    registry.add_participant(bad);

    // AS1: perfectly registered origination + contact; no transit.
    ihr::PrefixOriginRecord good;
    good.prefix = Prefix::must_parse("10.0.0.0/24");
    good.origin = Asn(1);
    good.rpki = RpkiStatus::kValid;
    good.irr = IrrStatus::kValid;
    origins.push_back(good);
    auto& db = irr_registry.add_database("RIPE", true);
    irr::AutNumObject aut;
    aut.asn = Asn(1);
    aut.contacts.push_back("NOC-GOOD");
    db.add_aut_num(aut);

    // AS2: half its originations unconformant, all customer transits
    // unconformant, no contact anywhere.
    for (int i = 0; i < 2; ++i) {
      ihr::PrefixOriginRecord record;
      record.prefix = Prefix::must_parse(i == 0 ? "20.0.0.0/24"
                                                : "20.0.1.0/24");
      record.origin = Asn(2);
      record.rpki = i == 0 ? RpkiStatus::kValid : RpkiStatus::kInvalidAsn;
      record.irr = IrrStatus::kNotFound;
      origins.push_back(record);
    }
    ihr::TransitRecord transit;
    transit.prefix = Prefix::must_parse("30.0.0.0/24");
    transit.origin = Asn(5);
    transit.transit = Asn(2);
    transit.via_customer = true;
    transit.rpki = RpkiStatus::kInvalidAsn;
    transit.irr = IrrStatus::kNotFound;
    transits.push_back(transit);
  }

  ObservatoryInputs inputs() {
    return ObservatoryInputs{registry,  irr_registry, peeringdb,
                             origins,   transits,     as_of};
  }
};

TEST(Observatory, PerfectParticipantIsReady) {
  Fixture f;
  auto readiness = score_participants(f.inputs());
  ASSERT_EQ(readiness.size(), 2u);
  const auto& good = readiness[0];
  EXPECT_EQ(good.org_id, "org-good");
  EXPECT_DOUBLE_EQ(good.action1, 100.0);  // no transit -> 100
  EXPECT_DOUBLE_EQ(good.action3, 100.0);
  EXPECT_DOUBLE_EQ(good.action4, 100.0);
  EXPECT_DOUBLE_EQ(good.overall, 100.0);
  EXPECT_EQ(good.bucket, ReadinessBucket::kReady);
}

TEST(Observatory, LaggardScoresLow) {
  Fixture f;
  auto readiness = score_participants(f.inputs());
  const auto& bad = readiness[1];
  EXPECT_EQ(bad.org_id, "org-bad");
  EXPECT_DOUBLE_EQ(bad.action4, 50.0);   // 1 of 2 originations conformant
  EXPECT_DOUBLE_EQ(bad.action1, 0.0);    // all customer transit unconformant
  EXPECT_DOUBLE_EQ(bad.action3, 0.0);    // no contact
  EXPECT_DOUBLE_EQ(bad.overall, (2 * 0.0 + 0.0 + 2 * 50.0) / 5.0);
  EXPECT_EQ(bad.bucket, ReadinessBucket::kLagging);
}

TEST(Observatory, PeeringDbContactCountsTowardAction3) {
  Fixture f;
  f.peeringdb.add(PeeringDbNet{Asn(2), "bad", "noc@bad.example",
                               util::Date(2022, 4, 1)});
  auto readiness = score_participants(f.inputs());
  EXPECT_DOUBLE_EQ(readiness[1].action3, 100.0);
}

TEST(Observatory, SummaryBucketsAndMeans) {
  Fixture f;
  auto readiness = score_participants(f.inputs());
  auto summary = summarize(readiness);
  EXPECT_EQ(summary.ready, 1u);
  EXPECT_EQ(summary.lagging, 1u);
  EXPECT_EQ(summary.aspiring, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_action4, 75.0);
  EXPECT_DOUBLE_EQ(summary.mean_overall, (100.0 + 20.0) / 2.0);
}

TEST(Observatory, EmptySummary) {
  auto summary = summarize({});
  EXPECT_EQ(summary.ready + summary.aspiring + summary.lagging, 0u);
  EXPECT_DOUBLE_EQ(summary.mean_overall, 0.0);
}

}  // namespace
}  // namespace manrs::core
