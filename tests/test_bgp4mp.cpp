#include "mrt/bgp4mp.h"

#include <gtest/gtest.h>

#include <sstream>

#include "util/bytes.h"
#include "util/rng.h"

namespace manrs::mrt {
namespace {

using net::Asn;
using net::Prefix;

bgp::AsPath path(std::initializer_list<uint32_t> hops) {
  std::vector<Asn> v;
  for (uint32_t h : hops) v.emplace_back(h);
  return bgp::AsPath(std::move(v));
}

Bgp4mpRecord make_record() {
  Bgp4mpRecord record;
  record.timestamp = 1651363200;
  record.peer_asn = Asn(65000);
  record.local_asn = Asn(65001);
  record.peer_ip = net::IpAddress::v4(0x0A000001);
  record.local_ip = net::IpAddress::v4(0x0A000002);
  return record;
}

TEST(Bgp4mp, AnnouncementRoundTrip) {
  Bgp4mpRecord record = make_record();
  record.update.announced = {Prefix::must_parse("192.0.2.0/24"),
                             Prefix::must_parse("10.0.0.0/8")};
  record.update.path = path({65000, 64500});

  std::ostringstream out;
  Bgp4mpWriter writer(out);
  writer.write(record);
  EXPECT_EQ(writer.records_written(), 1u);

  std::istringstream in(out.str());
  Bgp4mpReader reader(in);
  Bgp4mpRecord parsed;
  ASSERT_TRUE(reader.next(parsed));
  EXPECT_EQ(parsed.timestamp, record.timestamp);
  EXPECT_EQ(parsed.peer_asn, record.peer_asn);
  EXPECT_EQ(parsed.local_asn, record.local_asn);
  EXPECT_EQ(parsed.peer_ip, record.peer_ip);
  EXPECT_EQ(parsed.update.announced, record.update.announced);
  EXPECT_EQ(parsed.update.path, record.update.path);
  EXPECT_TRUE(parsed.update.withdrawn.empty());
  EXPECT_FALSE(reader.next(parsed));
  EXPECT_EQ(reader.bad_records(), 0u);
}

TEST(Bgp4mp, WithdrawalRoundTrip) {
  Bgp4mpRecord record = make_record();
  record.update.withdrawn = {Prefix::must_parse("192.0.2.0/24")};

  std::ostringstream out;
  Bgp4mpWriter writer(out);
  writer.write(record);
  std::istringstream in(out.str());
  Bgp4mpReader reader(in);
  Bgp4mpRecord parsed;
  ASSERT_TRUE(reader.next(parsed));
  EXPECT_EQ(parsed.update.withdrawn, record.update.withdrawn);
  EXPECT_TRUE(parsed.update.announced.empty());
}

TEST(Bgp4mp, Ipv6RidesInMpAttributes) {
  Bgp4mpRecord record = make_record();
  record.peer_ip = *net::IpAddress::parse("2001:db8::1");
  record.local_ip = *net::IpAddress::parse("2001:db8::2");
  record.update.announced = {Prefix::must_parse("2001:db8:100::/40")};
  record.update.withdrawn = {Prefix::must_parse("2001:db8:200::/40")};
  record.update.path = path({65000, 64500});

  std::ostringstream out;
  Bgp4mpWriter writer(out);
  writer.write(record);
  std::istringstream in(out.str());
  Bgp4mpReader reader(in);
  Bgp4mpRecord parsed;
  ASSERT_TRUE(reader.next(parsed));
  EXPECT_EQ(parsed.peer_ip, record.peer_ip);
  EXPECT_EQ(parsed.update.announced, record.update.announced);
  EXPECT_EQ(parsed.update.withdrawn, record.update.withdrawn);
}

TEST(Bgp4mp, MixedFamilyUpdate) {
  Bgp4mpRecord record = make_record();
  record.update.announced = {Prefix::must_parse("10.0.0.0/8"),
                             Prefix::must_parse("2001:db8::/32")};
  record.update.withdrawn = {Prefix::must_parse("11.0.0.0/8"),
                             Prefix::must_parse("2001:db9::/32")};
  record.update.path = path({65000, 1});

  std::ostringstream out;
  Bgp4mpWriter writer(out);
  writer.write(record);
  std::istringstream in(out.str());
  Bgp4mpReader reader(in);
  Bgp4mpRecord parsed;
  ASSERT_TRUE(reader.next(parsed));
  // Order within a family is preserved; v4 comes first on decode.
  ASSERT_EQ(parsed.update.announced.size(), 2u);
  ASSERT_EQ(parsed.update.withdrawn.size(), 2u);
  EXPECT_EQ(parsed.update.path, record.update.path);
}

TEST(Bgp4mp, SkipsForeignRecordTypes) {
  std::ostringstream out;
  // A TABLE_DUMP_V2 header with empty body, then a valid update.
  ByteWriter foreign;
  foreign.u32(0);
  foreign.u16(13);
  foreign.u16(1);
  foreign.u32(0);
  util::write_bytes(out, foreign.data());
  Bgp4mpWriter writer(out);
  Bgp4mpRecord record = make_record();
  record.update.withdrawn = {Prefix::must_parse("10.0.0.0/8")};
  writer.write(record);

  std::istringstream in(out.str());
  Bgp4mpReader reader(in);
  Bgp4mpRecord parsed;
  ASSERT_TRUE(reader.next(parsed));
  EXPECT_EQ(reader.skipped_records(), 1u);
}

TEST(Bgp4mp, TruncatedRecordCounted) {
  std::ostringstream out;
  Bgp4mpWriter writer(out);
  Bgp4mpRecord record = make_record();
  record.update.announced = {Prefix::must_parse("10.0.0.0/8")};
  record.update.path = path({65000, 1});
  writer.write(record);
  std::string bytes = out.str();
  bytes.resize(bytes.size() - 3);

  std::istringstream in(bytes);
  Bgp4mpReader reader(in);
  Bgp4mpRecord parsed;
  EXPECT_FALSE(reader.next(parsed));
  EXPECT_EQ(reader.bad_records(), 1u);
}

TEST(DiffTables, AnnouncesAndWithdraws) {
  std::vector<bgp::PrefixOrigin> before{
      {Prefix::must_parse("10.0.0.0/8"), Asn(1)},
      {Prefix::must_parse("11.0.0.0/8"), Asn(2)},
  };
  std::vector<bgp::PrefixOrigin> after{
      {Prefix::must_parse("10.0.0.0/8"), Asn(1)},   // unchanged
      {Prefix::must_parse("12.0.0.0/8"), Asn(2)},   // new
      {Prefix::must_parse("13.0.0.0/8"), Asn(3)},   // new, other origin
  };
  auto updates = diff_tables(before, after, Asn(65000));
  ASSERT_EQ(updates.size(), 3u);
  // First the withdrawal batch.
  EXPECT_EQ(updates[0].withdrawn,
            (std::vector<Prefix>{Prefix::must_parse("11.0.0.0/8")}));
  // Then per-origin announcements, origin-ascending.
  EXPECT_EQ(updates[1].announced,
            (std::vector<Prefix>{Prefix::must_parse("12.0.0.0/8")}));
  EXPECT_EQ(updates[1].path, path({65000, 2}));
  EXPECT_EQ(updates[2].path, path({65000, 3}));
}

TEST(DiffTables, IdenticalTablesYieldNothing) {
  std::vector<bgp::PrefixOrigin> table{
      {Prefix::must_parse("10.0.0.0/8"), Asn(1)}};
  EXPECT_TRUE(diff_tables(table, table, Asn(65000)).empty());
}

TEST(DiffTables, PeerEqualsOriginHasOneHopPath) {
  std::vector<bgp::PrefixOrigin> after{
      {Prefix::must_parse("10.0.0.0/8"), Asn(65000)}};
  auto updates = diff_tables({}, after, Asn(65000));
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].path, path({65000}));
}

// Property: a random diff applied as updates round-trips through the
// wire format with nothing lost.
class Bgp4mpStreamP : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Bgp4mpStreamP, StreamRoundTrip) {
  manrs::util::Rng rng(GetParam());
  std::ostringstream out;
  Bgp4mpWriter writer(out);
  std::vector<Bgp4mpRecord> originals;
  for (int i = 0; i < 20; ++i) {
    Bgp4mpRecord record = make_record();
    record.timestamp = 1000 + static_cast<uint32_t>(i);
    size_t announced = rng.uniform(4);
    for (size_t a = 0; a < announced; ++a) {
      bool v6 = rng.bernoulli(0.3);
      unsigned len = static_cast<unsigned>(v6 ? 32 + rng.uniform(17)
                                              : 8 + rng.uniform(17));
      record.update.announced.push_back(
          v6 ? Prefix(net::IpAddress::v6(rng.next(), 0), len)
             : Prefix(net::IpAddress::v4(
                          static_cast<uint32_t>(rng.next())),
                      len));
    }
    if (announced > 0) record.update.path = path({65000, 64500});
    size_t withdrawn = rng.uniform(3);
    for (size_t w = 0; w < withdrawn; ++w) {
      record.update.withdrawn.push_back(Prefix(
          net::IpAddress::v4(static_cast<uint32_t>(rng.next())), 24));
    }
    if (record.update.empty()) {
      record.update.withdrawn.push_back(Prefix::must_parse("10.0.0.0/8"));
    }
    writer.write(record);
    originals.push_back(record);
  }

  std::istringstream in(out.str());
  Bgp4mpReader reader(in);
  Bgp4mpRecord parsed;
  size_t index = 0;
  while (reader.next(parsed)) {
    ASSERT_LT(index, originals.size());
    EXPECT_EQ(parsed.timestamp, originals[index].timestamp);
    EXPECT_EQ(parsed.update.announced.size(),
              originals[index].update.announced.size());
    EXPECT_EQ(parsed.update.withdrawn.size(),
              originals[index].update.withdrawn.size());
    ++index;
  }
  EXPECT_EQ(index, originals.size());
  EXPECT_EQ(reader.bad_records(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Bgp4mpStreamP,
                         ::testing::Values(7, 17, 27, 37));

}  // namespace
}  // namespace manrs::mrt
