#include "simulator/propagation.h"

#include <gtest/gtest.h>

#include "simulator/collector.h"

namespace manrs::sim {
namespace {

using astopo::AsGraph;
using net::Asn;
using net::Prefix;

// Topology used throughout:
//
//        T1 ---- T2          (tier-1 peers)
//       /    |  |    |
//      A    B  C    D        (mid tier under T1/T1/T2/T2; A-B peers)
//      |    |  |    |
//      a    b  c    d        (stubs)
AsGraph test_graph() {
  AsGraph g;
  g.add_peer_peer(Asn(1), Asn(2));  // T1, T2
  g.add_provider_customer(Asn(1), Asn(11));  // A
  g.add_provider_customer(Asn(1), Asn(12));  // B
  g.add_provider_customer(Asn(2), Asn(13));  // C
  g.add_provider_customer(Asn(2), Asn(14));  // D
  g.add_peer_peer(Asn(11), Asn(12));
  g.add_provider_customer(Asn(11), Asn(101));  // a
  g.add_provider_customer(Asn(12), Asn(102));  // b
  g.add_provider_customer(Asn(13), Asn(103));  // c
  g.add_provider_customer(Asn(14), Asn(104));  // d
  return g;
}

TEST(Propagation, EveryoneReachesACleanAnnouncement) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(101), AnnouncementClass{});
  for (Asn asn : g.all_asns()) {
    int32_t id = sim.indexer().id_of(asn);
    EXPECT_TRUE(result.reached(id)) << asn.to_string();
  }
}

TEST(Propagation, RouteSourcesFollowGaoRexford) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(101), AnnouncementClass{});
  auto source_of = [&](uint32_t asn) {
    return result.source[static_cast<size_t>(sim.indexer().id_of(Asn(asn)))];
  };
  EXPECT_EQ(source_of(101), RouteSource::kOrigin);
  EXPECT_EQ(source_of(11), RouteSource::kCustomer);  // from its customer
  EXPECT_EQ(source_of(1), RouteSource::kCustomer);   // via A
  EXPECT_EQ(source_of(12), RouteSource::kPeer);      // A--B peer link
  EXPECT_EQ(source_of(2), RouteSource::kPeer);       // T1--T2 peer link
  EXPECT_EQ(source_of(13), RouteSource::kProvider);  // down from T2
  EXPECT_EQ(source_of(103), RouteSource::kProvider);
  EXPECT_EQ(source_of(102), RouteSource::kProvider);  // down from B
}

TEST(Propagation, ValleyFreePathsOnly) {
  // b's route to a must be b <- B <- A <- a (via the A--B peer link),
  // never through T1-T2 (a peer route is not exported to a peer).
  AsGraph g = test_graph();
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(101), AnnouncementClass{});
  bgp::AsPath path = sim.path_from(result, Asn(102));
  EXPECT_EQ(path.to_string(), "AS102 AS12 AS11 AS101");
}

TEST(Propagation, PathFromUnreachedIsEmpty) {
  AsGraph g;
  g.add_provider_customer(Asn(1), Asn(2));
  g.add_as(Asn(99));  // isolated
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(2), AnnouncementClass{});
  EXPECT_TRUE(sim.path_from(result, Asn(99)).empty());
  EXPECT_FALSE(sim.path_from(result, Asn(1)).empty());
  // Unknown vantage.
  EXPECT_TRUE(sim.path_from(result, Asn(12345)).empty());
}

TEST(Propagation, UnknownOriginReachesNobody) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(9999), AnnouncementClass{});
  EXPECT_TRUE(result.source.empty() ||
              std::all_of(result.source.begin(), result.source.end(),
                          [](RouteSource s) {
                            return s == RouteSource::kNone;
                          }));
}

TEST(Propagation, PrefersCustomerOverPeerOverProvider) {
  // D learns a's route only via its provider T2; C the same. A--B peering
  // gives B a peer route even though B could get a provider route via T1.
  AsGraph g = test_graph();
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(101), AnnouncementClass{});
  int32_t b_id = sim.indexer().id_of(Asn(12));
  EXPECT_EQ(result.source[static_cast<size_t>(b_id)], RouteSource::kPeer);
  // Path length via the peer link: B -> A -> a = 2 hops.
  EXPECT_EQ(result.distance[static_cast<size_t>(b_id)], 2);
}

TEST(Propagation, RovDropsInvalidEverywhereDownstream) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  FilterPolicy rov;
  rov.rov = true;
  sim.set_policy(Asn(2), rov);  // T2 deploys ROV

  AnnouncementClass invalid;
  invalid.rpki_invalid = true;
  auto result = sim.propagate(Asn(101), invalid);
  auto reached = [&](uint32_t asn) {
    return result.reached(sim.indexer().id_of(Asn(asn)));
  };
  EXPECT_FALSE(reached(2));
  // C, D, c, d sit behind T2 only: unreachable.
  EXPECT_FALSE(reached(13));
  EXPECT_FALSE(reached(104));
  // The rest still gets the route.
  EXPECT_TRUE(reached(1));
  EXPECT_TRUE(reached(102));

  // A valid announcement is unaffected by ROV.
  auto valid_result = sim.propagate(Asn(101), AnnouncementClass{});
  EXPECT_TRUE(valid_result.reached(sim.indexer().id_of(Asn(104))));
}

TEST(Propagation, RovIgnoresIrrOnlyInvalid) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  FilterPolicy rov;
  rov.rov = true;
  sim.set_policy(Asn(2), rov);
  AnnouncementClass irr_invalid;
  irr_invalid.irr_invalid = true;
  auto result = sim.propagate(Asn(101), irr_invalid);
  EXPECT_TRUE(result.reached(sim.indexer().id_of(Asn(104))));
}

TEST(Propagation, CustomerFilterStrictnessIsPartial) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  FilterPolicy partial;
  partial.customer_strictness = 2;  // drops variants 0 and 1
  sim.set_policy(Asn(11), partial);  // A filters its customer a

  AnnouncementClass dropped;
  dropped.irr_invalid = true;
  dropped.variant = 1;
  auto result = sim.propagate(Asn(101), dropped);
  EXPECT_FALSE(result.reached(sim.indexer().id_of(Asn(11))));

  AnnouncementClass leaked = dropped;
  leaked.variant = 3;
  result = sim.propagate(Asn(101), leaked);
  EXPECT_TRUE(result.reached(sim.indexer().id_of(Asn(11))));
}

TEST(Propagation, CustomerFilterOnlyAppliesToCustomerRoutes) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  FilterPolicy strict;
  strict.customer_strictness = kFilterVariants;
  sim.set_policy(Asn(13), strict);  // C filters customers only

  AnnouncementClass invalid;
  invalid.irr_invalid = true;
  invalid.variant = 0;
  // a's announcement arrives at C from its PROVIDER T2, so the customer
  // filter does not apply.
  auto result = sim.propagate(Asn(101), invalid);
  EXPECT_TRUE(result.reached(sim.indexer().id_of(Asn(13))));
  // c's own announcement arrives at C from the customer: dropped.
  result = sim.propagate(Asn(103), invalid);
  EXPECT_FALSE(result.reached(sim.indexer().id_of(Asn(13))));
}

TEST(Propagation, PeerFilterDropsAtPeerEdge) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  FilterPolicy peer_filter;
  peer_filter.peer_strictness = kFilterVariants;
  sim.set_policy(Asn(12), peer_filter);  // B filters peers

  AnnouncementClass invalid;
  invalid.irr_invalid = true;
  auto result = sim.propagate(Asn(101), invalid);
  // B refuses the A--B peer route but still learns via its provider T1.
  int32_t b = sim.indexer().id_of(Asn(12));
  EXPECT_TRUE(result.reached(b));
  EXPECT_EQ(result.source[static_cast<size_t>(b)], RouteSource::kProvider);
}

TEST(Propagation, DeterministicTieBreakByLowestAsn) {
  // Two equally long provider paths: next hop must be the lowest ASN.
  AsGraph g;
  g.add_provider_customer(Asn(10), Asn(1));
  g.add_provider_customer(Asn(20), Asn(1));
  g.add_provider_customer(Asn(30), Asn(10));
  g.add_provider_customer(Asn(30), Asn(20));
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(1), AnnouncementClass{});
  bgp::AsPath path = sim.path_from(result, Asn(30));
  EXPECT_EQ(path.to_string(), "AS30 AS10 AS1");
}

TEST(Propagation, PathStatusDistinguishesNoRouteFromOk) {
  AsGraph g;
  g.add_provider_customer(Asn(1), Asn(2));
  g.add_as(Asn(99));  // isolated
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(2), AnnouncementClass{});

  PathStatus status = PathStatus::kBrokenChain;
  EXPECT_FALSE(sim.path_from(result, Asn(1), &status).empty());
  EXPECT_EQ(status, PathStatus::kOk);
  EXPECT_TRUE(sim.path_from(result, Asn(99), &status).empty());
  EXPECT_EQ(status, PathStatus::kNoRoute);
  EXPECT_TRUE(sim.path_from(result, Asn(12345), &status).empty());
  EXPECT_EQ(status, PathStatus::kNoRoute);
}

TEST(Propagation, PathStatusFlagsCorruptedNextHopChain) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  auto result = sim.propagate(Asn(101), AnnouncementClass{});
  const int32_t b = sim.indexer().id_of(Asn(102));
  const int32_t a = sim.indexer().id_of(Asn(101));
  ASSERT_GE(b, 0);
  ASSERT_GE(a, 0);

  // A cycle: b's chain loops back to itself instead of descending.
  PropagationResult cycle = result;
  cycle.next_hop[static_cast<size_t>(b)] = b;
  PathStatus status = PathStatus::kOk;
  EXPECT_TRUE(sim.path_from(cycle, Asn(102), &status).empty());
  EXPECT_EQ(status, PathStatus::kBrokenChain);

  // A hop pointing at an AS that never installed a route.
  PropagationResult dangling = result;
  dangling.source[static_cast<size_t>(a)] = RouteSource::kNone;
  // 102's chain runs ... -> 101 (the origin), which now claims no route.
  EXPECT_TRUE(sim.path_from(dangling, Asn(102), &status).empty());
  EXPECT_EQ(status, PathStatus::kBrokenChain);

  // An out-of-range id in the chain.
  PropagationResult wild = result;
  wild.next_hop[static_cast<size_t>(b)] = 1 << 20;
  EXPECT_TRUE(sim.path_from(wild, Asn(102), &status).empty());
  EXPECT_EQ(status, PathStatus::kBrokenChain);

  // The untouched result still reconstructs fine (and the non-status
  // overload keeps its "empty on any failure" contract).
  EXPECT_FALSE(sim.path_from(result, Asn(102)).empty());
  EXPECT_TRUE(sim.path_from(cycle, Asn(102)).empty());
}

TEST(Propagation, FilterVariantIsStdlibIndependent) {
  // The variant bucket folds into scenario and dataset bytes, so it must
  // be the documented FNV-1a of the prefix wire bytes -- not std::hash.
  // These values are fixed-point constants of that definition; if this
  // test fails, goldens produced on other platforms no longer match.
  EXPECT_EQ(filter_variant(net::Prefix::must_parse("10.0.0.0/8")), 3);
  EXPECT_EQ(filter_variant(net::Prefix::must_parse("192.168.0.0/16")), 1);
  EXPECT_EQ(filter_variant(net::Prefix::must_parse("2001:db8::/32")), 1);
  // Stable across calls and distinct inputs spread across buckets.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(filter_variant(net::Prefix::must_parse("10.0.0.0/8")),
              filter_variant(net::Prefix::must_parse("10.0.0.0/8")));
  }
}

TEST(Collector, GroupsByOriginAndClass) {
  std::vector<Announcement> anns;
  anns.push_back({Prefix::must_parse("10.0.0.0/8"), Asn(1), {}});
  anns.push_back({Prefix::must_parse("11.0.0.0/8"), Asn(1), {}});
  AnnouncementClass inv;
  inv.rpki_invalid = true;
  inv.variant = 2;
  anns.push_back({Prefix::must_parse("12.0.0.0/8"), Asn(1), inv});
  anns.push_back({Prefix::must_parse("13.0.0.0/8"), Asn(2), {}});
  // A valid announcement with a nonzero variant still groups with the
  // other valid ones (variant only matters for invalid routes).
  AnnouncementClass valid_variant;
  valid_variant.variant = 3;
  anns.push_back({Prefix::must_parse("14.0.0.0/8"), Asn(1), valid_variant});

  auto groups = group_announcements(anns);
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].origin, Asn(1));
  EXPECT_EQ(groups[0].prefixes.size(), 3u);  // 10/8, 11/8, 14/8
  EXPECT_EQ(groups[1].origin, Asn(1));
  EXPECT_TRUE(groups[1].cls.rpki_invalid);
  EXPECT_EQ(groups[2].origin, Asn(2));
}

TEST(Collector, BuildsRibWithPeerPaths) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  RouteCollector collector(sim, {Asn(13), Asn(14)});
  std::vector<Announcement> anns;
  anns.push_back({Prefix::must_parse("10.0.0.0/8"), Asn(101), {}});
  bgp::Rib rib = collector.collect(anns);
  EXPECT_EQ(rib.peer_count(), 2u);
  auto entries = rib.entries(Prefix::must_parse("10.0.0.0/8"));
  ASSERT_EQ(entries.size(), 2u);
  // Both vantage paths terminate at the origin.
  for (const auto& e : entries) {
    EXPECT_EQ(e.path.origin(), Asn(101));
  }
}

TEST(Collector, FilteredAnnouncementsMissingFromRib) {
  AsGraph g = test_graph();
  PropagationSim sim(g);
  FilterPolicy rov;
  rov.rov = true;
  sim.set_policy(Asn(2), rov);
  RouteCollector collector(sim, {Asn(13)});  // vantage behind T2

  AnnouncementClass inv;
  inv.rpki_invalid = true;
  std::vector<Announcement> anns;
  anns.push_back({Prefix::must_parse("10.0.0.0/8"), Asn(101), inv});
  anns.push_back({Prefix::must_parse("11.0.0.0/8"), Asn(101), {}});
  bgp::Rib rib = collector.collect(anns);
  EXPECT_TRUE(rib.entries(Prefix::must_parse("10.0.0.0/8")).empty());
  EXPECT_EQ(rib.entries(Prefix::must_parse("11.0.0.0/8")).size(), 1u);
}

}  // namespace
}  // namespace manrs::sim
