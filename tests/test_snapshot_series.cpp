// Temporal snapshot engine tests.
//
// Two layers of defense, mirroring the propagation oracle split:
//
//   * DeltaOracle: the evolution itself. delta_for_day(d) must be a pure
//     function of (base, config, day) -- computable for any day in
//     isolation, in any order -- and folding the per-day deltas must
//     land on exactly the state the *_at(day) accessors materialize
//     directly from the schedules.
//   * SnapshotSeries: the incremental engine. Every day's outputs --
//     all aggregates and all three full-dataset digests -- must be
//     byte-identical to a cold rebuild of that day, across a threads x
//     grain matrix, and the step-wise begin_day/apply/recompute API
//     must match the advance() convenience path.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness.h"
#include "topogen/evolution.h"
#include "topogen/scenario.h"
#include "util/det_hash.h"
#include "util/parallel.h"

namespace manrs {
namespace {

using benchx::DayEngineStats;
using benchx::DayOutputs;
using benchx::SnapshotSeries;
using topogen::EcosystemDelta;
using topogen::EcosystemEvolution;
using topogen::EvolutionConfig;
using topogen::Scenario;

const Scenario& tiny_scenario() {
  static const Scenario* scenario =
      new Scenario(topogen::build_scenario(topogen::ScenarioConfig::tiny()));
  return *scenario;
}

/// Order-sensitive digest of everything in a delta, so two deltas can be
/// compared for exact equality without an operator== on every payload
/// type.
uint64_t delta_digest(const EcosystemDelta& delta) {
  uint64_t h = util::kFnv1aOffset;
  auto fold_str = [&h](const std::string& s) {
    for (char c : s) h = util::fnv1a_byte(h, static_cast<uint8_t>(c));
    h = util::fnv1a_byte(h, 0);
  };
  h = util::fnv1a_u64(h, static_cast<uint64_t>(delta.day));
  for (const auto& po : delta.announce) {
    fold_str(po.prefix.to_string());
    h = util::fnv1a_u64(h, po.origin.value());
  }
  for (const auto& po : delta.withdraw) {
    fold_str(po.prefix.to_string());
    h = util::fnv1a_u64(h, po.origin.value());
  }
  for (const auto& vrp : delta.roa_add) {
    fold_str(vrp.prefix.to_string());
    h = util::fnv1a_u64(h, vrp.max_length);
    h = util::fnv1a_u64(h, vrp.asn.value());
  }
  for (const auto& vrp : delta.roa_remove) {
    fold_str(vrp.prefix.to_string());
    h = util::fnv1a_u64(h, vrp.asn.value());
  }
  for (const auto& edit : delta.irr_add) {
    fold_str(edit.db);
    fold_str(edit.route.prefix.to_string());
    h = util::fnv1a_u64(h, edit.route.origin.value());
    fold_str(edit.route.source);
  }
  for (const auto& edit : delta.irr_remove) {
    fold_str(edit.db);
    fold_str(edit.route.prefix.to_string());
    h = util::fnv1a_u64(h, edit.route.origin.value());
  }
  for (const auto& m : delta.members) {
    h = util::fnv1a_u64(h, m.asn.value());
    fold_str(m.org_id);
    h = util::fnv1a_u64(h, static_cast<uint64_t>(m.join));
    h = util::fnv1a_u64(h, m.policy.customer_strictness);
    h = util::fnv1a_u64(h, static_cast<uint64_t>(m.policy.rov));
    h = util::fnv1a_u64(h, m.policy.peer_strictness);
  }
  for (const auto& e : delta.edges) {
    h = util::fnv1a_u64(h, e.a.value());
    h = util::fnv1a_u64(h, e.b.value());
    h = util::fnv1a_u64(h, static_cast<uint64_t>(e.rel));
  }
  return h;
}

std::vector<bgp::PrefixOrigin> sorted(std::vector<bgp::PrefixOrigin> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// DeltaOracle: the evolution's determinism and fold/materialize agreement.

TEST(DeltaOracle, DayDeltasArePureFunctions) {
  const Scenario& base = tiny_scenario();
  EcosystemEvolution forward(base);
  EcosystemEvolution backward(base);
  // Same day from two independent instances, queried in opposite orders
  // (any cross-day state leakage shows up as a digest mismatch).
  std::vector<uint64_t> fwd, bwd;
  for (int d = 1; d <= 21; ++d) fwd.push_back(delta_digest(forward.delta_for_day(d)));
  for (int d = 21; d >= 1; --d) bwd.push_back(delta_digest(backward.delta_for_day(d)));
  for (int d = 1; d <= 21; ++d) {
    EXPECT_EQ(fwd[static_cast<size_t>(d - 1)],
              bwd[static_cast<size_t>(21 - d)])
        << "day " << d;
  }
}

TEST(DeltaOracle, AnnouncementFoldMatchesMaterialize) {
  const Scenario& base = tiny_scenario();
  EcosystemEvolution evo(base);
  // Fold day deltas into a multiset-by-sorted-vector and compare against
  // the directly materialized announcements_at(k) every day.
  std::vector<bgp::PrefixOrigin> folded = evo.announcements_at(0);
  for (int d = 1; d <= 21; ++d) {
    const EcosystemDelta delta = evo.delta_for_day(d);
    for (const auto& po : delta.withdraw) {
      auto it = std::find(folded.begin(), folded.end(), po);
      ASSERT_NE(it, folded.end())
          << "day " << d << " withdraws absent " << po.prefix.to_string();
      folded.erase(it);
    }
    folded.insert(folded.end(), delta.announce.begin(), delta.announce.end());
    EXPECT_EQ(sorted(folded), sorted(evo.announcements_at(d))) << "day " << d;
  }
}

TEST(DeltaOracle, MembershipArrivesInWeeklyBatches) {
  const Scenario& base = tiny_scenario();
  EcosystemEvolution evo(base);
  bool any = false;
  for (int d = 1; d <= 28; ++d) {
    const EcosystemDelta delta = evo.delta_for_day(d);
    if (d % 7 != 1) {
      EXPECT_TRUE(delta.members.empty()) << "day " << d;
    } else if (!delta.members.empty()) {
      any = true;
    }
  }
  EXPECT_TRUE(any) << "no membership churn in four weeks";
  // Registry sizes move only at weekly boundaries.
  size_t prev = evo.registry_at(0).participant_count();
  for (int d = 1; d <= 28; ++d) {
    size_t now = evo.registry_at(d).participant_count();
    if (d % 7 != 1) EXPECT_EQ(now, prev) << "day " << d;
    prev = now;
  }
}

TEST(DeltaOracle, Day0AccessorsMatchBaseSnapshot) {
  const Scenario& base = tiny_scenario();
  EcosystemEvolution evo(base);
  EXPECT_EQ(sorted(evo.announcements_at(0)), sorted(base.announcements()));
  EXPECT_EQ(evo.registry_at(0).participant_count(),
            base.manrs.participant_count());
  EXPECT_EQ(evo.graph_at(0).as_count(), base.graph.as_count());
  EXPECT_TRUE(evo.policy_changes_through(0).empty());
}

// ---------------------------------------------------------------------------
// SnapshotSeries: incremental-vs-cold byte identity.

void expect_incremental_matches_cold(size_t threads, size_t grain, int days) {
  util::set_thread_count(threads);
  util::set_grain(grain);
  SnapshotSeries series(tiny_scenario());
  std::vector<DayOutputs> incremental;
  for (int d = 1; d <= days; ++d) incremental.push_back(series.advance());
  for (int d = 1; d <= days; ++d) {
    const DayOutputs cold = series.cold_rebuild(d);
    EXPECT_EQ(cold, incremental[static_cast<size_t>(d - 1)])
        << "day " << d << " at threads=" << threads << " grain=" << grain;
  }
  util::set_thread_count(0);
  util::set_grain(0);
}

TEST(SnapshotSeries, IncrementalMatchesColdRebuildSerial) {
  expect_incremental_matches_cold(/*threads=*/1, /*grain=*/0, /*days=*/10);
}

TEST(SnapshotSeries, IncrementalMatchesColdRebuildParallel) {
  expect_incremental_matches_cold(/*threads=*/4, /*grain=*/0, /*days=*/10);
}

TEST(SnapshotSeries, IncrementalMatchesColdRebuildFineGrain) {
  expect_incremental_matches_cold(/*threads=*/4, /*grain=*/16, /*days=*/6);
}

TEST(SnapshotSeries, StepwiseApiMatchesAdvance) {
  const Scenario& base = tiny_scenario();
  SnapshotSeries one_shot(base);
  SnapshotSeries stepwise(base);
  for (int d = 1; d <= 8; ++d) {
    const DayOutputs& a = one_shot.advance();
    const EcosystemDelta delta = stepwise.begin_day();
    EXPECT_EQ(delta.day, d);
    stepwise.apply(delta);
    const DayOutputs& b = stepwise.recompute();
    EXPECT_EQ(a, b) << "day " << d;
  }
}

TEST(SnapshotSeries, TwoSweepsAreBitwiseIdentical) {
  const Scenario& base = tiny_scenario();
  SnapshotSeries first(base);
  SnapshotSeries second(base);
  for (int d = 1; d <= 8; ++d) {
    EXPECT_EQ(first.advance(), second.advance()) << "day " << d;
  }
}

TEST(SnapshotSeries, EngineActuallySkipsWork) {
  const Scenario& base = tiny_scenario();
  SnapshotSeries series(base);
  series.advance();  // day 1 pays the initial full propagation
  const DayEngineStats day1 = series.last_stats();
  EXPECT_GT(day1.cache_misses, 0u);
  uint64_t hits = 0, misses = 0;
  size_t reclassified = 0;
  for (int d = 2; d <= 6; ++d) {
    const DayOutputs& out = series.advance();
    const DayEngineStats& st = series.last_stats();
    hits += st.cache_hits;
    misses += st.cache_misses;
    reclassified += st.reclassified;
    // Incremental work must be a small slice of the full dataset.
    EXPECT_LT(st.reclassified, out.announcements / 4) << "day " << d;
    EXPECT_GT(st.groups_reused, st.groups / 2) << "day " << d;
  }
  // Across quiet days the cache must serve the overwhelming majority.
  EXPECT_GT(hits, 10 * misses);
  EXPECT_GT(reclassified, 0u);  // ...but churn exists, or the test is vacuous
}

TEST(SnapshotSeries, QuietDayStatsStayBounded) {
  // A day whose delta is empty of announcements still recomputes valid
  // outputs (ROA/IRR churn may reclassify a handful of prefixes), and
  // invalidations never exceed the cache's entry count.
  SnapshotSeries series(tiny_scenario());
  for (int d = 1; d <= 6; ++d) {
    const DayOutputs& out = series.advance();
    const DayEngineStats& st = series.last_stats();
    EXPECT_EQ(out.day, d);
    EXPECT_EQ(st.day, d);
    EXPECT_GT(out.announcements, 0u);
    EXPECT_LE(st.cache_invalidated, st.cache_hits + st.cache_misses);
  }
}

}  // namespace
}  // namespace manrs
