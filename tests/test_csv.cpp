#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace manrs::util {
namespace {

TEST(CsvReader, SimpleRows) {
  std::istringstream in("a,b,c\n1,2,3\n");
  CsvReader reader(in);
  CsvRow row;
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (CsvRow{"a", "b", "c"}));
  ASSERT_TRUE(reader.next(row));
  EXPECT_EQ(row, (CsvRow{"1", "2", "3"}));
  EXPECT_FALSE(reader.next(row));
}

TEST(CsvReader, QuotedFieldWithDelimiter) {
  auto rows = parse_csv("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c"}));
}

TEST(CsvReader, EscapedQuotes) {
  auto rows = parse_csv("\"say \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvReader, QuotedNewline) {
  auto rows = parse_csv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
  EXPECT_EQ(rows[0][1], "x");
}

TEST(CsvReader, SkipsBlankAndCommentLines) {
  auto rows = parse_csv("# header comment\n\na,b\n", ',', '#');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(CsvReader, CrLfLineEndings) {
  auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvReader, PipeDelimiter) {
  auto rows = parse_csv("1|2|-1\n", '|');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"1", "2", "-1"}));
}

TEST(CsvWriter, QuotesWhenNeeded) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.write_row(std::vector<std::string_view>{"plain", "has,comma",
                                                 "has\"quote", "has\nnl"});
  EXPECT_EQ(out.str(),
            "plain,\"has,comma\",\"has\"\"quote\",\"has\nnl\"\n");
}

TEST(CsvRoundTrip, WriterOutputParsesBack) {
  std::ostringstream out;
  CsvWriter writer(out);
  CsvRow original{"a,b", "c\"d\"", "e\nf", "plain", ""};
  writer.write_row(original);
  auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

// Property-style sweep: every combination of awkward characters must
// round-trip through write + parse.
class CsvRoundTripP : public ::testing::TestWithParam<std::string> {};

TEST_P(CsvRoundTripP, FieldRoundTrips) {
  std::ostringstream out;
  CsvWriter writer(out);
  CsvRow original{GetParam(), "sentinel"};
  writer.write_row(original);
  auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], original);
}

INSTANTIATE_TEST_SUITE_P(
    AwkwardFields, CsvRoundTripP,
    ::testing::Values("", "plain", ",", "\"", "\"\"", "a,b,c", "line\nbreak",
                      "\"quoted\"", "trailing,", ",leading", "mix,\"of\nall\"",
                      "   spaces   "));

}  // namespace
}  // namespace manrs::util
