#include "core/conformance.h"

#include <gtest/gtest.h>

namespace manrs::core {
namespace {

using irr::IrrStatus;
using net::Asn;
using net::Prefix;
using rpki::RpkiStatus;

ihr::PrefixOriginRecord record(const char* prefix, uint32_t origin,
                               RpkiStatus rpki, IrrStatus irr) {
  ihr::PrefixOriginRecord r;
  r.prefix = Prefix::must_parse(prefix);
  r.origin = Asn(origin);
  r.rpki = rpki;
  r.irr = irr;
  return r;
}

ihr::TransitRecord transit(const char* prefix, uint32_t origin,
                           uint32_t transit_asn, RpkiStatus rpki,
                           IrrStatus irr, bool via_customer,
                           double hegemony = 0.5) {
  ihr::TransitRecord t;
  t.prefix = Prefix::must_parse(prefix);
  t.origin = Asn(origin);
  t.transit = Asn(transit_asn);
  t.rpki = rpki;
  t.irr = irr;
  t.via_customer = via_customer;
  t.hegemony = hegemony;
  return t;
}

// --- the §6.4 conformance classification, case by case ------------------

TEST(ConformanceClass, PaperDefinition) {
  // Conformant: RPKI Valid, or IRR Valid, or IRR Invalid Length.
  EXPECT_EQ(classify_conformance(RpkiStatus::kValid, IrrStatus::kNotFound),
            ConformanceClass::kConformant);
  EXPECT_EQ(classify_conformance(RpkiStatus::kNotFound, IrrStatus::kValid),
            ConformanceClass::kConformant);
  EXPECT_EQ(
      classify_conformance(RpkiStatus::kNotFound, IrrStatus::kInvalidLength),
      ConformanceClass::kConformant);
  // RPKI Invalid but IRR Valid: the IRR side wins (§6.4's definition is a
  // disjunction).
  EXPECT_EQ(classify_conformance(RpkiStatus::kInvalidAsn, IrrStatus::kValid),
            ConformanceClass::kConformant);
  // Unconformant: RPKI Invalid, or (RPKI NotFound, IRR Invalid).
  EXPECT_EQ(
      classify_conformance(RpkiStatus::kInvalidAsn, IrrStatus::kNotFound),
      ConformanceClass::kUnconformant);
  EXPECT_EQ(
      classify_conformance(RpkiStatus::kInvalidLength, IrrStatus::kNotFound),
      ConformanceClass::kUnconformant);
  EXPECT_EQ(
      classify_conformance(RpkiStatus::kNotFound, IrrStatus::kInvalidAsn),
      ConformanceClass::kUnconformant);
  // Registered nowhere: neither bucket.
  EXPECT_EQ(
      classify_conformance(RpkiStatus::kNotFound, IrrStatus::kNotFound),
      ConformanceClass::kUnregistered);
}

TEST(OriginationStats, FormulasOneTwoThree) {
  std::vector<ihr::PrefixOriginRecord> records{
      record("10.0.0.0/24", 1, RpkiStatus::kValid, IrrStatus::kValid),
      record("10.0.1.0/24", 1, RpkiStatus::kNotFound, IrrStatus::kValid),
      record("10.0.2.0/24", 1, RpkiStatus::kInvalidAsn, IrrStatus::kNotFound),
      record("10.0.3.0/24", 1, RpkiStatus::kNotFound, IrrStatus::kNotFound),
      record("20.0.0.0/24", 2, RpkiStatus::kValid, IrrStatus::kNotFound),
  };
  auto stats = compute_origination_stats(records);
  ASSERT_EQ(stats.size(), 2u);
  const OriginationStats& s1 = stats.at(1);
  EXPECT_EQ(s1.total, 4u);
  EXPECT_DOUBLE_EQ(s1.og_rpki_valid(), 25.0);   // Formula 1
  EXPECT_DOUBLE_EQ(s1.og_irr_valid(), 50.0);    // Formula 2
  EXPECT_DOUBLE_EQ(s1.og_conformant(), 50.0);   // Formula 3
  EXPECT_EQ(s1.rpki_invalid, 1u);
  EXPECT_EQ(s1.rpki_not_found, 2u);
  EXPECT_EQ(s1.irr_not_found, 2u);
  EXPECT_DOUBLE_EQ(stats.at(2).og_conformant(), 100.0);
}

TEST(PropagationStats, FormulasFourFiveSix) {
  std::vector<ihr::TransitRecord> records{
      transit("10.0.0.0/24", 1, 9, RpkiStatus::kValid, IrrStatus::kValid,
              true),
      transit("10.0.1.0/24", 1, 9, RpkiStatus::kInvalidAsn,
              IrrStatus::kNotFound, true),
      transit("10.0.2.0/24", 1, 9, RpkiStatus::kInvalidLength,
              IrrStatus::kValid, false),
      transit("10.0.3.0/24", 1, 9, RpkiStatus::kNotFound,
              IrrStatus::kInvalidAsn, false),
  };
  auto stats = compute_propagation_stats(records);
  const PropagationStats& s = stats.at(9);
  EXPECT_EQ(s.total, 4u);
  // Formula 4 counts Invalid + Invalid Length.
  EXPECT_DOUBLE_EQ(s.pg_rpki_invalid(), 50.0);
  EXPECT_DOUBLE_EQ(s.pg_irr_invalid(), 25.0);  // Formula 5
  // Formula 6: of the 2 customer-learned records, 1 is unconformant
  // (10.0.1/24); 10.0.2/24 is conformant via IRR Valid but came via peer
  // anyway.
  EXPECT_EQ(s.customer_total, 2u);
  EXPECT_EQ(s.customer_unconformant, 1u);
  EXPECT_DOUBLE_EQ(s.pg_unconformant(), 50.0);
}

TEST(Action4, IspThresholdIsNinetyPercent) {
  OriginationStats s;
  s.total = 10;
  s.conformant = 9;
  EXPECT_TRUE(check_action4(&s, Program::kIsp).conformant);
  s.conformant = 8;
  EXPECT_FALSE(check_action4(&s, Program::kIsp).conformant);
}

TEST(Action4, CdnRequiresEveryPrefix) {
  OriginationStats s;
  s.total = 1000;
  s.conformant = 999;
  EXPECT_FALSE(check_action4(&s, Program::kCdn).conformant);
  s.conformant = 1000;
  EXPECT_TRUE(check_action4(&s, Program::kCdn).conformant);
  // ... while an ISP at 99.9% passes easily.
  s.conformant = 999;
  EXPECT_TRUE(check_action4(&s, Program::kIsp).conformant);
}

TEST(Action4, TriviallyConformantWhenOriginatingNothing) {
  auto verdict = check_action4(nullptr, Program::kCdn);
  EXPECT_TRUE(verdict.conformant);
  EXPECT_TRUE(verdict.trivially);
  OriginationStats empty;
  verdict = check_action4(&empty, Program::kIsp);
  EXPECT_TRUE(verdict.trivially);
}

TEST(Action1, FullyConformantMeansZeroUnconformant) {
  PropagationStats s;
  s.total = 100;
  s.customer_total = 50;
  s.customer_unconformant = 0;
  auto verdict = check_action1(&s);
  EXPECT_TRUE(verdict.conformant);
  EXPECT_TRUE(verdict.provides_transit);
  s.customer_unconformant = 1;
  EXPECT_FALSE(check_action1(&s).conformant);
}

TEST(Action1, TriviallyConformantWithoutTransit) {
  auto verdict = check_action1(nullptr);
  EXPECT_TRUE(verdict.conformant);
  EXPECT_TRUE(verdict.trivially);
  EXPECT_FALSE(verdict.provides_transit);
}

TEST(Saturation, SplitsByMembershipAndMergesOverlap) {
  ManrsRegistry registry;
  Participant p;
  p.org_id = "org1";
  p.joined = util::Date(2020, 1, 1);
  p.registered_ases.push_back(Asn(1));
  registry.add_participant(p);

  astopo::Prefix2As routed{
      {Prefix::must_parse("10.0.0.0/8"), Asn(1)},     // MANRS, covered
      {Prefix::must_parse("10.0.0.0/16"), Asn(1)},    // nested: no dbl count
      {Prefix::must_parse("20.0.0.0/8"), Asn(1)},     // MANRS, uncovered
      {Prefix::must_parse("30.0.0.0/8"), Asn(2)},     // other, covered
      {Prefix::must_parse("40.0.0.0/7"), Asn(2)},     // other, uncovered
  };
  rpki::VrpStore vrps;
  vrps.add({Prefix::must_parse("10.0.0.0/8"), 8, Asn(1)});
  vrps.add({Prefix::must_parse("30.0.0.0/8"), 8, Asn(2)});

  auto result = compute_rpki_saturation(routed, vrps, registry);
  EXPECT_DOUBLE_EQ(result.manrs_routed_space, 2 * 16777216.0);
  EXPECT_DOUBLE_EQ(result.manrs_covered_space, 16777216.0);
  EXPECT_DOUBLE_EQ(result.rsat_manrs(), 50.0);
  EXPECT_DOUBLE_EQ(result.non_manrs_routed_space, 3 * 16777216.0);
  EXPECT_DOUBLE_EQ(result.rsat_non_manrs(), 100.0 / 3.0);
}

TEST(Saturation, EmptyInputsAreZero) {
  ManrsRegistry registry;
  rpki::VrpStore vrps;
  auto result = compute_rpki_saturation({}, vrps, registry);
  EXPECT_DOUBLE_EQ(result.rsat_manrs(), 0.0);
  EXPECT_DOUBLE_EQ(result.rsat_non_manrs(), 0.0);
}

TEST(Saturation, IrrVariant) {
  ManrsRegistry registry;
  astopo::Prefix2As routed{{Prefix::must_parse("10.0.0.0/8"), Asn(1)}};
  irr::IrrRegistry irr_registry;
  auto& db = irr_registry.add_database("RADB", false);
  irr::RouteObject route;
  route.prefix = Prefix::must_parse("10.0.0.0/8");
  route.origin = Asn(99);  // coverage is origin-agnostic
  db.add_route(route);
  auto result = compute_irr_saturation(routed, irr_registry, registry);
  EXPECT_DOUBLE_EQ(result.rsat_non_manrs(), 100.0);
}

TEST(PreferenceScore, FormulaNine) {
  ManrsRegistry registry;
  Participant p;
  p.org_id = "org1";
  p.joined = util::Date(2020, 1, 1);
  p.registered_ases.push_back(Asn(10));
  registry.add_participant(p);

  std::vector<ihr::TransitRecord> transits{
      transit("10.0.0.0/24", 1, 10, RpkiStatus::kValid, IrrStatus::kValid,
              false, 0.8),  // MANRS transit
      transit("10.0.0.0/24", 1, 20, RpkiStatus::kValid, IrrStatus::kValid,
              false, 0.3),  // non-MANRS transit
      transit("20.0.0.0/24", 2, 20, RpkiStatus::kInvalidAsn,
              IrrStatus::kNotFound, false, 0.9),
  };
  auto scores = compute_preference_scores(transits, registry);
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_NEAR(scores[0].score, 0.5, 1e-12);  // 0.8 - 0.3
  EXPECT_EQ(scores[0].rpki, RpkiStatus::kValid);
  EXPECT_NEAR(scores[1].score, -0.9, 1e-12);
  EXPECT_EQ(scores[1].rpki, RpkiStatus::kInvalidAsn);
}

}  // namespace
}  // namespace manrs::core
