#include "util/stats.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace manrs::util {
namespace {

TEST(EmpiricalDistribution, BasicMoments) {
  EmpiricalDistribution d({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(d.mean(), 2.5);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 4.0);
  EXPECT_DOUBLE_EQ(d.variance(), 1.25);
}

TEST(EmpiricalDistribution, Quantiles) {
  EmpiricalDistribution d({0.0, 10.0});
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(d.median(), 5.0);
}

TEST(EmpiricalDistribution, MedianOddCount) {
  EmpiricalDistribution d({5.0, 1.0, 3.0});
  EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(EmpiricalDistribution, Cdf) {
  EmpiricalDistribution d({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf(2.0), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(3.0), 1.0);
  EXPECT_DOUBLE_EQ(d.cdf(100.0), 1.0);
}

TEST(EmpiricalDistribution, MassAt) {
  EmpiricalDistribution d({100.0, 100.0, 0.0, 50.0});
  EXPECT_DOUBLE_EQ(d.mass_at(100.0), 0.5);
  EXPECT_DOUBLE_EQ(d.mass_at(0.0), 0.25);
  EXPECT_DOUBLE_EQ(d.mass_at(42.0), 0.0);
}

TEST(EmpiricalDistribution, CdfSeries) {
  EmpiricalDistribution d({0.0, 50.0, 100.0});
  auto series = d.cdf_series(0, 100, 5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 100.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
  // CDF is monotone.
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
}

TEST(EmpiricalDistribution, EmptyThrowsOnQuantile) {
  EmpiricalDistribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_THROW(d.quantile(0.5), std::logic_error);
  EXPECT_THROW(d.min(), std::logic_error);
  EXPECT_DOUBLE_EQ(d.cdf(1.0), 0.0);
}

TEST(EmpiricalDistribution, AddKeepsOrderCorrect) {
  EmpiricalDistribution d;
  d.add(3.0);
  d.add(1.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  d.add(0.5);  // after a sorted read
  EXPECT_DOUBLE_EQ(d.min(), 0.5);
}

TEST(Percent, Format) {
  EXPECT_EQ(percent(83.449), "83.4%");
  EXPECT_EQ(percent(0.0), "0.0%");
  EXPECT_EQ(percent(100.0), "100.0%");
}

TEST(FormatRow, PadsToWidths) {
  EXPECT_EQ(format_row({"a", "bb"}, {4, 4}), "a    bb  ");
  // Missing widths default to 12.
  EXPECT_EQ(format_row({"x"}, {}), std::string("x") + std::string(11, ' '));
  EXPECT_EQ(format_row({}, {}), "");
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next() != b.next();
  EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(10), 10u);
    double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    int64_t v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ParetoRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.pareto_int(3, 1.2, 100);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 100u);
  }
}

TEST(Rng, WeightedIndexRespectsZeroWeights) {
  Rng rng(7);
  std::vector<double> weights{0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(Rng, SampleIndicesDistinct) {
  Rng rng(7);
  auto sample = rng.sample_indices(50, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(std::unique(sample.begin(), sample.end()), sample.end());
  EXPECT_LT(sample.back(), 50u);
}

TEST(Rng, SampleMoreThanAvailable) {
  Rng rng(7);
  auto sample = rng.sample_indices(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, ForkIndependentStreams) {
  Rng base(9);
  Rng s1 = base.fork(1);
  Rng s2 = base.fork(2);
  bool differ = false;
  for (int i = 0; i < 10; ++i) differ |= s1.next() != s2.next();
  EXPECT_TRUE(differ);
}

// Statistical sanity: uniform01 mean ~0.5 over many draws.
TEST(Rng, Uniform01Mean) {
  Rng rng(1234);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

}  // namespace
}  // namespace manrs::util
