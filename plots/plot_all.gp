# Gnuplot script for the paper's CDF figures.
#
# Generate the data files, then plot:
#
#   mkdir -p plots/data
#   MANRS_PLOT_DIR=plots/data ./build/bench/fig05_origination
#   MANRS_PLOT_DIR=plots/data ./build/bench/fig07_filtering
#   MANRS_PLOT_DIR=plots/data ./build/bench/fig08_unconformant
#   MANRS_PLOT_DIR=plots/data ./build/bench/fig09_preference
#   gnuplot -e "datadir='plots/data'" plots/plot_all.gp
#
# Produces fig05a.png ... fig09.png next to the data directory.

if (!exists("datadir")) datadir = "plots/data"

set terminal pngcairo size 900,600 font ",11"
set key bottom right
set ylabel "CDF"
set yrange [0:1]
set grid

set output datadir."/../fig05a.png"
set title "Fig 5a: percent of originated RPKI Valid prefixes"
set xlabel "Percent of originated RPKI Valid prefixes"
set xrange [0:100]
plot for [f in system("ls ".datadir."/fig05a.*.dat")] f using 1:2 \
     with steps title system("basename ".f." .dat")[8:*]

set output datadir."/../fig05b.png"
set title "Fig 5b: percent of originated IRR Valid prefixes"
set xlabel "Percent of originated IRR Valid prefixes"
plot for [f in system("ls ".datadir."/fig05b.*.dat")] f using 1:2 \
     with steps title system("basename ".f." .dat")[8:*]

set output datadir."/../fig07a.png"
set title "Fig 7a: percent of propagated RPKI Invalid prefixes"
set xlabel "Percent of propagated RPKI Invalid prefixes"
set xrange [0:2]
plot for [f in system("ls ".datadir."/fig07a.*.dat")] f using 1:2 \
     with steps title system("basename ".f." .dat")[8:*]

set output datadir."/../fig07b.png"
set title "Fig 7b: percent of propagated IRR Invalid prefixes"
set xlabel "Percent of propagated IRR Invalid prefixes"
set xrange [0:40]
plot for [f in system("ls ".datadir."/fig07b.*.dat")] f using 1:2 \
     with steps title system("basename ".f." .dat")[8:*]

set output datadir."/../fig08.png"
set title "Fig 8: percent of propagated MANRS-unconformant customer prefixes"
set xlabel "Percent of propagated unconformant prefixes"
set xrange [0:25]
plot for [f in system("ls ".datadir."/fig08.*.dat")] f using 1:2 \
     with steps title system("basename ".f." .dat")[7:*]

set output datadir."/../fig09.png"
set title "Fig 9: MANRS preference score by RPKI status"
set xlabel "MANRS preference score"
set xrange [-4:3]
plot for [f in system("ls ".datadir."/fig09.*.dat")] f using 1:2 \
     with steps title system("basename ".f." .dat")[7:*]
