// irr_tools: working with IRR data the way IXPs and cloud providers do
// (§2.2: "Some IXPs and cloud providers use as-set to determine from which
// ASes to accept BGP announcements").
//
// The example builds a small multi-registry IRR universe from RPSL text
// (the exact format real registries serve), then:
//   1. expands a customer as-set recursively across registries,
//   2. generates a prefix-filter list from the expansion's route objects,
//   3. validates a batch of announcements against it (route-server
//      ingress filtering, the MANRS IXP program's Action 1).
#include <cstdio>
#include <sstream>

#include "irr/database.h"
#include "irr/validation.h"

using namespace manrs;

int main() {
  // --- 1. load RPSL into two registries; RADB mirrors RIPE --------------
  const char* ripe_dump = R"(
route:          193.0.0.0/21
origin:         AS64500
mnt-by:         MAINT-EX1
source:         RIPE

route:          193.0.8.0/21
origin:         AS64501
mnt-by:         MAINT-EX2
source:         RIPE

as-set:         AS-EUCUST
members:        AS64501
source:         RIPE
)";
  const char* radb_dump = R"(
route:          203.0.113.0/24
origin:         AS64502
source:         RADB

route6:         2001:db8:1000::/36
origin:         AS64500
source:         RADB

as-set:         AS-EXAMPLE
members:        AS64500, AS-EUCUST, AS-CUSTOMERS
source:         RADB

as-set:         AS-CUSTOMERS
members:        AS64502, AS-EXAMPLE
source:         RADB
)";  // note: AS-CUSTOMERS <-> AS-EXAMPLE is a cycle, as found in the wild

  irr::IrrRegistry registry;
  auto& ripe = registry.add_database("RIPE", /*authoritative=*/true);
  auto& radb = registry.add_database("RADB", /*authoritative=*/false);
  std::istringstream ripe_in(ripe_dump), radb_in(radb_dump);
  size_t malformed = 0;
  size_t loaded = ripe.load_rpsl(ripe_in, &malformed);
  loaded += radb.load_rpsl(radb_in, &malformed);
  std::printf("loaded %zu objects (%zu malformed lines)\n", loaded,
              malformed);
  registry.mirror(ripe, "RADB");
  std::printf("RADB after mirroring RIPE: %zu route objects\n\n",
              registry.find_database("RADB")->route_count());

  // --- 2. expand the peering as-set --------------------------------------
  size_t missing = 0;
  auto members = registry.expand_as_set("AS-EXAMPLE", 32, &missing);
  std::printf("AS-EXAMPLE expands to %zu ASNs (%zu unresolvable sets):\n ",
              members.size(), missing);
  for (net::Asn asn : members) std::printf(" %s", asn.to_string().c_str());
  std::printf("\n\n");

  // --- 3. build the prefix filter and validate announcements ------------
  std::printf("route-server ingress filter (prefix, origin):\n");
  struct Announcement {
    const char* prefix;
    uint32_t origin;
  };
  const Announcement incoming[] = {
      {"193.0.0.0/21", 64500},    // registered exactly: accept
      {"193.0.2.0/24", 64500},    // more specific (TE de-aggregation)
      {"193.0.8.0/21", 64502},    // wrong origin: reject
      {"203.0.113.0/24", 64502},  // registered in RADB: accept
      {"198.51.100.0/24", 64500},  // not registered anywhere: reject
      {"2001:db8:1234::/48", 64500},  // inside the registered /36
  };
  for (const auto& a : incoming) {
    net::Prefix prefix = net::Prefix::must_parse(a.prefix);
    net::Asn origin(a.origin);
    bool member = std::find(members.begin(), members.end(), origin) !=
                  members.end();
    irr::IrrStatus status = irr::validate_route(registry, prefix, origin);
    // IXP policy: origin must be in the customer as-set AND the route
    // object must not name a different origin (Invalid Length passes,
    // matching the paper's conformance treatment of de-aggregation, §3).
    bool accept = member && (status == irr::IrrStatus::kValid ||
                             status == irr::IrrStatus::kInvalidLength);
    std::printf("  %-22s %-8s in-set=%-3s irr=%-14s -> %s\n", a.prefix,
                origin.to_string().c_str(), member ? "yes" : "no",
                std::string(irr::to_string(status)).c_str(),
                accept ? "ACCEPT" : "REJECT");
  }
  return 0;
}
