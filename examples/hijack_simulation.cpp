// hijack_simulation: the motivating scenario from the paper's introduction
// (§1, §2.1) -- a BGP prefix-origin hijack -- played out on the simulator,
// showing how RPKI registration plus ROV deployment (what MANRS Actions
// 1/4 push for) contains the attack.
//
// Three experiments on the same topology:
//   1. victim has NO ROA: the hijack is RPKI NotFound, nothing drops it;
//   2. victim has a ROA: the hijack classifies RPKI Invalid and every
//      ROV-deploying AS (and its customer cone) is protected;
//   3. sweep ROV deployment 0%..100% among large networks and measure the
//      fraction of the Internet accepting the hijacked route.
#include <cstdio>

#include "rpki/validation.h"
#include "simulator/propagation.h"
#include "topogen/scenario.h"
#include "util/rng.h"

using namespace manrs;

namespace {

/// Fraction of ASes that route toward the attacker rather than the victim
/// when both announce the same prefix. With equal prefix lengths, each AS
/// picks by policy preference and path length -- exactly how a real MOAS
/// conflict resolves -- so we propagate both and compare distances.
double hijack_capture_share(const sim::PropagationSim& simulator,
                            net::Asn victim, net::Asn attacker,
                            const sim::AnnouncementClass& attacker_class) {
  auto victim_routes =
      simulator.propagate(victim, sim::AnnouncementClass{});
  auto attacker_routes = simulator.propagate(attacker, attacker_class);
  size_t attacker_wins = 0, total = 0;
  for (size_t id = 0; id < simulator.indexer().size(); ++id) {
    net::Asn asn = simulator.indexer().asn_of(static_cast<int32_t>(id));
    if (asn == victim || asn == attacker) continue;
    bool has_victim = victim_routes.reached(static_cast<int32_t>(id));
    bool has_attacker = attacker_routes.reached(static_cast<int32_t>(id));
    if (!has_victim && !has_attacker) continue;
    ++total;
    if (!has_attacker) continue;
    if (!has_victim) {
      ++attacker_wins;
      continue;
    }
    // Both available: BGP preference = route source class, then distance.
    auto v_src = victim_routes.source[id];
    auto a_src = attacker_routes.source[id];
    if (a_src > v_src ||
        (a_src == v_src &&
         attacker_routes.distance[id] < victim_routes.distance[id])) {
      ++attacker_wins;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(attacker_wins) /
                          static_cast<double>(total);
}

}  // namespace

int main() {
  topogen::ScenarioConfig config = topogen::ScenarioConfig::tiny();
  config.seed = 7;
  topogen::Scenario scenario = topogen::build_scenario(config);

  // Victim: a small MANRS AS; attacker: a small non-MANRS AS far away.
  net::Asn victim, attacker;
  for (const auto& p : scenario.profiles) {
    if (p.manrs && p.size == astopo::SizeClass::kSmall &&
        victim.value() == 0) {
      victim = p.asn;
    }
    if (!p.manrs && p.size == astopo::SizeClass::kSmall &&
        p.org_id != scenario.profile_of(victim)->org_id) {
      attacker = p.asn;
    }
  }
  std::printf("victim: %s (MANRS member), attacker: %s\n\n",
              victim.to_string().c_str(), attacker.to_string().c_str());

  sim::PropagationSim simulator = scenario.make_sim();

  // Experiment 1: no ROA -> hijack is RPKI NotFound, ROV cannot help.
  sim::AnnouncementClass not_found;  // no validity flags set
  double share1 =
      hijack_capture_share(simulator, victim, attacker, not_found);
  std::printf("1. victim without ROA: hijack classifies NotFound\n");
  std::printf("   attacker captures %.1f%% of routing decisions\n\n",
              100.0 * share1);

  // Experiment 2: victim registered a ROA -> the hijacked announcement is
  // RPKI Invalid and ROV deployers drop it.
  sim::AnnouncementClass invalid;
  invalid.rpki_invalid = true;
  double share2 = hijack_capture_share(simulator, victim, attacker, invalid);
  std::printf("2. victim with ROA (MANRS Action 4): hijack is RPKI Invalid\n");
  std::printf("   attacker captures %.1f%% (%.1fx reduction)\n\n",
              100.0 * share2, share2 > 0 ? share1 / share2 : 999.0);

  // Experiment 3: ROV deployment sweep among large networks.
  std::printf("3. ROV deployment sweep (large networks deploying ROV)\n");
  std::printf("   %-10s %s\n", "deployed", "hijack capture share");
  for (double rate : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    sim::PropagationSim sweep(scenario.graph);
    util::Rng rng(42);
    for (const auto& p : scenario.profiles) {
      sim::FilterPolicy policy;  // only ROV, nothing else
      if (p.size == astopo::SizeClass::kLarge) {
        policy.rov = rng.bernoulli(rate);
      }
      sweep.set_policy(p.asn, policy);
    }
    double share = hijack_capture_share(sweep, victim, attacker, invalid);
    std::printf("   %8.0f%% %18.1f%%\n", 100.0 * rate, 100.0 * share);
  }
  std::printf(
      "\nTakeaway: registration alone (Action 4) does nothing until\n"
      "transit networks filter on it (Action 1 / ROV) -- and partial\n"
      "deployment by large networks already shields their whole cones,\n"
      "which is the collective-action argument behind MANRS.\n");
  return 0;
}
