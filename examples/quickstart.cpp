// Quickstart: generate a miniature Internet, run the MANRS measurement
// pipeline end to end, and print a conformance summary.
//
//   $ ./quickstart [seed]
//
// This walks the same stages as the paper (§6): build the datasets,
// classify every prefix-origin against RPKI (RFC 6811) and the IRR,
// compute per-AS conformance to MANRS Actions 1 and 4, and summarize.
#include <cstdio>
#include <cstdlib>

#include "core/conformance.h"
#include "core/report.h"
#include "ihr/dataset.h"
#include "topogen/scenario.h"

using namespace manrs;

int main(int argc, char** argv) {
  topogen::ScenarioConfig config = topogen::ScenarioConfig::tiny();
  if (argc > 1) config.seed = std::strtoull(argv[1], nullptr, 10);

  std::printf("Generating a miniature Internet (seed %llu)...\n",
              static_cast<unsigned long long>(config.seed));
  topogen::Scenario scenario = topogen::build_scenario(config);
  std::printf("  %zu ASes, %zu edges, %zu orgs, %zu MANRS participants\n",
              scenario.graph.as_count(), scenario.graph.edge_count(),
              scenario.as2org.organization_count(),
              scenario.manrs.participant_count());
  std::printf("  %zu VRPs, %zu IRR route objects, %zu announcements\n",
              scenario.vrps.size(), scenario.irr.total_routes(),
              scenario.announcements().size());

  // Build the IHR-style datasets: classify and propagate everything.
  sim::PropagationSim simulator = scenario.make_sim();
  ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
  ihr::IhrSnapshot snapshot =
      builder.build(scenario.announcements(), scenario.vrps, scenario.irr);
  std::printf("IHR snapshot: %zu prefix-origins, %zu transit records\n",
              snapshot.prefix_origins.size(), snapshot.transits.size());

  // Per-AS conformance.
  auto origination = core::compute_origination_stats(snapshot.prefix_origins);
  auto propagation = core::compute_propagation_stats(snapshot.transits);

  size_t a4_ok = 0, a4_total = 0, a1_ok = 0, a1_total = 0;
  for (net::Asn asn : scenario.manrs.member_ases()) {
    auto program = scenario.manrs.program_of(asn);
    auto og = origination.find(asn.value());
    auto verdict4 = core::check_action4(
        og == origination.end() ? nullptr : &og->second, *program);
    ++a4_total;
    if (verdict4.conformant) ++a4_ok;
    auto pg = propagation.find(asn.value());
    auto verdict1 =
        core::check_action1(pg == propagation.end() ? nullptr : &pg->second);
    ++a1_total;
    if (verdict1.conformant) ++a1_ok;
  }
  std::printf("MANRS Action 4 (registration): %zu/%zu ASes conformant\n",
              a4_ok, a4_total);
  std::printf("MANRS Action 1 (filtering):    %zu/%zu ASes conformant\n",
              a1_ok, a1_total);

  // RPKI saturation (Formulas 7-8).
  auto prefix2as = astopo::prefix2as_from_rib([&] {
    sim::RouteCollector collector(simulator, scenario.vantage_points);
    std::vector<sim::Announcement> anns;
    for (const auto& po : scenario.announcements()) {
      anns.push_back(sim::Announcement{po.prefix, po.origin, {}});
    }
    return collector.collect(anns);
  }());
  auto saturation =
      core::compute_rpki_saturation(prefix2as, scenario.vrps, scenario.manrs);
  std::printf("RPKI saturation: MANRS %.1f%%, non-MANRS %.1f%%\n",
              saturation.rsat_manrs(), saturation.rsat_non_manrs());

  // One ISOC-style member report, for flavour.
  if (!scenario.manrs.participants().empty()) {
    const core::Participant& participant = scenario.manrs.participants()[0];
    core::MemberReport report = core::build_member_report(
        participant, snapshot.prefix_origins, snapshot.transits);
    std::printf("\nSample monthly report (%s):\n", participant.org_id.c_str());
    std::printf("  Action 4: %s, Action 1: %s\n",
                report.action4_conformant ? "conformant" : "NOT conformant",
                report.action1_conformant ? "conformant" : "NOT conformant");
  }
  std::printf("\nDone.\n");
  return 0;
}
