// dataset_export: materialize every dataset the paper's pipeline consumes
// (§5) as files on disk, in the real-world formats:
//
//   out/rib.<collector>.mrt      TABLE_DUMP_V2 RIB dumps (RouteViews-like)
//   out/prefix2as.txt            CAIDA pfx2as
//   out/as-rel.txt               CAIDA AS relationships (serial-1)
//   out/as2org.txt               CAIDA as2org flat file
//   out/vrps.csv                 RIPE-style validated-ROA export
//   out/irr.<SOURCE>.db          RPSL dumps, one per registry
//   out/manrs-participants.csv   the MANRS participant list + join dates
//   out/ihr-prefix-origins.csv   IHR prefix-origin dataset
//   out/ihr-transits.csv         IHR transit dataset with hegemony
//
// A downstream user can point their own tooling (bgpdump, bgpq4, ...) at
// these files; this is also how the repository's data formats get
// exercised end to end.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "astopo/prefix2as.h"
#include "ihr/dataset.h"
#include "mrt/table_dump.h"
#include "rpki/archive.h"
#include "simulator/collector.h"
#include "topogen/scenario.h"

using namespace manrs;

int main(int argc, char** argv) {
  std::filesystem::path out_dir = argc > 1 ? argv[1] : "out";
  std::filesystem::create_directories(out_dir);

  topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  sim::PropagationSim simulator = scenario.make_sim();

  auto open = [&](const std::string& name) {
    std::ofstream file(out_dir / name, std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n",
                   (out_dir / name).string().c_str());
      std::exit(1);
    }
    return file;
  };
  auto note = [&](const std::string& name, size_t items,
                  const char* what) {
    std::printf("  %-28s %8zu %s\n", name.c_str(), items, what);
  };

  std::printf("exporting datasets to %s/\n", out_dir.string().c_str());

  // Collector RIB -> MRT.
  sim::RouteCollector collector(simulator, scenario.vantage_points,
                                "route-views.sim");
  std::vector<sim::Announcement> announcements;
  {
    auto records = scenario.announcements();
    ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
    // Classify so filtering behaves as in the real system.
    for (const auto& po : records) {
      sim::AnnouncementClass cls;
      auto rpki = scenario.vrps.validate(po.prefix, po.origin);
      auto irrs = irr::validate_route(scenario.irr, po.prefix, po.origin);
      cls.rpki_invalid = rpki::is_invalid(rpki);
      cls.irr_invalid = irrs == irr::IrrStatus::kInvalidAsn;
      cls.variant = sim::filter_variant(po.prefix);
      announcements.push_back({po.prefix, po.origin, cls});
    }
  }
  bgp::Rib rib = collector.collect(announcements);
  {
    auto file = open("rib.route-views.sim.mrt");
    mrt::TableDumpWriter writer(file, 1651363200);  // 2022-05-01 00:00 UTC
    size_t records = writer.write_rib(rib, collector.name());
    note("rib.route-views.sim.mrt", records, "TABLE_DUMP_V2 records");
  }

  // pfx2as from the decoded RIB (the CAIDA derivation).
  {
    auto rows = astopo::prefix2as_from_rib(rib);
    auto file = open("prefix2as.txt");
    astopo::write_prefix2as(file, rows);
    note("prefix2as.txt", rows.size(), "prefix-origin rows");
  }

  // AS relationships and as2org.
  {
    auto file = open("as-rel.txt");
    scenario.graph.write_as_rel(file);
    note("as-rel.txt", scenario.graph.edge_count(), "relationships");
  }
  {
    auto file = open("as2org.txt");
    scenario.as2org.write(file);
    note("as2org.txt", scenario.as2org.mapped_as_count(), "AS mappings");
  }

  // Validated ROAs.
  {
    std::vector<rpki::Vrp> vrps;
    scenario.vrps.for_each([&](const rpki::Vrp& v) { vrps.push_back(v); });
    auto file = open("vrps.csv");
    rpki::write_vrp_csv(file, vrps, scenario.snapshot_date);
    note("vrps.csv", vrps.size(), "VRPs");
  }

  // IRR registries, one RPSL dump per source.
  for (const irr::IrrDatabase* db : scenario.irr.databases()) {
    std::string name = "irr." + db->name() + ".db";
    auto file = open(name);
    db->write_rpsl(file);
    note(name, db->route_count(), "route objects");
  }

  // MANRS participant list.
  {
    auto file = open("manrs-participants.csv");
    scenario.manrs.write_csv(file);
    note("manrs-participants.csv", scenario.manrs.participant_count(),
         "participants");
  }

  // IHR datasets.
  {
    ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
    ihr::IhrSnapshot snapshot =
        builder.build(scenario.announcements(), scenario.vrps, scenario.irr);
    auto po_file = open("ihr-prefix-origins.csv");
    ihr::write_prefix_origin_csv(po_file, snapshot.prefix_origins);
    note("ihr-prefix-origins.csv", snapshot.prefix_origins.size(),
         "prefix-origin records");
    auto tr_file = open("ihr-transits.csv");
    ihr::write_transit_csv(tr_file, snapshot.transits);
    note("ihr-transits.csv", snapshot.transits.size(), "transit records");
  }

  std::printf("done.\n");
  return 0;
}
