// conformance_audit: the operator-facing tool the paper promises in §12 --
// "We will make our analysis code available to network operators to help
// them monitor their state of routing security and to non-MANRS networks
// for checking if they meet the requirements to join MANRS."
//
// Usage:
//   conformance_audit                 audit every MANRS participant
//   conformance_audit AS64500         audit one AS (member or not)
//   conformance_audit --org org-cdn1  print an ISOC-style monthly report
//
// The example runs on a generated scenario; swapping the data source for
// real RPKI/IRR/BGP archives only changes how the registries are loaded
// (see the read_* functions in rpki/archive.h, irr/database.h,
// astopo/prefix2as.h).
#include <cstdio>
#include <cstring>
#include <iostream>

#include "core/report.h"
#include "ihr/dataset.h"
#include "topogen/scenario.h"

using namespace manrs;

namespace {

void audit_single_as(const topogen::Scenario& scenario,
                     const ihr::IhrSnapshot& snapshot, net::Asn asn) {
  auto origination = core::compute_origination_stats(snapshot.prefix_origins);
  auto propagation = core::compute_propagation_stats(snapshot.transits);
  auto og = origination.find(asn.value());
  auto pg = propagation.find(asn.value());

  bool member = scenario.manrs.is_member(asn);
  core::Program program =
      scenario.manrs.program_of(asn).value_or(core::Program::kIsp);
  std::printf("=== audit for %s ===\n", asn.to_string().c_str());
  std::printf("MANRS member: %s", member ? "yes" : "no");
  if (member) {
    std::printf(" (%s program, joined %s)",
                std::string(core::to_string(program)).c_str(),
                scenario.manrs.join_date(asn)->to_string().c_str());
  }
  std::printf("\n");

  const core::OriginationStats* og_stats =
      og == origination.end() ? nullptr : &og->second;
  auto verdict4 = core::check_action4(og_stats, program);
  if (og_stats != nullptr && og_stats->total > 0) {
    std::printf("originated prefixes: %zu (RPKI valid %.1f%%, IRR valid "
                "%.1f%%, MANRS-conformant %.1f%%)\n",
                og_stats->total, og_stats->og_rpki_valid(),
                og_stats->og_irr_valid(), og_stats->og_conformant());
  } else {
    std::printf("originated prefixes: none\n");
  }
  std::printf("Action 4 (register routes): %s%s\n",
              verdict4.conformant ? "PASS" : "FAIL",
              verdict4.trivially ? " (trivially: nothing originated)" : "");

  const core::PropagationStats* pg_stats =
      pg == propagation.end() ? nullptr : &pg->second;
  auto verdict1 = core::check_action1(pg_stats);
  if (pg_stats != nullptr && pg_stats->total > 0) {
    std::printf("propagated prefixes: %zu (RPKI invalid %.2f%%, IRR invalid "
                "%.2f%%; from customers: %zu, unconformant %zu)\n",
                pg_stats->total, pg_stats->pg_rpki_invalid(),
                pg_stats->pg_irr_invalid(), pg_stats->customer_total,
                pg_stats->customer_unconformant);
  } else {
    std::printf("propagated prefixes: none observed\n");
  }
  std::printf("Action 1 (filter customers): %s%s\n",
              verdict1.conformant ? "PASS" : "FAIL",
              verdict1.trivially ? " (trivially: provides no transit)" : "");

  // Actionable detail: the offending prefixes (what §10's operators asked
  // the MANRS reports to include).
  size_t shown = 0;
  for (const auto& record : snapshot.prefix_origins) {
    if (record.origin != asn) continue;
    if (core::classify_conformance(record.rpki, record.irr) !=
        core::ConformanceClass::kUnconformant) {
      continue;
    }
    if (shown == 0) std::printf("offending originations:\n");
    if (shown++ >= 10) {
      std::printf("  ... and more\n");
      break;
    }
    std::printf("  %-24s RPKI %-14s IRR %s\n",
                record.prefix.to_string().c_str(),
                std::string(rpki::to_string(record.rpki)).c_str(),
                std::string(irr::to_string(record.irr)).c_str());
  }
  if (!member && verdict4.conformant && verdict1.conformant) {
    std::printf("-> this network meets the Action 1/4 requirements to join "
                "MANRS\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  topogen::Scenario scenario =
      topogen::build_scenario(topogen::ScenarioConfig::tiny());
  sim::PropagationSim simulator = scenario.make_sim();
  ihr::IhrSnapshotBuilder builder(simulator, scenario.vantage_points);
  ihr::IhrSnapshot snapshot =
      builder.build(scenario.announcements(), scenario.vrps, scenario.irr);

  if (argc >= 3 && std::strcmp(argv[1], "--org") == 0) {
    const core::Participant* participant = scenario.manrs.find_org(argv[2]);
    if (participant == nullptr) {
      std::fprintf(stderr, "unknown organization '%s'\n", argv[2]);
      return 1;
    }
    core::MemberReport report = core::build_member_report(
        *participant, snapshot.prefix_origins, snapshot.transits);
    core::print_member_report(std::cout, report);
    return 0;
  }

  if (argc >= 2) {
    auto asn = net::Asn::parse(argv[1]);
    if (!asn) {
      std::fprintf(stderr, "malformed ASN '%s'\n", argv[1]);
      return 1;
    }
    if (scenario.profile_of(*asn) == nullptr) {
      // Pick a real AS from the scenario so the example always produces a
      // meaningful audit.
      std::fprintf(stderr,
                   "AS%u is not in the generated topology; auditing a "
                   "sample AS instead\n",
                   asn->value());
      *asn = scenario.manrs.member_ases().front();
    }
    audit_single_as(scenario, snapshot, *asn);
    return 0;
  }

  // Default: fleet-wide audit summary, like the MANRS Observatory.
  auto origination = core::compute_origination_stats(snapshot.prefix_origins);
  auto propagation = core::compute_propagation_stats(snapshot.transits);
  size_t a4_fail = 0, a1_fail = 0, both_pass = 0;
  for (const auto& participant : scenario.manrs.participants()) {
    core::MemberReport report = core::build_member_report(
        participant, snapshot.prefix_origins, snapshot.transits);
    bool a4 = report.action4_conformant;
    bool a1 = report.action1_conformant;
    if (!a4) ++a4_fail;
    if (!a1) ++a1_fail;
    if (a4 && a1) ++both_pass;
    if (!a4 || !a1) {
      std::printf("%-12s %-4s Action4=%s Action1=%s\n",
                  participant.org_id.c_str(),
                  std::string(core::to_string(participant.program)).c_str(),
                  a4 ? "PASS" : "FAIL", a1 ? "PASS" : "FAIL");
    }
  }
  std::printf("\n%zu participants: %zu fully conformant, %zu fail Action 4, "
              "%zu fail Action 1\n",
              scenario.manrs.participant_count(), both_pass, a4_fail,
              a1_fail);
  std::printf("(run with an ASN or --org <org-id> for a detailed report)\n");
  return 0;
}
