// Weekly snapshot series for the conformance-stability analysis (§8.5).
//
// The paper takes 12 weekly IHR snapshots between Feb 1 and May 1, 2022
// and reports: 17/20 CDNs stable-conformant, 3 stable-unconformant; 35 ISP
// ASes consistently unconformant; 11 ASes unconformant only in some weeks
// (one of which flip-flopped twice); and per-prefix churn at CDN1 (80
// stopped / 141 new announcements, active set stable).
//
// build_weekly_series layers exactly that churn on a Scenario:
//   * background announce/withdraw churn (~0.4%/week),
//   * CDN1's prefix turnover,
//   * temporary misoriginations that push the designated "fluctuating"
//     ASes below the 90% bar for a contiguous run of weeks (a route-leak
//     pattern: announcing a prefix whose ROA names another AS).
#pragma once

#include <cstddef>
#include <vector>

#include "bgp/route.h"
#include "netbase/asn.h"
#include "topogen/scenario.h"
#include "util/date.h"

namespace manrs::topogen {

struct WeeklySeries {
  std::vector<util::Date> dates;  // ascending, last == snapshot_date
  /// Full announcement table per week (same index as dates).
  std::vector<std::vector<bgp::PrefixOrigin>> announcements;
  /// ASes scripted to fluctuate (unconformant in only some weeks).
  std::vector<net::Asn> fluctuating;
  /// The one AS whose conformance dipped twice (early Feb, late March).
  net::Asn flip_flopper;
  /// CDN1 churn bookkeeping for the §8.5 narrative.
  size_t cdn1_stopped = 0;
  size_t cdn1_new = 0;
};

WeeklySeries build_weekly_series(const Scenario& scenario, size_t weeks = 12);

}  // namespace manrs::topogen
