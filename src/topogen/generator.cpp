// Synthetic-Internet generator. See DESIGN.md §2 for the substitution
// rationale and config.h for the calibration sources.
//
// Generation order matters: populations -> organizations -> topology ->
// membership timeline -> prefixes & registrations -> policies -> final
// assembly. Registration decisions need the topology (wrong-origin picks
// prefer siblings and direct neighbors, which is what Table 1 measures).
#include "topogen/scenario.h"

#include <algorithm>
#include <array>
#include <deque>
#include <unordered_set>

#include "topogen/casestudies.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace manrs::topogen {

std::vector<bgp::PrefixOrigin> Scenario::announcements() const {
  return announcements_in_year(config.last_year);
}

std::vector<bgp::PrefixOrigin> Scenario::announcements_in_year(
    int year) const {
  std::vector<bgp::PrefixOrigin> out;
  out.reserve(dated_announcements.size());
  for (const auto& a : dated_announcements) {
    if (a.first_year <= year && year <= a.last_year) out.push_back(a.po);
  }
  return out;
}

rpki::VrpStore Scenario::vrps_in_year(int year) const {
  rpki::VrpStore store;
  for (const auto& dated : dated_vrps) {
    if (dated.year <= year) store.add(dated.vrp);
  }
  return store;
}

const AsProfile* Scenario::profile_of(net::Asn asn) const {
  if (profile_index_.empty()) {
    for (size_t i = 0; i < profiles.size(); ++i) {
      profile_index_.emplace(profiles[i].asn.value(), i);
    }
  }
  auto it = profile_index_.find(asn.value());
  return it == profile_index_.end() ? nullptr : &profiles[it->second];
}

sim::PropagationSim Scenario::make_sim() const {
  sim::PropagationSim simulator(graph);
  for (const auto& profile : profiles) {
    simulator.set_policy(profile.asn, profile.policy);
  }
  return simulator;
}

namespace {

constexpr std::array<net::Rir, 5> kRirs = net::kAllRirs;

size_t rir_index(net::Rir r) { return static_cast<size_t>(r); }

/// Per-population RIR mix. MANRS small networks skew LACNIC (the Brazil
/// cohort is added explicitly on top); large networks skew ARIN ("most
/// large networks are from the ARIN region", Fig 4).
std::array<double, 5> rir_weights(astopo::SizeClass size, bool manrs) {
  // Order: AFRINIC, LACNIC, APNIC, RIPE, ARIN.
  if (size == astopo::SizeClass::kLarge) {
    return {0.03, 0.05, 0.20, 0.27, 0.45};
  }
  if (manrs && size == astopo::SizeClass::kSmall) {
    return {0.07, 0.18, 0.20, 0.33, 0.22};
  }
  return {0.05, 0.13, 0.25, 0.35, 0.22};
}

std::string country_for(net::Rir rir, util::Rng& rng) {
  switch (rir) {
    case net::Rir::kAfrinic:
      return rng.bernoulli(0.5) ? "ZA" : "KE";
    case net::Rir::kLacnic:
      return rng.bernoulli(0.6) ? "BR" : "AR";
    case net::Rir::kApnic:
      return rng.bernoulli(0.4) ? "CN" : (rng.bernoulli(0.5) ? "JP" : "IN");
    case net::Rir::kRipe:
      return rng.bernoulli(0.4) ? "DE" : (rng.bernoulli(0.5) ? "NL" : "FR");
    case net::Rir::kArin:
      return rng.bernoulli(0.85) ? "US" : "CA";
  }
  return "US";
}

/// Cumulative fraction of eventual MANRS organizations joined by each
/// year, shaped like Fig 2 (slow start, steep 2020-2022).
double join_cdf(int year) {
  switch (year) {
    case 2015:
      return 0.04;
    case 2016:
      return 0.08;
    case 2017:
      return 0.14;
    case 2018:
      return 0.23;
    case 2019:
      return 0.38;
    case 2020:
      return 0.66;
    case 2021:
      return 0.86;
    default:
      return 1.0;
  }
}

/// RPKI adoption weight per year (Fig 6 shape: slow before 2019, fast
/// after); MANRS networks adopt the late years even harder (CDN program).
int draw_roa_year(util::Rng& rng, bool manrs) {
  static constexpr std::array<double, 8> kManrs{1, 1, 2, 3, 5, 9, 13, 15};
  static constexpr std::array<double, 8> kOther{1, 2, 3, 4, 6, 8, 10, 11};
  const auto& w = manrs ? kManrs : kOther;
  return 2015 +
         static_cast<int>(rng.weighted_index(std::span<const double>(w)));
}

struct Pending {
  AsProfile profile;
  bool quiet = false;
  bool cdn = false;
  bool tier1 = false;
  bool case_study = false;  // behaviour fully scripted by the template
  bool cs_all_invalid = false;
  bool cs_blemish = false;
  /// Space anchors hold the disproportionate address blocks of the
  /// paper's named giants (China Telecom / AS4134, Lumen / AS3356).
  bool space_anchor = false;
  size_t prefix_target = 0;

  // Behaviour draws (ground truth the pipeline must rediscover).
  double rpki_coverage = 0.0;
  bool rpki_misconfig = false;
  double irr_coverage = 0.0;
  double irr_stale = 0.0;
  bool irr_aggregates_only = false;
  bool deaggregates = false;
};

struct OrgDraft {
  std::string id;
  std::string name;
  net::Rir rir = net::Rir::kRipe;
  std::string country;
  std::vector<size_t> members;     // indices into `ases` (all siblings)
  std::vector<size_t> registered;  // subset registered in MANRS
  bool manrs = false;
  core::Program program = core::Program::kIsp;
  int join_year = 0;
};

class Generator {
 public:
  explicit Generator(const ScenarioConfig& config)
      : cfg_(config), rng_(config.seed) {}

  Scenario run() {
    create_populations();
    create_case_study_orgs();
    create_regular_orgs();
    build_topology();
    assign_join_years();
    draw_behaviours();
    make_space_anchors();
    // Per-AS plans fan out (each AS owns an RNG stream forked from
    // (seed, index)); allocation + emission stay serial in index order.
    std::vector<AsPlan> plans(ases_.size());
    util::parallel_for(ases_.size(), [&](size_t i) {
      if (!ases_[i].case_study) {
        util::Rng as_rng = util::Rng(cfg_.seed).fork(i);
        plans[i] = plan_as_data(i, as_rng);
      }
    });
    for (size_t i = 0; i < ases_.size(); ++i) {
      if (!ases_[i].case_study) emit_as_data(i, plans[i]);
    }
    if (cfg_.include_case_studies) apply_case_studies();
    apply_anchor_dip();
    make_as0_anchor();
    assign_policies();
    pick_vantage_points();
    return assemble();
  }

 private:
  // ---------------------------------------------------------------------
  void create_populations() {
    auto make_group = [&](const PopulationConfig& pop, astopo::SizeClass size,
                          bool manrs) {
      std::vector<size_t> quiet_picks =
          rng_.sample_indices(pop.count, pop.quiet);
      std::unordered_set<size_t> quiet(quiet_picks.begin(),
                                       quiet_picks.end());
      for (size_t i = 0; i < pop.count; ++i) {
        Pending p;
        p.profile.asn = next_asn();
        p.profile.size = size;
        p.profile.manrs = manrs;
        auto weights = rir_weights(size, manrs);
        p.profile.rir =
            kRirs[rng_.weighted_index(std::span<const double>(weights))];
        p.profile.country = country_for(p.profile.rir, rng_);
        p.quiet = quiet.count(i) > 0;
        group(manrs, size).push_back(ases_.size());
        ases_.push_back(std::move(p));
      }
    };
    make_group(cfg_.small_manrs, astopo::SizeClass::kSmall, true);
    make_group(cfg_.medium_manrs, astopo::SizeClass::kMedium, true);
    make_group(cfg_.large_manrs, astopo::SizeClass::kLarge, true);
    make_group(cfg_.small_other, astopo::SizeClass::kSmall, false);
    make_group(cfg_.medium_other, astopo::SizeClass::kMedium, false);
    make_group(cfg_.large_other, astopo::SizeClass::kLarge, false);

    // The Brazil cohort (Fig 4a): up to 90 small MANRS ASes in LACNIC/BR
    // that join in 2020 via the NIC.br outreach.
    auto& small_manrs = group(true, astopo::SizeClass::kSmall);
    size_t brazil =
        std::min<size_t>(small_manrs.size() / 5, 90);
    for (size_t i = 0; i < brazil; ++i) {
      Pending& p = ases_[small_manrs[i]];
      p.profile.rir = net::Rir::kLacnic;
      p.profile.country = "BR";
      brazil_cohort_.insert(small_manrs[i]);
    }
  }

  // ---------------------------------------------------------------------
  void create_case_study_orgs() {
    if (!cfg_.include_case_studies) return;
    for (const CaseStudyTemplate& tpl : case_study_templates()) {
      OrgDraft org;
      org.id = tpl.org_id;
      org.name = tpl.label;
      org.manrs = true;
      org.program = tpl.program;
      org.rir = tpl.label == "ISP3" ? net::Rir::kApnic : net::Rir::kArin;
      org.country = org.rir == net::Rir::kApnic ? "ID" : "US";

      bool cdn = tpl.program == core::Program::kCdn;
      size_t stub_budget = scaled_count(
          std::count_if(tpl.ases.begin(), tpl.ases.end(),
                        [](const CaseStudyAs& a) { return a.all_invalid; }));
      size_t sibling_budget = scaled_count(
          std::count_if(tpl.ases.begin(), tpl.ases.end(),
                        [](const CaseStudyAs& a) { return !a.registered; }));
      for (const CaseStudyAs& as_tpl : tpl.ases) {
        if (as_tpl.all_invalid) {
          if (stub_budget == 0) continue;
          --stub_budget;
        } else if (!as_tpl.registered) {
          if (sibling_budget == 0) continue;
          --sibling_budget;
        }
        size_t index = claim_as(as_tpl.size, as_tpl.registered, as_tpl.quiet);
        Pending& p = ases_[index];
        p.case_study = true;
        p.quiet = as_tpl.quiet;
        p.cdn = cdn && as_tpl.registered;
        p.cs_all_invalid = as_tpl.all_invalid;
        p.cs_blemish = as_tpl.sibling_blemish;
        p.profile.org_id = org.id;
        p.profile.rir = org.rir;
        p.profile.country = org.country;
        p.prefix_target =
            as_tpl.quiet ? 0 : scaled_count(as_tpl.prefixes);
        org.members.push_back(index);
        if (as_tpl.registered) org.registered.push_back(index);
      }
      case_study_org_ids_.emplace_back(tpl.label, org.id);
      orgs_.push_back(std::move(org));
    }
  }

  // ---------------------------------------------------------------------
  void create_regular_orgs() {
    // ---- MANRS organizations -------------------------------------------
    std::vector<size_t> manrs_pool;
    for (astopo::SizeClass size :
         {astopo::SizeClass::kSmall, astopo::SizeClass::kMedium,
          astopo::SizeClass::kLarge}) {
      for (size_t index : group(true, size)) {
        if (ases_[index].profile.org_id.empty()) manrs_pool.push_back(index);
      }
    }
    rng_.shuffle(manrs_pool);

    // ~1.25 registered ASes per org (Finding 7.0 scale): one AS per org,
    // then sprinkle the remainder.
    size_t org_count = std::max<size_t>(1, manrs_pool.size() * 4 / 5);
    size_t cursor = 0;
    std::vector<size_t> manrs_org_indices;
    for (size_t i = 0; i < org_count && cursor < manrs_pool.size(); ++i) {
      OrgDraft org;
      org.id = "org-m" + std::to_string(i);
      org.name = "ManrsNet-" + std::to_string(i);
      size_t first = manrs_pool[cursor++];
      org.rir = ases_[first].profile.rir;
      org.country = ases_[first].profile.country;
      org.manrs = true;
      org.members.push_back(first);
      org.registered.push_back(first);
      ases_[first].profile.org_id = org.id;
      manrs_org_indices.push_back(orgs_.size());
      orgs_.push_back(std::move(org));
    }
    while (cursor < manrs_pool.size()) {
      size_t as_index = manrs_pool[cursor++];
      size_t org_index =
          manrs_org_indices[rng_.uniform(manrs_org_indices.size())];
      OrgDraft& org = orgs_[org_index];
      org.members.push_back(as_index);
      org.registered.push_back(as_index);
      ases_[as_index].profile.org_id = org.id;
      ases_[as_index].profile.rir = org.rir;
      ases_[as_index].profile.country = org.country;
    }

    // CDN program: tag the configured number of MANRS ASes, preferring
    // large then medium ones (CDNs are big originators). Case-study CDN
    // ASes already count.
    size_t cdn_have = 0;
    for (const auto& p : ases_) {
      if (p.cdn) ++cdn_have;
    }
    size_t cdn_needed =
        cfg_.cdn_program_ases > cdn_have ? cfg_.cdn_program_ases - cdn_have
                                         : 0;
    // Prefer single-AS orgs so the per-organization program propagation
    // below does not overshoot the configured CDN AS count; cap the large
    // share (most large MANRS networks are transit ISPs, not CDNs --
    // China Telecom, Lumen, ... -- while the CDN program is dominated by
    // medium-degree content networks).
    size_t large_cdn_budget = 4;
    for (astopo::SizeClass size :
         {astopo::SizeClass::kLarge, astopo::SizeClass::kMedium,
          astopo::SizeClass::kSmall}) {
      if (cdn_needed == 0) break;
      for (size_t index : group(true, size)) {
        Pending& p = ases_[index];
        if (p.case_study || p.cdn) continue;
        if (size == astopo::SizeClass::kLarge) {
          if (large_cdn_budget == 0) break;
          --large_cdn_budget;
        }
        const OrgDraft* org = find_org(p.profile.org_id);
        if (!org || org->registered.size() != 1) continue;
        p.cdn = true;
        if (--cdn_needed == 0) break;
      }
    }
    // A program is per organization: propagate the tag across each org's
    // registered set.
    for (OrgDraft& org : orgs_) {
      bool any_cdn = false;
      for (size_t index : org.registered) any_cdn |= ases_[index].cdn;
      if (any_cdn) {
        org.program = core::Program::kCdn;
        for (size_t index : org.registered) ases_[index].cdn = true;
      }
    }

    // ---- partial registration (Finding 7.0) ----------------------------
    // The paper: 117 orgs announce some space from unregistered siblings
    // (8 of them *only* from unregistered ASes); 80 orgs keep quiescent
    // unregistered ASes.
    rng_.shuffle(manrs_org_indices);
    size_t originating_partial =
        std::min<size_t>(117, manrs_org_indices.size() / 3);
    size_t quiescent_partial =
        std::min<size_t>(80, manrs_org_indices.size() / 4);
    size_t only_unregistered = std::min<size_t>(8, originating_partial);
    size_t at = 0;
    for (size_t i = 0; i < originating_partial; ++i, ++at) {
      OrgDraft& org = orgs_[manrs_org_indices[at]];
      size_t extra = 1 + rng_.uniform(2);
      for (size_t k = 0; k < extra; ++k) {
        org.members.push_back(make_sibling_as(org, /*quiet=*/false));
      }
      if (i < only_unregistered) {
        for (size_t index : org.registered) ases_[index].quiet = true;
      }
    }
    for (size_t i = 0; i < quiescent_partial; ++i, ++at) {
      OrgDraft& org = orgs_[manrs_org_indices[at]];
      org.members.push_back(make_sibling_as(org, /*quiet=*/true));
    }

    // ---- non-MANRS organizations (1:1) ----------------------------------
    size_t org_seq = 0;
    for (astopo::SizeClass size :
         {astopo::SizeClass::kSmall, astopo::SizeClass::kMedium,
          astopo::SizeClass::kLarge}) {
      for (size_t index : group(false, size)) {
        Pending& p = ases_[index];
        if (!p.profile.org_id.empty()) continue;
        OrgDraft org;
        org.id = "org-x" + std::to_string(org_seq++);
        org.name = "Net-" + std::to_string(org_seq);
        org.rir = p.profile.rir;
        org.country = p.profile.country;
        org.members.push_back(index);
        p.profile.org_id = org.id;
        orgs_.push_back(std::move(org));
      }
    }
  }

  // ---------------------------------------------------------------------
  void build_topology() {
    std::vector<size_t> larges, mediums, smalls;
    for (size_t i = 0; i < ases_.size(); ++i) {
      switch (ases_[i].profile.size) {
        case astopo::SizeClass::kLarge:
          larges.push_back(i);
          break;
        case astopo::SizeClass::kMedium:
          mediums.push_back(i);
          break;
        case astopo::SizeClass::kSmall:
          smalls.push_back(i);
          break;
      }
    }
    for (const auto& p : ases_) graph_.add_as(p.profile.asn);

    // Tier-1 clique: a MANRS-heavy mix (~40%), reflecting that much of the
    // 2022 backbone -- Lumen, NTT, Telia, GTT, Telstra -- had joined MANRS
    // while most large networks overall had not. That mix is what gives
    // RPKI-Valid routes their positive MANRS preference baseline (Fig 9).
    rng_.shuffle(larges);
    std::stable_partition(larges.begin(), larges.end(), [&](size_t l) {
      return ases_[l].profile.manrs;
    });
    size_t t1 = std::min(cfg_.tier1_count, larges.size());
    size_t manrs_t1 = std::min<size_t>(t1 * 2 / 5, t1);
    // Order tier-1 picks: manrs_t1 members first, then non-members; the
    // partition above put members first, so rotate the member block down
    // to exactly manrs_t1 entries.
    size_t member_count = static_cast<size_t>(std::count_if(
        larges.begin(), larges.end(),
        [&](size_t l) { return ases_[l].profile.manrs; }));
    if (member_count > manrs_t1) {
      // Move the surplus members past the first t1 slots.
      std::rotate(larges.begin() + static_cast<long>(manrs_t1),
                  larges.begin() + static_cast<long>(member_count),
                  larges.end());
    }
    for (size_t i = 0; i < t1; ++i) {
      ases_[larges[i]].tier1 = true;
      for (size_t j = i + 1; j < t1; ++j) {
        graph_.add_peer_peer(asn(larges[i]), asn(larges[j]));
      }
    }
    // Non-tier-1 larges buy transit from tier-1s and peer laterally.
    for (size_t i = t1; i < larges.size(); ++i) {
      size_t providers = 1 + rng_.uniform(2);
      for (size_t k = 0; k < providers && t1 > 0; ++k) {
        graph_.add_provider_customer(asn(larges[rng_.uniform(t1)]),
                                     asn(larges[i]));
      }
      for (size_t j = t1; j < larges.size(); ++j) {
        if (j != i && rng_.bernoulli(0.15)) {
          graph_.add_peer_peer(asn(larges[i]), asn(larges[j]));
        }
      }
    }

    // Regional assortativity: providers are preferentially picked in the
    // customer's own RIR region (70%), which concentrates each transit
    // network's cone regionally -- the source of the per-network spread in
    // Figs 7b/8 (regional IRR hygiene differs, see draw_behaviours).
    std::array<std::vector<size_t>, 5> larges_by_rir, mediums_by_rir;
    for (size_t l : larges) {
      larges_by_rir[rir_index(ases_[l].profile.rir)].push_back(l);
    }
    for (size_t m : mediums) {
      mediums_by_rir[rir_index(ases_[m].profile.rir)].push_back(m);
    }
    auto pick_regional = [&](const std::vector<size_t>& global,
                             const std::array<std::vector<size_t>, 5>& by_rir,
                             net::Rir rir) -> size_t {
      const auto& local = by_rir[rir_index(rir)];
      if (!local.empty() && rng_.bernoulli(0.7)) {
        return local[rng_.uniform(local.size())];
      }
      return global[rng_.uniform(global.size())];
    };

    // Every medium gets 1-2 large providers; light lateral peering.
    for (size_t m : mediums) {
      size_t providers = 1 + rng_.uniform(2);
      for (size_t k = 0; k < providers; ++k) {
        graph_.add_provider_customer(
            asn(pick_regional(larges, larges_by_rir, ases_[m].profile.rir)),
            asn(m));
      }
      if (rng_.bernoulli(0.25)) {
        graph_.add_peer_peer(asn(m),
                             asn(mediums[rng_.uniform(mediums.size())]));
      }
    }

    // Every small gets 1-2 providers, mostly mediums.
    for (size_t sm : smalls) {
      size_t providers = 1 + (rng_.bernoulli(0.35) ? 1 : 0);
      net::Rir rir = ases_[sm].profile.rir;
      for (size_t k = 0; k < providers; ++k) {
        if (rng_.bernoulli(0.78) && !mediums.empty()) {
          graph_.add_provider_customer(
              asn(pick_regional(mediums, mediums_by_rir, rir)), asn(sm));
        } else {
          graph_.add_provider_customer(
              asn(pick_regional(larges, larges_by_rir, rir)), asn(sm));
        }
      }
    }

    // ~23% of small ASes provide transit to 1-2 other smalls (Table 2).
    for (size_t sm : smalls) {
      if (!rng_.bernoulli(0.23)) continue;
      size_t customers = 1 + rng_.uniform(2);
      for (size_t k = 0; k < customers; ++k) {
        size_t other = smalls[rng_.uniform(smalls.size())];
        if (other != sm && graph_.customer_degree(asn(sm)) < 2) {
          graph_.add_provider_customer(asn(sm), asn(other));
        }
      }
    }

    // Customer-quota top-ups are regional too.
    std::array<std::vector<size_t>, 5> smalls_by_rir;
    for (size_t sm : smalls) {
      smalls_by_rir[rir_index(ases_[sm].profile.rir)].push_back(sm);
    }

    // Medium customer quotas: degree in (2, 180].
    for (size_t m : mediums) {
      size_t target = 3 + rng_.pareto_int(1, 1.4, 150) - 1;
      target = std::min<size_t>(target, astopo::kMediumMaxDegree);
      size_t guard = 0;
      net::Rir rir = ases_[m].profile.rir;
      while (graph_.customer_degree(asn(m)) < target && guard < target * 6) {
        ++guard;
        size_t c = pick_regional(smalls, smalls_by_rir, rir);
        if (c != m) graph_.add_provider_customer(asn(m), asn(c));
      }
    }

    // Large customer quotas: strictly more than 180 direct customers.
    for (size_t l : larges) {
      size_t extra = rng_.pareto_int(1, 1.0, ases_[l].tier1 ? 1200 : 400);
      size_t target = astopo::kMediumMaxDegree + 1 + extra;
      size_t guard = 0;
      net::Rir rir = ases_[l].profile.rir;
      while (graph_.customer_degree(asn(l)) < target && guard < target * 6) {
        ++guard;
        bool pick_medium = rng_.bernoulli(0.30) && !mediums.empty();
        size_t c = pick_medium ? pick_regional(mediums, mediums_by_rir, rir)
                               : pick_regional(smalls, smalls_by_rir, rir);
        if (c != l) graph_.add_provider_customer(asn(l), asn(c));
      }
    }
  }

  // ---------------------------------------------------------------------
  void assign_join_years() {
    for (OrgDraft& org : orgs_) {
      if (!org.manrs) continue;
      double u = rng_.uniform01();
      int year = cfg_.last_year;
      for (int y = cfg_.first_year; y <= cfg_.last_year; ++y) {
        if (u <= join_cdf(y)) {
          year = y;
          break;
        }
      }
      if (org.program == core::Program::kCdn && year < 2020) {
        year = 2020 + static_cast<int>(rng_.uniform(3));
      }
      for (size_t index : org.members) {
        if (brazil_cohort_.count(index)) year = 2020;
      }
      org.join_year = year;
      for (size_t index : org.registered) {
        ases_[index].profile.manrs_join_year = year;
      }
    }

    for (Pending& p : ases_) {
      double u = rng_.uniform01();
      int year = cfg_.first_year +
                 static_cast<int>(u * u * (cfg_.last_year - cfg_.first_year));
      if (p.profile.manrs_join_year > 0) {
        year = std::min(year, p.profile.manrs_join_year);
      }
      p.profile.first_routed_year = year;
    }
  }

  // ---------------------------------------------------------------------
  /// IRR-record staleness varies by region (the IRR-accuracy literature
  /// the paper cites [20, 28] finds large regional differences); combined
  /// with the regionally assortative topology this yields the per-transit
  /// heterogeneity of Figs 7b/8.
  static double regional_stale_factor(net::Rir rir) {
    switch (rir) {
      case net::Rir::kAfrinic:
        return 2.2;
      case net::Rir::kLacnic:
        return 1.7;
      case net::Rir::kApnic:
        return 1.3;
      case net::Rir::kRipe:
        return 0.7;
      case net::Rir::kArin:
        return 0.8;
    }
    return 1.0;
  }

  void draw_behaviours() {
    auto behaviour_of = [&](const Pending& p) -> const PopulationConfig& {
      if (p.profile.manrs) {
        if (p.profile.size == astopo::SizeClass::kSmall) {
          return cfg_.small_manrs;
        }
        if (p.profile.size == astopo::SizeClass::kMedium) {
          return cfg_.medium_manrs;
        }
        return cfg_.large_manrs;
      }
      if (p.profile.size == astopo::SizeClass::kSmall) {
        return cfg_.small_other;
      }
      if (p.profile.size == astopo::SizeClass::kMedium) {
        return cfg_.medium_other;
      }
      return cfg_.large_other;
    };

    for (Pending& p : ases_) {
      if (p.case_study) continue;
      const RegistrationBehavior& reg = behaviour_of(p).registration;

      double u = rng_.uniform01();
      if (u < reg.rpki_full) {
        p.rpki_coverage = 1.0;
      } else if (u < reg.rpki_full + reg.rpki_none) {
        p.rpki_coverage = 0.0;
      } else if (p.profile.size == astopo::SizeClass::kLarge) {
        // Large networks' partial coverage is space-heavy legacy address
        // blocks (§8.6: RPKI registration of legacy space is hard), so
        // the mixed regime sits lower for non-members.
        p.rpki_coverage = p.profile.manrs ? rng_.uniform_real(0.25, 0.90)
                                          : rng_.uniform_real(0.05, 0.60);
      } else {
        p.rpki_coverage = rng_.uniform_real(0.05, 0.95);
      }
      p.rpki_misconfig = rng_.bernoulli(reg.rpki_misconfig);

      if (p.rpki_coverage == 0.0 &&
          p.profile.size != astopo::SizeClass::kLarge) {
        // "Registered only in IRR" (§8.2): ASes without RPKI presence
        // almost always keep complete IRR records -- though those records
        // go stale at the usual rate (the IRR-accuracy problem, [20]).
        p.irr_coverage =
            rng_.bernoulli(0.93) ? 1.0 : rng_.uniform_real(0.3, 0.95);
        p.irr_stale = reg.irr_stale * (p.profile.manrs ? 0.2 : 0.9) *
                      regional_stale_factor(p.profile.rir);
      } else {
        double v = rng_.uniform01();
        if (v < reg.irr_full) {
          p.irr_coverage = 1.0;
        } else if (v < reg.irr_full + reg.irr_none) {
          p.irr_coverage = 0.0;
        } else if (p.profile.size == astopo::SizeClass::kLarge) {
          // Finding 8.2: large MANRS networks let their IRR records rot
          // once RPKI is in place (median 63.5% IRR-valid), while large
          // non-MANRS networks still live off well-kept IRR data
          // (median 84.0%).
          p.irr_coverage = p.profile.manrs ? rng_.uniform_real(0.35, 0.80)
                                           : rng_.uniform_real(0.70, 1.0);
        } else {
          p.irr_coverage = rng_.uniform_real(0.2, 1.0);
        }
        p.irr_stale = rng_.bernoulli(0.5)
                          ? reg.irr_stale *
                                regional_stale_factor(p.profile.rir)
                          : 0.0;
      }

      // MANRS members keep their IRR records in much better shape than the
      // RPKI-only mixtures suggest: a member with an RPKI gap almost
      // always has the IRR side near-complete, otherwise the paper's 95%
      // Action-4 conformance (Finding 8.4) could not hold.
      if (p.profile.manrs && p.profile.size != astopo::SizeClass::kLarge &&
          p.rpki_coverage < 1.0 && p.irr_coverage < 1.0) {
        p.irr_coverage = std::max(
            p.irr_coverage,
            rng_.bernoulli(0.6) ? 1.0 : rng_.uniform_real(0.88, 1.0));
      }

      // Non-case-study CDNs keep complete registrations (§8.3: only the
      // three case-study CDNs miss the 100% bar).
      if (p.cdn) {
        p.rpki_coverage = 1.0;
        p.irr_coverage = 1.0;
        p.rpki_misconfig = false;
        p.irr_stale = 0.0;
      }
      // Unregistered siblings of MANRS orgs were still conformant
      // (Finding 8.6): claimed sibling ASes already carry coverage 1.0
      // from make_sibling_as via these flags.
      if (sibling_set_.count(static_cast<size_t>(&p - ases_.data()))) {
        p.rpki_coverage = 1.0;
        p.irr_coverage = 1.0;
        p.rpki_misconfig = false;
        p.irr_stale = 0.0;
      }

      p.irr_aggregates_only = rng_.bernoulli(0.15);
      p.deaggregates = rng_.bernoulli(0.12);

      if (p.quiet) {
        p.prefix_target = 0;
      } else if (p.prefix_target == 0) {
        switch (p.profile.size) {
          case astopo::SizeClass::kSmall:
            p.prefix_target = rng_.pareto_int(1, cfg_.small_prefix_alpha,
                                              cfg_.small_prefix_cap);
            break;
          case astopo::SizeClass::kMedium:
            p.prefix_target = rng_.pareto_int(2, cfg_.medium_prefix_alpha,
                                              cfg_.medium_prefix_cap);
            break;
          case astopo::SizeClass::kLarge:
            p.prefix_target =
                rng_.pareto_int(cfg_.large_prefix_min, cfg_.large_prefix_alpha,
                                cfg_.large_prefix_cap);
            break;
        }
      }
    }
  }

  // ---------------------------------------------------------------------
  /// The paper's named giants. AS4134 (China Telecom, APNIC) joined MANRS
  /// in 2020 holding ~4% of routed v4 space with minimal RPKI presence --
  /// the Fig 4b APNIC jump and a drag on MANRS RPKI saturation. A
  /// Lumen-like ARIN anchor announces fewer prefixes after 2020 (the
  /// Fig 4b 2021 dip).
  void make_space_anchors() {
    if (!cfg_.include_space_anchors) return;
    size_t made = 0;
    for (size_t i = 0; i < ases_.size() && made < 2; ++i) {
      Pending& p = ases_[i];
      if (!p.profile.manrs || p.case_study || p.cdn ||
          p.profile.size != astopo::SizeClass::kLarge || p.quiet) {
        continue;
      }
      p.space_anchor = true;
      p.rpki_coverage = 0.08;
      p.irr_coverage = 1.0;
      p.irr_stale = 0.02;
      p.rpki_misconfig = false;
      p.deaggregates = false;
      p.prefix_target = std::max<size_t>(p.prefix_target, 60);
      p.profile.rir = made == 0 ? net::Rir::kApnic : net::Rir::kArin;
      p.profile.country = made == 0 ? "CN" : "US";
      p.profile.first_routed_year = cfg_.first_year;
      if (made == 0) {
        // Membership override: joins in 2020 (handled via its org).
        if (OrgDraft* org = find_org(p.profile.org_id)) {
          org->join_year = 2020;
          for (size_t index : org->registered) {
            ases_[index].profile.manrs_join_year = 2020;
          }
        }
        anchor_apnic_ = i;
      } else {
        anchor_arin_ = i;
      }
      ++made;
    }
  }

  // ---------------------------------------------------------------------
  // Per-AS population generation is split in two so the expensive half
  // can fan out (ROADMAP: parallel scenario generation).
  //
  //   plan_as_data (parallel) -- every RNG draw and every graph/org
  //     lookup for one AS, written into an index-addressed AsPlan. Each
  //     AS gets its own RNG stream forked from (seed, index), so the
  //     plan -- and therefore the scenario bytes -- is identical at any
  //     thread count or grain.
  //   emit_as_data (serial, index order) -- address allocation (the
  //     per-RIR cursors are order-dependent shared state) and intent
  //     emission, zero RNG draws.

  /// One allocated block and everything decided about it.
  struct BlockPlan {
    bool v6 = false;
    unsigned len = 0;
    size_t extra_subnets = 0;  // de-aggregated /24s appended after block
    bool roa = false;
    unsigned roa_maxlen = 0;
    net::Asn roa_origin{0};
    int roa_year = 0;
    bool irr = false;
    bool irr_per_prefix = false;  // else one route object for the block
    net::Asn irr_origin{0};
    std::vector<bool> irr_radb;   // one per emitted route object
    std::vector<int> first_years;  // one per announced prefix
  };
  struct AsPlan {
    std::vector<BlockPlan> blocks;
  };

  /// Decide prefixes + registrations for one non-scripted AS. Only reads
  /// shared state (graph_, orgs_, ases_, cfg_); all draws come from the
  /// caller-owned per-AS `rng`.
  AsPlan plan_as_data(size_t index, util::Rng& rng) const {
    const Pending& p = ases_[index];
    AsPlan plan;
    if (p.quiet || p.prefix_target == 0) return plan;

    size_t announced_big_blocks = 0;
    size_t remaining = p.prefix_target;
    while (remaining > 0) {
      BlockPlan b;
      b.v6 = !p.space_anchor && rng.bernoulli(cfg_.ipv6_share);
      b.len = draw_prefix_len(rng, p.profile.size, b.v6);
      if (p.space_anchor && announced_big_blocks < 30) {
        static constexpr std::array<unsigned, 3> kBig{12, 14, 16};
        b.len = kBig[rng.uniform(3)];
        ++announced_big_blocks;
      }

      // Optionally de-aggregate (traffic engineering, §3). remaining >= 3
      // bounds extra_subnets, so every announced prefix gets announced.
      if (p.deaggregates && !b.v6 && b.len <= 22 && remaining >= 3 &&
          rng.bernoulli(0.5)) {
        size_t subnets = 1 + rng.uniform(3);
        b.extra_subnets = std::min(subnets, remaining - 1);
      }
      const size_t announced = 1 + b.extra_subnets;

      // Legacy-space drag (§8.6): the biggest blocks are the least likely
      // to be RPKI-signed -- except by operators who sign everything.
      double roa_p = p.rpki_coverage;
      if (!b.v6 && b.len <= 16 && p.rpki_coverage < 1.0) {
        roa_p *= p.profile.manrs ? 0.55 : 0.75;
      }
      b.roa = rng.uniform01() < roa_p;
      bool roa_wrong = false;
      if (p.rpki_misconfig && rng.bernoulli(0.08)) {
        b.roa = true;
        roa_wrong = true;
      }
      if (b.roa) {
        b.roa_origin =
            roa_wrong ? pick_wrong_origin(rng, index) : p.profile.asn;
        b.roa_maxlen = b.len;
        if (announced > 1 && !b.v6) {
          // Mostly cover the /24 de-aggregates; the remainder becomes
          // RPKI Invalid Length (Formula 4 counts them as invalid).
          // MANRS members keep max-length aligned more often.
          b.roa_maxlen =
              rng.bernoulli(p.profile.manrs ? 0.90 : 0.82) ? 24 : b.len;
        }
        b.roa_year = std::max(p.profile.first_routed_year,
                              draw_roa_year(rng, p.profile.manrs));
      }

      b.irr = rng.uniform01() < p.irr_coverage;
      if (b.irr) {
        b.irr_origin = p.profile.asn;
        if (p.irr_stale > 0 && rng.bernoulli(p.irr_stale)) {
          b.irr_origin = pick_wrong_origin(rng, index);
        }
        b.irr_per_prefix = !p.irr_aggregates_only && announced > 1;
        size_t objects = b.irr_per_prefix ? announced : 1;
        b.irr_radb.reserve(objects);
        for (size_t i = 0; i < objects; ++i) {
          b.irr_radb.push_back(rng.bernoulli(0.5));
        }
      }

      b.first_years.reserve(announced);
      for (size_t i = 0; i < announced; ++i) {
        int first_year = p.profile.first_routed_year;
        if (rng.bernoulli(0.35)) {
          first_year += static_cast<int>(rng.uniform(
              static_cast<uint64_t>(cfg_.last_year - first_year) + 1));
        }
        b.first_years.push_back(first_year);
      }

      remaining -= announced;
      plan.blocks.push_back(std::move(b));
    }
    return plan;
  }

  /// Allocate addresses and emit the intents a plan decided. Serial, in
  /// AS index order: the per-RIR allocation cursors make emission order
  /// part of the scenario's identity.
  void emit_as_data(size_t index, const AsPlan& plan) {
    const Pending& p = ases_[index];
    for (const BlockPlan& b : plan.blocks) {
      net::Prefix block = allocate(p.profile.rir, b.len, b.v6);
      org_resources_[p.profile.org_id].push_back(block);

      std::vector<net::Prefix> announced{block};
      for (size_t s = 0; s < b.extra_subnets; ++s) {
        uint32_t base = block.address().v4_value();
        uint32_t sub = base + static_cast<uint32_t>(s) * (1u << 8);
        announced.push_back(net::Prefix(net::IpAddress::v4(sub), 24));
      }

      if (b.roa) {
        add_roa(index, block, b.roa_maxlen, b.roa_origin, b.roa_year);
      }
      if (b.irr) {
        if (!b.irr_per_prefix) {
          routes_.push_back(
              RouteIntent{index, block, b.irr_origin, b.irr_radb[0]});
        } else {
          for (size_t i = 0; i < announced.size(); ++i) {
            routes_.push_back(RouteIntent{index, announced[i], b.irr_origin,
                                          b.irr_radb[i]});
          }
        }
      }
      for (size_t i = 0; i < announced.size(); ++i) {
        announcements_.push_back(AnnouncementIntent{
            index, bgp::PrefixOrigin{announced[i], p.profile.asn},
            b.first_years[i], 9999});
      }
    }
  }

  // ---------------------------------------------------------------------
  /// Script the six Table 1 organizations exactly.
  void apply_case_studies() {
    for (const CaseStudyTemplate& tpl : case_study_templates()) {
      OrgDraft* org = find_org(tpl.org_id);
      if (!org) continue;

      // Offense queues consumed while emitting prefixes.
      std::deque<astopo::AsAffinity> rpki_queue, irr_queue;
      auto fill = [](std::deque<astopo::AsAffinity>& q, size_t sib,
                     size_t cp, size_t unrel) {
        for (size_t i = 0; i < sib; ++i) {
          q.push_back(astopo::AsAffinity::kSibling);
        }
        for (size_t i = 0; i < cp; ++i) {
          q.push_back(astopo::AsAffinity::kCustomerProvider);
        }
        for (size_t i = 0; i < unrel; ++i) {
          q.push_back(astopo::AsAffinity::kUnrelated);
        }
      };
      fill(rpki_queue, scaled_count(tpl.rpki_invalid_sibling),
           scaled_count(tpl.rpki_invalid_cp),
           scaled_count(tpl.rpki_invalid_unrelated));
      fill(irr_queue, scaled_count(tpl.irr_invalid_sibling),
           scaled_count(tpl.irr_invalid_cp),
           scaled_count(tpl.irr_invalid_unrelated));
      size_t unregistered_left = scaled_count(tpl.unregistered);

      auto origin_for = [&](size_t index,
                            astopo::AsAffinity affinity) -> net::Asn {
        if (affinity == astopo::AsAffinity::kSibling) {
          for (size_t m : org->members) {
            if (m != index) return asn(m);
          }
        }
        if (affinity == astopo::AsAffinity::kCustomerProvider) {
          const auto& providers = graph_.providers(asn(index));
          if (!providers.empty()) {
            return providers[rng_.uniform(providers.size())];
          }
        }
        return pick_unrelated(rng_, index);
      };

      // Stub ASes (all_invalid) consume the IRR queue first; the primary
      // (largest) AS takes everything remaining; others stay clean unless
      // the queues still hold entries (ISP2's two ASes split the load).
      std::vector<size_t> emit_order;  // stubs first, then by size desc
      for (size_t index : org->members) {
        if (ases_[index].cs_all_invalid) emit_order.push_back(index);
      }
      std::vector<size_t> rest;
      for (size_t index : org->members) {
        const Pending& p = ases_[index];
        if (!p.cs_all_invalid && !p.quiet && p.prefix_target > 0) {
          rest.push_back(index);
        }
      }
      std::sort(rest.begin(), rest.end(), [&](size_t a, size_t b) {
        return ases_[a].prefix_target > ases_[b].prefix_target;
      });
      emit_order.insert(emit_order.end(), rest.begin(), rest.end());

      bool registered_pass = true;  // first loop over registered ASes
      std::unordered_set<size_t> registered_set(org->registered.begin(),
                                                org->registered.end());

      // Precompute how many offenses each registered AS should absorb so
      // multi-AS orgs (ISP2) have *every* AS below threshold: offenses
      // are split proportionally to prefix counts.
      size_t total_offenses =
          rpki_queue.size() + irr_queue.size() + unregistered_left;
      size_t total_prefixes = 0;
      for (size_t index : emit_order) {
        if (registered_set.count(index)) {
          total_prefixes += ases_[index].prefix_target;
        }
      }
      (void)registered_pass;

      for (size_t index : emit_order) {
        Pending& p = ases_[index];
        bool is_registered = registered_set.count(index) > 0;
        size_t quota = 0;
        if (is_registered && !p.cs_all_invalid && total_prefixes > 0) {
          quota = total_offenses * p.prefix_target / total_prefixes + 1;
        }
        for (size_t i = 0; i < p.prefix_target; ++i) {
          unsigned len = draw_prefix_len(rng_, p.profile.size, /*v6=*/false);
          net::Prefix prefix = allocate(p.profile.rir, len, false);
          org_resources_[p.profile.org_id].push_back(prefix);
          add_announcement(index, prefix);

          if (!is_registered) {
            // Unlisted sibling: fully conformant except the one blemish.
            if (p.cs_blemish && i == 0) {
              add_route_object(index, prefix, pick_unrelated(rng_, index));
            } else {
              add_roa(index, prefix, len, p.profile.asn);
              add_route_object(index, prefix, p.profile.asn);
            }
            continue;
          }

          bool emitted_offense = false;
          if (p.cs_all_invalid || quota > 0) {
            if (!irr_queue.empty()) {
              astopo::AsAffinity affinity = irr_queue.front();
              irr_queue.pop_front();
              add_route_object(index, prefix, origin_for(index, affinity));
              emitted_offense = true;
            } else if (!rpki_queue.empty()) {
              astopo::AsAffinity affinity = rpki_queue.front();
              rpki_queue.pop_front();
              add_roa(index, prefix, len, origin_for(index, affinity));
              emitted_offense = true;
            } else if (unregistered_left > 0) {
              --unregistered_left;
              emitted_offense = true;  // neither registry
            }
          }
          if (emitted_offense) {
            if (quota > 0) --quota;
            continue;
          }
          // Conformant prefix. The case-study CDNs register both ways
          // (the big content networks drove the RPKI saturation jump,
          // §8.6); the big ISPs are conformant mostly through the IRR.
          bool is_cdn = tpl.program == core::Program::kCdn;
          if (is_cdn || rng_.bernoulli(0.35)) {
            add_roa(index, prefix, len, p.profile.asn);
          }
          add_route_object(index, prefix, p.profile.asn);
        }
      }
    }
  }

  // ---------------------------------------------------------------------
  /// The ARIN anchor (Lumen-like) withdraws a quarter of its prefixes
  /// after 2020, producing the Fig 4b dip the paper attributes to Level3
  /// and China Telecom announcing fewer prefixes in 2021.
  void apply_anchor_dip() {
    if (anchor_arin_ == SIZE_MAX) return;
    size_t seen = 0;
    for (auto& intent : announcements_) {
      if (intent.owner != anchor_arin_) continue;
      if (++seen % 4 == 0) {
        intent.last_year = 2020;
        intent.first_year = std::min(intent.first_year, 2020);
      }
    }
  }

  // ---------------------------------------------------------------------
  void make_as0_anchor() {
    // A large non-MANRS ISP with two prefixes registered under AS0 in the
    // RPKI but correctly registered in RADB -- the paper's AS23947
    // misconfiguration case (§8.1).
    for (size_t i = 0; i < ases_.size(); ++i) {
      Pending& p = ases_[i];
      if (p.profile.manrs || p.case_study ||
          p.profile.size != astopo::SizeClass::kLarge) {
        continue;
      }
      size_t added = 0;
      for (const auto& a : announcements_) {
        if (a.owner != i || !a.po.prefix.is_v4()) continue;
        add_roa(i, a.po.prefix, a.po.prefix.length(), net::Asn(0),
                /*year=*/2019);
        add_route_object(i, a.po.prefix, p.profile.asn);
        if (++added == 2) break;
      }
      if (added > 0) {
        as0_anchor_ = p.profile.asn;
        break;
      }
    }
  }

  // ---------------------------------------------------------------------
  void assign_policies() {
    auto filters_of = [&](const Pending& p) -> const FilterBehavior& {
      if (p.profile.manrs) {
        if (p.profile.size == astopo::SizeClass::kSmall) {
          return cfg_.small_manrs.filtering;
        }
        if (p.profile.size == astopo::SizeClass::kMedium) {
          return cfg_.medium_manrs.filtering;
        }
        return cfg_.large_manrs.filtering;
      }
      if (p.profile.size == astopo::SizeClass::kSmall) {
        return cfg_.small_other.filtering;
      }
      if (p.profile.size == astopo::SizeClass::kMedium) {
        return cfg_.medium_other.filtering;
      }
      return cfg_.large_other.filtering;
    };
    for (Pending& p : ases_) {
      const FilterBehavior& f = filters_of(p);
      sim::FilterPolicy policy;
      policy.rov = rng_.bernoulli(f.rov);
      if (rng_.bernoulli(f.filter_customers)) {
        // Large networks maintain leaky manual filters (Table 2: no large
        // MANRS AS was fully Action-1 conformant); small MANRS networks
        // with one or two customers usually filter them completely
        // (Table 2: 97.1% of transiting small MANRS ASes conformant).
        if (p.profile.size == astopo::SizeClass::kLarge) {
          policy.customer_strictness =
              static_cast<uint8_t>(1 + rng_.uniform(sim::kFilterVariants - 1));
        } else if (p.profile.size == astopo::SizeClass::kSmall &&
                   p.profile.manrs && rng_.bernoulli(0.7)) {
          policy.customer_strictness = sim::kFilterVariants;
        } else {
          policy.customer_strictness =
              static_cast<uint8_t>(1 + rng_.uniform(sim::kFilterVariants));
        }
      }
      if (rng_.bernoulli(f.filter_peers)) {
        policy.peer_strictness =
            static_cast<uint8_t>(1 + rng_.uniform(sim::kFilterVariants - 1));
      }
      if (p.cdn) {
        policy.peer_strictness = std::max<uint8_t>(policy.peer_strictness, 2);
        policy.customer_strictness =
            std::max<uint8_t>(policy.customer_strictness, 2);
      }
      p.profile.policy = policy;
    }
  }

  // ---------------------------------------------------------------------
  void pick_vantage_points() {
    std::vector<size_t> larges, mediums;
    for (size_t i = 0; i < ases_.size(); ++i) {
      if (ases_[i].profile.size == astopo::SizeClass::kLarge) {
        larges.push_back(i);
      } else if (ases_[i].profile.size == astopo::SizeClass::kMedium) {
        mediums.push_back(i);
      }
    }
    size_t want_large = std::min(cfg_.vantage_points / 2, larges.size());
    for (size_t i = 0; i < want_large; ++i) {
      vantage_points_.push_back(asn(larges[i * larges.size() / want_large]));
    }
    size_t want_medium =
        std::min(cfg_.vantage_points - want_large, mediums.size());
    for (size_t i = 0; i < want_medium; ++i) {
      vantage_points_.push_back(asn(
          mediums[i * mediums.size() / std::max<size_t>(want_medium, 1)]));
    }
  }

  // ---------------------------------------------------------------------
  Scenario assemble() {
    Scenario s;
    s.config = cfg_;
    s.graph = std::move(graph_);
    s.vantage_points = std::move(vantage_points_);
    s.case_study_orgs = std::move(case_study_org_ids_);

    for (const OrgDraft& org : orgs_) {
      astopo::Organization record;
      record.org_id = org.id;
      record.name = org.name;
      record.country = org.country;
      record.rir = org.rir;
      s.as2org.add_organization(record);
      for (size_t index : org.members) {
        s.as2org.map_as(ases_[index].profile.asn, org.id);
      }
      if (org.manrs) {
        core::Participant participant;
        participant.org_id = org.id;
        participant.program = org.program;
        participant.joined = util::Date(org.join_year, 5, 1);
        for (size_t index : org.registered) {
          participant.registered_ases.push_back(ases_[index].profile.asn);
        }
        std::sort(participant.registered_ases.begin(),
                  participant.registered_ases.end());
        s.manrs.add_participant(std::move(participant));
      }
    }

    for (Pending& p : ases_) {
      if (p.profile.manrs) {
        p.profile.program = p.cdn ? core::Program::kCdn : core::Program::kIsp;
      }
    }

    // RPKI: one resource certificate per organization, then ROAs.
    uint64_t serial = 1;
    std::unordered_map<std::string, uint64_t> org_serial;
    for (const OrgDraft& org : orgs_) {
      auto it = org_resources_.find(org.id);
      if (it == org_resources_.end()) continue;
      rpki::ResourceCertificate cert;
      cert.serial = serial;
      cert.trust_anchor = org.rir;
      cert.resources = it->second;
      cert.not_before = util::Date(2014, 1, 1);
      cert.not_after = util::Date(2030, 1, 1);
      s.relying_party.add_certificate(cert);
      org_serial[org.id] = serial;
      ++serial;
    }
    for (const RoaIntent& intent : roas_) {
      const Pending& p = ases_[intent.owner];
      auto it = org_serial.find(p.profile.org_id);
      if (it == org_serial.end()) continue;
      rpki::Roa roa;
      roa.asn = intent.origin;
      roa.prefixes.push_back(rpki::RoaPrefix{intent.prefix, intent.maxlen});
      roa.certificate_serial = it->second;
      s.relying_party.add_roa(roa);
      s.dated_vrps.push_back(DatedVrp{
          rpki::Vrp{intent.prefix, intent.maxlen, intent.origin,
                    p.profile.rir},
          intent.year});
    }
    size_t rejected = 0;
    s.vrps =
        rpki::VrpStore(s.relying_party.evaluate(s.snapshot_date, &rejected));
    if (rejected > 0) {
      util::log_warn() << "relying party rejected " << rejected << " ROAs";
    }

    // IRR: five authoritative RIR databases plus RADB (mirror).
    std::unordered_map<std::string, irr::IrrDatabase*> dbs;
    for (net::Rir rir : kRirs) {
      std::string name(net::rir_name(rir));
      dbs[name] = &s.irr.add_database(name, /*authoritative=*/true);
    }
    irr::IrrDatabase* radb = &s.irr.add_database("RADB", false);
    for (const RouteIntent& intent : routes_) {
      const Pending& p = ases_[intent.owner];
      irr::RouteObject route;
      route.prefix = intent.prefix;
      route.origin = intent.origin;
      route.maintainers.push_back("MAINT-" + p.profile.org_id);
      if (intent.radb) {
        route.source = "RADB";
        radb->add_route(std::move(route));
      } else {
        std::string name(net::rir_name(p.profile.rir));
        route.source = name;
        dbs[name]->add_route(std::move(route));
      }
    }
    for (net::Rir rir : kRirs) {
      s.irr.mirror(*dbs[std::string(net::rir_name(rir))], "RADB");
    }

    // Contact data (MANRS Action 3 extension): aut-num objects with
    // admin-c/tech-c handles and PeeringDB net records. Members keep both
    // in better shape; a slice of PeeringDB records is stale.
    for (const Pending& p : ases_) {
      bool member = p.profile.manrs;
      if (rng_.bernoulli(member ? 0.90 : 0.65)) {
        irr::AutNumObject aut;
        aut.asn = p.profile.asn;
        aut.as_name = "AS-" + p.profile.org_id;
        aut.contacts.push_back("NOC-" + p.profile.org_id);
        if (rng_.bernoulli(0.6)) {
          aut.contacts.push_back("noc@" + p.profile.org_id + ".example");
        }
        std::string name(net::rir_name(p.profile.rir));
        aut.source = name;
        dbs[name]->add_aut_num(std::move(aut));
      }
      if (rng_.bernoulli(member ? 0.80 : 0.40)) {
        core::PeeringDbNet record;
        record.asn = p.profile.asn;
        record.name = p.profile.org_id;
        record.contact_email =
            rng_.bernoulli(0.9) ? "peering@" + p.profile.org_id + ".example"
                                : "";
        // Members refresh their records; others let them age (up to ~6
        // years back).
        int64_t age_days = member
                               ? static_cast<int64_t>(rng_.uniform(400))
                               : static_cast<int64_t>(rng_.uniform(2200));
        record.updated = s.snapshot_date.add_days(-age_days);
        s.peeringdb.add(std::move(record));
      }
    }

    s.dated_announcements.reserve(announcements_.size());
    for (const AnnouncementIntent& intent : announcements_) {
      s.dated_announcements.push_back(
          DatedAnnouncement{intent.po, intent.first_year, intent.last_year});
    }

    s.profiles.reserve(ases_.size());
    for (Pending& p : ases_) s.profiles.push_back(std::move(p.profile));
    return s;
  }

  // ---------------------------------------------------------------------
  // Helpers.
  struct RoaIntent {
    size_t owner;
    net::Prefix prefix;
    unsigned maxlen;
    net::Asn origin;
    int year;
  };
  struct RouteIntent {
    size_t owner;
    net::Prefix prefix;
    net::Asn origin;
    bool radb;
  };
  struct AnnouncementIntent {
    size_t owner;
    bgp::PrefixOrigin po;
    int first_year;
    int last_year;
  };

  net::Asn asn(size_t index) const { return ases_[index].profile.asn; }

  net::Asn next_asn() { return net::Asn(next_asn_value_++); }

  /// Scale a case-study count by config.case_study_scale (nonzero counts
  /// never scale to zero).
  size_t scaled_count(size_t n) const {
    if (n == 0 || cfg_.case_study_scale >= 1.0) return n;
    size_t scaled =
        static_cast<size_t>(static_cast<double>(n) * cfg_.case_study_scale);
    return std::max<size_t>(1, scaled);
  }
  size_t scaled_count(long n) const {
    return scaled_count(static_cast<size_t>(n));
  }

  std::vector<size_t>& group(bool manrs, astopo::SizeClass size) {
    return group_index_[static_cast<size_t>(size) * 2 + (manrs ? 1 : 0)];
  }

  /// Claim an unassigned AS of the given class for a case-study org.
  size_t claim_as(astopo::SizeClass size, bool manrs, bool prefer_quiet) {
    auto& pool = group(manrs, size);
    for (size_t index : pool) {
      Pending& p = ases_[index];
      if (!p.profile.org_id.empty() || p.case_study) continue;
      if (prefer_quiet != p.quiet) continue;
      return index;
    }
    for (size_t index : pool) {
      Pending& p = ases_[index];
      if (p.profile.org_id.empty() && !p.case_study) {
        p.quiet = prefer_quiet;
        return index;
      }
    }
    // Pool exhausted (tiny configs): mint a new AS.
    Pending p;
    p.profile.asn = next_asn();
    p.profile.size = size;
    p.profile.manrs = manrs;
    p.profile.rir = net::Rir::kArin;
    p.profile.country = "US";
    p.quiet = prefer_quiet;
    pool.push_back(ases_.size());
    ases_.push_back(std::move(p));
    return ases_.size() - 1;
  }

  size_t make_sibling_as(OrgDraft& org, bool quiet) {
    Pending p;
    p.profile.asn = next_asn();
    p.profile.size = astopo::SizeClass::kSmall;
    p.profile.manrs = false;  // unregistered sibling
    p.profile.org_id = org.id;
    p.profile.rir = org.rir;
    p.profile.country = org.country;
    p.quiet = quiet;
    if (!quiet) p.prefix_target = 1 + rng_.uniform(3);
    size_t index = ases_.size();
    sibling_set_.insert(index);
    group(false, astopo::SizeClass::kSmall).push_back(index);
    ases_.push_back(std::move(p));
    return index;
  }

  /// Draws come from `rng` so the parallel plan phase can use per-AS
  /// streams; serial callers pass rng_. Reads shared state only.
  net::Asn pick_wrong_origin(util::Rng& rng, size_t index) const {
    const Pending& p = ases_[index];
    double u = rng.uniform01();
    if (u < cfg_.wrong_origin_sibling) {
      for (const OrgDraft& org : orgs_) {
        if (org.id != p.profile.org_id) continue;
        for (size_t member : org.members) {
          if (member != index) return asn(member);
        }
        break;
      }
      // Fall through when the org has no sibling: prefer a neighbor.
      const auto& providers = graph_.providers(p.profile.asn);
      if (!providers.empty()) {
        return providers[rng.uniform(providers.size())];
      }
    }
    if (u < cfg_.wrong_origin_sibling + cfg_.wrong_origin_cust_prov) {
      const auto& providers = graph_.providers(p.profile.asn);
      if (!providers.empty()) {
        return providers[rng.uniform(providers.size())];
      }
      const auto& customers = graph_.customers(p.profile.asn);
      if (!customers.empty()) {
        return customers[rng.uniform(customers.size())];
      }
    }
    return pick_unrelated(rng, index);
  }

  /// An AS from a different organization that is neither a direct
  /// customer nor provider.
  net::Asn pick_unrelated(util::Rng& rng, size_t index) const {
    const Pending& p = ases_[index];
    for (int attempts = 0; attempts < 64; ++attempts) {
      size_t other = rng.uniform(ases_.size());
      if (other == index) continue;
      const Pending& q = ases_[other];
      if (q.profile.org_id == p.profile.org_id) continue;
      if (graph_.is_provider_of(p.profile.asn, q.profile.asn)) continue;
      if (graph_.is_provider_of(q.profile.asn, p.profile.asn)) continue;
      return q.profile.asn;
    }
    return asn((index + 1) % ases_.size());
  }

  unsigned draw_prefix_len(util::Rng& rng, astopo::SizeClass size,
                           bool v6) const {
    if (v6) {
      static constexpr std::array<double, 3> w{0.55, 0.30, 0.15};
      static constexpr std::array<unsigned, 3> lens{48, 40, 32};
      return lens[rng.weighted_index(std::span<const double>(w))];
    }
    switch (size) {
      case astopo::SizeClass::kSmall: {
        static constexpr std::array<double, 3> w{0.70, 0.15, 0.15};
        static constexpr std::array<unsigned, 3> lens{24, 23, 22};
        return lens[rng.weighted_index(std::span<const double>(w))];
      }
      case astopo::SizeClass::kMedium: {
        static constexpr std::array<double, 4> w{0.40, 0.30, 0.20, 0.10};
        static constexpr std::array<unsigned, 4> lens{24, 22, 20, 19};
        return lens[rng.weighted_index(std::span<const double>(w))];
      }
      case astopo::SizeClass::kLarge: {
        static constexpr std::array<double, 5> w{0.30, 0.25, 0.20, 0.15,
                                                 0.10};
        static constexpr std::array<unsigned, 5> lens{24, 22, 20, 18, 16};
        return lens[rng.weighted_index(std::span<const double>(w))];
      }
    }
    return 24;
  }

  net::Prefix allocate(net::Rir rir, unsigned len, bool v6) {
    if (v6) {
      // Per-RIR /12 pools mirroring real allocations (2400::/12 APNIC,
      // 2600::/12 ARIN, 2800::/12 LACNIC, 2a00::/12 RIPE, 2c00::/12
      // AFRINIC); /32../48 blocks carved sequentially.
      static constexpr std::array<uint64_t, 5> kPoolHi{
          0x2c00000000000000ULL,  // AFRINIC
          0x2800000000000000ULL,  // LACNIC
          0x2400000000000000ULL,  // APNIC
          0x2a00000000000000ULL,  // RIPE
          0x2600000000000000ULL,  // ARIN
      };
      uint64_t unit = 1ULL << (64 - len);
      uint64_t& cursor = v6_cursor_[rir_index(rir)];
      cursor = (cursor + unit - 1) & ~(unit - 1);
      uint64_t hi = kPoolHi[rir_index(rir)] + cursor;
      cursor += unit;
      return net::Prefix(net::IpAddress::v6(hi, 0), len);
    }
    // Per-RIR /3 v4 pools: 32/3, 64/3, 96/3, 128/3, 160/3.
    static constexpr std::array<uint64_t, 5> kPoolBase{
        0x20000000ULL, 0x40000000ULL, 0x60000000ULL, 0x80000000ULL,
        0xA0000000ULL};
    uint64_t size = 1ULL << (32 - len);
    uint64_t& cursor = v4_cursor_[rir_index(rir)];
    cursor = (cursor + size - 1) & ~(size - 1);
    uint64_t base = kPoolBase[rir_index(rir)] + cursor;
    cursor += size;
    return net::Prefix(net::IpAddress::v4(static_cast<uint32_t>(base)), len);
  }

  void add_roa(size_t owner, const net::Prefix& prefix, unsigned maxlen,
               net::Asn origin, int year = 0) {
    const Pending& p = ases_[owner];
    if (year == 0) {
      year = std::max(p.profile.first_routed_year,
                      draw_roa_year(rng_, p.profile.manrs));
    }
    roas_.push_back(RoaIntent{owner, prefix, maxlen, origin, year});
  }

  void add_route_object(size_t owner, const net::Prefix& prefix,
                        net::Asn origin) {
    routes_.push_back(
        RouteIntent{owner, prefix, origin, rng_.bernoulli(0.5)});
  }

  void add_announcement(size_t owner, const net::Prefix& prefix,
                        int first_year = 0, int last_year = 9999) {
    const Pending& p = ases_[owner];
    if (first_year == 0) {
      first_year = p.profile.first_routed_year;
      if (rng_.bernoulli(0.35)) {
        first_year += static_cast<int>(rng_.uniform(
            static_cast<uint64_t>(cfg_.last_year - first_year) + 1));
      }
    }
    announcements_.push_back(AnnouncementIntent{
        owner, bgp::PrefixOrigin{prefix, p.profile.asn}, first_year,
        last_year});
  }

  OrgDraft* find_org(const std::string& id) {
    for (auto& org : orgs_) {
      if (org.id == id) return &org;
    }
    return nullptr;
  }

  ScenarioConfig cfg_;
  util::Rng rng_;
  std::vector<Pending> ases_;
  std::unordered_map<size_t, std::vector<size_t>> group_index_;
  std::unordered_set<size_t> brazil_cohort_;
  std::unordered_set<size_t> sibling_set_;
  std::vector<OrgDraft> orgs_;
  std::vector<std::pair<std::string, std::string>> case_study_org_ids_;
  astopo::AsGraph graph_;
  std::vector<net::Asn> vantage_points_;
  std::unordered_map<std::string, std::vector<net::Prefix>> org_resources_;
  std::vector<RoaIntent> roas_;
  std::vector<RouteIntent> routes_;
  std::vector<AnnouncementIntent> announcements_;
  std::array<uint64_t, 5> v4_cursor_{};
  std::array<uint64_t, 5> v6_cursor_{};
  uint32_t next_asn_value_ = 20000;
  net::Asn as0_anchor_;
  size_t anchor_apnic_ = SIZE_MAX;
  size_t anchor_arin_ = SIZE_MAX;
};

}  // namespace

Scenario build_scenario(const ScenarioConfig& config) {
  Generator gen(config);
  return gen.run();
}

}  // namespace manrs::topogen
