#include "topogen/casestudies.h"

namespace manrs::topogen {

namespace {

std::vector<CaseStudyTemplate> build_templates() {
  std::vector<CaseStudyTemplate> out;

  // CDN1 (§8.4, Table 1): one MANRS-listed AS originating ~3,900 prefixes
  // at 98.7% conformance; 3 RPKI Invalid (all sibling), 48 IRR Invalid
  // (38 sibling/C-P, 10 unrelated); 12 unlisted sibling ASes, 11 of them
  // fully conformant.
  {
    CaseStudyTemplate t;
    t.label = "CDN1";
    t.org_id = "org-cdn1";
    t.program = core::Program::kCdn;
    t.ases.push_back(
        {astopo::SizeClass::kLarge, true, false, 3851, false, false});
    for (int i = 0; i < 12; ++i) {
      CaseStudyAs sibling{astopo::SizeClass::kSmall, false, false,
                          static_cast<size_t>(2 + i % 4), false, i == 0};
      t.ases.push_back(sibling);
    }
    t.rpki_invalid_sibling = 3;
    t.irr_invalid_sibling = 38;
    t.irr_invalid_unrelated = 10;
    out.push_back(std::move(t));
  }

  // CDN2: two listed ASes, one quiescent (trivially conformant, §8.3);
  // the active one originates >3,500 prefixes with a single offender that
  // is registered in neither registry (the parenthesized RPKI-NotFound
  // entry of Table 1).
  {
    CaseStudyTemplate t;
    t.label = "CDN2";
    t.org_id = "org-cdn2";
    t.program = core::Program::kCdn;
    t.ases.push_back(
        {astopo::SizeClass::kLarge, true, false, 3604, false, false});
    t.ases.push_back(
        {astopo::SizeClass::kMedium, true, true, 0, false, false});
    for (int i = 0; i < 3; ++i) {
      t.ases.push_back(
          {astopo::SizeClass::kSmall, false, false, 2, false, i == 0});
    }
    t.unregistered = 1;
    out.push_back(std::move(t));
  }

  // CDN3: one listed AS, 902 prefixes, 5 IRR Invalid all sibling.
  {
    CaseStudyTemplate t;
    t.label = "CDN3";
    t.org_id = "org-cdn3";
    t.program = core::Program::kCdn;
    t.ases.push_back(
        {astopo::SizeClass::kMedium, true, false, 902, false, false});
    t.ases.push_back(
        {astopo::SizeClass::kSmall, false, false, 3, false, false});
    t.irr_invalid_sibling = 5;
    out.push_back(std::move(t));
  }

  // ISP1: the large ISP with 24 registered ASes -- one main network plus
  // 23 small stubs originating fewer than 3 prefixes each with no valid
  // registration. 1 RPKI Invalid (unrelated), 302 IRR Invalid
  // (154 sibling/C-P, 148 unrelated).
  {
    CaseStudyTemplate t;
    t.label = "ISP1";
    t.org_id = "org-isp1";
    t.program = core::Program::kIsp;
    t.ases.push_back(
        {astopo::SizeClass::kLarge, true, false, 1400, false, false});
    for (int i = 0; i < 23; ++i) {
      t.ases.push_back({astopo::SizeClass::kSmall, true, false,
                        static_cast<size_t>(1 + i % 3), true, false});
    }
    t.ases.push_back(
        {astopo::SizeClass::kSmall, false, false, 4, false, false});
    t.rpki_invalid_unrelated = 1;
    t.irr_invalid_sibling = 154;
    t.irr_invalid_unrelated = 148;
    out.push_back(std::move(t));
  }

  // ISP2: two registered ASes; 8 RPKI Invalid (6 sibling/C-P, 2
  // unrelated) and 272 IRR Invalid (152 sibling/C-P, 120 unrelated).
  {
    CaseStudyTemplate t;
    t.label = "ISP2";
    t.org_id = "org-isp2";
    t.program = core::Program::kIsp;
    t.ases.push_back(
        {astopo::SizeClass::kMedium, true, false, 310, false, false});
    t.ases.push_back(
        {astopo::SizeClass::kMedium, true, false, 290, false, false});
    t.ases.push_back(
        {astopo::SizeClass::kSmall, false, false, 2, false, false});
    t.rpki_invalid_sibling = 6;
    t.rpki_invalid_unrelated = 2;
    t.irr_invalid_sibling = 152;
    t.irr_invalid_unrelated = 120;
    out.push_back(std::move(t));
  }

  // ISP3: one registered AS; 1 RPKI Invalid (sibling), 486 IRR Invalid
  // (359 sibling/C-P, 127 unrelated).
  {
    CaseStudyTemplate t;
    t.label = "ISP3";
    t.org_id = "org-isp3";
    t.program = core::Program::kIsp;
    t.ases.push_back(
        {astopo::SizeClass::kMedium, true, false, 810, false, false});
    t.ases.push_back(
        {astopo::SizeClass::kSmall, false, false, 3, false, false});
    t.rpki_invalid_sibling = 1;
    t.irr_invalid_sibling = 359;
    t.irr_invalid_unrelated = 127;
    out.push_back(std::move(t));
  }

  return out;
}

}  // namespace

const std::vector<CaseStudyTemplate>& case_study_templates() {
  static const std::vector<CaseStudyTemplate> kTemplates = build_templates();
  return kTemplates;
}

}  // namespace manrs::topogen
