// Case-study organization templates (§8.4 / Table 1 of the paper).
//
// The paper manually analyzed six unconformant MANRS organizations (three
// CDNs, the three largest unconformant ISPs) and broke their offending
// prefix-origins down by the relationship between the BGP origin and the
// registered origin. These templates script exactly those organizations:
// AS structure (including the unregistered sibling ASes of Finding 8.6),
// prefix counts, and the per-category offense counts of Table 1.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "astopo/asrank.h"
#include "core/manrs.h"

namespace manrs::topogen {

struct CaseStudyAs {
  astopo::SizeClass size = astopo::SizeClass::kMedium;
  bool registered = true;  // listed in MANRS
  bool quiet = false;      // originates nothing
  size_t prefixes = 0;     // originated prefix count (ignored when quiet)
  /// Stub ASes carry only offending prefixes (ISP1's "stub ASes of large
  /// networks who originated fewer than 3 prefixes" with 0% validity).
  bool all_invalid = false;
  /// One unlisted sibling that is not fully conformant (CDN1 had 11 of 12
  /// unlisted ASes at 100%).
  bool sibling_blemish = false;
};

struct CaseStudyTemplate {
  std::string label;   // anonymized name used in the paper ("CDN1", ...)
  std::string org_id;  // our as2org identifier
  core::Program program = core::Program::kIsp;
  std::vector<CaseStudyAs> ases;

  // Table 1 offense counts for the organization's registered ASes.
  size_t rpki_invalid_sibling = 0;    // wrong-origin ROA, origin is sibling
  size_t rpki_invalid_cp = 0;         // ... customer/provider
  size_t rpki_invalid_unrelated = 0;  // ... unrelated
  size_t irr_invalid_sibling = 0;     // wrong-origin route object (RPKI NF)
  size_t irr_invalid_cp = 0;
  size_t irr_invalid_unrelated = 0;
  size_t unregistered = 0;  // neither registry (CDN2's single offender)
};

/// The six organizations of Table 1, calibrated to the published counts.
const std::vector<CaseStudyTemplate>& case_study_templates();

}  // namespace manrs::topogen
