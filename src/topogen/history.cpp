#include "topogen/history.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/conformance.h"
#include "irr/validation.h"
#include "rpki/validation.h"
#include "util/rng.h"

namespace manrs::topogen {

namespace {

/// A conformant "retired" announcement derived from an existing one: a
/// more-specific inside an announced block (IRR Invalid Length when the
/// block is registered, i.e. still MANRS-conformant, and guaranteed not to
/// collide with any other allocation).
bgp::PrefixOrigin derive_more_specific(const bgp::PrefixOrigin& base,
                                       unsigned offset) {
  unsigned len = std::min(24u, base.prefix.length() + 1);
  if (len <= base.prefix.length()) len = base.prefix.length();  // /24 base
  uint32_t addr = base.prefix.address().v4_value();
  uint32_t step = len < 32 ? (1u << (32 - len)) : 1;
  addr += (offset % 2) * step;  // stay inside the covering block
  return bgp::PrefixOrigin{net::Prefix(net::IpAddress::v4(addr), len),
                           base.origin};
}

}  // namespace

WeeklySeries build_weekly_series(const Scenario& scenario, size_t weeks) {
  WeeklySeries series;
  util::Rng rng(scenario.config.seed ^ 0x5eed5eedULL);

  // Dates: weekly steps ending at the snapshot date.
  util::Date end = scenario.snapshot_date;
  for (size_t w = 0; w < weeks; ++w) {
    series.dates.push_back(
        end.add_days(-7 * static_cast<int64_t>(weeks - 1 - w)));
  }

  std::vector<bgp::PrefixOrigin> base = scenario.announcements();

  // ---- CDN1 churn -------------------------------------------------------
  net::Asn cdn1_as;
  for (const auto& [label, org_id] : scenario.case_study_orgs) {
    if (label != "CDN1") continue;
    if (const core::Participant* p = scenario.manrs.find_org(org_id)) {
      // The registered (primary) AS is the big originator.
      if (!p->registered_ases.empty()) cdn1_as = p->registered_ases.front();
    }
  }
  std::vector<size_t> cdn1_rows;
  for (size_t i = 0; i < base.size(); ++i) {
    if (base[i].origin == cdn1_as && base[i].prefix.is_v4()) {
      cdn1_rows.push_back(i);
    }
  }
  // 141 of CDN1's current prefixes are "new" (appear mid-series); 80
  // retired prefixes existed early and were withdrawn. Scale down for
  // tiny scenarios.
  size_t joiners = std::min<size_t>(141, cdn1_rows.size() / 4);
  size_t leavers = std::min<size_t>(80, cdn1_rows.size() / 4);
  std::unordered_map<size_t, size_t> join_week;  // base row -> first week
  for (size_t i = 0; i < joiners; ++i) {
    join_week[cdn1_rows[i]] = 1 + rng.uniform(weeks - 1);
  }
  struct Leaver {
    bgp::PrefixOrigin po;
    size_t last_week;
  };
  std::vector<Leaver> leaver_rows;
  for (size_t i = 0; i < leavers; ++i) {
    const bgp::PrefixOrigin& donor = base[cdn1_rows[joiners + i]];
    leaver_rows.push_back(
        Leaver{derive_more_specific(donor, static_cast<unsigned>(i)),
               rng.uniform(weeks - 1)});
  }
  series.cdn1_new = joiners;
  series.cdn1_stopped = leavers;

  // ---- background churn: ~0.4% of rows appear mid-series ----------------
  for (size_t i = 0; i < base.size(); ++i) {
    if (join_week.count(i)) continue;
    if (base[i].origin == cdn1_as) continue;
    if (rng.bernoulli(0.004 * static_cast<double>(weeks))) {
      join_week[i] = 1 + rng.uniform(weeks - 1);
    }
  }

  // ---- fluctuating ASes --------------------------------------------------
  // Pick 11 MANRS ISP ASes that are currently fully conformant and small
  // enough that one misorigination drops them under 90%.
  std::vector<net::Asn> candidates;
  {
    auto origination = core::compute_origination_stats([&] {
      std::vector<ihr::PrefixOriginRecord> records;
      records.reserve(base.size());
      for (const auto& po : base) {
        ihr::PrefixOriginRecord r;
        r.prefix = po.prefix;
        r.origin = po.origin;
        r.rpki = scenario.vrps.validate(po.prefix, po.origin);
        r.irr = irr::validate_route(scenario.irr, po.prefix, po.origin);
        records.push_back(r);
      }
      return records;
    }());
    for (net::Asn asn : scenario.manrs.member_ases(core::Program::kIsp)) {
      auto it = origination.find(asn.value());
      if (it == origination.end()) continue;
      const auto& stats = it->second;
      if (stats.total >= 1 && stats.total <= 6 &&
          stats.conformant == stats.total) {
        candidates.push_back(asn);
      }
      if (candidates.size() >= 11) break;
    }
  }
  series.fluctuating = candidates;
  if (!candidates.empty()) series.flip_flopper = candidates.front();

  // A misorigination target per fluctuating AS: a prefix whose ROA names a
  // different (valid) origin, so the leak classifies RPKI Invalid.
  std::vector<bgp::PrefixOrigin> leak_targets;
  for (const auto& po : base) {
    if (leak_targets.size() >= candidates.size() * 2) break;
    if (!po.prefix.is_v4()) continue;
    if (scenario.vrps.validate(po.prefix, po.origin) ==
        rpki::RpkiStatus::kValid) {
      leak_targets.push_back(po);
    }
  }

  // Weeks each fluctuating AS leaks: a contiguous run; the flip-flopper
  // leaks in two separate windows (early Feb and late March).
  struct Leak {
    net::Asn leaker;
    bgp::PrefixOrigin victim;
    std::vector<size_t> weeks_active;
  };
  std::vector<Leak> leaks;
  for (size_t i = 0; i < candidates.size() && i < leak_targets.size(); ++i) {
    Leak leak;
    leak.leaker = candidates[i];
    leak.victim = leak_targets[i];
    if (i == 0 && weeks >= 9) {
      leak.weeks_active = {0, 1, 7, 8};  // the flip-flopper
    } else {
      size_t len = 1 + rng.uniform(weeks - 1);
      size_t start = rng.uniform(weeks - len);
      // Never active in the final week: the May snapshot must match the
      // scenario's conformant state.
      for (size_t w = start; w < start + len && w + 1 < weeks; ++w) {
        leak.weeks_active.push_back(w);
      }
    }
    leaks.push_back(std::move(leak));
  }

  // ---- assemble per-week tables -----------------------------------------
  series.announcements.resize(weeks);
  for (size_t w = 0; w < weeks; ++w) {
    auto& table = series.announcements[w];
    table.reserve(base.size() + leaver_rows.size() + leaks.size());
    for (size_t i = 0; i < base.size(); ++i) {
      auto it = join_week.find(i);
      if (it != join_week.end() && w < it->second) continue;
      table.push_back(base[i]);
    }
    for (const Leaver& leaver : leaver_rows) {
      if (w <= leaver.last_week) table.push_back(leaver.po);
    }
    for (const Leak& leak : leaks) {
      if (std::find(leak.weeks_active.begin(), leak.weeks_active.end(), w) !=
          leak.weeks_active.end()) {
        table.push_back(
            bgp::PrefixOrigin{leak.victim.prefix, leak.leaker});
      }
    }
  }
  return series;
}

}  // namespace manrs::topogen
