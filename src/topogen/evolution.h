// Daily-delta ecosystem evolution (the temporal snapshot engine's input).
//
// The paper measures one snapshot (May 1, 2022); the snapshot-series
// driver extends that to a day-by-day evolution of the same universe:
// announcements flap in and out of the global table, ROAs and IRR route
// objects are registered and withdrawn, organizations join (and a few
// leave) MANRS, and the AS topology grows new edges. EcosystemEvolution
// turns a base Scenario into that evolution.
//
// Everything is a pure function of (base scenario, config, day), built
// from per-item forked RNG streams: delta_for_day(d) can be computed for
// any d in isolation, in any order, and the *_at(day) accessors
// materialize the absolute day-k state without folding deltas -- the
// independent path the cold-rebuild oracle uses to check the incremental
// engine.
//
// Churn model:
//   * Flappers: a configured fraction of base announcements / VRPs / IRR
//     route objects follow a per-item square-wave schedule (cycle length,
//     off-window, phase; phase chosen so day 0 matches the base
//     snapshot). IRR route objects flap as cross-database groups keyed by
//     (prefix, origin), so a flap is visible through the registry's
//     authoritative-first de-duplication.
//   * Births: each day allocates /24s from a reserved block (98.0.0.0/8)
//     to deterministic slices -- day d owns indices [(d-1)*k, d*k) -- and
//     a prefix of each day's births arrive with a same-day ROA and/or
//     route object (occasionally misregistered, so classification churn
//     includes new Invalids).
//   * Membership: weekly batches (days 1 mod 7). Joins draw from a
//     deterministically shuffled list of non-member ASes and adopt a
//     MANRS-style filtering policy; a small fraction of base participants
//     leave, and their ASes drop back to an empty policy.
//   * Topology: a pre-deduplicated candidate edge list is sliced per day.
//     New provider->customer edges only attach base-leaf customers (ASes
//     with no customers), so the p2c hierarchy stays acyclic by
//     construction.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/manrs.h"
#include "irr/objects.h"
#include "rpki/vrp.h"
#include "simulator/propagation.h"
#include "topogen/scenario.h"
#include "util/rng.h"

namespace manrs::topogen {

struct EvolutionConfig {
  uint64_t seed = 2022;

  /// Flap and leave schedules span this window; also bounds the candidate
  /// edge list (edges_per_day * horizon_days candidates are drawn).
  int horizon_days = 512;

  // ---- churn (fraction of base items that flap) -------------------------
  double announce_churn = 0.02;
  double roa_churn = 0.02;
  double irr_churn = 0.01;
  int flap_min_cycle = 14;  // days
  int flap_max_cycle = 56;

  // ---- births -----------------------------------------------------------
  size_t announce_births_per_day = 6;
  size_t roa_births_per_day = 4;  // first k of the day's births get a ROA
  size_t irr_births_per_day = 3;  // first k get a route object
  double birth_roa_misconfig = 0.15;  // wrong-origin ROA probability
  double birth_irr_stale = 0.10;      // wrong-origin route object

  // ---- membership (processed on days == 1 mod 7) ------------------------
  size_t joins_per_week = 3;
  double leave_rate = 0.04;  // fraction of base participants that leave

  // ---- topology growth --------------------------------------------------
  size_t edges_per_day = 4;
  double p2c_edge_share = 0.1;  // remainder are leaf-leaf peerings
};

/// One AS joining or leaving MANRS. On join, `policy` is the filtering
/// policy the AS adopts; on leave, the AS reverts to the default (empty)
/// policy.
struct MembershipChange {
  net::Asn asn;
  std::string org_id;
  core::Program program = core::Program::kIsp;
  util::Date date;
  bool join = true;
  sim::FilterPolicy policy;
};

/// One IRR route-object edit, targeted at a specific database (`db` is the
/// database name, not the object's `source` tag -- RADb mirror copies keep
/// the original source). Removals match on (prefix, origin) only.
struct IrrEdit {
  std::string db;
  irr::RouteObject route;
};

/// Everything that changes between day-1 and day.
struct EcosystemDelta {
  int day = 0;
  std::vector<bgp::PrefixOrigin> announce;   // enter the global table
  std::vector<bgp::PrefixOrigin> withdraw;   // leave the global table
  std::vector<rpki::Vrp> roa_add;
  std::vector<rpki::Vrp> roa_remove;
  std::vector<IrrEdit> irr_add;
  std::vector<IrrEdit> irr_remove;
  std::vector<MembershipChange> members;
  std::vector<sim::SimDelta::EdgeAdd> edges;

  bool empty() const {
    return announce.empty() && withdraw.empty() && roa_add.empty() &&
           roa_remove.empty() && irr_add.empty() && irr_remove.empty() &&
           members.empty() && edges.empty();
  }
  size_t op_count() const {
    return announce.size() + withdraw.size() + roa_add.size() +
           roa_remove.size() + irr_add.size() + irr_remove.size() +
           members.size() + edges.size();
  }
};

class EcosystemEvolution {
 public:
  /// `base` must outlive the evolution. Day 0 is the base snapshot.
  explicit EcosystemEvolution(const Scenario& base, EvolutionConfig config = {});

  const EvolutionConfig& config() const { return config_; }
  const Scenario& base() const { return *base_; }

  /// The delta transforming day-1 state into day state (day >= 1). Pure
  /// function of (base, config, day).
  EcosystemDelta delta_for_day(int day) const;

  // ---- absolute day-k state (the cold-rebuild oracle's inputs) ----------
  // Computed directly from the schedules, never by folding deltas.

  /// All (prefix, origin) pairs announced on `day` (base order, births
  /// appended; callers fold through a Rib, which sorts).
  std::vector<bgp::PrefixOrigin> announcements_at(int day) const;
  rpki::VrpStore vrps_at(int day) const;
  irr::IrrRegistry irr_at(int day) const;
  core::ManrsRegistry registry_at(int day) const;
  astopo::AsGraph graph_at(int day) const;

  /// Chronological per-AS policy changes over days (0, day]: apply in
  /// order to a simulator carrying the base profile policies to obtain the
  /// day-k policy state.
  std::vector<sim::SimDelta::PolicyChange> policy_changes_through(
      int day) const;

 private:
  /// Per-item square wave; cycle == 0 means the item never flaps.
  struct FlapSchedule {
    int cycle = 0;
    int off = 0;
    int phase = 0;
    bool active(int day) const {
      if (cycle == 0 || day <= 0) return true;  // day 0 is the base state
      return ((day + phase) % cycle) >= off;
    }
  };

  struct IrrGroup {
    std::vector<IrrEdit> edits;  // one per database holding the object
  };

  struct Join {
    net::Asn asn;
    std::string org_id;
    core::Program program = core::Program::kIsp;
    int day = 0;
    sim::FilterPolicy policy;
  };

  util::Rng item_rng(uint64_t kind, uint64_t index) const;
  FlapSchedule make_flap(util::Rng rng, double rate) const;
  bgp::PrefixOrigin birth_announcement(size_t index) const;
  rpki::Vrp birth_vrp(size_t index, const bgp::PrefixOrigin& po) const;
  irr::RouteObject birth_route(size_t index,
                               const bgp::PrefixOrigin& po) const;
  /// Birth indices live on day d iff (d-1)*k <= index < d*k; capped to the
  /// reserved /24 space.
  size_t birth_count_through(int day) const;

  const Scenario* base_;
  EvolutionConfig config_;

  std::vector<bgp::PrefixOrigin> base_announcements_;
  std::vector<FlapSchedule> announce_flaps_;

  std::vector<rpki::Vrp> base_vrps_;
  std::vector<FlapSchedule> vrp_flaps_;

  std::vector<IrrGroup> irr_groups_;
  std::vector<FlapSchedule> irr_flaps_;
  std::string birth_irr_db_;  // empty when the base registry has none

  std::vector<int> leave_day_;  // per base participant; max() = never
  std::vector<Join> joins_;     // join-day ascending

  std::vector<sim::SimDelta::EdgeAdd> edge_candidates_;

  static constexpr int kNever = std::numeric_limits<int>::max();
};

}  // namespace manrs::topogen
