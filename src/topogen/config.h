// Configuration of the synthetic-Internet generator.
//
// Every knob is calibrated to a number the paper reports; the defaults
// reproduce the May-2022 measurement at the scale documented in DESIGN.md
// §6 (MANRS-side and large-AS populations at full scale, small non-MANRS
// scaled 10x down for runtime; full_scale() restores paper scale).
//
// The per-group behaviour models are the *inputs* the measurement cannot
// see directly -- who registers ROAs/route objects correctly, who filters
// -- parameterized from the paper's published per-group outcomes (§8.1,
// §8.2, §9.1); the pipeline then re-derives the outcomes through the real
// validators and the routing simulator.
#pragma once

#include <cstddef>
#include <cstdint>

namespace manrs::topogen {

/// Behaviour mixture for one (membership, size-class) population.
struct RegistrationBehavior {
  /// Probability an AS maintains ROAs for all its prefixes.
  double rpki_full = 0.0;
  /// Probability an AS has no usable ROA at all (NotFound or Invalid for
  /// everything). The remainder is "mixed": a uniform fraction covered.
  double rpki_none = 0.0;
  /// Probability an AS (among those with any registration activity)
  /// carries at least one *wrong* ROA (misconfiguration -> RPKI Invalid).
  double rpki_misconfig = 0.0;
  /// Probability an AS maintains route objects for all its prefixes.
  double irr_full = 0.0;
  /// Probability an AS has no route objects at all.
  double irr_none = 0.0;
  /// Probability a registered route object is stale (wrong origin ->
  /// IRR Invalid), applied per prefix for ASes with IRR registrations.
  double irr_stale = 0.0;
};

/// Filtering behaviour for one population (drives Fig 7/8/9).
struct FilterBehavior {
  double rov = 0.0;               // full ROV deployment probability
  double filter_customers = 0.0;  // MANRS Action 1 customer filtering
  double filter_peers = 0.0;      // CDN-style peer filtering
};

struct PopulationConfig {
  size_t count = 0;                  // ASes in this population
  size_t quiet = 0;                  // of which originate no prefixes
  RegistrationBehavior registration;
  FilterBehavior filtering;
};

struct ScenarioConfig {
  uint64_t seed = 22;  // IMC '22

  // ---- population sizes (paper Fig 5 / Fig 7 / Table 2 legends) --------
  PopulationConfig small_manrs;
  PopulationConfig medium_manrs;
  PopulationConfig large_manrs;
  PopulationConfig small_other;
  PopulationConfig medium_other;
  PopulationConfig large_other;

  size_t tier1_count = 12;       // clique at the top of the hierarchy
  size_t cdn_program_ases = 21;  // of the MANRS ASes, how many are CDN
  size_t vantage_points = 30;    // collector peers (RouteViews/RIS-like)

  // ---- prefix-count distributions (pareto) ------------------------------
  // Small networks: 75th percentile originates ~5 prefixes (§8.1).
  double small_prefix_alpha = 0.86;
  size_t small_prefix_cap = 120;
  double medium_prefix_alpha = 1.1;
  size_t medium_prefix_cap = 1200;
  double large_prefix_alpha = 0.9;
  size_t large_prefix_min = 40;
  size_t large_prefix_cap = 4200;

  /// Fraction of prefixes announced as IPv6 (the paper's analysis is
  /// v4-centric; a v6 share exercises the family-generic code paths).
  double ipv6_share = 0.08;

  // ---- misregistration affinity (Table 1) --------------------------------
  // When a registration carries the wrong origin, how the wrong AS relates
  // to the announcer: the paper found >50% sibling or customer-provider.
  double wrong_origin_sibling = 0.45;
  double wrong_origin_cust_prov = 0.15;
  // remainder: unrelated

  // ---- history ----------------------------------------------------------
  int first_year = 2015;
  int last_year = 2022;

  bool include_case_studies = true;
  /// Include the two space-anchor giants (China-Telecom- and Lumen-like
  /// MANRS ISPs holding disproportionate, mostly unsigned address space).
  /// Off in tiny test configs, where two giants would dominate the
  /// address-space metrics outright.
  bool include_space_anchors = true;
  /// Scales the case-study templates (prefix counts, offense counts, stub
  /// and sibling AS counts) so miniature test scenarios are not dominated
  /// by the six scripted organizations. 1.0 = the paper's exact counts.
  double case_study_scale = 1.0;

  /// Paper-calibrated defaults (see DESIGN.md §6 for the scale table).
  static ScenarioConfig paper_default();

  /// Same behaviour models at the paper's full population counts.
  static ScenarioConfig full_scale();

  /// Between paper_default and full_scale: the small non-MANRS
  /// population at 3x the default (~25k ASes total). Big enough that
  /// scaling regressions show, small enough for a CI smoke run.
  static ScenarioConfig large_scale();

  /// A miniature configuration for unit/integration tests (hundreds of
  /// ASes, seconds to generate and propagate).
  static ScenarioConfig tiny();

  size_t total_as_count() const {
    return small_manrs.count + medium_manrs.count + large_manrs.count +
           small_other.count + medium_other.count + large_other.count;
  }
};

}  // namespace manrs::topogen
