// The generated synthetic Internet: everything the measurement pipeline
// consumes, produced deterministically from a ScenarioConfig.
//
// A Scenario corresponds to the paper's May 1, 2022 measurement universe:
// the AS topology with business relationships, the organization structure,
// the MANRS participant list with join dates, the RPKI certificate/ROA
// store, the IRR databases, the BGP announcements, and per-AS filtering
// policies. Historical analyses (Figs 2/4/6) use the dated views
// (announcements_in_year / vrps_in_year); the conformance-stability
// analysis (§8.5) uses the weekly churn model in history.h.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "astopo/as2org.h"
#include "astopo/asrank.h"
#include "astopo/graph.h"
#include "bgp/route.h"
#include "core/manrs.h"
#include "core/peeringdb.h"
#include "irr/database.h"
#include "netbase/rir.h"
#include "rpki/roa.h"
#include "rpki/validation.h"
#include "simulator/propagation.h"
#include "topogen/config.h"

namespace manrs::topogen {

/// Per-AS generated metadata (the generator's ground truth; analyses must
/// not read the behaviour fields -- they re-derive everything from the
/// registries, which is the point of the reproduction).
struct AsProfile {
  net::Asn asn;
  astopo::SizeClass size = astopo::SizeClass::kSmall;
  bool manrs = false;
  core::Program program = core::Program::kIsp;  // valid when manrs
  std::string org_id;
  net::Rir rir = net::Rir::kRipe;
  std::string country;
  int first_routed_year = 2015;
  int manrs_join_year = 0;  // 0 = not a member
  sim::FilterPolicy policy;
};

/// An announcement plus its lifetime in the routing table ([first_year,
/// last_year] inclusive; 9999 = still announced at the snapshot).
struct DatedAnnouncement {
  bgp::PrefixOrigin po;
  int first_year = 2015;
  int last_year = 9999;
};

/// A VRP plus the year its ROA was registered.
struct DatedVrp {
  rpki::Vrp vrp;
  int year = 2015;
};

struct Scenario {
  ScenarioConfig config;
  util::Date snapshot_date{2022, 5, 1};

  astopo::AsGraph graph;
  astopo::As2Org as2org;
  core::ManrsRegistry manrs;
  rpki::RelyingParty relying_party;
  rpki::VrpStore vrps;  // relying_party evaluated at snapshot_date
  irr::IrrRegistry irr;
  core::PeeringDb peeringdb;  // Action 3 extension data
  std::vector<net::Asn> vantage_points;
  std::vector<AsProfile> profiles;

  std::vector<DatedAnnouncement> dated_announcements;
  std::vector<DatedVrp> dated_vrps;

  /// The §8.4 case-study organizations: (label, org_id) pairs, e.g.
  /// ("CDN1", "org-cdn1"). Empty when config.include_case_studies is off.
  std::vector<std::pair<std::string, std::string>> case_study_orgs;

  /// The May-2022 BGP table: all current (prefix, origin) pairs.
  std::vector<bgp::PrefixOrigin> announcements() const;

  /// Announcements visible in the given year's snapshot.
  std::vector<bgp::PrefixOrigin> announcements_in_year(int year) const;

  /// The VRP set as of the given year (ROAs registered by then).
  rpki::VrpStore vrps_in_year(int year) const;

  const AsProfile* profile_of(net::Asn asn) const;

  /// Construct a propagation simulator with every AS's filter policy
  /// installed.
  sim::PropagationSim make_sim() const;

 private:
  mutable std::unordered_map<uint32_t, size_t> profile_index_;
};

/// Generate the full scenario. Deterministic in config.seed.
Scenario build_scenario(const ScenarioConfig& config);

}  // namespace manrs::topogen
