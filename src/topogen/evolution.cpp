#include "topogen/evolution.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace manrs::topogen {

namespace {

// Forked-stream ids: one per item kind, so the per-item schedules never
// perturb each other when a knob changes how many draws one kind makes.
constexpr uint64_t kStreamAnnounceFlap = 1;
constexpr uint64_t kStreamRoaFlap = 2;
constexpr uint64_t kStreamIrrFlap = 3;
constexpr uint64_t kStreamAnnounceBirth = 4;
constexpr uint64_t kStreamRoaBirth = 5;
constexpr uint64_t kStreamIrrBirth = 6;
constexpr uint64_t kStreamJoinShuffle = 7;
constexpr uint64_t kStreamJoinPolicy = 8;
constexpr uint64_t kStreamLeave = 9;
constexpr uint64_t kStreamEdges = 10;

/// Births draw /24s from 98.0.0.0/8: 65536 slots, far more than any
/// realistic series consumes (at the default 6/day, ~30 years).
constexpr size_t kBirthSlots = 65536;

std::string irr_group_key(const net::Prefix& prefix, net::Asn origin) {
  return prefix.to_string() + " " + std::to_string(origin.value());
}

}  // namespace

EcosystemEvolution::EcosystemEvolution(const Scenario& base,
                                       EvolutionConfig config)
    : base_(&base), config_(config) {
  // ---- announcement flappers -------------------------------------------
  base_announcements_ = base.announcements();
  announce_flaps_.reserve(base_announcements_.size());
  for (size_t i = 0; i < base_announcements_.size(); ++i) {
    announce_flaps_.push_back(
        make_flap(item_rng(kStreamAnnounceFlap, i), config_.announce_churn));
  }

  // ---- VRP flappers -----------------------------------------------------
  base.vrps.for_each([&](const rpki::Vrp& vrp) { base_vrps_.push_back(vrp); });
  vrp_flaps_.reserve(base_vrps_.size());
  for (size_t i = 0; i < base_vrps_.size(); ++i) {
    vrp_flaps_.push_back(
        make_flap(item_rng(kStreamRoaFlap, i), config_.roa_churn));
  }

  // ---- IRR route-object groups -----------------------------------------
  // A (prefix, origin) registered in several databases (authoritative +
  // RADb mirror) flaps as one group: removing only one copy would be
  // invisible through the registry's de-duplicating queries.
  std::unordered_map<std::string, size_t> group_of;
  for (const irr::IrrDatabase* db : base.irr.databases()) {
    db->for_each_route([&](const irr::RouteObject& route) {
      auto [it, inserted] = group_of.emplace(
          irr_group_key(route.prefix, route.origin), irr_groups_.size());
      if (inserted) irr_groups_.push_back(IrrGroup{});
      irr_groups_[it->second].edits.push_back(IrrEdit{db->name(), route});
    });
  }
  irr_flaps_.reserve(irr_groups_.size());
  for (size_t i = 0; i < irr_groups_.size(); ++i) {
    irr_flaps_.push_back(
        make_flap(item_rng(kStreamIrrFlap, i), config_.irr_churn));
  }
  // Birth route objects land in RADb when present (the catch-all registry
  // new registrations really go to), else the first database.
  const auto dbs = base.irr.databases();
  for (const irr::IrrDatabase* db : dbs) {
    if (db->name() == "RADB") birth_irr_db_ = db->name();
  }
  if (birth_irr_db_.empty() && !dbs.empty()) birth_irr_db_ = dbs.front()->name();

  // ---- membership schedules --------------------------------------------
  const auto& participants = base.manrs.participants();
  leave_day_.assign(participants.size(), kNever);
  const int weeks = std::max(1, config_.horizon_days / 7);
  for (size_t j = 0; j < participants.size(); ++j) {
    util::Rng rng = item_rng(kStreamLeave, j);
    if (!rng.bernoulli(config_.leave_rate)) continue;
    leave_day_[j] =
        1 + 7 * static_cast<int>(rng.uniform(static_cast<uint64_t>(weeks)));
  }

  std::unordered_set<std::string> member_orgs;
  for (const auto& p : participants) member_orgs.insert(p.org_id);
  std::vector<const AsProfile*> candidates;
  for (const AsProfile& profile : base.profiles) {
    // Skip ASes whose organization already participates: the registry has
    // no "extend an existing registration" operation, and a second
    // participant row per org would distort the Fig 2 counts.
    if (profile.manrs || member_orgs.count(profile.org_id)) continue;
    candidates.push_back(&profile);
  }
  {
    util::Rng r(config_.seed);
    util::Rng shuffle_rng = r.fork(kStreamJoinShuffle);
    shuffle_rng.shuffle(candidates);
  }
  const size_t per_week = std::max<size_t>(1, config_.joins_per_week);
  joins_.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const AsProfile& profile = *candidates[i];
    Join join;
    join.asn = profile.asn;
    join.org_id = profile.org_id;
    join.day = 1 + 7 * static_cast<int>(i / per_week);
    if (join.day > config_.horizon_days) break;  // beyond the horizon
    util::Rng rng = item_rng(kStreamJoinPolicy, profile.asn.value());
    join.program = rng.bernoulli(0.12) ? core::Program::kCdn
                                       : core::Program::kIsp;
    sim::FilterPolicy policy;
    policy.rov = rng.bernoulli(0.5);
    if (rng.bernoulli(0.6)) {
      policy.customer_strictness = sim::kFilterVariants;
    } else {
      policy.customer_strictness =
          static_cast<uint8_t>(1 + rng.uniform(sim::kFilterVariants));
    }
    if (join.program == core::Program::kCdn || rng.bernoulli(0.15)) {
      policy.peer_strictness =
          static_cast<uint8_t>(1 + rng.uniform(sim::kFilterVariants - 1));
    }
    join.policy = policy;
    joins_.push_back(std::move(join));
  }

  // ---- candidate edge list ---------------------------------------------
  // New p2c edges attach base-leaf customers only (an AS with no customers
  // never becomes a provider here), so no sequence of daily slices can
  // close a provider cycle.
  std::vector<net::Asn> all = base.graph.all_asns();
  std::vector<net::Asn> leaves;
  std::vector<net::Asn> transits;
  for (net::Asn asn : all) {
    if (base.graph.customer_degree(asn) == 0) {
      leaves.push_back(asn);
    } else {
      transits.push_back(asn);
    }
  }
  const size_t want =
      config_.edges_per_day * static_cast<size_t>(config_.horizon_days);
  util::Rng base_rng(config_.seed);
  util::Rng er = base_rng.fork(kStreamEdges);
  std::unordered_set<uint64_t> seen;
  auto pair_key = [](net::Asn a, net::Asn b) {
    uint32_t lo = std::min(a.value(), b.value());
    uint32_t hi = std::max(a.value(), b.value());
    return (static_cast<uint64_t>(hi) << 32) | lo;
  };
  size_t attempts = 0;
  const size_t max_attempts = 64 * want + 1024;
  while (edge_candidates_.size() < want && attempts++ < max_attempts &&
         all.size() >= 2) {
    sim::SimDelta::EdgeAdd edge;
    if (!leaves.empty() && !transits.empty() &&
        er.bernoulli(config_.p2c_edge_share)) {
      edge.a = transits[er.uniform(transits.size())];
      edge.b = leaves[er.uniform(leaves.size())];
      edge.rel = astopo::Relationship::kProviderCustomer;
    } else {
      // Peerings attach leaf to leaf: day-to-day edge growth in the real
      // Internet is dominated by edge networks meeting at IXPs. (It also
      // keeps the daily blast radius small -- a leaf only exports its own
      // originations over a peer link -- which is what makes delta-aware
      // cache invalidation worthwhile.)
      const std::vector<net::Asn>& pool = leaves.size() >= 2 ? leaves : all;
      edge.a = pool[er.uniform(pool.size())];
      edge.b = pool[er.uniform(pool.size())];
      edge.rel = astopo::Relationship::kPeerPeer;
    }
    if (edge.a == edge.b) continue;
    if (base.graph.is_provider_of(edge.a, edge.b) ||
        base.graph.is_provider_of(edge.b, edge.a) ||
        base.graph.are_peers(edge.a, edge.b)) {
      continue;
    }
    if (!seen.insert(pair_key(edge.a, edge.b)).second) continue;
    edge_candidates_.push_back(edge);
  }
}

util::Rng EcosystemEvolution::item_rng(uint64_t kind, uint64_t index) const {
  util::Rng root(config_.seed);
  util::Rng stream = root.fork(kind);
  return stream.fork(index);
}

EcosystemEvolution::FlapSchedule EcosystemEvolution::make_flap(
    util::Rng rng, double rate) const {
  if (!rng.bernoulli(rate)) return FlapSchedule{};
  FlapSchedule flap;
  const int min_cycle = std::max(2, config_.flap_min_cycle);
  const int max_cycle = std::max(min_cycle, config_.flap_max_cycle);
  flap.cycle = min_cycle + static_cast<int>(rng.uniform(
                               static_cast<uint64_t>(max_cycle - min_cycle) + 1));
  flap.off = 1 + static_cast<int>(
                     rng.uniform(static_cast<uint64_t>(flap.cycle) / 2));
  // Phase in [off, cycle) so active(0) is true: day 0 is the base snapshot.
  flap.phase = flap.off + static_cast<int>(rng.uniform(
                              static_cast<uint64_t>(flap.cycle - flap.off)));
  return flap;
}

bgp::PrefixOrigin EcosystemEvolution::birth_announcement(size_t index) const {
  const uint32_t slot = static_cast<uint32_t>(index % kBirthSlots);
  const uint32_t addr = (98u << 24) | (slot << 8);
  bgp::PrefixOrigin po;
  po.prefix = net::Prefix(net::IpAddress::v4(addr), 24);
  util::Rng rng = item_rng(kStreamAnnounceBirth, index);
  const auto& profiles = base_->profiles;
  po.origin = profiles[rng.uniform(profiles.size())].asn;
  return po;
}

rpki::Vrp EcosystemEvolution::birth_vrp(size_t index,
                                        const bgp::PrefixOrigin& po) const {
  rpki::Vrp vrp;
  vrp.prefix = po.prefix;
  vrp.max_length = po.prefix.length();
  vrp.asn = po.origin;
  util::Rng rng = item_rng(kStreamRoaBirth, index);
  if (rng.bernoulli(config_.birth_roa_misconfig)) {
    const auto& profiles = base_->profiles;
    vrp.asn = profiles[rng.uniform(profiles.size())].asn;
  }
  return vrp;
}

irr::RouteObject EcosystemEvolution::birth_route(
    size_t index, const bgp::PrefixOrigin& po) const {
  irr::RouteObject route;
  route.prefix = po.prefix;
  route.origin = po.origin;
  route.source = birth_irr_db_;
  util::Rng rng = item_rng(kStreamIrrBirth, index);
  if (rng.bernoulli(config_.birth_irr_stale)) {
    const auto& profiles = base_->profiles;
    route.origin = profiles[rng.uniform(profiles.size())].asn;
  }
  return route;
}

size_t EcosystemEvolution::birth_count_through(int day) const {
  if (day <= 0) return 0;
  const size_t raw =
      static_cast<size_t>(day) * config_.announce_births_per_day;
  return std::min(raw, kBirthSlots);
}

EcosystemDelta EcosystemEvolution::delta_for_day(int day) const {
  EcosystemDelta delta;
  delta.day = day;
  if (day <= 0) return delta;

  // ---- flappers ---------------------------------------------------------
  for (size_t i = 0; i < announce_flaps_.size(); ++i) {
    const FlapSchedule& flap = announce_flaps_[i];
    if (flap.cycle == 0) continue;
    const bool now = flap.active(day);
    if (now == flap.active(day - 1)) continue;
    (now ? delta.announce : delta.withdraw).push_back(base_announcements_[i]);
  }
  for (size_t i = 0; i < vrp_flaps_.size(); ++i) {
    const FlapSchedule& flap = vrp_flaps_[i];
    if (flap.cycle == 0) continue;
    const bool now = flap.active(day);
    if (now == flap.active(day - 1)) continue;
    (now ? delta.roa_add : delta.roa_remove).push_back(base_vrps_[i]);
  }
  for (size_t i = 0; i < irr_flaps_.size(); ++i) {
    const FlapSchedule& flap = irr_flaps_[i];
    if (flap.cycle == 0) continue;
    const bool now = flap.active(day);
    if (now == flap.active(day - 1)) continue;
    auto& out = now ? delta.irr_add : delta.irr_remove;
    for (const IrrEdit& edit : irr_groups_[i].edits) out.push_back(edit);
  }

  // ---- births -----------------------------------------------------------
  const size_t first = birth_count_through(day - 1);
  const size_t last = birth_count_through(day);
  for (size_t index = first; index < last; ++index) {
    const size_t offset = index - first;
    bgp::PrefixOrigin po = birth_announcement(index);
    delta.announce.push_back(po);
    if (offset < config_.roa_births_per_day) {
      delta.roa_add.push_back(birth_vrp(index, po));
    }
    if (offset < config_.irr_births_per_day && !birth_irr_db_.empty()) {
      delta.irr_add.push_back(IrrEdit{birth_irr_db_, birth_route(index, po)});
    }
  }

  // ---- weekly membership batch -----------------------------------------
  if (day % 7 == 1) {
    const util::Date date = base_->snapshot_date.add_days(day);
    for (const Join& join : joins_) {
      if (join.day != day) continue;
      MembershipChange change;
      change.asn = join.asn;
      change.org_id = join.org_id;
      change.program = join.program;
      change.date = date;
      change.join = true;
      change.policy = join.policy;
      delta.members.push_back(std::move(change));
    }
    const auto& participants = base_->manrs.participants();
    for (size_t j = 0; j < participants.size(); ++j) {
      if (leave_day_[j] != day) continue;
      for (net::Asn asn : participants[j].registered_ases) {
        MembershipChange change;
        change.asn = asn;
        change.org_id = participants[j].org_id;
        change.program = participants[j].program;
        change.date = date;
        change.join = false;
        change.policy = sim::FilterPolicy{};
        delta.members.push_back(std::move(change));
      }
    }
  }

  // ---- topology growth --------------------------------------------------
  const size_t lo = std::min(
      edge_candidates_.size(),
      static_cast<size_t>(day - 1) * config_.edges_per_day);
  const size_t hi = std::min(edge_candidates_.size(),
                             static_cast<size_t>(day) * config_.edges_per_day);
  for (size_t i = lo; i < hi; ++i) delta.edges.push_back(edge_candidates_[i]);

  return delta;
}

std::vector<bgp::PrefixOrigin> EcosystemEvolution::announcements_at(
    int day) const {
  std::vector<bgp::PrefixOrigin> out;
  out.reserve(base_announcements_.size());
  for (size_t i = 0; i < base_announcements_.size(); ++i) {
    if (announce_flaps_[i].active(day)) out.push_back(base_announcements_[i]);
  }
  const size_t births = birth_count_through(day);
  for (size_t index = 0; index < births; ++index) {
    out.push_back(birth_announcement(index));
  }
  return out;
}

rpki::VrpStore EcosystemEvolution::vrps_at(int day) const {
  rpki::VrpStore store;
  for (size_t i = 0; i < base_vrps_.size(); ++i) {
    if (vrp_flaps_[i].active(day)) store.add(base_vrps_[i]);
  }
  const size_t births = birth_count_through(day);
  const size_t per_day = std::max<size_t>(1, config_.announce_births_per_day);
  for (size_t index = 0; index < births; ++index) {
    if (index % per_day >= config_.roa_births_per_day) continue;
    store.add(birth_vrp(index, birth_announcement(index)));
  }
  return store;
}

irr::IrrRegistry EcosystemEvolution::irr_at(int day) const {
  irr::IrrRegistry registry;
  // Recreate the base databases in authoritative-first order -- the same
  // precedence order the registry's queries use -- so de-duplication picks
  // identical representatives on the cold and incremental paths.
  for (const irr::IrrDatabase* db : base_->irr.databases()) {
    registry.add_database(db->name(), db->authoritative());
  }
  for (size_t i = 0; i < irr_groups_.size(); ++i) {
    if (!irr_flaps_[i].active(day)) continue;
    for (const IrrEdit& edit : irr_groups_[i].edits) {
      registry.find_database_mut(edit.db)->add_route(edit.route);
    }
  }
  if (!birth_irr_db_.empty()) {
    irr::IrrDatabase* birth_db = registry.find_database_mut(birth_irr_db_);
    const size_t births = birth_count_through(day);
    const size_t per_day = std::max<size_t>(1, config_.announce_births_per_day);
    for (size_t index = 0; index < births; ++index) {
      if (index % per_day >= config_.irr_births_per_day) continue;
      birth_db->add_route(birth_route(index, birth_announcement(index)));
    }
  }
  return registry;
}

core::ManrsRegistry EcosystemEvolution::registry_at(int day) const {
  core::ManrsRegistry registry;
  const auto& participants = base_->manrs.participants();
  for (size_t j = 0; j < participants.size(); ++j) {
    if (leave_day_[j] <= day) continue;
    registry.add_participant(participants[j]);
  }
  // Collapse joined ASes by organization, in join order, so one org that
  // registers several ASes across weeks stays one participant row.
  std::unordered_map<std::string, size_t> org_row;
  std::vector<core::Participant> joined;
  for (const Join& join : joins_) {
    if (join.day > day) break;  // joins_ is join-day ascending
    auto [it, inserted] = org_row.emplace(join.org_id, joined.size());
    if (inserted) {
      core::Participant participant;
      participant.org_id = join.org_id;
      participant.program = join.program;
      participant.joined = base_->snapshot_date.add_days(join.day);
      joined.push_back(std::move(participant));
    }
    joined[it->second].registered_ases.push_back(join.asn);
  }
  for (core::Participant& participant : joined) {
    registry.add_participant(std::move(participant));
  }
  return registry;
}

astopo::AsGraph EcosystemEvolution::graph_at(int day) const {
  astopo::AsGraph graph = base_->graph;
  const size_t hi =
      day <= 0 ? 0
               : std::min(edge_candidates_.size(),
                          static_cast<size_t>(day) * config_.edges_per_day);
  for (size_t i = 0; i < hi; ++i) {
    const sim::SimDelta::EdgeAdd& edge = edge_candidates_[i];
    if (edge.rel == astopo::Relationship::kProviderCustomer) {
      graph.add_provider_customer(edge.a, edge.b);
    } else {
      graph.add_peer_peer(edge.a, edge.b);
    }
  }
  return graph;
}

std::vector<sim::SimDelta::PolicyChange>
EcosystemEvolution::policy_changes_through(int day) const {
  std::vector<sim::SimDelta::PolicyChange> out;
  for (int d = 1; d <= day; ++d) {
    if (d % 7 != 1) continue;
    for (const Join& join : joins_) {
      if (join.day != d) continue;
      out.push_back(sim::SimDelta::PolicyChange{join.asn, join.policy});
    }
    const auto& participants = base_->manrs.participants();
    for (size_t j = 0; j < participants.size(); ++j) {
      if (leave_day_[j] != d) continue;
      for (net::Asn asn : participants[j].registered_ases) {
        out.push_back(sim::SimDelta::PolicyChange{asn, sim::FilterPolicy{}});
      }
    }
  }
  return out;
}

}  // namespace manrs::topogen
