#include "topogen/config.h"

namespace manrs::topogen {

namespace {

// Behaviour mixtures calibrated to §8.1/§8.2 (origination) and §9 (filtering).
// Sources, per population:
//   small MANRS:  60.1% all-RPKI-valid, 23.6% none; 72.3% all-IRR-valid.
//   small other:  24.7% all-valid, 68.1% none; 70.0% all-IRR-valid;
//                 0.7% of ASes originate an RPKI Invalid prefix.
//   medium MANRS: 41.5% / 14.8%; 52.1% IRR; 2.8% invalid-originators.
//   medium other: 23.8% / 41.4%; 48.0% IRR; 4.5% invalid-originators.
//   large MANRS:  every AS originates some valid prefix; 12.5% all-valid;
//                 20.8% invalid-originators; median IRR validity 63.5%.
//   large other:  11.8% originate no RPKI-known prefix; 5.9% all-valid;
//                 32.9% invalid-originators; median IRR validity 84.0%.
// The mixture parameters are slightly below the paper's observed "all
// valid"/"none valid" fractions because the mixed-coverage regime spills
// into both extremes for ASes that originate only one or two prefixes
// (which is most small networks) -- the observed outcome, not the input,
// is what gets calibrated.
RegistrationBehavior small_manrs_reg() {
  return RegistrationBehavior{
      /*rpki_full=*/0.58, /*rpki_none=*/0.10, /*rpki_misconfig=*/0.000,
      /*irr_full=*/0.723, /*irr_none=*/0.05, /*irr_stale=*/0.06};
}
RegistrationBehavior small_other_reg() {
  return RegistrationBehavior{0.20, 0.62, 0.007, 0.700, 0.12, 0.09};
}
RegistrationBehavior medium_manrs_reg() {
  return RegistrationBehavior{0.35, 0.09, 0.028, 0.521, 0.04, 0.10};
}
RegistrationBehavior medium_other_reg() {
  return RegistrationBehavior{0.19, 0.34, 0.045, 0.480, 0.08, 0.13};
}
RegistrationBehavior large_manrs_reg() {
  // Less polarized: most mass in the "mixed" regime; IRR weaker than the
  // non-MANRS large networks (Finding 8.2) because RPKI adopters let IRR
  // records go stale.
  return RegistrationBehavior{0.125, 0.00, 0.208, 0.10, 0.00, 0.30};
}
RegistrationBehavior large_other_reg() {
  return RegistrationBehavior{0.059, 0.118, 0.329, 0.45, 0.02, 0.12};
}

// Filtering rates chosen so the Fig 7-9 shapes emerge: large MANRS filter
// markedly more (45.9% propagate zero RPKI-invalid vs 36.0%), small
// networks barely transit anything so their rates matter little.
FilterBehavior small_manrs_filter() { return FilterBehavior{0.10, 0.75, 0.05}; }
FilterBehavior small_other_filter() { return FilterBehavior{0.05, 0.08, 0.01}; }
FilterBehavior medium_manrs_filter() {
  return FilterBehavior{0.22, 0.45, 0.10};
}
FilterBehavior medium_other_filter() {
  return FilterBehavior{0.12, 0.18, 0.03};
}
FilterBehavior large_manrs_filter() {
  return FilterBehavior{0.46, 0.70, 0.30};
}
FilterBehavior large_other_filter() {
  return FilterBehavior{0.30, 0.30, 0.08};
}

}  // namespace

ScenarioConfig ScenarioConfig::paper_default() {
  ScenarioConfig c;
  // MANRS-side counts at full scale (Fig 5 legend: 433/311/24 originating;
  // §8.3: 95 ISP ASes originate nothing -- our quiet counts reconcile the
  // paper's 849-ISP/21-CDN totals with its 451/319/24 size split, see
  // EXPERIMENTS.md).
  c.small_manrs = {506, 73, small_manrs_reg(), small_manrs_filter()};
  c.medium_manrs = {331, 20, medium_manrs_reg(), medium_manrs_filter()};
  c.large_manrs = {24, 0, large_manrs_reg(), large_manrs_filter()};
  // Non-MANRS: small scaled 10x down; medium/large at paper scale
  // (66,735 / 4,395 / 85 originating in Fig 5).
  c.small_other = {6674, 100, small_other_reg(), small_other_filter()};
  c.medium_other = {4395, 0, medium_other_reg(), medium_other_filter()};
  c.large_other = {85, 0, large_other_reg(), large_other_filter()};
  return c;
}

ScenarioConfig ScenarioConfig::full_scale() {
  ScenarioConfig c = paper_default();
  c.small_other.count = 66735;
  c.small_other.quiet = 1000;
  return c;
}

ScenarioConfig ScenarioConfig::large_scale() {
  // Stays on the default<->full axis: only the small non-MANRS
  // population (the paper's 10x-downscaled group) grows.
  ScenarioConfig c = paper_default();
  c.small_other.count = 20000;
  c.small_other.quiet = 300;
  return c;
}

ScenarioConfig ScenarioConfig::tiny() {
  ScenarioConfig c;
  c.small_manrs = {40, 5, small_manrs_reg(), small_manrs_filter()};
  c.medium_manrs = {25, 2, medium_manrs_reg(), medium_manrs_filter()};
  c.large_manrs = {6, 0, large_manrs_reg(), large_manrs_filter()};
  c.small_other = {160, 10, small_other_reg(), small_other_filter()};
  c.medium_other = {60, 0, medium_other_reg(), medium_other_filter()};
  c.large_other = {10, 0, large_other_reg(), large_other_filter()};
  c.tier1_count = 5;
  c.cdn_program_ases = 4;
  c.vantage_points = 12;
  c.small_prefix_cap = 30;
  c.medium_prefix_cap = 80;
  c.large_prefix_min = 10;
  c.large_prefix_cap = 200;
  c.case_study_scale = 0.04;
  c.include_space_anchors = false;
  return c;
}

}  // namespace manrs::topogen
