// BGP route model: AS paths, announcements, and prefix-origin pairs.
//
// The unit of the paper's analysis is the *prefix-origin pair* (§6.4):
// everything in the pipeline eventually reduces BGP state to (prefix,
// origin AS) plus the set of transit ASes observed on paths toward it.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "netbase/asn.h"
#include "netbase/prefix.h"

namespace manrs::bgp {

/// An AS_PATH as a flat sequence of ASNs (AS_SEQUENCE semantics; the
/// simulator never emits AS_SETs, and the MRT codec rejects them on read
/// the way most measurement pipelines do -- they are deprecated, RFC 6472).
class AsPath {
 public:
  AsPath() = default;
  explicit AsPath(std::vector<net::Asn> hops) : hops_(std::move(hops)) {}

  const std::vector<net::Asn>& hops() const { return hops_; }
  bool empty() const { return hops_.empty(); }
  size_t length() const { return hops_.size(); }

  /// The origin AS is the last hop; nullopt for an empty path.
  std::optional<net::Asn> origin() const {
    if (hops_.empty()) return std::nullopt;
    return hops_.back();
  }

  /// The neighbor the route was learned from is the first hop.
  std::optional<net::Asn> first_hop() const {
    if (hops_.empty()) return std::nullopt;
    return hops_.front();
  }

  /// New path with `asn` prepended (what an AS does when exporting).
  AsPath prepend(net::Asn asn) const {
    std::vector<net::Asn> hops;
    hops.reserve(hops_.size() + 1);
    hops.push_back(asn);
    hops.insert(hops.end(), hops_.begin(), hops_.end());
    return AsPath(std::move(hops));
  }

  /// Loop detection: true if `asn` already appears in the path.
  bool contains(net::Asn asn) const {
    for (net::Asn hop : hops_) {
      if (hop == asn) return true;
    }
    return false;
  }

  bool has_loop() const {
    std::unordered_set<uint32_t> seen;
    net::Asn prev{};
    bool first = true;
    for (net::Asn hop : hops_) {
      // Consecutive repeats are prepending, not loops.
      if (!first && hop == prev) continue;
      if (!seen.insert(hop.value()).second) return true;
      prev = hop;
      first = false;
    }
    return false;
  }

  /// "AS1 AS2 AS3".
  std::string to_string() const;

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<net::Asn> hops_;
};

/// A route as seen at some vantage point.
struct Route {
  net::Prefix prefix;
  AsPath path;

  std::optional<net::Asn> origin() const { return path.origin(); }
};

/// The analysis key: one announced prefix and its origin AS.
struct PrefixOrigin {
  net::Prefix prefix;
  net::Asn origin;

  std::string to_string() const {
    return prefix.to_string() + " " + origin.to_string();
  }

  friend auto operator<=>(const PrefixOrigin&, const PrefixOrigin&) = default;
};

}  // namespace manrs::bgp

template <>
struct std::hash<manrs::bgp::PrefixOrigin> {
  size_t operator()(const manrs::bgp::PrefixOrigin& po) const noexcept {
    size_t h = std::hash<manrs::net::Prefix>{}(po.prefix);
    size_t h2 = std::hash<manrs::net::Asn>{}(po.origin);
    return h ^ (h2 + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
  }
};
