// Routing Information Base.
//
// A Rib stores, per prefix, the routes learned from each peer (Adj-RIB-In
// collapsed into one table, the way a route collector's RIB dump looks)
// and can answer the queries the measurement pipeline needs: all
// prefix-origin pairs, all paths toward a prefix, and per-origin prefix
// sets.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/route.h"
#include "netbase/prefix.h"

namespace manrs::bgp {

/// One RIB entry: a path learned from a peer.
struct RibEntry {
  uint32_t peer_index = 0;  // collector peer that contributed the path
  AsPath path;
};

class Rib {
 public:
  /// Register a collector peer; returns its index. `peer_asn` is the AS the
  /// collector sessions with.
  uint32_t add_peer(net::Asn peer_asn);

  size_t peer_count() const { return peers_.size(); }
  net::Asn peer_asn(uint32_t index) const { return peers_.at(index); }

  /// Insert a path for `prefix` from peer `peer_index`. Duplicate paths
  /// from the same peer replace the previous one (a RIB has one best path
  /// per peer per prefix).
  void insert(const net::Prefix& prefix, uint32_t peer_index, AsPath path);

  /// Insert a batch of entries for `prefix` (same replace-per-peer
  /// semantics as repeated insert), reserving the entry vector's capacity
  /// once up front. The collector's merge path uses this: every prefix in
  /// an announcement group shares the same per-peer path set.
  void insert_many(const net::Prefix& prefix,
                   std::span<const RibEntry> entries);

  size_t prefix_count() const { return table_.size(); }
  size_t entry_count() const;

  /// All entries for `prefix` (empty if none).
  const std::vector<RibEntry>& entries(const net::Prefix& prefix) const;

  /// Iterate over (prefix, entries) in deterministic (sorted) order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [prefix, entries] : table_) fn(prefix, entries);
  }

  /// Distinct (prefix, origin) pairs across all peers, sorted.
  std::vector<PrefixOrigin> prefix_origins() const;

  /// Prefixes originated by `asn` (distinct, sorted).
  std::vector<net::Prefix> prefixes_originated_by(net::Asn asn) const;

 private:
  std::vector<net::Asn> peers_;
  std::map<net::Prefix, std::vector<RibEntry>> table_;
};

}  // namespace manrs::bgp
